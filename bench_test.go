// Benchmarks regenerating the paper's evaluation, one per table/figure
// (see DESIGN.md §4 and EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem
//
// The Fig benchmarks execute the real aggregation algorithms at the
// paper's rank scales with byte movement charged to the system cost
// models; the Table benchmarks build real BAT files and time real
// progressive reads.
package libbat

import (
	"fmt"
	"strings"
	"testing"

	"libbat/internal/bench"
	"libbat/internal/perf"
	"libbat/internal/workloads"
)

func benchProfiles() []perf.Profile {
	return []perf.Profile{perf.Stampede2(), perf.Summit()}
}

func BenchmarkFig5WriteScaling(b *testing.B) {
	for _, p := range benchProfiles() {
		b.Run(p.Name, func(b *testing.B) {
			cfg := bench.DefaultWeakScaling(p)
			for i := 0; i < b.N; i++ {
				t, err := bench.Fig5WriteScaling(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 && testing.Verbose() {
					b.Log(render(t))
				}
			}
		})
	}
}

func BenchmarkFig6Breakdown(b *testing.B) {
	for _, p := range benchProfiles() {
		b.Run(p.Name, func(b *testing.B) {
			cfg := bench.DefaultWeakScaling(p)
			for i := 0; i < b.N; i++ {
				if _, err := bench.Fig6Breakdown(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig7ReadScaling(b *testing.B) {
	for _, p := range benchProfiles() {
		b.Run(p.Name, func(b *testing.B) {
			cfg := bench.DefaultWeakScaling(p)
			for i := 0; i < b.N; i++ {
				if _, err := bench.Fig7ReadScaling(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig8DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8DatasetStats(1536); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9CoalBoilerCompare(b *testing.B) {
	cfg := bench.DefaultCoalBoilerCompare()
	for i := 0; i < b.N; i++ {
		w, _, err := bench.Fig9CoalBoiler(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log(render(w))
		}
	}
}

func BenchmarkFig10CoalBoilerBreakdown(b *testing.B) {
	cfg := bench.DefaultCoalBoilerCompare()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10Breakdown(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11DamBreakCompare(b *testing.B) {
	for _, big := range []bool{false, true} {
		name := "2M-1536ranks"
		if big {
			name = "8M-6144ranks"
		}
		b.Run(name, func(b *testing.B) {
			cfg, total := bench.DefaultDamBreakCompare(big)
			for i := 0; i < b.N; i++ {
				if _, _, err := bench.Fig11DamBreak(cfg, total); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig12DamBreakBreakdown(b *testing.B) {
	cfg, total := bench.DefaultDamBreakCompare(true)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig12Breakdown(cfg, total); err != nil {
			b.Fatal(err)
		}
	}
}

// visTable writes scaled-down datasets once, then benchmarks the real
// progressive read loop of Tables I/II.
func benchProgressive(b *testing.B, w workloads.Workload, step int, target int64) {
	b.Helper()
	store := MemStorage()
	base := fmt.Sprintf("bench-%s-%d", w.Name(), step)
	if _, err := bench.WriteDataset(w, step, store, base, DefaultWriteConfig(target)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var pts int64
	for i := 0; i < b.N; i++ {
		res, err := bench.ProgressiveRead(store, base)
		if err != nil {
			b.Fatal(err)
		}
		pts = res.TotalPts
	}
	b.ReportMetric(float64(pts), "points/op")
}

func BenchmarkTable1CoalBoilerReads(b *testing.B) {
	for _, target := range []int64{1 << 20, 2 << 20, 4 << 20} {
		b.Run(fmt.Sprintf("target-%dMB", target>>20), func(b *testing.B) {
			cb, err := workloads.NewCoalBoiler(16)
			if err != nil {
				b.Fatal(err)
			}
			cb.SetGrowth(0, 10, 200_000, 200_000)
			benchProgressive(b, cb, 5, target)
		})
	}
}

func BenchmarkTable2DamBreakReads(b *testing.B) {
	for _, target := range []int64{1 << 20, 2 << 20} {
		b.Run(fmt.Sprintf("target-%dMB", target>>20), func(b *testing.B) {
			db, err := workloads.NewDamBreak(16, 200_000)
			if err != nil {
				b.Fatal(err)
			}
			benchProgressive(b, db, 1000, target)
		})
	}
}

func BenchmarkFig13QualityProgression(b *testing.B) {
	cfg := bench.VisReadConfig{Ranks: 8, TargetSizes: []int64{1 << 20}}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig13Quality(cfg, 100_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.FileStats(1536, 4501, 8<<20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverhead(b *testing.B) {
	cfg := bench.VisReadConfig{Ranks: 8}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Overhead(cfg, 200_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndWrite measures the full-fidelity collective write
// (goroutine ranks, real aggregation, real BAT files in memory).
func BenchmarkEndToEndWrite(b *testing.B) {
	for _, ranks := range []int{8, 32} {
		b.Run(fmt.Sprintf("ranks-%d", ranks), func(b *testing.B) {
			w, err := workloads.NewUniform(ranks, 4096, 7)
			if err != nil {
				b.Fatal(err)
			}
			bytes := workloads.TotalCount(w, 0) * int64(w.Schema().BytesPerParticle())
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store := MemStorage()
				if _, err := bench.WriteDataset(w, 0, store, "e2e", DefaultWriteConfig(256<<10)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblations regenerates the DESIGN.md ablation studies.
func BenchmarkAblations(b *testing.B) {
	b.Run("overfull", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.AblateOverfull(1536, 2501, 8<<20); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("split-axes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.AblateSplitAxes(1536, 1001, 3<<20); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lod", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.AblateLOD(8, 60_000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dictionary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.AblateBitmapDictionary(100_000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("aggregator-spread", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.AblateAggregatorSpread(1536, 2501, 8<<20); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func render(t *bench.Table) string {
	var sb strings.Builder
	t.Fprint(&sb)
	return "\n" + sb.String()
}
