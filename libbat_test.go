package libbat

import (
	"fmt"
	"math/rand"
	"testing"
)

// writeTestDataset writes an 8-rank clustered dataset and returns its
// store and the number of particles written.
func writeTestDataset(t *testing.T, base string, target int64) (Storage, int) {
	t.Helper()
	store := MemStorage()
	const perRank = 800
	err := Run(8, func(c *Comm) error {
		r := rand.New(rand.NewSource(int64(c.Rank())))
		lo := V3(float64(c.Rank()%4), float64(c.Rank()/4), 0)
		bounds := NewBox(lo, lo.Add(V3(1, 1, 1)))
		local := NewParticleSet(NewSchema("temp", "id"), perRank)
		for i := 0; i < perRank; i++ {
			p := lo.Add(V3(r.Float64(), r.Float64(), r.Float64()))
			local.Append(p, []float64{p.X * 100, float64(c.Rank()*perRank + i)})
		}
		_, err := Write(c, store, base, local, bounds, DefaultWriteConfig(target))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return store, 8 * perRank
}

func TestPublicWriteAndDataset(t *testing.T) {
	store, total := writeTestDataset(t, "pub", 20*1024)
	ds, err := OpenDataset(store, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.NumParticles() != int64(total) {
		t.Errorf("NumParticles = %d, want %d", ds.NumParticles(), total)
	}
	if ds.NumFiles() < 2 {
		t.Errorf("NumFiles = %d", ds.NumFiles())
	}
	if ds.Schema().NumAttrs() != 2 {
		t.Errorf("schema attrs = %d", ds.Schema().NumAttrs())
	}
	got, err := ds.ReadAll()
	if err != nil || got.Len() != total {
		t.Fatalf("ReadAll: %v, %d particles", err, got.Len())
	}
	min, max, err := ds.AttrRange(0)
	if err != nil || min >= max {
		t.Errorf("AttrRange = [%g,%g], %v", min, max, err)
	}
	if _, _, err := ds.AttrRange(9); err == nil {
		t.Error("bad attr should error")
	}
}

func TestDatasetSpatialAndAttrQuery(t *testing.T) {
	store, _ := writeTestDataset(t, "q", 20*1024)
	ds, err := OpenDataset(store, "q")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	all, err := ds.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	box := NewBox(V3(0.5, 0.5, 0), V3(2.5, 1.5, 1))
	want := 0
	for i := 0; i < all.Len(); i++ {
		p := all.Position(i)
		if box.Contains(p) && all.Attrs[0][i] >= 100 && all.Attrs[0][i] <= 220 {
			want++
		}
	}
	got, err := ds.Count(Query{
		Bounds:  &box,
		Filters: []AttrFilter{{Attr: 0, Min: 100, Max: 220}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(got) != want {
		t.Errorf("query = %d, brute force = %d", got, want)
	}
}

func TestDatasetProgressive(t *testing.T) {
	store, total := writeTestDataset(t, "prog", 15*1024)
	ds, err := OpenDataset(store, "prog")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	var sum int64
	prev := 0.0
	for s := 1; s <= 4; s++ {
		q := float64(s) / 4
		n, err := ds.Count(Query{PrevQuality: prev, Quality: q})
		if err != nil {
			t.Fatal(err)
		}
		sum += n
		prev = q
	}
	if sum != int64(total) {
		t.Errorf("progressive total = %d, want %d", sum, total)
	}
}

func TestCollectiveRead(t *testing.T) {
	store, _ := writeTestDataset(t, "cr", 30*1024)
	err := Run(4, func(c *Comm) error {
		lo := V3(float64(c.Rank()), 0, 0)
		got, stats, err := Read(c, store, "cr", NewBox(lo, lo.Add(V3(1, 2, 1))))
		if err != nil {
			return err
		}
		if got.Len() == 0 {
			return fmt.Errorf("rank %d read nothing", c.Rank())
		}
		if stats.Total() <= 0 {
			return fmt.Errorf("rank %d: empty stats", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecommendTargetSize(t *testing.T) {
	bpr := int64(4 << 20)
	small := RecommendTargetSize(16, bpr)
	mid := RecommendTargetSize(1536, bpr)
	big := RecommendTargetSize(24576, bpr)
	if small != bpr {
		t.Errorf("small scale should be 1:1, got %d", small)
	}
	if mid <= small || big <= mid {
		t.Errorf("target should grow with scale: %d %d %d", small, mid, big)
	}
	if big/bpr < 16 {
		t.Errorf("large scale factor = %d, want >= 16", big/bpr)
	}
	// Tiny payloads clamp to a sane floor.
	if got := RecommendTargetSize(4, 100); got != 1<<20 {
		t.Errorf("floor = %d", got)
	}
}

func TestDirStorage(t *testing.T) {
	store, err := DirStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteFile("x", []byte("y")); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetLeaves(t *testing.T) {
	store, total := writeTestDataset(t, "lv", 20*1024)
	ds, err := OpenDataset(store, "lv")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	leaves := ds.Leaves()
	if len(leaves) != ds.NumFiles() {
		t.Fatalf("Leaves() = %d, NumFiles = %d", len(leaves), ds.NumFiles())
	}
	var sum int64
	for _, l := range leaves {
		if l.FileName == "" || l.Count <= 0 {
			t.Errorf("bad leaf info %+v", l)
		}
		if !ds.Bounds().ContainsBox(l.Bounds) {
			t.Errorf("leaf bounds escape dataset bounds")
		}
		sum += l.Count
	}
	if sum != int64(total) {
		t.Errorf("leaf counts sum to %d, want %d", sum, total)
	}
}

func TestDatasetHistogram(t *testing.T) {
	store, total := writeTestDataset(t, "hist", 20*1024)
	ds, err := OpenDataset(store, "hist")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	h, err := ds.Histogram(0, 8, Query{})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range h {
		sum += c
	}
	if sum != int64(total) {
		t.Fatalf("histogram sums to %d, want %d", sum, total)
	}
	// Matches brute force binning of ReadAll.
	all, _ := ds.ReadAll()
	min, max, _ := ds.AttrRange(0)
	want := make([]int64, 8)
	for i := 0; i < all.Len(); i++ {
		b := int((all.Attrs[0][i] - min) / (max - min) * 8)
		if b > 7 {
			b = 7
		}
		if b < 0 {
			b = 0
		}
		want[b]++
	}
	for i := range h {
		if h[i] != want[i] {
			t.Fatalf("bin %d: %d != %d", i, h[i], want[i])
		}
	}
	// LOD histogram is a subsample.
	lod, err := ds.Histogram(0, 8, Query{Quality: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var lodSum int64
	for _, c := range lod {
		lodSum += c
	}
	if lodSum == 0 || lodSum >= sum {
		t.Errorf("LOD histogram has %d of %d samples", lodSum, sum)
	}
	// Errors.
	if _, err := ds.Histogram(9, 8, Query{}); err == nil {
		t.Error("bad attr should error")
	}
	if _, err := ds.Histogram(0, 0, Query{}); err == nil {
		t.Error("zero bins should error")
	}
}

func TestListDatasets(t *testing.T) {
	store, _ := writeTestDataset(t, "series-a", 1<<20)
	// Add a second dataset to the same store.
	err := Run(2, func(c *Comm) error {
		lo := V3(float64(c.Rank()), 0, 0)
		local := NewParticleSet(NewSchema("v"), 10)
		for i := 0; i < 10; i++ {
			local.Append(lo.Add(V3(0.5, 0.5, 0.5)), []float64{1})
		}
		_, err := Write(c, store, "series-b", local,
			NewBox(lo, lo.Add(V3(1, 1, 1))), DefaultWriteConfig(1<<20))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	names, err := ListDatasets(store, "series-")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "series-a" || names[1] != "series-b" {
		t.Errorf("ListDatasets = %v", names)
	}
	only, err := ListDatasets(store, "series-b")
	if err != nil || len(only) != 1 {
		t.Errorf("prefix filter = %v, %v", only, err)
	}
	none, err := ListDatasets(store, "zzz")
	if err != nil || len(none) != 0 {
		t.Errorf("missing prefix = %v, %v", none, err)
	}
}
