// Coal boiler: a particle-injection time series in the spirit of the
// paper's Uintah workload. Particles are injected near inlets each step
// and rise through the domain, so both the total count and the spatial
// clustering grow over time. Each dump is written twice — once with the
// adaptive aggregation tree and once with the AUG baseline — and the
// example compares the resulting file-size distributions, reproducing the
// §VI-A.2 observation that adaptive aggregation bounds the largest file.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"libbat"
	"libbat/internal/workloads"
)

func main() {
	const (
		nRanks = 24
		target = 96 * 1024
	)
	dir, err := os.MkdirTemp("", "libbat-coalboiler")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := libbat.DirStorage(dir)
	if err != nil {
		log.Fatal(err)
	}

	cb, err := workloads.NewCoalBoiler(nRanks)
	if err != nil {
		log.Fatal(err)
	}
	cb.SetGrowth(0, 100, 20_000, 120_000)
	fmt.Printf("coal boiler: %d ranks, injection growing 20k -> 120k particles, dumps in %s\n",
		nRanks, dir)

	for _, step := range []int{0, 50, 100} {
		for _, strategy := range []libbat.Strategy{libbat.Adaptive, libbat.AUG} {
			cfg := libbat.DefaultWriteConfig(target)
			cfg.Strategy = strategy
			base := fmt.Sprintf("boiler-%03d-%s", step, strategy)
			var stats *libbat.WriteStats
			err := libbat.Run(nRanks, func(c *libbat.Comm) error {
				local := cb.Generate(step, c.Rank())
				st, werr := libbat.Write(c, store, base, local, cb.Decomp().RankBounds(c.Rank()), cfg)
				if c.Rank() == 0 {
					stats = st
				}
				return werr
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("step %3d %-8s: %7d particles -> %2d files, avg %5.0f KB, stddev %5.0f KB, max %5.0f KB\n",
				step, strategy, stats.TotalCount, stats.NumFiles,
				stats.LeafSizes.MeanB/1024, stats.LeafSizes.StddevB/1024,
				float64(stats.LeafSizes.MaxB)/1024)
		}
	}

	// Analysis query on the final adaptive dump: sample hot particles in
	// the lower half of the boiler.
	ds, err := libbat.OpenDataset(store, "boiler-100-adaptive")
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()
	lower := ds.Bounds()
	lower.Upper.Z = lower.Lower.Z + lower.Size().Z/2
	tmin, tmax, _ := ds.AttrRange(0)
	hotCut := tmin + 0.75*(tmax-tmin)
	var n int
	var sumT float64
	r := rand.New(rand.NewSource(1))
	err = ds.Query(libbat.Query{
		Bounds:  &lower,
		Filters: []libbat.AttrFilter{{Attr: 0, Min: hotCut, Max: tmax}},
		Quality: 0.5, // representative LOD subset is enough for the average
	}, func(p libbat.Vec3, attrs []float64) error {
		n++
		sumT += attrs[0]
		_ = r
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if n > 0 {
		fmt.Printf("hot lower-boiler sample: %d particles, mean temperature %.0f (cut %.0f)\n",
			n, sumT/float64(n), hotCut)
	}
}
