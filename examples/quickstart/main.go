// Quickstart: write a small particle dataset with the collective two-phase
// pipeline, then query it back — spatially, by attribute, and
// progressively — through the Dataset API.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"libbat"
)

func main() {
	dir, err := os.MkdirTemp("", "libbat-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := libbat.DirStorage(dir)
	if err != nil {
		log.Fatal(err)
	}

	// A 2x2x2 grid of 8 "ranks" (goroutines), each owning a unit cube of
	// the domain and 10k particles with two attributes.
	const ranks, perRank = 8, 10_000
	schema := libbat.NewSchema("temperature", "velocity")
	cfg := libbat.DefaultWriteConfig(libbat.RecommendTargetSize(ranks, perRank*28))

	err = libbat.Run(ranks, func(c *libbat.Comm) error {
		r := rand.New(rand.NewSource(int64(c.Rank())))
		lo := libbat.V3(float64(c.Rank()%2), float64(c.Rank()/2%2), float64(c.Rank()/4))
		bounds := libbat.NewBox(lo, lo.Add(libbat.V3(1, 1, 1)))
		local := libbat.NewParticleSet(schema, perRank)
		for i := 0; i < perRank; i++ {
			p := lo.Add(libbat.V3(r.Float64(), r.Float64(), r.Float64()))
			// Temperature falls with height; velocity is noisy.
			local.Append(p, []float64{300 - 50*p.Z + 5*r.NormFloat64(), r.NormFloat64()})
		}
		stats, err := libbat.Write(c, store, "quickstart", local, bounds, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("wrote %d particles into %d files (largest %.2f MB)\n",
				stats.TotalCount, stats.NumFiles, float64(stats.LeafSizes.MaxB)/(1<<20))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Open the dataset as a single logical store.
	ds, err := libbat.OpenDataset(store, "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()
	fmt.Printf("dataset: %d particles, %d files, domain %v\n",
		ds.NumParticles(), ds.NumFiles(), ds.Bounds())

	// Spatial subset query.
	box := libbat.NewBox(libbat.V3(0.5, 0.5, 0.5), libbat.V3(1.5, 1.5, 1.5))
	n, err := ds.Count(libbat.Query{Bounds: &box})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("central box holds %d particles\n", n)

	// Attribute-filtered query: hot particles (low in the domain).
	hot, err := ds.Count(libbat.Query{
		Filters: []libbat.AttrFilter{{Attr: 0, Min: 290, Max: 400}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d particles with temperature >= 290\n", hot)

	// Progressive multiresolution reads: stream the dataset in three
	// quality increments; each read only touches the new particles.
	prev := 0.0
	for _, q := range []float64{0.1, 0.5, 1.0} {
		inc, err := ds.Count(libbat.Query{PrevQuality: prev, Quality: q})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("quality %.1f: +%d particles\n", q, inc)
		prev = q
	}
}
