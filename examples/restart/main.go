// Checkpoint/restart: the library's other first-class read path (paper
// §IV: "high-bandwidth reads for fast checkpoint restart reads"). A toy
// advection simulation writes periodic checkpoints through the collective
// two-phase pipeline, is killed, and restarts from the latest checkpoint
// with a collective read in which every rank fetches exactly its own
// subdomain — on a different number of ranks than wrote it, which the read
// aggregator assignment handles transparently (§IV-A).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"sync"

	"libbat"
)

const (
	domainSize = 8.0
	dt         = 0.05
)

// advect moves particles with their stored velocity, bouncing off the
// domain walls.
func advect(s *libbat.ParticleSet, steps int) {
	for n := 0; n < steps; n++ {
		for i := 0; i < s.Len(); i++ {
			x := float64(s.X[i]) + s.Attrs[0][i]*dt
			y := float64(s.Y[i]) + s.Attrs[1][i]*dt
			if x < 0 || x > domainSize {
				s.Attrs[0][i] = -s.Attrs[0][i]
				x = math.Max(0, math.Min(domainSize, x))
			}
			if y < 0 || y > domainSize {
				s.Attrs[1][i] = -s.Attrs[1][i]
				y = math.Max(0, math.Min(domainSize, y))
			}
			s.X[i], s.Y[i] = float32(x), float32(y)
		}
	}
}

// rankBounds slabs the domain along x.
func rankBounds(rank, ranks int) libbat.Box {
	w := domainSize / float64(ranks)
	return libbat.NewBox(
		libbat.V3(float64(rank)*w, 0, 0),
		libbat.V3(float64(rank+1)*w, domainSize, 1))
}

// ownerOf returns the rank whose slab holds x.
func ownerOf(x float64, ranks int) int {
	r := int(x / domainSize * float64(ranks))
	if r < 0 {
		r = 0
	}
	if r >= ranks {
		r = ranks - 1
	}
	return r
}

// ownedOnly filters a read-back slab to half-open ownership [lo, hi) so a
// particle sitting exactly on a slab face is restored by exactly one rank.
func ownedOnly(s *libbat.ParticleSet, rank, ranks int) *libbat.ParticleSet {
	out := libbat.NewParticleSet(s.Schema, s.Len())
	attrs := make([]float64, s.Schema.NumAttrs())
	for i := 0; i < s.Len(); i++ {
		if ownerOf(float64(s.X[i]), ranks) != rank {
			continue
		}
		for a := range attrs {
			attrs[a] = s.Attrs[a][i]
		}
		out.Append(s.Position(i), attrs)
	}
	return out
}

// migrate exchanges particles so every rank holds exactly those inside its
// slab — what a real simulation's load balancer does each step, and the
// invariant the write pipeline's rank bounds rely on.
func migrate(c *libbat.Comm, local *libbat.ParticleSet) (*libbat.ParticleSet, error) {
	ranks := c.Size()
	outgoing := make([]*libbat.ParticleSet, ranks)
	for r := range outgoing {
		outgoing[r] = libbat.NewParticleSet(local.Schema, 0)
	}
	attrs := make([]float64, local.Schema.NumAttrs())
	for i := 0; i < local.Len(); i++ {
		for a := range attrs {
			attrs[a] = local.Attrs[a][i]
		}
		dst := ownerOf(float64(local.X[i]), ranks)
		outgoing[dst].Append(local.Position(i), attrs)
	}
	return libbat.Exchange(c, local.Schema, outgoing)
}

func main() {
	dir, err := os.MkdirTemp("", "libbat-restart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := libbat.DirStorage(dir)
	if err != nil {
		log.Fatal(err)
	}
	schema := libbat.NewSchema("vx", "vy")
	const (
		writeRanks = 8
		perRank    = 5000
		checkEvery = 40
	)

	// Phase 1: run on 8 ranks, checkpoint every 40 steps, "crash" after
	// the second checkpoint.
	fmt.Printf("phase 1: %d ranks, checkpoints every %d steps\n", writeRanks, checkEvery)
	lastCheckpoint := ""
	for epoch := 0; epoch < 2; epoch++ {
		base := fmt.Sprintf("ckpt-%04d", (epoch+1)*checkEvery)
		err := libbat.Run(writeRanks, func(c *libbat.Comm) error {
			// Each rank regenerates (epoch 0) or reads (epoch > 0) its
			// state; within this demo the state persists via checkpoints
			// only, exactly like a real restart.
			var local *libbat.ParticleSet
			if epoch == 0 {
				r := rand.New(rand.NewSource(int64(c.Rank())))
				local = libbat.NewParticleSet(schema, perRank)
				b := rankBounds(c.Rank(), writeRanks)
				for i := 0; i < perRank; i++ {
					p := libbat.V3(
						b.Lower.X+r.Float64()*b.Size().X,
						r.Float64()*domainSize,
						r.Float64())
					local.Append(p, []float64{4 * r.NormFloat64(), 4 * r.NormFloat64()})
				}
			} else {
				prev := fmt.Sprintf("ckpt-%04d", epoch*checkEvery)
				var err error
				local, _, err = libbat.Read(c, store, prev, rankBounds(c.Rank(), writeRanks))
				if err != nil {
					return err
				}
				local = ownedOnly(local, c.Rank(), writeRanks)
			}
			advect(local, checkEvery)
			// Rebalance so each rank's particles sit inside its declared
			// bounds before the collective write.
			local, err := migrate(c, local)
			if err != nil {
				return err
			}
			_, err = libbat.Write(c, store, base, local, rankBounds(c.Rank(), writeRanks),
				libbat.DefaultWriteConfig(256<<10))
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		lastCheckpoint = base
		fmt.Printf("  wrote %s\n", base)
	}
	fmt.Println("phase 1 crashed (simulated)")

	// Phase 2: restart from the last checkpoint on a DIFFERENT rank
	// count (12), each rank pulling its own slab.
	const restartRanks = 12
	fmt.Printf("phase 2: restarting %s on %d ranks\n", lastCheckpoint, restartRanks)
	var mu sync.Mutex
	recovered := 0
	err = libbat.Run(restartRanks, func(c *libbat.Comm) error {
		local, stats, err := libbat.Read(c, store, lastCheckpoint, rankBounds(c.Rank(), restartRanks))
		if err != nil {
			return err
		}
		local = ownedOnly(local, c.Rank(), restartRanks)
		mu.Lock()
		recovered += local.Len()
		mu.Unlock()
		if c.Rank() == 0 {
			fmt.Printf("  rank 0 served %d files, read %d particles for its slab\n",
				stats.NumFiles, local.Len())
		}
		// ... and the simulation would continue from here.
		advect(local, 10)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d particles (expected exactly %d)\n", recovered, writeRanks*perRank)
	if recovered != writeRanks*perRank {
		log.Fatal("restart lost or duplicated particles")
	}
	fmt.Println("restart successful")
}
