// Dam break: a real (if miniature) particle simulation in the spirit of
// the paper's ExaMPM/Cabana workload. A water column collapses under
// gravity using a weakly compressible SPH-style update; at every I/O
// interval the particles are partitioned onto a 2D grid of ranks (along x
// and y, as ExaMPM decomposes) and written collectively. Because the wave
// front sweeps across the domain, the per-rank particle counts become
// strongly imbalanced over time — the situation the adaptive aggregation
// tree is built for — and the example prints the imbalance and the
// resulting file-size spread at each dump.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"libbat"
)

// sim is a minimal 2D-in-3D (thin y) SPH-like dam break.
type sim struct {
	x, y, z    []float64
	vx, vy, vz []float64
	domain     libbat.Box
	h          float64 // interaction radius
}

func newSim(n int) *sim {
	s := &sim{
		domain: libbat.NewBox(libbat.V3(0, 0, 0), libbat.V3(8, 1, 3)),
		h:      0.12,
	}
	// Column against the low-x wall: x in [0,1.6], z in [0,2.4].
	cols := int(math.Sqrt(float64(n) * 1.6 / 2.4))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols
	i := 0
	for r := 0; r < rows && i < n; r++ {
		for c := 0; c < cols && i < n; c++ {
			s.x = append(s.x, 0.05+1.55*float64(c)/float64(cols))
			s.y = append(s.y, 0.2+0.6*float64(i%7)/7)
			s.z = append(s.z, 0.05+2.35*float64(r)/float64(rows))
			s.vx = append(s.vx, 0)
			s.vy = append(s.vy, 0)
			s.vz = append(s.vz, 0)
			i++
		}
	}
	return s
}

// step advances the simulation: gravity, a grid-bucketed pair repulsion
// standing in for pressure, wall collisions, and damping.
func (s *sim) step(dt float64) {
	const g = 9.81
	n := len(s.x)
	// Bucket particles on a uniform grid of cell size h for neighbor
	// lookups.
	inv := 1 / s.h
	cell := func(i int) [3]int {
		return [3]int{int(s.x[i] * inv), int(s.y[i] * inv), int(s.z[i] * inv)}
	}
	buckets := make(map[[3]int][]int, n)
	for i := 0; i < n; i++ {
		c := cell(i)
		buckets[c] = append(buckets[c], i)
	}
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	h2 := s.h * s.h
	for i := 0; i < n; i++ {
		c := cell(i)
		for dxc := -1; dxc <= 1; dxc++ {
			for dyc := -1; dyc <= 1; dyc++ {
				for dzc := -1; dzc <= 1; dzc++ {
					for _, j := range buckets[[3]int{c[0] + dxc, c[1] + dyc, c[2] + dzc}] {
						if j == i {
							continue
						}
						dx, dy, dz := s.x[i]-s.x[j], s.y[i]-s.y[j], s.z[i]-s.z[j]
						d2 := dx*dx + dy*dy + dz*dz
						if d2 >= h2 || d2 == 0 {
							continue
						}
						d := math.Sqrt(d2)
						// Repulsive pressure kernel ~ (1 - d/h).
						f := 60 * (1 - d/s.h) / (d + 1e-9)
						ax[i] += f * dx
						ay[i] += f * dy
						az[i] += f * dz
					}
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		s.vx[i] += (ax[i]) * dt
		s.vy[i] += (ay[i]) * dt
		s.vz[i] += (az[i] - g) * dt
		// Mild viscosity.
		s.vx[i] *= 0.999
		s.vy[i] *= 0.995
		s.vz[i] *= 0.999
		s.x[i] += s.vx[i] * dt
		s.y[i] += s.vy[i] * dt
		s.z[i] += s.vz[i] * dt
		// Walls: clamp and reflect.
		bounce := func(p, v *float64, lo, hi float64) {
			if *p < lo {
				*p, *v = lo, -*v*0.3
			}
			if *p > hi {
				*p, *v = hi, -*v*0.3
			}
		}
		bounce(&s.x[i], &s.vx[i], s.domain.Lower.X+1e-6, s.domain.Upper.X-1e-6)
		bounce(&s.y[i], &s.vy[i], s.domain.Lower.Y+1e-6, s.domain.Upper.Y-1e-6)
		bounce(&s.z[i], &s.vz[i], s.domain.Lower.Z+1e-6, s.domain.Upper.Z-1e-6)
	}
}

func main() {
	const (
		nParticles = 12_000
		ranksX     = 8
		ranksY     = 2
		nRanks     = ranksX * ranksY
		dumps      = 4
		stepsPer   = 60
		dt         = 0.004
	)
	dir, err := os.MkdirTemp("", "libbat-dambreak")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := libbat.DirStorage(dir)
	if err != nil {
		log.Fatal(err)
	}
	s := newSim(nParticles)
	schema := libbat.NewSchema("pressure", "speed")
	fmt.Printf("dam break: %d particles on a %dx%d rank grid, %d dumps into %s\n",
		len(s.x), ranksX, ranksY, dumps, dir)

	// Rank bounds: a 2D grid along x and y spanning all of z.
	rankBounds := func(rank int) libbat.Box {
		ix, iy := rank%ranksX, rank/ranksX
		sz := s.domain.Size()
		lo := libbat.V3(
			s.domain.Lower.X+sz.X*float64(ix)/ranksX,
			s.domain.Lower.Y+sz.Y*float64(iy)/ranksY,
			s.domain.Lower.Z)
		hi := libbat.V3(
			s.domain.Lower.X+sz.X*float64(ix+1)/ranksX,
			s.domain.Lower.Y+sz.Y*float64(iy+1)/ranksY,
			s.domain.Upper.Z)
		return libbat.NewBox(lo, hi)
	}

	for dump := 0; dump < dumps; dump++ {
		for i := 0; i < stepsPer; i++ {
			s.step(dt)
		}
		// Partition particles by owning rank (in a distributed run each
		// rank would already hold its subset).
		perRank := make([]*libbat.ParticleSet, nRanks)
		for r := range perRank {
			perRank[r] = libbat.NewParticleSet(schema, 0)
		}
		counts := make([]int, nRanks)
		for i := range s.x {
			ix := int(float64(ranksX) * s.x[i] / s.domain.Upper.X)
			iy := int(float64(ranksY) * s.y[i] / s.domain.Upper.Y)
			if ix >= ranksX {
				ix = ranksX - 1
			}
			if iy >= ranksY {
				iy = ranksY - 1
			}
			r := iy*ranksX + ix
			speed := math.Sqrt(s.vx[i]*s.vx[i] + s.vy[i]*s.vy[i] + s.vz[i]*s.vz[i])
			perRank[r].Append(libbat.V3(s.x[i], s.y[i], s.z[i]),
				[]float64{1000 * 9.81 * math.Max(0, 2-s.z[i]), speed})
			counts[r]++
		}
		max, min := 0, len(s.x)
		for _, c := range counts {
			if c > max {
				max = c
			}
			if c < min {
				min = c
			}
		}

		base := fmt.Sprintf("dambreak-%03d", dump)
		cfg := libbat.DefaultWriteConfig(64 * 1024)
		var stats *libbat.WriteStats
		err := libbat.Run(nRanks, func(c *libbat.Comm) error {
			st, err := libbat.Write(c, store, base, perRank[c.Rank()], rankBounds(c.Rank()), cfg)
			if c.Rank() == 0 {
				stats = st
			}
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dump %d: rank counts min=%d max=%d (imbalance %.1fx) -> %d files, avg %.0f KB, max %.0f KB\n",
			dump, min, max, float64(max)/math.Max(float64(min), 1),
			stats.NumFiles, stats.LeafSizes.MeanB/1024, float64(stats.LeafSizes.MaxB)/1024)
	}

	// Read the final dump back and verify the particle count survived.
	ds, err := libbat.OpenDataset(store, fmt.Sprintf("dambreak-%03d", dumps-1))
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()
	fmt.Printf("final dump holds %d particles; front (max x at quality 0.2): ", ds.NumParticles())
	maxX := 0.0
	if err := ds.Query(libbat.Query{Quality: 0.2}, func(p libbat.Vec3, _ []float64) error {
		if p.X > maxX {
			maxX = p.X
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.2f\n", maxX)
}
