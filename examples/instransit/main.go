// In-transit analysis: the paper notes (§III-C) that after compaction the
// BAT "can be used for in transit visualization and analysis on the
// aggregators before or instead of being written to disk". This example
// builds the compacted layout in memory on an aggregator and runs analysis
// queries against the buffer directly — no file I/O at all — then writes
// the same buffer out, demonstrating that the written bytes and the
// in-transit view are one and the same.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"libbat/internal/bat"
	"libbat/internal/geom"
	"libbat/internal/particles"
)

func main() {
	// Pretend we are an aggregator that just received ~200k particles for
	// its leaf of the aggregation tree.
	const n = 200_000
	r := rand.New(rand.NewSource(7))
	schema := particles.NewSchema("energy", "species")
	set := particles.NewSet(schema, n)
	domain := geom.NewBox(geom.V3(0, 0, 0), geom.V3(2, 2, 2))
	for i := 0; i < n; i++ {
		// Two blobs with different energies and species labels.
		var p geom.Vec3
		var energy, species float64
		if i%3 == 0 {
			p = geom.V3(0.4+0.3*r.NormFloat64(), 0.4+0.3*r.NormFloat64(), 0.4+0.3*r.NormFloat64())
			energy, species = 10+r.Float64(), 1
		} else {
			p = geom.V3(1.5+0.2*r.NormFloat64(), 1.5+0.2*r.NormFloat64(), 1.5+0.2*r.NormFloat64())
			energy, species = 50+5*r.Float64(), 2
		}
		p = p.Max(domain.Lower).Min(domain.Upper)
		set.Append(p, []float64{energy, species})
	}

	// Build the compacted layout (this is what the write pipeline does on
	// every aggregator).
	built, err := bat.Build(set, domain, bat.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built BAT in memory: %d particles, %d treelets, %.2f%% layout overhead\n",
		built.Stats.NumParticles, built.Stats.NumTreelets, 100*built.Stats.OverheadFraction())

	// In-transit analysis straight off the buffer.
	f, err := bat.FromBuffer(built.Buf)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Attribute query: how many high-energy particles?
	hi, err := f.CountMatching(bat.Query{Filters: []bat.AttrFilter{{Attr: 0, Min: 40, Max: 100}}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("high-energy (>=40) particles: %d\n", hi)

	// 2. Spatial + attribute: species-1 particles in the lower octant.
	box := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	s1, err := f.CountMatching(bat.Query{
		Bounds:  &box,
		Filters: []bat.AttrFilter{{Attr: 1, Min: 0.5, Max: 1.5}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("species-1 particles in the lower octant: %d\n", s1)

	// 3. A coarse LOD pass computing a mean — in transit, over ~5%% of
	// the data, without touching the rest.
	var sum float64
	var cnt int
	err = f.Query(bat.Query{Quality: 0.05}, func(_ geom.Vec3, attrs []float64) error {
		sum += attrs[0]
		cnt++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coarse-pass mean energy: %.1f from %d LOD samples (full data: %d)\n",
		sum/float64(cnt), cnt, n)

	// The buffer written to disk is byte-identical to what we analyzed.
	f2, err := bat.FromBuffer(append([]byte(nil), built.Buf...))
	if err != nil {
		log.Fatal(err)
	}
	n2, _ := f2.CountMatching(bat.Query{})
	if int(n2) != n || !bytes.Equal(built.Buf[:4], []byte("BAT1")) {
		log.Fatal("in-transit view diverged from the written layout")
	}
	fmt.Println("written bytes == analyzed bytes: in situ and post hoc views agree")
}
