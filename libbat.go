// Package libbat is a Go reproduction of "Adaptive Spatially Aware I/O for
// Multiresolution Particle Data Layouts" (Usher et al., IPDPS 2021): a
// parallel I/O library for particle data that aggregates ranks through an
// adaptive k-d tree over their spatial bounds and writes each aggregation
// group as a Binned Attribute Tree (BAT) — a multiresolution, bitmap-
// indexed layout directly usable for visualization and analysis.
//
// The library has three layers:
//
//   - Collective I/O: Write and Read are called by every rank of a Fabric
//     (a simulated MPI world; ranks are goroutines) and implement the
//     paper's two-phase pipelines.
//   - Datasets: OpenDataset gives single-process access to a written
//     dataset as if it were one file, with spatial and attribute filtered
//     progressive multiresolution queries.
//   - Building blocks: the aggregation tree, the AUG baseline, the BAT
//     layout, the IOR-style baselines and the Stampede2/Summit cost models
//     live in internal packages and power the benchmark harness
//     (cmd/batbench) that regenerates the paper's tables and figures.
package libbat

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"libbat/internal/bat"
	"libbat/internal/core"
	"libbat/internal/fabric"
	"libbat/internal/geom"
	"libbat/internal/meta"
	"libbat/internal/obs"
	"libbat/internal/obs/access"
	"libbat/internal/particles"
	"libbat/internal/pfs"
)

// Re-exported core types. These aliases are the public names of the
// library's data model; the internal packages are implementation detail.
type (
	// Vec3 is a 3D point.
	Vec3 = geom.Vec3
	// Box is an axis-aligned bounding box.
	Box = geom.Box
	// Schema describes a particle's attributes.
	Schema = particles.Schema
	// AttrDesc names one attribute.
	AttrDesc = particles.AttrDesc
	// ParticleSet is the structure-of-arrays particle container.
	ParticleSet = particles.Set
	// Comm is one rank's communicator handle.
	Comm = fabric.Comm
	// Fabric connects the ranks of a collective run.
	Fabric = fabric.Fabric
	// Storage is the output namespace (directory or memory).
	Storage = pfs.Storage
	// WriteConfig configures collective writes.
	WriteConfig = core.WriteConfig
	// WriteStats reports per-phase write timings.
	WriteStats = core.WriteStats
	// ReadStats reports per-phase read timings.
	ReadStats = core.ReadStats
	// Strategy selects adaptive or AUG aggregation.
	Strategy = core.Strategy
	// Query describes a visualization read.
	Query = bat.Query
	// AttrFilter restricts a query to an attribute interval.
	AttrFilter = bat.AttrFilter
	// Visitor receives query results.
	Visitor = bat.Visitor
	// QueryConfig tunes query execution: traversal workers, ordered vs.
	// order-tolerant delivery, and treelet readahead.
	QueryConfig = bat.QueryConfig
	// QueryStats reports what a traversal visited, rejected, and pruned.
	QueryStats = bat.QueryStats
	// CacheStats snapshots treelet cache hit/miss/eviction counters.
	CacheStats = bat.CacheStats
	// CompressionInfo describes a BAT v3 leaf file's codec configuration
	// (per-attribute error bounds, LOD error scale, payload ratio).
	CompressionInfo = bat.CompressionInfo
	// CompressionMeta is the dataset-level codec declaration mirrored
	// into the top-level metadata at write time.
	CompressionMeta = meta.CompressionMeta
	// Layout is the pluggable leaf file format (paper §VII extension);
	// the default is the BAT.
	Layout = core.Layout
	// LayoutResult is a built leaf image plus its metadata summary.
	LayoutResult = core.LayoutResult
	// RawLayout writes flat particle arrays (template for custom layouts).
	RawLayout = core.RawLayout
	// AccessRecorder captures which treelets, spatial regions, and
	// attributes queries touch (nil = telemetry disabled).
	AccessRecorder = access.Recorder
	// AccessRegistry holds one AccessRecorder per dataset.
	AccessRegistry = access.Registry
	// AccessOptions shapes recorders: heatmap resolution, query-ring size.
	AccessOptions = access.Options
	// AccessSnapshot is a point-in-time export of an AccessRecorder,
	// persistable to a checksummed sidecar and mergeable across replicas.
	AccessSnapshot = access.Snapshot
	// AccessQueryRecord is one entry of the recent-query ring.
	AccessQueryRecord = access.QueryRecord
)

// NewAccessRecorder creates an enabled access-telemetry recorder for a
// dataset with the given spatial domain.
func NewAccessRecorder(name string, bounds Box, opts AccessOptions) *AccessRecorder {
	return access.New(name, bounds, opts)
}

// NewAccessRegistry creates a registry of per-dataset access recorders.
func NewAccessRegistry(opts AccessOptions) *AccessRegistry {
	return access.NewRegistry(opts)
}

// Aggregation strategies.
const (
	Adaptive = core.Adaptive
	AUG      = core.AUG
)

// Receive wildcards for Comm.Recv/Irecv/Probe.
const (
	AnySource = fabric.AnySource
	AnyTag    = fabric.AnyTag
)

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return geom.V3(x, y, z) }

// UnmarshalParticles reverses ParticleSet.Marshal (used when moving
// particle payloads over the fabric by hand, e.g. migration exchanges).
func UnmarshalParticles(buf []byte, schema Schema) (*ParticleSet, error) {
	return particles.Unmarshal(buf, schema)
}

// Exchange performs an all-to-all particle migration: outgoing[r] is sent
// to rank r, and the result is everything addressed to this rank. Use it
// to rebalance particles onto their owning ranks before a collective
// Write.
func Exchange(c *Comm, schema Schema, outgoing []*ParticleSet) (*ParticleSet, error) {
	return core.Exchange(c, schema, outgoing)
}

// NewBox constructs a Box.
func NewBox(lower, upper Vec3) Box { return geom.NewBox(lower, upper) }

// NewSchema builds a schema of float64 attributes.
func NewSchema(names ...string) Schema { return particles.NewSchema(names...) }

// NewParticleSet returns an empty particle set with capacity for n.
func NewParticleSet(schema Schema, n int) *ParticleSet { return particles.NewSet(schema, n) }

// NewFabric connects size ranks.
func NewFabric(size int) *Fabric { return fabric.New(size) }

// Run spawns size ranks running body and waits for all of them.
func Run(size int, body func(c *Comm) error) error { return fabric.Run(size, body) }

// DirStorage opens (creating if needed) a directory as dataset storage.
func DirStorage(dir string) (Storage, error) { return pfs.NewOS(dir) }

// MemStorage returns an in-memory store (tests, in-transit pipelines).
func MemStorage() Storage { return pfs.NewMem() }

// DefaultWriteConfig returns the paper's evaluation configuration for a
// target file size (adaptive aggregation, overfull leaves up to 1.5x at
// balance ratio 4, 12-bit subprefix BATs with 8 LOD particles per node).
func DefaultWriteConfig(targetFileSize int64) WriteConfig {
	return core.DefaultWriteConfig(targetFileSize)
}

// Write performs the collective spatially aware adaptive two-phase write
// (paper §III). Every rank calls it with its local particles and bounds;
// leaf BAT files and a top-level metadata file are written under base.
func Write(c *Comm, store Storage, base string, local *ParticleSet, bounds Box, cfg WriteConfig) (*WriteStats, error) {
	return core.Write(c, store, base, local, bounds, cfg)
}

// Read performs the collective two-phase read (paper §IV), returning the
// particles inside bounds.
func Read(c *Comm, store Storage, base string, bounds Box) (*ParticleSet, *ReadStats, error) {
	return core.Read(c, store, base, bounds)
}

// ReadQuery is the collective read with a full query per rank — spatial
// bounds, attribute filters, and a progressive quality window — the
// distributed in situ analytics path of paper §IV-B.
func ReadQuery(c *Comm, store Storage, base string, q Query) (*ParticleSet, *ReadStats, error) {
	return core.ReadQuery(c, store, base, q)
}

// ReadQueryCtx is ReadQuery honoring ctx. Cancellation never abandons the
// collective protocol (the other ranks would hang); instead this rank's
// leaf serves fail fast with the context's error and the call returns
// ErrPartial with per-leaf errors once the collective completes.
func ReadQueryCtx(ctx context.Context, c *Comm, store Storage, base string, q Query) (*ParticleSet, *ReadStats, error) {
	return core.ReadQueryCtx(ctx, c, store, base, q)
}

// ErrPartial marks a collective read that completed the protocol but could
// not serve every requested leaf (fault or cancellation); the returned set
// holds the particles that were served.
var ErrPartial = core.ErrPartial

// RecommendTargetSize implements the paper's tuning guidance (§VI-A.2) as
// an automatic policy, a future-work item of §VII-A: small aggregation
// factors (1:1 to 4:1) at low rank or particle counts, growing to 16:1 and
// beyond at scale so the file count stays bounded.
func RecommendTargetSize(ranks int, bytesPerRank int64) int64 {
	factor := int64(1)
	switch {
	case ranks >= 16384:
		factor = 32
	case ranks >= 4096:
		factor = 16
	case ranks >= 1024:
		factor = 8
	case ranks >= 256:
		factor = 4
	case ranks >= 64:
		factor = 2
	}
	target := factor * bytesPerRank
	const minTarget = 1 << 20
	if target < minTarget {
		return minTarget
	}
	return target
}

// ListDatasets returns the base names of all datasets in store with the
// given prefix ("" for all), sorted — a simulation's time series.
func ListDatasets(store Storage, prefix string) ([]string, error) {
	all, err := store.List()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, n := range all {
		if strings.HasSuffix(n, metaSuffix) && strings.HasPrefix(n, prefix) {
			names = append(names, strings.TrimSuffix(n, metaSuffix))
		}
	}
	sort.Strings(names)
	return names, nil
}

const metaSuffix = ".batm"

// Dataset is single-process read access to a written dataset, treating the
// whole collection of leaf files as one queryable store (paper §III-D, §V).
//
// A Dataset is safe for concurrent use: any number of goroutines may run
// Query/Count/ReadAll/Histogram at the same time. Leaf files are opened
// lazily with singleflight deduplication, and each leaf's treelet cache is
// itself concurrent. Close must not be called while queries are in flight
// (servers should fence it with their own lock, as cmd/batserve does).
type Dataset struct {
	store pfs.Storage
	meta  *meta.Meta

	mu         sync.Mutex // guards files and the config fields below
	files      map[int]*leafSlot
	qcfg       QueryConfig
	cacheLimit int64 // total budget across leaves; 0 = unbounded
	col        *obs.Collector
	obsLabels  []obs.Label
	accessRec  *access.Recorder
}

// leafSlot is one leaf file's singleflight slot: ready is closed once f/err
// are set, so concurrent queries needing the same unopened leaf open it
// exactly once and share the handle.
type leafSlot struct {
	ready chan struct{}
	f     *bat.File
	err   error
}

// OpenDataset opens the dataset written under base in store.
func OpenDataset(store Storage, base string) (*Dataset, error) {
	f, err := store.Open(core.MetaFileName(base))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := readFull(f, buf); err != nil {
		return nil, err
	}
	m, err := meta.Decode(buf)
	if err != nil {
		return nil, err
	}
	return &Dataset{store: store, meta: m, files: make(map[int]*leafSlot)}, nil
}

func readFull(f pfs.File, buf []byte) (int, error) {
	n, err := f.ReadAt(buf, 0)
	if n == len(buf) {
		return n, nil
	}
	return n, err
}

// Close releases all opened leaf files, waiting for any still mid-open.
func (d *Dataset) Close() error {
	d.mu.Lock()
	files := d.files
	d.files = make(map[int]*leafSlot)
	d.mu.Unlock()
	var errs []error
	for _, s := range files {
		<-s.ready
		if s.err == nil && s.f != nil {
			errs = append(errs, s.f.Close())
		}
	}
	return errors.Join(errs...)
}

// SetQueryConfig sets the traversal configuration applied to every leaf
// query (existing and future opens). Safe to call concurrently with
// queries; in-flight traversals keep their old configuration.
func (d *Dataset) SetQueryConfig(cfg QueryConfig) {
	d.mu.Lock()
	d.qcfg = cfg
	slots := d.openSlotsLocked()
	d.mu.Unlock()
	for _, s := range slots {
		<-s.ready
		if s.err == nil {
			s.f.SetQueryConfig(cfg)
		}
	}
}

// SetCacheLimit bounds the total treelet-cache memory across all leaf
// files (0 = unbounded). The budget is split evenly per leaf.
func (d *Dataset) SetCacheLimit(bytes int64) {
	d.mu.Lock()
	d.cacheLimit = bytes
	per := d.perLeafLimitLocked()
	slots := d.openSlotsLocked()
	d.mu.Unlock()
	for _, s := range slots {
		<-s.ready
		if s.err == nil {
			s.f.SetCacheLimit(per)
		}
	}
}

// SetObserver mirrors per-leaf treelet cache counters into col.
func (d *Dataset) SetObserver(col *obs.Collector, labels ...obs.Label) {
	d.mu.Lock()
	d.col, d.obsLabels = col, labels
	slots := d.openSlotsLocked()
	d.mu.Unlock()
	for _, s := range slots {
		<-s.ready
		if s.err == nil {
			s.f.SetObserver(col, labels...)
		}
	}
}

// SetAccessRecorder attaches an access-telemetry recorder to the dataset:
// every query then records which treelets, heatmap cells, and attributes
// it touched, and a structured record of itself in the recorder's
// recent-query ring. Applies to open and future leaf files; nil detaches
// (future queries pay only nil checks).
func (d *Dataset) SetAccessRecorder(rec *AccessRecorder) {
	d.mu.Lock()
	d.accessRec = rec
	type leafSlotAt struct {
		li int
		s  *leafSlot
	}
	slots := make([]leafSlotAt, 0, len(d.files))
	for li, s := range d.files {
		slots = append(slots, leafSlotAt{li, s})
	}
	d.mu.Unlock()
	for _, ls := range slots {
		<-ls.s.ready
		if ls.s.err == nil {
			ls.s.f.SetAccessRecorder(rec, ls.li)
		}
	}
}

// AccessRecorder returns the attached recorder (nil when telemetry is off).
func (d *Dataset) AccessRecorder() *AccessRecorder {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.accessRec
}

// CacheStats aggregates treelet cache counters across open leaf files.
func (d *Dataset) CacheStats() CacheStats {
	d.mu.Lock()
	slots := d.openSlotsLocked()
	d.mu.Unlock()
	var total CacheStats
	for _, s := range slots {
		<-s.ready
		if s.err == nil {
			st := s.f.CacheStats()
			total.Hits += st.Hits
			total.Misses += st.Misses
			total.Evictions += st.Evictions
			total.Entries += st.Entries
			total.Bytes += st.Bytes
		}
	}
	return total
}

func (d *Dataset) openSlotsLocked() []*leafSlot {
	out := make([]*leafSlot, 0, len(d.files))
	for _, s := range d.files {
		out = append(out, s)
	}
	return out
}

func (d *Dataset) perLeafLimitLocked() int64 {
	if d.cacheLimit <= 0 {
		return 0
	}
	n := int64(len(d.meta.Leaves))
	if n < 1 {
		n = 1
	}
	per := d.cacheLimit / n
	if per < 1 {
		per = 1
	}
	return per
}

// Schema returns the dataset's attribute schema.
func (d *Dataset) Schema() Schema { return d.meta.Schema }

// Bounds returns the dataset's spatial domain.
func (d *Dataset) Bounds() Box { return d.meta.Domain }

// NumParticles returns the dataset's total particle count.
func (d *Dataset) NumParticles() int64 { return d.meta.TotalCount() }

// NumFiles returns the number of leaf files.
func (d *Dataset) NumFiles() int { return len(d.meta.Leaves) }

// Compression returns the dataset's codec declaration from the top-level
// metadata, or nil when the leaf files are uncompressed.
func (d *Dataset) Compression() *CompressionMeta {
	if d.meta.Compression == nil {
		return nil
	}
	cm := *d.meta.Compression
	cm.ErrorBounds = append([]float64(nil), cm.ErrorBounds...)
	return &cm
}

// AttrRange returns the global value range of an attribute.
func (d *Dataset) AttrRange(attr int) (min, max float64, err error) {
	if attr < 0 || attr >= d.meta.Schema.NumAttrs() {
		return 0, 0, fmt.Errorf("libbat: attribute %d out of range", attr)
	}
	r := d.meta.GlobalRanges[attr]
	return r.Min, r.Max, nil
}

// leaf opens (and caches) leaf file li. Concurrent callers for the same
// unopened leaf block on one open; open errors are not cached, so the next
// caller retries. The singleflight carries the same detach semantics as
// the treelet cache: a canceled waiter returns ctx.Err() without touching
// the shared slot, and a waiter whose own ctx is live retries after the
// opening goroutine died of its caller's cancellation.
func (d *Dataset) leaf(ctx context.Context, li int) (*bat.File, error) {
	var s *leafSlot
	for {
		d.mu.Lock()
		var ok bool
		if s, ok = d.files[li]; !ok {
			break
		}
		d.mu.Unlock()
		select {
		case <-s.ready:
		case <-ctx.Done():
			return nil, ctx.Err() // detach; the open continues without us
		}
		if s.err == nil {
			return s.f, nil
		}
		if pfs.IsContextErr(s.err) && ctx.Err() == nil {
			continue // the opener was canceled, we were not: retry
		}
		return nil, s.err
	}
	s = &leafSlot{ready: make(chan struct{})}
	d.files[li] = s
	cfg, per, col, labels, rec := d.qcfg, d.perLeafLimitLocked(), d.col, d.obsLabels, d.accessRec
	d.mu.Unlock()

	s.f, s.err = d.openLeaf(ctx, li, cfg, per, col, labels, rec)
	if s.err != nil {
		d.mu.Lock()
		if d.files[li] == s {
			delete(d.files, li)
		}
		d.mu.Unlock()
	}
	close(s.ready)
	return s.f, s.err
}

func (d *Dataset) openLeaf(ctx context.Context, li int, cfg QueryConfig, cacheLimit int64, col *obs.Collector, labels []obs.Label, rec *access.Recorder) (*bat.File, error) {
	h, err := pfs.OpenContext(ctx, d.store, d.meta.Leaves[li].FileName)
	if err != nil {
		return nil, err
	}
	f, err := bat.DecodeCtx(ctx, h, h.Size())
	if err != nil {
		h.Close()
		return nil, err
	}
	f.SetCloser(h)
	f.SetQueryConfig(cfg)
	f.SetCacheLimit(cacheLimit)
	if col != nil {
		f.SetObserver(col, labels...)
	}
	if rec != nil {
		f.SetAccessRecorder(rec, li)
	}
	return f, nil
}

// Query runs a visualization read over the whole dataset (paper §V): the
// Aggregation Tree prunes leaf files spatially and by attribute bitmap
// before each surviving file's BAT is traversed. Progressive quality
// windows apply per leaf file.
func (d *Dataset) Query(q Query, visit Visitor) error {
	return d.QueryTaggedCtx(context.Background(), "dataset", q, visit)
}

// QueryCtx is Query honoring ctx: when ctx ends, leaf opens and treelet
// traversals abort promptly and ctx.Err() is returned. Leaf files and
// treelets already cached stay valid for later queries.
func (d *Dataset) QueryCtx(ctx context.Context, q Query, visit Visitor) error {
	return d.QueryTaggedCtx(ctx, "dataset", q, visit)
}

// QueryTagged is Query with an explicit source tag for the access-telemetry
// recent-query log (e.g. "batserve:/points"); with no recorder attached it
// is exactly Query.
func (d *Dataset) QueryTagged(source string, q Query, visit Visitor) error {
	return d.QueryTaggedCtx(context.Background(), source, q, visit)
}

// QueryTaggedCtx is QueryTagged honoring ctx, the full-featured form the
// other Query variants delegate to.
func (d *Dataset) QueryTaggedCtx(ctx context.Context, source string, q Query, visit Visitor) error {
	d.mu.Lock()
	rec, workers := d.accessRec, d.qcfg.Workers
	d.mu.Unlock()

	var filters []meta.AttrFilter
	for _, f := range q.Filters {
		filters = append(filters, meta.AttrFilter{Attr: f.Attr, Min: f.Min, Max: f.Max})
	}
	selected := d.meta.SelectLeaves(q.Bounds, filters)

	if rec == nil {
		for _, li := range selected {
			f, err := d.leaf(ctx, li)
			if err != nil {
				return err
			}
			if err := f.QueryCtx(ctx, q, visit); err != nil {
				return err
			}
		}
		return nil
	}

	start := time.Now()
	before := d.CacheStats()
	var total QueryStats
	var qerr error
	for _, li := range selected {
		f, err := d.leaf(ctx, li)
		if err != nil {
			qerr = err
			break
		}
		st, err := f.QueryWithStatsCtx(ctx, q, visit)
		total.Visited += st.Visited
		total.FalsePositives += st.FalsePositives
		total.PrunedSubtrees += st.PrunedSubtrees
		total.Treelets += st.Treelets
		if err != nil {
			qerr = err
			break
		}
	}
	after := d.CacheStats()
	// Cache hit ratio over this query's lookups, from the counter delta.
	// Approximate when queries overlap — concurrent lookups land in the
	// same window — but exact in the common serial-server case.
	var ratio float64
	lookups := (after.Hits - before.Hits) + (after.Misses - before.Misses)
	if lookups > 0 {
		ratio = float64(after.Hits-before.Hits) / float64(lookups)
	}
	recFilters := make([]access.FilterRange, len(q.Filters))
	for i, flt := range q.Filters {
		name := fmt.Sprintf("attr%d", flt.Attr)
		if flt.Attr >= 0 && flt.Attr < d.meta.Schema.NumAttrs() {
			name = d.meta.Schema.Attrs[flt.Attr].Name
		}
		recFilters[i] = access.FilterRange{Attr: name, Min: flt.Min, Max: flt.Max}
	}
	rec.Record(access.QueryRecord{
		Source:         source,
		Box:            access.BoxRecord(q.Bounds),
		Filters:        recFilters,
		PrevQuality:    q.PrevQuality,
		Quality:        q.Quality,
		Workers:        workers,
		Treelets:       total.Treelets,
		Particles:      total.Visited,
		Pruned:         total.PrunedSubtrees,
		FalsePositives: total.FalsePositives,
		Seconds:        time.Since(start).Seconds(),
		CacheHitRatio:  ratio,
	})
	return qerr
}

// Count returns the number of particles a query would visit.
func (d *Dataset) Count(q Query) (int64, error) {
	return d.CountCtx(context.Background(), q)
}

// CountCtx is Count honoring ctx.
func (d *Dataset) CountCtx(ctx context.Context, q Query) (int64, error) {
	var n int64
	err := d.QueryCtx(ctx, q, func(Vec3, []float64) error {
		n++
		return nil
	})
	return n, err
}

// ReadAll collects every particle into one set.
func (d *Dataset) ReadAll() (*ParticleSet, error) {
	out := particles.NewSet(d.meta.Schema, int(d.meta.TotalCount()))
	err := d.Query(Query{}, func(p Vec3, attrs []float64) error {
		out.Append(p, attrs)
		return nil
	})
	return out, err
}

// LeafInfo describes one leaf file of a dataset.
type LeafInfo struct {
	FileName string
	Bounds   Box
	Count    int64
}

// Leaves returns the dataset's leaf files in aggregation order.
func (d *Dataset) Leaves() []LeafInfo {
	out := make([]LeafInfo, len(d.meta.Leaves))
	for i, l := range d.meta.Leaves {
		out[i] = LeafInfo{FileName: l.FileName, Bounds: l.Bounds, Count: l.Count}
	}
	return out
}

// Histogram bins the values of one attribute matched by a query into
// `bins` equal-width buckets over the attribute's global range — a typical
// analysis pass over the layout. Quality below 1 computes the histogram
// from the LOD subset only, trading exactness for latency (§V-B).
func (d *Dataset) Histogram(attr, bins int, q Query) ([]int64, error) {
	if attr < 0 || attr >= d.meta.Schema.NumAttrs() {
		return nil, fmt.Errorf("libbat: attribute %d out of range", attr)
	}
	if bins < 1 {
		return nil, fmt.Errorf("libbat: need at least 1 bin")
	}
	r := d.meta.GlobalRanges[attr]
	width := r.Max - r.Min
	out := make([]int64, bins)
	err := d.Query(q, func(_ Vec3, attrs []float64) error {
		b := 0
		if width > 0 {
			b = int((attrs[attr] - r.Min) / width * float64(bins))
			if b < 0 {
				b = 0
			}
			if b >= bins {
				b = bins - 1
			}
		}
		out[b]++
		return nil
	})
	return out, err
}
