// Package libbat is a Go reproduction of "Adaptive Spatially Aware I/O for
// Multiresolution Particle Data Layouts" (Usher et al., IPDPS 2021): a
// parallel I/O library for particle data that aggregates ranks through an
// adaptive k-d tree over their spatial bounds and writes each aggregation
// group as a Binned Attribute Tree (BAT) — a multiresolution, bitmap-
// indexed layout directly usable for visualization and analysis.
//
// The library has three layers:
//
//   - Collective I/O: Write and Read are called by every rank of a Fabric
//     (a simulated MPI world; ranks are goroutines) and implement the
//     paper's two-phase pipelines.
//   - Datasets: OpenDataset gives single-process access to a written
//     dataset as if it were one file, with spatial and attribute filtered
//     progressive multiresolution queries.
//   - Building blocks: the aggregation tree, the AUG baseline, the BAT
//     layout, the IOR-style baselines and the Stampede2/Summit cost models
//     live in internal packages and power the benchmark harness
//     (cmd/batbench) that regenerates the paper's tables and figures.
package libbat

import (
	"fmt"
	"sort"
	"strings"

	"libbat/internal/bat"
	"libbat/internal/core"
	"libbat/internal/fabric"
	"libbat/internal/geom"
	"libbat/internal/meta"
	"libbat/internal/particles"
	"libbat/internal/pfs"
)

// Re-exported core types. These aliases are the public names of the
// library's data model; the internal packages are implementation detail.
type (
	// Vec3 is a 3D point.
	Vec3 = geom.Vec3
	// Box is an axis-aligned bounding box.
	Box = geom.Box
	// Schema describes a particle's attributes.
	Schema = particles.Schema
	// AttrDesc names one attribute.
	AttrDesc = particles.AttrDesc
	// ParticleSet is the structure-of-arrays particle container.
	ParticleSet = particles.Set
	// Comm is one rank's communicator handle.
	Comm = fabric.Comm
	// Fabric connects the ranks of a collective run.
	Fabric = fabric.Fabric
	// Storage is the output namespace (directory or memory).
	Storage = pfs.Storage
	// WriteConfig configures collective writes.
	WriteConfig = core.WriteConfig
	// WriteStats reports per-phase write timings.
	WriteStats = core.WriteStats
	// ReadStats reports per-phase read timings.
	ReadStats = core.ReadStats
	// Strategy selects adaptive or AUG aggregation.
	Strategy = core.Strategy
	// Query describes a visualization read.
	Query = bat.Query
	// AttrFilter restricts a query to an attribute interval.
	AttrFilter = bat.AttrFilter
	// Visitor receives query results.
	Visitor = bat.Visitor
	// Layout is the pluggable leaf file format (paper §VII extension);
	// the default is the BAT.
	Layout = core.Layout
	// LayoutResult is a built leaf image plus its metadata summary.
	LayoutResult = core.LayoutResult
	// RawLayout writes flat particle arrays (template for custom layouts).
	RawLayout = core.RawLayout
)

// Aggregation strategies.
const (
	Adaptive = core.Adaptive
	AUG      = core.AUG
)

// Receive wildcards for Comm.Recv/Irecv/Probe.
const (
	AnySource = fabric.AnySource
	AnyTag    = fabric.AnyTag
)

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return geom.V3(x, y, z) }

// UnmarshalParticles reverses ParticleSet.Marshal (used when moving
// particle payloads over the fabric by hand, e.g. migration exchanges).
func UnmarshalParticles(buf []byte, schema Schema) (*ParticleSet, error) {
	return particles.Unmarshal(buf, schema)
}

// Exchange performs an all-to-all particle migration: outgoing[r] is sent
// to rank r, and the result is everything addressed to this rank. Use it
// to rebalance particles onto their owning ranks before a collective
// Write.
func Exchange(c *Comm, schema Schema, outgoing []*ParticleSet) (*ParticleSet, error) {
	return core.Exchange(c, schema, outgoing)
}

// NewBox constructs a Box.
func NewBox(lower, upper Vec3) Box { return geom.NewBox(lower, upper) }

// NewSchema builds a schema of float64 attributes.
func NewSchema(names ...string) Schema { return particles.NewSchema(names...) }

// NewParticleSet returns an empty particle set with capacity for n.
func NewParticleSet(schema Schema, n int) *ParticleSet { return particles.NewSet(schema, n) }

// NewFabric connects size ranks.
func NewFabric(size int) *Fabric { return fabric.New(size) }

// Run spawns size ranks running body and waits for all of them.
func Run(size int, body func(c *Comm) error) error { return fabric.Run(size, body) }

// DirStorage opens (creating if needed) a directory as dataset storage.
func DirStorage(dir string) (Storage, error) { return pfs.NewOS(dir) }

// MemStorage returns an in-memory store (tests, in-transit pipelines).
func MemStorage() Storage { return pfs.NewMem() }

// DefaultWriteConfig returns the paper's evaluation configuration for a
// target file size (adaptive aggregation, overfull leaves up to 1.5x at
// balance ratio 4, 12-bit subprefix BATs with 8 LOD particles per node).
func DefaultWriteConfig(targetFileSize int64) WriteConfig {
	return core.DefaultWriteConfig(targetFileSize)
}

// Write performs the collective spatially aware adaptive two-phase write
// (paper §III). Every rank calls it with its local particles and bounds;
// leaf BAT files and a top-level metadata file are written under base.
func Write(c *Comm, store Storage, base string, local *ParticleSet, bounds Box, cfg WriteConfig) (*WriteStats, error) {
	return core.Write(c, store, base, local, bounds, cfg)
}

// Read performs the collective two-phase read (paper §IV), returning the
// particles inside bounds.
func Read(c *Comm, store Storage, base string, bounds Box) (*ParticleSet, *ReadStats, error) {
	return core.Read(c, store, base, bounds)
}

// ReadQuery is the collective read with a full query per rank — spatial
// bounds, attribute filters, and a progressive quality window — the
// distributed in situ analytics path of paper §IV-B.
func ReadQuery(c *Comm, store Storage, base string, q Query) (*ParticleSet, *ReadStats, error) {
	return core.ReadQuery(c, store, base, q)
}

// RecommendTargetSize implements the paper's tuning guidance (§VI-A.2) as
// an automatic policy, a future-work item of §VII-A: small aggregation
// factors (1:1 to 4:1) at low rank or particle counts, growing to 16:1 and
// beyond at scale so the file count stays bounded.
func RecommendTargetSize(ranks int, bytesPerRank int64) int64 {
	factor := int64(1)
	switch {
	case ranks >= 16384:
		factor = 32
	case ranks >= 4096:
		factor = 16
	case ranks >= 1024:
		factor = 8
	case ranks >= 256:
		factor = 4
	case ranks >= 64:
		factor = 2
	}
	target := factor * bytesPerRank
	const minTarget = 1 << 20
	if target < minTarget {
		return minTarget
	}
	return target
}

// ListDatasets returns the base names of all datasets in store with the
// given prefix ("" for all), sorted — a simulation's time series.
func ListDatasets(store Storage, prefix string) ([]string, error) {
	all, err := store.List()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, n := range all {
		if strings.HasSuffix(n, metaSuffix) && strings.HasPrefix(n, prefix) {
			names = append(names, strings.TrimSuffix(n, metaSuffix))
		}
	}
	sort.Strings(names)
	return names, nil
}

const metaSuffix = ".batm"

// Dataset is single-process read access to a written dataset, treating the
// whole collection of leaf files as one queryable store (paper §III-D, §V).
type Dataset struct {
	store pfs.Storage
	meta  *meta.Meta
	files map[int]*bat.File
}

// OpenDataset opens the dataset written under base in store.
func OpenDataset(store Storage, base string) (*Dataset, error) {
	f, err := store.Open(core.MetaFileName(base))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := readFull(f, buf); err != nil {
		return nil, err
	}
	m, err := meta.Decode(buf)
	if err != nil {
		return nil, err
	}
	return &Dataset{store: store, meta: m, files: make(map[int]*bat.File)}, nil
}

func readFull(f pfs.File, buf []byte) (int, error) {
	n, err := f.ReadAt(buf, 0)
	if n == len(buf) {
		return n, nil
	}
	return n, err
}

// Close releases all opened leaf files.
func (d *Dataset) Close() error {
	var first error
	for _, f := range d.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	d.files = map[int]*bat.File{}
	return first
}

// Schema returns the dataset's attribute schema.
func (d *Dataset) Schema() Schema { return d.meta.Schema }

// Bounds returns the dataset's spatial domain.
func (d *Dataset) Bounds() Box { return d.meta.Domain }

// NumParticles returns the dataset's total particle count.
func (d *Dataset) NumParticles() int64 { return d.meta.TotalCount() }

// NumFiles returns the number of leaf files.
func (d *Dataset) NumFiles() int { return len(d.meta.Leaves) }

// AttrRange returns the global value range of an attribute.
func (d *Dataset) AttrRange(attr int) (min, max float64, err error) {
	if attr < 0 || attr >= d.meta.Schema.NumAttrs() {
		return 0, 0, fmt.Errorf("libbat: attribute %d out of range", attr)
	}
	r := d.meta.GlobalRanges[attr]
	return r.Min, r.Max, nil
}

// leaf opens (and caches) leaf file li.
func (d *Dataset) leaf(li int) (*bat.File, error) {
	if f, ok := d.files[li]; ok {
		return f, nil
	}
	h, err := d.store.Open(d.meta.Leaves[li].FileName)
	if err != nil {
		return nil, err
	}
	f, err := bat.Decode(h, h.Size())
	if err != nil {
		h.Close()
		return nil, err
	}
	f.SetCloser(h)
	d.files[li] = f
	return f, nil
}

// Query runs a visualization read over the whole dataset (paper §V): the
// Aggregation Tree prunes leaf files spatially and by attribute bitmap
// before each surviving file's BAT is traversed. Progressive quality
// windows apply per leaf file.
func (d *Dataset) Query(q Query, visit Visitor) error {
	var filters []meta.AttrFilter
	for _, f := range q.Filters {
		filters = append(filters, meta.AttrFilter{Attr: f.Attr, Min: f.Min, Max: f.Max})
	}
	selected := d.meta.SelectLeaves(q.Bounds, filters)
	for _, li := range selected {
		f, err := d.leaf(li)
		if err != nil {
			return err
		}
		if err := f.Query(q, visit); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of particles a query would visit.
func (d *Dataset) Count(q Query) (int64, error) {
	var n int64
	err := d.Query(q, func(Vec3, []float64) error {
		n++
		return nil
	})
	return n, err
}

// ReadAll collects every particle into one set.
func (d *Dataset) ReadAll() (*ParticleSet, error) {
	out := particles.NewSet(d.meta.Schema, int(d.meta.TotalCount()))
	err := d.Query(Query{}, func(p Vec3, attrs []float64) error {
		out.Append(p, attrs)
		return nil
	})
	return out, err
}

// LeafInfo describes one leaf file of a dataset.
type LeafInfo struct {
	FileName string
	Bounds   Box
	Count    int64
}

// Leaves returns the dataset's leaf files in aggregation order.
func (d *Dataset) Leaves() []LeafInfo {
	out := make([]LeafInfo, len(d.meta.Leaves))
	for i, l := range d.meta.Leaves {
		out[i] = LeafInfo{FileName: l.FileName, Bounds: l.Bounds, Count: l.Count}
	}
	return out
}

// Histogram bins the values of one attribute matched by a query into
// `bins` equal-width buckets over the attribute's global range — a typical
// analysis pass over the layout. Quality below 1 computes the histogram
// from the LOD subset only, trading exactness for latency (§V-B).
func (d *Dataset) Histogram(attr, bins int, q Query) ([]int64, error) {
	if attr < 0 || attr >= d.meta.Schema.NumAttrs() {
		return nil, fmt.Errorf("libbat: attribute %d out of range", attr)
	}
	if bins < 1 {
		return nil, fmt.Errorf("libbat: need at least 1 bin")
	}
	r := d.meta.GlobalRanges[attr]
	width := r.Max - r.Min
	out := make([]int64, bins)
	err := d.Query(q, func(_ Vec3, attrs []float64) error {
		b := 0
		if width > 0 {
			b = int((attrs[attr] - r.Min) / width * float64(bins))
			if b < 0 {
				b = 0
			}
			if b >= bins {
				b = bins - 1
			}
		}
		out[b]++
		return nil
	})
	return out, err
}
