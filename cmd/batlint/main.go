// Batlint runs the repo's custom static-analysis suite (internal/analyzers)
// over Go packages and reports invariant violations.
//
// Standalone:
//
//	go run ./cmd/batlint ./...          # whole repo (the CI gate)
//	go run ./cmd/batlint -list          # describe the analyzers
//	go run ./cmd/batlint -spanpair=false ./internal/core/...
//
// As a go vet tool (the unitchecker protocol — go vet loads packages and
// hands each unit to the tool as a .cfg file):
//
//	go build -o /tmp/batlint ./cmd/batlint
//	go vet -vettool=/tmp/batlint ./...
//
// Exit status: 0 clean, 1 on internal errors (load/type-check failures),
// 2 when findings were reported. Findings are suppressed only by an
// auditable //batlint:ignore <analyzer> <justification> comment; see
// README.md and DESIGN.md §9.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"libbat/internal/analyzers"
	"libbat/internal/analyzers/analysis"
)

func main() {
	args := os.Args[1:]
	// go vet probes the tool before using it: -V=full for a tool ID,
	// -flags for the analyzer flags it may forward. Both come alone.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion()
			return
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runVetUnit(args[0]))
		}
	}
	os.Exit(runStandalone(args))
}

// printVersion implements the -V=full handshake: the go command derives a
// tool ID from "<progname> version ... buildID=<content hash>".
func printVersion() {
	progname := os.Args[0]
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", filepath.Base(progname), h.Sum(nil)[:24])
}

// runStandalone loads packages with `go list -export` and runs the suite.
func runStandalone(args []string) int {
	fs := flag.NewFlagSet("batlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: batlint [flags] [packages]\n\n")
		fs.PrintDefaults()
	}
	list := fs.Bool("list", false, "describe the analyzers and exit")
	suite := analyzers.All()
	enabled := map[string]*bool{}
	for _, a := range suite {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	var active []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	pkgs, err := analysis.Load("", fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "batlint:", err)
		return 1
	}
	findings, err := analysis.Run(pkgs, active)
	if err != nil {
		fmt.Fprintln(os.Stderr, "batlint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "batlint: %d finding(s)\n", len(findings))
		return 2
	}
	return 0
}

// vetConfig is the subset of the go vet unit config batlint consumes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one go vet unit of work: type-check the unit's files
// against the export data the go command already built, run the suite, and
// write the (empty — batlint exports no facts) .vetx file the protocol
// requires.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "batlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "batlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "batlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// go vet also hands over test units ("pkg [pkg.test]"); batlint's
	// invariants govern shipped code only — tests seed math/rand and drop
	// cleanup errors deliberately — matching the standalone loader, which
	// analyzes GoFiles and never sees test files.
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			return 0
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := analysis.TypeCheck(token.NewFileSet(), cfg.ImportPath, cfg.GoFiles, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "batlint:", err)
		return 1
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, analyzers.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "batlint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
