// Batlint runs the repo's custom static-analysis suite (internal/analyzers)
// over Go packages and reports invariant violations.
//
// Standalone:
//
//	go run ./cmd/batlint ./...          # whole repo (the CI gate)
//	go run ./cmd/batlint -list          # describe the analyzers
//	go run ./cmd/batlint -json ./...    # machine-readable findings
//	go run ./cmd/batlint -waivers ./... # audit every //batlint:ignore
//	go run ./cmd/batlint -spanpair=false ./internal/core/...
//
// As a go vet tool (the unitchecker protocol — go vet loads packages and
// hands each unit to the tool as a .cfg file). Interprocedural summaries
// travel between units as facts in the .vetx files the protocol already
// moves around, so vet mode sees the same cross-package bounds the
// standalone mode computes in one process:
//
//	go build -o /tmp/batlint ./cmd/batlint
//	go vet -vettool=/tmp/batlint ./...
//
// Exit status: 0 clean, 1 on internal errors (load/type-check failures),
// 2 when findings were reported (or, with -waivers, when a directive is
// malformed). Findings are suppressed only by an auditable
// //batlint:ignore <analyzer> <justification> comment; see README.md and
// DESIGN.md §9.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"libbat/internal/analyzers"
	"libbat/internal/analyzers/analysis"
)

func main() {
	args := os.Args[1:]
	// go vet probes the tool before using it: -V=full for a tool ID,
	// -flags for the analyzer flags it may forward. Both come alone.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion()
			return
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runVetUnit(args[0]))
		}
	}
	os.Exit(runStandalone(args))
}

// printVersion implements the -V=full handshake: the go command derives a
// tool ID from "<progname> version ... buildID=<content hash>".
func printVersion() {
	progname := os.Args[0]
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", filepath.Base(progname), h.Sum(nil)[:24])
}

// findingJSON is one -json record: position, analyzer, message, and
// whether a //batlint:ignore covered it (with the justification).
type findingJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Waived   bool   `json:"waived"`
	Waiver   string `json:"waiver,omitempty"`
}

// waiverJSON is one -waivers -json record.
type waiverJSON struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers,omitempty"`
	Reason    string   `json:"reason"`
	Malformed bool     `json:"malformed,omitempty"`
}

// runStandalone loads packages with `go list -export` and runs the suite.
func runStandalone(args []string) int {
	fs := flag.NewFlagSet("batlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: batlint [flags] [packages]\n\n")
		fs.PrintDefaults()
	}
	list := fs.Bool("list", false, "describe the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings (including waived ones) as JSON on stdout")
	waiversMode := fs.Bool("waivers", false,
		"audit mode: inventory every //batlint:ignore (file, analyzer, justification); exit 2 on malformed directives")
	suite := analyzers.All()
	enabled := map[string]*bool{}
	for _, a := range suite {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	var active []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	pkgs, err := analysis.Load("", fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "batlint:", err)
		return 1
	}
	if *waiversMode {
		return runWaiversAudit(pkgs, *jsonOut)
	}
	findings, err := analysis.Run(pkgs, active)
	if err != nil {
		fmt.Fprintln(os.Stderr, "batlint:", err)
		return 1
	}
	live := 0
	for _, f := range findings {
		if !f.Waived {
			live++
		}
	}
	if *jsonOut {
		recs := make([]findingJSON, 0, len(findings))
		for _, f := range findings {
			recs = append(recs, findingJSON{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
				Waived:   f.Waived,
				Waiver:   f.WaiverReason,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			fmt.Fprintln(os.Stderr, "batlint:", err)
			return 1
		}
	} else {
		for _, f := range findings {
			if !f.Waived {
				fmt.Println(f)
			}
		}
	}
	if live > 0 {
		fmt.Fprintf(os.Stderr, "batlint: %d finding(s)\n", live)
		return 2
	}
	return 0
}

// runWaiversAudit prints the live-waiver ledger and fails on malformed
// directives, so waiver debt is a reviewable report instead of a grep.
func runWaiversAudit(pkgs []*analysis.Package, jsonOut bool) int {
	ws := analysis.CollectWaivers(pkgs)
	malformed := 0
	for _, w := range ws {
		if w.Malformed {
			malformed++
		}
	}
	if jsonOut {
		recs := make([]waiverJSON, 0, len(ws))
		for _, w := range ws {
			recs = append(recs, waiverJSON{
				File: w.File, Line: w.Line,
				Analyzers: w.Analyzers, Reason: w.Reason, Malformed: w.Malformed,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			fmt.Fprintln(os.Stderr, "batlint:", err)
			return 1
		}
	} else {
		for _, w := range ws {
			if w.Malformed {
				fmt.Printf("%s:%d: MALFORMED //batlint:ignore (needs <analyzer> <why>): %s\n",
					w.File, w.Line, w.Reason)
				continue
			}
			fmt.Printf("%s:%d: %s — %s\n", w.File, w.Line, strings.Join(w.Analyzers, ","), w.Reason)
		}
		fmt.Fprintf(os.Stderr, "batlint: %d live waiver(s), %d malformed\n", len(ws)-malformed, malformed)
	}
	if malformed > 0 {
		return 2
	}
	return 0
}

// vetConfig is the subset of the go vet unit config batlint consumes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one go vet unit of work: type-check the unit's files
// against the export data the go command already built, seed the
// interprocedural state from the dependency facts in PackageVetx, run the
// suite, and write this unit's summaries to the .vetx file the protocol
// requires — that is how cross-package bounds reach downstream units.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "batlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "batlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// batlint's invariants govern shipped code only — tests seed math/rand
	// and drop cleanup errors deliberately — but go vet hands over the
	// package *augmented* with its in-package test files, so the unit is
	// analyzed with the _test.go files stripped (the shipped files always
	// form a complete package on their own), matching the standalone
	// loader. External test packages (every file stripped), synthesized
	// test mains (".test"), and units outside this module (stdlib
	// dependencies pulled in for facts) are skipped outright: summaries
	// only matter for module code, and the analyzers special-case the
	// stdlib decode entry points structurally.
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	skip := !strings.HasPrefix(cfg.ImportPath, "libbat") ||
		strings.HasSuffix(cfg.ImportPath, ".test") ||
		len(goFiles) == 0
	if skip {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "batlint:", err)
				return 1
			}
		}
		return 0
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := analysis.TypeCheck(token.NewFileSet(), cfg.ImportPath, goFiles, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "batlint:", err)
		return 1
	}
	// Accumulate dependency facts. Files written by other tools (or the
	// empty files batlint writes for skipped units) decode to nil and are
	// ignored.
	var imported *analysis.Facts
	for _, vetx := range cfg.PackageVetx {
		if data, err := os.ReadFile(vetx); err == nil {
			imported = analysis.MergeFacts(imported, analysis.DecodeFacts(data))
		}
	}
	prog := analysis.BuildProgram([]*analysis.Package{pkg}, imported)
	if cfg.VetxOutput != "" {
		facts, err := analysis.EncodeFacts(prog.ExportFacts())
		if err != nil {
			fmt.Fprintln(os.Stderr, "batlint:", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "batlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	findings, err := analysis.RunProgram(prog, []*analysis.Package{pkg}, analyzers.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "batlint:", err)
		return 1
	}
	live := 0
	for _, f := range findings {
		if f.Waived {
			continue
		}
		live++
		fmt.Fprintln(os.Stderr, f)
	}
	if live > 0 {
		return 2
	}
	return 0
}
