// Command batread runs a collective two-phase read of a dataset written by
// batwrite (or the library) and reports per-rank read statistics, or — with
// -vis — runs the paper's single-threaded progressive visualization read
// benchmark on the dataset.
//
//	batread -in /tmp/ds -name coal-boiler-0050 -ranks 8
//	batread -in /tmp/ds -name coal-boiler-0050 -vis
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"libbat"
	"libbat/internal/bench"
	"libbat/internal/cliutil"
	"libbat/internal/mmapio"
	"libbat/internal/pfs"
)

// filterFlags accumulates repeated -filter attr,min,max arguments.
type filterFlags []libbat.AttrFilter

func (f *filterFlags) String() string { return fmt.Sprintf("%d filters", len(*f)) }

func (f *filterFlags) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) != 3 {
		return fmt.Errorf("want attr,min,max")
	}
	attr, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return err
	}
	min, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return err
	}
	max, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil {
		return err
	}
	*f = append(*f, libbat.AttrFilter{Attr: attr, Min: min, Max: max})
	return nil
}

func main() {
	var filters filterFlags
	var (
		in        = flag.String("in", "bat-out", "dataset directory")
		name      = flag.String("name", "", "dataset base name (required)")
		ranks     = flag.Int("ranks", 8, "number of simulated reader ranks")
		vis       = flag.Bool("vis", false, "run the progressive visualization read benchmark instead")
		quality   = flag.Float64("quality", 1, "LOD quality in (0,1] for -count queries")
		count     = flag.Bool("count", false, "count particles matching -filter/-quality and exit")
		workers   = flag.Int("query-workers", 0, "traversal goroutines per query for -count (0 = GOMAXPROCS, 1 = serial)")
		cacheMB   = flag.Int64("cache-mb", 0, "treelet cache budget in MiB for -count (0 = unbounded)")
		statsOut  = flag.String("stats", "", "write telemetry counters/histograms/spans as JSON to this file")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file (open in Perfetto)")
		accessOut = flag.String("access-out", "", "write the access-telemetry snapshot as a .bata sidecar to this file (batinspect -access reads it)")
		timeout   = flag.Duration("timeout", 0,
			"overall read deadline; on a stalled filesystem the collective read degrades to the healthy leaves and reports the rest as partial (0 = none)")
	)
	flag.Var(&filters, "filter", "attribute filter attr,min,max (repeatable, with -count)")
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "batread:", err)
		os.Exit(1)
	}
	if *name == "" {
		fail(fmt.Errorf("-name is required"))
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	store, err := libbat.DirStorage(*in)
	if err != nil {
		fail(err)
	}
	obsFlags := cliutil.ObsFlags{StatsPath: *statsOut, TracePath: *traceOut}
	col := obsFlags.Collector()
	if col != nil {
		store = pfs.Observe(store, col)
		mmapio.SetCollector(col)
		bench.Observer = col
	}
	dump := func() {
		if err := obsFlags.Dump(col); err != nil {
			fail(err)
		}
	}
	// writeAccess persists the access-telemetry snapshot as a sidecar file
	// (same format batserve -access-persist writes and batinspect -access
	// reads).
	writeAccess := func(rec *libbat.AccessRecorder) {
		if *accessOut == "" {
			return
		}
		if rec == nil {
			fail(fmt.Errorf("-access-out: no access telemetry was recorded"))
		}
		buf, err := rec.Snapshot().Marshal()
		if err == nil {
			err = os.WriteFile(*accessOut, buf, 0o644)
		}
		if err != nil {
			fail(err)
		}
	}

	if *count {
		ds, err := libbat.OpenDataset(store, *name)
		if err != nil {
			fail(err)
		}
		defer ds.Close()
		qw := *workers
		if qw == 0 {
			qw = -1 // bat: negative means GOMAXPROCS
		}
		ds.SetQueryConfig(libbat.QueryConfig{Workers: qw, Readahead: 2})
		if *cacheMB > 0 {
			ds.SetCacheLimit(*cacheMB << 20)
		}
		if col != nil {
			ds.SetObserver(col)
		}
		if *accessOut != "" {
			ds.SetAccessRecorder(libbat.NewAccessRecorder(*name, ds.Bounds(), libbat.AccessOptions{}))
		}
		n, err := ds.CountCtx(ctx, libbat.Query{Filters: filters, Quality: *quality})
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d of %d particles match (quality %.2f, %d filters)\n",
			n, ds.NumParticles(), *quality, len(filters))
		dump()
		writeAccess(ds.AccessRecorder())
		return
	}

	if *vis {
		res, err := bench.ProgressiveRead(store, *name)
		if err != nil {
			fail(err)
		}
		fmt.Printf("progressive read (quality 0.1..1.0): avg %.2f ms/read, %.0f pts/ms, %d points total\n",
			res.AvgReadMs, res.PtsPerMs, res.TotalPts)
		dump()
		return
	}

	ds, err := libbat.OpenDataset(store, *name)
	if err != nil {
		fail(err)
	}
	domain := ds.Bounds()
	total := ds.NumParticles()
	ds.Close()

	var mu sync.Mutex
	var sumParticles int64
	start := time.Now()
	f := libbat.NewFabric(*ranks)
	f.SetObserver(col)
	var accessReg *libbat.AccessRegistry
	if *accessOut != "" {
		accessReg = libbat.NewAccessRegistry(libbat.AccessOptions{})
		f.SetAccessRegistry(accessReg)
	}
	err = f.Run(func(c *libbat.Comm) error {
		// Each reader takes a slab of the domain along the longest axis.
		axis := domain.LongestAxis()
		lo := domain.Lower.Component(axis) + domain.Size().Component(axis)*float64(c.Rank())/float64(*ranks)
		hi := domain.Lower.Component(axis) + domain.Size().Component(axis)*float64(c.Rank()+1)/float64(*ranks)
		box := domain
		box.Lower = box.Lower.SetComponent(axis, lo)
		box.Upper = box.Upper.SetComponent(axis, hi)
		got, stats, err := libbat.ReadQueryCtx(ctx, c, store, *name, libbat.Query{Bounds: &box, Quality: 1})
		if err != nil && !errors.Is(err, libbat.ErrPartial) {
			return err
		}
		mu.Lock()
		sumParticles += int64(got.Len())
		mu.Unlock()
		if err != nil {
			fmt.Fprintf(os.Stderr, "batread: rank %d: partial read (%d leaves failed): %v\n",
				c.Rank(), len(stats.LeafErrors), err)
		}
		if c.Rank() == 0 {
			fmt.Printf("rank 0: meta=%v fileread=%v transfer=%v (%d files served)\n",
				stats.Metadata.Round(time.Microsecond), stats.FileRead.Round(time.Microsecond),
				stats.Transfer.Round(time.Microsecond), stats.NumFiles)
		}
		return nil
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("read %d particles (dataset holds %d) on %d ranks in %v\n",
		sumParticles, total, *ranks, time.Since(start).Round(time.Millisecond))
	dump()
	if accessReg != nil {
		writeAccess(accessReg.Lookup(*name))
	}
}
