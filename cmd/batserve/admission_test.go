package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"libbat/internal/obs"
)

// TestAdmissionDisabled: a nil gate admits everything and release is safe.
func TestAdmissionDisabled(t *testing.T) {
	var a *admission
	release, status := a.acquire(context.Background())
	if status != 0 {
		t.Fatalf("nil admission rejected with %d", status)
	}
	release()
	if newAdmission(obs.New(), 0, 5) != nil {
		t.Error("maxInflight=0 must disable admission")
	}
}

// TestAdmissionLifecycle walks the full state machine: admit to capacity,
// queue one waiter, bounce the next (429), time the waiter out (503), and
// verify a released slot admits again.
func TestAdmissionLifecycle(t *testing.T) {
	col := obs.New()
	a := newAdmission(col, 1, 1)

	rel1, status := a.acquire(context.Background())
	if status != 0 {
		t.Fatalf("first acquire rejected with %d", status)
	}

	// Second request queues; give it a deadline so the test can drive it
	// into the 503 path later.
	waiter := make(chan int, 1)
	wctx, wcancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer wcancel()
	go func() {
		rel, status := a.acquire(wctx)
		if rel != nil {
			rel()
		}
		waiter <- status
	}()
	// Wait until the waiter actually occupies the queue place.
	for i := 0; len(a.queue) == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	// Third request finds slot and queue both full: immediate 429.
	if _, status := a.acquire(context.Background()); status != 429 {
		t.Fatalf("over-capacity acquire = %d, want 429", status)
	}

	// The queued waiter's deadline fires: 503.
	if status := <-waiter; status != 503 {
		t.Fatalf("queued waiter = %d, want 503", status)
	}

	// Slot freed: admission works again.
	rel1()
	rel2, status := a.acquire(context.Background())
	if status != 0 {
		t.Fatalf("post-release acquire rejected with %d", status)
	}
	rel2()

	// The counters observed every transition.
	rec := httptest.NewRecorder()
	col.WritePrometheus(rec)
	body := rec.Body.String()
	for _, want := range []string{
		"bat_admission_admitted_total 2",
		`bat_admission_rejected_total{reason="queue_full"} 1`,
		`bat_admission_rejected_total{reason="deadline"} 1`,
		"bat_admission_queued_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestPointsAdmission429: with the gate saturated and no queue, /points
// replies 429 with a Retry-After hint and a JSON error body.
func TestPointsAdmission429(t *testing.T) {
	s, _ := testServer(t)
	s.adm = newAdmission(obs.New(), 1, 0)
	// Saturate the only slot directly.
	release, status := s.adm.acquire(context.Background())
	if status != 0 {
		t.Fatal("could not take the slot")
	}
	defer release()

	rec := httptest.NewRecorder()
	s.points(rec, httptest.NewRequest("GET", "/points", nil))
	if rec.Code != 429 {
		t.Fatalf("saturated /points = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("429 Content-Type %q", ct)
	}
}

// TestPointsQueryTimeoutConfigured: the -query-timeout deadline applies
// even when the client sets none — a request context with no deadline gets
// one from the server.
func TestPointsQueryTimeoutConfigured(t *testing.T) {
	s, total := testServer(t)
	s.queryTimeout = time.Minute // generous: must NOT fire on a healthy read
	rec := httptest.NewRecorder()
	s.points(rec, httptest.NewRequest("GET", "/points", nil))
	if rec.Code != 200 || rec.Body.Len() != total*12 {
		t.Fatalf("healthy read under -query-timeout: status %d, %d bytes",
			rec.Code, rec.Body.Len())
	}
}
