package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"libbat"
	"libbat/internal/leakcheck"
	"libbat/internal/obs"
	"libbat/internal/pfs"
)

// faultyServer writes a dataset into memory-backed storage wrapped in a
// fault injector, and builds a server over it — the chaos-harness fixture:
// every leaf read can be stalled, delayed, or failed from the test.
func faultyServer(t *testing.T, fcfg pfs.FaultConfig) (*server, *pfs.Faulty, int) {
	t.Helper()
	mem := pfs.NewMem()
	const ranks, perRank = 4, 1500
	err := libbat.Run(ranks, func(c *libbat.Comm) error {
		r := rand.New(rand.NewSource(int64(c.Rank())))
		lo := libbat.V3(float64(c.Rank()), 0, 0)
		local := libbat.NewParticleSet(libbat.NewSchema("val"), perRank)
		for i := 0; i < perRank; i++ {
			p := lo.Add(libbat.V3(r.Float64(), r.Float64(), r.Float64()))
			local.Append(p, []float64{p.X})
		}
		_, err := libbat.Write(c, mem, "chaos", local,
			libbat.NewBox(lo, lo.Add(libbat.V3(1, 1, 1))), libbat.DefaultWriteConfig(30<<10))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	fau := pfs.NewFaulty(mem, fcfg)
	names, err := seriesOf(fau, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	s := &server{store: fau, names: names, open: map[int]*libbat.Dataset{},
		col: obs.New(), qcfg: libbat.QueryConfig{Workers: 2, Ordered: true},
		access: libbat.NewAccessRegistry(libbat.AccessOptions{})}
	t.Cleanup(s.closeDatasets)
	return s, fau, ranks * perRank
}

// stallAllLeaves marks every leaf file of the dataset stalled (the .batm
// metadata stays readable so datasets still open).
func stallAllLeaves(t *testing.T, fau *pfs.Faulty) {
	t.Helper()
	names, err := fau.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".bat") {
			fau.StallReads(n)
		}
	}
}

// TestChaosStalledLeaf504 is the server half of the acceptance criterion:
// with every leaf read stalled indefinitely, a /points request under
// -query-timeout returns a 504 with partial-result accounting within
// bounded wall time; after the stall clears, the same server (same dataset
// handles, same treelet caches) streams the complete answer.
func TestChaosStalledLeaf504(t *testing.T) {
	leakcheck.Check(t)
	s, fau, total := faultyServer(t, pfs.FaultConfig{})
	s.queryTimeout = 250 * time.Millisecond
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	stallAllLeaves(t, fau)
	start := time.Now()
	resp, err := http.Get(ts.URL + "/points")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stalled request took %v, want bounded by the 250ms deadline", elapsed)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled request: status %d (%s), want 504", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("504 without Retry-After")
	}
	var acct struct {
		Partial bool  `json:"partial"`
		Points  int64 `json:"points_streamed"`
	}
	if err := json.Unmarshal(body, &acct); err != nil {
		t.Fatalf("504 body is not JSON: %v (%s)", err, body)
	}
	if !acct.Partial || acct.Points != 0 {
		t.Errorf("504 accounting = %+v, want partial with 0 points", acct)
	}

	fau.ReleaseStalls()
	resp, err = http.Get(ts.URL + "/points")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(body) != total*12 {
		t.Fatalf("post-release: status %d, %d bytes; want 200 with %d", resp.StatusCode, len(body), total*12)
	}
	if st := resp.Trailer.Get("X-Batserve-Status"); st != "complete" {
		t.Errorf("post-release trailer status %q, want complete", st)
	}
	if pts := resp.Trailer.Get("X-Batserve-Points"); pts != fmt.Sprint(total) {
		t.Errorf("post-release trailer points %q, want %d", pts, total)
	}
}

// TestChaosCancelStorm runs batserve under combined error and latency
// injection while clients impose staggered deadlines, disconnect
// mid-stream, and a background goroutine cycles closeDatasets (the
// kill/restart half). Afterward the server must stream a complete clean
// response and leak no goroutines — no wedged cache slots, no abandoned
// workers, no singleflight entries poisoned by canceled loads.
func TestChaosCancelStorm(t *testing.T) {
	leakcheck.Check(t)
	s, fau, total := faultyServer(t, pfs.FaultConfig{
		Seed:           23,
		ReadFailProb:   0.01,
		ReadDelayProb:  0.2,
		ReadDelay:      2 * time.Millisecond,
		MaxConsecutive: 1,
	})
	// Server-side deadline long enough for a clean full scan (the storm's
	// pressure comes from the CLIENT deadlines below); never mutated after
	// the server starts, since straggler handlers read it concurrently.
	s.queryTimeout = 30 * time.Second
	s.adm = newAdmission(s.col, 4, 4)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// Kill/restart cycling: closeDatasets tears down every open dataset
	// (treelet caches included) while requests are in flight; subsequent
	// requests must transparently reopen.
	stormDone := make(chan struct{})
	var closer sync.WaitGroup
	closer.Add(1)
	go func() {
		defer closer.Done()
		for {
			select {
			case <-stormDone:
				return
			case <-time.After(20 * time.Millisecond):
				s.closeDatasets()
			}
		}
	}()

	const clients = 16
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				// Client-side deadline 5..80ms: some requests are rejected by
				// admission, some die queued, some mid-stream, a few finish.
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(5+i*5)*time.Millisecond)
				req, _ := http.NewRequestWithContext(ctx, "GET",
					fmt.Sprintf("%s/points?box=0,0,0,%g,1,1", ts.URL, float64(i%4)+1), nil)
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					// Read a little, then hang up mid-body.
					io.CopyN(io.Discard, resp.Body, 1024)
					resp.Body.Close()
					switch resp.StatusCode {
					case 200, 429, 503, 504:
					default:
						t.Errorf("client %d: unexpected status %d", i, resp.StatusCode)
					}
				}
				cancel()
			}
		}(i)
	}
	wg.Wait()
	close(stormDone)
	closer.Wait()

	// The storm is over: no stalls are armed, so a patient client must get
	// the complete stream from the surviving server. Transient injected
	// read failures (MaxConsecutive=1) can still 500 a try; retry a few.
	var body []byte
	var status int
	for attempt := 0; attempt < 10; attempt++ {
		resp, err := http.Get(ts.URL + "/points")
		if err != nil {
			t.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		status = resp.StatusCode
		if status == 200 && len(body) == total*12 {
			break
		}
	}
	if status != 200 || len(body) != total*12 {
		t.Fatalf("post-storm: status %d, %d bytes; want 200 with %d", status, len(body), total*12)
	}
	if fau.Delays() == 0 {
		t.Error("latency injection never fired during the storm")
	}
}

// TestChaosRestartRecovery is the kill/restart cycle with persistence: a
// server that served queries is shut down mid-traffic aftermath (datasets
// closed, access sidecars persisted), and a fresh server over the same
// storage — as after a crash-restart — recovers the .bata sidecars and
// serves complete data.
func TestChaosRestartRecovery(t *testing.T) {
	leakcheck.Check(t)
	s, fau, total := faultyServer(t, pfs.FaultConfig{})
	s.persist = true
	ts := httptest.NewServer(s.routes())

	resp, err := http.Get(ts.URL + "/points")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(body) != total*12 {
		t.Fatalf("pre-restart: status %d, %d bytes", resp.StatusCode, len(body))
	}

	// "Kill": drain, close handles, persist telemetry, stop listening.
	ts.Close()
	s.closeDatasets()
	if err := s.persistAccess(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new server process over the same storage.
	names, err := seriesOf(fau, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	s2 := &server{store: fau, names: names, open: map[int]*libbat.Dataset{},
		col: obs.New(), qcfg: libbat.QueryConfig{Workers: 2},
		access:  libbat.NewAccessRegistry(libbat.AccessOptions{}),
		persist: true}
	defer s2.closeDatasets()
	ts2 := httptest.NewServer(s2.routes())
	defer ts2.Close()

	resp, err = http.Get(ts2.URL + "/points")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(body) != total*12 {
		t.Fatalf("post-restart: status %d, %d bytes; want 200 with %d", resp.StatusCode, len(body), total*12)
	}

	// The persisted access telemetry survived the restart: the new
	// server's recorder starts from the previous run's counts.
	resp, err = http.Get(ts2.URL + "/debug/access")
	if err != nil {
		t.Fatal(err)
	}
	var snaps struct {
		Datasets []struct {
			Dataset string `json:"dataset"`
			Queries int64  `json:"queries_total"`
		} `json:"datasets"`
	}
	err = json.NewDecoder(resp.Body).Decode(&snaps)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps.Datasets) == 0 {
		t.Fatal("no access snapshots after restart")
	}
	// One query before the restart (persisted) + one after = at least 2.
	if q := snaps.Datasets[0].Queries; q < 2 {
		t.Errorf("recovered access snapshot records %d queries, want >= 2 (sidecar merged)", q)
	}
}
