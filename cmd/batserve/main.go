// Command batserve is the paper's Figure-4 prototype: an HTTP server that
// progressively streams particles out of a written dataset, applying
// spatial and attribute filters server-side through the BAT layout. The
// bundled web page fetches increasing quality levels and renders them.
//
//	batserve -in /tmp/ds -name coal-boiler-0050 -addr :8080
//
// Endpoints:
//
//	GET /info                          dataset metadata (JSON)
//	GET /points?quality=0.4&prev=0.2   binary stream of xyz float32 triples
//	    [&box=x0,y0,z0,x1,y1,z1][&filter=attr,min,max][&attr=i]
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"libbat"
)

type server struct {
	mu    sync.Mutex // Datasets cache file handles; serialize queries
	store libbat.Storage
	names []string // time series of dataset base names
	open  map[int]*libbat.Dataset
}

// dataset lazily opens timestep i of the series.
func (s *server) dataset(i int) (*libbat.Dataset, error) {
	if i < 0 || i >= len(s.names) {
		return nil, fmt.Errorf("step %d out of range [0,%d)", i, len(s.names))
	}
	if ds, ok := s.open[i]; ok {
		return ds, nil
	}
	ds, err := libbat.OpenDataset(s.store, s.names[i])
	if err != nil {
		return nil, err
	}
	s.open[i] = ds
	return ds, nil
}

// seriesOf finds the dataset base names matching prefix (all of them when
// the prefix names a series; exactly one when it names a single dataset).
func seriesOf(store libbat.Storage, prefix string) ([]string, error) {
	all, err := store.List()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, n := range all {
		if strings.HasSuffix(n, ".batm") && strings.HasPrefix(n, prefix) {
			names = append(names, strings.TrimSuffix(n, ".batm"))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no datasets matching %q", prefix)
	}
	return names, nil
}

func main() {
	var (
		in   = flag.String("in", "bat-out", "dataset directory")
		name = flag.String("name", "", "dataset base name, or a prefix matching a time series (required)")
		addr = flag.String("addr", "127.0.0.1:8080", "listen address")
	)
	flag.Parse()
	if *name == "" {
		log.Fatal("batserve: -name is required")
	}
	store, err := libbat.DirStorage(*in)
	if err != nil {
		log.Fatal(err)
	}
	names, err := seriesOf(store, *name)
	if err != nil {
		log.Fatal("batserve: ", err)
	}
	s := &server{store: store, names: names, open: map[int]*libbat.Dataset{}}
	ds, err := s.dataset(0)
	if err != nil {
		log.Fatal(err)
	}
	http.HandleFunc("/", s.page)
	http.HandleFunc("/info", s.info)
	http.HandleFunc("/points", s.points)
	log.Printf("batserve: %d timesteps (first: %d particles in %d files); listening on http://%s",
		len(names), ds.NumParticles(), ds.NumFiles(), *addr)
	log.Fatal(http.ListenAndServe(*addr, nil))
}

// stepParam parses the ?step=N parameter (default 0).
func (s *server) stepParam(r *http.Request) (int, error) {
	v := r.URL.Query().Get("step")
	if v == "" {
		return 0, nil
	}
	return strconv.Atoi(v)
}

func (s *server) info(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	step, err := s.stepParam(r)
	if err != nil {
		http.Error(w, "bad step", http.StatusBadRequest)
		return
	}
	ds, err := s.dataset(step)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	b := ds.Bounds()
	attrs := make([]map[string]any, ds.Schema().NumAttrs())
	for a := range attrs {
		min, max, _ := ds.AttrRange(a)
		attrs[a] = map[string]any{"name": ds.Schema().Attrs[a].Name, "min": min, "max": max}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"steps":     len(s.names),
		"step":      step,
		"name":      s.names[step],
		"particles": ds.NumParticles(),
		"files":     ds.NumFiles(),
		"lower":     []float64{b.Lower.X, b.Lower.Y, b.Lower.Z},
		"upper":     []float64{b.Upper.X, b.Upper.Y, b.Upper.Z},
		"attrs":     attrs,
	})
}

func parseFloats(s string, n int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d comma-separated values", n)
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (s *server) points(w http.ResponseWriter, r *http.Request) {
	q := libbat.Query{Quality: 1}
	if v := r.URL.Query().Get("quality"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			http.Error(w, "bad quality", http.StatusBadRequest)
			return
		}
		q.Quality = f
	}
	if v := r.URL.Query().Get("prev"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			http.Error(w, "bad prev", http.StatusBadRequest)
			return
		}
		q.PrevQuality = f
	}
	if v := r.URL.Query().Get("box"); v != "" {
		vals, err := parseFloats(v, 6)
		if err != nil {
			http.Error(w, "bad box: "+err.Error(), http.StatusBadRequest)
			return
		}
		box := libbat.NewBox(libbat.V3(vals[0], vals[1], vals[2]), libbat.V3(vals[3], vals[4], vals[5]))
		q.Bounds = &box
	}
	for _, v := range r.URL.Query()["filter"] {
		vals, err := parseFloats(v, 3)
		if err != nil {
			http.Error(w, "bad filter: "+err.Error(), http.StatusBadRequest)
			return
		}
		q.Filters = append(q.Filters, libbat.AttrFilter{Attr: int(vals[0]), Min: vals[1], Max: vals[2]})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	step, err := s.stepParam(r)
	if err != nil {
		http.Error(w, "bad step", http.StatusBadRequest)
		return
	}
	ds, err := s.dataset(step)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	attr := -1
	if v := r.URL.Query().Get("attr"); v != "" {
		a, err := strconv.Atoi(v)
		if err != nil || a < 0 || a >= ds.Schema().NumAttrs() {
			http.Error(w, "bad attr", http.StatusBadRequest)
			return
		}
		attr = a
	}

	// Stream xyz (and optionally one attribute) as little-endian float32.
	w.Header().Set("Content-Type", "application/octet-stream")
	buf := make([]byte, 16)
	stride := 12
	if attr >= 0 {
		stride = 16
	}
	err = ds.Query(q, func(p libbat.Vec3, attrs []float64) error {
		binary.LittleEndian.PutUint32(buf[0:], math.Float32bits(float32(p.X)))
		binary.LittleEndian.PutUint32(buf[4:], math.Float32bits(float32(p.Y)))
		binary.LittleEndian.PutUint32(buf[8:], math.Float32bits(float32(p.Z)))
		if attr >= 0 {
			binary.LittleEndian.PutUint32(buf[12:], math.Float32bits(float32(attrs[attr])))
		}
		_, err := w.Write(buf[:stride])
		return err
	})
	if err != nil {
		log.Printf("batserve: query aborted: %v", err)
	}
}

func (s *server) page(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, pageHTML)
}

const pageHTML = `<!doctype html>
<meta charset="utf-8">
<title>libbat progressive viewer</title>
<style>body{font:14px sans-serif;margin:1em}canvas{border:1px solid #999}</style>
<h3>libbat progressive particle viewer</h3>
<div>quality <input id="q" type="range" min="5" max="100" value="20"> <span id="qv"></span>
step <input id="s" type="number" min="0" value="0" style="width:4em">/<span id="smax"></span>
points: <span id="n">0</span></div>
<canvas id="c" width="800" height="600"></canvas>
<script>
const c = document.getElementById('c').getContext('2d');
let info, loaded = 0, pts = [], step = 0;
async function init() {
  info = await (await fetch('/info?step=' + step)).json();
  document.getElementById('s').max = info.steps - 1;
  document.getElementById('smax').textContent = info.steps - 1;
  draw(); load();
}
async function load() {
  const q = document.getElementById('q').value / 100;
  document.getElementById('qv').textContent = q.toFixed(2);
  if (q <= loaded) { return; }
  const r = await fetch('/points?step=' + step + '&prev=' + loaded + '&quality=' + q);
  const buf = await r.arrayBuffer();
  const f = new Float32Array(buf);
  for (let i = 0; i + 2 < f.length; i += 3) pts.push([f[i], f[i+1], f[i+2]]);
  loaded = q;
  document.getElementById('n').textContent = pts.length;
  draw();
}
async function changeStep() {
  step = +document.getElementById('s').value;
  loaded = 0; pts = [];
  await init();
}
document.getElementById('s').addEventListener('change', changeStep);
function draw() {
  if (!info) return;
  c.fillStyle = '#fff'; c.fillRect(0, 0, 800, 600);
  const sx = 800 / (info.upper[0] - info.lower[0] || 1);
  const sy = 600 / (info.upper[2] - info.lower[2] || 1);
  c.fillStyle = 'rgba(30,60,160,0.5)';
  for (const p of pts) {
    const x = (p[0] - info.lower[0]) * sx;
    const y = 600 - (p[2] - info.lower[2]) * sy;
    c.fillRect(x, y, 2, 2);
  }
}
document.getElementById('q').addEventListener('change', load);
init();
</script>`
