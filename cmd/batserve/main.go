// Command batserve is the paper's Figure-4 prototype: an HTTP server that
// progressively streams particles out of a written dataset, applying
// spatial and attribute filters server-side through the BAT layout. The
// bundled web page fetches increasing quality levels and renders them.
//
//	batserve -in /tmp/ds -name coal-boiler-0050 -addr :8080
//
// Endpoints:
//
//	GET /info                          dataset metadata (JSON)
//	GET /points?quality=0.4&prev=0.2   binary stream of xyz float32 triples
//	    [&box=x0,y0,z0,x1,y1,z1][&filter=attr,min,max][&attr=i]
//	GET /metrics                       Prometheus metrics (+ Go runtime health)
//	GET /debug/access                  per-dataset access telemetry snapshots
//	GET /debug/queries                 recent structured query log
//	GET /debug/pprof/                  profiling (only with -pprof)
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"libbat"
	"libbat/internal/obs"
)

type server struct {
	// mu fences dataset lifetime against request handling: every handler
	// that touches a dataset holds the read lock for the request's
	// duration, and only closeDatasets takes the write lock. Queries on
	// the same dataset run concurrently — Dataset and the BAT treelet
	// cache underneath are concurrency-safe — so there is no per-query
	// serialization anywhere.
	mu    sync.RWMutex
	store libbat.Storage
	names []string // time series of dataset base names

	openMu sync.Mutex // guards open; opens are serialized, queries are not
	open   map[int]*libbat.Dataset

	col  *obs.Collector     // backs /metrics
	qcfg libbat.QueryConfig // applied to every dataset at open
	// cacheBytes bounds each dataset's treelet cache (0 = unbounded).
	cacheBytes int64

	// access holds one recorder per open dataset, served on /debug/access
	// and /debug/queries. persist loads/saves .bata sidecars across runs;
	// pprofOn mounts net/http/pprof under /debug/pprof/.
	access  *libbat.AccessRegistry
	persist bool
	pprofOn bool

	// queryTimeout bounds each /points query (0 = no deadline); adm is the
	// admission gate for /points (nil = unlimited concurrency). Both exist
	// so a slow filesystem or a query storm degrades to prompt 504/429/503
	// responses instead of unbounded goroutine and cache pressure.
	queryTimeout time.Duration
	adm          *admission
}

// jsonError replies with a JSON error body and the given status code.
func jsonError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// statusRecorder captures the status code a handler sent (200 if it only
// ever wrote the body) so request counters can be labeled by outcome.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code, r.wrote = code, true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.code, r.wrote = http.StatusOK, true
	}
	return r.ResponseWriter.Write(p)
}

// instrument wraps a handler with a per-path request counter (labeled by
// status code) and a request latency histogram, both served on /metrics.
func (s *server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	dur := s.col.Histogram("http_request_duration_seconds",
		obs.DefLatencyBuckets(), obs.L("path", path))
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(rec, r)
		dur.Observe(time.Since(start).Seconds())
		s.col.Add("http_requests_total", 1,
			obs.L("path", path), obs.L("code", strconv.Itoa(rec.code)))
	}
}

// metrics exposes every counter and histogram in Prometheus text format,
// plus the Go runtime health series (goroutines, heap, GC).
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.col.WritePrometheus(w)
	obs.WriteRuntimeMetrics(w)
}

// dataset lazily opens timestep i of the series. Opens are serialized on
// openMu; concurrent requests for an already-open step share the handle
// without contention beyond the map lookup.
func (s *server) dataset(i int) (*libbat.Dataset, error) {
	if i < 0 || i >= len(s.names) {
		return nil, fmt.Errorf("step %d out of range [0,%d)", i, len(s.names))
	}
	s.openMu.Lock()
	defer s.openMu.Unlock()
	if ds, ok := s.open[i]; ok {
		return ds, nil
	}
	ds, err := libbat.OpenDataset(s.store, s.names[i])
	if err != nil {
		return nil, err
	}
	ds.SetQueryConfig(s.qcfg)
	if s.cacheBytes > 0 {
		ds.SetCacheLimit(s.cacheBytes)
	}
	ds.SetObserver(s.col, obs.L("step", strconv.Itoa(i)))
	rec := s.access.Get(s.names[i], ds.Bounds())
	if s.persist {
		if err := s.loadAccessSidecar(s.names[i], rec); err != nil {
			log.Printf("batserve: %v", err)
		}
	}
	ds.SetAccessRecorder(rec)
	s.open[i] = ds
	return ds, nil
}

// seriesOf finds the dataset base names matching prefix (all of them when
// the prefix names a series; exactly one when it names a single dataset).
func seriesOf(store libbat.Storage, prefix string) ([]string, error) {
	all, err := store.List()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, n := range all {
		if strings.HasSuffix(n, ".batm") && strings.HasPrefix(n, prefix) {
			names = append(names, strings.TrimSuffix(n, ".batm"))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no datasets matching %q", prefix)
	}
	return names, nil
}

// routes builds the server's request mux.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.instrument("/", s.page))
	mux.HandleFunc("/info", s.instrument("/info", s.info))
	mux.HandleFunc("/points", s.instrument("/points", s.points))
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/debug/access", s.instrument("/debug/access", s.debugAccess))
	mux.HandleFunc("/debug/queries", s.instrument("/debug/queries", s.debugQueries))
	if s.pprofOn {
		registerPprof(mux)
	}
	return mux
}

// newHTTPServer wraps the mux in an http.Server with request timeouts: a
// slow or stalled client cannot pin a connection open forever. The write
// timeout must cover a full progressive /points stream, so it is much
// longer than the header/idle limits.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// closeDatasets releases every cached dataset handle. The write lock waits
// out all in-flight requests (which hold read locks), so no query can be
// traversing a dataset while it is closed.
func (s *server) closeDatasets() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.openMu.Lock()
	defer s.openMu.Unlock()
	for _, ds := range s.open {
		ds.Close()
	}
	s.open = map[int]*libbat.Dataset{}
}

func main() {
	var (
		in    = flag.String("in", "bat-out", "dataset directory")
		name  = flag.String("name", "", "dataset base name, or a prefix matching a time series (required)")
		addr  = flag.String("addr", "127.0.0.1:8080", "listen address")
		drain = flag.Duration("drain", 10*time.Second, "how long to wait for in-flight requests on shutdown")

		queryWorkers = flag.Int("query-workers", 0,
			"traversal goroutines per query (0 = GOMAXPROCS, 1 = serial)")
		unordered = flag.Bool("query-unordered", false,
			"allow out-of-order point delivery within a query (lower latency, nondeterministic stream order)")
		cacheMB = flag.Int64("cache-mb", 0,
			"treelet cache budget per dataset in MiB (0 = unbounded)")
		accessPersist = flag.Bool("access-persist", false,
			"load and save per-dataset access telemetry sidecars (<name>.bata) across runs")
		accessRing = flag.Int("access-ring", 0,
			"recent-query ring size per dataset (0 = default)")
		pprofOn = flag.Bool("pprof", false,
			"serve net/http/pprof profiling endpoints under /debug/pprof/")
		queryTimeout = flag.Duration("query-timeout", 0,
			"per-query deadline for /points, including queue wait (0 = none)")
		maxInflight = flag.Int("max-inflight", 0,
			"maximum concurrently running /points queries (0 = unlimited)")
		queueDepth = flag.Int("queue-depth", 16,
			"requests allowed to wait for a query slot when -max-inflight is saturated")
	)
	flag.Parse()
	if *name == "" {
		log.Fatal("batserve: -name is required")
	}
	store, err := libbat.DirStorage(*in)
	if err != nil {
		log.Fatal(err)
	}
	names, err := seriesOf(store, *name)
	if err != nil {
		log.Fatal("batserve: ", err)
	}
	qcfg := libbat.QueryConfig{Workers: *queryWorkers, Ordered: !*unordered, Readahead: 2}
	if qcfg.Workers == 0 {
		qcfg.Workers = -1 // bat: negative means GOMAXPROCS
	}
	s := &server{store: store, names: names, open: map[int]*libbat.Dataset{},
		col: obs.New(), qcfg: qcfg, cacheBytes: *cacheMB << 20,
		access:  libbat.NewAccessRegistry(libbat.AccessOptions{RingSize: *accessRing}),
		persist: *accessPersist, pprofOn: *pprofOn,
		queryTimeout: *queryTimeout}
	s.adm = newAdmission(s.col, *maxInflight, *queueDepth)
	ds, err := s.dataset(0)
	if err != nil {
		log.Fatal(err)
	}
	srv := newHTTPServer(*addr, s.routes())
	log.Printf("batserve: %d timesteps (first: %d particles in %d files); listening on http://%s",
		len(names), ds.NumParticles(), ds.NumFiles(), *addr)

	// Serve until SIGINT/SIGTERM, then drain in-flight requests and close
	// the dataset handles before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal("batserve: ", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("batserve: shutting down (draining for up to %s)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("batserve: shutdown: %v", err)
	}
	s.closeDatasets()
	if s.persist {
		if err := s.persistAccess(); err != nil {
			log.Printf("batserve: %v", err)
		}
	}
	log.Printf("batserve: stopped")
}

// stepParam parses the ?step=N parameter (default 0).
func (s *server) stepParam(r *http.Request) (int, error) {
	v := r.URL.Query().Get("step")
	if v == "" {
		return 0, nil
	}
	return strconv.Atoi(v)
}

// openStep resolves the request's timestep to an open dataset, replying
// with 400 for bad/out-of-range steps and 500 for datasets that fail to
// open. Callers must hold s.mu.RLock for as long as they use the dataset.
func (s *server) openStep(w http.ResponseWriter, r *http.Request) (*libbat.Dataset, int, bool) {
	step, err := s.stepParam(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("bad step: %v", err))
		return nil, 0, false
	}
	if step < 0 || step >= len(s.names) {
		jsonError(w, http.StatusBadRequest,
			fmt.Errorf("step %d out of range [0,%d)", step, len(s.names)))
		return nil, 0, false
	}
	ds, err := s.dataset(step)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err)
		return nil, 0, false
	}
	return ds, step, true
}

func (s *server) info(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, step, ok := s.openStep(w, r)
	if !ok {
		return
	}
	b := ds.Bounds()
	attrs := make([]map[string]any, ds.Schema().NumAttrs())
	for a := range attrs {
		min, max, _ := ds.AttrRange(a)
		attrs[a] = map[string]any{"name": ds.Schema().Attrs[a].Name, "min": min, "max": max}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"steps":     len(s.names),
		"step":      step,
		"name":      s.names[step],
		"particles": ds.NumParticles(),
		"files":     ds.NumFiles(),
		"lower":     []float64{b.Lower.X, b.Lower.Y, b.Lower.Z},
		"upper":     []float64{b.Upper.X, b.Upper.Y, b.Upper.Z},
		"attrs":     attrs,
	})
}

func parseFloats(s string, n int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d comma-separated values", n)
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (s *server) points(w http.ResponseWriter, r *http.Request) {
	q := libbat.Query{Quality: 1}
	if v := r.URL.Query().Get("quality"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			jsonError(w, http.StatusBadRequest, fmt.Errorf("bad quality: %v", err))
			return
		}
		q.Quality = f
	}
	if v := r.URL.Query().Get("prev"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			jsonError(w, http.StatusBadRequest, fmt.Errorf("bad prev: %v", err))
			return
		}
		q.PrevQuality = f
	}
	if v := r.URL.Query().Get("box"); v != "" {
		vals, err := parseFloats(v, 6)
		if err != nil {
			jsonError(w, http.StatusBadRequest, fmt.Errorf("bad box: %v", err))
			return
		}
		box := libbat.NewBox(libbat.V3(vals[0], vals[1], vals[2]), libbat.V3(vals[3], vals[4], vals[5]))
		q.Bounds = &box
	}
	for _, v := range r.URL.Query()["filter"] {
		vals, err := parseFloats(v, 3)
		if err != nil {
			jsonError(w, http.StatusBadRequest, fmt.Errorf("bad filter: %v", err))
			return
		}
		q.Filters = append(q.Filters, libbat.AttrFilter{Attr: int(vals[0]), Min: vals[1], Max: vals[2]})
	}
	// The request context carries client disconnects; the server's query
	// deadline stacks on top. Established BEFORE admission so time spent
	// queued counts against the deadline, and a disconnected client leaves
	// the queue immediately.
	ctx := r.Context()
	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.queryTimeout)
		defer cancel()
	}
	// Admission is acquired before the dataset read lock so queued requests
	// never delay closeDatasets.
	release, admStatus := s.adm.acquire(ctx)
	if admStatus != 0 {
		s.adm.reject(w, admStatus)
		return
	}
	defer release()
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, step, ok := s.openStep(w, r)
	if !ok {
		return
	}
	attr := -1
	if v := r.URL.Query().Get("attr"); v != "" {
		a, err := strconv.Atoi(v)
		if err != nil || a < 0 || a >= ds.Schema().NumAttrs() {
			jsonError(w, http.StatusBadRequest, fmt.Errorf("bad attr %q", v))
			return
		}
		attr = a
	}

	// Stream xyz (and optionally one attribute) as little-endian float32.
	// The Content-Type only commits once the first point is written, so a
	// query that fails before producing any data can still return a real
	// error status instead of an empty 200.
	buf := make([]byte, 16)
	stride := 12
	if attr >= 0 {
		stride = 16
	}
	var points int64
	qStart := time.Now()
	err := ds.QueryTaggedCtx(ctx, "batserve:/points", q, func(p libbat.Vec3, attrs []float64) error {
		if points == 0 {
			// Declare the trailers before the status commits: if the query
			// dies mid-stream the truncation is announced in-band instead of
			// silently ending a 200.
			w.Header().Set("Trailer", "X-Batserve-Status, X-Batserve-Points")
			w.Header().Set("Content-Type", "application/octet-stream")
		}
		points++
		binary.LittleEndian.PutUint32(buf[0:], math.Float32bits(float32(p.X)))
		binary.LittleEndian.PutUint32(buf[4:], math.Float32bits(float32(p.Y)))
		binary.LittleEndian.PutUint32(buf[8:], math.Float32bits(float32(p.Z)))
		if attr >= 0 {
			binary.LittleEndian.PutUint32(buf[12:], math.Float32bits(float32(attrs[attr])))
		}
		_, err := w.Write(buf[:stride])
		return err
	})
	s.col.Histogram("query_duration_seconds", obs.DefLatencyBuckets(),
		obs.L("step", strconv.Itoa(step))).Observe(time.Since(qStart).Seconds())
	s.col.Add("points_streamed_total", points)
	if err != nil {
		if points == 0 {
			// Nothing on the wire yet: a real error status is still possible.
			if isCtxErr(err) {
				// Deadline (or client gone) before the first point. 504 with
				// partial-result accounting so the client knows how much of
				// the answer it has (none) and that retrying may succeed.
				w.Header().Set("Retry-After", "1")
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusGatewayTimeout)
				json.NewEncoder(w).Encode(map[string]any{
					"error":           err.Error(),
					"partial":         true,
					"points_streamed": points,
				})
				return
			}
			jsonError(w, http.StatusInternalServerError, err)
			return
		}
		// Mid-stream failure: the 200 header is already on the wire, so the
		// truncation is reported in the declared trailers and the log.
		status := "error"
		if isCtxErr(err) {
			status = "timeout"
		}
		w.Header().Set("X-Batserve-Status", status)
		w.Header().Set("X-Batserve-Points", strconv.FormatInt(points, 10))
		log.Printf("batserve: query aborted after %d points: %v", points, err)
		return
	}
	if points == 0 {
		w.Header().Set("Content-Type", "application/octet-stream")
		return
	}
	w.Header().Set("X-Batserve-Status", "complete")
	w.Header().Set("X-Batserve-Points", strconv.FormatInt(points, 10))
}

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (s *server) page(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, pageHTML)
}

const pageHTML = `<!doctype html>
<meta charset="utf-8">
<title>libbat progressive viewer</title>
<style>body{font:14px sans-serif;margin:1em}canvas{border:1px solid #999}</style>
<h3>libbat progressive particle viewer</h3>
<div>quality <input id="q" type="range" min="5" max="100" value="20"> <span id="qv"></span>
step <input id="s" type="number" min="0" value="0" style="width:4em">/<span id="smax"></span>
points: <span id="n">0</span></div>
<canvas id="c" width="800" height="600"></canvas>
<script>
const c = document.getElementById('c').getContext('2d');
let info, loaded = 0, pts = [], step = 0;
async function init() {
  info = await (await fetch('/info?step=' + step)).json();
  document.getElementById('s').max = info.steps - 1;
  document.getElementById('smax').textContent = info.steps - 1;
  draw(); load();
}
async function load() {
  const q = document.getElementById('q').value / 100;
  document.getElementById('qv').textContent = q.toFixed(2);
  if (q <= loaded) { return; }
  const r = await fetch('/points?step=' + step + '&prev=' + loaded + '&quality=' + q);
  const buf = await r.arrayBuffer();
  const f = new Float32Array(buf);
  for (let i = 0; i + 2 < f.length; i += 3) pts.push([f[i], f[i+1], f[i+2]]);
  loaded = q;
  document.getElementById('n').textContent = pts.length;
  draw();
}
async function changeStep() {
  step = +document.getElementById('s').value;
  loaded = 0; pts = [];
  await init();
}
document.getElementById('s').addEventListener('change', changeStep);
function draw() {
  if (!info) return;
  c.fillStyle = '#fff'; c.fillRect(0, 0, 800, 600);
  const sx = 800 / (info.upper[0] - info.lower[0] || 1);
  const sy = 600 / (info.upper[2] - info.lower[2] || 1);
  c.fillStyle = 'rgba(30,60,160,0.5)';
  for (const p of pts) {
    const x = (p[0] - info.lower[0]) * sx;
    const y = 600 - (p[2] - info.lower[2]) * sy;
    c.fillRect(x, y, 2, 2);
  }
}
document.getElementById('q').addEventListener('change', load);
init();
</script>`
