package main

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"libbat"
	"libbat/internal/geom"
	"libbat/internal/obs"
	"libbat/internal/obs/access"
)

// accessServer is testServer plus an attached access registry (the real
// main() always sets one; the bare testServer leaves it nil to prove the
// handlers tolerate disabled telemetry).
func accessServer(t *testing.T) *server {
	t.Helper()
	s, _ := testServer(t)
	s.col = obs.New()
	s.access = libbat.NewAccessRegistry(libbat.AccessOptions{GridBits: 3, RingSize: 32})
	return s
}

// clusterQueries sends n /points queries boxed into rank 0's cube — the
// low-x corner of the [0,4]x[0,1]x[0,1] test domain.
func clusterQueries(t *testing.T, s *server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := httptest.NewRecorder()
		s.points(rec, httptest.NewRequest("GET", "/points?box=0,0,0,0.9,1,1", nil))
		if rec.Code != 200 {
			t.Fatalf("points status %d", rec.Code)
		}
		io.Copy(io.Discard, rec.Body)
	}
}

// TestDebugAccessHotRegion is the acceptance-criterion integration test:
// after a clustered query workload, /debug/access must report per-treelet
// hit counts and a heatmap whose hottest cell lies in the hot region.
func TestDebugAccessHotRegion(t *testing.T) {
	s := accessServer(t)
	clusterQueries(t, s, 6)
	// One query far away, so "hottest" is a real distinction.
	rec := httptest.NewRecorder()
	s.points(rec, httptest.NewRequest("GET", "/points?box=3,0,0,4,1,1", nil))

	w := httptest.NewRecorder()
	s.debugAccess(w, httptest.NewRequest("GET", "/debug/access", nil))
	if w.Code != 200 || w.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("status %d, content-type %q", w.Code, w.Header().Get("Content-Type"))
	}
	var body struct {
		Datasets []access.Snapshot `json:"datasets"`
	}
	if err := json.NewDecoder(w.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Datasets) != 1 {
		t.Fatalf("datasets = %d", len(body.Datasets))
	}
	snap := body.Datasets[0]
	if snap.Dataset != "srv" || snap.TreeletHits == 0 || len(snap.Treelets) == 0 {
		t.Fatalf("snapshot has no per-treelet hits: %+v", snap)
	}
	for _, ts := range snap.Treelets {
		if ts.Hits == 0 {
			t.Errorf("treelet (%d,%d) listed with zero hits", ts.Leaf, ts.Treelet)
		}
	}
	hotBox := geom.NewBox(geom.V3(0, 0, 0), geom.V3(0.9, 1, 1))
	hot := snap.HotCells(1)
	if len(hot) != 1 {
		t.Fatal("no heatmap mass")
	}
	cb := snap.CellBox(hot[0].Cell)
	if !cb.Overlaps(hotBox) {
		t.Errorf("hottest cell %v does not overlap the clustered region %v", cb, hotBox)
	}
	if cb.Lower.X >= 2 {
		t.Errorf("hottest cell %v is in the cold half of the domain", cb)
	}

	// The same snapshot as Prometheus series.
	w = httptest.NewRecorder()
	s.debugAccess(w, httptest.NewRequest("GET", "/debug/access?format=prometheus", nil))
	out := w.Body.String()
	for _, want := range []string{
		`access_queries_total{dataset="srv"}`,
		`access_treelet_hits_total{dataset="srv"}`,
		"access_heatmap_count{",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus access output missing %q", want)
		}
	}
}

func TestDebugQueriesEndpoint(t *testing.T) {
	s := accessServer(t)
	clusterQueries(t, s, 5)

	w := httptest.NewRecorder()
	s.debugQueries(w, httptest.NewRequest("GET", "/debug/queries", nil))
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	var body struct {
		Queries []struct {
			Dataset string `json:"dataset"`
			access.QueryRecord
		} `json:"queries"`
	}
	if err := json.NewDecoder(w.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Queries) != 5 {
		t.Fatalf("queries = %d, want 5", len(body.Queries))
	}
	for i, q := range body.Queries {
		if q.Dataset != "srv" || q.Source != "batserve:/points" {
			t.Errorf("query[%d] = dataset %q source %q", i, q.Dataset, q.Source)
		}
		if q.Box == nil || q.Particles == 0 || q.UnixNano == 0 {
			t.Errorf("query[%d] incomplete: %+v", i, q.QueryRecord)
		}
		if i > 0 && q.UnixNano < body.Queries[i-1].UnixNano {
			t.Errorf("query log not time-ordered at %d", i)
		}
	}

	// ?n= keeps only the newest records; bad n is a 400.
	w = httptest.NewRecorder()
	s.debugQueries(w, httptest.NewRequest("GET", "/debug/queries?n=2", nil))
	body.Queries = nil
	if err := json.NewDecoder(w.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Queries) != 2 {
		t.Errorf("n=2 returned %d records", len(body.Queries))
	}
	w = httptest.NewRecorder()
	s.debugQueries(w, httptest.NewRequest("GET", "/debug/queries?n=-1", nil))
	if w.Code != 400 {
		t.Errorf("bad n status %d", w.Code)
	}
}

// TestDebugEndpointsNilRegistry: a server without telemetry (nil registry)
// must still answer with empty, well-formed payloads.
func TestDebugEndpointsNilRegistry(t *testing.T) {
	s, _ := testServer(t)
	w := httptest.NewRecorder()
	s.debugAccess(w, httptest.NewRequest("GET", "/debug/access", nil))
	if w.Code != 200 || !strings.Contains(w.Body.String(), `"datasets"`) {
		t.Errorf("nil-registry /debug/access: %d %q", w.Code, w.Body.String())
	}
	w = httptest.NewRecorder()
	s.debugQueries(w, httptest.NewRequest("GET", "/debug/queries", nil))
	if w.Code != 200 {
		t.Errorf("nil-registry /debug/queries: %d", w.Code)
	}
}

// TestAccessSidecarPersistence drives the restart path: queries recorded by
// one server are persisted to the .bata sidecar, CRC-verified on reload,
// and merged into the next server's live recorder.
func TestAccessSidecarPersistence(t *testing.T) {
	s := accessServer(t)
	s.persist = true
	clusterQueries(t, s, 4)
	firstSnap := s.access.Lookup("srv").Snapshot()
	if err := s.persistAccess(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same store resumes the counters.
	s2 := &server{store: s.store, names: s.names, open: map[int]*libbat.Dataset{},
		col: obs.New(), persist: true,
		access: libbat.NewAccessRegistry(libbat.AccessOptions{GridBits: 3, RingSize: 32})}
	t.Cleanup(s2.closeDatasets)
	clusterQueries(t, s2, 2)
	snap := s2.access.Lookup("srv").Snapshot()
	if snap.Queries != firstSnap.Queries+2 {
		t.Errorf("restarted queries_total = %d, want %d", snap.Queries, firstSnap.Queries+2)
	}
	if snap.TreeletHits <= firstSnap.TreeletHits {
		t.Errorf("restarted treelet hits = %d, not above persisted %d", snap.TreeletHits, firstSnap.TreeletHits)
	}

	// A corrupted sidecar is rejected through the CRC path and does not
	// poison the recorder.
	f, err := s.store.Open(access.SidecarName("srv"))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, f.Size())
	f.ReadAt(buf, 0)
	f.Close()
	buf[len(buf)/2] ^= 0x01
	if err := s.store.WriteFile(access.SidecarName("srv"), buf); err != nil {
		t.Fatal(err)
	}
	rec := libbat.NewAccessRecorder("srv", libbat.NewBox(libbat.V3(0, 0, 0), libbat.V3(4, 1, 1)),
		libbat.AccessOptions{GridBits: 3})
	if err := s2.loadAccessSidecar("srv", rec); err == nil {
		t.Error("corrupt sidecar loaded without error")
	}
	if rec.Snapshot().Queries != 0 {
		t.Error("corrupt sidecar modified the recorder")
	}
}

// TestPprofGated: the pprof endpoints exist only when enabled.
func TestPprofGated(t *testing.T) {
	s := accessServer(t)
	for _, tc := range []struct {
		on   bool
		want int
	}{{false, 404}, {true, 200}} {
		s.pprofOn = tc.on
		mux := s.routes()
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/pprof/", nil))
		if w.Code != tc.want {
			t.Errorf("pprofOn=%v: /debug/pprof/ status %d, want %d", tc.on, w.Code, tc.want)
		}
	}
}
