package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"libbat"
	"libbat/internal/leakcheck"
)

// TestOverlappingQueries fires many simultaneous /points requests at one
// dataset. With the read lock replacing the old global mutex they execute
// concurrently; every response must be complete and — with ordered
// parallel traversal — byte-identical. Run under -race via check.sh.
func TestOverlappingQueries(t *testing.T) {
	s, total := testServer(t)
	s.qcfg = libbat.QueryConfig{Workers: 4, Ordered: true, Readahead: 2}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	get := func(url string) ([]byte, error) {
		resp, err := http.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
		}
		return body, nil
	}

	want, err := get(ts.URL + "/points")
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != total*12 {
		t.Fatalf("full stream is %d bytes, want %d", len(want), total*12)
	}

	const clients = 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := ts.URL + "/points"
			if i%3 == 1 {
				url += "?box=0,0,0,2.5,1,1"
			}
			body, err := get(url)
			if err != nil {
				errs <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			if i%3 == 1 {
				if len(body) == 0 || len(body)%12 != 0 {
					errs <- fmt.Errorf("client %d: box stream %d bytes", i, len(body))
				}
				return
			}
			if !bytes.Equal(body, want) {
				errs <- fmt.Errorf("client %d: full stream differs (%d vs %d bytes)", i, len(body), len(want))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCloseDuringQueries interleaves closeDatasets with a stream of
// /points and /info requests: the write lock must wait out in-flight
// queries, and later requests must transparently reopen the dataset.
func TestCloseDuringQueries(t *testing.T) {
	leakcheck.Check(t)
	s, total := testServer(t)
	s.qcfg = libbat.QueryConfig{Workers: 2}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	const clients, rounds = 6, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds+1)
	done := make(chan struct{})
	closerDone := make(chan struct{})

	go func() {
		defer close(closerDone)
		for {
			select {
			case <-done:
				return
			default:
				s.closeDatasets()
			}
		}
	}()

	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				url := ts.URL + "/points"
				if i%2 == 1 {
					url = ts.URL + "/info"
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d round %d: status %d: %s", i, r, resp.StatusCode, body)
					continue
				}
				if i%2 == 0 && len(body) != total*12 {
					errs <- fmt.Errorf("client %d round %d: %d bytes, want %d", i, r, len(body), total*12)
				}
			}
		}(i)
	}
	// Stop the closer only after all clients finish, so closes overlap the
	// whole request stream.
	wg.Wait()
	close(done)
	<-closerDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
