// Live introspection endpoints: access-telemetry snapshots, the recent-
// query log, and opt-in pprof. These are what a batcompact daemon (or an
// operator) reads to find hot treelets and regions worth reorganizing.
//
//	GET /debug/access              per-dataset access snapshots (JSON)
//	GET /debug/access?format=prometheus   the same as Prometheus series
//	GET /debug/queries[?n=50]      recent queries across datasets, newest last
//	GET /debug/pprof/...           (only with -pprof)
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"libbat/internal/obs/access"
)

// debugAccess serves every dataset's access snapshot.
func (s *server) debugAccess(w http.ResponseWriter, r *http.Request) {
	snaps := s.access.Snapshots()
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, snap := range snaps {
			if err := snap.WritePrometheus(w); err != nil {
				return
			}
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"datasets": snaps})
}

// debugQueries serves the recent-query log, merged across datasets and
// ordered oldest to newest. ?n= limits the reply to the newest n records.
func (s *server) debugQueries(w http.ResponseWriter, r *http.Request) {
	type taggedRecord struct {
		Dataset string `json:"dataset"`
		access.QueryRecord
	}
	var all []taggedRecord
	for _, rec := range s.access.Recorders() {
		for _, q := range rec.RecentQueries() {
			all = append(all, taggedRecord{Dataset: rec.Name(), QueryRecord: q})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].UnixNano < all[j].UnixNano })
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			jsonError(w, http.StatusBadRequest, fmt.Errorf("bad n %q", v))
			return
		}
		if n < len(all) {
			all = all[len(all)-n:]
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"queries": all})
}

// registerPprof mounts the net/http/pprof handlers on mux (explicitly, so
// profiling stays off the default mux and off by default).
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// loadAccessSidecar merges a dataset's persisted access snapshot (written
// by a previous batserve run) into its live recorder. A missing sidecar is
// the normal first-run case; a corrupt or mismatched one is skipped with
// its error returned for logging.
func (s *server) loadAccessSidecar(name string, rec *access.Recorder) error {
	f, err := s.store.Open(access.SidecarName(name))
	if err != nil {
		return nil // no sidecar yet
	}
	buf := make([]byte, f.Size())
	_, rerr := f.ReadAt(buf, 0)
	if err := errors.Join(rerr, f.Close()); err != nil {
		return fmt.Errorf("reading access sidecar for %s: %w", name, err)
	}
	snap, err := access.Unmarshal(buf)
	if err != nil {
		return fmt.Errorf("parsing access sidecar for %s: %w", name, err)
	}
	if err := rec.MergeSnapshot(snap); err != nil {
		return fmt.Errorf("merging access sidecar for %s: %w", name, err)
	}
	return nil
}

// persistAccess writes every recorder's snapshot to its dataset's sidecar
// file, so the next batserve run (or a batcompact pass) resumes from the
// accumulated access pattern.
func (s *server) persistAccess() error {
	var firstErr error
	for _, snap := range s.access.Snapshots() {
		buf, err := snap.Marshal()
		if err == nil {
			err = s.store.WriteFile(access.SidecarName(snap.Dataset), buf)
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("persisting access sidecar for %s: %w", snap.Dataset, err)
		}
	}
	return firstErr
}
