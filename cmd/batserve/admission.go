// Admission control for batserve: a bounded number of queries run at once,
// a bounded number wait in line, and everyone else is told to come back.
// Without it, a burst of expensive queries (or a stalled filesystem holding
// queries open) stacks goroutines and treelet-cache pressure without limit;
// with it, overload degrades to fast, honest 429/503 responses that a
// client can retry against, and the server keeps serving the queries it
// admitted.
package main

import (
	"context"
	"net/http"

	"libbat/internal/obs"
)

// admission is the server's query gate. A nil *admission admits everything
// (the -max-inflight flag unset), so callers never branch on enablement.
//
// Both capacities are channels used as counting semaphores: slots holds the
// queries currently running, queue holds the ones waiting for a slot. A
// request first tries for a free slot; failing that it takes a queue place
// (full queue → immediate 429) and waits for a slot or its context — so a
// queued request whose deadline fires leaves the line instead of occupying
// it, and a client that disconnects frees its place immediately.
type admission struct {
	slots chan struct{}
	queue chan struct{}
	col   *obs.Collector
}

// newAdmission builds a gate for maxInflight concurrent queries and up to
// queueDepth waiters. maxInflight <= 0 disables admission entirely (returns
// nil); queueDepth < 0 is treated as 0 (no waiting, reject on saturation).
func newAdmission(col *obs.Collector, maxInflight, queueDepth int) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots: make(chan struct{}, maxInflight),
		queue: make(chan struct{}, queueDepth),
		col:   col,
	}
}

// acquire admits the request or decides its rejection status. It returns
// (release, 0) on admission — the caller MUST call release exactly once
// when the query finishes — or (nil, status) where status is the HTTP code
// to reply with: 429 when the wait queue is full, 503 when ctx ended while
// queued. Rejected requests should carry a Retry-After header (see reject).
func (a *admission) acquire(ctx context.Context) (release func(), status int) {
	if a == nil {
		return func() {}, 0
	}
	// Fast path: a slot is free right now.
	select {
	case a.slots <- struct{}{}:
		a.col.Add("bat_admission_admitted_total", 1)
		return a.release, 0
	default:
	}
	// Take a place in line, or bounce if the line is full.
	select {
	case a.queue <- struct{}{}:
	default:
		a.col.Add("bat_admission_rejected_total", 1, obs.L("reason", "queue_full"))
		return nil, http.StatusTooManyRequests
	}
	a.col.Add("bat_admission_queued_total", 1)
	defer func() { <-a.queue }()
	select {
	case a.slots <- struct{}{}:
		a.col.Add("bat_admission_admitted_total", 1)
		return a.release, 0
	case <-ctx.Done():
		a.col.Add("bat_admission_rejected_total", 1, obs.L("reason", "deadline"))
		return nil, http.StatusServiceUnavailable
	}
}

func (a *admission) release() { <-a.slots }

// reject writes the rejection response for a non-zero acquire status: the
// status code, a Retry-After hint (overload here is transient — queries
// finish in seconds), and a JSON error body.
func (a *admission) reject(w http.ResponseWriter, status int) {
	w.Header().Set("Retry-After", "1")
	var msg string
	switch status {
	case http.StatusTooManyRequests:
		msg = "query queue full, retry shortly"
	default:
		msg = "timed out waiting for a query slot"
	}
	jsonError(w, status, errString(msg))
}

// errString is a trivial error so jsonError can be reused verbatim.
type errString string

func (e errString) Error() string { return string(e) }
