package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"libbat"
	"libbat/internal/obs"
)

// testServer writes a small dataset and wraps it in a server.
func testServer(t *testing.T) (*server, int) {
	t.Helper()
	store, err := libbat.DirStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const ranks, perRank = 4, 2000
	err = libbat.Run(ranks, func(c *libbat.Comm) error {
		r := rand.New(rand.NewSource(int64(c.Rank())))
		lo := libbat.V3(float64(c.Rank()), 0, 0)
		local := libbat.NewParticleSet(libbat.NewSchema("val"), perRank)
		for i := 0; i < perRank; i++ {
			p := lo.Add(libbat.V3(r.Float64(), r.Float64(), r.Float64()))
			local.Append(p, []float64{p.X})
		}
		_, err := libbat.Write(c, store, "srv", local,
			libbat.NewBox(lo, lo.Add(libbat.V3(1, 1, 1))), libbat.DefaultWriteConfig(50<<10))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	names, err := seriesOf(store, "srv")
	if err != nil {
		t.Fatal(err)
	}
	s := &server{store: store, names: names, open: map[int]*libbat.Dataset{}}
	t.Cleanup(func() {
		for _, ds := range s.open {
			ds.Close()
		}
	})
	return s, ranks * perRank
}

func TestInfoEndpoint(t *testing.T) {
	s, total := testServer(t)
	rec := httptest.NewRecorder()
	s.info(rec, httptest.NewRequest("GET", "/info", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var got struct {
		Particles int64            `json:"particles"`
		Files     int              `json:"files"`
		Lower     []float64        `json:"lower"`
		Attrs     []map[string]any `json:"attrs"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Particles != int64(total) || got.Files < 1 || len(got.Attrs) != 1 {
		t.Errorf("info = %+v", got)
	}
}

func TestPointsEndpoint(t *testing.T) {
	s, total := testServer(t)
	rec := httptest.NewRecorder()
	s.points(rec, httptest.NewRequest("GET", "/points?quality=1", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body, _ := io.ReadAll(rec.Body)
	if len(body) != total*12 {
		t.Fatalf("body %d bytes, want %d", len(body), total*12)
	}
	// First point is a finite float triple.
	x := math.Float32frombits(binary.LittleEndian.Uint32(body))
	if math.IsNaN(float64(x)) || x < 0 || x > 4 {
		t.Errorf("x = %g out of domain", x)
	}
}

func TestPointsProgressiveWindow(t *testing.T) {
	s, total := testServer(t)
	sizes := 0
	prev := "0"
	for _, q := range []string{"0.3", "0.7", "1.0"} {
		rec := httptest.NewRecorder()
		s.points(rec, httptest.NewRequest("GET", "/points?prev="+prev+"&quality="+q, nil))
		body, _ := io.ReadAll(rec.Body)
		sizes += len(body)
		prev = q
	}
	if sizes != total*12 {
		t.Errorf("progressive windows returned %d bytes, want %d", sizes, total*12)
	}
}

func TestPointsFiltersAndAttr(t *testing.T) {
	s, _ := testServer(t)
	// box covering rank 0's cube only, with the extra attribute streamed.
	rec := httptest.NewRecorder()
	s.points(rec, httptest.NewRequest("GET", "/points?box=0,0,0,1,1,1&attr=0", nil))
	body, _ := io.ReadAll(rec.Body)
	if len(body)%16 != 0 || len(body) == 0 {
		t.Fatalf("body %d bytes not a multiple of 16", len(body))
	}
	n := len(body) / 16
	if n > 2100 || n < 1900 {
		t.Errorf("box query returned %d points, expected ~2000", n)
	}
	// filter val in [3,4] hits only rank 3's cube.
	rec = httptest.NewRecorder()
	s.points(rec, httptest.NewRequest("GET", "/points?filter=0,3,4", nil))
	body, _ = io.ReadAll(rec.Body)
	if n := len(body) / 12; n > 2100 || n < 1900 {
		t.Errorf("filter query returned %d points, expected ~2000", n)
	}
}

func TestPointsBadParams(t *testing.T) {
	s, _ := testServer(t)
	for _, url := range []string{
		"/points?quality=abc",
		"/points?prev=x",
		"/points?box=1,2,3",
		"/points?filter=1",
		"/points?attr=99",
	} {
		rec := httptest.NewRecorder()
		s.points(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 400 {
			t.Errorf("%s: status %d, want 400", url, rec.Code)
		}
	}
}

func TestBadParamsJSONBody(t *testing.T) {
	s, _ := testServer(t)
	rec := httptest.NewRecorder()
	s.points(rec, httptest.NewRequest("GET", "/points?box=a,b,c,d,e,f", nil))
	if rec.Code != 400 {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if body.Error == "" {
		t.Error("error body has no message")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	s.col = obs.New()
	points := s.instrument("/points", s.points)
	points(httptest.NewRecorder(), httptest.NewRequest("GET", "/points?quality=0.5", nil))
	points(httptest.NewRecorder(), httptest.NewRequest("GET", "/points?quality=abc", nil))

	rec := httptest.NewRecorder()
	s.metrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_total{code="200",path="/points"} 1`,
		`http_requests_total{code="400",path="/points"} 1`,
		"# TYPE http_request_duration_seconds histogram",
		`http_request_duration_seconds_count{path="/points"} 2`,
		"# TYPE query_duration_seconds histogram",
		"points_streamed_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}

func TestPageServed(t *testing.T) {
	s, _ := testServer(t)
	rec := httptest.NewRecorder()
	s.page(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.page(rec, httptest.NewRequest("GET", "/other", nil))
	if rec.Code != 404 {
		t.Errorf("non-root path: status %d", rec.Code)
	}
}

func TestTimeSeriesServing(t *testing.T) {
	// Two timesteps under a shared prefix; /info reports the series and
	// /points?step selects the dataset.
	store, err := libbat.DirStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for step, per := range map[int]int{0: 500, 1: 900} {
		base := "ts-" + string(rune('0'+step))
		err := libbat.Run(2, func(c *libbat.Comm) error {
			lo := libbat.V3(float64(c.Rank()), 0, 0)
			local := libbat.NewParticleSet(libbat.NewSchema("v"), per)
			r := rand.New(rand.NewSource(int64(step*10 + c.Rank())))
			for i := 0; i < per; i++ {
				local.Append(lo.Add(libbat.V3(r.Float64(), r.Float64(), r.Float64())), []float64{1})
			}
			_, err := libbat.Write(c, store, base, local,
				libbat.NewBox(lo, lo.Add(libbat.V3(1, 1, 1))), libbat.DefaultWriteConfig(1<<20))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	names, err := seriesOf(store, "ts-")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("series = %v", names)
	}
	s := &server{store: store, names: names, open: map[int]*libbat.Dataset{}}
	for step, want := range map[string]int{"0": 1000, "1": 1800} {
		rec := httptest.NewRecorder()
		s.points(rec, httptest.NewRequest("GET", "/points?step="+step, nil))
		body, _ := io.ReadAll(rec.Body)
		if len(body) != want*12 {
			t.Errorf("step %s: %d bytes, want %d", step, len(body), want*12)
		}
	}
	// Out-of-range step.
	rec := httptest.NewRecorder()
	s.points(rec, httptest.NewRequest("GET", "/points?step=9", nil))
	if rec.Code != 400 {
		t.Errorf("bad step status %d", rec.Code)
	}
	// Missing prefix errors.
	if _, err := seriesOf(store, "nope"); err == nil {
		t.Error("missing prefix should error")
	}
}

// TestGracefulShutdown starts the real http.Server on an ephemeral port,
// confirms it serves, then shuts it down: Serve must return
// http.ErrServerClosed, in-flight-free shutdown must complete well inside
// the drain window, and the cached dataset handles must be released.
func TestGracefulShutdown(t *testing.T) {
	s, _ := testServer(t)
	s.col = obs.New()
	srv := newHTTPServer("127.0.0.1:0", s.routes())
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/info")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/info status %d", resp.StatusCode)
	}
	if len(s.open) == 0 {
		t.Fatal("expected a cached dataset after serving /info")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-errc:
		if err != http.ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	s.closeDatasets()
	if len(s.open) != 0 {
		t.Errorf("%d datasets still cached after closeDatasets", len(s.open))
	}
	if _, err := http.Get("http://" + ln.Addr().String() + "/info"); err == nil {
		t.Error("request succeeded after shutdown")
	}
}

// TestServerTimeoutsConfigured pins the request-timeout policy: header and
// read limits short, the write limit long enough for a progressive stream.
func TestServerTimeoutsConfigured(t *testing.T) {
	srv := newHTTPServer(":0", nil)
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Error("header/read/idle timeouts must be set")
	}
	if srv.WriteTimeout < time.Minute {
		t.Errorf("WriteTimeout %v too short to stream a full quality sweep", srv.WriteTimeout)
	}
}
