// Read-path benchmark: measures the concurrent query engine on one BAT
// file and emits a machine-readable JSON report (BENCH_read.json at the
// repo root via scripts/bench.sh). The report is the performance baseline
// the next PRs diff against; CI only checks that it is produced and
// well-formed, never absolute speed.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"libbat/internal/bat"
	"libbat/internal/geom"
	"libbat/internal/particles"
)

// readBenchReport is the schema of BENCH_read.json.
type readBenchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Particles   int    `json:"particles"`
	Treelets    int    `json:"treelets"`
	FileBytes   int    `json:"file_bytes"`

	Runs map[string]readBenchRun `json:"runs"`

	Cache struct {
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		Evictions int64   `json:"evictions"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"cache"`

	// Warm full-scan speedup of Workers=GOMAXPROCS over Workers=1. On a
	// single-core runner this is ~1.0 by construction; the multi-core
	// number is what the acceptance criterion records.
	ParallelSpeedupWarmFullScan float64 `json:"parallel_speedup_warm_full_scan"`
}

type readBenchRun struct {
	Workers         int     `json:"workers"`
	Seconds         float64 `json:"seconds"`
	Visited         int64   `json:"visited"`
	ParticlesPerSec float64 `json:"particles_per_sec"`
}

// readBenchCorpus builds a seeded mixed corpus: 70% uniform, 30% clustered
// in a corner octant, two attributes — enough structure that box queries
// prune and bitmap filters discriminate.
func readBenchCorpus(n int) (*particles.Set, geom.Box) {
	r := rand.New(rand.NewSource(20240806))
	s := particles.NewSet(particles.NewSchema("mass", "id"), n)
	for i := 0; i < n; i++ {
		var p geom.Vec3
		if i%10 < 7 {
			p = geom.V3(r.Float64(), r.Float64(), r.Float64())
		} else {
			p = geom.V3(r.Float64()*0.25, r.Float64()*0.25, r.Float64()*0.25)
		}
		s.Append(p, []float64{p.X*100 + r.Float64(), float64(i)})
	}
	return s, geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
}

// timeQuery runs one query under cfg and returns the wall time and count.
func timeQuery(f *bat.File, q bat.Query, cfg bat.QueryConfig) (time.Duration, int64, error) {
	var n int64
	start := time.Now()
	_, err := f.QueryWithConfig(q, cfg, func(geom.Vec3, []float64) error {
		n++
		return nil
	})
	return time.Since(start), n, err
}

func benchRun(f *bat.File, q bat.Query, cfg bat.QueryConfig) (readBenchRun, error) {
	dur, n, err := timeQuery(f, q, cfg)
	if err != nil {
		return readBenchRun{}, err
	}
	run := readBenchRun{
		Workers: cfg.Workers,
		Seconds: dur.Seconds(),
		Visited: n,
	}
	if dur > 0 {
		run.ParticlesPerSec = float64(n) / dur.Seconds()
	}
	return run, nil
}

// runReadBench executes the benchmark and writes the JSON report to
// outPath, then reads it back and validates the schema so a malformed
// report fails loudly here rather than in a later consumer.
func runReadBench(nParticles int, outPath string) error {
	set, domain := readBenchCorpus(nParticles)
	built, err := bat.Build(set, domain, bat.DefaultBuildConfig())
	if err != nil {
		return fmt.Errorf("readbench: build: %w", err)
	}

	maxProcs := runtime.GOMAXPROCS(0)
	serial := bat.QueryConfig{Workers: 1}
	parallel := bat.QueryConfig{Workers: maxProcs, Readahead: 2}
	box := geom.NewBox(geom.V3(0.2, 0.2, 0.2), geom.V3(0.8, 0.8, 0.8))
	boxQ := bat.Query{Bounds: &box}

	rep := readBenchReport{
		GeneratedBy: "batbench -readbench",
		GoMaxProcs:  maxProcs,
		Particles:   nParticles,
		FileBytes:   len(built.Buf),
		Runs:        map[string]readBenchRun{},
	}

	// Cold runs get a fresh File (empty treelet cache) over the same
	// buffer; warm runs reuse the file the cold scan populated.
	coldSerial, err := bat.FromBuffer(built.Buf)
	if err != nil {
		return err
	}
	if rep.Runs["full_scan_cold_serial"], err = benchRun(coldSerial, bat.Query{}, serial); err != nil {
		return err
	}
	coldSerial.Close()

	coldParallel, err := bat.FromBuffer(built.Buf)
	if err != nil {
		return err
	}
	if rep.Runs["full_scan_cold_parallel"], err = benchRun(coldParallel, bat.Query{}, parallel); err != nil {
		return err
	}
	coldParallel.Close()

	warm, err := bat.FromBuffer(built.Buf)
	if err != nil {
		return err
	}
	defer warm.Close()
	if _, _, err := timeQuery(warm, bat.Query{}, serial); err != nil { // populate the cache
		return err
	}
	if rep.Runs["full_scan_warm_serial"], err = benchRun(warm, bat.Query{}, serial); err != nil {
		return err
	}
	if rep.Runs["full_scan_warm_parallel"], err = benchRun(warm, bat.Query{}, parallel); err != nil {
		return err
	}
	if rep.Runs["box_query_warm_serial"], err = benchRun(warm, boxQ, serial); err != nil {
		return err
	}
	if rep.Runs["box_query_warm_parallel"], err = benchRun(warm, boxQ, parallel); err != nil {
		return err
	}

	st := warm.CacheStats()
	rep.Treelets = int(st.Entries)
	rep.Cache.Hits = st.Hits
	rep.Cache.Misses = st.Misses
	rep.Cache.Evictions = st.Evictions
	rep.Cache.HitRate = st.HitRate()
	if s, p := rep.Runs["full_scan_warm_serial"], rep.Runs["full_scan_warm_parallel"]; p.Seconds > 0 {
		rep.ParallelSpeedupWarmFullScan = s.Seconds / p.Seconds
	}

	// Sanity: every engine configuration must agree on the visit counts.
	wantFull := rep.Runs["full_scan_cold_serial"].Visited
	for name, r := range rep.Runs {
		ref := wantFull
		if name == "box_query_warm_serial" || name == "box_query_warm_parallel" {
			ref = rep.Runs["box_query_warm_serial"].Visited
		}
		if r.Visited != ref {
			return fmt.Errorf("readbench: %s visited %d particles, want %d", name, r.Visited, ref)
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}

	// Validate the written artifact round-trips with the required fields.
	raw, err := os.ReadFile(outPath)
	if err != nil {
		return err
	}
	var check readBenchReport
	if err := json.Unmarshal(raw, &check); err != nil {
		return fmt.Errorf("readbench: report is not valid JSON: %w", err)
	}
	for _, key := range []string{
		"full_scan_cold_serial", "full_scan_cold_parallel",
		"full_scan_warm_serial", "full_scan_warm_parallel",
		"box_query_warm_serial", "box_query_warm_parallel",
	} {
		r, ok := check.Runs[key]
		if !ok || r.Seconds < 0 || r.ParticlesPerSec < 0 {
			return fmt.Errorf("readbench: report missing or malformed run %q", key)
		}
	}
	if check.GoMaxProcs < 1 || check.Particles != nParticles {
		return fmt.Errorf("readbench: report header malformed")
	}

	fmt.Printf("readbench: %d particles, %d treelets, gomaxprocs %d\n",
		rep.Particles, rep.Treelets, rep.GoMaxProcs)
	fmt.Printf("  full scan  cold: serial %.3fs, parallel %.3fs\n",
		rep.Runs["full_scan_cold_serial"].Seconds, rep.Runs["full_scan_cold_parallel"].Seconds)
	fmt.Printf("  full scan  warm: serial %.3fs, parallel %.3fs (speedup %.2fx)\n",
		rep.Runs["full_scan_warm_serial"].Seconds, rep.Runs["full_scan_warm_parallel"].Seconds,
		rep.ParallelSpeedupWarmFullScan)
	fmt.Printf("  box query  warm: serial %.3fs, parallel %.3fs\n",
		rep.Runs["box_query_warm_serial"].Seconds, rep.Runs["box_query_warm_parallel"].Seconds)
	fmt.Printf("  cache: %d hits / %d misses (rate %.3f), %d evictions\n",
		rep.Cache.Hits, rep.Cache.Misses, rep.Cache.HitRate, rep.Cache.Evictions)
	fmt.Printf("  report: %s\n", outPath)
	return nil
}
