// Command batbench regenerates the tables and figures of the paper's
// evaluation (§VI). Modeled benchmarks (Figures 5-7, 9-12 and the file
// statistics) run the real aggregation algorithms at the paper's rank
// counts with byte movement charged to the Stampede2/Summit cost models;
// the visualization benchmarks (Tables I/II, Figure 13, the layout
// overhead) build real BAT files and time real reads.
//
// Usage:
//
//	batbench -all                  # everything (scaled-down vis reads)
//	batbench -fig 5 -system summit # one figure
//	batbench -table 1              # Table I
//	batbench -filestats -overhead
//	batbench -csv                  # emit CSV instead of aligned text
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"libbat"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"libbat/internal/bench"
	"libbat/internal/cliutil"
	"libbat/internal/mmapio"
	"libbat/internal/obs"
	"libbat/internal/perf"
)

// saveTable writes a table under dir as NN-slug.txt and NN-slug.csv.
func saveTable(dir string, seq int, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := make([]rune, 0, 40)
	for _, r := range strings.ToLower(t.Title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			slug = append(slug, r)
		case r == ' ' || r == '-' || r == '/':
			if len(slug) > 0 && slug[len(slug)-1] != '-' {
				slug = append(slug, '-')
			}
		}
		if len(slug) >= 40 {
			break
		}
	}
	base := filepath.Join(dir, fmt.Sprintf("%02d-%s", seq, strings.Trim(string(slug), "-")))
	var txt, csvBuf bytes.Buffer
	t.Fprint(&txt)
	t.CSV(&csvBuf)
	if err := os.WriteFile(base+".txt", txt.Bytes(), 0o644); err != nil {
		return err
	}
	return os.WriteFile(base+".csv", csvBuf.Bytes(), 0o644)
}

func main() {
	var (
		all       = flag.Bool("all", false, "run every benchmark")
		fig       = flag.Int("fig", 0, "regenerate one figure (5, 6, 7, 8, 9, 10, 11, 12, 13)")
		table     = flag.Int("table", 0, "regenerate one table (1 or 2)")
		fileStats = flag.Bool("filestats", false, "output-file statistics (§VI-A.2)")
		overhead  = flag.Bool("overhead", false, "layout memory overhead (§VI-B)")
		ablate    = flag.Bool("ablate", false, "ablation studies of the design choices")
		ext       = flag.Bool("extensions", false, "extension experiments (cosmology workload, auto target size)")
		system    = flag.String("system", "both", "system profile: stampede2, summit, or both")
		measured  = flag.Bool("measured", false, "full-fidelity measured pipeline breakdown")
		csv       = flag.Bool("csv", false, "emit CSV")
		outdir    = flag.String("outdir", "", "also save each table as .txt and .csv under this directory")
		dir       = flag.String("dir", "", "directory for materialized datasets (default: in-memory)")
		visRanks  = flag.Int("vis-ranks", 32, "ranks for the materialized visualization benchmarks")
		visScale  = flag.Int64("vis-particles", 300_000, "particles for the materialized benchmarks")
		statsOut  = flag.String("stats", "", "write telemetry from the materialized runs as JSON to this file")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event timeline of the materialized runs to this file")
		jsonOut   = flag.String("json", "", "write machine-readable per-phase timings of the materialized runs to this file")
		buildWkrs = flag.Int("build-workers", 0, "BAT build worker goroutines per aggregator (0 = GOMAXPROCS)")
		readBench = flag.Bool("readbench", false, "run the query-path benchmark and emit a JSON report")
		readOut   = flag.String("readbench-out", "BENCH_read.json", "output path for the -readbench report")
		readScale = flag.Int("read-particles", 400_000, "particles for the -readbench corpus")
		compBench = flag.Bool("compressbench", false, "run the v3 codec benchmark and emit a JSON report")
		compOut   = flag.String("compressbench-out", "BENCH_compress.json", "output path for the -compressbench report")
		compScale = flag.Int("compress-particles", 400_000, "particles for the -compressbench corpus")
		treeBench = flag.Bool("treebench", false, "run the plan-scaling benchmark (centralized vs distributed) and emit a JSON report")
		treeOut   = flag.String("treebench-out", "BENCH_treebuild.json", "output path for the -treebench report")
		treeQuick = flag.Bool("treebench-quick", false, "measure fewer real-fabric world sizes in -treebench (CI smoke)")
		printMax  = flag.Bool("print-gomaxprocs", false, "print effective GOMAXPROCS and exit (scripts/bench.sh)")
	)
	flag.Parse()
	if *printMax {
		fmt.Println(runtime.GOMAXPROCS(0))
		return
	}
	if *buildWkrs < 0 {
		fmt.Fprintf(os.Stderr, "batbench: -build-workers must be >= 0, got %d\n", *buildWkrs)
		os.Exit(2)
	}
	bench.BuildWorkers = *buildWkrs
	obsFlags := cliutil.ObsFlags{StatsPath: *statsOut, TracePath: *traceOut}
	col := obsFlags.Collector()
	if col == nil && *jsonOut != "" {
		// -json needs span telemetry even when -stats/-trace are off.
		col = obs.New()
	}
	if col != nil {
		bench.Observer = col
		mmapio.SetCollector(col)
	}
	if !*all && *fig == 0 && *table == 0 && !*fileStats && !*overhead && !*ablate && !*ext && !*measured && !*readBench && !*compBench && !*treeBench {
		flag.Usage()
		os.Exit(2)
	}

	if *readBench {
		if err := runReadBench(*readScale, *readOut); err != nil {
			fmt.Fprintln(os.Stderr, "batbench:", err)
			os.Exit(1)
		}
	}
	if *compBench {
		if err := runCompressBench(*compScale, *compOut); err != nil {
			fmt.Fprintln(os.Stderr, "batbench:", err)
			os.Exit(1)
		}
	}
	if *treeBench {
		if err := runTreeBench(*treeOut, *treeQuick); err != nil {
			fmt.Fprintln(os.Stderr, "batbench:", err)
			os.Exit(1)
		}
	}

	tableSeq := 0
	emit := func(t *bench.Table, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "batbench:", err)
			os.Exit(1)
		}
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
		if *outdir != "" {
			if err := saveTable(*outdir, tableSeq, t); err != nil {
				fmt.Fprintln(os.Stderr, "batbench: saving table:", err)
				os.Exit(1)
			}
			tableSeq++
		}
	}
	profiles := func() []perf.Profile {
		switch *system {
		case "stampede2":
			return []perf.Profile{perf.Stampede2()}
		case "summit":
			return []perf.Profile{perf.Summit()}
		default:
			return []perf.Profile{perf.Stampede2(), perf.Summit()}
		}
	}
	visCfg := bench.VisReadConfig{
		Ranks:       *visRanks,
		Steps:       []int{0, 50, 100},
		TargetSizes: []int64{1 << 20, 2 << 20, 4 << 20, 8 << 20},
		Dir:         *dir,
	}

	run := func(id int) {
		switch id {
		case 5:
			for _, p := range profiles() {
				emit(bench.Fig5WriteScaling(bench.DefaultWeakScaling(p)))
			}
		case 6:
			for _, p := range profiles() {
				emit(bench.Fig6Breakdown(bench.DefaultWeakScaling(p)))
			}
		case 7:
			for _, p := range profiles() {
				emit(bench.Fig7ReadScaling(bench.DefaultWeakScaling(p)))
			}
		case 8:
			emit(bench.Fig8DatasetStats(1536))
		case 9:
			w, r, err := bench.Fig9CoalBoiler(bench.DefaultCoalBoilerCompare())
			emit(w, err)
			emit(r, nil)
		case 10:
			emit(bench.Fig10Breakdown(bench.DefaultCoalBoilerCompare()))
		case 11:
			for _, big := range []bool{false, true} {
				cfg, total := bench.DefaultDamBreakCompare(big)
				w, r, err := bench.Fig11DamBreak(cfg, total)
				emit(w, err)
				emit(r, nil)
			}
		case 12:
			cfg, total := bench.DefaultDamBreakCompare(true)
			emit(bench.Fig12Breakdown(cfg, total))
		case 13:
			emit(bench.Fig13Quality(visCfg, *visScale))
		default:
			fmt.Fprintf(os.Stderr, "batbench: unknown figure %d\n", id)
			os.Exit(2)
		}
	}
	runTable := func(id int) {
		switch id {
		case 1:
			emit(bench.Table1CoalBoiler(visCfg, *visScale/2, *visScale))
		case 2:
			emit(bench.Table2DamBreak(visCfg, *visScale))
		default:
			fmt.Fprintf(os.Stderr, "batbench: unknown table %d\n", id)
			os.Exit(2)
		}
	}

	if *fig != 0 {
		run(*fig)
	}
	if *table != 0 {
		runTable(*table)
	}
	if *fileStats || *all {
		emit(bench.FileStats(1536, 4501, 8<<20))
	}
	if *overhead || *all {
		emit(bench.Overhead(visCfg, *visScale))
	}
	if *ext || *all {
		emit(bench.CosmoCompare(bench.CompareConfig{
			Profile:     perf.Stampede2(),
			Ranks:       1536,
			Steps:       []int{0, 250, 500, 750, 1000},
			TargetSizes: []int64{8 << 20, 32 << 20},
		}, 20_000_000, 24))
		emit(bench.RecommendCheck(perf.Stampede2(), []int{96, 384, 1536, 6144, 24576},
			bench.UniformPerRank, bench.UniformAttrs, libbat.RecommendTargetSize))
	}
	if *measured || *all {
		emit(bench.MeasuredBreakdown(*visRanks, *visScale, 2<<20))
	}
	if *ablate || *all {
		emit(bench.AblateOverfull(1536, 2501, 8<<20))
		emit(bench.AblateSplitAxes(1536, 1001, 3<<20))
		emit(bench.AblateLOD(*visRanks, *visScale/2))
		emit(bench.AblateBitmapDictionary(int(*visScale)))
		emit(bench.AblateAggregatorSpread(1536, 2501, 8<<20))
	}
	if *all {
		for _, id := range []int{5, 6, 7, 8, 9, 10, 11, 12, 13} {
			run(id)
		}
		runTable(1)
		runTable(2)
	}
	if bench.Observer != nil {
		phases := phaseAgg()
		emit(phaseBreakdown(phases), nil)
		if *jsonOut != "" {
			if err := writePhaseJSON(*jsonOut, phases); err != nil {
				fmt.Fprintln(os.Stderr, "batbench: writing phase timings:", err)
				os.Exit(1)
			}
		}
		if err := obsFlags.Dump(bench.Observer); err != nil {
			fmt.Fprintln(os.Stderr, "batbench:", err)
			os.Exit(1)
		}
	}
}

// phaseTiming is one aggregated phase row, as emitted by -json: phase name,
// span count, and total/mean wall time in nanoseconds.
type phaseTiming struct {
	Phase   string `json:"phase"`
	Spans   int64  `json:"spans"`
	TotalNs int64  `json:"total_ns"`
	MeanNs  int64  `json:"mean_ns"`
}

// phaseAgg condenses the collector's spans into per-phase totals
// (aggregated over ranks and runs), in first-appearance order.
func phaseAgg() []phaseTiming {
	byPhase := map[string]int{}
	var out []phaseTiming
	for _, sp := range bench.Observer.Snapshot().Spans {
		i, ok := byPhase[sp.Name]
		if !ok {
			i = len(out)
			byPhase[sp.Name] = i
			out = append(out, phaseTiming{Phase: sp.Name})
		}
		out[i].Spans += sp.Count
		out[i].TotalNs += int64(sp.TotalNs)
	}
	for i := range out {
		if out[i].Spans > 0 {
			out[i].MeanNs = out[i].TotalNs / out[i].Spans
		}
	}
	return out
}

// phaseBreakdown renders the aggregated phases as a table printed alongside
// the benchmark totals.
func phaseBreakdown(phases []phaseTiming) *bench.Table {
	t := &bench.Table{
		Title:  "Telemetry: per-phase time across all materialized runs",
		Header: []string{"phase", "spans", "total", "mean"},
	}
	for _, p := range phases {
		t.AddRow(p.Phase, fmt.Sprintf("%d", p.Spans),
			time.Duration(p.TotalNs).Round(time.Microsecond).String(),
			time.Duration(p.MeanNs).Round(time.Microsecond).String())
	}
	t.Notes = append(t.Notes, "spans cover the full-fidelity (materialized) pipelines only; modeled runs have no telemetry")
	return t
}

// writePhaseJSON emits the aggregated phase timings as a JSON array, the
// machine-readable form the repo's benchmark trajectory accumulates.
func writePhaseJSON(path string, phases []phaseTiming) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(fh)
	enc.SetIndent("", "  ")
	if err := enc.Encode(phases); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
