// Compression benchmark: builds the same cosmology-shaped corpus as a
// plain v2 file and as v3 files at two relative error bounds, then records
// payload ratios, build (encode) time, and cold/warm full-scan (decode)
// time in a JSON report (BENCH_compress.json at the repo root via
// scripts/bench.sh). Every lossy configuration is self-validated against
// its declared bounds before the report is written; a violated bound fails
// the run rather than producing a report.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"libbat/internal/bat"
	"libbat/internal/geom"
	"libbat/internal/particles"
)

// compressBenchReport is the schema of BENCH_compress.json.
type compressBenchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Particles   int    `json:"particles"`

	// Per-attribute value ranges the relative bounds were scaled by.
	AttrRanges map[string]float64 `json:"attr_ranges"`

	Configs map[string]compressBenchConfig `json:"configs"`

	// Headline numbers: treelet attribute payload shrink factor and warm /
	// cold full-scan time relative to the uncompressed v2 baseline, both at
	// the moderate (1e-3 relative) bound.
	PayloadRatioRel1e3    float64 `json:"payload_ratio_rel_1e3"`
	ColdScanVsV2Rel1e3    float64 `json:"cold_scan_vs_v2_rel_1e3"`
	WarmScanVsV2Rel1e3    float64 `json:"warm_scan_vs_v2_rel_1e3"`
	FileBytesVsV2Rel1e3   float64 `json:"file_bytes_vs_v2_rel_1e3"`
	BoundsValidatedPoints int     `json:"bounds_validated_points"`
}

type compressBenchConfig struct {
	Bounds        []float64 `json:"bounds,omitempty"`
	FileBytes     int       `json:"file_bytes"`
	PayloadRaw    uint64    `json:"attr_payload_raw_bytes,omitempty"`
	PayloadEnc    uint64    `json:"attr_payload_enc_bytes,omitempty"`
	PayloadRatio  float64   `json:"attr_payload_ratio,omitempty"`
	BuildSeconds  float64   `json:"build_seconds"`
	EncodeMBPerS  float64   `json:"encode_mb_per_sec"`
	ColdSeconds   float64   `json:"full_scan_cold_seconds"`
	WarmSeconds   float64   `json:"full_scan_warm_seconds"`
	DecodeMBPerS  float64   `json:"cold_decode_mb_per_sec"`
	MaxScaledErr  float64   `json:"max_scaled_error,omitempty"` // max |err|/bound over lossy attrs
	LosslessExact bool      `json:"lossless_exact"`
}

// compressBenchCorpus is a cosmology-shaped mix: clustered positions,
// lognormal mass, gaussian velocity, a smooth float32 potential, and a
// unique integral id used as the join key for self-validation.
func compressBenchCorpus(n int) (*particles.Set, geom.Box) {
	r := rand.New(rand.NewSource(20250808))
	schema := particles.Schema{Attrs: []particles.AttrDesc{
		{Name: "mass", Type: particles.Float64},
		{Name: "vx", Type: particles.Float64},
		{Name: "phi", Type: particles.Float32},
		{Name: "id", Type: particles.Float64},
	}}
	s := particles.NewSet(schema, n)
	for i := 0; i < n; i++ {
		var p geom.Vec3
		if i%4 != 0 {
			c := geom.V3(float64(i%3)*0.3+0.1, float64((i/3)%3)*0.3+0.1, 0.5)
			p = geom.V3(c.X+r.NormFloat64()*0.02, c.Y+r.NormFloat64()*0.02, c.Z+r.NormFloat64()*0.02)
		} else {
			p = geom.V3(r.Float64(), r.Float64(), r.Float64())
		}
		s.Append(p, []float64{
			math.Exp(r.NormFloat64()),
			r.NormFloat64() * 300,
			math.Sin(p.X*7) + p.Y*0.5,
			float64(i),
		})
	}
	return s, geom.NewBox(geom.V3(-1, -1, -1), geom.V3(2, 2, 2))
}

// scanAll runs a full serial scan collecting every particle, returning the
// wall time and the decoded values keyed by the id attribute.
func scanAll(f *bat.File, nAttrs int) (time.Duration, map[float64][]float64, error) {
	vals := make(map[float64][]float64)
	start := time.Now()
	err := f.Query(bat.Query{}, func(_ geom.Vec3, attrs []float64) error {
		vals[attrs[nAttrs-1]] = append([]float64(nil), attrs...)
		return nil
	})
	return time.Since(start), vals, err
}

// timeScan is scanAll without the collection overhead, for the timing runs.
func timeScan(f *bat.File) (time.Duration, int64, error) {
	var n int64
	start := time.Now()
	err := f.Query(bat.Query{}, func(geom.Vec3, []float64) error {
		n++
		return nil
	})
	return time.Since(start), n, err
}

// runCompressConfig builds the set under cfg, times a cold and a warm full
// scan, and (for lossy configs) validates every decoded value against the
// declared per-attribute bound.
func runCompressConfig(set *particles.Set, domain geom.Box, cfg bat.BuildConfig, bounds []float64) (compressBenchConfig, error) {
	out := compressBenchConfig{Bounds: bounds}
	start := time.Now()
	built, err := bat.Build(set, domain, cfg)
	if err != nil {
		return out, err
	}
	buildDur := time.Since(start)
	out.FileBytes = len(built.Buf)
	out.BuildSeconds = buildDur.Seconds()
	rawPayload := float64(set.Len() * set.Schema.BytesPerParticle())
	if buildDur > 0 {
		out.EncodeMBPerS = rawPayload / (1 << 20) / buildDur.Seconds()
	}

	cold, err := bat.FromBuffer(built.Buf)
	if err != nil {
		return out, err
	}
	defer cold.Close()
	coldDur, n, err := timeScan(cold)
	if err != nil {
		return out, err
	}
	if n != int64(set.Len()) {
		return out, fmt.Errorf("cold scan visited %d of %d particles", n, set.Len())
	}
	out.ColdSeconds = coldDur.Seconds()
	if coldDur > 0 {
		out.DecodeMBPerS = rawPayload / (1 << 20) / coldDur.Seconds()
	}
	// The treelet cache now holds every decoded treelet: the warm scan
	// measures the query path with decode already paid.
	warmDur, _, err := timeScan(cold)
	if err != nil {
		return out, err
	}
	out.WarmSeconds = warmDur.Seconds()

	if ci := cold.Compression(); ci != nil {
		out.PayloadRaw = ci.RawPayloadBytes
		out.PayloadEnc = ci.EncPayloadBytes
		out.PayloadRatio = ci.Ratio()
	}

	// Self-validation: join decoded values back to the originals on id and
	// check every attribute against its declared bound (bit-exact when the
	// bound is zero). Error is measured against the type-rounded value the
	// lossless layout stores.
	_, got, err := scanAll(cold, set.Schema.NumAttrs())
	if err != nil {
		return out, err
	}
	out.LosslessExact = true
	for i := 0; i < set.Len(); i++ {
		id := set.Attrs[len(set.Attrs)-1][i]
		dec, ok := got[id]
		if !ok {
			return out, fmt.Errorf("particle id %g missing from the decoded scan", id)
		}
		for a := range set.Attrs {
			want := set.Attrs[a][i]
			if set.Schema.Attrs[a].Type == particles.Float32 {
				want = float64(float32(want))
			}
			diff := math.Abs(dec[a] - want)
			bound := 0.0
			if bounds != nil {
				bound = bounds[a]
			}
			if bound == 0 {
				if diff != 0 {
					out.LosslessExact = false
					return out, fmt.Errorf("attr %s declared lossless but differs by %g", set.Schema.Attrs[a].Name, diff)
				}
			} else {
				if diff > bound {
					return out, fmt.Errorf("attr %s exceeds bound: |err|=%g > %g", set.Schema.Attrs[a].Name, diff, bound)
				}
				if scaled := diff / bound; scaled > out.MaxScaledErr {
					out.MaxScaledErr = scaled
				}
			}
		}
	}
	return out, nil
}

// runCompressBench executes the benchmark and writes the JSON report to
// outPath, validating the written artifact the same way readbench does.
func runCompressBench(nParticles int, outPath string) error {
	set, domain := compressBenchCorpus(nParticles)
	nA := set.Schema.NumAttrs()

	rep := compressBenchReport{
		GeneratedBy: "batbench -compressbench",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Particles:   nParticles,
		AttrRanges:  map[string]float64{},
		Configs:     map[string]compressBenchConfig{},
	}

	// Relative bounds scale to each attribute's value range; the id
	// attribute always stays lossless.
	relBounds := func(rel float64) []float64 {
		bounds := make([]float64, nA)
		for a := 0; a < nA-1; a++ {
			r := set.AttrRange(a)
			bounds[a] = rel * (r.Max - r.Min)
		}
		return bounds
	}
	for a := 0; a < nA; a++ {
		r := set.AttrRange(a)
		rep.AttrRanges[set.Schema.Attrs[a].Name] = r.Max - r.Min
	}

	base := bat.DefaultBuildConfig()
	v2, err := runCompressConfig(set, domain, base, nil)
	if err != nil {
		return fmt.Errorf("compressbench: v2 baseline: %w", err)
	}
	rep.Configs["v2_lossless"] = v2

	for _, tc := range []struct {
		name string
		rel  float64
	}{
		{"v3_rel_1e3", 1e-3},
		{"v3_rel_1e5", 1e-5},
	} {
		cfg := base
		cfg.Compress = true
		cfg.AttrErrorBounds = relBounds(tc.rel)
		run, err := runCompressConfig(set, domain, cfg, cfg.AttrErrorBounds)
		if err != nil {
			return fmt.Errorf("compressbench: %s: %w", tc.name, err)
		}
		rep.Configs[tc.name] = run
	}

	mid := rep.Configs["v3_rel_1e3"]
	rep.PayloadRatioRel1e3 = mid.PayloadRatio
	if v2.ColdSeconds > 0 {
		rep.ColdScanVsV2Rel1e3 = mid.ColdSeconds / v2.ColdSeconds
	}
	if v2.WarmSeconds > 0 {
		rep.WarmScanVsV2Rel1e3 = mid.WarmSeconds / v2.WarmSeconds
	}
	rep.FileBytesVsV2Rel1e3 = float64(mid.FileBytes) / float64(v2.FileBytes)
	rep.BoundsValidatedPoints = nParticles * len(rep.Configs)

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		return err
	}
	var check compressBenchReport
	if err := json.Unmarshal(raw, &check); err != nil {
		return fmt.Errorf("compressbench: report is not valid JSON: %w", err)
	}
	for _, key := range []string{"v2_lossless", "v3_rel_1e3", "v3_rel_1e5"} {
		c, ok := check.Configs[key]
		if !ok || c.FileBytes <= 0 || c.ColdSeconds < 0 {
			return fmt.Errorf("compressbench: report missing or malformed config %q", key)
		}
	}
	if check.Configs["v3_rel_1e3"].PayloadRatio <= 0 {
		return fmt.Errorf("compressbench: v3 config recorded no payload ratio")
	}

	fmt.Printf("compressbench: %d particles, gomaxprocs %d\n", nParticles, rep.GoMaxProcs)
	for _, key := range []string{"v2_lossless", "v3_rel_1e3", "v3_rel_1e5"} {
		c := rep.Configs[key]
		extra := ""
		if c.PayloadRatio > 0 {
			extra = fmt.Sprintf(", payload %.2fx (%d -> %d B), max scaled err %.3f",
				c.PayloadRatio, c.PayloadRaw, c.PayloadEnc, c.MaxScaledErr)
		}
		fmt.Printf("  %-12s file %8d B, build %.3fs, cold scan %.3fs, warm scan %.3fs%s\n",
			key, c.FileBytes, c.BuildSeconds, c.ColdSeconds, c.WarmSeconds, extra)
	}
	fmt.Printf("  v3@1e-3 vs v2: payload %.2fx smaller, file %.2fx, cold scan %.2fx, warm scan %.2fx\n",
		rep.PayloadRatioRel1e3, rep.FileBytesVsV2Rel1e3, rep.ColdScanVsV2Rel1e3, rep.WarmScanVsV2Rel1e3)
	fmt.Printf("  report: %s\n", outPath)
	return nil
}
