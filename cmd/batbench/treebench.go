// Aggregation-plan benchmark: contrasts the centralized rank-0 planner with
// the distributed splitter-sampling protocol (DESIGN §15) and emits a
// machine-readable JSON report (BENCH_treebuild.json at the repo root via
// scripts/bench.sh).
//
// Small worlds run both planners for real on the simulated fabric and check
// byte-equivalence of the resulting plans; the extreme-scale weak-scaling
// table (up to 4M virtual ranks) comes from the perf cost models, because a
// real build at millions of simulated ranks is infeasible in-process. The
// report is self-validating: the centralized curve must grow ~linearly and
// the distributed curve sublinearly above 1M ranks, with the modeled
// crossover rank count recorded per system.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"time"

	"libbat/internal/aggtree"
	"libbat/internal/fabric"
	"libbat/internal/geom"
	"libbat/internal/perf"
)

// treeBenchReport is the schema of BENCH_treebuild.json.
type treeBenchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Quick       bool   `json:"quick"`

	// Real runs on the simulated fabric: both planners, equivalence
	// checked structurally.
	Measured []treeBenchMeasured `json:"measured"`

	// Modeled weak scaling per system profile.
	Systems map[string]treeBenchSystem `json:"systems"`
}

type treeBenchMeasured struct {
	Ranks        int     `json:"ranks"`
	Flavor       string  `json:"flavor"`
	Leaves       int     `json:"leaves"`
	Equivalent   bool    `json:"equivalent"`
	CentralizedS float64 `json:"centralized_seconds"`
	DistributedS float64 `json:"distributed_seconds"`
	Rounds       int     `json:"collective_rounds"`
	PeakMembers  int     `json:"peak_members"`
	Samples      int     `json:"samples"`
}

type treeBenchSystem struct {
	CrossoverRanks   int                 `json:"crossover_ranks"`
	CentralizedSlope float64             `json:"centralized_slope_above_1m"`
	DistributedSlope float64             `json:"distributed_slope_above_1m"`
	Rows             []treeBenchModelRow `json:"rows"`
}

type treeBenchModelRow struct {
	Ranks        int     `json:"ranks"`
	Files        int     `json:"files"`
	CentralizedS float64 `json:"centralized_seconds"`
	DistributedS float64 `json:"distributed_seconds"`
}

// treeBenchRanks generates a seeded rank layout: a uniform X slab
// decomposition or randomly-placed boxes with power-law counts and some
// empty ranks (the skewed case the adaptive tree exists for).
func treeBenchRanks(flavor string, size int, seed int64) []aggtree.RankInfo {
	rng := rand.New(rand.NewSource(seed))
	ranks := make([]aggtree.RankInfo, size)
	for r := range ranks {
		ranks[r].Rank = r
		switch flavor {
		case "skewed":
			c := geom.V3(rng.Float64(), rng.Float64(), rng.Float64())
			w := rng.Float64() * 0.3
			ranks[r].Bounds = geom.NewBox(
				geom.V3(c.X-w, c.Y-w, c.Z-w), geom.V3(c.X+w, c.Y+w, c.Z+w))
			if rng.Intn(5) == 0 {
				ranks[r].Count = 0
			} else {
				ranks[r].Count = int64(1 + rng.Intn(100)*rng.Intn(100)*10)
			}
		default: // uniform
			lo := float64(r) / float64(size)
			hi := float64(r+1) / float64(size)
			ranks[r].Bounds = geom.NewBox(geom.V3(lo, 0, 0), geom.V3(hi, 1, 1))
			ranks[r].Count = 5000
		}
	}
	return ranks
}

// treeBenchMeasure runs both planners for real on one rank layout and
// verifies the distributed plan matches the centralized oracle.
func treeBenchMeasure(flavor string, size int, bpp int) (treeBenchMeasured, error) {
	m := treeBenchMeasured{Ranks: size, Flavor: flavor}
	ranks := treeBenchRanks(flavor, size, int64(size)*31+7)
	var total int64
	for _, r := range ranks {
		total += r.Count
	}
	// Aim for a handful of ranks per leaf so both split and consolidation
	// paths run.
	target := max(int64(1), total*int64(bpp)/int64(max(1, size/3)))
	cfg := aggtree.DefaultConfig(target, bpp)

	cenStart := time.Now()
	oracle, err := aggtree.Build(ranks, cfg)
	if err != nil {
		return m, fmt.Errorf("centralized build: %w", err)
	}
	oracleAgg := aggtree.AssignAggregators(oracle.Leaves, size)
	m.CentralizedS = time.Since(cenStart).Seconds()
	m.Leaves = oracle.NumLeaves()

	plans := make([]*aggtree.DistPlan, size)
	var tree *aggtree.Tree
	distStart := time.Now()
	err = fabric.Run(size, func(c *fabric.Comm) error {
		p, err := aggtree.DistributedBuild(c, ranks[c.Rank()], aggtree.DistConfig{Config: cfg})
		if err != nil {
			return err
		}
		plans[c.Rank()] = p
		at, err := p.AssembleTree(c)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			tree = at
		}
		return nil
	})
	if err != nil {
		return m, fmt.Errorf("distributed build: %w", err)
	}
	m.DistributedS = time.Since(distStart).Seconds()

	m.Equivalent = reflect.DeepEqual(tree, oracle)
	for r, p := range plans {
		if p.OwnAggregator != oracleAgg[r] {
			m.Equivalent = false
		}
		m.Rounds = max(m.Rounds, p.Stats.Rounds)
		m.PeakMembers = max(m.PeakMembers, p.Stats.PeakMembers)
		m.Samples = p.Stats.Samples
	}
	return m, nil
}

// logSlope fits the log-log slope of t(n) between the first and last row of
// a segment.
func logSlope(rows []treeBenchModelRow, loRanks int, dist bool) float64 {
	var seg []treeBenchModelRow
	for _, r := range rows {
		if r.Ranks >= loRanks {
			seg = append(seg, r)
		}
	}
	if len(seg) < 2 {
		return math.NaN()
	}
	a, b := seg[0], seg[len(seg)-1]
	ta, tb := a.CentralizedS, b.CentralizedS
	if dist {
		ta, tb = a.DistributedS, b.DistributedS
	}
	if ta <= 0 || tb <= 0 {
		return math.NaN()
	}
	return math.Log2(tb/ta) / math.Log2(float64(b.Ranks)/float64(a.Ranks))
}

// treeBenchSystemTable models both planners across the extended weak-scaling
// range for one system.
func treeBenchSystemTable(p perf.Profile, filesPerRank float64, maxRanks int) treeBenchSystem {
	pp := perf.DefaultPlanParams()
	sys := treeBenchSystem{}
	for n := 1 << 10; n <= maxRanks; n <<= 1 {
		files := max(1, int(filesPerRank*float64(n)))
		sys.Rows = append(sys.Rows, treeBenchModelRow{
			Ranks:        n,
			Files:        files,
			CentralizedS: p.ModelCentralizedPlan(n, pp).Total().Seconds(),
			DistributedS: p.ModelDistributedPlan(n, files, pp).Total().Seconds(),
		})
	}
	sys.CrossoverRanks = p.PlanCrossover(pp, filesPerRank, 1<<10, maxRanks)
	sys.CentralizedSlope = logSlope(sys.Rows, 1<<20, false)
	sys.DistributedSlope = logSlope(sys.Rows, 1<<20, true)
	return sys
}

// validateTreeBenchReport checks the written artifact: valid JSON, all
// measured runs equivalent, and per system a recorded crossover with a
// ~linear centralized curve and a sublinear distributed curve above 1M
// virtual ranks.
func validateTreeBenchReport(raw []byte) error {
	var rep treeBenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("report is not valid JSON: %w", err)
	}
	if rep.GoMaxProcs < 1 || len(rep.Measured) == 0 || len(rep.Systems) == 0 {
		return fmt.Errorf("report header malformed or sections missing")
	}
	for _, m := range rep.Measured {
		if !m.Equivalent {
			return fmt.Errorf("measured run (%s, %d ranks): distributed plan differs from centralized oracle",
				m.Flavor, m.Ranks)
		}
		if m.Leaves < 1 || m.Samples < 1 {
			return fmt.Errorf("measured run (%s, %d ranks) malformed: %+v", m.Flavor, m.Ranks, m)
		}
	}
	for name, sys := range rep.Systems {
		if len(sys.Rows) == 0 || sys.Rows[len(sys.Rows)-1].Ranks < 1<<20 {
			return fmt.Errorf("%s: weak-scaling table does not reach 1M ranks", name)
		}
		if sys.CrossoverRanks <= 0 {
			return fmt.Errorf("%s: no centralized->distributed crossover recorded", name)
		}
		if !(sys.CentralizedSlope >= 0.95) {
			return fmt.Errorf("%s: centralized slope %.3f above 1M ranks, expected ~linear (>= 0.95)",
				name, sys.CentralizedSlope)
		}
		if !(sys.DistributedSlope <= 0.6) {
			return fmt.Errorf("%s: distributed slope %.3f above 1M ranks, expected sublinear (<= 0.6)",
				name, sys.DistributedSlope)
		}
	}
	return nil
}

// runTreeBench executes the benchmark, writes the JSON report to outPath,
// and re-reads it through the validator so a malformed or story-breaking
// report fails loudly here.
func runTreeBench(outPath string, quick bool) error {
	const bpp = 124 // weak-scaling payload: 3 x float32 + 14 x float64
	rep := treeBenchReport{
		GeneratedBy: "batbench -treebench",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Quick:       quick,
		Systems:     map[string]treeBenchSystem{},
	}

	sizes := []int{16, 64, 256, 512}
	if quick {
		sizes = []int{16, 64}
	}
	for _, size := range sizes {
		for _, flavor := range []string{"uniform", "skewed"} {
			m, err := treeBenchMeasure(flavor, size, bpp)
			if err != nil {
				return fmt.Errorf("treebench: %w", err)
			}
			rep.Measured = append(rep.Measured, m)
		}
	}

	// Weak scaling: 32k particles of 124 B per rank into 32 MB files.
	filesPerRank := 32768.0 * bpp / float64(32<<20)
	for _, p := range []perf.Profile{perf.Stampede2(), perf.Summit()} {
		rep.Systems[p.Name] = treeBenchSystemTable(p, filesPerRank, 1<<22)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		return err
	}
	if err := validateTreeBenchReport(raw); err != nil {
		return fmt.Errorf("treebench: %w", err)
	}

	fmt.Printf("treebench: %d measured worlds, all plans equivalent to the centralized oracle\n",
		len(rep.Measured))
	for _, m := range rep.Measured {
		fmt.Printf("  %-8s %5d ranks: %4d leaves, centralized %.4fs, distributed %.4fs (%d rounds, peak %d infos/rank)\n",
			m.Flavor, m.Ranks, m.Leaves, m.CentralizedS, m.DistributedS, m.Rounds, m.PeakMembers)
	}
	for name, sys := range rep.Systems {
		last := sys.Rows[len(sys.Rows)-1]
		fmt.Printf("  %s: modeled crossover at %d ranks; at %d ranks centralized %.3fs vs distributed %.3fs (slopes %.2f / %.2f)\n",
			name, sys.CrossoverRanks, last.Ranks, last.CentralizedS, last.DistributedS,
			sys.CentralizedSlope, sys.DistributedSlope)
	}
	fmt.Printf("  report: %s\n", outPath)
	return nil
}
