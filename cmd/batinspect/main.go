// Command batinspect prints the structure of a written dataset: the
// top-level metadata (aggregation tree, global attribute ranges, leaf
// files) and, with -leaf, the layout of one BAT file (shallow tree,
// treelets, bitmap dictionary, storage overhead).
//
//	batinspect -in /tmp/ds -name coal-boiler-0050
//	batinspect -in /tmp/ds -name coal-boiler-0050 -leaf 0
//
// With -verify it instead walks every file of the dataset checking the
// stored checksums (metadata trailer, BAT header and per-treelet CRCs) and
// exits non-zero if anything is damaged or missing.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"libbat/internal/bat"
	"libbat/internal/core"
	"libbat/internal/meta"
	"libbat/internal/pfs"
)

func main() {
	var (
		in      = flag.String("in", "bat-out", "dataset directory")
		name    = flag.String("name", "", "dataset base name (required)")
		leaf    = flag.Int("leaf", -1, "inspect one leaf BAT file")
		tree    = flag.Bool("tree", false, "print the aggregation tree hierarchy")
		verify  = flag.Bool("verify", false, "verify all checksums in the dataset; exit non-zero on corruption")
		accessF = flag.Bool("access", false, "print the dataset's access-telemetry sidecar (batserve -access-persist / batread -access-out)")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "batinspect:", err)
		os.Exit(1)
	}
	if *name == "" {
		fail(fmt.Errorf("-name is required"))
	}
	store, err := pfs.NewOS(*in)
	if err != nil {
		fail(err)
	}
	if *accessF {
		if err := printAccess(os.Stdout, store, *name); err != nil {
			fail(err)
		}
		return
	}
	mf, err := store.Open(core.MetaFileName(*name))
	if err != nil {
		fail(err)
	}
	buf := make([]byte, mf.Size())
	if _, err := mf.ReadAt(buf, 0); err != nil && err != io.EOF {
		fail(err)
	}
	if err := mf.Close(); err != nil {
		fail(err)
	}
	if *verify {
		if !verifyDataset(os.Stdout, store, *name, buf) {
			os.Exit(1)
		}
		return
	}
	m, err := meta.Decode(buf)
	if err != nil {
		fail(err)
	}

	if *leaf >= 0 {
		if *leaf >= len(m.Leaves) {
			fail(fmt.Errorf("leaf %d out of range (%d leaves)", *leaf, len(m.Leaves)))
		}
		inspectLeaf(store, m.Leaves[*leaf], fail)
		return
	}
	if *tree {
		printTree(m)
		return
	}

	fmt.Printf("dataset %s\n", *name)
	fmt.Printf("  domain: %v\n", m.Domain)
	fmt.Printf("  particles: %d in %d leaf files (%d aggregation-tree inner nodes)\n",
		m.TotalCount(), len(m.Leaves), len(m.Nodes))
	fmt.Printf("  attributes:\n")
	for a, d := range m.Schema.Attrs {
		r := m.GlobalRanges[a]
		line := fmt.Sprintf("    %-12s %-8s global range [%g, %g]", d.Name, d.Type, r.Min, r.Max)
		if c := m.Compression; c != nil && a < len(c.ErrorBounds) {
			if b := c.ErrorBounds[a]; b > 0 {
				line += fmt.Sprintf("  error bound %g", b)
			} else {
				line += "  lossless"
			}
		}
		fmt.Println(line)
	}
	if c := m.Compression; c != nil {
		fmt.Printf("  compression: enabled (LOD error scale %g)\n", c.LODScale)
	}
	fmt.Printf("  leaves:\n")
	for i, l := range m.Leaves {
		fmt.Printf("    %3d %-28s %9d particles  %v\n", i, l.FileName, l.Count, l.Bounds)
	}
}

// verifyDataset checks every checksum in the dataset: the metadata trailer
// first (nothing else can be trusted without it), then each leaf file's
// header CRC, per-treelet CRCs, and particle count against the metadata.
// It prints one line per file and reports whether everything passed.
// Version-1 files carry no checksums; they are listed as unverifiable but
// do not fail the run.
func verifyDataset(w io.Writer, store pfs.Storage, name string, metaBuf []byte) bool {
	m, err := meta.Decode(metaBuf)
	if err != nil {
		fmt.Fprintf(w, "FAIL  %-28s %v\n", core.MetaFileName(name), err)
		return false
	}
	fmt.Fprintf(w, "ok    %-28s metadata, %d leaves\n", core.MetaFileName(name), len(m.Leaves))
	ok := true
	bad := func(file string, err error) {
		fmt.Fprintf(w, "FAIL  %-28s %v\n", file, err)
		ok = false
	}
	for _, lm := range m.Leaves {
		fh, err := store.Open(lm.FileName)
		if err != nil {
			bad(lm.FileName, err)
			continue
		}
		f, err := bat.Decode(fh, fh.Size())
		if err != nil {
			bad(lm.FileName, err)
			if cerr := fh.Close(); cerr != nil {
				bad(lm.FileName, cerr)
			}
			continue
		}
		if !f.Checksummed() {
			fmt.Fprintf(w, "skip  %-28s version %d file has no checksums\n", lm.FileName, f.Version)
			if cerr := fh.Close(); cerr != nil {
				bad(lm.FileName, cerr)
			}
			continue
		}
		if err := f.Verify(); err != nil {
			bad(lm.FileName, err)
		} else if int64(f.NumParticles) != lm.Count {
			bad(lm.FileName, fmt.Errorf("holds %d particles, metadata says %d", f.NumParticles, lm.Count))
		} else if ci := f.Compression(); ci != nil {
			fmt.Fprintf(w, "ok    %-28s %d treelets, %d particles, v3 ratio %.2fx\n",
				lm.FileName, f.NumTreelets(), f.NumParticles, ci.Ratio())
		} else {
			fmt.Fprintf(w, "ok    %-28s %d treelets, %d particles\n",
				lm.FileName, f.NumTreelets(), f.NumParticles)
		}
		if cerr := fh.Close(); cerr != nil {
			bad(lm.FileName, cerr)
		}
	}
	return ok
}

// printTree renders the aggregation tree hierarchy: inner split planes and
// leaf files with their particle counts.
func printTree(m *meta.Meta) {
	if len(m.Leaves) == 0 {
		fmt.Println("empty dataset")
		return
	}
	var rec func(ref int32, indent string)
	rec = func(ref int32, indent string) {
		if ref < 0 {
			li := int(^ref)
			l := m.Leaves[li]
			fmt.Printf("%sleaf %d: %s (%d particles)\n", indent, li, l.FileName, l.Count)
			return
		}
		n := m.Nodes[ref]
		fmt.Printf("%ssplit %s @ %.4g\n", indent, n.Axis, n.Pos)
		rec(n.Left, indent+"  ")
		rec(n.Right, indent+"  ")
	}
	if len(m.Nodes) == 0 {
		// Flat grouping (e.g. AUG): list leaves.
		for li := range m.Leaves {
			rec(int32(^li), "")
		}
		return
	}
	rec(0, "")
}

func inspectLeaf(store pfs.Storage, lm meta.LeafMeta, fail func(error)) {
	fh, err := store.Open(lm.FileName)
	if err != nil {
		fail(err)
	}
	f, err := bat.Decode(fh, fh.Size())
	if err != nil {
		fail(err)
	}
	fmt.Printf("BAT file %s (%d bytes)\n", lm.FileName, fh.Size())
	fmt.Printf("  particles: %d, treelets: %d, max treelet depth: %d\n",
		f.NumParticles, f.NumTreelets(), f.MaxTreeletDepth)
	fmt.Printf("  build config: subprefix=%d bits, %d LOD/node, <=%d particles/leaf\n",
		f.SubprefixBits, f.LODPerNode, f.MaxLeafSize)
	fmt.Printf("  domain: %v\n", f.Domain)
	raw := int64(f.NumParticles) * int64(f.Schema.BytesPerParticle())
	fmt.Printf("  raw payload: %d bytes, layout overhead: %.2f%%\n",
		raw, 100*float64(fh.Size()-raw)/float64(raw))
	fmt.Printf("  local attribute ranges:\n")
	for a, d := range f.Schema.Attrs {
		fmt.Printf("    %-12s [%g, %g]\n", d.Name, f.Ranges[a].Min, f.Ranges[a].Max)
	}
	if ci := f.Compression(); ci != nil {
		printCompression(f, ci, fail)
	}
	if err := fh.Close(); err != nil {
		fail(err)
	}
}

// printCompression reports a v3 file's codec layer: the declared per-
// attribute configuration, each attribute's section-level codec usage and
// byte totals (aggregated over every treelet), and the whole-file ratio.
func printCompression(f *bat.File, ci *bat.CompressionInfo, fail func(error)) {
	fmt.Printf("  compression (v3): LOD error scale %g\n", ci.LODScale)
	nA := f.Schema.NumAttrs()
	type attrAgg struct {
		raw, enc int64
		byCodec  map[string]int
	}
	aggs := make([]attrAgg, nA)
	for a := range aggs {
		aggs[a].byCodec = make(map[string]int)
	}
	for ti := 0; ti < f.NumTreelets(); ti++ {
		secs, err := f.TreeletSections(context.Background(), ti)
		if err != nil {
			fail(err)
		}
		for a, sec := range secs {
			aggs[a].raw += int64(sec.RawBytes)
			aggs[a].enc += int64(sec.EncBytes)
			aggs[a].byCodec[bat.CodecName(sec.Codec)]++
		}
	}
	fmt.Printf("    %-12s %-10s %-10s %12s %12s %7s  sections\n",
		"attribute", "codec", "bound", "raw bytes", "enc bytes", "ratio")
	for a, d := range f.Schema.Attrs {
		bound := "lossless"
		if ci.Bounds[a] > 0 {
			bound = fmt.Sprintf("%.3g", ci.Bounds[a])
		}
		ratio := 0.0
		if aggs[a].enc > 0 {
			ratio = float64(aggs[a].raw) / float64(aggs[a].enc)
		}
		codecs := make([]string, 0, len(aggs[a].byCodec))
		for name := range aggs[a].byCodec {
			codecs = append(codecs, name)
		}
		sort.Strings(codecs)
		parts := make([]string, len(codecs))
		for i, name := range codecs {
			parts[i] = fmt.Sprintf("%s x%d", name, aggs[a].byCodec[name])
		}
		fmt.Printf("    %-12s %-10s %-10s %12d %12d %6.2fx  %s\n",
			d.Name, bat.CodecName(ci.Codecs[a]), bound,
			aggs[a].raw, aggs[a].enc, ratio, strings.Join(parts, ", "))
	}
	fmt.Printf("    whole-file attribute payload: %d -> %d bytes (%.2fx)\n",
		ci.RawPayloadBytes, ci.EncPayloadBytes, ci.Ratio())
}
