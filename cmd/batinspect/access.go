package main

import (
	"errors"
	"fmt"
	"io"
	"time"

	"libbat/internal/obs/access"
	"libbat/internal/pfs"
)

// printAccess summarizes a dataset's access-telemetry sidecar: lifetime
// totals, the hottest treelets and heatmap cells (with their spatial
// bounds), per-attribute touch counts, and the tail of the query log.
func printAccess(w io.Writer, store pfs.Storage, name string) error {
	f, err := store.Open(access.SidecarName(name))
	if err != nil {
		return fmt.Errorf("no access sidecar for %s (batserve -access-persist or batread -access-out writes one): %w", name, err)
	}
	buf := make([]byte, f.Size())
	_, rerr := f.ReadAt(buf, 0)
	if rerr == io.EOF {
		rerr = nil
	}
	if err := errors.Join(rerr, f.Close()); err != nil {
		return err
	}
	s, err := access.Unmarshal(buf)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "access telemetry for %s\n", s.Dataset)
	if s.WallUnix != 0 {
		fmt.Fprintf(w, "  snapshot taken: %s\n", time.Unix(s.WallUnix, 0).UTC().Format(time.RFC3339))
	}
	fmt.Fprintf(w, "  queries: %d\n", s.Queries)
	fmt.Fprintf(w, "  treelet touches: %d hits, %d loads, %d bytes scanned\n",
		s.TreeletHits, s.TreeletLoads, s.TreeletBytes)

	if hot := s.HotTreelets(10); len(hot) > 0 {
		fmt.Fprintf(w, "  hottest treelets (%d total):\n", len(s.Treelets))
		for _, t := range hot {
			fmt.Fprintf(w, "    leaf %3d treelet %4d: %6d hits, %3d loads, %9d bytes\n",
				t.Leaf, t.Treelet, t.Hits, t.Loads, t.Bytes)
		}
	}
	if hot := s.HotCells(10); len(hot) > 0 {
		fmt.Fprintf(w, "  hottest heatmap cells (grid depth %d, %d non-empty):\n",
			s.GridBits, len(s.Heatmap))
		for _, h := range hot {
			b := s.CellBox(h.Cell)
			fmt.Fprintf(w, "    cell %5d: %6d touches  [%g %g %g]..[%g %g %g]\n",
				h.Cell, h.Count, b.Lower.X, b.Lower.Y, b.Lower.Z, b.Upper.X, b.Upper.Y, b.Upper.Z)
		}
	}
	if len(s.Attrs) > 0 {
		fmt.Fprintf(w, "  attribute filter touches:\n")
		for _, a := range s.Attrs {
			fmt.Fprintf(w, "    %-12s %d\n", a.Name, a.Count)
		}
	}
	if n := len(s.Recent); n > 0 {
		show := s.Recent
		if len(show) > 10 {
			show = show[len(show)-10:]
		}
		fmt.Fprintf(w, "  recent queries (%d retained, newest last):\n", n)
		for _, q := range show {
			box := "full domain"
			if q.Box != nil {
				box = fmt.Sprintf("[%g %g %g]..[%g %g %g]",
					q.Box[0], q.Box[1], q.Box[2], q.Box[3], q.Box[4], q.Box[5])
			}
			fmt.Fprintf(w, "    %-18s %s quality %.2f: %d treelets, %d particles, %.1fms\n",
				q.Source, box, q.Quality, q.Treelets, q.Particles, q.Seconds*1e3)
		}
	}
	return nil
}
