package main

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"libbat"
	"libbat/internal/core"
	"libbat/internal/pfs"
)

// writeDataset produces a small on-disk dataset and returns its store.
func writeDataset(t *testing.T) pfs.Storage {
	t.Helper()
	store, err := libbat.DirStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	err = libbat.Run(4, func(c *libbat.Comm) error {
		r := rand.New(rand.NewSource(int64(c.Rank())))
		lo := libbat.V3(float64(c.Rank()), 0, 0)
		local := libbat.NewParticleSet(libbat.NewSchema("v"), 500)
		for i := 0; i < 500; i++ {
			p := lo.Add(libbat.V3(r.Float64(), r.Float64(), r.Float64()))
			local.Append(p, []float64{p.Y})
		}
		_, err := libbat.Write(c, store, "ds", local,
			libbat.NewBox(lo, lo.Add(libbat.V3(1, 1, 1))), libbat.DefaultWriteConfig(8<<10))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func slurp(t *testing.T, store pfs.Storage, name string) []byte {
	t.Helper()
	f, err := store.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return buf
}

func TestVerifyCleanDataset(t *testing.T) {
	store := writeDataset(t)
	var out bytes.Buffer
	if !verifyDataset(&out, store, "ds", slurp(t, store, core.MetaFileName("ds"))) {
		t.Fatalf("clean dataset failed verification:\n%s", out.String())
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Errorf("clean dataset printed a failure:\n%s", out.String())
	}
}

func TestVerifyDamagedLeaf(t *testing.T) {
	store := writeDataset(t)
	leafName := core.LeafFileName("ds", 0)
	buf := slurp(t, store, leafName)
	buf[len(buf)/2] ^= 0x01
	if err := store.WriteFile(leafName, buf); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if verifyDataset(&out, store, "ds", slurp(t, store, core.MetaFileName("ds"))) {
		t.Fatalf("damaged leaf passed verification:\n%s", out.String())
	}
	if !strings.Contains(out.String(), leafName) {
		t.Errorf("failure does not name the damaged file:\n%s", out.String())
	}
}

func TestVerifyDamagedMetadata(t *testing.T) {
	store := writeDataset(t)
	buf := slurp(t, store, core.MetaFileName("ds"))
	buf[len(buf)/2] ^= 0x01
	var out bytes.Buffer
	if verifyDataset(&out, store, "ds", buf) {
		t.Fatal("damaged metadata passed verification")
	}
}

func TestVerifyMissingLeaf(t *testing.T) {
	store := writeDataset(t)
	if err := store.Remove(core.LeafFileName("ds", 0)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if verifyDataset(&out, store, "ds", slurp(t, store, core.MetaFileName("ds"))) {
		t.Fatal("dataset with a missing leaf passed verification")
	}
}
