package main

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"libbat"
	"libbat/internal/core"
	"libbat/internal/pfs"
)

// writeDataset produces a small on-disk dataset and returns its store.
func writeDataset(t *testing.T) pfs.Storage {
	t.Helper()
	store, err := libbat.DirStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	err = libbat.Run(4, func(c *libbat.Comm) error {
		r := rand.New(rand.NewSource(int64(c.Rank())))
		lo := libbat.V3(float64(c.Rank()), 0, 0)
		local := libbat.NewParticleSet(libbat.NewSchema("v"), 500)
		for i := 0; i < 500; i++ {
			p := lo.Add(libbat.V3(r.Float64(), r.Float64(), r.Float64()))
			local.Append(p, []float64{p.Y})
		}
		_, err := libbat.Write(c, store, "ds", local,
			libbat.NewBox(lo, lo.Add(libbat.V3(1, 1, 1))), libbat.DefaultWriteConfig(8<<10))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func slurp(t *testing.T, store pfs.Storage, name string) []byte {
	t.Helper()
	f, err := store.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return buf
}

// writeCompressedDataset is writeDataset with the v3 codec layer enabled
// at a loose bound on the single "v" attribute.
func writeCompressedDataset(t *testing.T) pfs.Storage {
	t.Helper()
	store, err := libbat.DirStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	err = libbat.Run(4, func(c *libbat.Comm) error {
		r := rand.New(rand.NewSource(int64(c.Rank())))
		lo := libbat.V3(float64(c.Rank()), 0, 0)
		local := libbat.NewParticleSet(libbat.NewSchema("v"), 500)
		for i := 0; i < 500; i++ {
			p := lo.Add(libbat.V3(r.Float64(), r.Float64(), r.Float64()))
			local.Append(p, []float64{p.Y})
		}
		cfg := libbat.DefaultWriteConfig(8 << 10)
		cfg.BAT.Compress = true
		cfg.BAT.ErrorBound = 1e-3
		_, err := libbat.Write(c, store, "ds", local,
			libbat.NewBox(lo, lo.Add(libbat.V3(1, 1, 1))), cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestVerifyCompressedDataset(t *testing.T) {
	store := writeCompressedDataset(t)
	var out bytes.Buffer
	if !verifyDataset(&out, store, "ds", slurp(t, store, core.MetaFileName("ds"))) {
		t.Fatalf("clean compressed dataset failed verification:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "v3 ratio") {
		t.Errorf("verify output does not report the compression ratio:\n%s", out.String())
	}
	// The dataset-level metadata must carry the codec declaration.
	ds, err := libbat.OpenDataset(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	cm := ds.Compression()
	if cm == nil {
		t.Fatal("compressed dataset reports no compression metadata")
	}
	if len(cm.ErrorBounds) != 1 || cm.ErrorBounds[0] != 1e-3 || cm.LODScale != 1 {
		t.Fatalf("compression metadata = %+v", cm)
	}
	// And the data must still be queryable within the bound.
	all, err := ds.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if int64(all.Len()) != ds.NumParticles() {
		t.Fatalf("ReadAll returned %d of %d particles", all.Len(), ds.NumParticles())
	}
	for i := 0; i < all.Len(); i++ {
		want := float64(float32(all.Position(i).Y)) // positions round-trip via f32
		if diff := all.Attrs[0][i] - want; diff > 1e-3+1e-6 || diff < -(1e-3+1e-6) {
			t.Fatalf("particle %d: v=%v differs from y=%v beyond the bound", i, all.Attrs[0][i], want)
		}
	}
}

func TestVerifyCleanDataset(t *testing.T) {
	store := writeDataset(t)
	var out bytes.Buffer
	if !verifyDataset(&out, store, "ds", slurp(t, store, core.MetaFileName("ds"))) {
		t.Fatalf("clean dataset failed verification:\n%s", out.String())
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Errorf("clean dataset printed a failure:\n%s", out.String())
	}
}

func TestVerifyDamagedLeaf(t *testing.T) {
	store := writeDataset(t)
	leafName := core.LeafFileName("ds", 0)
	buf := slurp(t, store, leafName)
	buf[len(buf)/2] ^= 0x01
	if err := store.WriteFile(leafName, buf); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if verifyDataset(&out, store, "ds", slurp(t, store, core.MetaFileName("ds"))) {
		t.Fatalf("damaged leaf passed verification:\n%s", out.String())
	}
	if !strings.Contains(out.String(), leafName) {
		t.Errorf("failure does not name the damaged file:\n%s", out.String())
	}
}

func TestVerifyDamagedMetadata(t *testing.T) {
	store := writeDataset(t)
	buf := slurp(t, store, core.MetaFileName("ds"))
	buf[len(buf)/2] ^= 0x01
	var out bytes.Buffer
	if verifyDataset(&out, store, "ds", buf) {
		t.Fatal("damaged metadata passed verification")
	}
}

func TestVerifyMissingLeaf(t *testing.T) {
	store := writeDataset(t)
	if err := store.Remove(core.LeafFileName("ds", 0)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if verifyDataset(&out, store, "ds", slurp(t, store, core.MetaFileName("ds"))) {
		t.Fatal("dataset with a missing leaf passed verification")
	}
}
