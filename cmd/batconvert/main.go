// Command batconvert imports a CSV particle dump into a BAT dataset. The
// CSV header must start with x,y,z; remaining columns become float64
// attributes. With -export it goes the other way, dumping a dataset back
// to CSV.
//
//	batconvert -csv particles.csv -out /tmp/ds -name imported -target 4MB
//	batconvert -export -in /tmp/ds -name imported > particles.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"libbat"
	"libbat/internal/cliutil"
	"libbat/internal/convert"
	"libbat/internal/core"
	"libbat/internal/pfs"
)

func main() {
	var (
		csvPath  = flag.String("csv", "", "input CSV file (header: x,y,z,attr...)")
		out      = flag.String("out", "bat-out", "output dataset directory")
		in       = flag.String("in", "bat-out", "input dataset directory (for -export)")
		name     = flag.String("name", "imported", "dataset base name")
		target   = flag.String("target", "4MB", "target file size")
		vranks   = flag.Int("ranks", 0, "virtual ranks for aggregation (0 = auto)")
		quantize = flag.Bool("quantize", false, "store positions as 16-bit fixed point")
		export   = flag.Bool("export", false, "export a dataset to CSV on stdout instead")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "batconvert:", err)
		os.Exit(1)
	}

	if *export {
		store, err := libbat.DirStorage(*in)
		if err != nil {
			fail(err)
		}
		ds, err := libbat.OpenDataset(store, *name)
		if err != nil {
			fail(err)
		}
		defer ds.Close()
		set, err := ds.ReadAll()
		if err != nil {
			fail(err)
		}
		if err := convert.WriteCSV(os.Stdout, set); err != nil {
			fail(err)
		}
		return
	}

	if *csvPath == "" {
		fail(fmt.Errorf("-csv is required (or use -export)"))
	}
	f, err := os.Open(*csvPath)
	if err != nil {
		fail(err)
	}
	set, err := convert.ReadCSV(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	ts, err := cliutil.ParseSize(*target)
	if err != nil {
		fail(err)
	}
	store, err := pfs.NewOS(*out)
	if err != nil {
		fail(err)
	}
	cfg := core.DefaultWriteConfig(ts)
	cfg.BAT.QuantizePositions = *quantize
	stats, err := convert.ToDataset(set, store, *name, convert.Options{
		VirtualRanks: *vranks,
		Write:        cfg,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("converted %d particles (%d attributes) into %s/%s: %d files, largest %s\n",
		stats.TotalCount, set.Schema.NumAttrs(), *out, *name, stats.NumFiles,
		cliutil.FormatSize(stats.LeafSizes.MaxB))
}
