// Command batwrite runs a collective two-phase write of a synthetic
// workload timestep onto local disk and reports the pipeline statistics —
// a command-line equivalent of linking the library into a simulation.
//
//	batwrite -workload coalboiler -ranks 64 -particles 500000 \
//	         -target 4MB -out /tmp/ds -step 50
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"libbat"
	"libbat/internal/bench"
	"libbat/internal/cliutil"
	"libbat/internal/core"
	"libbat/internal/obs"
	"libbat/internal/workloads"
)

func makeWorkload(name string, ranks int, particles int64) (workloads.Workload, error) {
	switch name {
	case "uniform":
		per := particles / int64(ranks)
		if per < 1 {
			per = 1
		}
		return workloads.NewUniform(ranks, per, 14)
	case "coalboiler":
		cb, err := workloads.NewCoalBoiler(ranks)
		if err != nil {
			return nil, err
		}
		cb.SetGrowth(0, 100, particles/4, particles)
		return cb, nil
	case "dambreak":
		return workloads.NewDamBreak(ranks, particles)
	case "cosmo":
		return workloads.NewCosmo(ranks, particles, 16)
	}
	return nil, fmt.Errorf("unknown workload %q (uniform, coalboiler, dambreak, cosmo)", name)
}

func main() {
	var (
		workload  = flag.String("workload", "uniform", "workload: uniform, coalboiler, dambreak, cosmo")
		ranks     = flag.Int("ranks", 16, "number of simulated ranks")
		particles = flag.Int64("particles", 100_000, "total particles")
		target    = flag.String("target", "2MB", "target file size")
		out       = flag.String("out", "bat-out", "output directory")
		step      = flag.Int("step", 0, "workload timestep")
		strategy  = flag.String("strategy", "adaptive", "aggregation: adaptive or aug")
		plan      = flag.String("plan", "auto", "planning mode: auto, centralized, or distributed")
		base      = flag.String("name", "", "dataset base name (default <workload>-<step>)")
		statsOut  = flag.String("stats", "", "write telemetry counters/histograms/spans as JSON to this file")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file (open in Perfetto)")
		buildWkrs = flag.Int("build-workers", 0, "BAT build worker goroutines per aggregator (0 = GOMAXPROCS)")
		compress  = flag.Bool("compress", false, "write BAT v3 files with per-attribute compressed treelet sections")
		errBound  = flag.String("error-bound", "0", "absolute error bound for -compress: one value for every attribute, or a comma-separated per-attribute list (0 = lossless)")
		lodScale  = flag.Float64("lod-error-scale", 1, "multiply the error bound for values referenced by LOD samples (>= 1)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "batwrite:", err)
		os.Exit(1)
	}
	ts, err := cliutil.ParseSize(*target)
	if err != nil {
		fail(err)
	}
	w, err := makeWorkload(*workload, *ranks, *particles)
	if err != nil {
		fail(err)
	}
	store, err := libbat.DirStorage(*out)
	if err != nil {
		fail(err)
	}
	cfg := libbat.DefaultWriteConfig(ts)
	if *strategy == "aug" {
		cfg.Strategy = core.AUG
	} else if *strategy != "adaptive" {
		fail(fmt.Errorf("unknown strategy %q", *strategy))
	}
	if cfg.Plan, err = core.ParsePlanMode(*plan); err != nil {
		fail(err)
	}
	if *buildWkrs < 0 {
		fail(fmt.Errorf("-build-workers must be >= 0, got %d", *buildWkrs))
	}
	cfg.BAT.Workers = *buildWkrs
	if *compress {
		cfg.BAT.Compress = true
		cfg.BAT.LODErrorScale = *lodScale
		bounds, err := cliutil.ParseBounds(*errBound)
		if err != nil {
			fail(err)
		}
		if len(bounds) == 1 {
			cfg.BAT.ErrorBound = bounds[0]
		} else {
			if got, want := len(bounds), w.Schema().NumAttrs(); got != want {
				fail(fmt.Errorf("-error-bound lists %d bounds, workload has %d attributes", got, want))
			}
			cfg.BAT.AttrErrorBounds = bounds
		}
	}
	name := *base
	if name == "" {
		name = fmt.Sprintf("%s-%04d", w.Name(), *step)
	}

	obsFlags := cliutil.ObsFlags{StatsPath: *statsOut, TracePath: *traceOut}
	col := obsFlags.Collector()

	start := time.Now()
	stats, err := bench.WriteDatasetObserved(w, *step, store, name, cfg, col)
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	if err := obsFlags.Dump(col); err != nil {
		fail(err)
	}
	total := workloads.TotalCount(w, *step)
	bytes := total * int64(w.Schema().BytesPerParticle())
	fmt.Printf("wrote %s: %d particles (%.1f MB) from %d ranks in %v (%.1f MB/s)\n",
		name, total, float64(bytes)/(1<<20), *ranks, elapsed.Round(time.Millisecond),
		float64(bytes)/(1<<20)/elapsed.Seconds())
	fmt.Printf("  strategy=%s target=%s files=%d (avg %.2f MB, max %.2f MB)\n",
		cfg.Strategy, *target, stats.NumFiles,
		stats.LeafSizes.MeanB/(1<<20), float64(stats.LeafSizes.MaxB)/(1<<20))
	fmt.Printf("  rank0 phases: tree=%v gather/scatter=%v transfer=%v bat=%v write=%v meta=%v\n",
		stats.TreeBuild.Round(time.Microsecond), stats.GatherScatter.Round(time.Microsecond),
		stats.Transfer.Round(time.Microsecond), stats.BATBuild.Round(time.Microsecond),
		stats.FileWrite.Round(time.Microsecond), stats.Metadata.Round(time.Microsecond))
	if col != nil {
		printFabricTraffic(col)
	}
}

// printFabricTraffic summarizes the fabric's per-collective counters
// (bat_fabric_<op>_calls / bat_fabric_<op>_bytes, summed over ranks) so a
// -stats run shows on stdout where the planning traffic went.
func printFabricTraffic(col *obs.Collector) {
	calls := map[string]int64{}
	bytes := map[string]int64{}
	for _, c := range col.Snapshot().Counters {
		if op, ok := strings.CutPrefix(c.Name, "bat_fabric_"); ok {
			if name, ok := strings.CutSuffix(op, "_calls"); ok {
				calls[name] += c.Value
			} else if name, ok := strings.CutSuffix(op, "_bytes"); ok {
				bytes[name] += c.Value
			}
		}
	}
	if len(calls) == 0 {
		return
	}
	ops := make([]string, 0, len(calls))
	for op := range calls {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	fmt.Printf("  fabric collectives:")
	for _, op := range ops {
		fmt.Printf(" %s=%d/%.1fKB", op, calls[op], float64(bytes[op])/1024)
	}
	fmt.Println()
}
