package libbat_test

import (
	"fmt"
	"sort"

	"libbat"
)

// ExampleWrite shows the collective write path: every rank of the fabric
// calls Write with its local particles and spatial bounds.
func ExampleWrite() {
	store := libbat.MemStorage()
	schema := libbat.NewSchema("energy")
	err := libbat.Run(4, func(c *libbat.Comm) error {
		lo := libbat.V3(float64(c.Rank()), 0, 0)
		bounds := libbat.NewBox(lo, lo.Add(libbat.V3(1, 1, 1)))
		local := libbat.NewParticleSet(schema, 100)
		for i := 0; i < 100; i++ {
			f := float64(i) / 100
			local.Append(lo.Add(libbat.V3(f, f, f)), []float64{f * 10})
		}
		_, err := libbat.Write(c, store, "demo", local, bounds, libbat.DefaultWriteConfig(1<<20))
		return err
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ds, err := libbat.OpenDataset(store, "demo")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer ds.Close()
	fmt.Println("particles:", ds.NumParticles())
	// Output:
	// particles: 400
}

// ExampleDataset_Query shows a combined spatial + attribute + LOD query on
// a written dataset.
func ExampleDataset_Query() {
	store := libbat.MemStorage()
	schema := libbat.NewSchema("val")
	libbat.Run(2, func(c *libbat.Comm) error {
		lo := libbat.V3(float64(c.Rank()*2), 0, 0)
		bounds := libbat.NewBox(lo, lo.Add(libbat.V3(2, 1, 1)))
		local := libbat.NewParticleSet(schema, 0)
		for i := 0; i < 500; i++ {
			f := float64(i) / 500
			local.Append(lo.Add(libbat.V3(2*f, f, f)), []float64{float64(c.Rank()*2) + 2*f})
		}
		_, err := libbat.Write(c, store, "q", local, bounds, libbat.DefaultWriteConfig(1<<20))
		return err
	})
	ds, _ := libbat.OpenDataset(store, "q")
	defer ds.Close()
	// Particles with val in [1, 3] live in x in [1, 3].
	var xs []float64
	ds.Query(libbat.Query{
		Filters: []libbat.AttrFilter{{Attr: 0, Min: 1, Max: 3}},
	}, func(p libbat.Vec3, attrs []float64) error {
		xs = append(xs, p.X)
		return nil
	})
	sort.Float64s(xs)
	fmt.Printf("matches: %d, x range [%.2f, %.2f]\n", len(xs), xs[0], xs[len(xs)-1])
	// Output:
	// matches: 501, x range [1.00, 3.00]
}

// ExampleRecommendTargetSize shows the automatic aggregation-granularity
// policy derived from the paper's evaluation guidance.
func ExampleRecommendTargetSize() {
	bytesPerRank := int64(4 << 20) // the paper's 4 MB uniform rank payload
	for _, ranks := range []int{16, 1536, 24576} {
		t := libbat.RecommendTargetSize(ranks, bytesPerRank)
		fmt.Printf("%5d ranks -> %3d MB target (%d:1 aggregation)\n",
			ranks, t>>20, t/bytesPerRank)
	}
	// Output:
	//    16 ranks ->   4 MB target (1:1 aggregation)
	//  1536 ranks ->  32 MB target (8:1 aggregation)
	// 24576 ranks -> 128 MB target (32:1 aggregation)
}
