#!/usr/bin/env bash
# Regenerate the read-path benchmark baseline (BENCH_read.json at the repo
# root). Run on a quiet machine; the numbers are recorded for trajectory
# comparison across PRs, never gated on in CI.
#
# Usage:
#   scripts/bench.sh                # write BENCH_read.json at the repo root
#   scripts/bench.sh /tmp/out.json  # write elsewhere (e.g. CI smoke check)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_read.json}"
particles="${READBENCH_PARTICLES:-400000}"
compress_out="${COMPRESSBENCH_OUT:-BENCH_compress.json}"
compress_particles="${COMPRESSBENCH_PARTICLES:-400000}"

# The compression benchmark is serial (build + single-worker scans), so it
# is meaningful on any machine and runs before the core-count guard below.
go run ./cmd/batbench -compressbench -compressbench-out "$compress_out" \
	-compress-particles "$compress_particles"

# The plan-scaling benchmark compares centralized vs distributed planning:
# real small-world runs plus a modeled weak-scaling table, neither of which
# needs multiple cores to be meaningful.
treebuild_out="${TREEBENCH_OUT:-BENCH_treebuild.json}"
treebench_flags=()
if [ "${TREEBENCH_QUICK:-0}" != 0 ]; then
	treebench_flags+=(-treebench-quick)
fi
go run ./cmd/batbench -treebench -treebench-out "$treebuild_out" "${treebench_flags[@]}"

# The parallel-read numbers are meaningless on one core: every Workers>1
# configuration degenerates to time-sliced serial execution plus scheduler
# overhead. Record the core count prominently so a baseline generated on the
# wrong machine is obvious in review.
maxprocs="$(go run ./cmd/batbench -print-gomaxprocs 2>/dev/null || nproc)"
echo "bench.sh: GOMAXPROCS=$maxprocs"
if [ "$maxprocs" -le 1 ]; then
	echo "bench.sh: WARNING ------------------------------------------------" >&2
	echo "bench.sh: WARNING: only 1 usable CPU. Parallel read configurations" >&2
	echo "bench.sh: WARNING: cannot speed up; a baseline recorded here would" >&2
	echo "bench.sh: WARNING: misrepresent the read path. Refusing to touch"   >&2
	echo "bench.sh: WARNING: BENCH_read.json; pass an explicit output path"   >&2
	echo "bench.sh: WARNING: to force a single-core run."                     >&2
	echo "bench.sh: WARNING ------------------------------------------------" >&2
	if [ "$out" = "BENCH_read.json" ]; then
		# Leave a machine-readable record of the refusal so automation
		# (and the next reader of results/) sees why the baseline was not
		# refreshed instead of silently finding a stale file.
		mkdir -p results
		cat > results/BENCH_read.skipped.json <<-EOF
		{
		  "skipped": "BENCH_read.json",
		  "reason": "single-core runner: parallel read configurations degenerate to time-sliced serial execution",
		  "gomaxprocs": $maxprocs,
		  "generated_by": "scripts/bench.sh"
		}
		EOF
		echo "bench.sh: skip record written to results/BENCH_read.skipped.json" >&2
		exit 1
	fi
fi

# A fresh baseline supersedes any earlier single-core refusal record.
rm -f results/BENCH_read.skipped.json

go run ./cmd/batbench -readbench -readbench-out "$out" -read-particles "$particles"
