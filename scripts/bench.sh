#!/usr/bin/env bash
# Regenerate the read-path benchmark baseline (BENCH_read.json at the repo
# root). Run on a quiet machine; the numbers are recorded for trajectory
# comparison across PRs, never gated on in CI.
#
# Usage:
#   scripts/bench.sh                # write BENCH_read.json at the repo root
#   scripts/bench.sh /tmp/out.json  # write elsewhere (e.g. CI smoke check)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_read.json}"
particles="${READBENCH_PARTICLES:-400000}"

go run ./cmd/batbench -readbench -readbench-out "$out" -read-particles "$particles"
