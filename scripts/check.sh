#!/bin/sh
# Pre-PR check: vet the whole module and run the concurrency-sensitive
# packages (the simulated MPI fabric and the collective pipelines) under the
# race detector. Run it from the repository root before sending a PR.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./internal/fabric/... ./internal/core/..."
go test -race ./internal/fabric/... ./internal/core/...

# The chaos suite injects storage faults into full 16-rank collectives;
# running it under the race detector is the strongest deadlock/race signal
# the repo has, so it gets its own invocation even though the package run
# above already covered it once.
echo "== go test -race -run TestChaos ./internal/core/"
go test -race -run 'TestChaos' ./internal/core/

# Short fuzz pass over both on-disk format parsers: seconds, not a soak —
# enough to catch parser regressions on the corpus + fresh mutations.
# (-fuzzminimizetime keeps a newly found interesting input from eating the
# whole budget in minimization.)
echo "== go fuzz (short): bat + meta decoders"
go test -fuzz=FuzzDecode -fuzztime=10s -fuzzminimizetime=5x ./internal/bat/
go test -fuzz=FuzzDecode -fuzztime=10s -fuzzminimizetime=5x ./internal/meta/

echo "check.sh: OK"
