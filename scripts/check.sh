#!/bin/sh
# Pre-PR check: batlint + vet the whole module, run the concurrency-
# sensitive packages under the race detector, smoke the benchmarks, and
# (unless CHECK_FUZZ=0) give both format fuzzers a short pass. Run it from
# the repository root before sending a PR.
#
# Stages keep running after a failure; the script reports a per-stage
# summary at the end and exits non-zero if anything failed.
set -u

cd "$(dirname "$0")/.."

failed=""

# run <name> <cmd...> executes one stage, recording failures instead of
# aborting so one broken stage does not hide the rest.
run() {
	name="$1"
	shift
	echo "== $name"
	if ! "$@"; then
		echo "-- FAILED: $name"
		failed="$failed
  FAIL $name"
	fi
}

# The repo's own static-analysis suite: format endianness, interprocedural
# taint tracking of decoded integers into narrowing conversions,
# build-pipeline determinism, dropped fabric/pfs errors, unpaired obs
# spans, uncancellable bare time.Sleep, dropped contexts before blocking
# calls. Zero unwaived findings is the bar. Built once, the same binary
# serves the standalone gate, the waiver audit, and the go vet unitchecker
# run — vet reuses the export data the standalone load already warmed.
BATLINT_BIN="${TMPDIR:-/tmp}/batlint.$$"
trap 'rm -f "$BATLINT_BIN"' EXIT
run "build batlint" go build -o "$BATLINT_BIN" ./cmd/batlint
run "batlint ./..." "$BATLINT_BIN" ./...
run "batlint -waivers" "$BATLINT_BIN" -waivers ./...
run "batlint vettool" go vet -vettool="$BATLINT_BIN" ./...

run "go vet ./..." go vet ./...

run "go test -race fabric+core" go test -race ./internal/fabric/... ./internal/core/...

# The distributed-planning equivalence property under the race detector:
# DistributedBuild must reproduce the centralized oracle byte-for-byte
# across world sizes, bounds distributions, and sampling knobs, and both
# plan modes must leave identical datasets behind. GOMAXPROCS forced above
# 1 so the per-rank goroutines of the simulated fabric truly interleave.
run "go test -race distributed plan" env GOMAXPROCS=4 go test -race \
	-run 'TestDistributed|TestPlanMode|TestPlanModes|TestPlanDistributed' \
	./internal/aggtree/ ./internal/core/

# The chaos suite injects storage faults into full 16-rank collectives;
# running it under the race detector is the strongest deadlock/race signal
# the repo has, so it gets its own invocation even though the package run
# above already covered it once.
run "go test -race TestChaos" go test -race -run 'TestChaos' ./internal/core/

# The BAT build byte-identity property (serial path vs every worker count)
# under the race detector, with GOMAXPROCS forced above 1 so the fused
# treelet/bitmap workers and the parallel compact stage actually interleave
# even on single-core CI runners.
run "go test -race TestBuildDeterminism" env GOMAXPROCS=4 go test -race -run 'TestBuildDeterminism' ./internal/bat/

# The v3 codec layer under the race detector: the max-error property
# (random per-attribute bounds, lossless bit-exactness, LOD two-grid
# bounds) plus encode determinism across worker counts, with decode
# running fused inside the concurrent query workers.
run "go test -race compression" env GOMAXPROCS=4 go test -race -run 'TestCompressed|TestCompressionInfo|TestGolden' ./internal/bat/

# The concurrent query engine under the race detector: shared-File queries,
# parallel-vs-serial multiset identity, the treelet cache singleflight, and
# the batserve overlapping-request tests. GOMAXPROCS forced above 1 so the
# traversal workers genuinely interleave on single-core runners.
run "go test -race query engine" env GOMAXPROCS=4 go test -race -run 'TestConcurrent|TestParallel|TestOrdered|TestCache|TestFileCache|TestReadahead|TestCloseWaits|TestFileLevel' ./internal/bat/
run "go test -race batserve" env GOMAXPROCS=4 go test -race ./cmd/batserve/
run "go test -race Dataset" env GOMAXPROCS=4 go test -race -run 'TestDataset' .

# Chaos-latency: the cancellation/deadline suites across every read-path
# layer under combined error+latency injection — cancel storms against the
# traversal engine, singleflight detach, stalled-mount 504s, batserve
# kill/restart cycles. The short -timeout means a wedged goroutine fails
# the stage with a full goroutine dump (go test's panic output; leak
# failures print their own dump via internal/leakcheck) instead of hanging
# the script.
run "go test -race chaos-latency" env GOMAXPROCS=4 go test -race -timeout 120s \
	-run 'TestChaos|TestCancel|TestReadQueryCtx|TestDatasetQueryCtx|TestAdmission' \
	./internal/bat/ ./internal/core/ ./cmd/batserve/ .

# Bench smoke: one iteration of every BAT build benchmark, just to keep the
# benchmark code compiling and runnable (no timing assertions).
run "bench smoke BenchmarkBATBuild" go test -run=NONE -bench=BATBuild -benchtime=1x ./internal/bat/

# Read-path bench smoke: run the query benchmark at a small scale into a
# temp file and require only that a well-formed report is produced — the
# readbench validates its own JSON on the way out. Never gates on speed.
readbench_smoke() {
	out="$(mktemp)" || return 1
	if ! go run ./cmd/batbench -readbench -readbench-out "$out" -read-particles 50000 >/dev/null; then
		rm -f "$out"
		return 1
	fi
	test -s "$out"
	rc=$?
	rm -f "$out"
	return $rc
}
run "bench smoke readbench" readbench_smoke

# Compression bench smoke: small-scale run into a temp file; the bench
# self-validates every decoded value against its declared error bound and
# checks its own JSON on the way out. Never gates on speed.
compressbench_smoke() {
	out="$(mktemp)" || return 1
	if ! go run ./cmd/batbench -compressbench -compressbench-out "$out" -compress-particles 50000 >/dev/null; then
		rm -f "$out"
		return 1
	fi
	test -s "$out"
	rc=$?
	rm -f "$out"
	return $rc
}
run "bench smoke compressbench" compressbench_smoke

# Plan-scaling bench smoke: quick mode runs both planners for real at small
# world sizes and models the extended weak-scaling table; the bench
# validates its own JSON (equivalence booleans, crossover, slope checks) on
# the way out. Never gates on speed.
treebench_smoke() {
	out="$(mktemp)" || return 1
	if ! go run ./cmd/batbench -treebench -treebench-quick -treebench-out "$out" >/dev/null; then
		rm -f "$out"
		return 1
	fi
	test -s "$out"
	rc=$?
	rm -f "$out"
	return $rc
}
run "bench smoke treebench" treebench_smoke

# batserve end-to-end smoke: write a small dataset, serve it, drive a few
# queries over HTTP, and require /metrics, /debug/access, and /debug/queries
# to answer well-formed. This is the only stage that exercises the real
# binary over a real socket.
batserve_smoke() {
	dir="$(mktemp -d)" || return 1
	bin="$dir/batserve"
	log="$dir/serve.log"
	port="${BATSERVE_SMOKE_PORT:-18931}"
	base="http://127.0.0.1:$port"
	rc=1
	pid=""
	while :; do
		go run ./cmd/batwrite -workload uniform -ranks 4 -particles 20000 \
			-out "$dir/data" -name smoke >/dev/null || break
		go build -o "$bin" ./cmd/batserve || break
		"$bin" -in "$dir/data" -name smoke -addr "127.0.0.1:$port" \
			-access-persist >"$log" 2>&1 &
		pid=$!
		up=""
		for _ in $(seq 1 50); do
			if curl -sf "$base/info" >/dev/null 2>&1; then
				up=1
				break
			fi
			kill -0 "$pid" 2>/dev/null || break
			sleep 0.2
		done
		if [ -z "$up" ]; then
			echo "batserve never came up; log:"
			cat "$log"
			break
		fi
		# A clustered workload plus one filtered query, so the telemetry
		# endpoints have per-treelet hits, heatmap mass, and a query log.
		ok=1
		for i in 1 2 3; do
			curl -sf "$base/points?box=0,0,0,0.5,0.5,0.5" >/dev/null || ok=""
		done
		curl -sf "$base/points?box=0,0,0,1,1,1&filter=0,0,1e30" >/dev/null || ok=""
		[ -n "$ok" ] || { echo "query requests failed"; break; }
		curl -sf "$base/metrics" | grep -q '^http_requests_total' ||
			{ echo "/metrics missing http_requests_total"; break; }
		curl -sf "$base/metrics" | grep -q '^go_goroutines' ||
			{ echo "/metrics missing go runtime series"; break; }
		curl -sf "$base/metrics" | grep -q '_p99' ||
			{ echo "/metrics missing quantile gauges"; break; }
		curl -sf "$base/debug/access" | python3 -c '
import json, sys
d = json.load(sys.stdin)["datasets"]
assert d and d[0]["treelets"], "no per-treelet hits"
assert d[0]["heatmap"], "no heatmap mass"
' || { echo "/debug/access malformed"; break; }
		curl -sf "$base/debug/queries?n=2" | python3 -c '
import json, sys
q = json.load(sys.stdin)["queries"]
assert len(q) == 2, f"n=2 returned {len(q)}"
assert all(r["source"] == "batserve:/points" for r in q)
' || { echo "/debug/queries malformed"; break; }
		curl -sf "$base/debug/access?format=prometheus" | grep -q '^access_queries_total' ||
			{ echo "/debug/access prometheus export malformed"; break; }
		rc=0
		break
	done
	if [ -n "$pid" ]; then
		kill -TERM "$pid" 2>/dev/null
		wait "$pid" 2>/dev/null
	fi
	# -access-persist: the shutdown path must have written the sidecar.
	if [ "$rc" = 0 ] && [ ! -s "$dir/data/smoke.bata" ]; then
		echo "access sidecar not persisted on shutdown"
		rc=1
	fi
	rm -rf "$dir"
	return $rc
}
run "batserve smoke" batserve_smoke

# Short fuzz pass over both on-disk format parsers: seconds, not a soak —
# enough to catch parser regressions on the corpus + fresh mutations.
# (-fuzzminimizetime keeps a newly found interesting input from eating the
# whole budget in minimization.) CHECK_FUZZ=0 skips it for quick local
# iterations.
if [ "${CHECK_FUZZ:-1}" != "0" ]; then
	run "fuzz FuzzDecode bat" go test -fuzz=FuzzDecode -fuzztime=10s -fuzzminimizetime=5x ./internal/bat/
	run "fuzz FuzzDecode meta" go test -fuzz=FuzzDecode -fuzztime=10s -fuzzminimizetime=5x ./internal/meta/
else
	echo "== fuzz stages skipped (CHECK_FUZZ=0)"
fi

if [ -n "$failed" ]; then
	echo "check.sh: FAILED stages:$failed"
	exit 1
fi
echo "check.sh: OK"
