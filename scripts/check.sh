#!/bin/sh
# Pre-PR check: vet the whole module and run the concurrency-sensitive
# packages (the simulated MPI fabric and the collective pipelines) under the
# race detector. Run it from the repository root before sending a PR.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./internal/fabric/... ./internal/core/..."
go test -race ./internal/fabric/... ./internal/core/...

# The chaos suite injects storage faults into full 16-rank collectives;
# running it under the race detector is the strongest deadlock/race signal
# the repo has, so it gets its own invocation even though the package run
# above already covered it once.
echo "== go test -race -run TestChaos ./internal/core/"
go test -race -run 'TestChaos' ./internal/core/

# The BAT build byte-identity property (serial path vs every worker count)
# under the race detector, with GOMAXPROCS forced above 1 so the fused
# treelet/bitmap workers and the parallel compact stage actually interleave
# even on single-core CI runners.
echo "== go test -race -run TestBuildDeterminism ./internal/bat/"
GOMAXPROCS=4 go test -race -run 'TestBuildDeterminism' ./internal/bat/

# Bench smoke: one iteration of every BAT build benchmark, just to keep the
# benchmark code compiling and runnable (no timing assertions).
echo "== bench smoke: BenchmarkBATBuild"
go test -run=NONE -bench=BATBuild -benchtime=1x ./internal/bat/

# Short fuzz pass over both on-disk format parsers: seconds, not a soak —
# enough to catch parser regressions on the corpus + fresh mutations.
# (-fuzzminimizetime keeps a newly found interesting input from eating the
# whole budget in minimization.)
echo "== go fuzz (short): bat + meta decoders"
go test -fuzz=FuzzDecode -fuzztime=10s -fuzzminimizetime=5x ./internal/bat/
go test -fuzz=FuzzDecode -fuzztime=10s -fuzzminimizetime=5x ./internal/meta/

echo "check.sh: OK"
