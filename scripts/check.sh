#!/bin/sh
# Pre-PR check: vet the whole module and run the concurrency-sensitive
# packages (the simulated MPI fabric and the collective pipelines) under the
# race detector. Run it from the repository root before sending a PR.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./internal/fabric/... ./internal/core/..."
go test -race ./internal/fabric/... ./internal/core/...

echo "check.sh: OK"
