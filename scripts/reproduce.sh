#!/bin/sh
# Regenerates every experiment in EXPERIMENTS.md into ./results (text + CSV
# per table) and runs the test and benchmark suites. Takes a few minutes.
set -eu

cd "$(dirname "$0")/.."
OUT=${1:-results}

echo "== building =="
go build ./...
go vet ./...

echo "== tests =="
go test ./...

echo "== figures, tables, ablations, extensions -> $OUT =="
go run ./cmd/batbench -all -outdir "$OUT"

echo "== benchmarks =="
go test -bench=. -benchmem . ./internal/bat/

echo "done; tables are under $OUT/"
