// Package ior models the IOR benchmark configurations the paper compares
// against in its weak-scaling study (§VI-A.1, [41]): file-per-process,
// single shared file through MPI-IO, and HDF5's shared-file mode. Each
// model charges the mechanism the paper identifies as that strategy's
// scaling limit — per-file metadata costs for file-per-process, global
// coordination and lock contention for the shared-file modes.
package ior

import (
	"time"

	"libbat/internal/perf"
)

// Mode selects an IOR benchmark configuration.
type Mode int

// The three IOR modes of Figure 5/7.
const (
	FilePerProcess Mode = iota
	SharedFile          // raw MPI-IO single shared file
	HDF5Shared          // HDF5 into a single shared file
)

func (m Mode) String() string {
	switch m {
	case FilePerProcess:
		return "file-per-process"
	case SharedFile:
		return "shared-file"
	case HDF5Shared:
		return "hdf5"
	}
	return "unknown"
}

// WriteTime models writing bytesPerRank from each of n ranks.
func WriteTime(p perf.Profile, m Mode, n int, bytesPerRank int64) time.Duration {
	total := float64(n) * float64(bytesPerRank)
	switch m {
	case FilePerProcess:
		// Every rank creates its own file, then streams it; writers share
		// the aggregate filesystem and their node's NIC.
		bw := p.WriterBW(n, p.RanksPerNode)
		stream := time.Duration(float64(bytesPerRank) / bw * float64(time.Second))
		return p.CreateTime(n, p.FileCreateRate) + stream
	case SharedFile:
		sync := time.Duration(n) * p.SharedSyncPerRank
		stream := time.Duration(total / p.SharedFileWriteBW * float64(time.Second))
		return sync + stream + p.CreateTime(1, p.FileCreateRate)
	case HDF5Shared:
		base := WriteTime(p, SharedFile, n, bytesPerRank)
		return time.Duration(float64(base) * p.HDF5OverheadFactor)
	}
	return 0
}

// ReadTime models reading bytesPerRank on each of n ranks. The paper's
// benchmark reads each block on a different rank than wrote it, defeating
// the page cache, so reads hit the filesystem.
func ReadTime(p perf.Profile, m Mode, n int, bytesPerRank int64) time.Duration {
	total := float64(n) * float64(bytesPerRank)
	switch m {
	case FilePerProcess:
		bw := p.ReaderBW(n, p.RanksPerNode)
		stream := time.Duration(float64(bytesPerRank) / bw * float64(time.Second))
		return p.CreateTime(n, p.FileOpenRate) + stream
	case SharedFile:
		sync := time.Duration(n) * p.SharedSyncPerRank
		stream := time.Duration(total / p.SharedFileReadBW * float64(time.Second))
		return sync + stream + p.CreateTime(1, p.FileOpenRate)
	case HDF5Shared:
		base := ReadTime(p, SharedFile, n, bytesPerRank)
		return time.Duration(float64(base) * p.HDF5OverheadFactor)
	}
	return 0
}

// Bandwidth converts a total volume and duration to bytes/second.
func Bandwidth(totalBytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(totalBytes) / d.Seconds()
}
