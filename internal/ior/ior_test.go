package ior

import (
	"testing"

	"libbat/internal/perf"
)

const bytesPerRank = 32768 * 124 // the paper's 4.06 MB uniform rank payload

func TestModeString(t *testing.T) {
	if FilePerProcess.String() != "file-per-process" ||
		SharedFile.String() != "shared-file" ||
		HDF5Shared.String() != "hdf5" ||
		Mode(99).String() != "unknown" {
		t.Error("mode names wrong")
	}
}

func bw(p perf.Profile, m Mode, n int) float64 {
	return Bandwidth(int64(n)*bytesPerRank, WriteTime(p, m, n, bytesPerRank))
}

func readBW(p perf.Profile, m Mode, n int) float64 {
	return Bandwidth(int64(n)*bytesPerRank, ReadTime(p, m, n, bytesPerRank))
}

func TestFPPPeaksThenDegrades(t *testing.T) {
	// Paper Figure 5: file-per-process performs well initially, then
	// degrades — at ~1536 ranks on Stampede2 and ~672 on Summit.
	for _, tc := range []struct {
		p        perf.Profile
		degradeN int
	}{
		{perf.Stampede2(), 1536},
		{perf.Summit(), 672},
	} {
		peak := 0.0
		peakN := 0
		scan := []int{96, 192, 384, 672, 1536, 3072, 6144, 12288, 24576}
		for _, n := range scan {
			b := bw(tc.p, FilePerProcess, n)
			t.Logf("%s fpp n=%5d bw=%6.1f GB/s", tc.p.Name, n, b/1e9)
			if b > peak {
				peak, peakN = b, n
			}
		}
		last := bw(tc.p, FilePerProcess, 24576)
		if last >= peak {
			t.Errorf("%s: FPP should degrade at scale (peak %.1f at %d, last %.1f)",
				tc.p.Name, peak/1e9, peakN, last/1e9)
		}
		if peakN > 4*tc.degradeN {
			t.Errorf("%s: FPP peak at %d ranks, expected decline around %d",
				tc.p.Name, peakN, tc.degradeN)
		}
	}
}

func TestSharedFileLimited(t *testing.T) {
	// Shared-file bandwidth saturates well below the filesystem peak and
	// eventually declines from global coordination costs.
	p := perf.Stampede2()
	var prev float64
	saturated := 0.0
	for _, n := range []int{96, 384, 1536, 6144, 24576} {
		b := bw(p, SharedFile, n)
		t.Logf("shared n=%5d bw=%6.1f GB/s", n, b/1e9)
		if b > saturated {
			saturated = b
		}
		prev = b
	}
	if saturated > p.SharedFileWriteBW {
		t.Errorf("shared file exceeded its lock-limited bandwidth: %.1f GB/s", saturated/1e9)
	}
	_ = prev
	if saturated > p.PeakWriteBW/4 {
		t.Errorf("shared file should saturate well below the filesystem peak")
	}
}

func TestHDF5SlowerThanRawShared(t *testing.T) {
	p := perf.Summit()
	for _, n := range []int{96, 1536, 24576} {
		if bw(p, HDF5Shared, n) >= bw(p, SharedFile, n) {
			t.Errorf("HDF5 should be slower than raw shared at %d ranks", n)
		}
		if readBW(p, HDF5Shared, n) >= readBW(p, SharedFile, n) {
			t.Errorf("HDF5 reads should be slower than raw shared at %d ranks", n)
		}
	}
}

func TestTwoPhaseBeatsBaselinesAtScale(t *testing.T) {
	// The paper's headline for Figures 5/7: at high core counts the
	// two-phase approach with a well-chosen target size outperforms both
	// file-per-process and shared-file I/O.
	for _, p := range []perf.Profile{perf.Stampede2(), perf.Summit()} {
		n := 24576
		ranksPerLeaf := int(int64(64<<20) / bytesPerRank)
		var leaves []perf.LeafLoad
		for start := 0; start < n; start += ranksPerLeaf {
			end := start + ranksPerLeaf
			if end > n {
				end = n
			}
			l := perf.LeafLoad{}
			for r := start; r < end; r++ {
				l.Ranks = append(l.Ranks, r)
				l.MemberBytes = append(l.MemberBytes, bytesPerRank)
				l.Bytes += bytesPerRank
			}
			l.Count = l.Bytes / 124
			leaves = append(leaves, l)
		}
		for i := range leaves {
			leaves[i].Aggregator = i * n / len(leaves)
		}
		total := int64(n) * bytesPerRank
		twoPhaseW := Bandwidth(total, p.ModelTwoPhaseWrite(n, leaves, 128).Total())
		twoPhaseR := Bandwidth(total, p.ModelTwoPhaseRead(n, leaves, 128).Total())
		for _, m := range []Mode{FilePerProcess, SharedFile, HDF5Shared} {
			if bw(p, m, n) >= twoPhaseW {
				t.Errorf("%s: %v writes (%.1f GB/s) should lose to two-phase (%.1f GB/s) at %d ranks",
					p.Name, m, bw(p, m, n)/1e9, twoPhaseW/1e9, n)
			}
			if readBW(p, m, n) >= twoPhaseR {
				t.Errorf("%s: %v reads should lose to two-phase at %d ranks", p.Name, m, n)
			}
		}
	}
}

func TestFPPWinsAtSmallScale(t *testing.T) {
	// Paper: "file per-process initially performs well on both systems".
	p := perf.Stampede2()
	n := 96
	fpp := bw(p, FilePerProcess, n)
	shared := bw(p, SharedFile, n)
	if fpp <= shared {
		t.Errorf("at %d ranks FPP (%.1f GB/s) should beat shared (%.1f GB/s)",
			n, fpp/1e9, shared/1e9)
	}
}

func TestBandwidthEdgeCases(t *testing.T) {
	if Bandwidth(100, 0) != 0 {
		t.Error("zero duration should give zero bandwidth")
	}
	if WriteTime(perf.Stampede2(), Mode(42), 10, 100) != 0 {
		t.Error("unknown mode should cost nothing")
	}
}
