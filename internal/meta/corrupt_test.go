package meta

import (
	"bytes"
	"errors"
	"testing"
)

func encodedFixture(t *testing.T) []byte {
	t.Helper()
	tr, schema, reports := fixture(t)
	m, err := Build(tr, tr.Leaves, schema, reports)
	if err != nil {
		t.Fatal(err)
	}
	return m.Encode()
}

// TestDecodeDetectsEveryBitFlip: the version-2 trailer checksums the whole
// buffer, so any single flipped bit — including in the trailer itself —
// must fail Decode.
func TestDecodeDetectsEveryBitFlip(t *testing.T) {
	buf := encodedFixture(t)
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 1 << (i % 8)
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
}

func TestDecodeChecksumError(t *testing.T) {
	buf := encodedFixture(t)
	mut := append([]byte(nil), buf...)
	mut[len(mut)/2] ^= 0x10
	if _, err := Decode(mut); !errors.Is(err, ErrChecksum) {
		t.Errorf("mid-buffer flip: want ErrChecksum, got %v", err)
	}
}

// TestDecodeTruncated: every proper prefix must error, never panic.
func TestDecodeTruncated(t *testing.T) {
	buf := encodedFixture(t)
	for l := 0; l < len(buf); l++ {
		if _, err := Decode(buf[:l]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", l)
		}
	}
}

func TestDecodeBadVersion(t *testing.T) {
	buf := encodedFixture(t)
	mut := append([]byte(nil), buf...)
	mut[4] = 99 // version field follows the 4-byte magic
	if _, err := Decode(mut); err == nil {
		t.Error("future version accepted")
	}
}

// TestV1StillDecodes synthesizes a pre-checksum (version 1) file — the v2
// image minus its trailer, version field patched — and requires it to
// parse identically. This is the backward-compatibility guarantee for
// datasets written before the format bump.
func TestV1StillDecodes(t *testing.T) {
	buf := encodedFixture(t)
	v2, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	v1buf := append([]byte(nil), buf[:len(buf)-trailerLen]...)
	v1buf[4] = 1
	v1, err := Decode(v1buf)
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	if v1.TotalCount() != v2.TotalCount() || len(v1.Leaves) != len(v2.Leaves) ||
		len(v1.Nodes) != len(v2.Nodes) {
		t.Errorf("v1 decode differs: %d/%d/%d vs %d/%d/%d",
			v1.TotalCount(), len(v1.Leaves), len(v1.Nodes),
			v2.TotalCount(), len(v2.Leaves), len(v2.Nodes))
	}
}

func TestEncodeEndsWithTrailer(t *testing.T) {
	buf := encodedFixture(t)
	if !bytes.HasSuffix(buf, []byte(trailerMagic)) {
		t.Errorf("encoded metadata missing trailer magic, tail %q", buf[len(buf)-8:])
	}
}

// FuzzDecode throws arbitrary bytes at the parser: it must return an
// error or a usable Meta, never panic.
func FuzzDecode(f *testing.F) {
	valid := func() []byte {
		tr, schema, reports, err := buildFixture()
		if err != nil {
			return nil
		}
		m, err := Build(tr, tr.Leaves, schema, reports)
		if err != nil {
			return nil
		}
		return m.Encode()
	}()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("BATM"))
	if len(valid) > 10 {
		f.Add(valid[:10])
		v1 := append([]byte(nil), valid[:len(valid)-trailerLen]...)
		v1[4] = 1
		f.Add(v1) // uncheck-summed path reaches the body parser
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Whatever decoded must be safe to traverse.
		m.TotalCount()
		m.SelectLeaves(nil, nil)
	})
}
