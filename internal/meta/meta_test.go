package meta

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"libbat/internal/aggtree"
	"libbat/internal/bitmap"
	"libbat/internal/checksum"
	"libbat/internal/geom"
	"libbat/internal/particles"
)

// buildFixture is fixture without the testing.T, usable from fuzz seeds.
func buildFixture() (*aggtree.Tree, particles.Schema, []LeafReport, error) {
	var ranks []aggtree.RankInfo
	for i := 0; i < 4; i++ {
		lo := geom.V3(float64(i), 0, 0)
		ranks = append(ranks, aggtree.RankInfo{
			Rank:   i,
			Bounds: geom.NewBox(lo, lo.Add(geom.V3(1, 1, 1))),
			Count:  100,
		})
	}
	schema := particles.NewSchema("temp", "mass")
	tr, err := aggtree.Build(ranks, aggtree.DefaultConfig(100*int64(schema.BytesPerParticle()), schema.BytesPerParticle()))
	if err != nil {
		return nil, schema, nil, err
	}
	if tr.NumLeaves() != 4 {
		return nil, schema, nil, fmt.Errorf("fixture wants 4 leaves, got %d", tr.NumLeaves())
	}
	var reports []LeafReport
	for i, l := range tr.Leaves {
		reports = append(reports, LeafReport{
			Leaf:     i,
			FileName: fmt.Sprintf("leaf%04d.bat", i),
			Count:    l.Count,
			Bounds:   l.Bounds,
			LocalRanges: []bitmap.Range{
				{Min: float64(i * 10), Max: float64(i*10 + 10)}, // temp: disjoint per leaf
				{Min: 0, Max: 1}, // mass: shared
			},
			RootBitmaps: []bitmap.Bitmap{0xFFFFFFFF, 0xFFFFFFFF},
		})
	}
	return tr, schema, reports, nil
}

// fixture builds a 4-leaf adaptive tree with reports.
func fixture(t *testing.T) (*aggtree.Tree, particles.Schema, []LeafReport) {
	t.Helper()
	tr, schema, reports, err := buildFixture()
	if err != nil {
		t.Fatal(err)
	}
	return tr, schema, reports
}

func TestBuildGlobalRanges(t *testing.T) {
	tr, schema, reports := fixture(t)
	m, err := Build(tr, tr.Leaves, schema, reports)
	if err != nil {
		t.Fatal(err)
	}
	if m.GlobalRanges[0].Min != 0 || m.GlobalRanges[0].Max != 40 {
		t.Errorf("temp global range = %+v", m.GlobalRanges[0])
	}
	if m.GlobalRanges[1].Min != 0 || m.GlobalRanges[1].Max != 1 {
		t.Errorf("mass global range = %+v", m.GlobalRanges[1])
	}
	if m.TotalCount() != 400 {
		t.Errorf("TotalCount = %d", m.TotalCount())
	}
	if len(m.Nodes) != len(tr.Nodes) {
		t.Errorf("nodes = %d, want %d", len(m.Nodes), len(tr.Nodes))
	}
}

func TestBuildValidatesReports(t *testing.T) {
	tr, schema, reports := fixture(t)
	if _, err := Build(tr, tr.Leaves, schema, reports[:3]); err == nil {
		t.Error("missing report should error")
	}
	dup := append(append([]LeafReport{}, reports...), reports[0])
	if _, err := Build(tr, tr.Leaves, schema, dup); err == nil {
		t.Error("duplicate report should error")
	}
	bad := append([]LeafReport{}, reports...)
	bad[0].Leaf = 99
	if _, err := Build(tr, tr.Leaves, schema, bad); err == nil {
		t.Error("unknown leaf should error")
	}
	short := append([]LeafReport{}, reports...)
	short[0].RootBitmaps = short[0].RootBitmaps[:1]
	if _, err := Build(tr, tr.Leaves, schema, short); err == nil {
		t.Error("wrong attr count should error")
	}
}

func TestLeafBitmapRemap(t *testing.T) {
	tr, schema, reports := fixture(t)
	// Leaf 0's temp covers [0,10] locally; set only the first local bin.
	reports[0].RootBitmaps[0] = 1
	m, err := Build(tr, tr.Leaves, schema, reports)
	if err != nil {
		t.Fatal(err)
	}
	// Global temp range is [0,40]; local bin 0 covers [0, 10/32], which
	// must map into low global bins only.
	bm := m.Leaves[0].Bitmaps[0]
	if bm == 0 {
		t.Fatal("remapped bitmap empty")
	}
	q := bitmap.OfQuery(0, 0.4, m.GlobalRanges[0])
	if !bm.Overlaps(q) {
		t.Error("remapped bitmap lost low values")
	}
	qHigh := bitmap.OfQuery(30, 40, m.GlobalRanges[0])
	if bm.Overlaps(qHigh) {
		t.Error("remapped bitmap gained high values")
	}
}

func TestInnerNodesMergeChildren(t *testing.T) {
	tr, schema, reports := fixture(t)
	// Give each leaf a distinct single-bin bitmap on mass.
	for i := range reports {
		reports[i].RootBitmaps[1] = 1 << uint(i)
	}
	m, err := Build(tr, tr.Leaves, schema, reports)
	if err != nil {
		t.Fatal(err)
	}
	// Root must contain the union of every leaf's mass bitmap (the local
	// and global mass ranges are identical so remap is identity).
	root := m.Nodes[0].Bitmaps[1]
	if root != 0b1111 {
		t.Errorf("root mass bitmap = %b", root)
	}
}

func TestSelectLeavesSpatial(t *testing.T) {
	tr, schema, reports := fixture(t)
	m, err := Build(tr, tr.Leaves, schema, reports)
	if err != nil {
		t.Fatal(err)
	}
	all := m.SelectLeaves(nil, nil)
	if len(all) != 4 {
		t.Fatalf("all leaves = %v", all)
	}
	box := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1.5, 1, 1))
	got := m.SelectLeaves(&box, nil)
	if len(got) != 2 {
		t.Errorf("spatial select = %v", got)
	}
	far := geom.NewBox(geom.V3(100, 100, 100), geom.V3(101, 101, 101))
	if got := m.SelectLeaves(&far, nil); len(got) != 0 {
		t.Errorf("disjoint select = %v", got)
	}
}

func TestSelectLeavesByAttribute(t *testing.T) {
	tr, schema, reports := fixture(t)
	m, err := Build(tr, tr.Leaves, schema, reports)
	if err != nil {
		t.Fatal(err)
	}
	// temp ranges are disjoint per leaf ([0,10], [10,20], ...): a filter
	// on [32,38] should prune to (about) one leaf.
	got := m.SelectLeaves(nil, []AttrFilter{{Attr: 0, Min: 32, Max: 38}})
	if len(got) == 0 || len(got) > 2 {
		t.Errorf("attr select = %v", got)
	}
	for _, li := range got {
		if li == 0 || li == 1 {
			t.Errorf("leaf %d (temp <= 20) should be pruned for [32,38]", li)
		}
	}
	// A filter outside the global range selects nothing.
	if got := m.SelectLeaves(nil, []AttrFilter{{Attr: 0, Min: 100, Max: 200}}); len(got) != 0 {
		t.Errorf("out-of-range select = %v", got)
	}
	// Invalid attribute selects nothing.
	if got := m.SelectLeaves(nil, []AttrFilter{{Attr: 9, Min: 0, Max: 1}}); len(got) != 0 {
		t.Errorf("bad attr select = %v", got)
	}
}

func TestFlatGrouping(t *testing.T) {
	// AUG-style: no tree, linear leaf scan.
	_, schema, reports := fixture(t)
	leaves := make([]aggtree.Leaf, 4)
	for i := range leaves {
		lo := geom.V3(float64(i), 0, 0)
		leaves[i] = aggtree.Leaf{Bounds: geom.NewBox(lo, lo.Add(geom.V3(1, 1, 1))), Count: 100}
	}
	m, err := Build(nil, leaves, schema, reports)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Nodes) != 0 {
		t.Errorf("flat grouping has %d nodes", len(m.Nodes))
	}
	box := geom.NewBox(geom.V3(2.5, 0, 0), geom.V3(3.5, 1, 1))
	got := m.SelectLeaves(&box, nil)
	if len(got) != 2 {
		t.Errorf("flat spatial select = %v", got)
	}
	// Domain is the union of leaf bounds.
	if m.Domain != geom.NewBox(geom.V3(0, 0, 0), geom.V3(4, 1, 1)) {
		t.Errorf("flat domain = %v", m.Domain)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr, schema, reports := fixture(t)
	m, err := Build(tr, tr.Leaves, schema, reports)
	if err != nil {
		t.Fatal(err)
	}
	buf := m.Encode()
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema.Equal(m.Schema) {
		t.Error("schema mismatch")
	}
	if got.Domain != m.Domain {
		t.Error("domain mismatch")
	}
	if len(got.Nodes) != len(m.Nodes) || len(got.Leaves) != len(m.Leaves) {
		t.Fatal("structure mismatch")
	}
	for i := range m.Nodes {
		a, b := m.Nodes[i], got.Nodes[i]
		if a.Axis != b.Axis || a.Pos != b.Pos || a.Left != b.Left || a.Right != b.Right || a.Bounds != b.Bounds {
			t.Fatalf("node %d mismatch", i)
		}
		for j := range a.Bitmaps {
			if a.Bitmaps[j] != b.Bitmaps[j] {
				t.Fatalf("node %d bitmap %d mismatch", i, j)
			}
		}
	}
	for i := range m.Leaves {
		a, b := m.Leaves[i], got.Leaves[i]
		if a.FileName != b.FileName || a.Count != b.Count || a.Bounds != b.Bounds {
			t.Fatalf("leaf %d mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.Bitmaps {
			if a.Bitmaps[j] != b.Bitmaps[j] || a.LocalRanges[j] != b.LocalRanges[j] {
				t.Fatalf("leaf %d attr %d mismatch", i, j)
			}
		}
	}
	// Queries agree after the round trip.
	box := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1.5, 1, 1))
	if len(got.SelectLeaves(&box, nil)) != len(m.SelectLeaves(&box, nil)) {
		t.Error("query mismatch after round trip")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("xx")); err == nil {
		t.Error("short buffer should error")
	}
	if _, err := Decode([]byte("NOPE....")); err == nil {
		t.Error("bad magic should error")
	}
	tr, schema, reports := fixture(t)
	m, _ := Build(tr, tr.Leaves, schema, reports)
	buf := m.Encode()
	if _, err := Decode(buf[:len(buf)-10]); err == nil {
		t.Error("truncated buffer should error")
	}
}

func TestDecodeCorruptionRobustness(t *testing.T) {
	tr, schema, reports := fixture(t)
	m, err := Build(tr, tr.Leaves, schema, reports)
	if err != nil {
		t.Fatal(err)
	}
	valid := m.Encode()
	r := rand.New(rand.NewSource(7))
	run := func(buf []byte) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("panic on corrupt metadata: %v", p)
			}
		}()
		got, err := Decode(buf)
		if err != nil {
			return
		}
		box := geom.NewBox(geom.V3(0, 0, 0), geom.V3(2, 2, 2))
		got.SelectLeaves(&box, []AttrFilter{{Attr: 0, Min: 0, Max: 100}})
		got.TotalCount()
	}
	for trial := 0; trial < 300; trial++ {
		buf := append([]byte(nil), valid...)
		for k := 0; k <= r.Intn(4); k++ {
			buf[r.Intn(len(buf))] ^= byte(1 + r.Intn(255))
		}
		run(buf)
	}
	for trial := 0; trial < 100; trial++ {
		buf := make([]byte, r.Intn(2048))
		r.Read(buf)
		run(buf)
	}
	for cut := len(valid); cut >= 0; cut -= 13 {
		run(valid[:cut])
	}
}

func TestCompressionMetaRoundTrip(t *testing.T) {
	tr, schema, reports := fixture(t)
	m, err := Build(tr, tr.Leaves, schema, reports)
	if err != nil {
		t.Fatal(err)
	}
	plain := m.Encode()

	m.Compression = &CompressionMeta{ErrorBounds: []float64{1e-3, 0}, LODScale: 8}
	buf := m.Encode()
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	c := got.Compression
	if c == nil {
		t.Fatal("Compression lost in round trip")
	}
	if len(c.ErrorBounds) != 2 || c.ErrorBounds[0] != 1e-3 || c.ErrorBounds[1] != 0 || c.LODScale != 8 {
		t.Fatalf("Compression round-tripped to %+v", c)
	}

	// Without compression the encoding stays the byte-identical v2 image,
	// and decoding it yields no compression block.
	m.Compression = nil
	again := m.Encode()
	if len(again) != len(plain) {
		t.Fatalf("uncompressed re-encode changed size: %d vs %d", len(again), len(plain))
	}
	for i := range plain {
		if again[i] != plain[i] {
			t.Fatalf("uncompressed re-encode differs at byte %d", i)
		}
	}
	back, err := Decode(plain)
	if err != nil {
		t.Fatal(err)
	}
	if back.Compression != nil {
		t.Fatal("v2 metadata decoded with a compression block")
	}
}

func TestCompressionMetaValidation(t *testing.T) {
	tr, schema, reports := fixture(t)
	m, err := Build(tr, tr.Leaves, schema, reports)
	if err != nil {
		t.Fatal(err)
	}
	m.Compression = &CompressionMeta{ErrorBounds: []float64{1e-3, 0}, LODScale: 2}
	valid := m.Encode()
	// Find the bounds block: it sits right before the LOD scale, which is
	// the last 8 bytes ahead of the CRC trailer... locate by value instead:
	// corrupt each f64 slot near the tail and require Decode to reject
	// non-finite or negative bounds rather than accept them.
	for _, bad := range [][]byte{
		f64bytes(-1), f64bytes(nan()), f64bytes(inf()),
	} {
		buf := append([]byte(nil), valid...)
		off := findF64(buf, 1e-3)
		if off < 0 {
			t.Fatal("bound value not found in encoding")
		}
		copy(buf[off:], bad)
		fixTrailer(buf)
		if _, err := Decode(buf); err == nil {
			t.Errorf("bound %v accepted", bad)
		}
	}
	// LOD scale below 1 is invalid.
	buf := append([]byte(nil), valid...)
	off := findF64(buf, 2)
	if off < 0 {
		t.Fatal("LOD scale value not found in encoding")
	}
	copy(buf[off:], f64bytes(0.5))
	fixTrailer(buf)
	if _, err := Decode(buf); err == nil {
		t.Error("LOD scale 0.5 accepted")
	}
}

// Helpers for TestCompressionMetaValidation: locate and overwrite f64
// fields in an encoded buffer, then re-fix the CRC trailer so the
// corruption reaches the field validation rather than the checksum.
func f64bytes(v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

func nan() float64 { return math.NaN() }
func inf() float64 { return math.Inf(1) }

func findF64(buf []byte, v float64) int {
	want := math.Float64bits(v)
	for off := len(buf) - trailerLen - 8; off >= 0; off-- {
		if binary.LittleEndian.Uint64(buf[off:]) == want {
			return off
		}
	}
	return -1
}

func fixTrailer(buf []byte) {
	binary.LittleEndian.PutUint32(buf[len(buf)-trailerLen:],
		checksum.CRC32C(buf[:len(buf)-trailerLen]))
}
