// Package meta implements the top-level metadata file written by rank 0 at
// the end of the write pipeline (paper §III-D). It stores the Aggregation
// Tree with references to the leaf (BAT) files, each attribute's global
// value range, and per-node bitmap indices remapped from each aggregator's
// local range into the global range — so a reader can treat the whole
// dataset as a single file, pruning leaves spatially and by attribute
// before touching them.
package meta

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"libbat/internal/aggtree"
	"libbat/internal/bitmap"
	"libbat/internal/checksum"
	"libbat/internal/geom"
	"libbat/internal/particles"
)

const magic = "BATM"

// version is the newest readable format; version 2 appended a CRC32C
// trailer (checksum u32 over every preceding byte, then trailer magic)
// verified before the body is parsed, and version 3 appended the dataset's
// compression declaration (per-attribute error bounds + LOD error scale)
// after the leaf records. Version 3 is written only when Compression is
// set, so uncompressed datasets keep producing byte-identical version-2
// metadata; version-1 files, which have no trailer, are still read.
const (
	version      = 3
	minVersion   = 1
	trailerMagic = "BMCK"
	trailerLen   = 8
)

// ErrChecksum marks a metadata buffer whose CRC32C does not match its
// trailer — on-disk corruption rather than a malformed layout.
var ErrChecksum = errors.New("meta: checksum mismatch")

// LeafReport is what an aggregator sends to rank 0 after writing its leaf
// file: the file name, the particles written, and each attribute's local
// value range and root bitmap (in the local frame).
type LeafReport struct {
	Leaf        int
	FileName    string
	Count       int64
	Bounds      geom.Box
	LocalRanges []bitmap.Range
	RootBitmaps []bitmap.Bitmap
}

// LeafMeta is one Aggregation Tree leaf in the metadata file.
type LeafMeta struct {
	FileName string
	Bounds   geom.Box
	Count    int64
	// LocalRanges are the leaf file's per-attribute bitmap reference
	// ranges (needed to build per-file query masks).
	LocalRanges []bitmap.Range
	// Bitmaps are the leaf's root bitmaps remapped to the global range.
	Bitmaps []bitmap.Bitmap
}

// Node is an Aggregation Tree inner node with merged global-frame bitmaps.
type Node struct {
	Axis        geom.Axis
	Pos         float64
	Bounds      geom.Box
	Left, Right int32 // >=0 inner node, <0 encodes ^leafIndex
	Bitmaps     []bitmap.Bitmap
}

// CompressionMeta declares how the dataset's leaf files were compressed:
// the absolute error bound per attribute (0 = lossless) and the LOD error
// scale, mirroring the BAT v3 footer so tools can report the configuration
// without opening a leaf file.
type CompressionMeta struct {
	ErrorBounds []float64
	LODScale    float64
}

// Meta is the parsed top-level metadata.
type Meta struct {
	Schema       particles.Schema
	Domain       geom.Box
	GlobalRanges []bitmap.Range
	Nodes        []Node
	Leaves       []LeafMeta
	// Compression is the dataset's codec declaration; nil when the leaf
	// files are uncompressed (version <= 2 metadata).
	Compression *CompressionMeta
}

// Build assembles the metadata from the aggregation tree (nil for flat
// groupings such as the AUG baseline) and the aggregators' leaf reports,
// which must cover every leaf exactly once. Global attribute ranges are
// the union of the local ranges; bitmaps are remapped into the global
// frame and inner-node bitmaps merged bottom-up (§III-D).
func Build(tree *aggtree.Tree, leaves []aggtree.Leaf, schema particles.Schema, reports []LeafReport) (*Meta, error) {
	nA := schema.NumAttrs()
	m := &Meta{
		Schema:       schema,
		GlobalRanges: make([]bitmap.Range, nA),
		Leaves:       make([]LeafMeta, len(leaves)),
	}
	for a := range m.GlobalRanges {
		m.GlobalRanges[a] = bitmap.EmptyRange()
	}
	seen := make([]bool, len(leaves))
	for _, r := range reports {
		if r.Leaf < 0 || r.Leaf >= len(leaves) {
			return nil, fmt.Errorf("meta: report for unknown leaf %d", r.Leaf)
		}
		if seen[r.Leaf] {
			return nil, fmt.Errorf("meta: duplicate report for leaf %d", r.Leaf)
		}
		if len(r.LocalRanges) != nA || len(r.RootBitmaps) != nA {
			return nil, fmt.Errorf("meta: leaf %d report has %d/%d attrs, want %d",
				r.Leaf, len(r.LocalRanges), len(r.RootBitmaps), nA)
		}
		seen[r.Leaf] = true
		for a := 0; a < nA; a++ {
			if !r.LocalRanges[a].IsEmpty() {
				m.GlobalRanges[a] = m.GlobalRanges[a].Union(r.LocalRanges[a])
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("meta: missing report for leaf %d", i)
		}
	}
	// Second pass: remap each leaf's bitmaps into the global frame.
	for _, r := range reports {
		lm := &m.Leaves[r.Leaf]
		lm.FileName = r.FileName
		lm.Bounds = r.Bounds
		lm.Count = r.Count
		lm.LocalRanges = append([]bitmap.Range(nil), r.LocalRanges...)
		lm.Bitmaps = make([]bitmap.Bitmap, nA)
		for a := 0; a < nA; a++ {
			lm.Bitmaps[a] = r.RootBitmaps[a].Remap(r.LocalRanges[a], m.GlobalRanges[a])
		}
	}
	if tree != nil {
		m.Domain = tree.Domain
		m.Nodes = make([]Node, len(tree.Nodes))
		// Flattened DFS preorder puts children after parents, so a
		// reverse sweep merges bitmaps bottom-up.
		childBitmaps := func(ref int32) []bitmap.Bitmap {
			if li, ok := aggtree.IsLeafRef(ref); ok {
				return m.Leaves[li].Bitmaps
			}
			return m.Nodes[ref].Bitmaps
		}
		for i := len(tree.Nodes) - 1; i >= 0; i-- {
			tn := tree.Nodes[i]
			n := Node{Axis: tn.Axis, Pos: tn.Pos, Bounds: tn.Bounds, Left: tn.Left, Right: tn.Right}
			n.Bitmaps = make([]bitmap.Bitmap, nA)
			lb, rb := childBitmaps(tn.Left), childBitmaps(tn.Right)
			for a := 0; a < nA; a++ {
				n.Bitmaps[a] = lb[a] | rb[a]
			}
			m.Nodes[i] = n
		}
	} else {
		d := geom.EmptyBox()
		for _, l := range m.Leaves {
			d = d.Union(l.Bounds)
		}
		m.Domain = d
	}
	return m, nil
}

// TotalCount returns the dataset's particle count.
func (m *Meta) TotalCount() int64 {
	var n int64
	for _, l := range m.Leaves {
		n += l.Count
	}
	return n
}

// AttrFilter is an attribute interval in global value space.
type AttrFilter struct {
	Attr     int
	Min, Max float64
}

// SelectLeaves returns the indices of leaves that may contain particles in
// bounds (nil box = everywhere) passing all filters, pruning with the
// aggregation tree's hierarchy and bitmaps where available.
func (m *Meta) SelectLeaves(bounds *geom.Box, filters []AttrFilter) []int {
	masks := make([]bitmap.Bitmap, len(filters))
	for i, f := range filters {
		if f.Attr < 0 || f.Attr >= m.Schema.NumAttrs() {
			return nil
		}
		masks[i] = bitmap.OfQuery(f.Min, f.Max, m.GlobalRanges[f.Attr])
		if masks[i] == 0 {
			return nil
		}
	}
	pass := func(bms []bitmap.Bitmap, b geom.Box) bool {
		if bounds != nil && !bounds.Overlaps(b) {
			return false
		}
		for i, f := range filters {
			if !bms[f.Attr].Overlaps(masks[i]) {
				return false
			}
		}
		return true
	}
	var out []int
	if len(m.Nodes) == 0 {
		for i, l := range m.Leaves {
			if pass(l.Bitmaps, l.Bounds) {
				out = append(out, i)
			}
		}
		return out
	}
	var rec func(ref int32, depth int)
	rec = func(ref int32, depth int) {
		if li, ok := aggtree.IsLeafRef(ref); ok {
			if pass(m.Leaves[li].Bitmaps, m.Leaves[li].Bounds) {
				out = append(out, li)
			}
			return
		}
		// Valid trees are at most as deep as their node count; deeper
		// recursion means cyclic links in a corrupt file.
		if depth > len(m.Nodes) {
			return
		}
		n := &m.Nodes[ref]
		if !pass(n.Bitmaps, n.Bounds) {
			return
		}
		rec(n.Left, depth+1)
		rec(n.Right, depth+1)
	}
	rec(0, 0)
	return out
}

// validRef reports whether a child reference resolves to a node or leaf.
func validRef(ref int32, nNodes, nLeaves int) bool {
	if ref >= 0 {
		return int(ref) < nNodes
	}
	return int(^ref) < nLeaves
}

// --- binary encoding ---

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)    { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16)  { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32)  { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i32(v int32)   { w.u32(uint32(v)) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *writer) str(s string) {
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) box(b geom.Box) {
	for _, v := range []float64{b.Lower.X, b.Lower.Y, b.Lower.Z, b.Upper.X, b.Upper.Y, b.Upper.Z} {
		w.f64(v)
	}
}
func (w *writer) rng(r bitmap.Range) {
	w.f64(r.Min)
	w.f64(r.Max)
}
func (w *writer) bitmaps(bms []bitmap.Bitmap) {
	for _, b := range bms {
		w.u32(uint32(b))
	}
}

// Encode serializes the metadata. Version 3 is emitted only when the
// compression declaration is present; uncompressed datasets encode to
// byte-identical version-2 buffers.
func (m *Meta) Encode() []byte {
	ver := uint32(2)
	if m.Compression != nil {
		ver = 3
	}
	w := &writer{}
	w.buf = append(w.buf, magic...)
	w.u32(ver)
	nA := m.Schema.NumAttrs()
	w.u32(uint32(nA))
	for a, d := range m.Schema.Attrs {
		w.str(d.Name)
		w.u8(uint8(d.Type))
		w.rng(m.GlobalRanges[a])
	}
	w.box(m.Domain)
	w.u32(uint32(len(m.Nodes)))
	w.u32(uint32(len(m.Leaves)))
	for _, n := range m.Nodes {
		w.u8(uint8(n.Axis))
		w.f64(n.Pos)
		w.box(n.Bounds)
		w.i32(n.Left)
		w.i32(n.Right)
		w.bitmaps(n.Bitmaps)
	}
	for _, l := range m.Leaves {
		w.str(l.FileName)
		w.box(l.Bounds)
		w.u64(uint64(l.Count))
		for a := 0; a < nA; a++ {
			w.rng(l.LocalRanges[a])
		}
		w.bitmaps(l.Bitmaps)
	}
	if m.Compression != nil {
		for a := 0; a < nA; a++ {
			b := 0.0
			if a < len(m.Compression.ErrorBounds) {
				b = m.Compression.ErrorBounds[a]
			}
			w.f64(b)
		}
		scale := m.Compression.LODScale
		if scale < 1 {
			scale = 1
		}
		w.f64(scale)
	}
	// Checksum trailer over everything above.
	w.u32(checksum.CRC32C(w.buf))
	w.buf = append(w.buf, trailerMagic...)
	return w.buf
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) need(n int) ([]byte, error) {
	if r.off+n > len(r.buf) {
		return nil, fmt.Errorf("meta: truncated at offset %d", r.off)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (uint8, error) {
	b, err := r.need(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.need(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *reader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	b, err := r.need(int(n))
	return string(b), err
}

func (r *reader) box() (geom.Box, error) {
	var v [6]float64
	for i := range v {
		var err error
		if v[i], err = r.f64(); err != nil {
			return geom.Box{}, err
		}
	}
	return geom.NewBox(geom.V3(v[0], v[1], v[2]), geom.V3(v[3], v[4], v[5])), nil
}

func (r *reader) rng() (bitmap.Range, error) {
	min, err := r.f64()
	if err != nil {
		return bitmap.Range{}, err
	}
	max, err := r.f64()
	return bitmap.Range{Min: min, Max: max}, err
}

func (r *reader) bitmaps(n int) ([]bitmap.Bitmap, error) {
	out := make([]bitmap.Bitmap, n)
	for i := range out {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		out[i] = bitmap.Bitmap(v)
	}
	return out, nil
}

// Decode parses metadata produced by Encode.
func Decode(buf []byte) (*Meta, error) {
	r := &reader{buf: buf}
	mg, err := r.need(4)
	if err != nil || string(mg) != magic {
		return nil, fmt.Errorf("meta: bad magic")
	}
	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ver < minVersion || ver > version {
		return nil, fmt.Errorf("meta: unsupported version %d (supported: %d-%d)", ver, minVersion, version)
	}
	if ver >= 2 {
		// Verify the whole-buffer CRC before trusting any field beyond
		// the version: a single flipped bit anywhere is detected here.
		if len(buf) < trailerLen+8 {
			return nil, fmt.Errorf("meta: buffer too small for checksum trailer")
		}
		if string(buf[len(buf)-4:]) != trailerMagic {
			return nil, fmt.Errorf("%w: bad trailer magic %q", ErrChecksum, buf[len(buf)-4:])
		}
		want := binary.LittleEndian.Uint32(buf[len(buf)-trailerLen:])
		if got := checksum.CRC32C(buf[:len(buf)-trailerLen]); got != want {
			return nil, fmt.Errorf("%w: CRC %08x != %08x", ErrChecksum, got, want)
		}
	}
	nA32, err := r.u32()
	if err != nil {
		return nil, err
	}
	nA := int(nA32)
	if nA > 4096 {
		return nil, fmt.Errorf("meta: implausible attribute count %d", nA)
	}
	m := &Meta{
		Schema:       particles.Schema{Attrs: make([]particles.AttrDesc, nA)},
		GlobalRanges: make([]bitmap.Range, nA),
	}
	for a := 0; a < nA; a++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		typ, err := r.u8()
		if err != nil {
			return nil, err
		}
		m.Schema.Attrs[a] = particles.AttrDesc{Name: name, Type: particles.AttrType(typ)}
		if m.GlobalRanges[a], err = r.rng(); err != nil {
			return nil, err
		}
	}
	if m.Domain, err = r.box(); err != nil {
		return nil, err
	}
	nNodes, err := r.u32()
	if err != nil {
		return nil, err
	}
	nLeaves, err := r.u32()
	if err != nil {
		return nil, err
	}
	// Each record occupies at least its fixed-size fields, so counts are
	// bounded by the buffer length.
	if int(nNodes)*(61+4*nA) > len(buf) || int(nLeaves)*(58+20*nA) > len(buf) {
		return nil, fmt.Errorf("meta: node counts %d/%d exceed buffer size %d", nNodes, nLeaves, len(buf))
	}
	m.Nodes = make([]Node, nNodes)
	for i := range m.Nodes {
		n := &m.Nodes[i]
		ax, err := r.u8()
		if err != nil {
			return nil, err
		}
		n.Axis = geom.Axis(ax)
		if n.Pos, err = r.f64(); err != nil {
			return nil, err
		}
		if n.Bounds, err = r.box(); err != nil {
			return nil, err
		}
		l32, err := r.u32()
		if err != nil {
			return nil, err
		}
		n.Left = int32(l32)
		r32, err := r.u32()
		if err != nil {
			return nil, err
		}
		n.Right = int32(r32)
		if !validRef(n.Left, int(nNodes), int(nLeaves)) || !validRef(n.Right, int(nNodes), int(nLeaves)) {
			return nil, fmt.Errorf("meta: node %d has invalid children", i)
		}
		if n.Bitmaps, err = r.bitmaps(nA); err != nil {
			return nil, err
		}
	}
	m.Leaves = make([]LeafMeta, nLeaves)
	for i := range m.Leaves {
		l := &m.Leaves[i]
		if l.FileName, err = r.str(); err != nil {
			return nil, err
		}
		if l.Bounds, err = r.box(); err != nil {
			return nil, err
		}
		cnt, err := r.u64()
		if err != nil {
			return nil, err
		}
		if cnt > math.MaxInt64 {
			return nil, fmt.Errorf("meta: leaf %d particle count %d overflows int64", i, cnt)
		}
		l.Count = int64(cnt)
		l.LocalRanges = make([]bitmap.Range, nA)
		for a := 0; a < nA; a++ {
			if l.LocalRanges[a], err = r.rng(); err != nil {
				return nil, err
			}
		}
		if l.Bitmaps, err = r.bitmaps(nA); err != nil {
			return nil, err
		}
	}
	if ver >= 3 {
		cm := &CompressionMeta{ErrorBounds: make([]float64, nA)}
		for a := 0; a < nA; a++ {
			if cm.ErrorBounds[a], err = r.f64(); err != nil {
				return nil, err
			}
			if b := cm.ErrorBounds[a]; math.IsNaN(b) || math.IsInf(b, 0) || b < 0 {
				return nil, fmt.Errorf("meta: attribute %d declares invalid error bound %v", a, b)
			}
		}
		if cm.LODScale, err = r.f64(); err != nil {
			return nil, err
		}
		if math.IsNaN(cm.LODScale) || math.IsInf(cm.LODScale, 0) || cm.LODScale < 1 {
			return nil, fmt.Errorf("meta: invalid LOD error scale %v", cm.LODScale)
		}
		m.Compression = cm
	}
	return m, nil
}
