// Package particles provides the structure-of-arrays particle containers
// shared by the whole library. Following the paper's data model (and the
// array-based attribute storage of HDF5/ADIOS/Silo), a particle has three
// single-precision spatial coordinates plus a set of named double-precision
// attributes described by a Schema.
package particles

import (
	"encoding/binary"
	"fmt"
	"math"

	"libbat/internal/bitmap"
	"libbat/internal/geom"
)

// AttrType describes the on-disk storage type of an attribute.
type AttrType uint8

// Supported attribute storage types.
const (
	Float64 AttrType = iota
	Float32
)

// Size returns the number of bytes the type occupies on disk.
func (t AttrType) Size() int {
	if t == Float32 {
		return 4
	}
	return 8
}

func (t AttrType) String() string {
	if t == Float32 {
		return "float32"
	}
	return "float64"
}

// AttrDesc names a single particle attribute.
type AttrDesc struct {
	Name string
	Type AttrType
}

// Schema describes the attributes carried by every particle in a Set.
// Positions (3 x float32) are implicit and not part of the schema.
type Schema struct {
	Attrs []AttrDesc
}

// NewSchema builds a schema of float64 attributes with the given names.
func NewSchema(names ...string) Schema {
	s := Schema{Attrs: make([]AttrDesc, len(names))}
	for i, n := range names {
		s.Attrs[i] = AttrDesc{Name: n, Type: Float64}
	}
	return s
}

// UniformSchema returns a schema of n float64 attributes named a0..a(n-1),
// matching the synthetic uniform benchmark's "14 double precision
// attributes" setup.
func UniformSchema(n int) Schema {
	s := Schema{Attrs: make([]AttrDesc, n)}
	for i := range s.Attrs {
		s.Attrs[i] = AttrDesc{Name: fmt.Sprintf("a%d", i), Type: Float64}
	}
	return s
}

// NumAttrs returns the number of attributes in the schema.
func (s Schema) NumAttrs() int { return len(s.Attrs) }

// BytesPerParticle returns the storage footprint of one particle: 12 bytes
// of position plus the attribute payload.
func (s Schema) BytesPerParticle() int {
	n := 12
	for _, a := range s.Attrs {
		n += a.Type.Size()
	}
	return n
}

// AttrIndex returns the index of the named attribute, or -1.
func (s Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Equal reports whether two schemas describe the same attributes.
func (s Schema) Equal(o Schema) bool {
	if len(s.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range s.Attrs {
		if s.Attrs[i] != o.Attrs[i] {
			return false
		}
	}
	return true
}

// Set is a structure-of-arrays particle container.
type Set struct {
	Schema  Schema
	X, Y, Z []float32
	// Attrs[i] holds the values of Schema.Attrs[i] for every particle.
	// Values are held as float64 in memory regardless of storage type.
	Attrs [][]float64
}

// NewSet returns an empty set with capacity for n particles.
func NewSet(schema Schema, n int) *Set {
	s := &Set{
		Schema: schema,
		X:      make([]float32, 0, n),
		Y:      make([]float32, 0, n),
		Z:      make([]float32, 0, n),
		Attrs:  make([][]float64, schema.NumAttrs()),
	}
	for i := range s.Attrs {
		s.Attrs[i] = make([]float64, 0, n)
	}
	return s
}

// Len returns the number of particles.
func (s *Set) Len() int { return len(s.X) }

// Bytes returns the total storage footprint of the set.
func (s *Set) Bytes() int64 { return int64(s.Len()) * int64(s.Schema.BytesPerParticle()) }

// Append adds one particle. attrs must have one value per schema attribute.
func (s *Set) Append(p geom.Vec3, attrs []float64) {
	if len(attrs) != s.Schema.NumAttrs() {
		panic(fmt.Sprintf("particles: appended %d attrs to schema of %d", len(attrs), s.Schema.NumAttrs()))
	}
	s.X = append(s.X, float32(p.X))
	s.Y = append(s.Y, float32(p.Y))
	s.Z = append(s.Z, float32(p.Z))
	for i, v := range attrs {
		s.Attrs[i] = append(s.Attrs[i], v)
	}
}

// Position returns the position of particle i.
func (s *Set) Position(i int) geom.Vec3 {
	return geom.Vec3{X: float64(s.X[i]), Y: float64(s.Y[i]), Z: float64(s.Z[i])}
}

// Bounds returns the tight bounding box of all particles.
func (s *Set) Bounds() geom.Box {
	b := geom.EmptyBox()
	for i := 0; i < s.Len(); i++ {
		b = b.Extend(s.Position(i))
	}
	return b
}

// AttrRange returns the value range of attribute a over all particles.
func (s *Set) AttrRange(a int) bitmap.Range {
	r := bitmap.EmptyRange()
	for _, v := range s.Attrs[a] {
		r = r.Extend(v)
	}
	return r
}

// AppendSet appends all particles of o (which must share the schema).
func (s *Set) AppendSet(o *Set) {
	if !s.Schema.Equal(o.Schema) {
		panic("particles: AppendSet schema mismatch")
	}
	s.X = append(s.X, o.X...)
	s.Y = append(s.Y, o.Y...)
	s.Z = append(s.Z, o.Z...)
	for i := range s.Attrs {
		s.Attrs[i] = append(s.Attrs[i], o.Attrs[i]...)
	}
}

// Select returns a new set containing the particles at the given indices,
// in order.
func (s *Set) Select(idx []int) *Set {
	out := NewSet(s.Schema, len(idx))
	for _, i := range idx {
		out.X = append(out.X, s.X[i])
		out.Y = append(out.Y, s.Y[i])
		out.Z = append(out.Z, s.Z[i])
		for a := range s.Attrs {
			out.Attrs[a] = append(out.Attrs[a], s.Attrs[a][i])
		}
	}
	return out
}

// Reorder permutes the set in place so that new position i holds the
// particle previously at perm[i]. perm must be a permutation of [0, Len).
func (s *Set) Reorder(perm []int) {
	if len(perm) != s.Len() {
		panic("particles: Reorder permutation length mismatch")
	}
	apply32 := func(a []float32) []float32 {
		out := make([]float32, len(a))
		for i, p := range perm {
			out[i] = a[p]
		}
		return out
	}
	s.X, s.Y, s.Z = apply32(s.X), apply32(s.Y), apply32(s.Z)
	for ai, a := range s.Attrs {
		out := make([]float64, len(a))
		for i, p := range perm {
			out[i] = a[p]
		}
		s.Attrs[ai] = out
	}
}

// Slice returns a view-copy of particles [lo, hi).
func (s *Set) Slice(lo, hi int) *Set {
	out := NewSet(s.Schema, hi-lo)
	out.X = append(out.X, s.X[lo:hi]...)
	out.Y = append(out.Y, s.Y[lo:hi]...)
	out.Z = append(out.Z, s.Z[lo:hi]...)
	for a := range s.Attrs {
		out.Attrs[a] = append(out.Attrs[a], s.Attrs[a][lo:hi]...)
	}
	return out
}

// Marshal serializes the set for network transfer between ranks. The layout
// is: count u64, then X, Y, Z arrays, then each attribute array as float64.
func (s *Set) Marshal() []byte {
	n := s.Len()
	size := 8 + n*12 + n*8*s.Schema.NumAttrs()
	buf := make([]byte, size)
	binary.LittleEndian.PutUint64(buf, uint64(n))
	off := 8
	for _, a := range [][]float32{s.X, s.Y, s.Z} {
		for _, v := range a {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
			off += 4
		}
	}
	for _, attr := range s.Attrs {
		for _, v := range attr {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	return buf
}

// Unmarshal reconstructs a set serialized by Marshal. The schema must be
// supplied out of band (it is fixed per dataset).
func Unmarshal(buf []byte, schema Schema) (*Set, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("particles: short buffer (%d bytes)", len(buf))
	}
	nu := binary.LittleEndian.Uint64(buf)
	// Bound the count before narrowing it: each particle carries at least
	// 12 bytes of position payload, so a claimed count beyond len(buf)/12
	// is corrupt — and without this check a crafted header could overflow
	// the exact-size computation below after int conversion.
	if nu > uint64(len(buf))/12 {
		return nil, fmt.Errorf("particles: claimed count %d exceeds buffer capacity (%d bytes)", nu, len(buf))
	}
	n := int(nu)
	want := 8 + n*12 + n*8*schema.NumAttrs()
	if len(buf) != want {
		return nil, fmt.Errorf("particles: buffer is %d bytes, want %d for %d particles", len(buf), want, n)
	}
	s := NewSet(schema, n)
	off := 8
	read32 := func() []float32 {
		a := make([]float32, n)
		for i := range a {
			a[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
		return a
	}
	s.X, s.Y, s.Z = read32(), read32(), read32()
	for ai := range s.Attrs {
		a := make([]float64, n)
		for i := range a {
			a[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		s.Attrs[ai] = a
	}
	return s, nil
}
