package particles

import (
	"math/rand"
	"testing"
	"testing/quick"

	"libbat/internal/geom"
)

func testSet(n int, seed int64) *Set {
	r := rand.New(rand.NewSource(seed))
	s := NewSet(NewSchema("mass", "temp"), n)
	for i := 0; i < n; i++ {
		s.Append(geom.V3(r.Float64(), r.Float64()*2, r.Float64()*3),
			[]float64{r.Float64() * 10, 100 + r.Float64()*50})
	}
	return s
}

func TestSchema(t *testing.T) {
	s := NewSchema("mass", "temp")
	if s.NumAttrs() != 2 {
		t.Errorf("NumAttrs = %d", s.NumAttrs())
	}
	if s.BytesPerParticle() != 12+16 {
		t.Errorf("BytesPerParticle = %d", s.BytesPerParticle())
	}
	if s.AttrIndex("temp") != 1 || s.AttrIndex("nope") != -1 {
		t.Error("AttrIndex wrong")
	}
	u := UniformSchema(14)
	if u.NumAttrs() != 14 || u.BytesPerParticle() != 12+14*8 {
		t.Errorf("uniform schema wrong: %d attrs, %d B", u.NumAttrs(), u.BytesPerParticle())
	}
	// Paper: 32k particles of 3xf32 + 14xf64 = 4.06MB per rank.
	if mb := float64(32768*u.BytesPerParticle()) / (1 << 20); mb < 3.8 || mb > 4.2 {
		t.Errorf("32k uniform particles = %.2f MB, paper says 4.06", mb)
	}
	if !s.Equal(NewSchema("mass", "temp")) || s.Equal(u) {
		t.Error("Equal wrong")
	}
	if Float32.Size() != 4 || Float64.Size() != 8 {
		t.Error("type sizes wrong")
	}
}

func TestAppendAndAccess(t *testing.T) {
	s := testSet(100, 1)
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Bytes() != int64(100*(12+16)) {
		t.Errorf("Bytes = %d", s.Bytes())
	}
	b := s.Bounds()
	for i := 0; i < s.Len(); i++ {
		if !b.Contains(s.Position(i)) {
			t.Fatalf("particle %d outside Bounds", i)
		}
	}
	r := s.AttrRange(0)
	for _, v := range s.Attrs[0] {
		if v < r.Min || v > r.Max {
			t.Fatal("value outside AttrRange")
		}
	}
}

func TestAppendPanicsOnBadAttrs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on attr count mismatch")
		}
	}()
	s := NewSet(NewSchema("a"), 1)
	s.Append(geom.V3(0, 0, 0), []float64{1, 2})
}

func TestAppendSet(t *testing.T) {
	a := testSet(10, 1)
	b := testSet(20, 2)
	a.AppendSet(b)
	if a.Len() != 30 {
		t.Errorf("Len = %d", a.Len())
	}
	if a.Attrs[0][10] != b.Attrs[0][0] {
		t.Error("appended attrs wrong")
	}
}

func TestSelectAndSlice(t *testing.T) {
	s := testSet(50, 3)
	sel := s.Select([]int{5, 10, 15})
	if sel.Len() != 3 {
		t.Fatalf("Select len = %d", sel.Len())
	}
	if sel.X[1] != s.X[10] || sel.Attrs[1][2] != s.Attrs[1][15] {
		t.Error("Select values wrong")
	}
	sl := s.Slice(10, 20)
	if sl.Len() != 10 || sl.X[0] != s.X[10] {
		t.Error("Slice wrong")
	}
	// Slice is a copy: mutating it must not affect the original.
	sl.X[0] = -999
	if s.X[10] == -999 {
		t.Error("Slice aliases original storage")
	}
}

func TestReorder(t *testing.T) {
	s := testSet(10, 4)
	orig := s.Slice(0, 10)
	perm := []int{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	s.Reorder(perm)
	for i := 0; i < 10; i++ {
		if s.X[i] != orig.X[9-i] || s.Attrs[0][i] != orig.Attrs[0][9-i] {
			t.Fatalf("Reorder wrong at %d", i)
		}
	}
}

func TestReorderPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s := testSet(5, 1)
	s.Reorder([]int{0, 1})
}

func TestMarshalRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw) % 64
		s := testSet(n, seed)
		buf := s.Marshal()
		got, err := Unmarshal(buf, s.Schema)
		if err != nil {
			return false
		}
		if got.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if got.X[i] != s.X[i] || got.Y[i] != s.Y[i] || got.Z[i] != s.Z[i] {
				return false
			}
			for a := range s.Attrs {
				if got.Attrs[a][i] != s.Attrs[a][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2}, NewSchema("a")); err == nil {
		t.Error("short buffer should error")
	}
	s := testSet(5, 1)
	buf := s.Marshal()
	if _, err := Unmarshal(buf[:len(buf)-4], s.Schema); err == nil {
		t.Error("truncated buffer should error")
	}
	if _, err := Unmarshal(buf, NewSchema("a", "b", "c")); err == nil {
		t.Error("wrong schema size should error")
	}
}

func TestMarshalEmpty(t *testing.T) {
	s := NewSet(NewSchema("a"), 0)
	got, err := Unmarshal(s.Marshal(), s.Schema)
	if err != nil || got.Len() != 0 {
		t.Errorf("empty round trip: %v len %d", err, got.Len())
	}
}

func BenchmarkMarshal32k(b *testing.B) {
	s := testSet(32768, 1)
	b.SetBytes(s.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Marshal()
	}
}
