package perf

import "time"

// LeafLoad describes one aggregation leaf (one output file) for the cost
// models: its total payload, its member ranks and their per-rank payloads,
// and the rank assigned to aggregate it.
type LeafLoad struct {
	Bytes       int64
	Count       int64
	Ranks       []int
	MemberBytes []int64
	Aggregator  int
}

// WriteBreakdown reports modeled time per write-pipeline stage (the
// components of the paper's Figure 6/10/12 breakdowns).
type WriteBreakdown struct {
	TreeBuild     time.Duration // aggregation tree build on rank 0
	GatherScatter time.Duration // counts/bounds gather + assignment scatter
	Transfer      time.Duration // particle transfer to aggregators
	BATBuild      time.Duration // BAT construction on aggregators
	FileWrite     time.Duration // aggregator file creates + writes
	Metadata      time.Duration // top-level metadata gather + write
}

// Total sums all stages.
func (b WriteBreakdown) Total() time.Duration {
	return b.TreeBuild + b.GatherScatter + b.Transfer + b.BATBuild + b.FileWrite + b.Metadata
}

// ReadBreakdown reports modeled time per read-pipeline stage.
type ReadBreakdown struct {
	Metadata time.Duration // all ranks read the aggregation-tree metadata
	FileRead time.Duration // read aggregators open + read leaf files
	Query    time.Duration // spatial queries on the read aggregators
	Transfer time.Duration // returning particles to the requesting ranks
}

// Total sums all stages.
func (b ReadBreakdown) Total() time.Duration {
	return b.Metadata + b.FileRead + b.Query + b.Transfer
}

// ModelTwoPhaseWrite charges the paper's write pipeline (§III, Figure 1)
// for a world of n ranks aggregating into the given leaves. The layout
// overhead of the BAT (≈1%) is folded into the leaf payload by the caller
// if desired; the model charges the dominant mechanisms:
//
//	tree build     — rank entries through TreeBuildRate
//	gather/scatter — two small-message collectives over n ranks
//	transfer       — max per-node NIC ingress/egress of the aggregation
//	BAT build      — max per-aggregator particles through BATBuildRate
//	file write     — metadata-server creates + max per-writer stream time
//	metadata       — leaf ranges/bitmaps gather + one small file write
func (p Profile) ModelTwoPhaseWrite(n int, leaves []LeafLoad, metaBytesPerLeaf int) WriteBreakdown {
	var b WriteBreakdown
	if len(leaves) == 0 {
		return b
	}
	b.TreeBuild = seconds(float64(n) / p.TreeBuildRate)
	b.GatherScatter = 2 * p.CollectiveLatency(n, 40)

	// Transfer: per-node ingress (aggregator side) and egress (sender
	// side); the paper's even aggregator spread through the rank space is
	// reflected in the leaves' Aggregator fields.
	ingress := map[int]int64{}
	egress := map[int]int64{}
	var maxAggCount int64
	nWriters := 0
	writersPerNode := map[int]int{}
	for _, l := range leaves {
		nWriters++
		aggNode := p.NodeOf(l.Aggregator)
		writersPerNode[aggNode]++
		if l.Count > maxAggCount {
			maxAggCount = l.Count
		}
		for i, r := range l.Ranks {
			if r == l.Aggregator {
				continue
			}
			var mb int64
			if i < len(l.MemberBytes) {
				mb = l.MemberBytes[i]
			}
			ingress[aggNode] += mb
			egress[p.NodeOf(r)] += mb
		}
	}
	var maxFlow int64
	for _, v := range ingress {
		maxFlow = max(maxFlow, v)
	}
	for _, v := range egress {
		maxFlow = max(maxFlow, v)
	}
	b.Transfer = seconds(float64(maxFlow)/p.NICBandwidth) + p.NetLatency*time.Duration(len(leaves))

	b.BATBuild = seconds(float64(maxAggCount) / p.BATBuildRate)

	// File write: all leaves created through the MDS; each writer streams
	// its file, sharing the aggregate filesystem and its node's NIC.
	maxWritersOnNode := 0
	for _, c := range writersPerNode {
		if c > maxWritersOnNode {
			maxWritersOnNode = c
		}
	}
	var maxLeafBytes int64
	for _, l := range leaves {
		maxLeafBytes = max(maxLeafBytes, l.Bytes)
	}
	wbw := p.WriterBW(nWriters, maxWritersOnNode)
	b.FileWrite = p.CreateTime(len(leaves), p.FileCreateRate) +
		seconds(float64(maxLeafBytes)/wbw)

	// Metadata: per-leaf ranges and root bitmaps gathered to rank 0, one
	// small file written.
	b.Metadata = p.CollectiveLatency(len(leaves), metaBytesPerLeaf) +
		p.CreateTime(1, p.FileCreateRate) +
		seconds(float64(len(leaves)*metaBytesPerLeaf)/p.WriterStreamBW)
	return b
}

// ModelTwoPhaseRead charges the paper's read pipeline (§IV, Figure 3):
// every rank reads the metadata, read aggregators (one per leaf when ranks
// >= files, else files spread over ranks) open and read the leaf files,
// answer spatial queries, and return each rank's particles.
func (p Profile) ModelTwoPhaseRead(n int, leaves []LeafLoad, metaBytesPerLeaf int) ReadBreakdown {
	var b ReadBreakdown
	if len(leaves) == 0 {
		return b
	}
	metaBytes := int64(len(leaves) * metaBytesPerLeaf)
	// The metadata file is read by every rank; small, so the open storm
	// dominates. Model opens through the MDS at one per node (the paper
	// reads it on every rank, but the page cache serves node-local
	// repeats).
	nodes := (n + p.RanksPerNode - 1) / p.RanksPerNode
	b.Metadata = p.CreateTime(nodes, p.FileOpenRate) +
		seconds(float64(metaBytes)/p.ReaderStreamBW)

	// Read aggregators: files per reader and their byte loads.
	nReaders := n
	if len(leaves) < n {
		nReaders = len(leaves)
	}
	readerBytes := map[int]int64{}
	readerCount := map[int]int64{}
	readersPerNode := map[int]int{}
	var totalBytes int64
	for i, l := range leaves {
		reader := i * n / len(leaves) // same even spread as writes
		if len(leaves) > n {
			reader = i % n
		}
		if _, seen := readerBytes[reader]; !seen {
			readersPerNode[p.NodeOf(reader)]++
		}
		readerBytes[reader] += l.Bytes
		readerCount[reader] += l.Count
		totalBytes += l.Bytes
	}
	var maxReaderBytes, maxReaderCount int64
	for r, v := range readerBytes {
		maxReaderBytes = max(maxReaderBytes, v)
		maxReaderCount = max(maxReaderCount, readerCount[r])
	}
	maxReadersOnNode := 0
	for _, c := range readersPerNode {
		if c > maxReadersOnNode {
			maxReadersOnNode = c
		}
	}
	rbw := p.ReaderBW(nReaders, maxReadersOnNode)
	b.FileRead = p.CreateTime(len(leaves), p.FileOpenRate) +
		seconds(float64(maxReaderBytes)/rbw)

	// Queries: each reader filters its particles once per requesting rank
	// overlap; approximate with one full pass over its particles.
	b.Query = seconds(float64(maxReaderCount) / p.QueryRate)

	// Redistribution: total payload crosses the network once; the
	// bottleneck is the larger of the per-node ingress of the receiving
	// ranks and the per-node egress of the read aggregators.
	perRank := totalBytes / int64(n)
	ingressPerNode := perRank * int64(p.RanksPerNode)
	egressPerNode := int64(0)
	if maxReadersOnNode > 0 {
		egressPerNode = maxReaderBytes * int64(maxReadersOnNode)
	}
	flow := max(ingressPerNode, egressPerNode)
	b.Transfer = seconds(float64(flow)/p.NICBandwidth) + p.NetLatency*time.Duration(len(leaves))
	return b
}
