package perf

import "time"

// PlanParams holds the wire and protocol constants of the write pipeline's
// planning phase (phase a) for the cost models. The byte sizes mirror the
// actual encodings in internal/aggtree: a rank info record is 60 B on the
// wire, a split-probe lane 24 B, a Morton sample 12 B.
type PlanParams struct {
	// InfoBytes is one rank's {rank, count, bounds} record.
	InfoBytes int
	// AssignBytes is one rank's assignment message (leaf + aggregator,
	// with framing).
	AssignBytes int
	// SampleBytes is one Morton splitter sample.
	SampleBytes int
	// ProbeBytes is one collective split-probe lane.
	ProbeBytes int
	// SampleStride: every stride-th active rank contributes a sample.
	SampleStride int
	// RoundsPerNode is the number of collective probe rounds one refined
	// split node costs (bit-bisection over the coordinate space: ~64
	// probes per sub-phase, up to three sub-phases per axis).
	RoundsPerNode int
	// ConsolidateMembers is the refinement frontier: nodes at or below
	// this member count consolidate to one owner and finish serially.
	ConsolidateMembers int
}

// DefaultPlanParams matches aggtree.DefaultDistConfig and the encodings in
// internal/aggtree/dist.go.
func DefaultPlanParams() PlanParams {
	return PlanParams{
		InfoBytes:          60,
		AssignBytes:        48,
		SampleBytes:        12,
		ProbeBytes:         24,
		SampleStride:       16,
		RoundsPerNode:      200,
		ConsolidateMembers: 32,
	}
}

// PlanCost breaks one planning phase into its legs. A centralized plan
// fills Gather/Build/Scatter; a distributed plan fills the other five.
type PlanCost struct {
	// Centralized legs.
	Gather  time.Duration // all rank infos funneled into rank 0
	Build   time.Duration // serial aggregation-tree build on rank 0
	Scatter time.Duration // assignments scattered back out

	// Distributed legs.
	Reduce  time.Duration // global {count, active, domain} allreduce
	Sample  time.Duration // Morton splitter-sample allgather
	Route   time.Duration // rank infos routed to bucket owners (alltoallv)
	Refine  time.Duration // collective split refinement + frontier builds
	Deliver time.Duration // leaf assignments and summaries delivered p2p
}

// Total sums the legs.
func (c PlanCost) Total() time.Duration {
	return c.Gather + c.Build + c.Scatter +
		c.Reduce + c.Sample + c.Route + c.Refine + c.Deliver
}

// log2Ceil returns ceil(log2(n)) for n >= 1.
func log2Ceil(n int) int {
	d := 0
	for v := 1; v < n; v <<= 1 {
		d++
	}
	return d
}

// allreduceTime models one small allreduce over n ranks: a reduction up a
// binomial tree plus a broadcast back down.
func (p Profile) allreduceTime(n, bytes int) time.Duration {
	if n <= 1 {
		return 0
	}
	d := log2Ceil(n)
	return time.Duration(2*d)*p.NetLatency +
		seconds(float64(2*d*bytes)/p.NICBandwidth)
}

// ModelCentralizedPlan charges the paper's original phase (a): every rank's
// info record crosses rank 0's NIC, rank 0 builds the whole tree serially,
// and every assignment crosses back out. All three legs are Θ(n) in the
// world size — the planning bottleneck the distributed protocol removes.
func (p Profile) ModelCentralizedPlan(n int, pp PlanParams) PlanCost {
	var c PlanCost
	if n <= 0 {
		return c
	}
	d := time.Duration(log2Ceil(n)) * p.NetLatency
	c.Gather = d + seconds(float64(n*pp.InfoBytes)/p.NICBandwidth)
	c.Build = seconds(float64(n) / p.TreeBuildRate)
	c.Scatter = d + seconds(float64(n*pp.AssignBytes)/p.NICBandwidth)
	return c
}

// ModelDistributedPlan charges the splitter-sampling protocol (DESIGN §15)
// on a real interconnect for a world of n ranks producing files leaves.
//
// The refinement leg models the protocol's critical path: sibling subtrees
// touch disjoint member and owner sets, so an MPI implementation refines
// them on split sub-communicators concurrently and the critical path is one
// root-to-frontier chain — levels = ceil(log2(n/C)) levels, each costing
// RoundsPerNode probe allreduces over a communicator that halves per level.
// That makes the leg O(log^2 n) where the centralized plan is Θ(n). (The
// in-process simulation fabric has no sub-communicators and serializes
// sibling collectives, so measured small-world times sit above this model;
// the model describes the interconnect behavior the paper's systems would
// see.) The sample allgather keeps a Θ(n/stride) wire term — at 4M ranks
// that is ~3 MB through each NIC, well below the refinement leg.
func (p Profile) ModelDistributedPlan(n, files int, pp PlanParams) PlanCost {
	var c PlanCost
	if n <= 0 {
		return c
	}
	if files < 1 {
		files = 1
	}
	d := log2Ceil(n)

	// Global stats allreduce: count + active + domain box (64 B lane).
	c.Reduce = p.allreduceTime(n, 64)

	// Splitter samples: tree-gather the samples to rank 0, broadcast the
	// pack; every rank's NIC sees the full sample set twice.
	samples := (n + pp.SampleStride - 1) / pp.SampleStride
	c.Sample = 2*time.Duration(d)*p.NetLatency +
		seconds(float64(2*samples*pp.SampleBytes)/p.NICBandwidth)

	// Routing: each rank sends its own 60 B record and receives its
	// bucket (~2*stride records by the sample-sort balance bound).
	bucket := 2 * pp.SampleStride
	c.Route = p.NetLatency + seconds(float64(bucket*pp.InfoBytes)/p.NICBandwidth)

	// Refinement critical path, plus the serial build of one frontier
	// subtree on its owner.
	levels := log2Ceil(max(1, n/max(1, pp.ConsolidateMembers)))
	for l := 0; l < levels; l++ {
		sub := max(2, n>>l)
		c.Refine += time.Duration(pp.RoundsPerNode+1) * p.allreduceTime(sub, pp.ProbeBytes)
	}
	c.Refine += seconds(float64(pp.ConsolidateMembers+bucket) / p.TreeBuildRate)

	// Delivery: an owner walks its leaves, sending each member its
	// assignment and each aggregator its leaf summary; a rank aggregates
	// ~files/n leaves.
	perAgg := files/n + 1
	c.Deliver = time.Duration(perAgg+1)*p.NetLatency +
		seconds(float64(perAgg*(pp.InfoBytes+pp.AssignBytes))/p.NICBandwidth)
	return c
}

// PlanCrossover scans power-of-two world sizes in [lo, hi] and returns the
// first at which the distributed plan models faster than the centralized
// one, or 0 if the centralized plan wins everywhere in range. filesPerRank
// holds the output file count proportional to the world, matching the weak
// scaling regime.
func (p Profile) PlanCrossover(pp PlanParams, filesPerRank float64, lo, hi int) int {
	for n := lo; n <= hi; n *= 2 {
		files := max(1, int(filesPerRank*float64(n)))
		if p.ModelDistributedPlan(n, files, pp).Total() < p.ModelCentralizedPlan(n, pp).Total() {
			return n
		}
	}
	return 0
}
