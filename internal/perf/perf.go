// Package perf models the performance-relevant hardware of the paper's two
// evaluation systems — Stampede2 (Lustre, 330 GB/s scratch, 100 Gb/s
// fat-tree, 48-core Skylake nodes) and Summit (IBM Spectrum Scale/GPFS,
// 2.5 TB/s, 184 Gb/s, POWER9) — as analytic cost models over a virtual
// clock.
//
// Since this reproduction has no MPI cluster, the scaling benchmarks run
// the real aggregation algorithms (tree builds, aggregator assignment, leaf
// layouts) on real per-rank particle counts and charge data movement and
// storage to these models. Each model term mirrors a mechanism the paper
// identifies:
//
//   - a metadata server that serializes file creates with contention
//     growing in the number of concurrent creates — this is what degrades
//     file-per-process beyond ~672 (Summit) / ~1536 (Stampede2) ranks;
//   - global coordination and lock contention that throttles single-
//     shared-file I/O as ranks grow;
//   - per-node NIC bandwidth shared by the ranks of a node, charging the
//     aggregation phase's traffic;
//   - an aggregate filesystem bandwidth ceiling shared by concurrent
//     writers, so few-writer configurations underuse the filesystem and
//     many-writer configurations pay metadata costs — the target-file-size
//     tradeoff the paper tunes.
package perf

import "time"

// Profile describes one HPC system for the cost models.
type Profile struct {
	Name string

	// Aggregate filesystem bandwidth (bytes/s).
	PeakWriteBW float64
	PeakReadBW  float64
	// Streaming bandwidth of a single writer/reader process (bytes/s).
	WriterStreamBW float64
	ReaderStreamBW float64

	// Metadata server throughput (file creates or opens per second) and
	// the scale of its contention: effective per-create cost grows by a
	// factor (1 + concurrent/MDSContentionScale).
	FileCreateRate     float64
	FileOpenRate       float64
	MDSContentionScale float64

	// Single-shared-file behavior: achievable aggregate bandwidth on one
	// file, and the global coordination cost per participating rank.
	SharedFileWriteBW float64
	SharedFileReadBW  float64
	SharedSyncPerRank time.Duration
	// HDF5 adds format overhead on top of raw MPI-IO shared writes.
	HDF5OverheadFactor float64

	// Network: per-node injection bandwidth (bytes/s), small-message
	// latency, and ranks per node.
	NICBandwidth float64
	NetLatency   time.Duration
	RanksPerNode int

	// Compute rates for the pipeline's build phases.
	// Aggregation-tree build on rank 0 (rank entries/s).
	TreeBuildRate float64
	// BAT construction on an aggregator (particles/s); the paper notes
	// this phase is compute/memory-bandwidth heavy and faster on POWER9's
	// larger L3.
	BATBuildRate float64
	// Spatial query processing on a read aggregator (particles/s).
	QueryRate float64
}

// Stampede2 returns the model of TACC Stampede2's SKX partition with the
// Lustre scratch filesystem the paper used (stripe count 32, 8 MB stripes).
func Stampede2() Profile {
	return Profile{
		Name:               "stampede2",
		PeakWriteBW:        330e9,
		PeakReadBW:         330e9,
		WriterStreamBW:     700e6,
		ReaderStreamBW:     900e6,
		FileCreateRate:     25_000,
		FileOpenRate:       60_000,
		MDSContentionScale: 1500,
		SharedFileWriteBW:  18e9,
		SharedFileReadBW:   30e9,
		SharedSyncPerRank:  9 * time.Microsecond,
		HDF5OverheadFactor: 1.35,
		NICBandwidth:       100e9 / 8,
		NetLatency:         2 * time.Microsecond,
		RanksPerNode:       48,
		TreeBuildRate:      3e6,
		BATBuildRate:       8e6,
		QueryRate:          60e6,
	}
}

// Summit returns the model of ORNL Summit with its GPFS filesystem. GPFS
// has no Lustre-style central MDS bottleneck of the same severity but pays
// more per-file overhead at extreme file counts; its nodes have fewer,
// faster ranks and a faster NIC.
func Summit() Profile {
	return Profile{
		Name:               "summit",
		PeakWriteBW:        2.5e12,
		PeakReadBW:         2.5e12,
		WriterStreamBW:     1.1e9,
		ReaderStreamBW:     1.4e9,
		FileCreateRate:     18_000,
		FileOpenRate:       50_000,
		MDSContentionScale: 700,
		SharedFileWriteBW:  45e9,
		SharedFileReadBW:   70e9,
		SharedSyncPerRank:  7 * time.Microsecond,
		HDF5OverheadFactor: 1.3,
		NICBandwidth:       184e9 / 8,
		NetLatency:         1500 * time.Nanosecond,
		RanksPerNode:       42,
		TreeBuildRate:      3e6,
		BATBuildRate:       14e6, // larger L3 on POWER9 (paper §VI-A.1)
		QueryRate:          80e6,
	}
}

// seconds converts a float seconds value to a duration.
func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// CreateTime models creating (or opening, with rate = FileOpenRate) n files
// through the metadata server: serialized service with contention that
// grows superlinearly in the number of concurrent requests.
func (p Profile) CreateTime(n int, rate float64) time.Duration {
	if n <= 0 {
		return 0
	}
	base := float64(n) / rate
	contention := 1 + float64(n)/p.MDSContentionScale
	return seconds(base * contention)
}

// WriterBW returns the effective streaming bandwidth of one of nWriters
// concurrent writers, respecting the single-stream limit, the aggregate
// filesystem ceiling, and the per-node NIC share.
func (p Profile) WriterBW(nWriters, writersPerNode int) float64 {
	bw := p.WriterStreamBW
	if agg := p.PeakWriteBW / float64(nWriters); agg < bw {
		bw = agg
	}
	if writersPerNode > 0 {
		if nic := p.NICBandwidth / float64(writersPerNode); nic < bw {
			bw = nic
		}
	}
	return bw
}

// ReaderBW is WriterBW for reads.
func (p Profile) ReaderBW(nReaders, readersPerNode int) float64 {
	bw := p.ReaderStreamBW
	if agg := p.PeakReadBW / float64(nReaders); agg < bw {
		bw = agg
	}
	if readersPerNode > 0 {
		if nic := p.NICBandwidth / float64(readersPerNode); nic < bw {
			bw = nic
		}
	}
	return bw
}

// CollectiveLatency models a gather/scatter-style small-message collective
// over n ranks rooted at one rank: a latency tree plus the root's NIC
// serialization of n small messages.
func (p Profile) CollectiveLatency(n int, bytesPerRank int) time.Duration {
	if n <= 1 {
		return 0
	}
	depth := 0
	for v := n; v > 1; v >>= 1 {
		depth++
	}
	tree := time.Duration(depth) * p.NetLatency
	wire := seconds(float64(n*bytesPerRank) / p.NICBandwidth)
	return tree + wire
}

// NodeOf returns the node index hosting a rank.
func (p Profile) NodeOf(rank int) int {
	if p.RanksPerNode <= 0 {
		return 0
	}
	return rank / p.RanksPerNode
}
