package perf

import (
	"testing"
	"time"
)

// uniformLeaves builds the leaf loads of a uniform weak-scaling run:
// n ranks, bytesPerRank each, aggregated into files of ~targetBytes with
// aggregators spread evenly through the rank space.
func uniformLeaves(n int, bytesPerRank, targetBytes int64, bytesPerParticle int) []LeafLoad {
	ranksPerLeaf := int(targetBytes / bytesPerRank)
	if ranksPerLeaf < 1 {
		ranksPerLeaf = 1
	}
	var leaves []LeafLoad
	for start := 0; start < n; start += ranksPerLeaf {
		end := start + ranksPerLeaf
		if end > n {
			end = n
		}
		l := LeafLoad{Aggregator: len(leaves)} // placeholder, fixed below
		for r := start; r < end; r++ {
			l.Ranks = append(l.Ranks, r)
			l.MemberBytes = append(l.MemberBytes, bytesPerRank)
			l.Bytes += bytesPerRank
		}
		l.Count = l.Bytes / int64(bytesPerParticle)
		leaves = append(leaves, l)
	}
	for i := range leaves {
		leaves[i].Aggregator = i * n / len(leaves)
	}
	return leaves
}

const (
	uniformBytesPerRank = 32768 * 124 // 32k particles of 3xf32+14xf64
	uniformBPP          = 124
)

func bandwidth(totalBytes int64, d time.Duration) float64 {
	return float64(totalBytes) / d.Seconds()
}

func TestWriteModelShapes(t *testing.T) {
	for _, p := range []Profile{Stampede2(), Summit()} {
		var prev float64
		bws := map[int]float64{}
		for _, n := range []int{96, 384, 1536, 6144, 24576} {
			leaves := uniformLeaves(n, uniformBytesPerRank, 64<<20, uniformBPP)
			bd := p.ModelTwoPhaseWrite(n, leaves, 128)
			total := int64(n) * uniformBytesPerRank
			bw := bandwidth(total, bd.Total())
			bws[n] = bw
			t.Logf("%s n=%5d files=%4d bw=%6.1f GB/s breakdown: tree=%v gs=%v xfer=%v bat=%v write=%v meta=%v",
				p.Name, n, len(leaves), bw/1e9, bd.TreeBuild, bd.GatherScatter, bd.Transfer, bd.BATBuild, bd.FileWrite, bd.Metadata)
			if bw < prev*0.9 {
				t.Errorf("%s: two-phase 64MB write bandwidth regressed at %d ranks: %.1f -> %.1f GB/s",
					p.Name, n, prev/1e9, bw/1e9)
			}
			prev = bw
		}
		// Weak scaling must actually scale: 24576 ranks should deliver far
		// more aggregate bandwidth than 96.
		if bws[24576] < 10*bws[96] {
			t.Errorf("%s: two-phase not scaling: %.1f GB/s at 96 vs %.1f at 24576",
				p.Name, bws[96]/1e9, bws[24576]/1e9)
		}
	}
}

func TestWriteModelTargetSizeTradeoff(t *testing.T) {
	// Small target sizes must degrade at scale (many files -> metadata
	// costs), as the paper's 8MB curves do, while large targets keep
	// scaling.
	p := Stampede2()
	n := 24576
	small := uniformLeaves(n, uniformBytesPerRank, 8<<20, uniformBPP)
	big := uniformLeaves(n, uniformBytesPerRank, 256<<20, uniformBPP)
	total := int64(n) * uniformBytesPerRank
	bwSmall := bandwidth(total, p.ModelTwoPhaseWrite(n, small, 128).Total())
	bwBig := bandwidth(total, p.ModelTwoPhaseWrite(n, big, 128).Total())
	if bwBig <= bwSmall {
		t.Errorf("at %d ranks, 256MB target (%.1f GB/s) should beat 8MB (%.1f GB/s)",
			n, bwBig/1e9, bwSmall/1e9)
	}
	// At small scale the small target (more writers) should win.
	n = 96
	small = uniformLeaves(n, uniformBytesPerRank, 8<<20, uniformBPP)
	big = uniformLeaves(n, uniformBytesPerRank, 256<<20, uniformBPP)
	total = int64(n) * uniformBytesPerRank
	bwSmall = bandwidth(total, p.ModelTwoPhaseWrite(n, small, 128).Total())
	bwBig = bandwidth(total, p.ModelTwoPhaseWrite(n, big, 128).Total())
	if bwSmall <= bwBig {
		t.Errorf("at %d ranks, 8MB target (%.1f GB/s) should beat 256MB (%.1f GB/s)",
			n, bwSmall/1e9, bwBig/1e9)
	}
}

func TestImbalanceSlowsWrites(t *testing.T) {
	// The adaptive-vs-AUG effect: at equal file counts, a skewed leaf-size
	// distribution (one hot aggregator) must model slower than a balanced
	// one.
	p := Stampede2()
	n := 1536
	balanced := uniformLeaves(n, uniformBytesPerRank, 32<<20, uniformBPP)
	skewed := uniformLeaves(n, uniformBytesPerRank, 32<<20, uniformBPP)
	// Move half of every other leaf's load onto leaf 0.
	for i := 1; i < len(skewed); i += 2 {
		moved := skewed[i].Bytes / 2
		skewed[i].Bytes -= moved
		skewed[i].Count -= moved / uniformBPP
		skewed[0].Bytes += moved
		skewed[0].Count += moved / uniformBPP
		for j := range skewed[i].MemberBytes {
			skewed[i].MemberBytes[j] /= 2
		}
		for j := range skewed[0].MemberBytes {
			skewed[0].MemberBytes[j] += moved / int64(len(skewed[0].MemberBytes))
		}
	}
	tb := p.ModelTwoPhaseWrite(n, balanced, 128).Total()
	ts := p.ModelTwoPhaseWrite(n, skewed, 128).Total()
	if ts <= tb {
		t.Errorf("skewed leaves (%v) should be slower than balanced (%v)", ts, tb)
	}
}

func TestReadModelShapes(t *testing.T) {
	for _, p := range []Profile{Stampede2(), Summit()} {
		var prev float64
		for _, n := range []int{96, 384, 1536, 6144, 24576} {
			leaves := uniformLeaves(n, uniformBytesPerRank, 64<<20, uniformBPP)
			bd := p.ModelTwoPhaseRead(n, leaves, 128)
			total := int64(n) * uniformBytesPerRank
			bw := bandwidth(total, bd.Total())
			t.Logf("%s n=%5d read bw=%6.1f GB/s breakdown: meta=%v file=%v query=%v xfer=%v",
				p.Name, n, bw/1e9, bd.Metadata, bd.FileRead, bd.Query, bd.Transfer)
			if bw < prev*0.85 {
				t.Errorf("%s: two-phase read bandwidth regressed at %d ranks", p.Name, n)
			}
			prev = bw
		}
	}
}

func TestReadMoreFilesThanRanks(t *testing.T) {
	// Reading a dataset written at larger scale: 64 ranks, 512 files.
	p := Stampede2()
	leaves := uniformLeaves(4096, uniformBytesPerRank, 8<<20, uniformBPP)
	bd := p.ModelTwoPhaseRead(64, leaves, 128)
	if bd.Total() <= 0 {
		t.Fatal("zero read time")
	}
}

func TestCreateTimeContention(t *testing.T) {
	p := Stampede2()
	t1 := p.CreateTime(1000, p.FileCreateRate)
	t2 := p.CreateTime(2000, p.FileCreateRate)
	// Superlinear: doubling files more than doubles time.
	if t2 < 2*t1 {
		t.Errorf("create contention not superlinear: %v vs %v", t1, t2)
	}
	if p.CreateTime(0, p.FileCreateRate) != 0 {
		t.Error("zero files should cost nothing")
	}
}

func TestWriterBWCaps(t *testing.T) {
	p := Stampede2()
	// Single writer: stream-limited.
	if bw := p.WriterBW(1, 1); bw != p.WriterStreamBW {
		t.Errorf("single writer bw = %g", bw)
	}
	// Very many writers: aggregate-limited.
	if bw := p.WriterBW(1_000_000, 1); bw >= p.WriterStreamBW {
		t.Errorf("mass writers not aggregate-capped: %g", bw)
	}
	// Node-sharing cap.
	many := p.WriterBW(48, 48)
	few := p.WriterBW(48, 1)
	if many > few {
		t.Errorf("node sharing should not increase bw: %g > %g", many, few)
	}
}

func TestEmptyLeaves(t *testing.T) {
	p := Summit()
	if p.ModelTwoPhaseWrite(100, nil, 128).Total() != 0 {
		t.Error("no leaves should cost nothing")
	}
	if p.ModelTwoPhaseRead(100, nil, 128).Total() != 0 {
		t.Error("no leaves should cost nothing")
	}
}

func TestCollectiveLatency(t *testing.T) {
	p := Stampede2()
	if p.CollectiveLatency(1, 100) != 0 {
		t.Error("single rank collective should be free")
	}
	small := p.CollectiveLatency(64, 40)
	big := p.CollectiveLatency(65536, 40)
	if big <= small {
		t.Error("collectives should grow with rank count")
	}
}
