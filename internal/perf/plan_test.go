package perf

import (
	"math"
	"testing"
)

// TestPlanModelShapes pins the asymptotic story the decentralization is
// built on: the centralized plan grows at least linearly with the world,
// the distributed plan sublinearly, and a crossover exists within the
// extreme-scale range.
func TestPlanModelShapes(t *testing.T) {
	for _, p := range []Profile{Stampede2(), Summit()} {
		pp := DefaultPlanParams()

		// Centralized: doubling the world must at least double the time
		// (Θ(n) legs) once past tiny sizes.
		for n := 1 << 10; n <= 1<<21; n <<= 1 {
			a := p.ModelCentralizedPlan(n, pp).Total()
			b := p.ModelCentralizedPlan(2*n, pp).Total()
			if b < a*19/10 {
				t.Errorf("%s: centralized plan grew %v -> %v from %d to %d ranks (sublinear)",
					p.Name, a, b, n, 2*n)
			}
		}

		// Distributed: log-log slope over the >=1M segment must stay well
		// below linear.
		d1 := p.ModelDistributedPlan(1<<20, 1<<18, pp).Total()
		d4 := p.ModelDistributedPlan(1<<22, 1<<20, pp).Total()
		slope := math.Log2(float64(d4)/float64(d1)) / 2
		if slope > 0.6 {
			t.Errorf("%s: distributed plan slope %.2f over 1M->4M ranks, want <= 0.6", p.Name, slope)
		}

		// Crossover: somewhere between 1k and 4M ranks the distributed
		// plan must win, and keep winning from there on.
		x := p.PlanCrossover(pp, 0.25, 1<<10, 1<<22)
		if x == 0 {
			t.Fatalf("%s: no plan crossover found up to 4M ranks", p.Name)
		}
		for n := x; n <= 1<<22; n *= 2 {
			files := max(1, n/4)
			if p.ModelDistributedPlan(n, files, pp).Total() >= p.ModelCentralizedPlan(n, pp).Total() {
				t.Errorf("%s: distributed plan loses again at %d ranks past crossover %d", p.Name, n, x)
			}
		}
		t.Logf("%s: plan crossover at %d ranks (centralized %v vs distributed %v at 4M)",
			p.Name, x, p.ModelCentralizedPlan(1<<22, pp).Total(),
			p.ModelDistributedPlan(1<<22, 1<<20, pp).Total())
	}
}

// TestPlanModelEdgeCases: degenerate worlds must not panic or go negative.
func TestPlanModelEdgeCases(t *testing.T) {
	p := Stampede2()
	pp := DefaultPlanParams()
	for _, n := range []int{0, 1, 2, 3} {
		c := p.ModelCentralizedPlan(n, pp)
		d := p.ModelDistributedPlan(n, 0, pp)
		if c.Total() < 0 || d.Total() < 0 {
			t.Fatalf("n=%d: negative plan cost (%v, %v)", n, c.Total(), d.Total())
		}
	}
	if got := p.ModelCentralizedPlan(0, pp).Total(); got != 0 {
		t.Errorf("empty world centralized cost = %v", got)
	}
}
