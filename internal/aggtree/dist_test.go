package aggtree

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"libbat/internal/fabric"
	"libbat/internal/geom"
)

// distRanks generates one seeded rank layout of the given flavor. Every
// flavor the centralized build is known to handle — uniform grids, skewed
// counts, spatial clusters, coincident bounds, sparse active sets — must
// round-trip through the distributed build identically.
func distRanks(flavor string, size int, rng *rand.Rand) []RankInfo {
	ranks := make([]RankInfo, size)
	for r := range ranks {
		ranks[r].Rank = r
		switch flavor {
		case "uniform":
			// Regular slab decomposition along X, equal counts.
			lo := float64(r) / float64(size)
			hi := float64(r+1) / float64(size)
			ranks[r].Bounds = geom.NewBox(geom.V3(lo, 0, 0), geom.V3(hi, 1, 1))
			ranks[r].Count = 5000
		case "skewed":
			// Random boxes with power-law counts; some ranks empty.
			c := geom.V3(rng.Float64(), rng.Float64(), rng.Float64())
			w := rng.Float64() * 0.3
			ranks[r].Bounds = geom.NewBox(
				geom.V3(c.X-w, c.Y-w, c.Z-w), geom.V3(c.X+w, c.Y+w, c.Z+w))
			if rng.Intn(5) == 0 {
				ranks[r].Count = 0
			} else {
				ranks[r].Count = int64(1 + rng.Intn(100)*rng.Intn(100)*10)
			}
		case "clustered":
			// Two dense clusters far apart plus scattered outliers.
			var c geom.Vec3
			switch rng.Intn(3) {
			case 0:
				c = geom.V3(0.1+rng.Float64()*0.05, 0.1, 0.1)
			case 1:
				c = geom.V3(0.9, 0.9-rng.Float64()*0.05, 0.9)
			default:
				c = geom.V3(rng.Float64(), rng.Float64(), rng.Float64())
			}
			w := 0.01 + rng.Float64()*0.02
			ranks[r].Bounds = geom.NewBox(
				geom.V3(c.X-w, c.Y-w, c.Z-w), geom.V3(c.X+w, c.Y+w, c.Z+w))
			ranks[r].Count = int64(1000 + rng.Intn(9000))
		case "coincident":
			// Every rank shares identical bounds: no split can separate
			// them, forcing the overfull-root path.
			ranks[r].Bounds = geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
			ranks[r].Count = 3000
		}
	}
	return ranks
}

// runDistributed executes DistributedBuild across a simulated fabric and
// returns every rank's plan plus the assembled tree from rank 0.
func runDistributed(t *testing.T, ranks []RankInfo, cfg DistConfig) ([]*DistPlan, *Tree) {
	t.Helper()
	plans := make([]*DistPlan, len(ranks))
	var tree *Tree
	err := fabric.Run(len(ranks), func(c *fabric.Comm) error {
		p, err := DistributedBuild(c, ranks[c.Rank()], cfg)
		if err != nil {
			return err
		}
		plans[c.Rank()] = p
		at, err := p.AssembleTree(c)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			tree = at
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return plans, tree
}

// checkEquivalence asserts the distributed plan is byte-equivalent to the
// centralized oracle: identical leaves (bounds, members, counts, overfull
// flags, aggregators), identical per-rank assignments, identical assembled
// tree structure.
func checkEquivalence(t *testing.T, label string, ranks []RankInfo, cfg DistConfig) {
	t.Helper()
	oracle, err := Build(ranks, cfg.Config)
	if err != nil {
		t.Fatalf("%s: oracle: %v", label, err)
	}
	oracleAgg := AssignAggregators(oracle.Leaves, len(ranks))

	plans, tree := runDistributed(t, ranks, cfg)

	if !reflect.DeepEqual(tree, oracle) {
		t.Fatalf("%s: assembled tree differs from oracle\n oracle: %d nodes %d leaves\n   dist: %d nodes %d leaves",
			label, len(oracle.Nodes), len(oracle.Leaves), len(tree.Nodes), len(tree.Leaves))
	}
	for r, p := range plans {
		if p.NumLeaves != oracle.NumLeaves() {
			t.Fatalf("%s: rank %d NumLeaves = %d, oracle %d", label, r, p.NumLeaves, oracle.NumLeaves())
		}
		if p.TotalCount != oracle.TotalCount() {
			t.Fatalf("%s: rank %d TotalCount = %d, oracle %d", label, r, p.TotalCount, oracle.TotalCount())
		}
		wantLeaf := oracle.LeafOfRank(r)
		if p.OwnLeaf != wantLeaf {
			t.Fatalf("%s: rank %d OwnLeaf = %d, oracle %d", label, r, p.OwnLeaf, wantLeaf)
		}
		if p.OwnAggregator != oracleAgg[r] {
			t.Fatalf("%s: rank %d OwnAggregator = %d, oracle %d", label, r, p.OwnAggregator, oracleAgg[r])
		}
		// This rank's aggregated leaves must be exactly the oracle leaves
		// assigned to it, with matching sender lists and counts.
		var want []AggLeaf
		for i, l := range oracle.Leaves {
			if l.Aggregator != r {
				continue
			}
			counts := make([]int64, len(l.Ranks))
			for j, rr := range l.Ranks {
				counts[j] = ranks[rr].Count
			}
			want = append(want, AggLeaf{
				Index: i, Bounds: l.Bounds, Count: l.Count, Overfull: l.Overfull,
				Senders: append([]int(nil), l.Ranks...), Counts: counts,
			})
		}
		if len(p.AggLeaves) != len(want) {
			t.Fatalf("%s: rank %d aggregates %d leaves, oracle %d", label, r, len(p.AggLeaves), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(p.AggLeaves[i], want[i]) {
				t.Fatalf("%s: rank %d agg leaf %d differs:\n got %+v\nwant %+v",
					label, r, i, p.AggLeaves[i], want[i])
			}
		}
	}
}

// TestDistributedEquivalence is the seeded property test of the acceptance
// criteria: across world sizes 1..64, bounds distributions, sample strides,
// owner counts, and consolidation thresholds, DistributedBuild must produce
// exactly the centralized plan.
func TestDistributedEquivalence(t *testing.T) {
	sizes := []int{1, 2, 3, 5, 8, 13, 16, 32, 64}
	flavors := []string{"uniform", "skewed", "clustered", "coincident"}
	for _, size := range sizes {
		for _, flavor := range flavors {
			for seed := int64(0); seed < 2; seed++ {
				rng := rand.New(rand.NewSource(seed*7919 + int64(size)))
				ranks := distRanks(flavor, size, rng)
				// Target sized to yield a handful of leaves at this world
				// size, exercising both split and leaf paths.
				target := int64(size) * 5000 * bpp / 7
				if target < 1 {
					target = 1
				}
				cfg := DistConfig{Config: DefaultConfig(target, bpp)}
				// Vary the distribution-only knobs with the seed; none may
				// change the resulting plan.
				cfg.SampleStride = []int{1, 4, 16}[int(seed)%3]
				cfg.Owners = []int{0, 3}[int(seed)%2]
				cfg.ConsolidateMembers = []int{1, 8}[int(seed)%2]
				label := fmt.Sprintf("size=%d flavor=%s seed=%d", size, flavor, seed)
				checkEquivalence(t, label, ranks, cfg)
			}
		}
	}
}

// TestDistributedEquivalenceConfigVariants covers the Config switches that
// change the oracle's own decisions: all-axes split search, no overfull
// leaves, tiny and huge targets.
func TestDistributedEquivalenceConfigVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ranks := distRanks("skewed", 24, rng)
	base := DefaultConfig(200*bpp, bpp)

	allAxes := base
	allAxes.BestSplitAllAxes = true
	noOverfull := base
	noOverfull.AllowOverfull = false
	tiny := base
	tiny.TargetFileSize = 1
	huge := base
	huge.TargetFileSize = 1 << 50

	for name, cc := range map[string]Config{
		"all-axes": allAxes, "no-overfull": noOverfull, "tiny": tiny, "huge": huge,
	} {
		cfg := DistConfig{Config: cc, SampleStride: 4, ConsolidateMembers: 2}
		checkEquivalence(t, name, ranks, cfg)
	}
}

// TestDistributedEmptyWorld: a world with no particles anywhere must yield
// an empty plan on every rank, like the centralized build.
func TestDistributedEmptyWorld(t *testing.T) {
	ranks := distRanks("uniform", 8, rand.New(rand.NewSource(1)))
	for r := range ranks {
		ranks[r].Count = 0
	}
	plans, tree := runDistributed(t, ranks, DefaultDistConfig(1<<20, bpp))
	if tree.NumLeaves() != 0 {
		t.Fatalf("empty world produced %d leaves", tree.NumLeaves())
	}
	for r, p := range plans {
		if p.NumLeaves != 0 || p.OwnLeaf != -1 || p.OwnAggregator != -1 || len(p.AggLeaves) != 0 {
			t.Fatalf("rank %d: non-empty plan %+v", r, p)
		}
	}
}

// TestDistributedValidatesConfig mirrors TestBuildValidatesConfig.
func TestDistributedValidatesConfig(t *testing.T) {
	err := fabric.Run(2, func(c *fabric.Comm) error {
		own := RankInfo{Rank: c.Rank(), Bounds: geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1)), Count: 10}
		if _, err := DistributedBuild(c, own, DistConfig{Config: Config{TargetFileSize: 0, BytesPerParticle: bpp}}); err == nil {
			return fmt.Errorf("zero target should error")
		}
		if _, err := DistributedBuild(c, own, DistConfig{Config: Config{TargetFileSize: 100, BytesPerParticle: 0}}); err == nil {
			return fmt.Errorf("zero bpp should error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDistributedPeakState asserts the point of the whole exercise: no
// rank's planning state approaches O(P). With P ranks spread over P owners
// the per-rank peak must stay within a small constant of P/owners plus the
// sample set — far below the full world — except for the documented
// consolidation case where a leaf inherently concentrates its members on
// its future owner.
func TestDistributedPeakState(t *testing.T) {
	const size = 64
	rng := rand.New(rand.NewSource(9))
	ranks := distRanks("uniform", size, rng)
	cfg := DistConfig{
		Config:             DefaultConfig(2*5000*bpp, bpp), // ~2 ranks per leaf
		SampleStride:       4,
		ConsolidateMembers: 4,
	}
	plans, _ := runDistributed(t, ranks, cfg)
	samples := plans[0].Stats.Samples
	if samples == 0 {
		t.Fatal("no samples recorded")
	}
	// Sample-sort theory bounds a bucket by ~2s members per sample stride
	// s; consolidation can then add at most the members of one leaf-bound
	// subtree (<= ConsolidateMembers or one leaf's ranks). Assert a
	// generous combined bound that is still far below P.
	bound := 2*cfg.SampleStride + samples + 8*cfg.ConsolidateMembers
	if bound >= size {
		t.Fatalf("test misconfigured: bound %d not below world %d", bound, size)
	}
	for r, p := range plans {
		if p.Stats.PeakMembers > bound {
			t.Errorf("rank %d peak planning state %d exceeds O(P/owners + samples) bound %d",
				r, p.Stats.PeakMembers, bound)
		}
	}
}
