// Package aggtree implements the paper's central contribution: the adaptive
// Aggregation Tree (§III-A). Rank 0 builds a k-d tree over the ranks'
// spatial bounds so that each leaf holds a similar number of particles.
// Splits are restricted to rank boundaries (a rank's data is never divided
// between aggregators), the split minimizing the imbalance cost
// c = |0.5 - n_l/(n_l+n_r)| is chosen, and leaves are created when a node's
// data falls below the target file size — optionally allowing "overfull"
// leaves when no acceptable split exists. Each leaf is assigned to an
// aggregator rank, spread evenly through the rank space to even out network
// utilization (paper [39]).
package aggtree

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"libbat/internal/geom"
)

// RankInfo describes one rank's contribution to a write: its spatial bounds
// in the simulation domain and the number of particles it owns.
type RankInfo struct {
	Rank   int
	Bounds geom.Box
	Count  int64
}

// Config controls the tree build.
type Config struct {
	// TargetFileSize is the desired output file size in bytes; a node whose
	// data fits under it becomes a leaf. This is the paper's main tunable:
	// it trades file count against aggregation network traffic.
	TargetFileSize int64
	// BytesPerParticle converts particle counts to data sizes.
	BytesPerParticle int
	// AllowOverfull enables overfull leaves: when the best split's balance
	// ratio is at least SplitCostThreshold and the node's data is within
	// OverfullFactor of the target, a leaf is created instead of forcing a
	// badly imbalanced split.
	AllowOverfull bool
	// OverfullFactor bounds overfull leaves to OverfullFactor*TargetFileSize
	// (paper evaluation uses 1.5).
	OverfullFactor float64
	// SplitCostThreshold is the balance ratio max(n_l,n_r)/min(n_l,n_r) at
	// or above which a split is considered bad (paper evaluation uses 4).
	SplitCostThreshold float64
	// BestSplitAllAxes searches all three axes for the lowest-cost split
	// instead of only the longest axis (paper §III-A option).
	BestSplitAllAxes bool
	// Parallel enables the top-down parallel build (a task per right
	// subtree, as the paper does with TBB).
	Parallel bool
}

// DefaultConfig returns the configuration used by the paper's evaluation:
// overfull leaves up to 1.5x the target when the best split has a balance
// ratio of 4 or higher.
func DefaultConfig(targetFileSize int64, bytesPerParticle int) Config {
	return Config{
		TargetFileSize:     targetFileSize,
		BytesPerParticle:   bytesPerParticle,
		AllowOverfull:      true,
		OverfullFactor:     1.5,
		SplitCostThreshold: 4,
		Parallel:           true,
	}
}

// Leaf is a set of ranks aggregated into one output file.
type Leaf struct {
	// Bounds is the union of the member ranks' bounds.
	Bounds geom.Box
	// Ranks lists the member ranks (ascending).
	Ranks []int
	// Count is the total number of particles in the leaf.
	Count int64
	// Aggregator is the rank assigned to receive and write this leaf.
	Aggregator int
	// Overfull records whether the leaf was created by the overfull rule.
	Overfull bool
}

// Bytes returns the leaf's data size under the given schema.
func (l Leaf) Bytes(bytesPerParticle int) int64 {
	return l.Count * int64(bytesPerParticle)
}

// Node is an inner node of the flattened aggregation tree. Children with
// value >= 0 index Nodes; children < 0 encode ^leafIndex.
type Node struct {
	Axis        geom.Axis
	Pos         float64
	Bounds      geom.Box
	Left, Right int32
	Count       int64
}

// LeafRef encodes a leaf index as a child reference.
func LeafRef(i int) int32 { return int32(^i) }

// IsLeafRef reports whether a child reference points at a leaf, returning
// the leaf index.
func IsLeafRef(c int32) (int, bool) {
	if c < 0 {
		return int(^c), true
	}
	return 0, false
}

// Tree is the flattened adaptive aggregation tree. Node 0 is the root when
// Nodes is non-empty; a tree with a single leaf has no inner nodes.
type Tree struct {
	Nodes  []Node
	Leaves []Leaf
	// Domain is the union of all particle-owning ranks' bounds.
	Domain geom.Box
}

// buildNode is the pointer-based node used during construction.
type buildNode struct {
	axis        geom.Axis
	pos         float64
	bounds      geom.Box
	count       int64
	left, right *buildNode
	leaf        *Leaf
}

// Build constructs the aggregation tree from per-rank particle counts and
// bounds. Ranks with zero particles are excluded (their transfer is skipped
// during aggregation). The returned tree has at least one leaf if any rank
// has particles.
func Build(ranks []RankInfo, cfg Config) (*Tree, error) {
	if cfg.TargetFileSize <= 0 {
		return nil, fmt.Errorf("aggtree: target file size must be positive, got %d", cfg.TargetFileSize)
	}
	if cfg.BytesPerParticle <= 0 {
		return nil, fmt.Errorf("aggtree: bytes per particle must be positive, got %d", cfg.BytesPerParticle)
	}
	active := make([]RankInfo, 0, len(ranks))
	domain := geom.EmptyBox()
	for _, r := range ranks {
		if r.Count > 0 {
			active = append(active, r)
			domain = domain.Union(r.Bounds)
		}
	}
	t := &Tree{Domain: domain}
	if len(active) == 0 {
		return t, nil
	}
	root := buildRec(active, cfg, 0)
	t.flatten(root)
	return t, nil
}

// totalCount sums the particle counts of a rank set.
func totalCount(ranks []RankInfo) int64 {
	var n int64
	for _, r := range ranks {
		n += r.Count
	}
	return n
}

// unionBounds returns the union of the ranks' bounds.
func unionBounds(ranks []RankInfo) geom.Box {
	b := geom.EmptyBox()
	for _, r := range ranks {
		b = b.Union(r.Bounds)
	}
	return b
}

// splitResult captures one evaluated candidate split.
type splitResult struct {
	axis   geom.Axis
	pos    float64
	cost   float64 // |0.5 - n_l/(n_l+n_r)|
	ratio  float64 // max(n_l,n_r)/min(n_l,n_r); +Inf when a side is empty
	nl, nr int64
	ok     bool
}

// evaluateAxis finds the best candidate split along one axis. Candidates are
// the unique edges of each rank's bounds along the axis; a rank falls left
// when its center is below the split position, so no rank's data is divided.
func evaluateAxis(ranks []RankInfo, axis geom.Axis) splitResult {
	edges := make([]float64, 0, 2*len(ranks))
	for _, r := range ranks {
		edges = append(edges, r.Bounds.Lower.Component(axis), r.Bounds.Upper.Component(axis))
	}
	sort.Float64s(edges)
	// Deduplicate.
	uniq := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			uniq = append(uniq, e)
		}
	}
	best := splitResult{axis: axis, cost: math.Inf(1), ratio: math.Inf(1)}
	for _, pos := range uniq {
		var nl, nr int64
		var leftRanks, rightRanks int
		for _, r := range ranks {
			if r.Bounds.Center().Component(axis) < pos {
				nl += r.Count
				leftRanks++
			} else {
				nr += r.Count
				rightRanks++
			}
		}
		if leftRanks == 0 || rightRanks == 0 {
			continue // split separates nothing
		}
		cost := math.Abs(0.5 - float64(nl)/float64(nl+nr))
		if cost < best.cost {
			ratio := math.Inf(1)
			if nl > 0 && nr > 0 {
				ratio = float64(max(nl, nr)) / float64(min(nl, nr))
			}
			best = splitResult{axis: axis, pos: pos, cost: cost, ratio: ratio, nl: nl, nr: nr, ok: true}
		}
	}
	return best
}

// parallelDepth bounds goroutine spawning during the parallel build.
const parallelDepth = 6

func buildRec(ranks []RankInfo, cfg Config, depth int) *buildNode {
	count := totalCount(ranks)
	bytes := count * int64(cfg.BytesPerParticle)
	bounds := unionBounds(ranks)
	makeLeaf := func(overfull bool) *buildNode {
		ids := make([]int, len(ranks))
		for i, r := range ranks {
			ids[i] = r.Rank
		}
		sort.Ints(ids)
		return &buildNode{
			bounds: bounds,
			count:  count,
			leaf:   &Leaf{Bounds: bounds, Ranks: ids, Count: count, Overfull: overfull},
		}
	}
	if bytes <= cfg.TargetFileSize || len(ranks) == 1 {
		return makeLeaf(false)
	}
	// Find the best split: longest axis by default, all axes optionally.
	// If the preferred axis has no separating rank edge (e.g. a 1D rank
	// decomposition whose longest aggregate axis is unpartitioned), fall
	// back to the remaining axes rather than giving up.
	best := evaluateAxis(ranks, bounds.LongestAxis())
	for _, axis := range []geom.Axis{geom.X, geom.Y, geom.Z} {
		if axis == bounds.LongestAxis() {
			continue
		}
		if !cfg.BestSplitAllAxes && best.ok {
			break
		}
		if s := evaluateAxis(ranks, axis); s.ok && (!best.ok || s.cost < best.cost) {
			best = s
		}
	}
	if !best.ok {
		// No split separates the ranks (e.g. identical bounds); aggregate
		// them together even though the target is exceeded.
		return makeLeaf(true)
	}
	// Overfull rule: avoid forcing an extremely imbalanced split when the
	// node is already close to the target size.
	if cfg.AllowOverfull &&
		best.ratio >= cfg.SplitCostThreshold &&
		float64(bytes) <= cfg.OverfullFactor*float64(cfg.TargetFileSize) {
		return makeLeaf(true)
	}
	var left, right []RankInfo
	for _, r := range ranks {
		if r.Bounds.Center().Component(best.axis) < best.pos {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	n := &buildNode{axis: best.axis, pos: best.pos, bounds: bounds, count: count}
	if cfg.Parallel && depth < parallelDepth {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.right = buildRec(right, cfg, depth+1)
		}()
		n.left = buildRec(left, cfg, depth+1)
		wg.Wait()
	} else {
		n.left = buildRec(left, cfg, depth+1)
		n.right = buildRec(right, cfg, depth+1)
	}
	return n
}

// flatten converts the pointer tree to the index-based representation,
// assigning leaf indices in depth-first (left-to-right spatial) order.
func (t *Tree) flatten(root *buildNode) {
	if root.leaf != nil {
		t.Leaves = append(t.Leaves, *root.leaf)
		return
	}
	// Depth-first layout with the root at index 0.
	var rec func(n *buildNode) int32
	rec = func(n *buildNode) int32 {
		if n.leaf != nil {
			idx := len(t.Leaves)
			t.Leaves = append(t.Leaves, *n.leaf)
			return LeafRef(idx)
		}
		me := len(t.Nodes)
		t.Nodes = append(t.Nodes, Node{Axis: n.axis, Pos: n.pos, Bounds: n.bounds, Count: n.count})
		l := rec(n.left)
		r := rec(n.right)
		t.Nodes[me].Left = l
		t.Nodes[me].Right = r
		return int32(me)
	}
	rec(root)
}

// NumLeaves returns the number of output files the tree describes.
func (t *Tree) NumLeaves() int { return len(t.Leaves) }

// TotalCount returns the total number of particles across all leaves.
func (t *Tree) TotalCount() int64 {
	var n int64
	for _, l := range t.Leaves {
		n += l.Count
	}
	return n
}

// AssignAggregators assigns each leaf to an aggregator rank, distributing
// assignments evenly across the rank space [0, worldSize), and returns the
// per-rank view: agg[r] is the aggregator rank r must send its data to, or
// -1 if rank r owns no particles.
func (t *Tree) AssignAggregators(worldSize int) []int {
	return AssignAggregators(t.Leaves, worldSize)
}

// AssignAggregators assigns each leaf in the slice to an aggregator rank,
// spreading assignments evenly across the rank space (shared by the
// adaptive tree and the AUG baseline so both are compared under the same
// aggregator placement policy). It mutates the leaves' Aggregator fields
// and returns the per-rank aggregator view (-1 for ranks without
// particles).
func AssignAggregators(leaves []Leaf, worldSize int) []int {
	agg := make([]int, worldSize)
	for i := range agg {
		agg[i] = -1
	}
	n := len(leaves)
	for i := range leaves {
		// Spread leaf i's aggregator evenly through the rank space.
		leaves[i].Aggregator = i * worldSize / n
		for _, r := range leaves[i].Ranks {
			agg[r] = leaves[i].Aggregator
		}
	}
	return agg
}

// QueryOverlapping appends to out the indices of all leaves whose bounds
// overlap the query box, and returns out.
func (t *Tree) QueryOverlapping(q geom.Box, out []int) []int {
	if len(t.Leaves) == 0 {
		return out
	}
	if len(t.Nodes) == 0 {
		if t.Leaves[0].Bounds.Overlaps(q) {
			out = append(out, 0)
		}
		return out
	}
	var rec func(ref int32)
	rec = func(ref int32) {
		if li, ok := IsLeafRef(ref); ok {
			if t.Leaves[li].Bounds.Overlaps(q) {
				out = append(out, li)
			}
			return
		}
		n := &t.Nodes[ref]
		if !n.Bounds.Overlaps(q) {
			return
		}
		rec(n.Left)
		rec(n.Right)
	}
	rec(0)
	return out
}

// LeafOfRank returns the index of the leaf containing the given rank, or -1.
func (t *Tree) LeafOfRank(rank int) int {
	for i, l := range t.Leaves {
		for _, r := range l.Ranks {
			if r == rank {
				return i
			}
		}
	}
	return -1
}

// SizeStats summarizes leaf data sizes for the §VI-A.2 file statistics.
type SizeStats struct {
	NumFiles int
	MeanB    float64
	StddevB  float64
	MaxB     int64
	MinB     int64
}

// LeafSizeStats computes output file size statistics under the schema.
func LeafSizeStats(leaves []Leaf, bytesPerParticle int) SizeStats {
	s := SizeStats{NumFiles: len(leaves)}
	if len(leaves) == 0 {
		return s
	}
	s.MinB = math.MaxInt64
	var sum, sumSq float64
	for _, l := range leaves {
		b := l.Bytes(bytesPerParticle)
		sum += float64(b)
		sumSq += float64(b) * float64(b)
		if b > s.MaxB {
			s.MaxB = b
		}
		if b < s.MinB {
			s.MinB = b
		}
	}
	n := float64(len(leaves))
	s.MeanB = sum / n
	variance := sumSq/n - s.MeanB*s.MeanB
	if variance > 0 {
		s.StddevB = math.Sqrt(variance)
	}
	return s
}
