package aggtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"libbat/internal/geom"
)

// gridRanks builds an nx x ny x nz grid of ranks over [0,1]^3 with counts
// produced by the given function of the cell index.
func gridRanks(nx, ny, nz int, count func(ix, iy, iz int) int64) []RankInfo {
	ranks := make([]RankInfo, 0, nx*ny*nz)
	id := 0
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				lo := geom.V3(float64(ix)/float64(nx), float64(iy)/float64(ny), float64(iz)/float64(nz))
				hi := geom.V3(float64(ix+1)/float64(nx), float64(iy+1)/float64(ny), float64(iz+1)/float64(nz))
				ranks = append(ranks, RankInfo{Rank: id, Bounds: geom.NewBox(lo, hi), Count: count(ix, iy, iz)})
				id++
			}
		}
	}
	return ranks
}

const bpp = 12 + 4*8 // 3xf32 + 4xf64

func TestBuildValidatesConfig(t *testing.T) {
	ranks := gridRanks(2, 2, 2, func(_, _, _ int) int64 { return 10 })
	if _, err := Build(ranks, Config{TargetFileSize: 0, BytesPerParticle: bpp}); err == nil {
		t.Error("zero target should error")
	}
	if _, err := Build(ranks, Config{TargetFileSize: 100, BytesPerParticle: 0}); err == nil {
		t.Error("zero bpp should error")
	}
}

func TestBuildEmpty(t *testing.T) {
	tr, err := Build(nil, DefaultConfig(1<<20, bpp))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 0 {
		t.Errorf("empty build has %d leaves", tr.NumLeaves())
	}
	// All-empty ranks behave like no ranks.
	ranks := gridRanks(2, 2, 2, func(_, _, _ int) int64 { return 0 })
	tr, err = Build(ranks, DefaultConfig(1<<20, bpp))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 0 {
		t.Errorf("all-empty build has %d leaves", tr.NumLeaves())
	}
}

func TestBuildSingleLeafWhenUnderTarget(t *testing.T) {
	ranks := gridRanks(4, 4, 4, func(_, _, _ int) int64 { return 100 })
	tr, err := Build(ranks, DefaultConfig(1<<30, bpp))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 {
		t.Fatalf("want 1 leaf, got %d", tr.NumLeaves())
	}
	if got := tr.Leaves[0].Count; got != 64*100 {
		t.Errorf("leaf count = %d", got)
	}
	if len(tr.Leaves[0].Ranks) != 64 {
		t.Errorf("leaf ranks = %d", len(tr.Leaves[0].Ranks))
	}
}

// checkPartition verifies every particle-owning rank appears in exactly one
// leaf and total counts are preserved.
func checkPartition(t *testing.T, ranks []RankInfo, tr *Tree) {
	t.Helper()
	seen := map[int]int{}
	for li, l := range tr.Leaves {
		var n int64
		for _, r := range l.Ranks {
			if prev, dup := seen[r]; dup {
				t.Fatalf("rank %d in leaves %d and %d", r, prev, li)
			}
			seen[r] = li
			n += ranks[r].Count
		}
		if n != l.Count {
			t.Fatalf("leaf %d count %d != sum of member counts %d", li, l.Count, n)
		}
		// Leaf bounds contain member bounds.
		for _, r := range l.Ranks {
			if !l.Bounds.ContainsBox(ranks[r].Bounds) {
				t.Fatalf("leaf %d bounds %v do not contain rank %d bounds %v", li, l.Bounds, r, ranks[r].Bounds)
			}
		}
	}
	var want int64
	for _, r := range ranks {
		if r.Count > 0 {
			if _, ok := seen[r.Rank]; !ok {
				t.Fatalf("rank %d with %d particles missing from tree", r.Rank, r.Count)
			}
			want += r.Count
		} else if _, ok := seen[r.Rank]; ok {
			t.Fatalf("empty rank %d assigned to a leaf", r.Rank)
		}
	}
	if got := tr.TotalCount(); got != want {
		t.Fatalf("TotalCount = %d, want %d", got, want)
	}
}

func TestBuildUniformPartition(t *testing.T) {
	ranks := gridRanks(4, 4, 4, func(_, _, _ int) int64 { return 1000 })
	target := int64(8 * 1000 * bpp) // ~8 ranks per leaf
	tr, err := Build(ranks, DefaultConfig(target, bpp))
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, ranks, tr)
	if tr.NumLeaves() < 4 || tr.NumLeaves() > 16 {
		t.Errorf("unexpected leaf count %d for 8:1 aggregation of 64 ranks", tr.NumLeaves())
	}
	// Uniform distribution: every leaf should be within the overfull bound.
	for i, l := range tr.Leaves {
		if float64(l.Bytes(bpp)) > 1.5*float64(target) {
			t.Errorf("leaf %d size %d exceeds overfull bound", i, l.Bytes(bpp))
		}
	}
}

func TestAdaptiveBalancesNonuniform(t *testing.T) {
	// Dense corner: counts vary by 100x across the domain. The adaptive
	// tree should still produce leaves of similar size.
	ranks := gridRanks(8, 8, 1, func(ix, iy, _ int) int64 {
		if ix < 2 && iy < 2 {
			return 10000
		}
		return 100
	})
	var total int64
	for _, r := range ranks {
		total += r.Count
	}
	target := total * int64(bpp) / 8 // aim for ~8 files
	tr, err := Build(ranks, DefaultConfig(target, bpp))
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, ranks, tr)
	stats := LeafSizeStats(tr.Leaves, bpp)
	if stats.NumFiles < 2 {
		t.Fatalf("expected multiple leaves, got %d", stats.NumFiles)
	}
	// Adaptivity: the coefficient of variation should be modest even
	// though per-rank counts vary 100x.
	cv := stats.StddevB / stats.MeanB
	if cv > 0.8 {
		t.Errorf("leaf sizes too imbalanced: cv=%.2f stats=%+v", cv, stats)
	}
}

func TestSingleRankOverTarget(t *testing.T) {
	// A single rank exceeding the target must become its own leaf; rank
	// data is never partitioned.
	ranks := gridRanks(2, 1, 1, func(ix, _, _ int) int64 {
		if ix == 0 {
			return 1000000
		}
		return 10
	})
	tr, err := Build(ranks, DefaultConfig(1000, bpp))
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, ranks, tr)
	if tr.NumLeaves() != 2 {
		t.Fatalf("want 2 leaves, got %d", tr.NumLeaves())
	}
}

func TestOverfullLeafCreation(t *testing.T) {
	// Two ranks: 80/20 split (ratio 4) with total size in (target,
	// 1.5*target]. With overfull enabled we should get one leaf; without,
	// two.
	mk := func() []RankInfo {
		return gridRanks(2, 1, 1, func(ix, _, _ int) int64 {
			if ix == 0 {
				return 80
			}
			return 20
		})
	}
	totalBytes := float64(100 * bpp)
	target := int64(totalBytes / 1.2) // total = 1.2*target
	cfg := DefaultConfig(target, bpp)
	tr, err := Build(mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 || !tr.Leaves[0].Overfull {
		t.Errorf("overfull rule should make 1 overfull leaf, got %d leaves", tr.NumLeaves())
	}
	cfg.AllowOverfull = false
	tr, err = Build(mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 2 {
		t.Errorf("without overfull, want 2 leaves, got %d", tr.NumLeaves())
	}
}

func TestOverfullRespectsFactorBound(t *testing.T) {
	// Ratio-4 imbalance but total far above 1.5x target: must split anyway.
	ranks := gridRanks(2, 1, 1, func(ix, _, _ int) int64 {
		if ix == 0 {
			return 8000
		}
		return 2000
	})
	target := int64(100 * bpp)
	tr, err := Build(ranks, DefaultConfig(target, bpp))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 2 {
		t.Errorf("want forced split into 2 leaves, got %d", tr.NumLeaves())
	}
}

func TestIdenticalBoundsFallback(t *testing.T) {
	// Ranks with identical bounds cannot be separated; they must land in
	// one (overfull) leaf rather than recurse forever.
	b := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	ranks := []RankInfo{
		{Rank: 0, Bounds: b, Count: 1000},
		{Rank: 1, Bounds: b, Count: 1000},
	}
	tr, err := Build(ranks, DefaultConfig(10, bpp))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 {
		t.Fatalf("want 1 leaf, got %d", tr.NumLeaves())
	}
}

func TestAssignAggregators(t *testing.T) {
	ranks := gridRanks(4, 4, 4, func(_, _, _ int) int64 { return 1000 })
	tr, err := Build(ranks, DefaultConfig(4*1000*bpp, bpp))
	if err != nil {
		t.Fatal(err)
	}
	agg := tr.AssignAggregators(64)
	// Every member rank's aggregator matches its leaf's.
	for li, l := range tr.Leaves {
		if l.Aggregator < 0 || l.Aggregator >= 64 {
			t.Fatalf("leaf %d aggregator %d out of range", li, l.Aggregator)
		}
		for _, r := range l.Ranks {
			if agg[r] != l.Aggregator {
				t.Fatalf("rank %d agg %d != leaf %d agg %d", r, agg[r], li, l.Aggregator)
			}
		}
	}
	// Aggregators are spread: distinct leaves get distinct aggregators
	// when leaves <= ranks.
	seen := map[int]bool{}
	for _, l := range tr.Leaves {
		if seen[l.Aggregator] {
			t.Fatalf("aggregator %d assigned twice with %d leaves over 64 ranks", l.Aggregator, tr.NumLeaves())
		}
		seen[l.Aggregator] = true
	}
}

func TestAssignAggregatorsEmptyRanks(t *testing.T) {
	ranks := gridRanks(2, 2, 1, func(ix, _, _ int) int64 {
		if ix == 0 {
			return 100
		}
		return 0
	})
	tr, err := Build(ranks, DefaultConfig(1<<20, bpp))
	if err != nil {
		t.Fatal(err)
	}
	agg := tr.AssignAggregators(4)
	for r, a := range agg {
		empty := ranks[r].Count == 0
		if empty && a != -1 {
			t.Errorf("empty rank %d assigned aggregator %d", r, a)
		}
		if !empty && a == -1 {
			t.Errorf("rank %d with particles has no aggregator", r)
		}
	}
}

func TestQueryOverlapping(t *testing.T) {
	ranks := gridRanks(8, 1, 1, func(_, _, _ int) int64 { return 1000 })
	tr, err := Build(ranks, DefaultConfig(1000*bpp, bpp))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 8 {
		t.Fatalf("want 8 leaves, got %d", tr.NumLeaves())
	}
	// Query covering the left half.
	q := geom.NewBox(geom.V3(0, 0, 0), geom.V3(0.49, 1, 1))
	got := tr.QueryOverlapping(q, nil)
	if len(got) < 4 || len(got) > 5 {
		t.Errorf("left-half query hit %d leaves", len(got))
	}
	// Full-domain query hits everything.
	all := tr.QueryOverlapping(tr.Domain, nil)
	if len(all) != 8 {
		t.Errorf("full query hit %d leaves", len(all))
	}
	// Disjoint query hits nothing.
	none := tr.QueryOverlapping(geom.NewBox(geom.V3(5, 5, 5), geom.V3(6, 6, 6)), nil)
	if len(none) != 0 {
		t.Errorf("disjoint query hit %d leaves", len(none))
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ranks := gridRanks(4, 4, 2, func(_, _, _ int) int64 { return rng.Int63n(2000) })
		tr, err := Build(ranks, DefaultConfig(2000*bpp, bpp))
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			lo := geom.V3(rng.Float64(), rng.Float64(), rng.Float64())
			hi := lo.Add(geom.V3(rng.Float64()*0.5, rng.Float64()*0.5, rng.Float64()*0.5))
			q := geom.NewBox(lo, hi)
			got := map[int]bool{}
			for _, li := range tr.QueryOverlapping(q, nil) {
				got[li] = true
			}
			for li, l := range tr.Leaves {
				if l.Bounds.Overlaps(q) != got[li] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLeafOfRank(t *testing.T) {
	ranks := gridRanks(4, 1, 1, func(_, _, _ int) int64 { return 100 })
	tr, err := Build(ranks, DefaultConfig(100*bpp, bpp))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		li := tr.LeafOfRank(r)
		if li < 0 {
			t.Fatalf("rank %d not found", r)
		}
		found := false
		for _, rr := range tr.Leaves[li].Ranks {
			if rr == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("LeafOfRank(%d) = %d but leaf lacks the rank", r, li)
		}
	}
	if tr.LeafOfRank(99) != -1 {
		t.Error("missing rank should be -1")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ranks := gridRanks(8, 8, 4, func(_, _, _ int) int64 { return rng.Int63n(5000) })
	cfgP := DefaultConfig(10000*bpp, bpp)
	cfgS := cfgP
	cfgS.Parallel = false
	trP, err := Build(ranks, cfgP)
	if err != nil {
		t.Fatal(err)
	}
	trS, err := Build(ranks, cfgS)
	if err != nil {
		t.Fatal(err)
	}
	if trP.NumLeaves() != trS.NumLeaves() {
		t.Fatalf("parallel %d leaves vs serial %d", trP.NumLeaves(), trS.NumLeaves())
	}
	for i := range trP.Leaves {
		if trP.Leaves[i].Count != trS.Leaves[i].Count || len(trP.Leaves[i].Ranks) != len(trS.Leaves[i].Ranks) {
			t.Fatalf("leaf %d differs between parallel and serial builds", i)
		}
	}
}

func TestBestSplitAllAxes(t *testing.T) {
	// Domain is longest in x but the imbalance is along y. The all-axes
	// search should find a cheaper split than the longest-axis-only one.
	ranks := []RankInfo{
		{Rank: 0, Bounds: geom.NewBox(geom.V3(0, 0, 0), geom.V3(10, 0.5, 1)), Count: 500},
		{Rank: 1, Bounds: geom.NewBox(geom.V3(0, 0.5, 0), geom.V3(10, 1, 1)), Count: 500},
	}
	cfg := DefaultConfig(500*bpp, bpp)
	cfg.BestSplitAllAxes = true
	tr, err := Build(ranks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 2 {
		t.Fatalf("want 2 leaves, got %d", tr.NumLeaves())
	}
	if len(tr.Nodes) != 1 || tr.Nodes[0].Axis != geom.Y {
		t.Errorf("expected y split, got %+v", tr.Nodes)
	}
}

func TestLeafSizeStats(t *testing.T) {
	leaves := []Leaf{{Count: 10}, {Count: 20}, {Count: 30}}
	s := LeafSizeStats(leaves, 10)
	if s.NumFiles != 3 || s.MeanB != 200 || s.MaxB != 300 || s.MinB != 100 {
		t.Errorf("stats = %+v", s)
	}
	want := math.Sqrt((100.*100 + 0 + 100.*100) / 3)
	if math.Abs(s.StddevB-want) > 1e-9 {
		t.Errorf("stddev = %v, want %v", s.StddevB, want)
	}
	if LeafSizeStats(nil, 10).NumFiles != 0 {
		t.Error("empty stats wrong")
	}
}

func TestTreeStructureInvariants(t *testing.T) {
	// Inner node bounds contain child bounds; left children lie below the
	// split plane center-wise.
	rng := rand.New(rand.NewSource(9))
	ranks := gridRanks(6, 6, 3, func(_, _, _ int) int64 { return rng.Int63n(3000) + 1 })
	tr, err := Build(ranks, DefaultConfig(4000*bpp, bpp))
	if err != nil {
		t.Fatal(err)
	}
	var rec func(ref int32, parent geom.Box)
	rec = func(ref int32, parent geom.Box) {
		if li, ok := IsLeafRef(ref); ok {
			if !parent.ContainsBox(tr.Leaves[li].Bounds) {
				t.Fatalf("leaf %d escapes parent bounds", li)
			}
			return
		}
		n := tr.Nodes[ref]
		if !parent.ContainsBox(n.Bounds) {
			t.Fatalf("node %d escapes parent bounds", ref)
		}
		rec(n.Left, n.Bounds)
		rec(n.Right, n.Bounds)
	}
	if len(tr.Nodes) > 0 {
		rec(0, tr.Domain)
	}
}

func BenchmarkBuild1536Ranks(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ranks := gridRanks(16, 12, 8, func(ix, iy, iz int) int64 {
		// Nonuniform: dense near the origin corner.
		d := float64(ix+iy+iz) / 33.0
		return int64(100 + 30000*math.Exp(-4*d)*rng.Float64())
	})
	cfg := DefaultConfig(8<<20, 12+7*8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ranks, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestIrregularOverlappingBounds(t *testing.T) {
	// Ranks need not form a grid: AMR-style decompositions give irregular,
	// differently sized, even overlapping boxes. The tree must still
	// partition every particle-owning rank exactly once.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		ranks := make([]RankInfo, n)
		for i := range ranks {
			lo := geom.V3(rng.Float64()*8, rng.Float64()*8, rng.Float64()*8)
			sz := geom.V3(0.2+rng.Float64()*2, 0.2+rng.Float64()*2, 0.2+rng.Float64()*2)
			ranks[i] = RankInfo{
				Rank:   i,
				Bounds: geom.NewBox(lo, lo.Add(sz)),
				Count:  rng.Int63n(5000),
			}
		}
		var total int64
		for _, r := range ranks {
			total += r.Count
		}
		if total == 0 {
			return true
		}
		tr, err := Build(ranks, DefaultConfig(total*bpp/7, bpp))
		if err != nil {
			return false
		}
		// Partition invariants (non-fatal variant of checkPartition).
		seen := map[int]bool{}
		var sum int64
		for _, l := range tr.Leaves {
			for _, r := range l.Ranks {
				if seen[r] {
					return false
				}
				seen[r] = true
				if !l.Bounds.ContainsBox(ranks[r].Bounds) {
					return false
				}
			}
			sum += l.Count
		}
		for _, r := range ranks {
			if (r.Count > 0) != seen[r.Rank] {
				return false
			}
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSingleRank(t *testing.T) {
	tr, err := Build([]RankInfo{{
		Rank:   0,
		Bounds: geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1)),
		Count:  1000,
	}}, DefaultConfig(10, bpp))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 || tr.Leaves[0].Count != 1000 {
		t.Errorf("single rank tree wrong: %+v", tr.Leaves)
	}
}
