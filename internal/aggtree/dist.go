// Distributed aggregation-tree construction. DistributedBuild produces,
// collectively across all fabric ranks, exactly the plan the centralized
// Build would compute from the gathered rank infos — same leaves, same
// aggregator assignments, bit-identical split planes — while no rank ever
// materializes all P rank infos. Rank 0's peak planning state is
// O(P/owners + samples) instead of O(P).
//
// The construction (DESIGN §15) runs in four phases:
//
//  1. A tree Allreduce agrees on the global domain, total particle count,
//     and active-rank count.
//  2. Every s-th active rank contributes a (Morton code, rank) sample of
//     its bounds center; one Allgather replicates the O(P/s) sample set,
//     from which every rank derives the same sorted splitter list.
//  3. The splitters cut Morton space into G buckets, each owned by a rank
//     spread through the rank space; one Alltoallv routes each rank's
//     60-byte info record to its bucket owner.
//  4. All ranks walk one replicated top-down recursion over the tree:
//     per-node aggregates come from an Allreduce, nodes whose members have
//     collapsed onto a single owner are finished locally by the serial
//     oracle buildRec, and multi-owner nodes find their exact split plane
//     through collective bit-pattern bisection (distrefine.go). Leaf
//     numbering falls out of the shared depth-first order, so assignments
//     are delivered point-to-point without any central fan-in.
package aggtree

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"libbat/internal/fabric"
	"libbat/internal/geom"
	"libbat/internal/morton"
)

// DistConfig controls the distributed build. The embedded Config must match
// the centralized build's exactly for the equivalence guarantee to hold;
// the added knobs only trade communication volume against parallelism and
// never change the resulting plan.
type DistConfig struct {
	Config
	// SampleStride s has every s-th active rank contribute one splitter
	// sample, bounding the replicated sample set at ceil(P/s) entries.
	// Default 16.
	SampleStride int
	// Owners bounds the number of bucket-owner ranks the sampled splitter
	// space is cut into. Default: the world size.
	Owners int
	// ConsolidateMembers is the member-count threshold at or below which a
	// multi-owner node is consolidated onto its lowest owner and finished
	// serially instead of split collectively. Default 32.
	ConsolidateMembers int
}

// DefaultDistConfig mirrors DefaultConfig for the distributed entry point.
func DefaultDistConfig(targetFileSize int64, bytesPerParticle int) DistConfig {
	return DistConfig{Config: DefaultConfig(targetFileSize, bytesPerParticle)}
}

// AggLeaf is one leaf this rank aggregates: everything the write pipeline
// needs to receive the member ranks' data and write the output file.
type AggLeaf struct {
	// Index is the leaf's global index in depth-first tree order.
	Index int
	// Bounds is the union of the member ranks' bounds.
	Bounds geom.Box
	// Count is the total particle count of the leaf.
	Count int64
	// Overfull records whether the leaf was created by the overfull rule.
	Overfull bool
	// Senders lists the member ranks (ascending) and Counts their particle
	// counts, parallel to Senders.
	Senders []int
	Counts  []int64
}

// DistStats reports how the distributed construction went on this rank.
type DistStats struct {
	// Samples is the size of the replicated splitter sample set.
	Samples int
	// Owners is the number of bucket-owner ranks.
	Owners int
	// PeakMembers is the largest number of rank infos this rank held at any
	// point — the O(P/owners + samples) planning-state bound under test.
	PeakMembers int
	// Rounds counts the Allreduce rounds the refinement recursion used.
	Rounds int
}

// DistPlan is one rank's view of the collectively built plan.
type DistPlan struct {
	// Domain is the union of all active ranks' bounds.
	Domain geom.Box
	// TotalCount is the global particle count.
	TotalCount int64
	// NumLeaves is the number of leaves (output files) in the tree.
	NumLeaves int
	// OwnLeaf is the global index of the leaf containing this rank, or -1
	// when the rank has no particles.
	OwnLeaf int
	// OwnAggregator is the aggregator rank this rank sends its data to, or
	// -1 when it has no particles.
	OwnAggregator int
	// AggLeaves lists the leaves this rank aggregates, ascending by index.
	AggLeaves []AggLeaf
	// Stats describes the construction itself.
	Stats DistStats

	// Skeleton and owned subtree fragments, kept for AssembleTree.
	skel []skelNode
	subs []localSub
	size int
}

// skelNode is one node of the replicated tree skeleton. Split nodes carry
// the collectively agreed split; sub nodes delegate a whole subtree to one
// owner rank and record how many leaves it contributed.
type skelNode struct {
	split       bool
	axis        geom.Axis
	pos         float64
	bounds      geom.Box
	count       int64
	left, right int // skeleton indices, split nodes only
	owner       int // sub nodes only
	leaves      int // sub nodes only
}

// localSub is a subtree this rank owns: the serial-oracle-built root plus
// its position in the global plan.
type localSub struct {
	skelIdx    int
	root       *buildNode
	leafOffset int
	members    []RankInfo
}

// Reserved point-to-point tag block for the distributed build, above the
// write pipeline's small tags and below the fabric collective tags.
const (
	tagDistConsolidate = 1<<28 + iota
	tagDistAssign
	tagDistAggLeaf
)

// rankInfoBytes is the fixed wire size of one encoded RankInfo.
const rankInfoBytes = 4 + 8 + 6*8

func appendRankInfo(buf []byte, r RankInfo) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Rank))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Count))
	for _, f := range [6]float64{
		r.Bounds.Lower.X, r.Bounds.Lower.Y, r.Bounds.Lower.Z,
		r.Bounds.Upper.X, r.Bounds.Upper.Y, r.Bounds.Upper.Z,
	} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	return buf
}

func decodeRankInfos(buf []byte) []RankInfo {
	n := len(buf) / rankInfoBytes
	out := make([]RankInfo, n)
	for i := range out {
		b := buf[i*rankInfoBytes:]
		f := func(o int) float64 {
			return math.Float64frombits(binary.LittleEndian.Uint64(b[o:]))
		}
		out[i] = RankInfo{
			Rank:  int(binary.LittleEndian.Uint32(b)),
			Count: int64(binary.LittleEndian.Uint64(b[4:])),
			Bounds: geom.Box{
				Lower: geom.V3(f(12), f(20), f(28)),
				Upper: geom.V3(f(36), f(44), f(52)),
			},
		}
	}
	return out
}

// sampleKey orders ranks along the Morton curve of their bounds centers,
// with the rank id breaking ties so the order is total and identical on
// every rank.
type sampleKey struct {
	code morton.Code
	rank int
}

func (a sampleKey) less(b sampleKey) bool {
	if a.code != b.code {
		return a.code < b.code
	}
	return a.rank < b.rank
}

// DistributedBuild collectively constructs the aggregation-tree plan. All
// ranks of the fabric must call it with the same cfg; own describes the
// calling rank's contribution (own.Rank must equal c.Rank()). The returned
// plan is provably identical to what Build + AssignAggregators would
// produce centrally from the same inputs.
func DistributedBuild(c *fabric.Comm, own RankInfo, cfg DistConfig) (*DistPlan, error) {
	if cfg.TargetFileSize <= 0 {
		return nil, fmt.Errorf("aggtree: target file size must be positive, got %d", cfg.TargetFileSize)
	}
	if cfg.BytesPerParticle <= 0 {
		return nil, fmt.Errorf("aggtree: bytes per particle must be positive, got %d", cfg.BytesPerParticle)
	}
	if own.Rank != c.Rank() {
		return nil, fmt.Errorf("aggtree: own.Rank %d != fabric rank %d", own.Rank, c.Rank())
	}
	if cfg.SampleStride <= 0 {
		cfg.SampleStride = 16
	}
	if cfg.Owners <= 0 {
		cfg.Owners = c.Size()
	}
	if cfg.ConsolidateMembers <= 0 {
		cfg.ConsolidateMembers = 32
	}

	d := &distBuilder{c: c, cfg: cfg, own: own, size: c.Size()}

	// Phase 1: global domain, total count, active-rank count.
	active := own.Count > 0
	rec := make([]byte, 0, 8*8)
	rec = binary.LittleEndian.AppendUint64(rec, uint64(own.Count))
	if active {
		rec = binary.LittleEndian.AppendUint64(rec, 1)
	} else {
		rec = binary.LittleEndian.AppendUint64(rec, 0)
	}
	b := own.Bounds
	if !active {
		b = geom.EmptyBox()
	}
	rec = appendBox(rec, b)
	out := c.Allreduce(rec, combineGlobal)
	d.rounds++
	total := int64(binary.LittleEndian.Uint64(out))
	activeRanks := int64(binary.LittleEndian.Uint64(out[8:]))
	domain := decodeBox(out[16:])

	plan := &DistPlan{
		Domain:        domain,
		TotalCount:    total,
		OwnLeaf:       -1,
		OwnAggregator: -1,
		size:          d.size,
	}
	if activeRanks == 0 {
		return plan, nil
	}

	// Phase 2: splitter sampling. Every SampleStride-th active rank
	// contributes its (Morton code, rank) key; the Allgather replicates the
	// sample set, from which every rank independently derives the same
	// sorted splitter list.
	key := sampleKey{rank: own.Rank}
	var sample []byte
	if active {
		key.code = morton.FromPoint(own.Bounds.Center(), domain)
		if own.Rank%cfg.SampleStride == 0 {
			sample = binary.LittleEndian.AppendUint64(nil, uint64(key.code))
			sample = binary.LittleEndian.AppendUint32(sample, uint32(own.Rank))
		}
	}
	gathered := c.Allgather(sample)
	d.rounds++
	var samples []sampleKey
	for _, g := range gathered {
		if len(g) == 12 {
			samples = append(samples, sampleKey{
				code: morton.Code(binary.LittleEndian.Uint64(g)),
				rank: int(binary.LittleEndian.Uint32(g[8:])),
			})
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].less(samples[j]) })

	// Phase 3: cut the sampled key space into G buckets with owners spread
	// through the rank space, and route every active rank's info record to
	// its bucket owner with one Alltoallv.
	owners := cfg.Owners
	if owners > d.size {
		owners = d.size
	}
	if owners > len(samples)+1 {
		owners = len(samples) + 1
	}
	splitters := make([]sampleKey, 0, owners-1)
	for i := 1; i < owners; i++ {
		splitters = append(splitters, samples[i*len(samples)/owners])
	}
	ownerOf := func(b int) int { return b * d.size / owners }
	parts := make([][]byte, d.size)
	if active {
		bucket := sort.Search(len(splitters), func(i int) bool {
			return key.less(splitters[i])
		})
		parts[ownerOf(bucket)] = appendRankInfo(nil, own)
	}
	routed := c.Alltoallv(parts)
	d.rounds++
	var members []RankInfo
	for _, p := range routed {
		members = append(members, decodeRankInfos(p)...)
	}
	d.notePeak(len(members) + len(samples))

	// Phase 4: replicated top-down refinement (distrefine.go).
	d.refineRoot(members, plan)

	plan.Stats = DistStats{
		Samples:     len(samples),
		Owners:      owners,
		PeakMembers: d.peak,
		Rounds:      d.rounds,
	}
	return plan, nil
}

// distBuilder carries the per-rank state of one distributed build.
type distBuilder struct {
	c      *fabric.Comm
	cfg    DistConfig
	own    RankInfo
	size   int
	rounds int
	peak   int
}

func (d *distBuilder) notePeak(n int) {
	if n > d.peak {
		d.peak = n
	}
}

func appendBox(buf []byte, b geom.Box) []byte {
	for _, f := range [6]float64{
		b.Lower.X, b.Lower.Y, b.Lower.Z,
		b.Upper.X, b.Upper.Y, b.Upper.Z,
	} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	return buf
}

func decodeBox(buf []byte) geom.Box {
	f := func(o int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[o:]))
	}
	return geom.Box{
		Lower: geom.V3(f(0), f(8), f(16)),
		Upper: geom.V3(f(24), f(32), f(40)),
	}
}

// combineGlobal folds two phase-1 records: counts sum, bounds union.
func combineGlobal(acc, next []byte) []byte {
	a := binary.LittleEndian.Uint64(acc) + binary.LittleEndian.Uint64(next)
	binary.LittleEndian.PutUint64(acc, a)
	a = binary.LittleEndian.Uint64(acc[8:]) + binary.LittleEndian.Uint64(next[8:])
	binary.LittleEndian.PutUint64(acc[8:], a)
	ab := decodeBox(acc[16:])
	nb := decodeBox(next[16:])
	u := ab.Union(nb)
	box := appendBox(acc[:16], u)
	return box
}
