// Phase 4 of the distributed build: the replicated top-down refinement.
//
// Every rank walks the same recursion over the forming tree. Per-node
// aggregates (count, member count, bounds, owner census) come from one
// Allreduce, so every rank reaches the same classification from the same
// numbers the serial oracle would see:
//
//   - nodes passing the oracle leaf test, nodes with a single owner, and
//     nodes whose member count has shrunk below ConsolidateMembers are
//     consolidated onto their lowest owner and finished locally by the
//     unmodified serial buildRec — the subtree is oracle-built on the exact
//     member multiset, so equivalence there is by construction;
//   - remaining multi-owner nodes find the serial algorithm's exact split
//     plane through collective bisection over float bit space (evalAxis
//     below), then partition their members into the two children.
//
// The recursion's depth-first order doubles as the global leaf numbering,
// so once it finishes every owner knows its leaves' global indices and
// delivers assignments point-to-point — no central fan-in anywhere.
package aggtree

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sort"

	"libbat/internal/fabric"
	"libbat/internal/geom"
)

// nodeStats are the collectively agreed aggregates of one node.
type nodeStats struct {
	count    int64 // total particles
	members  int64 // member ranks
	minOwner int   // lowest rank holding >= 1 member
	owners   int   // ranks holding >= 1 member
	bounds   geom.Box
}

func (d *distBuilder) nodeStats(mine []RankInfo) nodeStats {
	var cnt int64
	for _, m := range mine {
		cnt += m.Count
	}
	minOwner, owners := int64(d.size), int64(0)
	if len(mine) > 0 {
		minOwner, owners = int64(d.own.Rank), 1
	}
	rec := make([]byte, 0, 4*8+6*8)
	rec = binary.LittleEndian.AppendUint64(rec, uint64(cnt))
	rec = binary.LittleEndian.AppendUint64(rec, uint64(len(mine)))
	rec = binary.LittleEndian.AppendUint64(rec, uint64(minOwner))
	rec = binary.LittleEndian.AppendUint64(rec, uint64(owners))
	rec = appendBox(rec, unionBounds(mine))
	out := d.c.Allreduce(rec, combineNodeStats)
	d.rounds++
	return nodeStats{
		count:    int64(binary.LittleEndian.Uint64(out)),
		members:  int64(binary.LittleEndian.Uint64(out[8:])),
		minOwner: int(binary.LittleEndian.Uint64(out[16:])),
		owners:   int(binary.LittleEndian.Uint64(out[24:])),
		bounds:   decodeBox(out[32:]),
	}
}

func combineNodeStats(acc, next []byte) []byte {
	addAt := func(o int) {
		s := binary.LittleEndian.Uint64(acc[o:]) + binary.LittleEndian.Uint64(next[o:])
		binary.LittleEndian.PutUint64(acc[o:], s)
	}
	addAt(0)
	addAt(8)
	if binary.LittleEndian.Uint64(next[16:]) < binary.LittleEndian.Uint64(acc[16:]) {
		binary.LittleEndian.PutUint64(acc[16:], binary.LittleEndian.Uint64(next[16:]))
	}
	addAt(24)
	u := decodeBox(acc[32:]).Union(decodeBox(next[32:]))
	return appendBox(acc[:32], u)
}

// refineRoot drives the replicated recursion and the assignment delivery.
func (d *distBuilder) refineRoot(members []RankInfo, plan *DistPlan) {
	leafCounter := 0
	d.refineNode(members, plan, &leafCounter)
	plan.NumLeaves = leafCounter
	d.deliver(plan)
}

// refineNode processes one node; every rank calls it with its share of the
// node's members (possibly none) and all ranks return the same skeleton
// index. The classification mirrors buildRec's decision order exactly;
// consolidated subtrees re-run buildRec on the full member multiset, so a
// node that consolidates because the collective already knows it is a leaf
// (or overfull) reproduces precisely that leaf.
func (d *distBuilder) refineNode(mine []RankInfo, plan *DistPlan, leafCounter *int) int {
	st := d.nodeStats(mine)
	nodeBytes := st.count * int64(d.cfg.BytesPerParticle)
	leafTest := nodeBytes <= d.cfg.TargetFileSize || st.members == 1
	if leafTest || st.owners == 1 || st.members <= int64(d.cfg.ConsolidateMembers) {
		mine = d.consolidate(mine, st)
		return d.delegate(mine, st, plan, leafCounter)
	}
	best := d.collectiveSplit(mine, st)
	if !best.ok ||
		(d.cfg.AllowOverfull &&
			best.ratio >= d.cfg.SplitCostThreshold &&
			float64(nodeBytes) <= d.cfg.OverfullFactor*float64(d.cfg.TargetFileSize)) {
		// The serial oracle would make this node an (overfull) leaf; let
		// the delegated buildRec reach the same verdict from the same data.
		mine = d.consolidate(mine, st)
		return d.delegate(mine, st, plan, leafCounter)
	}
	var left, right []RankInfo
	for _, r := range mine {
		if r.Bounds.Center().Component(best.axis) < best.pos {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	me := len(plan.skel)
	plan.skel = append(plan.skel, skelNode{
		split: true, axis: best.axis, pos: best.pos,
		bounds: st.bounds, count: st.count,
	})
	l := d.refineNode(left, plan, leafCounter)
	r := d.refineNode(right, plan, leafCounter)
	plan.skel[me].left, plan.skel[me].right = l, r
	return me
}

// consolidate moves every owner's members for the current node onto the
// node's lowest owner. Sends are buffered and the receiver knows the exact
// sender census from the stats Allreduce, so the exchange cannot deadlock
// or mix with a later node's (every sender re-synchronizes at the next
// collective before it can send again).
func (d *distBuilder) consolidate(mine []RankInfo, st nodeStats) []RankInfo {
	if st.owners <= 1 {
		return mine
	}
	if d.own.Rank == st.minOwner {
		for i := 0; i < st.owners-1; i++ {
			buf, _ := d.c.Recv(fabric.AnySource, tagDistConsolidate)
			mine = append(mine, decodeRankInfos(buf)...)
		}
		d.notePeak(len(mine))
		return mine
	}
	if len(mine) > 0 {
		enc := make([]byte, 0, len(mine)*rankInfoBytes)
		for _, m := range mine {
			enc = appendRankInfo(enc, m)
		}
		d.c.Send(st.minOwner, tagDistConsolidate, enc)
	}
	return nil
}

// delegate finishes the node's whole subtree on its (single, post-
// consolidation) owner with the serial oracle, and broadcasts the subtree's
// leaf count so every rank advances the shared depth-first numbering.
func (d *distBuilder) delegate(mine []RankInfo, st nodeStats, plan *DistPlan, leafCounter *int) int {
	me := len(plan.skel)
	var root *buildNode
	var buf []byte
	if d.own.Rank == st.minOwner {
		root = buildRec(mine, d.cfg.Config, 0)
		buf = binary.LittleEndian.AppendUint64(nil, uint64(countLeaves(root)))
	}
	out := d.c.Bcast(st.minOwner, buf)
	d.rounds++
	leaves := int(binary.LittleEndian.Uint64(out))
	plan.skel = append(plan.skel, skelNode{
		owner: st.minOwner, leaves: leaves, bounds: st.bounds, count: st.count,
	})
	if d.own.Rank == st.minOwner {
		plan.subs = append(plan.subs, localSub{
			skelIdx: me, root: root, leafOffset: *leafCounter, members: mine,
		})
	}
	*leafCounter += leaves
	return me
}

func countLeaves(n *buildNode) int {
	if n.leaf != nil {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}

// walkLeaves visits the subtree's leaves in depth-first (left-to-right)
// order — the same order flatten numbers them.
func walkLeaves(n *buildNode, fn func(*Leaf)) {
	if n.leaf != nil {
		fn(n.leaf)
		return
	}
	walkLeaves(n.left, fn)
	walkLeaves(n.right, fn)
}

// collectiveSplit mirrors Build's axis-selection loop: longest axis first,
// the remaining axes only as fallback (or all of them under
// BestSplitAllAxes), cross-axis winner by strictly smaller cost. All
// comparisons use values replicated by the probes, so every rank picks the
// same split.
func (d *distBuilder) collectiveSplit(mine []RankInfo, st nodeStats) splitResult {
	longest := st.bounds.LongestAxis()
	best := d.evalAxis(mine, st, longest)
	for _, axis := range []geom.Axis{geom.X, geom.Y, geom.Z} {
		if axis == longest {
			continue
		}
		if !d.cfg.BestSplitAllAxes && best.ok {
			break
		}
		if s := d.evalAxis(mine, st, axis); s.ok && (!best.ok || s.cost < best.cost) {
			best = s
		}
	}
	return best
}

// probeRes is one collective probe at position p along an axis: the
// particle count left of p, and the nearest member bound-edge values at or
// below / at or above p.
type probeRes struct {
	nl    int64
	maxLE float64
	minGE float64
}

func (d *distBuilder) probe(mine []RankInfo, axis geom.Axis, p float64) probeRes {
	var nl int64
	maxLE, minGE := math.Inf(-1), math.Inf(1)
	for _, r := range mine {
		if r.Bounds.Center().Component(axis) < p {
			nl += r.Count
		}
		for _, e := range [2]float64{
			r.Bounds.Lower.Component(axis), r.Bounds.Upper.Component(axis),
		} {
			if e <= p && e > maxLE {
				maxLE = e
			}
			if e >= p && e < minGE {
				minGE = e
			}
		}
	}
	rec := make([]byte, 0, 24)
	rec = binary.LittleEndian.AppendUint64(rec, uint64(nl))
	rec = binary.LittleEndian.AppendUint64(rec, math.Float64bits(maxLE))
	rec = binary.LittleEndian.AppendUint64(rec, math.Float64bits(minGE))
	out := d.c.Allreduce(rec, combineProbe)
	d.rounds++
	return probeRes{
		nl:    int64(binary.LittleEndian.Uint64(out)),
		maxLE: math.Float64frombits(binary.LittleEndian.Uint64(out[8:])),
		minGE: math.Float64frombits(binary.LittleEndian.Uint64(out[16:])),
	}
}

func combineProbe(acc, next []byte) []byte {
	s := binary.LittleEndian.Uint64(acc) + binary.LittleEndian.Uint64(next)
	binary.LittleEndian.PutUint64(acc, s)
	if a, n := math.Float64frombits(binary.LittleEndian.Uint64(acc[8:])),
		math.Float64frombits(binary.LittleEndian.Uint64(next[8:])); n > a {
		binary.LittleEndian.PutUint64(acc[8:], math.Float64bits(n))
	}
	if a, n := math.Float64frombits(binary.LittleEndian.Uint64(acc[16:])),
		math.Float64frombits(binary.LittleEndian.Uint64(next[16:])); n < a {
		binary.LittleEndian.PutUint64(acc[16:], math.Float64bits(n))
	}
	return acc
}

// ordOf maps a float64 to a uint64 whose unsigned order matches the
// float's total order, letting the bisections walk float space bit by bit.
func ordOf(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

func floatOf(o uint64) float64 {
	if o&(1<<63) != 0 {
		return math.Float64frombits(o &^ (1 << 63))
	}
	return math.Float64frombits(^o)
}

// evalAxis reproduces evaluateAxis's result for the node's full member
// multiset without gathering it. The serial algorithm scans candidate
// positions (the unique member bound edges) in ascending order and keeps
// the first strict cost minimum; because the left count nl(p) is
// nondecreasing in p and the cost |0.5 - nl/N| is V-shaped in nl, that
// winner is determined by just two achievable counts — v_lo, the largest
// nl <= N/2, and v_hi, the smallest nl > N/2 — plus the first candidate
// position achieving the winning count. Each is found by bisecting a
// monotone predicate over float bit space with O(64) collective probes:
//
//	A: largest position b with nl(b) <= N/2; the largest edge c_lo <= b is
//	   the v_lo candidate, v_lo = nl(c_lo), valid iff v_lo >= 1.
//	C: smallest position b3 with nl(b3) > N/2; the smallest edge c_hi >=
//	   b3 is the first v_hi candidate, v_hi = nl(c_hi), valid iff v_hi < N.
//	B: (winner = lo only) smallest position b2 with nl(b2) >= v_lo; the
//	   smallest edge >= b2 is the first candidate achieving v_lo — the
//	   serial first-minimum tie-break.
//
// Validity matches the serial leftRanks/rightRanks guards because members
// all have Count > 0, so nl = 0 <=> no member is left of p and nl = N <=>
// none is right. On cost ties the lo side wins, as in the serial scan where
// the lo candidate comes first and later equal-cost candidates never
// displace it (strict <).
func (d *distBuilder) evalAxis(mine []RankInfo, st nodeStats, axis geom.Axis) splitResult {
	lo := st.bounds.Lower.Component(axis)
	hi := st.bounds.Upper.Component(axis)
	N := st.count

	// Sub-phase A: v_lo.
	pHi := d.probe(mine, axis, hi)
	var bProbe probeRes
	if pHi.nl <= N-pHi.nl {
		bProbe = pHi
	} else {
		loOrd, hiOrd := ordOf(lo), ordOf(hi)
		for hiOrd-loOrd > 1 {
			mid := loOrd + (hiOrd-loOrd)/2
			if pm := d.probe(mine, axis, floatOf(mid)); pm.nl <= N-pm.nl {
				loOrd = mid
			} else {
				hiOrd = mid
			}
		}
		bProbe = d.probe(mine, axis, floatOf(loOrd))
	}
	cLo := bProbe.maxLE
	vLo := int64(0)
	if !math.IsInf(cLo, -1) {
		vLo = d.probe(mine, axis, cLo).nl
	}
	loValid := vLo >= 1

	// Sub-phase C: v_hi.
	var cHi float64
	vHi, hiValid := int64(0), false
	if pHi.nl > N-pHi.nl {
		loOrd, hiOrd := ordOf(lo), ordOf(hi)
		for hiOrd-loOrd > 1 {
			mid := loOrd + (hiOrd-loOrd)/2
			if pm := d.probe(mine, axis, floatOf(mid)); pm.nl > N-pm.nl {
				hiOrd = mid
			} else {
				loOrd = mid
			}
		}
		cHi = d.probe(mine, axis, floatOf(hiOrd)).minGE
		if !math.IsInf(cHi, 1) {
			vHi = d.probe(mine, axis, cHi).nl
			hiValid = vHi < N
		}
	}

	cost := func(v int64) float64 { return math.Abs(0.5 - float64(v)/float64(N)) }
	res := splitResult{axis: axis, cost: math.Inf(1), ratio: math.Inf(1)}
	fill := func(pos float64, nl int64) {
		nr := N - nl
		res = splitResult{
			axis: axis, pos: pos, cost: cost(nl),
			ratio: float64(max(nl, nr)) / float64(min(nl, nr)),
			nl:    nl, nr: nr, ok: true,
		}
	}
	switch {
	case loValid && (!hiValid || cost(vLo) <= cost(vHi)):
		// Sub-phase B: first candidate achieving v_lo.
		loOrd, hiOrd := ordOf(lo), ordOf(cLo)
		for hiOrd-loOrd > 1 {
			mid := loOrd + (hiOrd-loOrd)/2
			if pm := d.probe(mine, axis, floatOf(mid)); pm.nl >= vLo {
				hiOrd = mid
			} else {
				loOrd = mid
			}
		}
		pos := d.probe(mine, axis, floatOf(hiOrd)).minGE
		fill(pos, vLo)
	case hiValid:
		fill(cHi, vHi)
	}
	return res
}

// deliver sends every rank its leaf assignment and every aggregator its
// leaf summaries, point to point. Receivers know their exact expected
// message counts (one assignment per active rank; the aggregator leaf
// range follows from the shared numbering), so the exchange terminates
// deterministically without a barrier.
func (d *distBuilder) deliver(plan *DistPlan) {
	n := plan.NumLeaves
	if n == 0 {
		return
	}
	for _, sub := range plan.subs {
		counts := make(map[int]int64, len(sub.members))
		for _, m := range sub.members {
			counts[m.Rank] = m.Count
		}
		g := sub.leafOffset
		walkLeaves(sub.root, func(l *Leaf) {
			agg := g * d.size / n
			assign := make([]byte, 0, 8)
			assign = binary.LittleEndian.AppendUint32(assign, uint32(g))
			assign = binary.LittleEndian.AppendUint32(assign, uint32(agg))
			for _, r := range l.Ranks {
				d.c.Send(r, tagDistAssign, assign)
			}
			d.c.Send(agg, tagDistAggLeaf, encodeAggLeaf(g, l, counts))
			g++
		})
	}
	if d.own.Count > 0 {
		buf, _ := d.c.Recv(fabric.AnySource, tagDistAssign)
		plan.OwnLeaf = int(binary.LittleEndian.Uint32(buf))
		plan.OwnAggregator = int(binary.LittleEndian.Uint32(buf[4:]))
	}
	first := (d.own.Rank*n + d.size - 1) / d.size
	last := ((d.own.Rank+1)*n + d.size - 1) / d.size
	for i := first; i < last; i++ {
		buf, _ := d.c.Recv(fabric.AnySource, tagDistAggLeaf)
		plan.AggLeaves = append(plan.AggLeaves, decodeAggLeaf(buf))
	}
	sort.Slice(plan.AggLeaves, func(i, j int) bool {
		return plan.AggLeaves[i].Index < plan.AggLeaves[j].Index
	})
}

func encodeAggLeaf(g int, l *Leaf, counts map[int]int64) []byte {
	buf := make([]byte, 0, 4+1+8+48+4+len(l.Ranks)*12)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g))
	if l.Overfull {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.Count))
	buf = appendBox(buf, l.Bounds)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.Ranks)))
	for _, r := range l.Ranks {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(counts[r]))
	}
	return buf
}

func decodeAggLeaf(buf []byte) AggLeaf {
	a := AggLeaf{
		Index:    int(binary.LittleEndian.Uint32(buf)),
		Overfull: buf[4] == 1,
		Count:    int64(binary.LittleEndian.Uint64(buf[5:])),
		Bounds:   decodeBox(buf[13:]),
	}
	ns := int(binary.LittleEndian.Uint32(buf[61:]))
	a.Senders = make([]int, ns)
	a.Counts = make([]int64, ns)
	for i := 0; i < ns; i++ {
		b := buf[65+i*12:]
		a.Senders[i] = int(binary.LittleEndian.Uint32(b))
		a.Counts[i] = int64(binary.LittleEndian.Uint64(b[4:]))
	}
	return a
}

// treeFrag is one owner-built subtree in flattened form, shipped to rank 0
// by AssembleTree. Child references inside Nodes are fragment-local.
type treeFrag struct {
	SkelIdx int
	Nodes   []Node
	Leaves  []Leaf
}

// AssembleTree reconstructs the full flattened Tree on rank 0 (returning
// nil on other ranks). It is a collective: every rank contributes its
// owned subtree fragments through one tree Gather, and rank 0 stitches
// them into the skeleton in depth-first order — reproducing, node for node
// and leaf for leaf, the flattening the centralized Build emits. The write
// pipeline defers this to metadata time, where rank 0 already handles
// O(files) state, keeping the planning phase itself free of any O(P)
// materialization.
func (p *DistPlan) AssembleTree(c *fabric.Comm) (*Tree, error) {
	frags := make([]treeFrag, 0, len(p.subs))
	for _, sub := range p.subs {
		var st Tree
		st.flatten(sub.root)
		frags = append(frags, treeFrag{SkelIdx: sub.skelIdx, Nodes: st.Nodes, Leaves: st.Leaves})
	}
	var enc bytes.Buffer
	if err := gob.NewEncoder(&enc).Encode(frags); err != nil {
		return nil, fmt.Errorf("aggtree: encode fragments: %w", err)
	}
	gathered := c.Gather(0, enc.Bytes())
	if c.Rank() != 0 {
		return nil, nil
	}
	byIdx := make(map[int]treeFrag)
	for _, g := range gathered {
		var fs []treeFrag
		if err := gob.NewDecoder(bytes.NewReader(g)).Decode(&fs); err != nil {
			return nil, fmt.Errorf("aggtree: decode fragments: %w", err)
		}
		for _, f := range fs {
			byIdx[f.SkelIdx] = f
		}
	}
	t := &Tree{Domain: p.Domain}
	if p.NumLeaves == 0 {
		return t, nil
	}
	var rec func(si int) (int32, error)
	rec = func(si int) (int32, error) {
		s := p.skel[si]
		if s.split {
			me := len(t.Nodes)
			t.Nodes = append(t.Nodes, Node{
				Axis: s.axis, Pos: s.pos, Bounds: s.bounds, Count: s.count,
			})
			l, err := rec(s.left)
			if err != nil {
				return 0, err
			}
			r, err := rec(s.right)
			if err != nil {
				return 0, err
			}
			t.Nodes[me].Left, t.Nodes[me].Right = l, r
			return int32(me), nil
		}
		f, ok := byIdx[si]
		if !ok || len(f.Leaves) != s.leaves {
			return 0, fmt.Errorf("aggtree: missing or inconsistent fragment for skeleton node %d", si)
		}
		nodeOff, leafOff := len(t.Nodes), len(t.Leaves)
		remap := func(ref int32) int32 {
			if li, isLeaf := IsLeafRef(ref); isLeaf {
				return LeafRef(li + leafOff)
			}
			return ref + int32(nodeOff)
		}
		for _, nd := range f.Nodes {
			nd.Left, nd.Right = remap(nd.Left), remap(nd.Right)
			t.Nodes = append(t.Nodes, nd)
		}
		t.Leaves = append(t.Leaves, f.Leaves...)
		if len(f.Nodes) == 0 {
			return LeafRef(leafOff), nil
		}
		return int32(nodeOff), nil
	}
	if _, err := rec(0); err != nil {
		return nil, err
	}
	AssignAggregators(t.Leaves, p.size)
	return t, nil
}
