// Package aug implements the Adjustable Uniform Grid aggregation strategy
// of Kumar et al. [27], the prior state of the art the paper compares
// against (§VI-A.2). The grid is sized from the target file size assuming a
// uniform particle distribution, adjusted (resized) to fit the data bounds,
// and empty grid cells are discarded. Because cell geometry ignores the
// actual particle distribution, nonuniform data produces imbalanced
// aggregation groups — the weakness the adaptive tree addresses.
package aug

import (
	"fmt"
	"math"
	"sort"

	"libbat/internal/aggtree"
	"libbat/internal/geom"
)

// Config controls the grid construction.
type Config struct {
	// TargetFileSize is the desired output file size in bytes; the grid
	// resolution is chosen so a cell holds about this much data under a
	// uniform distribution.
	TargetFileSize int64
	// BytesPerParticle converts particle counts to data sizes.
	BytesPerParticle int
}

// GridDims returns the grid resolution chosen for the given domain and
// desired number of cells: per-axis counts proportional to the domain's
// aspect ratio whose product is at least want.
func GridDims(domain geom.Box, want int) (gx, gy, gz int) {
	if want < 1 {
		want = 1
	}
	s := domain.Size()
	// Degenerate axes get a single cell.
	sx, sy, sz := math.Max(s.X, 1e-12), math.Max(s.Y, 1e-12), math.Max(s.Z, 1e-12)
	scale := math.Cbrt(float64(want) / (sx * sy * sz))
	dim := func(extent float64) int {
		d := int(math.Round(extent * scale))
		if d < 1 {
			return 1
		}
		return d
	}
	gx, gy, gz = dim(sx), dim(sy), dim(sz)
	// Grow the largest axis until the cell count reaches the request.
	for gx*gy*gz < want {
		switch {
		case sx/float64(gx) >= sy/float64(gy) && sx/float64(gx) >= sz/float64(gz):
			gx++
		case sy/float64(gy) >= sz/float64(gz):
			gy++
		default:
			gz++
		}
	}
	return gx, gy, gz
}

// Build groups ranks into aggregation leaves using the adjustable uniform
// grid: the domain is fit to the union of the particle-owning ranks'
// bounds, divided into approximately totalBytes/target cells, each rank is
// binned to the cell containing its bounds' center, and empty cells are
// discarded. The returned leaves are ordered by cell index (z-major).
func Build(ranks []aggtree.RankInfo, cfg Config) ([]aggtree.Leaf, error) {
	if cfg.TargetFileSize <= 0 {
		return nil, fmt.Errorf("aug: target file size must be positive, got %d", cfg.TargetFileSize)
	}
	if cfg.BytesPerParticle <= 0 {
		return nil, fmt.Errorf("aug: bytes per particle must be positive, got %d", cfg.BytesPerParticle)
	}
	domain := geom.EmptyBox()
	var total int64
	for _, r := range ranks {
		if r.Count > 0 {
			domain = domain.Union(r.Bounds)
			total += r.Count
		}
	}
	if total == 0 {
		return nil, nil
	}
	totalBytes := total * int64(cfg.BytesPerParticle)
	want := int((totalBytes + cfg.TargetFileSize - 1) / cfg.TargetFileSize)
	gx, gy, gz := GridDims(domain, want)

	type cell struct {
		bounds geom.Box
		ranks  []int
		count  int64
	}
	cells := make(map[int]*cell)
	size := domain.Size()
	bin := func(v, lo, extent float64, g int) int {
		if extent <= 0 {
			return 0
		}
		i := int((v - lo) / extent * float64(g))
		if i < 0 {
			return 0
		}
		if i >= g {
			return g - 1
		}
		return i
	}
	for _, r := range ranks {
		if r.Count == 0 {
			continue
		}
		c := r.Bounds.Center()
		ix := bin(c.X, domain.Lower.X, size.X, gx)
		iy := bin(c.Y, domain.Lower.Y, size.Y, gy)
		iz := bin(c.Z, domain.Lower.Z, size.Z, gz)
		key := (iz*gy+iy)*gx + ix
		cl := cells[key]
		if cl == nil {
			cl = &cell{bounds: geom.EmptyBox()}
			cells[key] = cl
		}
		cl.bounds = cl.bounds.Union(r.Bounds)
		cl.ranks = append(cl.ranks, r.Rank)
		cl.count += r.Count
	}
	keys := make([]int, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	leaves := make([]aggtree.Leaf, 0, len(keys))
	for _, k := range keys {
		cl := cells[k]
		sort.Ints(cl.ranks)
		leaves = append(leaves, aggtree.Leaf{
			Bounds: cl.bounds,
			Ranks:  cl.ranks,
			Count:  cl.count,
		})
	}
	return leaves, nil
}
