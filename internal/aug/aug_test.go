package aug

import (
	"testing"

	"libbat/internal/aggtree"
	"libbat/internal/geom"
)

const bpp = 12 + 4*8

func gridRanks(nx, ny, nz int, count func(ix, iy, iz int) int64) []aggtree.RankInfo {
	ranks := make([]aggtree.RankInfo, 0, nx*ny*nz)
	id := 0
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				lo := geom.V3(float64(ix)/float64(nx), float64(iy)/float64(ny), float64(iz)/float64(nz))
				hi := geom.V3(float64(ix+1)/float64(nx), float64(iy+1)/float64(ny), float64(iz+1)/float64(nz))
				ranks = append(ranks, aggtree.RankInfo{Rank: id, Bounds: geom.NewBox(lo, hi), Count: count(ix, iy, iz)})
				id++
			}
		}
	}
	return ranks
}

func TestBuildValidates(t *testing.T) {
	ranks := gridRanks(2, 2, 2, func(_, _, _ int) int64 { return 10 })
	if _, err := Build(ranks, Config{TargetFileSize: 0, BytesPerParticle: bpp}); err == nil {
		t.Error("zero target should error")
	}
	if _, err := Build(ranks, Config{TargetFileSize: 10, BytesPerParticle: 0}); err == nil {
		t.Error("zero bpp should error")
	}
}

func TestBuildEmpty(t *testing.T) {
	leaves, err := Build(nil, Config{TargetFileSize: 100, BytesPerParticle: bpp})
	if err != nil || len(leaves) != 0 {
		t.Errorf("empty build: %v, %d leaves", err, len(leaves))
	}
}

func TestGridDims(t *testing.T) {
	cube := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	gx, gy, gz := GridDims(cube, 8)
	if gx*gy*gz < 8 {
		t.Errorf("dims %dx%dx%d < 8 cells", gx, gy, gz)
	}
	if gx != gy || gy != gz {
		t.Errorf("cube should get a cubic grid, got %dx%dx%d", gx, gy, gz)
	}
	// Elongated domain gets more cells along the long axis.
	slab := geom.NewBox(geom.V3(0, 0, 0), geom.V3(8, 1, 1))
	gx, gy, gz = GridDims(slab, 8)
	if gx <= gy || gx <= gz {
		t.Errorf("slab grid should favor x: %dx%dx%d", gx, gy, gz)
	}
	// Want < 1 clamps.
	gx, gy, gz = GridDims(cube, 0)
	if gx*gy*gz < 1 {
		t.Error("zero want broke dims")
	}
	// Degenerate (flat) domain still works.
	flat := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 0))
	gx, gy, gz = GridDims(flat, 4)
	if gx*gy*gz < 4 {
		t.Errorf("flat domain dims %dx%dx%d", gx, gy, gz)
	}
}

func TestPartitionInvariant(t *testing.T) {
	ranks := gridRanks(4, 4, 4, func(ix, iy, iz int) int64 { return int64(1 + ix + iy*2 + iz*3) })
	var total int64
	for _, r := range ranks {
		total += r.Count
	}
	leaves, err := Build(ranks, Config{TargetFileSize: total * bpp / 8, BytesPerParticle: bpp})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	var sum int64
	for _, l := range leaves {
		for _, r := range l.Ranks {
			if seen[r] {
				t.Fatalf("rank %d in two leaves", r)
			}
			seen[r] = true
		}
		sum += l.Count
	}
	if sum != total {
		t.Errorf("leaf counts sum %d != total %d", sum, total)
	}
	if len(seen) != len(ranks) {
		t.Errorf("%d ranks assigned of %d", len(seen), len(ranks))
	}
}

func TestEmptyCellsDiscarded(t *testing.T) {
	// Particles only in one corner: most grid cells are empty and must
	// not appear as leaves.
	ranks := gridRanks(4, 4, 4, func(ix, iy, iz int) int64 {
		if ix == 0 && iy == 0 && iz == 0 {
			return 1000
		}
		return 0
	})
	leaves, err := Build(ranks, Config{TargetFileSize: 100 * bpp, BytesPerParticle: bpp})
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 1 {
		t.Fatalf("want 1 nonempty leaf, got %d", len(leaves))
	}
	if leaves[0].Count != 1000 || len(leaves[0].Ranks) != 1 {
		t.Errorf("leaf = %+v", leaves[0])
	}
}

func TestAUGImbalanceVsAdaptive(t *testing.T) {
	// The motivating comparison: on a strongly nonuniform distribution the
	// AUG grid produces a larger maximum leaf than the adaptive tree at
	// the same target size.
	ranks := gridRanks(8, 8, 1, func(ix, iy, _ int) int64 {
		if ix < 2 && iy < 2 {
			return 50000
		}
		return 100
	})
	var total int64
	for _, r := range ranks {
		total += r.Count
	}
	target := total * bpp / 16
	augLeaves, err := Build(ranks, Config{TargetFileSize: target, BytesPerParticle: bpp})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := aggtree.Build(ranks, aggtree.DefaultConfig(target, bpp))
	if err != nil {
		t.Fatal(err)
	}
	augStats := aggtree.LeafSizeStats(augLeaves, bpp)
	adStats := aggtree.LeafSizeStats(tr.Leaves, bpp)
	if augStats.MaxB <= adStats.MaxB {
		t.Errorf("expected AUG max leaf > adaptive: aug %+v adaptive %+v", augStats, adStats)
	}
}

func TestAggregatorAssignmentSharing(t *testing.T) {
	ranks := gridRanks(4, 4, 1, func(_, _, _ int) int64 { return 500 })
	leaves, err := Build(ranks, Config{TargetFileSize: 1000 * bpp, BytesPerParticle: bpp})
	if err != nil {
		t.Fatal(err)
	}
	agg := aggtree.AssignAggregators(leaves, 16)
	for _, l := range leaves {
		for _, r := range l.Ranks {
			if agg[r] != l.Aggregator {
				t.Fatalf("rank %d aggregator mismatch", r)
			}
		}
	}
}

func TestDeterministicOrder(t *testing.T) {
	ranks := gridRanks(4, 4, 2, func(ix, iy, iz int) int64 { return int64(ix + iy + iz + 1) })
	a, err := Build(ranks, Config{TargetFileSize: 10 * bpp, BytesPerParticle: bpp})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(ranks, Config{TargetFileSize: 10 * bpp, BytesPerParticle: bpp})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic leaf count")
	}
	for i := range a {
		if a[i].Count != b[i].Count || len(a[i].Ranks) != len(b[i].Ranks) {
			t.Fatalf("leaf %d differs between runs", i)
		}
	}
}
