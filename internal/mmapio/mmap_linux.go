//go:build linux

// Package mmapio memory-maps files for read access, the access mode the
// paper uses for visualization reads (§V): the OS page cache serves
// frequently accessed regions and the 4 KB-aligned treelets map to whole
// pages. On platforms without mmap support the package falls back to
// pread-style access.
package mmapio

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// Mapping is a read-only memory-mapped file.
type Mapping struct {
	data []byte
	f    *os.File
}

// Supported reports whether true memory mapping is available.
func Supported() bool { return true }

// Open maps the file at path read-only.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		noteOpen(0)
		return &Mapping{f: f}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()),
		syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("mmapio: mmap %s: %w", path, err)
	}
	noteOpen(st.Size())
	return &Mapping{data: data, f: f}, nil
}

// Bytes returns the mapped contents. The slice is invalid after Close.
func (m *Mapping) Bytes() []byte { return m.data }

// Size returns the mapped length.
func (m *Mapping) Size() int64 { return int64(len(m.data)) }

// ReadAt implements io.ReaderAt over the mapping.
func (m *Mapping) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	noteRead(n)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Close unmaps and closes the file. Further calls are no-ops.
func (m *Mapping) Close() error {
	var err error
	if m.data != nil {
		err = syscall.Munmap(m.data)
		m.data = nil
	}
	if m.f != nil {
		if cerr := m.f.Close(); err == nil {
			err = cerr
		}
		m.f = nil
	}
	return err
}
