package mmapio

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenReadClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	content := bytes.Repeat([]byte("abcdefgh"), 1024)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != int64(len(content)) {
		t.Errorf("Size = %d", m.Size())
	}
	if !bytes.Equal(m.Bytes(), content) {
		t.Error("Bytes mismatch")
	}
	buf := make([]byte, 8)
	if _, err := m.ReadAt(buf, 8); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abcdefgh" {
		t.Errorf("ReadAt = %q", buf)
	}
	// Reads at/past the end.
	if _, err := m.ReadAt(buf, m.Size()); err != io.EOF {
		t.Errorf("read at end: %v", err)
	}
	if n, err := m.ReadAt(buf, m.Size()-4); n != 4 || err != io.EOF {
		t.Errorf("short tail read: n=%d err=%v", n, err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close is safe.
	if err := m.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should error")
	}
}

func TestOpenEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Size() != 0 {
		t.Errorf("empty Size = %d", m.Size())
	}
	if _, err := m.ReadAt(make([]byte, 1), 0); err != io.EOF {
		t.Errorf("empty read: %v", err)
	}
}
