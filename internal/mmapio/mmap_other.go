//go:build !linux

// Fallback implementation for platforms without syscall.Mmap: the file is
// read into memory once, giving the same interface without page-level
// laziness.
package mmapio

import (
	"io"
	"os"
)

// Mapping is a read-only file image.
type Mapping struct {
	data []byte
}

// Supported reports whether true memory mapping is available.
func Supported() bool { return false }

// Open loads the file at path.
func Open(path string) (*Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	noteOpen(int64(len(data)))
	return &Mapping{data: data}, nil
}

// Bytes returns the file contents.
func (m *Mapping) Bytes() []byte { return m.data }

// Size returns the content length.
func (m *Mapping) Size() int64 { return int64(len(m.data)) }

// ReadAt implements io.ReaderAt.
func (m *Mapping) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	noteRead(n)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Close releases the contents.
func (m *Mapping) Close() error {
	m.data = nil
	return nil
}
