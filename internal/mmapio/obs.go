package mmapio

import (
	"sync/atomic"

	"libbat/internal/obs"
)

// collector is the package's optional telemetry sink. Mappings are opened
// by whichever goroutine holds a BAT file, so the hook is a single atomic
// pointer rather than per-mapping plumbing.
var collector atomic.Pointer[obs.Collector]

// SetCollector attaches (or, with nil, detaches) a telemetry collector.
// Subsequently opened mappings count opens, mapped bytes, and ReadAt
// calls/bytes on it.
func SetCollector(c *obs.Collector) { collector.Store(c) }

// noteOpen counts one mapping of size bytes.
func noteOpen(size int64) {
	if c := collector.Load(); c != nil {
		c.Add("mmap_open_calls_total", 1)
		c.Add("mmap_mapped_bytes_total", size)
	}
}

// noteRead counts one ReadAt of n bytes.
func noteRead(n int) {
	if c := collector.Load(); c != nil {
		c.Add("mmap_read_calls_total", 1)
		c.Add("mmap_read_bytes_total", int64(n))
	}
}
