package bat

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"libbat/internal/geom"
	"libbat/internal/particles"
)

// cosmoSchema is a cosmology-shaped attribute mix: smooth float64 fields,
// a float32 field, and an integral identifier.
func cosmoSchema() particles.Schema {
	return particles.Schema{Attrs: []particles.AttrDesc{
		{Name: "mass", Type: particles.Float64},
		{Name: "vx", Type: particles.Float64},
		{Name: "phi", Type: particles.Float32},
		{Name: "id", Type: particles.Float64},
	}}
}

// cosmoSet builds a clustered set over cosmoSchema: lognormal mass,
// gaussian velocity, a smooth potential, and a unique integral id (the
// join key the error checks below use to match decoded values to their
// originals).
func cosmoSet(n int, seed int64) (*particles.Set, geom.Box) {
	r := rand.New(rand.NewSource(seed))
	s := particles.NewSet(cosmoSchema(), n)
	for i := 0; i < n; i++ {
		var p geom.Vec3
		if i%4 != 0 {
			c := geom.V3(float64(i%3)*0.3+0.1, float64((i/3)%3)*0.3+0.1, 0.5)
			p = geom.V3(c.X+r.NormFloat64()*0.02, c.Y+r.NormFloat64()*0.02, c.Z+r.NormFloat64()*0.02)
		} else {
			p = geom.V3(r.Float64(), r.Float64(), r.Float64())
		}
		s.Append(p, []float64{
			math.Exp(r.NormFloat64()), // mass: lognormal
			r.NormFloat64() * 300,     // vx: gaussian
			math.Sin(p.X*7) + p.Y*0.5, // phi: smooth in space
			float64(i),                // id: unique, integral
		})
	}
	return s, geom.NewBox(geom.V3(-1, -1, -1), geom.V3(2, 2, 2))
}

func compressedConfig(bounds []float64) BuildConfig {
	cfg := DefaultBuildConfig()
	cfg.MaxLeafSize = 64
	cfg.LODPerNode = 4
	cfg.Compress = true
	cfg.AttrErrorBounds = bounds
	return cfg
}

// TestCompressedMaxErrorProperty is the codec's central guarantee: for
// random datasets and random per-attribute absolute bounds, every decoded
// value is within the stated bound of the original (measured against the
// type-rounded value the lossless layout would store), and bound-0
// attributes round-trip bit-exact. scripts/check.sh runs this under -race.
func TestCompressedMaxErrorProperty(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		r := rand.New(rand.NewSource(seed * 977))
		s, domain := cosmoSet(4000, seed)
		bounds := []float64{
			math.Pow(10, -1-3*r.Float64()), // mass
			math.Pow(10, 1-4*r.Float64()),  // vx
			math.Pow(10, -2-3*r.Float64()), // phi
			0,                              // id: lossless
		}
		if seed == 2 {
			bounds[0] = 0 // exercise lossless fallback on a float field too
		}
		f, _ := buildAndOpen(t, s, domain, compressedConfig(bounds))
		if f.Version != 3 {
			t.Fatalf("compressed build wrote version %d, want 3", f.Version)
		}
		got, err := f.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != s.Len() {
			t.Fatalf("ReadAll returned %d of %d particles", got.Len(), s.Len())
		}
		// Join decoded rows to originals on the lossless id attribute.
		byID := make(map[float64]int, s.Len())
		for i := 0; i < s.Len(); i++ {
			byID[s.Attrs[3][i]] = i
		}
		for i := 0; i < got.Len(); i++ {
			oi, ok := byID[got.Attrs[3][i]]
			if !ok {
				t.Fatalf("seed %d: decoded id %v not in original set", seed, got.Attrs[3][i])
			}
			for a, b := range bounds {
				want := typedValue(s.Attrs[a][oi], s.Schema.Attrs[a].Type)
				gotV := got.Attrs[a][i]
				if b == 0 {
					if gotV != want {
						t.Fatalf("seed %d attr %d: lossless value %v != %v", seed, a, gotV, want)
					}
				} else if math.Abs(gotV-want) > b {
					t.Fatalf("seed %d attr %d: |%v - %v| = %v exceeds bound %v",
						seed, a, gotV, want, math.Abs(gotV-want), b)
				}
			}
		}
	}
}

// TestCompressedLosslessBitExact pins the all-bounds-zero configuration:
// the file is version 3 (framed sections) but every value round-trips
// bit-exact through the delta/raw fallbacks.
func TestCompressedLosslessBitExact(t *testing.T) {
	s, domain := cosmoSet(3000, 11)
	cfg := compressedConfig(nil)
	cfg.ErrorBound = 0
	f, _ := buildAndOpen(t, s, domain, cfg)
	if f.Version != 3 {
		t.Fatalf("version = %d, want 3", f.Version)
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[float64]int, s.Len())
	for i := 0; i < s.Len(); i++ {
		byID[s.Attrs[3][i]] = i
	}
	for i := 0; i < got.Len(); i++ {
		oi := byID[got.Attrs[3][i]]
		for a := range s.Schema.Attrs {
			want := typedValue(s.Attrs[a][oi], s.Schema.Attrs[a].Type)
			if got.Attrs[a][i] != want {
				t.Fatalf("attr %d: %v != %v", a, got.Attrs[a][i], want)
			}
		}
	}
}

// TestCompressedBuildDeterminism extends the byte-identity invariant to
// compressed builds: serial and parallel builds at any worker count must
// produce identical version-3 images.
func TestCompressedBuildDeterminism(t *testing.T) {
	s, domain := cosmoSet(8000, 5)
	base := compressedConfig([]float64{1e-3, 1e-1, 1e-4, 0})
	ref := base
	ref.Parallel = false
	want, err := Build(s, domain, ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7, 0, runtime.GOMAXPROCS(0)} {
		cfg := base
		cfg.Parallel = true
		cfg.Workers = workers
		got, err := Build(s, domain, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(got.Buf, want.Buf) {
			t.Fatalf("workers=%d: compressed output differs from serial build (%d vs %d bytes)",
				workers, len(got.Buf), len(want.Buf))
		}
	}
}

// TestUncompressedStaysV2 pins the compatibility contract: builds without
// Compress keep writing byte-for-byte version-2 files — the v3 machinery
// must be invisible to them.
func TestUncompressedStaysV2(t *testing.T) {
	s, domain := cosmoSet(2000, 7)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	if f.Version != 2 {
		t.Fatalf("uncompressed build wrote version %d, want 2", f.Version)
	}
	if f.Compression() != nil {
		t.Fatal("uncompressed file reports compression info")
	}
}

// TestCompressedLODScale checks the multiresolution bound split: values
// referenced by LOD samples (inner-node ranges) may err up to
// bound*LODErrorScale, everything else up to bound. The per-index
// classification is recomputed from the parsed node records, exactly as
// the decoder does.
func TestCompressedLODScale(t *testing.T) {
	s, domain := cosmoSet(6000, 9)
	const bound, scale = 1e-3, 16.0
	cfg := compressedConfig([]float64{bound, 0, 0, 0})
	cfg.LODErrorScale = scale
	f, _ := buildAndOpen(t, s, domain, cfg)
	byID := make(map[float64]int, s.Len())
	for i := 0; i < s.Len(); i++ {
		byID[s.Attrs[3][i]] = i
	}
	sawLOD := false
	for ti := 0; ti < f.NumTreelets(); ti++ {
		pt, err := f.loadTreelet(context.Background(), ti)
		if err != nil {
			t.Fatal(err)
		}
		mask := lodMaskFromDisk(pt.nodes, len(pt.attrs[3]))
		for i, id := range pt.attrs[3] {
			oi, ok := byID[id]
			if !ok {
				t.Fatalf("treelet %d: unknown id %v", ti, id)
			}
			tol := bound
			if mask[i] {
				tol = bound * scale
				sawLOD = true
			}
			if diff := math.Abs(pt.attrs[0][i] - s.Attrs[0][oi]); diff > tol {
				t.Fatalf("treelet %d index %d (lod=%v): error %v exceeds %v", ti, i, mask[i], diff, tol)
			}
		}
	}
	if !sawLOD {
		t.Fatal("no LOD-classified values; test is vacuous")
	}
}

// TestCompressionInfoAndSections checks the footer accounting: the
// Compression() totals must equal both the BuildStats payload fields and
// the sum over every TreeletSections frame, and a smooth dataset at a
// loose bound must actually compress.
func TestCompressionInfoAndSections(t *testing.T) {
	s, domain := cosmoSet(5000, 13)
	bounds := []float64{1e-3, 1e-1, 1e-3, 0}
	f, b := buildAndOpen(t, s, domain, compressedConfig(bounds))
	ci := f.Compression()
	if ci == nil {
		t.Fatal("Compression() = nil for a version-3 file")
	}
	for a, want := range bounds {
		if ci.Bounds[a] != want {
			t.Fatalf("attr %d bound %v != %v", a, ci.Bounds[a], want)
		}
	}
	wantCodecs := []uint8{codecQuant, codecQuant, codecQuant, codecDelta}
	for a, want := range wantCodecs {
		if ci.Codecs[a] != want {
			t.Fatalf("attr %d codec %s != %s", a, CodecName(ci.Codecs[a]), CodecName(want))
		}
	}
	if ci.LODScale != 1 {
		t.Fatalf("LOD scale %v != 1", ci.LODScale)
	}
	if int64(ci.RawPayloadBytes) != b.Stats.AttrPayloadRawBytes ||
		int64(ci.EncPayloadBytes) != b.Stats.AttrPayloadEncBytes {
		t.Fatalf("footer payload totals %d/%d != stats %d/%d",
			ci.RawPayloadBytes, ci.EncPayloadBytes,
			b.Stats.AttrPayloadRawBytes, b.Stats.AttrPayloadEncBytes)
	}
	if ci.Ratio() < 2 {
		t.Fatalf("compression ratio %.2f < 2 on a smooth dataset", ci.Ratio())
	}
	var sumRaw, sumEnc int
	for ti := 0; ti < f.NumTreelets(); ti++ {
		secs, err := f.TreeletSections(context.Background(), ti)
		if err != nil {
			t.Fatal(err)
		}
		for _, sec := range secs {
			sumRaw += sec.RawBytes
			sumEnc += sec.EncBytes
		}
	}
	if uint64(sumRaw) != ci.RawPayloadBytes || uint64(sumEnc) != ci.EncPayloadBytes {
		t.Fatalf("section sums %d/%d != footer totals %d/%d",
			sumRaw, sumEnc, ci.RawPayloadBytes, ci.EncPayloadBytes)
	}
}

// TestCompressConfigValidation pins the knob contract for the codec
// configuration.
func TestCompressConfigValidation(t *testing.T) {
	s, domain := cosmoSet(100, 3)
	bad := []BuildConfig{}
	c1 := DefaultBuildConfig()
	c1.Compress = true
	c1.ErrorBound = -1
	bad = append(bad, c1)
	c2 := DefaultBuildConfig()
	c2.Compress = true
	c2.ErrorBound = math.Inf(1)
	bad = append(bad, c2)
	c3 := DefaultBuildConfig()
	c3.Compress = true
	c3.AttrErrorBounds = []float64{1e-3} // wrong length for 4 attrs
	bad = append(bad, c3)
	c4 := DefaultBuildConfig()
	c4.Compress = true
	c4.LODErrorScale = 0.5
	bad = append(bad, c4)
	c5 := DefaultBuildConfig()
	c5.Compress = true
	c5.AttrErrorBounds = []float64{1e-3, 1e-3, math.NaN(), 0}
	bad = append(bad, c5)
	for i, cfg := range bad {
		if _, err := Build(s, domain, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestDeltaCodec unit-tests the lossless integral codec directly:
// round-trip for integral streams, rejection of non-integral and
// out-of-range values.
func TestDeltaCodec(t *testing.T) {
	vals := []float64{0, 1, -1, 1000, -999, 1 << 40, -(1 << 40), 42}
	enc, ok := encodeDelta(vals, len(vals)*8)
	if !ok {
		t.Fatal("integral stream rejected")
	}
	dec, err := decodeDelta(enc, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if dec[i] != vals[i] {
			t.Fatalf("index %d: %v != %v", i, dec[i], vals[i])
		}
	}
	if _, ok := encodeDelta([]float64{1.5, 2}, 16); ok {
		t.Fatal("non-integral stream accepted")
	}
	if _, ok := encodeDelta([]float64{float64(uint64(1) << 53)}, 8); ok {
		t.Fatal("out-of-range magnitude accepted")
	}
}

// TestBitPackRoundTrip fuzzes the bit packer against its reader across
// random widths.
func TestBitPackRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		nbits := uint8(r.Intn(maxQuantBits) + 1)
		n := r.Intn(100) + 1
		vals := make([]uint64, n)
		w := &bitWriter{}
		for i := range vals {
			vals[i] = r.Uint64() & ((1 << nbits) - 1)
			w.write(vals[i], nbits)
		}
		w.flush()
		rd := &bitReader{buf: w.buf}
		for i := range vals {
			got, ok := rd.read(nbits)
			if !ok {
				t.Fatalf("trial %d: stream ended at %d of %d", trial, i, n)
			}
			if got != vals[i] {
				t.Fatalf("trial %d index %d: %d != %d", trial, i, got, vals[i])
			}
		}
	}
}
