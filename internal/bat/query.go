package bat

import (
	"context"
	"errors"
	"math"
	"runtime"

	"libbat/internal/bitmap"
	"libbat/internal/geom"
	"libbat/internal/particles"
)

// maxSaneDepth bounds treelet traversal: a treelet with 2^64 leaves is
// impossible, so deeper recursion means a corrupt file with cyclic links.
const maxSaneDepth = 64

var errCyclicTreelet = errors.New("bat: treelet node links form a cycle (corrupt file)")

// AttrFilter restricts a query to particles whose attribute lies in
// [Min, Max].
type AttrFilter struct {
	Attr     int
	Min, Max float64
}

// Query describes a visualization read (paper §V): an optional bounding box
// for spatial filtering, a set of attribute filters, and a progressive
// quality window. Quality ranges over [0, 1]: 0 loads nothing, 1 the entire
// data set; the value is log-remapped to a maximum treelet depth since the
// number of LOD particles doubles each level (§V-B). Setting PrevQuality to
// the previously queried level makes the read progressive, processing only
// the new particles for the quality increment.
type Query struct {
	Bounds      *geom.Box
	Filters     []AttrFilter
	PrevQuality float64
	Quality     float64
}

// Visitor receives each particle matched by a query. Returning a non-nil
// error aborts the traversal.
type Visitor func(p geom.Vec3, attrs []float64) error

// QueryConfig tunes how a traversal executes. It never changes which
// particles a query matches — only how the work is scheduled.
//
// The zero value is the serial engine: one goroutine, visits in
// deterministic tree order, no readahead.
type QueryConfig struct {
	// Workers is the number of traversal goroutines. 0 or 1 selects the
	// serial engine, whose visit sequence is identical to the pre-parallel
	// reader. Negative selects GOMAXPROCS.
	Workers int

	// Ordered, when true with Workers > 1, delivers visits in the same
	// deterministic treelet order as the serial engine (completed treelets
	// are buffered until their turn). When false, visits arrive as treelets
	// complete — same particle multiset, lower latency and memory.
	Ordered bool

	// Readahead is the number of upcoming candidate treelets to prefetch
	// while one is being traversed (0 = off). Prefetches are best-effort
	// and bounded; they only warm the cache.
	Readahead int
}

// effectiveWorkers resolves the Workers field to a concrete count.
func (c QueryConfig) effectiveWorkers() int {
	if c.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if c.Workers == 0 {
		return 1
	}
	return c.Workers
}

// qualityToDepth log-remaps a quality level in [0,1] to a continuous
// treelet depth: the number of particles per level doubles, so quality q
// maps to the depth t at which the cumulative particle count reaches a
// fraction q of the total, t = log2(1 + q*(2^(maxDepth+1)-1)). It returns
// the integer maximum depth to traverse and the fraction of each node's
// particles to process at that depth (§V-B).
func qualityToDepth(q float64, maxDepth int) (depth int, frac float64) {
	if q <= 0 {
		return 0, 0
	}
	if q >= 1 {
		return maxDepth, 1
	}
	t := math.Log2(1 + q*(math.Exp2(float64(maxDepth+1))-1))
	depth = int(t)
	if depth > maxDepth {
		return maxDepth, 1
	}
	frac = t - float64(depth)
	return depth, frac
}

// portion returns the fraction of a node's particles processed at depth d
// for a quality window endpoint (D, frac).
func portion(d, depth int, frac float64) float64 {
	switch {
	case d < depth:
		return 1
	case d == depth:
		return frac
	default:
		return 0
	}
}

// queryState is the precomputed, read-only filter state of one traversal.
// It is shared by every worker goroutine of a parallel query, so nothing
// in it may be mutated after prepare returns.
type queryState struct {
	q     Query
	masks []bitmap.Bitmap // query bitmap per filter, in Filters order
	prevD int
	prevF float64
	curD  int
	curF  float64
}

// traversalCounters accumulates per-traversal statistics. Each goroutine
// owns its own instance; parallel runs merge them on delivery.
type traversalCounters struct {
	visited  int64
	pruned   int64
	falsePos int64
	treelets int64
}

func (c *traversalCounters) add(o traversalCounters) {
	c.visited += o.visited
	c.pruned += o.pruned
	c.falsePos += o.falsePos
	c.treelets += o.treelets
}

// prepare validates the query against the file and computes the bitmap
// masks. It reports whether the query can match anything at all.
func (f *File) prepare(q Query) (*queryState, bool) {
	if q.Quality <= 0 {
		q.Quality = 1
	}
	s := &queryState{q: q}
	s.prevD, s.prevF = qualityToDepth(q.PrevQuality, f.MaxTreeletDepth)
	s.curD, s.curF = qualityToDepth(q.Quality, f.MaxTreeletDepth)
	if q.PrevQuality >= q.Quality {
		return s, false
	}
	if q.Bounds != nil && !q.Bounds.Overlaps(f.Domain) {
		return s, false
	}
	s.masks = make([]bitmap.Bitmap, len(q.Filters))
	for i, flt := range q.Filters {
		if flt.Attr < 0 || flt.Attr >= f.Schema.NumAttrs() {
			return s, false
		}
		m := bitmap.OfQuery(flt.Min, flt.Max, f.Ranges[flt.Attr])
		if m == 0 {
			// The filter interval misses the file's local range entirely.
			return s, false
		}
		s.masks[i] = m
	}
	return s, true
}

// nodePassesBitmaps tests a node's bitmap IDs against every filter mask.
func (s *queryState) nodePassesBitmaps(f *File, ids []bitmap.ID) bool {
	for i, m := range s.masks {
		if !f.dict.Lookup(ids[s.q.Filters[i].Attr]).Overlaps(m) {
			return false
		}
	}
	return true
}

// pointPasses applies the exact false-positive checks (§V-A): point-in-box
// and exact attribute intervals.
func (s *queryState) pointPasses(p geom.Vec3, t *parsedTreelet, pi uint32) bool {
	if s.q.Bounds != nil && !s.q.Bounds.Contains(p) {
		return false
	}
	for _, flt := range s.q.Filters {
		v := t.attrs[flt.Attr][pi]
		if v < flt.Min || v > flt.Max {
			return false
		}
	}
	return true
}

// QueryStats reports what a traversal did: how many particles reached the
// visitor, how many were rejected by the exact (false-positive) checks,
// and how many subtrees the bitmaps and bounds pruned without touching
// their particles.
type QueryStats struct {
	Visited        int64
	FalsePositives int64
	PrunedSubtrees int64
	// Treelets is the number of treelets actually loaded and traversed
	// (candidates that survived shallow-tree pruning).
	Treelets int64
}

// Query traverses the file, invoking visit for every particle matching the
// query, using the File's configured QueryConfig (serial by default).
// Particles are visited treelet by treelet in increasing depth order within
// each treelet; with Workers > 1 and Ordered false, treelets may complete
// out of order but the visited multiset is identical.
//
// Query is safe to call from multiple goroutines concurrently; the visitor
// of any single call is never invoked concurrently with itself.
func (f *File) Query(q Query, visit Visitor) error {
	_, err := f.QueryWithStats(q, visit)
	return err
}

// QueryCtx is Query honoring ctx: when ctx ends, the traversal stops
// promptly (workers observe the shared cancel flag per tree node, storage
// reads abort) and ctx.Err() is returned. For uncanceled contexts the
// visit sequence is byte-identical to Query's.
func (f *File) QueryCtx(ctx context.Context, q Query, visit Visitor) error {
	_, err := f.QueryWithStatsCtx(ctx, q, visit)
	return err
}

// QueryWithStats is Query returning traversal statistics.
func (f *File) QueryWithStats(q Query, visit Visitor) (QueryStats, error) {
	return f.QueryWithConfig(q, f.queryConfig(), visit)
}

// QueryWithStatsCtx is QueryCtx returning traversal statistics.
func (f *File) QueryWithStatsCtx(ctx context.Context, q Query, visit Visitor) (QueryStats, error) {
	return f.QueryWithConfigCtx(ctx, q, f.queryConfig(), visit)
}

// QueryWithConfig runs one traversal under an explicit QueryConfig,
// overriding the File-level configuration.
func (f *File) QueryWithConfig(q Query, cfg QueryConfig, visit Visitor) (QueryStats, error) {
	return f.QueryWithConfigCtx(context.Background(), q, cfg, visit)
}

// QueryWithConfigCtx is QueryWithConfig honoring ctx. The context is
// bridged to the traversal's polled cancel flag via context.AfterFunc, so
// per-node cancellation checks stay a single atomic load.
func (f *File) QueryWithConfigCtx(ctx context.Context, q Query, cfg QueryConfig, visit Visitor) (QueryStats, error) {
	s, ok := f.prepare(q)
	if !ok || len(f.leaves) == 0 {
		return QueryStats{}, ctx.Err()
	}
	for _, flt := range q.Filters {
		f.access.TouchAttr(f.Schema.Attrs[flt.Attr].Name, 1)
	}
	var cancel *cancelFlag
	if ctx.Done() != nil {
		cancel = &cancelFlag{}
		stop := context.AfterFunc(ctx, cancel.set)
		defer stop()
	}
	var tc traversalCounters
	cands, err := f.selectTreelets(s, &tc)
	if err == nil && len(cands) > 0 {
		w := cfg.effectiveWorkers()
		if w > len(cands) {
			w = len(cands)
		}
		if w <= 1 {
			err = f.runSerial(ctx, s, cands, cfg, &tc, visit, cancel)
		} else {
			err = f.runParallel(ctx, s, cands, cfg, w, &tc, visit, cancel)
		}
	}
	if err == errTraversalCancelled {
		// The flag is only ever set externally via ctx here; surface the
		// context's error rather than the internal sentinel.
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		}
	}
	if err == nil {
		err = ctx.Err()
	}
	return QueryStats{
		Visited:        tc.visited,
		FalsePositives: tc.falsePos,
		PrunedSubtrees: tc.pruned,
		Treelets:       tc.treelets,
	}, err
}

// selectTreelets walks the shallow tree serially — it is in-memory and tiny
// relative to the treelets — pruning by bounds and bitmaps, and returns the
// surviving treelet leaves in deterministic left-to-right order. This list
// is the unit of parallelism: both engines traverse exactly these treelets,
// the serial one in this order.
func (f *File) selectTreelets(s *queryState, tc *traversalCounters) ([]int, error) {
	if len(f.shallow) == 0 {
		// Single-treelet file: the treelet's root node carries the bitmap
		// summary, so traversal handles all pruning.
		return []int{0}, nil
	}
	var out []int
	var walk func(ref int32, bounds geom.Box, depth int) error
	walk = func(ref int32, bounds geom.Box, depth int) error {
		if li, isLeaf := isShallowLeaf(ref); isLeaf {
			if !s.nodePassesBitmaps(f, f.leaves[li].ids) {
				tc.pruned++
				return nil
			}
			out = append(out, li)
			return nil
		}
		if depth > maxSaneDepth {
			return errCyclicTreelet
		}
		n := &f.shallow[ref]
		if s.q.Bounds != nil && !s.q.Bounds.Overlaps(bounds) {
			tc.pruned++
			return nil
		}
		if !s.nodePassesBitmaps(f, n.ids) {
			tc.pruned++
			return nil
		}
		lo, hi := bounds.SplitAt(n.axis, n.pos)
		if err := walk(n.left, lo, depth+1); err != nil {
			return err
		}
		return walk(n.right, hi, depth+1)
	}
	err := walk(0, f.Domain, 0)
	return out, err
}

// isShallowLeaf decodes a shallow-tree child reference.
func isShallowLeaf(ref int32) (int, bool) {
	if ref < 0 {
		return int(^ref), true
	}
	return 0, false
}

// emitFn receives each particle that passed the exact checks during one
// treelet traversal. The serial engine calls the visitor directly; the
// parallel engine appends to a batch for ordered delivery.
type emitFn func(p geom.Vec3, t *parsedTreelet, pi uint32) error

// errTraversalCancelled is returned (and swallowed by callers) when a
// worker observes the shared cancel flag mid-treelet.
var errTraversalCancelled = errors.New("bat: traversal cancelled")

// traverseTreelet walks one parsed treelet depth-first, emitting each
// node's particle window for the progressive quality range. It updates
// tc.pruned/tc.falsePos; emit implementations account for visits. cancel,
// when non-nil, is polled at each node so aborted parallel queries stop
// promptly.
func (s *queryState) traverseTreelet(f *File, t *parsedTreelet, tc *traversalCounters, emit emitFn, cancel *cancelFlag) error {
	if len(t.nodes) == 0 {
		return nil
	}
	var rec func(ni int32, depth int) error
	rec = func(ni int32, depth int) error {
		if depth > s.curD {
			return nil
		}
		// Defense against corrupt files whose child links form a cycle.
		if depth > maxSaneDepth {
			return errCyclicTreelet
		}
		if cancel.isSet() {
			return errTraversalCancelled
		}
		n := &t.nodes[ni]
		if !s.nodePassesBitmaps(f, n.ids) {
			tc.pruned++
			return nil
		}
		// Emit this node's particle window for the quality increment.
		p0 := portion(depth, s.prevD, s.prevF)
		p1 := portion(depth, s.curD, s.curF)
		if p1 > p0 {
			// Floor both window edges so consecutive progressive reads
			// tile exactly: a later read's lower edge equals this read's
			// upper edge.
			lo := uint32(float64(n.count) * p0)
			hi := uint32(float64(n.count) * p1)
			if hi > n.count {
				hi = n.count
			}
			for pi := n.start + lo; pi < n.start+hi; pi++ {
				p := geom.V3(float64(t.x[pi]), float64(t.y[pi]), float64(t.z[pi]))
				if !s.pointPasses(p, t, pi) {
					tc.falsePos++
					continue
				}
				if err := emit(p, t, pi); err != nil {
					return err
				}
			}
		}
		if n.axis == uint8(leafAxis) {
			return nil
		}
		// Spatial pruning against the split plane.
		if s.q.Bounds != nil {
			ax := geom.Axis(n.axis)
			if s.q.Bounds.Lower.Component(ax) >= n.pos {
				return rec(n.right, depth+1)
			}
			if s.q.Bounds.Upper.Component(ax) < n.pos {
				return rec(n.left, depth+1)
			}
		}
		if err := rec(n.left, depth+1); err != nil {
			return err
		}
		return rec(n.right, depth+1)
	}
	return rec(0, 0)
}

// runSerial traverses the candidate treelets one by one on the calling
// goroutine, with visit order identical to the pre-parallel reader. A
// sliding readahead window keeps the next cfg.Readahead treelets warming
// in the cache while the current one is walked.
func (f *File) runSerial(ctx context.Context, s *queryState, cands []int, cfg QueryConfig, tc *traversalCounters, visit Visitor, cancel *cancelFlag) error {
	emit := func(p geom.Vec3, t *parsedTreelet, pi uint32) error {
		attrs := make([]float64, len(t.attrs))
		for a := range attrs {
			attrs[a] = t.attrs[a][pi]
		}
		tc.visited++
		return visit(p, attrs)
	}
	for i, li := range cands {
		if cancel.isSet() {
			return errTraversalCancelled
		}
		// The AfterFunc that sets the flag runs on its own goroutine and
		// may lag on a busy scheduler; a direct per-treelet check keeps
		// cancellation prompt regardless.
		if err := ctx.Err(); err != nil {
			return err
		}
		if cfg.Readahead > 0 {
			if i == 0 {
				for j := 1; j <= cfg.Readahead && j < len(cands); j++ {
					f.prefetch(ctx, cands[j], cfg.Readahead)
				}
			} else if i+cfg.Readahead < len(cands) {
				f.prefetch(ctx, cands[i+cfg.Readahead], cfg.Readahead)
			}
		}
		t, err := f.loadTreelet(ctx, li)
		if err != nil {
			return err
		}
		tc.treelets++
		ref := &f.leaves[li]
		f.access.Treelet(f.accessLeaf, li, int64(ref.byteLen), ref.bounds.Center())
		if err := s.traverseTreelet(f, t, tc, emit, cancel); err != nil {
			return err
		}
	}
	return nil
}

// CollectBox gathers every particle inside bounds into a new set; this is
// the spatial read used by the parallel read pipeline's data servers.
func (f *File) CollectBox(bounds geom.Box) (*particles.Set, error) {
	out := particles.NewSet(f.Schema, 0)
	err := f.Query(Query{Bounds: &bounds}, func(p geom.Vec3, attrs []float64) error {
		out.Append(p, attrs)
		return nil
	})
	return out, err
}

// ReadAll gathers every particle in the file into a new set.
func (f *File) ReadAll() (*particles.Set, error) {
	out := particles.NewSet(f.Schema, int(f.NumParticles))
	err := f.Query(Query{}, func(p geom.Vec3, attrs []float64) error {
		out.Append(p, attrs)
		return nil
	})
	return out, err
}

// CountMatching returns the number of particles a query would visit; useful
// for sizing receive buffers before a data transfer.
func (f *File) CountMatching(q Query) (int64, error) {
	var n int64
	err := f.Query(q, func(geom.Vec3, []float64) error {
		n++
		return nil
	})
	return n, err
}
