// Reading, traversal, and progressive multiresolution queries over a
// compacted BAT (paper §V). The reader parses the header (shallow tree +
// bitmap dictionary) eagerly and loads 4 KB-aligned treelets lazily through
// an io.ReaderAt, relying on the OS page cache for repeated access the way
// the paper's memory-mapped implementation does.
package bat

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"libbat/internal/bitmap"
	"libbat/internal/checksum"
	"libbat/internal/geom"
	"libbat/internal/mmapio"
	"libbat/internal/obs"
	"libbat/internal/obs/access"
	"libbat/internal/particles"
	"libbat/internal/pfs"
)

// shallowNode is a parsed shallow-tree inner node.
type shallowNode struct {
	axis        geom.Axis
	pos         float64
	left, right int32
	ids         []bitmap.ID
}

// leafRef is a parsed shallow leaf: the location of its treelet and the
// treelet's tight point bounds (the quantization frame).
type leafRef struct {
	offset    uint64
	byteLen   uint32
	numNodes  uint32
	numPoints uint32
	bounds    geom.Box
	ids       []bitmap.ID
}

// diskNode is a parsed treelet node.
type diskNode struct {
	axis         uint8
	pos          float64
	left, right  int32
	start, count uint32
	ids          []bitmap.ID
}

// parsedTreelet is a treelet loaded into memory.
type parsedTreelet struct {
	nodes   []diskNode
	x, y, z []float32
	attrs   [][]float64
}

// File is an open BAT file (or in-memory buffer) ready for queries.
type File struct {
	src  io.ReaderAt
	size int64

	// Version is the on-disk format version the file was written with.
	Version         int
	NumParticles    uint64
	Quantized       bool
	Domain          geom.Box
	SubprefixBits   int
	LODPerNode      int
	MaxLeafSize     int
	MaxTreeletDepth int
	Schema          particles.Schema
	// Ranges holds each attribute's aggregator-local value range, the
	// reference frame of every bitmap in the file.
	Ranges []bitmap.Range

	shallow []shallowNode
	leaves  []leafRef
	dict    *bitmap.Dictionary

	// Checksum footer state (version >= 2): the header length and CRC,
	// and one CRC per treelet, verified when the treelet is loaded.
	headerSize  int
	headerCRC   uint32
	treeletCRCs []uint32

	// Codec state (version >= 3, from the footer extension): the declared
	// per-attribute codec class and absolute error bound, the LOD error
	// scale, and the file-wide payload byte totals. attrBounds == nil for
	// uncompressed files.
	attrCodecs []uint8
	attrBounds []float64
	lodScale   float64
	rawPayload uint64
	encPayload uint64

	closer io.Closer

	// cache holds parsed treelets: sharded, singleflight, LRU-bounded.
	// Parsed treelets are immutable, so File is safe for concurrent
	// queries; Close must not race in-flight queries (the caller — e.g.
	// batserve's open/close RWMutex — sequences lifecycle vs. use).
	cache *treeletCache

	// qcfg is the default execution policy for Query/QueryWithStats;
	// qcfgMu guards it so SetQueryConfig is safe alongside queries.
	qcfgMu sync.Mutex
	qcfg   QueryConfig

	// access is the optional access-telemetry recorder (nil = disabled:
	// every call on it no-ops); accessLeaf is the leaf-file index this File
	// represents inside a multi-leaf dataset, used to key per-treelet stats.
	access     *access.Recorder
	accessLeaf int

	// prefetches tracks readahead goroutines so Close can wait them out
	// instead of unmapping a buffer a prefetch is still parsing.
	prefetches sync.WaitGroup
	// prefetchSlots bounds in-flight readahead; nil until first use.
	prefetchMu    sync.Mutex
	prefetchSlots chan struct{}
}

// cursor reads sequentially from an io.ReaderAt, buffering ahead. A nil
// ctx means uncancelable (in-memory parses); otherwise each refill goes
// through pfs.ReadAtContext so a canceled caller stops issuing reads and
// ctx-aware sources abort mid-read.
type cursor struct {
	src  io.ReaderAt
	size int64
	off  int64
	buf  []byte
	pos  int
	ctx  context.Context
}

func (c *cursor) need(n int) ([]byte, error) {
	for c.pos+n > len(c.buf) {
		// Extend the buffer.
		grow := 1 << 16
		if grow < n {
			grow = n
		}
		start := c.off + int64(len(c.buf))
		if start >= c.size {
			return nil, io.ErrUnexpectedEOF
		}
		if start+int64(grow) > c.size {
			grow = int(c.size - start)
		}
		chunk := make([]byte, grow)
		var err error
		if c.ctx != nil {
			_, err = pfs.ReadAtContext(c.ctx, c.src, chunk, start)
		} else {
			_, err = c.src.ReadAt(chunk, start)
		}
		if err != nil {
			return nil, err
		}
		c.buf = append(c.buf, chunk...)
	}
	b := c.buf[c.pos : c.pos+n]
	c.pos += n
	return b, nil
}

func (c *cursor) u8() (uint8, error) {
	b, err := c.need(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *cursor) u16() (uint16, error) {
	b, err := c.need(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (c *cursor) u32() (uint32, error) {
	b, err := c.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *cursor) u64() (uint64, error) {
	b, err := c.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *cursor) i32() (int32, error) {
	v, err := c.u32()
	return int32(v), err
}

func (c *cursor) f32() (float32, error) {
	v, err := c.u32()
	return math.Float32frombits(v), err
}

func (c *cursor) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

func (c *cursor) box() (geom.Box, error) {
	var vals [6]float64
	for i := range vals {
		v, err := c.f64()
		if err != nil {
			return geom.Box{}, err
		}
		vals[i] = v
	}
	return geom.NewBox(geom.V3(vals[0], vals[1], vals[2]), geom.V3(vals[3], vals[4], vals[5])), nil
}

func (c *cursor) ids(n int) ([]bitmap.ID, error) {
	out := make([]bitmap.ID, n)
	for i := range out {
		v, err := c.u16()
		if err != nil {
			return nil, err
		}
		out[i] = bitmap.ID(v)
	}
	return out, nil
}

// Decode parses a BAT file image accessible through src.
func Decode(src io.ReaderAt, size int64) (*File, error) {
	return DecodeCtx(context.Background(), src, size)
}

// DecodeCtx is Decode honoring ctx: the header parse aborts when ctx ends,
// and the context threads into footer reads. Treelet loads are governed by
// the context of the query that triggers them, not by ctx.
func DecodeCtx(ctx context.Context, src io.ReaderAt, size int64) (*File, error) {
	c := &cursor{src: src, size: size, ctx: ctx}
	mg, err := c.need(4)
	if err != nil {
		return nil, fmt.Errorf("bat: reading magic: %w", err)
	}
	if string(mg) != magic {
		return nil, fmt.Errorf("bat: bad magic %q", mg)
	}
	ver, err := c.u32()
	if err != nil {
		return nil, err
	}
	if ver < minVersion || ver > version {
		return nil, fmt.Errorf("bat: unsupported version %d (supported: %d-%d)", ver, minVersion, version)
	}
	flags, err := c.u32()
	if err != nil {
		return nil, err
	}
	f := &File{src: src, size: size, Version: int(ver), cache: newTreeletCache()}
	f.Quantized = flags&flagQuantized != 0
	if f.NumParticles, err = c.u64(); err != nil {
		return nil, err
	}
	// A particle occupies several bytes of payload, so a claimed count
	// beyond the file size is corrupt. Establishing the bound here also
	// keeps the int(f.NumParticles) conversions downstream (ReadAll)
	// from wrapping on a crafted header.
	if f.NumParticles > uint64(size) {
		return nil, fmt.Errorf("bat: particle count %d exceeds file size %d", f.NumParticles, size)
	}
	if f.Domain, err = c.box(); err != nil {
		return nil, err
	}
	var sb, lod, mls, mtd uint32
	if sb, err = c.u32(); err != nil {
		return nil, err
	}
	if lod, err = c.u32(); err != nil {
		return nil, err
	}
	if mls, err = c.u32(); err != nil {
		return nil, err
	}
	if mtd, err = c.u32(); err != nil {
		return nil, err
	}
	f.SubprefixBits, f.LODPerNode, f.MaxLeafSize, f.MaxTreeletDepth = int(sb), int(lod), int(mls), int(mtd)
	nA32, err := c.u32()
	if err != nil {
		return nil, err
	}
	nA := int(nA32)
	if nA > 4096 {
		return nil, fmt.Errorf("bat: implausible attribute count %d", nA)
	}
	f.Schema = particles.Schema{Attrs: make([]particles.AttrDesc, nA)}
	f.Ranges = make([]bitmap.Range, nA)
	for a := 0; a < nA; a++ {
		nameLen, err := c.u16()
		if err != nil {
			return nil, err
		}
		nameB, err := c.need(int(nameLen))
		if err != nil {
			return nil, err
		}
		name := string(nameB)
		typ, err := c.u8()
		if err != nil {
			return nil, err
		}
		f.Schema.Attrs[a] = particles.AttrDesc{Name: name, Type: particles.AttrType(typ)}
		if f.Ranges[a].Min, err = c.f64(); err != nil {
			return nil, err
		}
		if f.Ranges[a].Max, err = c.f64(); err != nil {
			return nil, err
		}
	}
	nInner, err := c.u32()
	if err != nil {
		return nil, err
	}
	nLeaves, err := c.u32()
	if err != nil {
		return nil, err
	}
	// Sanity: every record occupies at least shallowInnerBytes /
	// shallowLeafBytes, so the counts cannot exceed the file size.
	if int64(nInner)*int64(shallowInnerBytes+2*nA) > size ||
		int64(nLeaves)*int64(shallowLeafBytes+2*nA) > size {
		return nil, fmt.Errorf("bat: node counts %d/%d exceed file size %d", nInner, nLeaves, size)
	}
	f.shallow = make([]shallowNode, nInner)
	for i := range f.shallow {
		n := &f.shallow[i]
		ax, err := c.u8()
		if err != nil {
			return nil, err
		}
		n.axis = geom.Axis(ax)
		if n.pos, err = c.f64(); err != nil {
			return nil, err
		}
		if n.left, err = c.i32(); err != nil {
			return nil, err
		}
		if n.right, err = c.i32(); err != nil {
			return nil, err
		}
		if !validChildRef(n.left, int(nInner), int(nLeaves)) ||
			!validChildRef(n.right, int(nInner), int(nLeaves)) {
			return nil, fmt.Errorf("bat: shallow node %d has invalid children", i)
		}
		if n.ids, err = c.ids(nA); err != nil {
			return nil, err
		}
	}
	f.leaves = make([]leafRef, nLeaves)
	for i := range f.leaves {
		l := &f.leaves[i]
		if l.offset, err = c.u64(); err != nil {
			return nil, err
		}
		if l.byteLen, err = c.u32(); err != nil {
			return nil, err
		}
		if l.numNodes, err = c.u32(); err != nil {
			return nil, err
		}
		if l.numPoints, err = c.u32(); err != nil {
			return nil, err
		}
		if l.bounds, err = c.box(); err != nil {
			return nil, err
		}
		if l.offset > uint64(size) || l.offset+uint64(l.byteLen) > uint64(size) {
			return nil, fmt.Errorf("bat: treelet %d extends past end of file", i)
		}
		if l.ids, err = c.ids(nA); err != nil {
			return nil, err
		}
	}
	// The shallow hierarchy must be an actual tree: at most one parent
	// per node. Range checks alone admit diamond-shaped DAGs whose
	// traversal revisits shared subtrees exponentially often before the
	// depth guard fires — a crafted file could stall a reader that way.
	innerSeen := make([]bool, nInner)
	leafSeen := make([]bool, nLeaves)
	for i := range f.shallow {
		for _, ref := range [2]int32{f.shallow[i].left, f.shallow[i].right} {
			if li, isLeaf := isShallowLeaf(ref); isLeaf {
				if leafSeen[li] {
					return nil, fmt.Errorf("bat: treelet %d has multiple parents", li)
				}
				leafSeen[li] = true
			} else {
				if innerSeen[ref] {
					return nil, fmt.Errorf("bat: shallow node %d has multiple parents", ref)
				}
				innerSeen[ref] = true
			}
		}
	}
	dictLen, err := c.u32()
	if err != nil {
		return nil, err
	}
	if dictLen > bitmap.MaxDictSize {
		return nil, fmt.Errorf("bat: dictionary size %d exceeds 16-bit ID space", dictLen)
	}
	entries := make([]bitmap.Bitmap, dictLen)
	for i := range entries {
		v, err := c.u32()
		if err != nil {
			return nil, err
		}
		entries[i] = bitmap.Bitmap(v)
	}
	f.dict = bitmap.FromEntries(entries)
	// Every stored bitmap ID must resolve in the dictionary.
	for i := range f.shallow {
		if err := f.checkIDs(f.shallow[i].ids); err != nil {
			return nil, fmt.Errorf("bat: shallow node %d: %w", i, err)
		}
	}
	for i := range f.leaves {
		if err := f.checkIDs(f.leaves[i].ids); err != nil {
			return nil, fmt.Errorf("bat: leaf %d: %w", i, err)
		}
	}
	if ver >= 2 {
		if err := f.loadFooter(c); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// ErrChecksum marks data whose CRC32C does not match its checksum —
// on-disk corruption (or a torn write) rather than a malformed layout.
var ErrChecksum = errors.New("bat: checksum mismatch")

// loadFooter reads and verifies the version-2 checksum footer; c has just
// parsed the header, so c.pos is the header length and c.buf its bytes.
func (f *File) loadFooter(c *cursor) error {
	f.headerSize = c.pos
	if f.size < int64(c.pos)+footerFixedLen {
		return fmt.Errorf("bat: file too small for checksum footer")
	}
	tail := make([]byte, 8)
	if _, err := pfs.ReadAtContext(c.ctx, f.src, tail, f.size-8); err != nil && err != io.EOF {
		return fmt.Errorf("bat: reading footer: %w", err)
	}
	if string(tail[4:]) != footerMagic {
		return fmt.Errorf("%w: bad footer magic %q", ErrChecksum, tail[4:])
	}
	fLen := int64(binary.LittleEndian.Uint32(tail))
	if fLen < footerFixedLen || fLen > f.size-int64(c.pos) {
		return fmt.Errorf("%w: implausible footer length %d", ErrChecksum, fLen)
	}
	foot := make([]byte, fLen-8) // footer minus the trailing length+magic
	if _, err := pfs.ReadAtContext(c.ctx, f.src, foot, f.size-fLen); err != nil && err != io.EOF {
		return fmt.Errorf("bat: reading footer: %w", err)
	}
	wantFootCRC := binary.LittleEndian.Uint32(foot[len(foot)-4:])
	if got := checksum.CRC32C(foot[:len(foot)-4]); got != wantFootCRC {
		return fmt.Errorf("%w: footer CRC %08x != %08x", ErrChecksum, got, wantFootCRC)
	}
	f.headerCRC = binary.LittleEndian.Uint32(foot)
	nT := binary.LittleEndian.Uint32(foot[4:])
	if int(nT) != len(f.leaves) {
		return fmt.Errorf("%w: footer lists %d treelets, header %d", ErrChecksum, nT, len(f.leaves))
	}
	nA := f.Schema.NumAttrs()
	wantLen := int64(footerFixedLen) + 4*int64(nT)
	if f.Version >= 3 {
		wantLen += int64(footerV3ExtraLen(nA))
	}
	if wantLen != fLen {
		return fmt.Errorf("%w: footer length %d, want %d for %d treelets", ErrChecksum, fLen, wantLen, nT)
	}
	if got := checksum.CRC32C(c.buf[:c.pos]); got != f.headerCRC {
		return fmt.Errorf("%w: header CRC %08x != %08x", ErrChecksum, got, f.headerCRC)
	}
	f.treeletCRCs = make([]uint32, nT)
	for i := range f.treeletCRCs {
		f.treeletCRCs[i] = binary.LittleEndian.Uint32(foot[8+4*i:])
	}
	if f.Version >= 3 {
		// The v3 extension sits between the treelet CRCs and the footer
		// CRC (already verified above, so out-of-range values here mean a
		// writer bug or a crafted file, not a torn write).
		p := 8 + 4*int(nT)
		fnA := binary.LittleEndian.Uint32(foot[p:])
		p += 4
		if int(fnA) != nA {
			return fmt.Errorf("%w: footer declares %d attributes, header %d", ErrChecksum, fnA, nA)
		}
		f.attrCodecs = make([]uint8, nA)
		f.attrBounds = make([]float64, nA)
		for a := 0; a < nA; a++ {
			f.attrCodecs[a] = foot[p]
			p++
			f.attrBounds[a] = math.Float64frombits(binary.LittleEndian.Uint64(foot[p:]))
			p += 8
			if f.attrCodecs[a] > codecDelta {
				return fmt.Errorf("bat: footer attribute %d declares unknown codec id %d", a, f.attrCodecs[a])
			}
			if b := f.attrBounds[a]; math.IsNaN(b) || math.IsInf(b, 0) || b < 0 {
				return fmt.Errorf("bat: footer attribute %d declares invalid error bound %v", a, b)
			}
		}
		f.lodScale = math.Float64frombits(binary.LittleEndian.Uint64(foot[p:]))
		p += 8
		if math.IsNaN(f.lodScale) || math.IsInf(f.lodScale, 0) || f.lodScale < 1 {
			return fmt.Errorf("bat: footer declares invalid LOD error scale %v", f.lodScale)
		}
		f.rawPayload = binary.LittleEndian.Uint64(foot[p:])
		p += 8
		f.encPayload = binary.LittleEndian.Uint64(foot[p:])
	}
	// No treelet may extend into the footer region.
	dataEnd := uint64(f.size - fLen)
	for i, l := range f.leaves {
		if l.offset+uint64(l.byteLen) > dataEnd {
			return fmt.Errorf("bat: treelet %d overlaps checksum footer", i)
		}
	}
	return nil
}

// Checksummed reports whether the file carries CRC32C checksums
// (format version >= 2).
func (f *File) Checksummed() bool { return f.treeletCRCs != nil }

// Verify re-reads every checksummed section (header and all treelets)
// and checks its CRC32C, without parsing or caching treelet contents.
// It returns nil for pre-checksum (version 1) files, which carry nothing
// to verify; use Checksummed to distinguish.
func (f *File) Verify() error {
	if !f.Checksummed() {
		return nil
	}
	head := make([]byte, f.headerSize)
	if _, err := f.src.ReadAt(head, 0); err != nil && err != io.EOF {
		return fmt.Errorf("bat: verify header: %w", err)
	}
	if got := checksum.CRC32C(head); got != f.headerCRC {
		return fmt.Errorf("%w: header CRC %08x != %08x", ErrChecksum, got, f.headerCRC)
	}
	for ti, ref := range f.leaves {
		buf := make([]byte, ref.byteLen)
		if _, err := f.src.ReadAt(buf, int64(ref.offset)); err != nil && err != io.EOF {
			return fmt.Errorf("bat: verify treelet %d: %w", ti, err)
		}
		if got := checksum.CRC32C(buf); got != f.treeletCRCs[ti] {
			return fmt.Errorf("%w: treelet %d CRC %08x != %08x", ErrChecksum, ti, got, f.treeletCRCs[ti])
		}
	}
	return nil
}

// CompressionInfo describes a version-3 file's codec configuration and
// whole-file payload accounting, read from the footer extension.
type CompressionInfo struct {
	// Codecs is the declared codec class per attribute (see CodecName):
	// quant for lossy attributes, delta for lossless ones. Individual
	// sections may still fall back to raw when encoding would not shrink
	// them.
	Codecs []uint8
	// Bounds is the absolute error bound per attribute; 0 means lossless.
	Bounds []float64
	// LODScale multiplies the bound for values referenced by LOD samples.
	LODScale float64
	// RawPayloadBytes / EncPayloadBytes are the attribute payload sizes
	// before and after encoding, summed over every treelet.
	RawPayloadBytes uint64
	EncPayloadBytes uint64
}

// Ratio returns the attribute payload compression ratio (raw / encoded),
// or 0 when the file holds no attribute payload.
func (ci *CompressionInfo) Ratio() float64 {
	if ci.EncPayloadBytes == 0 {
		return 0
	}
	return float64(ci.RawPayloadBytes) / float64(ci.EncPayloadBytes)
}

// Compression returns the file's codec configuration, or nil for
// uncompressed (version <= 2) files.
func (f *File) Compression() *CompressionInfo {
	if f.attrBounds == nil {
		return nil
	}
	ci := &CompressionInfo{
		Codecs:          append([]uint8(nil), f.attrCodecs...),
		Bounds:          append([]float64(nil), f.attrBounds...),
		LODScale:        f.lodScale,
		RawPayloadBytes: f.rawPayload,
		EncPayloadBytes: f.encPayload,
	}
	return ci
}

// SectionInfo describes one attribute section of one treelet: the codec the
// section actually used (which may be a raw fallback even in a compressed
// file) and its raw vs. on-disk encoded size.
type SectionInfo struct {
	Attr     string
	Codec    uint8
	RawBytes int
	EncBytes int
}

// TreeletSections reads treelet ti's attribute section framing — per-section
// codec id and encoded length — without decoding any payload. For
// version <= 2 files every section is raw. Used by batinspect.
func (f *File) TreeletSections(ctx context.Context, ti int) ([]SectionInfo, error) {
	if ti < 0 || ti >= len(f.leaves) {
		return nil, fmt.Errorf("bat: treelet %d out of range (%d treelets)", ti, len(f.leaves))
	}
	ref := f.leaves[ti]
	nA := f.Schema.NumAttrs()
	nPoints := int(ref.numPoints)
	out := make([]SectionInfo, nA)
	if f.Version < 3 {
		for a, desc := range f.Schema.Attrs {
			raw := nPoints * desc.Type.Size()
			out[a] = SectionInfo{Attr: desc.Name, Codec: codecRaw, RawBytes: raw, EncBytes: raw}
		}
		return out, nil
	}
	buf := make([]byte, ref.byteLen)
	if _, err := pfs.ReadAtContext(ctx, f.src, buf, int64(ref.offset)); err != nil {
		return nil, fmt.Errorf("bat: reading treelet %d: %w", ti, err)
	}
	posBytes := 12
	if f.Quantized {
		posBytes = 6
	}
	p := 8 + int(ref.numNodes)*(treeletNodeBytes+2*nA) + nPoints*posBytes
	for a, desc := range f.Schema.Attrs {
		if p+5 > len(buf) {
			return nil, fmt.Errorf("bat: treelet %d attribute %q: truncated codec stream", ti, desc.Name)
		}
		codec := buf[p]
		encLen := binary.LittleEndian.Uint32(buf[p+1:])
		p += 5
		if int64(encLen) > int64(len(buf)-p) {
			return nil, fmt.Errorf("bat: treelet %d attribute %q: truncated codec stream (%d bytes declared, %d remain)",
				ti, desc.Name, encLen, len(buf)-p)
		}
		p += int(encLen)
		out[a] = SectionInfo{
			Attr:     desc.Name,
			Codec:    codec,
			RawBytes: nPoints * desc.Type.Size(),
			EncBytes: int(encLen),
		}
	}
	return out, nil
}

// validChildRef reports whether a shallow-tree child reference points at an
// existing inner node or leaf.
func validChildRef(ref int32, nInner, nLeaves int) bool {
	if ref >= 0 {
		return int(ref) < nInner
	}
	return int(^ref) < nLeaves
}

// checkIDs validates bitmap IDs against the dictionary.
func (f *File) checkIDs(ids []bitmap.ID) error {
	for _, id := range ids {
		if int(id) >= f.dict.Len() {
			return fmt.Errorf("bitmap ID %d outside dictionary of %d", id, f.dict.Len())
		}
	}
	return nil
}

// FromBuffer opens an in-memory BAT image (e.g. for in-transit analysis on
// an aggregator before the buffer is written to disk).
func FromBuffer(buf []byte) (*File, error) {
	return Decode(readerAt(buf), int64(len(buf)))
}

type readerAt []byte

func (r readerAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("bat: negative read offset %d", off)
	}
	if off >= int64(len(r)) {
		return 0, io.EOF
	}
	n := copy(p, r[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// OpenMmap opens a BAT file through a read-only memory mapping (true mmap
// on Linux, a whole-file read elsewhere), the paper's access mode for
// visualization reads: the OS page cache backs repeated traversals and the
// page-aligned treelets map cleanly (§V).
func OpenMmap(path string) (*File, error) {
	m, err := mmapio.Open(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(m, m.Size())
	if err != nil {
		m.Close()
		return nil, err
	}
	f.closer = m
	return f, nil
}

// Open opens a BAT file on disk.
func Open(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := fh.Stat()
	if err != nil {
		fh.Close()
		return nil, err
	}
	f, err := Decode(fh, st.Size())
	if err != nil {
		fh.Close()
		return nil, err
	}
	f.closer = fh
	return f, nil
}

// Close releases the underlying file, if any. It waits out in-flight
// readahead goroutines first; callers must still not race Close with
// in-flight Query calls.
func (f *File) Close() error {
	f.prefetches.Wait()
	if f.closer != nil {
		return f.closer.Close()
	}
	return nil
}

// SetCloser attaches a resource to release when the File is closed; used
// by callers that Decode from their own file handles.
func (f *File) SetCloser(c io.Closer) { f.closer = c }

// NumTreelets returns the number of treelets (shallow leaves) in the file.
func (f *File) NumTreelets() int { return len(f.leaves) }

// RootBitmaps returns the file's whole-dataset bitmap per attribute (the
// shallow tree root's bitmaps), in the file's local value ranges. This is
// what an aggregator reports to rank 0 for the top-level metadata (§III-D).
func (f *File) RootBitmaps() []bitmap.Bitmap {
	nA := f.Schema.NumAttrs()
	out := make([]bitmap.Bitmap, nA)
	merge := func(ids []bitmap.ID) {
		for a := 0; a < nA; a++ {
			out[a] |= f.dict.Lookup(ids[a])
		}
	}
	if len(f.shallow) > 0 {
		merge(f.shallow[0].ids)
		return out
	}
	for _, l := range f.leaves {
		merge(l.ids)
	}
	return out
}

// SetCacheLimit bounds the treelet cache to roughly limit bytes of parsed
// treelets (0, the default, is unbounded). Least-recently-used treelets
// are evicted when the budget is exceeded. Safe to call concurrently with
// queries; the new budget applies from the next load on.
func (f *File) SetCacheLimit(limit int64) { f.cache.limit.Store(limit) }

// SetObserver mirrors the treelet cache's hit/miss/eviction counters into
// col as bat_treelet_cache_{hits,misses,evictions}_total, tagged with the
// given labels. Call before queries start; nil col detaches.
func (f *File) SetObserver(col *obs.Collector, labels ...obs.Label) {
	f.cache.setObserver(col, labels...)
}

// CacheStats snapshots the treelet cache counters.
func (f *File) CacheStats() CacheStats { return f.cache.stats() }

// SetAccessRecorder attaches an access-telemetry recorder; queries then
// record which treelets they touch (and the cache records which loads hit
// storage) under leaf — this File's index within its dataset. Like
// SetObserver, call before queries start; nil detaches.
func (f *File) SetAccessRecorder(rec *access.Recorder, leaf int) {
	f.access, f.accessLeaf = rec, leaf
	f.cache.setAccess(rec, leaf)
}

// SetQueryConfig sets the default execution policy used by Query,
// QueryWithStats, and the helpers built on them (ReadAll, CollectBox,
// CountMatching). The zero value is the serial engine.
func (f *File) SetQueryConfig(cfg QueryConfig) {
	f.qcfgMu.Lock()
	f.qcfg = cfg
	f.qcfgMu.Unlock()
}

// queryConfig returns the File's default execution policy.
func (f *File) queryConfig() QueryConfig {
	f.qcfgMu.Lock()
	defer f.qcfgMu.Unlock()
	return f.qcfg
}

// loadTreelet returns treelet ti, parsing it through the cache: concurrent
// callers of a cold treelet share one parse, and repeat callers share the
// immutable in-memory form. ctx governs only this caller's wait and (if it
// wins the singleflight race) its load; see treeletCache.get for the
// detach semantics.
func (f *File) loadTreelet(ctx context.Context, ti int) (*parsedTreelet, error) {
	return f.cache.get(ctx, ti, func(ctx context.Context) (*parsedTreelet, error) {
		return f.parseTreelet(ctx, ti)
	})
}

// prefetch schedules a bounded background load of treelet ti (readahead
// for box traversals). Best-effort: when every readahead slot is busy the
// prefetch is skipped rather than queued. The prefetch runs under the
// requesting query's ctx, so a canceled query stops issuing warm-up I/O.
func (f *File) prefetch(ctx context.Context, ti int, slots int) {
	f.prefetchMu.Lock()
	if f.prefetchSlots == nil {
		f.prefetchSlots = make(chan struct{}, slots)
	}
	f.prefetchMu.Unlock()
	select {
	case f.prefetchSlots <- struct{}{}:
	default:
		return
	}
	f.prefetches.Add(1)
	go func() {
		defer f.prefetches.Done()
		// The treelet lands in the cache (or the error is dropped; the
		// demand load will surface it); readahead is purely a warm-up.
		f.loadTreelet(ctx, ti)
		<-f.prefetchSlots
	}()
}

// parseTreelet reads and parses treelet ti from the underlying source.
func (f *File) parseTreelet(ctx context.Context, ti int) (*parsedTreelet, error) {
	ref := f.leaves[ti]
	buf := make([]byte, ref.byteLen)
	if _, err := pfs.ReadAtContext(ctx, f.src, buf, int64(ref.offset)); err != nil {
		return nil, fmt.Errorf("bat: reading treelet %d: %w", ti, err)
	}
	if f.treeletCRCs != nil {
		if got := checksum.CRC32C(buf); got != f.treeletCRCs[ti] {
			return nil, fmt.Errorf("%w: treelet %d CRC %08x != %08x", ErrChecksum, ti, got, f.treeletCRCs[ti])
		}
	}
	c := &cursor{src: readerAt(buf), size: int64(len(buf))}
	nNodes, err := c.u32()
	if err != nil {
		return nil, err
	}
	nPoints, err := c.u32()
	if err != nil {
		return nil, err
	}
	if nNodes != ref.numNodes || nPoints != ref.numPoints {
		return nil, fmt.Errorf("bat: treelet %d header mismatch: %d/%d nodes, %d/%d points",
			ti, nNodes, ref.numNodes, nPoints, ref.numPoints)
	}
	nA := f.Schema.NumAttrs()
	if int64(nNodes)*int64(treeletNodeBytes+2*nA) > int64(ref.byteLen) ||
		int64(nPoints)*6 > int64(ref.byteLen) {
		return nil, fmt.Errorf("bat: treelet %d counts exceed its byte length", ti)
	}
	t := &parsedTreelet{nodes: make([]diskNode, nNodes)}
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.axis, err = c.u8(); err != nil {
			return nil, err
		}
		if n.pos, err = c.f64(); err != nil {
			return nil, err
		}
		if n.left, err = c.i32(); err != nil {
			return nil, err
		}
		if n.right, err = c.i32(); err != nil {
			return nil, err
		}
		if n.start, err = c.u32(); err != nil {
			return nil, err
		}
		if n.count, err = c.u32(); err != nil {
			return nil, err
		}
		if n.start+n.count < n.start || n.start+n.count > nPoints {
			return nil, fmt.Errorf("bat: treelet %d node %d particle range out of bounds", ti, i)
		}
		if n.axis != uint8(leafAxis) &&
			(n.left < 0 || n.left >= int32(nNodes) || n.right < 0 || n.right >= int32(nNodes)) {
			return nil, fmt.Errorf("bat: treelet %d node %d has invalid children", ti, i)
		}
		if n.ids, err = c.ids(nA); err != nil {
			return nil, err
		}
		if err := f.checkIDs(n.ids); err != nil {
			return nil, fmt.Errorf("bat: treelet %d node %d: %w", ti, i, err)
		}
	}
	// Same single-parent requirement as the shallow tree: inner-node
	// links that share children would make the recursive walk exponential.
	nodeSeen := make([]bool, nNodes)
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.axis == uint8(leafAxis) {
			continue
		}
		for _, ref := range [2]int32{n.left, n.right} {
			if nodeSeen[ref] {
				return nil, fmt.Errorf("bat: treelet %d node %d has multiple parents", ti, ref)
			}
			nodeSeen[ref] = true
		}
	}
	readF32s := func() ([]float32, error) {
		out := make([]float32, nPoints)
		for i := range out {
			if out[i], err = c.f32(); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	// Quantized positions decode to the center of their 16-bit cell
	// within the treelet bounds.
	readQ16s := func(lo, extent float64) ([]float32, error) {
		out := make([]float32, nPoints)
		for i := range out {
			q, err := c.u16()
			if err != nil {
				return nil, err
			}
			out[i] = float32(lo + (float64(q)+0.5)/65536*extent)
		}
		return out, nil
	}
	if f.Quantized {
		b := ref.bounds
		sz := b.Size()
		if t.x, err = readQ16s(b.Lower.X, sz.X); err != nil {
			return nil, err
		}
		if t.y, err = readQ16s(b.Lower.Y, sz.Y); err != nil {
			return nil, err
		}
		if t.z, err = readQ16s(b.Lower.Z, sz.Z); err != nil {
			return nil, err
		}
	} else {
		if t.x, err = readF32s(); err != nil {
			return nil, err
		}
		if t.y, err = readF32s(); err != nil {
			return nil, err
		}
		if t.z, err = readF32s(); err != nil {
			return nil, err
		}
	}
	t.attrs = make([][]float64, nA)
	if f.Version >= 3 {
		// Version-3 framed codec sections. Decoding runs right here — i.e.
		// inside whichever query worker triggered the load — so decode
		// overlaps other workers' pfs reads, and the cache stores the
		// decoded float64 columns so hits pay nothing. The LOD mask is
		// derived from the node records at most once per treelet, and only
		// when a quant section actually needs it.
		var lodOnce []bool
		lodMask := func() []bool {
			if lodOnce == nil {
				lodOnce = lodMaskFromDisk(t.nodes, int(nPoints))
			}
			return lodOnce
		}
		for a := 0; a < nA; a++ {
			codec, err := c.u8()
			if err != nil {
				return nil, err
			}
			encLen, err := c.u32()
			if err != nil {
				return nil, err
			}
			if remain := int(c.size) - c.pos; int64(encLen) > int64(remain) {
				return nil, fmt.Errorf("bat: treelet %d attribute %q: truncated codec stream (%d bytes declared, %d remain)",
					ti, f.Schema.Attrs[a].Name, encLen, remain)
			}
			payload, err := c.need(int(encLen))
			if err != nil {
				return nil, err
			}
			vals, err := decodeAttrSection(codec, payload, int(nPoints),
				f.Schema.Attrs[a].Type, f.attrBounds[a], f.lodScale, lodMask)
			if err != nil {
				return nil, fmt.Errorf("bat: treelet %d attribute %q: %w", ti, f.Schema.Attrs[a].Name, err)
			}
			t.attrs[a] = vals
		}
		return t, nil
	}
	for a := 0; a < nA; a++ {
		vals := make([]float64, nPoints)
		for i := range vals {
			if f.Schema.Attrs[a].Type == particles.Float32 {
				v, err := c.f32()
				if err != nil {
					return nil, err
				}
				vals[i] = float64(v)
			} else {
				if vals[i], err = c.f64(); err != nil {
					return nil, err
				}
			}
		}
		t.attrs[a] = vals
	}
	return t, nil
}
