// Sharded treelet cache: the concurrency core of the read path. Parsed
// treelets are immutable once loaded, so any number of query goroutines may
// share them; the cache's job is to hand out those shared pointers cheaply
// under concurrent access, parse each cold treelet exactly once no matter
// how many goroutines ask for it (singleflight), and bound the bytes held
// in memory with per-shard LRU eviction.
//
// Sharding keeps the hot hit path short: a treelet index hashes to one of
// a fixed number of shards, each with its own mutex, map, and LRU list, so
// concurrent queries touching different treelets do not contend on a
// single lock. The shard count is a constant — it only affects contention,
// never which treelets are cached or what any query returns.
package bat

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"libbat/internal/obs"
	"libbat/internal/obs/access"
	"libbat/internal/pfs"
)

// cacheShards is the number of independently locked cache shards. A small
// power of two: enough to spread contention across a worker pool, cheap
// enough that per-shard LRU bookkeeping stays negligible for tiny files.
const cacheShards = 16

// CacheStats is a snapshot of a File's treelet cache counters.
type CacheStats struct {
	Hits      int64 // lookups served from a resident treelet
	Misses    int64 // lookups that had to parse (singleflight-deduplicated)
	Evictions int64 // treelets dropped to respect the byte budget
	Entries   int64 // treelets currently resident
	Bytes     int64 // in-memory bytes of resident treelets
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// cacheEntry is one treelet's slot. ready is closed once t/err are set;
// goroutines that lose the singleflight race wait on it instead of parsing.
type cacheEntry struct {
	ready chan struct{}
	t     *parsedTreelet
	err   error
	bytes int64
	elem  *list.Element // position in the shard's LRU list; nil while loading
}

// cacheShard is one lock domain of the cache.
type cacheShard struct {
	mu      sync.Mutex
	entries map[int]*cacheEntry
	lru     *list.List // front = most recently used; values are treelet indices
	bytes   int64
}

// treeletCache is the sharded, size-bounded, singleflight treelet cache.
type treeletCache struct {
	shards [cacheShards]cacheShard
	// limit is the total byte budget (0 = unbounded), applied per shard as
	// limit/cacheShards. Atomic so SetCacheLimit is safe mid-query.
	limit atomic.Int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	// Optional obs mirrors of the counters above; nil-safe no-ops when
	// telemetry is off.
	obsHits, obsMisses, obsEvictions *obs.Counter

	// Optional access recorder: a miss that loads from storage is recorded
	// per (leaf, treelet), so hit/load ratios expose cache thrash.
	access     *access.Recorder
	accessLeaf int
}

func newTreeletCache() *treeletCache {
	c := &treeletCache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[int]*cacheEntry)
		c.shards[i].lru = list.New()
	}
	return c
}

// setObserver mirrors the cache counters into col (nil detaches).
func (c *treeletCache) setObserver(col *obs.Collector, labels ...obs.Label) {
	c.obsHits = col.Counter("bat_treelet_cache_hits_total", labels...)
	c.obsMisses = col.Counter("bat_treelet_cache_misses_total", labels...)
	c.obsEvictions = col.Counter("bat_treelet_cache_evictions_total", labels...)
}

// setAccess attaches an access recorder, keying this cache's treelets
// under leaf (nil detaches). Call before queries start, like setObserver.
func (c *treeletCache) setAccess(rec *access.Recorder, leaf int) {
	c.access, c.accessLeaf = rec, leaf
}

// shardOf maps a treelet index to its shard (Fibonacci hashing so runs of
// adjacent indices — the common traversal order — spread across shards;
// the top 4 bits of the hash index the 16 shards).
func (c *treeletCache) shardOf(ti int) *cacheShard {
	h := uint32(ti) * 2654435761
	return &c.shards[h>>28]
}

// get returns treelet ti, loading it via load on a miss. Concurrent calls
// for the same cold treelet run load exactly once; the others block until
// it completes and share the result. Load errors are returned to every
// waiter but not cached, so a transient I/O failure is retried on the next
// lookup.
//
// Cancellation semantics: a waiter whose ctx ends detaches — it returns
// ctx.Err() immediately while the in-flight load keeps running for the
// remaining waiters, so one impatient query never poisons the shared
// result. Conversely, when the LOADER dies of its own caller's
// cancellation, waiters whose contexts are still live must not inherit
// that error: the failed entry was already dropped (errors are never
// cached), so they loop and load afresh under their own context.
func (c *treeletCache) get(ctx context.Context, ti int, load func(context.Context) (*parsedTreelet, error)) (*parsedTreelet, error) {
	sh := c.shardOf(ti)
	for {
		sh.mu.Lock()
		e, ok := sh.entries[ti]
		if !ok {
			break
		}
		if e.elem != nil {
			sh.lru.MoveToFront(e.elem)
		}
		sh.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err() // detach; the load continues without us
		}
		if e.err == nil {
			c.hits.Add(1)
			c.obsHits.Inc()
			return e.t, nil
		}
		if pfs.IsContextErr(e.err) && ctx.Err() == nil {
			continue // the loader was canceled, we were not: retry
		}
		return nil, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	sh.entries[ti] = e
	sh.mu.Unlock()

	c.misses.Add(1)
	c.obsMisses.Inc()
	t, err := load(ctx)

	if err == nil {
		c.access.TreeletLoad(c.accessLeaf, ti)
	}

	sh.mu.Lock()
	e.t, e.err = t, err
	if err != nil {
		delete(sh.entries, ti)
	} else {
		e.bytes = t.memBytes()
		e.elem = sh.lru.PushFront(ti)
		sh.bytes += e.bytes
		c.evictShardLocked(sh, ti)
	}
	sh.mu.Unlock()
	close(e.ready)
	return t, err
}

// evictShardLocked drops least-recently-used treelets until the shard fits
// its slice of the byte budget. The just-inserted treelet (keep) survives
// even if it alone exceeds the budget — evicting the treelet a query is
// about to traverse would only force an immediate reload.
func (c *treeletCache) evictShardLocked(sh *cacheShard, keep int) {
	limit := c.limit.Load()
	if limit <= 0 {
		return
	}
	perShard := limit / cacheShards
	for sh.bytes > perShard && sh.lru.Len() > 1 {
		back := sh.lru.Back()
		ti := back.Value.(int)
		if ti == keep {
			break
		}
		victim := sh.entries[ti]
		sh.lru.Remove(back)
		delete(sh.entries, ti)
		sh.bytes -= victim.bytes
		c.evictions.Add(1)
		c.obsEvictions.Inc()
	}
}

// stats snapshots the cache counters and residency.
func (c *treeletCache) stats() CacheStats {
	s := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += int64(sh.lru.Len())
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}

// memBytes estimates the in-memory footprint of a parsed treelet: node
// records (with their bitmap IDs), the three position arrays, and the
// attribute columns. Used for the cache byte budget.
func (t *parsedTreelet) memBytes() int64 {
	const nodeBytes = 48 // diskNode less the ids slice, padded
	b := int64(len(t.nodes)) * nodeBytes
	for i := range t.nodes {
		b += int64(len(t.nodes[i].ids)) * 2
	}
	b += int64(len(t.x)+len(t.y)+len(t.z)) * 4
	for _, a := range t.attrs {
		b += int64(len(a)) * 8
	}
	return b
}
