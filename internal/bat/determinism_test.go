package bat

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"libbat/internal/geom"
	"libbat/internal/particles"
)

// determinismCorpora builds the particle-set shapes the byte-identity
// property is asserted over: seeded random, clustered, coincident-heavy
// (maximal Morton-code ties), and small edge sizes.
func determinismCorpora() []struct {
	name   string
	set    *particles.Set
	domain geom.Box
} {
	domain := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	mk := func(name string, n int, gen func(r *rand.Rand, i int) (geom.Vec3, []float64)) struct {
		name   string
		set    *particles.Set
		domain geom.Box
	} {
		r := rand.New(rand.NewSource(int64(len(name)) * 1013))
		s := particles.NewSet(particles.NewSchema("a", "b"), n)
		for i := 0; i < n; i++ {
			p, attrs := gen(r, i)
			s.Append(p, attrs)
		}
		return struct {
			name   string
			set    *particles.Set
			domain geom.Box
		}{name, s, domain}
	}
	uniform := func(r *rand.Rand, i int) (geom.Vec3, []float64) {
		return geom.V3(r.Float64(), r.Float64(), r.Float64()), []float64{r.Float64(), float64(i)}
	}
	clustered := func(r *rand.Rand, i int) (geom.Vec3, []float64) {
		cx, cy, cz := float64(i%4)*0.25+0.1, float64((i/4)%4)*0.25+0.1, 0.5
		return geom.V3(cx+r.NormFloat64()*0.01, cy+r.NormFloat64()*0.01, cz+r.NormFloat64()*0.01),
			[]float64{r.Float64() * 10, r.Float64()}
	}
	coincident := func(r *rand.Rand, i int) (geom.Vec3, []float64) {
		// Eight distinct positions shared by thousands of particles:
		// every treelet sees massive Morton ties and degenerate splits.
		p := geom.V3(float64(i%2), float64((i/2)%2), float64((i/4)%2)).Scale(0.5)
		return p, []float64{float64(i % 13), r.Float64()}
	}
	return []struct {
		name   string
		set    *particles.Set
		domain geom.Box
	}{
		mk("uniform", 20000, uniform),
		mk("clustered", 20000, clustered),
		mk("coincident", 8000, coincident),
		mk("tiny", 3, uniform),
		mk("empty", 0, uniform),
	}
}

// TestBuildDeterminism asserts the build's core format invariant: the
// serial path (Parallel=false), a single-worker parallel build, and
// multi-worker parallel builds all produce byte-identical images. Run
// under -race by scripts/check.sh with Workers > 1 so the fused treelet
// stage's sharing discipline is exercised, not assumed.
func TestBuildDeterminism(t *testing.T) {
	for _, c := range determinismCorpora() {
		t.Run(c.name, func(t *testing.T) {
			for _, quantize := range []bool{false, true} {
				base := DefaultBuildConfig()
				base.MaxLeafSize = 64
				base.LODPerNode = 4
				base.QuantizePositions = quantize

				ref := base
				ref.Parallel = false
				want, err := Build(c.set, c.domain, ref)
				if err != nil {
					t.Fatalf("serial build: %v", err)
				}

				for _, workers := range []int{1, 2, 7, 0, runtime.GOMAXPROCS(0)} {
					cfg := base
					cfg.Parallel = true
					cfg.Workers = workers
					got, err := Build(c.set, c.domain, cfg)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if !bytes.Equal(got.Buf, want.Buf) {
						t.Fatalf("quantize=%v workers=%d: output differs from serial build (%d vs %d bytes)",
							quantize, workers, len(got.Buf), len(want.Buf))
					}
				}
			}
		})
	}
}

// TestBuildDeterminismRepeated rebuilds the same input several times with
// the full worker pool: scheduling noise must never reach the bytes.
func TestBuildDeterminismRepeated(t *testing.T) {
	c := determinismCorpora()[1] // clustered
	cfg := DefaultBuildConfig()
	cfg.MaxLeafSize = 32
	var want []byte
	for i := 0; i < 5; i++ {
		b, err := Build(c.set, c.domain, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = b.Buf
			continue
		}
		if !bytes.Equal(b.Buf, want) {
			t.Fatalf("rebuild %d differs", i)
		}
	}
}

// TestBuildWorkersValidation pins the Workers knob contract: negatives are
// rejected, zero means GOMAXPROCS.
func TestBuildWorkersValidation(t *testing.T) {
	s, domain := randomSet(100, 5)
	cfg := DefaultBuildConfig()
	cfg.Workers = -1
	if _, err := Build(s, domain, cfg); err == nil {
		t.Fatal("negative Workers accepted")
	}
	cfg.Workers = 0
	if got := cfg.effectiveWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers=0 resolved to %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	cfg.Parallel = false
	cfg.Workers = 8
	if got := cfg.effectiveWorkers(); got != 1 {
		t.Fatalf("serial build resolved to %d workers, want 1", got)
	}
}

// TestBuildReadBackAfterParallelBuild sanity-checks that a multi-worker
// build round-trips through the reader (guards against a determinism test
// that only compares two equally wrong buffers).
func TestBuildReadBackAfterParallelBuild(t *testing.T) {
	for _, c := range determinismCorpora()[:3] {
		cfg := DefaultBuildConfig()
		cfg.Workers = 4
		b, err := Build(c.set, c.domain, cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		f, err := FromBuffer(b.Buf)
		if err != nil {
			t.Fatalf("%s: decoding: %v", c.name, err)
		}
		got, err := f.ReadAll()
		if err != nil {
			t.Fatalf("%s: read: %v", c.name, err)
		}
		if got.Len() != c.set.Len() {
			t.Fatalf("%s: read %d particles, wrote %d", c.name, got.Len(), c.set.Len())
		}
		// The read-back set is a reordering of the input; compare each
		// attribute column as a sorted multiset so order drops out.
		for a := 0; a < 2; a++ {
			wantVals := append([]float64(nil), c.set.Attrs[a]...)
			gotVals := append([]float64(nil), got.Attrs[a]...)
			sort.Float64s(wantVals)
			sort.Float64s(gotVals)
			for i := range wantVals {
				if wantVals[i] != gotVals[i] {
					t.Fatalf("%s: attr %d multiset mismatch at %d: %v != %v",
						c.name, a, i, gotVals[i], wantVals[i])
				}
			}
		}
	}
}

func ExampleBuildConfig_workers() {
	cfg := DefaultBuildConfig()
	cfg.Workers = 2 // cap the build pool regardless of GOMAXPROCS
	fmt.Println(cfg.effectiveWorkers())
	// Output: 2
}
