package bat

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"libbat/internal/geom"
	"libbat/internal/particles"
)

// coincidentSet builds the degenerate corpus: every particle at the same
// point, so treelet splits cannot separate them spatially and the multiset
// comparison must rely on attribute identity.
func coincidentSet(n int) (*particles.Set, geom.Box) {
	s := particles.NewSet(particles.NewSchema("id"), n)
	for i := 0; i < n; i++ {
		s.Append(geom.V3(0.5, 0.5, 0.5), []float64{float64(i)})
	}
	return s, geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
}

type visitRec struct {
	p     geom.Vec3
	attrs []float64
}

// key canonicalizes a visit for multiset comparison.
func (v visitRec) key() string {
	return fmt.Sprintf("%.17g,%.17g,%.17g|%v", v.p.X, v.p.Y, v.p.Z, v.attrs)
}

func collectVisits(t *testing.T, f *File, q Query, cfg QueryConfig) ([]visitRec, QueryStats) {
	t.Helper()
	var out []visitRec
	stats, err := f.QueryWithConfig(q, cfg, func(p geom.Vec3, attrs []float64) error {
		a := make([]float64, len(attrs))
		copy(a, attrs)
		out = append(out, visitRec{p: p, attrs: a})
		return nil
	})
	if err != nil {
		t.Fatalf("QueryWithConfig(%+v): %v", cfg, err)
	}
	return out, stats
}

func sortedKeys(vs []visitRec) []string {
	keys := make([]string, len(vs))
	for i, v := range vs {
		keys[i] = v.key()
	}
	sort.Strings(keys)
	return keys
}

func equalMultiset(t *testing.T, name string, serial, parallel []visitRec) {
	t.Helper()
	a, b := sortedKeys(serial), sortedKeys(parallel)
	if len(a) != len(b) {
		t.Fatalf("%s: serial visited %d particles, parallel %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: multiset mismatch at sorted position %d:\n  serial   %s\n  parallel %s", name, i, a[i], b[i])
		}
	}
}

// TestConcurrentQuerySharedFile is the regression test for the read-path
// data race: many goroutines querying one File concurrently, each with a
// different engine configuration. Run under -race (check.sh does) this
// fails on the pre-cache reader and passes with the sharded cache.
func TestConcurrentQuerySharedFile(t *testing.T) {
	s, domain := randomSet(4000, 11)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	defer f.Close()

	box := geom.NewBox(geom.V3(0.2, 0.2, 0.2), geom.V3(0.8, 0.8, 0.8))
	want, err := f.CountMatching(Query{Bounds: &box})
	if err != nil {
		t.Fatal(err)
	}

	cfgs := []QueryConfig{
		{Workers: 1},
		{Workers: 2},
		{Workers: 4, Ordered: true},
		{Workers: 4, Readahead: 2},
		{Workers: -1},
	}
	const perCfg = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(cfgs)*perCfg)
	for _, cfg := range cfgs {
		for r := 0; r < perCfg; r++ {
			wg.Add(1)
			go func(cfg QueryConfig) {
				defer wg.Done()
				var n int64
				_, err := f.QueryWithConfig(Query{Bounds: &box}, cfg, func(geom.Vec3, []float64) error {
					n++
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
				if n != want {
					errs <- fmt.Errorf("cfg %+v visited %d particles, want %d", cfg, n, want)
				}
			}(cfg)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestParallelMatchesSerialMultiset checks the core acceptance criterion:
// for every corpus shape and query shape, Workers=N visits exactly the
// same particle multiset as Workers=1, with identical traversal stats.
func TestParallelMatchesSerialMultiset(t *testing.T) {
	filterBox := geom.NewBox(geom.V3(0.1, 0.1, 0.1), geom.V3(0.6, 0.7, 0.9))
	corpora := []struct {
		name   string
		set    *particles.Set
		domain geom.Box
		q      []Query
	}{
		{name: "uniform", q: []Query{
			{},
			{Bounds: &filterBox},
			{Filters: []AttrFilter{{Attr: 0, Min: 10, Max: 60}}},
			{Bounds: &filterBox, Filters: []AttrFilter{{Attr: 1, Min: 100, Max: 2800}}},
			{PrevQuality: 0.2, Quality: 0.7},
		}},
		{name: "clustered", q: []Query{
			{},
			{Bounds: &filterBox},
			{Filters: []AttrFilter{{Attr: 0, Min: 0.1, Max: 1.2}}},
			{Quality: 0.5},
		}},
		{name: "coincident", q: []Query{
			{},
			{Filters: []AttrFilter{{Attr: 0, Min: 100, Max: 900}}},
			{Quality: 0.4},
		}},
	}
	corpora[0].set, corpora[0].domain = randomSet(5000, 7)
	corpora[1].set, corpora[1].domain = clusteredSet(5000, 8)
	corpora[2].set, corpora[2].domain = coincidentSet(2000)

	for _, c := range corpora {
		t.Run(c.name, func(t *testing.T) {
			f, _ := buildAndOpen(t, c.set, c.domain, DefaultBuildConfig())
			defer f.Close()
			for qi, q := range c.q {
				serial, sStats := collectVisits(t, f, q, QueryConfig{Workers: 1})
				for _, cfg := range []QueryConfig{
					{Workers: 2},
					{Workers: 4},
					{Workers: 4, Ordered: true},
					{Workers: 8, Readahead: 4},
				} {
					name := fmt.Sprintf("query %d cfg %+v", qi, cfg)
					par, pStats := collectVisits(t, f, q, cfg)
					equalMultiset(t, name, serial, par)
					if sStats != pStats {
						t.Fatalf("%s: stats diverge: serial %+v parallel %+v", name, sStats, pStats)
					}
				}
			}
		})
	}
}

// TestOrderedParallelPreservesOrder: Ordered delivery must reproduce the
// serial visit sequence exactly, not just the multiset.
func TestOrderedParallelPreservesOrder(t *testing.T) {
	s, domain := randomSet(6000, 21)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	defer f.Close()

	for _, q := range []Query{{}, {Quality: 0.6}} {
		serial, _ := collectVisits(t, f, q, QueryConfig{Workers: 1})
		ordered, _ := collectVisits(t, f, q, QueryConfig{Workers: 4, Ordered: true})
		if len(serial) != len(ordered) {
			t.Fatalf("serial visited %d, ordered parallel %d", len(serial), len(ordered))
		}
		for i := range serial {
			if serial[i].key() != ordered[i].key() {
				t.Fatalf("visit %d: serial %s, ordered parallel %s", i, serial[i].key(), ordered[i].key())
			}
		}
	}
}

// TestSerialMatchesConfiguredDefault: File.Query honors SetQueryConfig.
func TestFileLevelQueryConfig(t *testing.T) {
	s, domain := clusteredSet(3000, 5)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	defer f.Close()

	serial, _ := collectVisits(t, f, Query{}, QueryConfig{Workers: 1})
	f.SetQueryConfig(QueryConfig{Workers: 4, Readahead: 2})
	var par []visitRec
	if _, err := f.QueryWithStats(Query{}, func(p geom.Vec3, attrs []float64) error {
		a := make([]float64, len(attrs))
		copy(a, attrs)
		par = append(par, visitRec{p: p, attrs: a})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	equalMultiset(t, "file-level config", serial, par)
}

// TestParallelVisitorError: a visitor error aborts a parallel query
// promptly, is returned verbatim, and leaves no goroutines wedged (the
// race detector and test timeout police that).
func TestParallelVisitorError(t *testing.T) {
	s, domain := randomSet(4000, 31)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	defer f.Close()

	boom := errors.New("stop right there")
	for _, cfg := range []QueryConfig{
		{Workers: 1},
		{Workers: 4},
		{Workers: 4, Ordered: true},
	} {
		var n int
		_, err := f.QueryWithConfig(Query{}, cfg, func(geom.Vec3, []float64) error {
			n++
			if n == 100 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("cfg %+v: got err %v, want %v", cfg, err, boom)
		}
		if n != 100 {
			t.Fatalf("cfg %+v: visitor called %d times after aborting at 100", cfg, n)
		}
	}
}

// TestReadaheadSerialIdentical: readahead only warms the cache; the serial
// visit sequence must be byte-identical with it on or off.
func TestReadaheadSerialIdentical(t *testing.T) {
	s, domain := randomSet(5000, 41)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	defer f.Close()

	plain, pStats := collectVisits(t, f, Query{}, QueryConfig{Workers: 1})
	ahead, aStats := collectVisits(t, f, Query{}, QueryConfig{Workers: 1, Readahead: 3})
	if len(plain) != len(ahead) {
		t.Fatalf("readahead changed visit count: %d vs %d", len(plain), len(ahead))
	}
	for i := range plain {
		if plain[i].key() != ahead[i].key() {
			t.Fatalf("visit %d differs with readahead", i)
		}
	}
	if pStats != aStats {
		t.Fatalf("stats diverge: %+v vs %+v", pStats, aStats)
	}
}

// TestCloseWaitsForPrefetch: closing a File right after a readahead query
// must not race with in-flight prefetch goroutines.
func TestCloseWaitsForPrefetch(t *testing.T) {
	for i := 0; i < 5; i++ {
		s, domain := randomSet(3000, int64(50+i))
		f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
		box := geom.NewBox(geom.V3(0, 0, 0), geom.V3(0.3, 0.3, 0.3))
		if err := f.Query(Query{Bounds: &box}, func(geom.Vec3, []float64) error {
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Kick off prefetches and close immediately.
		f.SetQueryConfig(QueryConfig{Workers: 2, Readahead: 8})
		_ = f.Query(Query{}, func(geom.Vec3, []float64) error { return errors.New("bail") })
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
