// Parallel query engine: fans the candidate treelets of one query onto a
// worker pool while keeping the visitor contract serial. Workers claim
// treelets in deterministic list order via an atomic counter, traverse them
// into self-contained particle batches, and a single emitter goroutine (the
// caller) replays each batch through the visitor — so the visitor is never
// invoked concurrently, and with Ordered delivery the visit sequence is
// identical to the serial engine's.
//
// Memory is bounded by a token semaphore: a worker acquires a token before
// claiming a treelet and the emitter releases it after delivering the
// batch, so at most 2×workers batches exist at once. Acquiring BEFORE
// claiming is what makes Ordered delivery deadlock-free: every token is
// held by a claimed task, claims are issued in increasing index order, so
// the lowest undelivered index always owns a token and is either being
// traversed or already deliverable.
package bat

import (
	"context"
	"sync"
	"sync/atomic"

	"libbat/internal/geom"
)

// cancelFlag is a shared abort signal polled by traversal workers. A nil
// *cancelFlag reads as "never cancelled" so the serial engine can pass nil.
type cancelFlag struct {
	flag atomic.Bool
}

func (c *cancelFlag) isSet() bool {
	return c != nil && c.flag.Load()
}

func (c *cancelFlag) set() {
	if c != nil {
		c.flag.Store(true)
	}
}

// queryBatch is one traversed treelet's matching particles, packed so the
// emitter can replay them without touching the treelet again. attrs is a
// flat row-major block: particle i's attributes are attrs[i*nAttrs :
// (i+1)*nAttrs].
type queryBatch struct {
	idx    int // position in the candidate list, for ordered delivery
	pts    []geom.Vec3
	attrs  []float64
	nAttrs int
	tc     traversalCounters // pruned/falsePos from this treelet's walk
	err    error             // treelet load or corruption error
}

// runParallel traverses the candidate treelets with w worker goroutines,
// delivering batches to visit on the calling goroutine. cancel is the
// shared abort flag: already wired to ctx by the caller when ctx is
// cancellable, created here otherwise (visitor errors still need it to
// stop the workers).
func (f *File) runParallel(ctx context.Context, s *queryState, cands []int, cfg QueryConfig, w int, tc *traversalCounters, visit Visitor, cancel *cancelFlag) error {
	// Each in-flight batch holds one token from acquisition until the
	// emitter finishes delivering it; results is sized to the token count
	// so workers never block sending.
	maxInflight := 2 * w
	tokens := make(chan struct{}, maxInflight)
	results := make(chan *queryBatch, maxInflight)
	if cancel == nil {
		cancel = &cancelFlag{}
	}
	var next atomic.Int64

	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cancel.isSet() {
					return
				}
				tokens <- struct{}{} // acquire before claiming (see file comment)
				idx := int(next.Add(1)) - 1
				if idx >= len(cands) || cancel.isSet() {
					<-tokens
					return
				}
				if cfg.Readahead > 0 {
					// Warm the treelet this worker is likely to claim next.
					if j := idx + w; j < len(cands) {
						f.prefetch(ctx, cands[j], cfg.Readahead)
					}
				}
				results <- f.collectBatch(ctx, s, cands[idx], idx, cancel)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			cancel.set()
		}
	}
	// deliver replays one batch through the visitor; skipped entirely once
	// a previous batch failed (we still drain results to release tokens
	// and let workers exit). A cancellation observed between batches also
	// stops delivery — already-collected batches must not keep streaming
	// to a caller that asked to stop.
	deliver := func(b *queryBatch) {
		if firstErr == nil {
			if cerr := ctx.Err(); cerr != nil {
				fail(cerr)
			}
		}
		if firstErr != nil {
			return
		}
		if b.err != nil {
			fail(b.err)
			return
		}
		tc.add(b.tc)
		for i, p := range b.pts {
			attrs := b.attrs[i*b.nAttrs : (i+1)*b.nAttrs : (i+1)*b.nAttrs]
			tc.visited++
			if err := visit(p, attrs); err != nil {
				fail(err)
				return
			}
		}
	}

	if !cfg.Ordered {
		for b := range results {
			deliver(b)
			<-tokens
		}
		if firstErr == nil {
			firstErr = ctx.Err()
		}
		return firstErr
	}

	// Ordered delivery: stash out-of-order completions, replay the run of
	// consecutive indices starting at nextIdx as it becomes available.
	pending := make(map[int]*queryBatch, maxInflight)
	nextIdx := 0
	for b := range results {
		pending[b.idx] = b
		for {
			nb, ok := pending[nextIdx]
			if !ok {
				break
			}
			delete(pending, nextIdx)
			nextIdx++
			deliver(nb)
			<-tokens
		}
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// collectBatch loads and traverses one candidate treelet, packing every
// matching particle into a batch. Never returns nil.
func (f *File) collectBatch(ctx context.Context, s *queryState, li, idx int, cancel *cancelFlag) *queryBatch {
	b := &queryBatch{idx: idx}
	t, err := f.loadTreelet(ctx, li)
	if err != nil {
		b.err = err
		return b
	}
	b.tc.treelets++
	ref := &f.leaves[li]
	f.access.Treelet(f.accessLeaf, li, int64(ref.byteLen), ref.bounds.Center())
	b.nAttrs = len(t.attrs)
	emit := func(p geom.Vec3, t *parsedTreelet, pi uint32) error {
		b.pts = append(b.pts, p)
		for a := 0; a < b.nAttrs; a++ {
			b.attrs = append(b.attrs, t.attrs[a][pi])
		}
		return nil
	}
	if err := s.traverseTreelet(f, t, &b.tc, emit, cancel); err != nil && err != errTraversalCancelled {
		b.err = err
	}
	return b
}
