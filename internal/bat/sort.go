// Stage 1 of the build pipeline: Morton-encode every particle and produce
// the Morton-sorted particle order. Both halves are chunked across the
// build's worker pool; the sort is the stable radix sort from
// internal/radix, so the resulting order is a pure function of the input
// (ties between coincident particles keep their input order) and the
// pipeline output cannot depend on the worker count.
package bat

import (
	"sync"

	"libbat/internal/geom"
	"libbat/internal/morton"
	"libbat/internal/particles"
	"libbat/internal/radix"
)

// encodeSerialCutoff is the particle count below which forking goroutines
// for the encode costs more than the encode itself.
const encodeSerialCutoff = 1 << 14

// sortByMorton returns the particles' Morton codes in sorted order together
// with the matching particle order: sortedCodes[i] is the code of particle
// order[i], and sortedCodes is ascending with ties in input order.
func sortByMorton(set *particles.Set, domain geom.Box, workers int) (sortedCodes []morton.Code, order []int) {
	n := set.Len()
	codes := make([]morton.Code, n)
	order = make([]int, n)
	for i := range order {
		order[i] = i
	}

	if workers <= 1 || n < encodeSerialCutoff {
		morton.FromPoints(codes, set.X, set.Y, set.Z, domain)
	} else {
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				morton.FromPoints(codes[lo:hi], set.X[lo:hi], set.Y[lo:hi], set.Z[lo:hi], domain)
			}(lo, hi)
		}
		wg.Wait()
	}

	radix.SortPairs(codes, order, workers)
	return codes, order
}
