package bat

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"libbat/internal/geom"
	"libbat/internal/obs/access"
)

// accessSnapshotFor runs the given queries under one engine configuration
// against a fresh File (fresh cache, fresh recorder) and returns the
// recorded access snapshot, normalized for comparison.
func accessSnapshotFor(t *testing.T, buf []byte, cfg QueryConfig, queries []Query) access.Snapshot {
	t.Helper()
	f, err := FromBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec := access.New("t", f.Domain, access.Options{GridBits: 3})
	f.SetAccessRecorder(rec, 7)
	for _, q := range queries {
		if _, err := f.QueryWithConfig(q, cfg, func(geom.Vec3, []float64) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	s := rec.Snapshot()
	s.WallUnix = 0
	return s
}

// TestParallelAccessMultiset checks that the recorder observes the same
// access pattern whichever engine ran the query: per-treelet hit/byte/load
// counts, the heatmap, and attribute touches are identical for Workers=1
// and Workers=N (treelet completion order differs; the multiset may not).
func TestParallelAccessMultiset(t *testing.T) {
	s, domain := randomSet(6000, 17)
	_, b := buildAndOpen(t, s, domain, DefaultBuildConfig())
	box := geom.NewBox(geom.V3(0.1, 0.1, 0.1), geom.V3(0.7, 0.8, 0.6))
	queries := []Query{
		{},
		{Bounds: &box},
		{Bounds: &box, Filters: []AttrFilter{{Attr: 0, Min: 0.2, Max: 0.9}}},
		{Quality: 0.5},
	}
	serial := accessSnapshotFor(t, b.Buf, QueryConfig{Workers: 1}, queries)
	if serial.TreeletHits == 0 || len(serial.Treelets) == 0 || len(serial.Heatmap) == 0 {
		t.Fatalf("serial run recorded nothing: %+v", serial)
	}
	for _, ts := range serial.Treelets {
		if ts.Leaf != 7 {
			t.Fatalf("treelet stat has leaf %d, want the configured 7", ts.Leaf)
		}
		if ts.Loads != 1 {
			t.Fatalf("treelet %d loaded %d times on a fresh cache, want 1", ts.Treelet, ts.Loads)
		}
	}
	for _, cfg := range []QueryConfig{{Workers: 4}, {Workers: 4, Ordered: true}, {Workers: -1, Readahead: 2}} {
		par := accessSnapshotFor(t, b.Buf, cfg, queries)
		// Readahead prefetches may load treelets the traversal never hits,
		// so drop load counts before comparing those runs.
		if cfg.Readahead > 0 {
			par.TreeletLoads, serial.TreeletLoads = 0, 0
			for i := range par.Treelets {
				par.Treelets[i].Loads = 0
			}
			for i := range serial.Treelets {
				serial.Treelets[i].Loads = 0
			}
		}
		if !reflect.DeepEqual(par, serial) {
			t.Errorf("cfg %+v access snapshot differs from serial:\n par    %+v\n serial %+v", cfg, par, serial)
		}
	}
}

// TestConcurrentAccessRecorder drives one shared File (and recorder) from
// many goroutines; under -race it is the wiring's thread-safety proof, and
// the totals check that concurrent queries lose no counts.
func TestConcurrentAccessRecorder(t *testing.T) {
	s, domain := randomSet(4000, 11)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	defer f.Close()
	rec := access.New("t", f.Domain, access.Options{})
	f.SetAccessRecorder(rec, 0)

	box := geom.NewBox(geom.V3(0.2, 0.2, 0.2), geom.V3(0.8, 0.8, 0.8))
	ref, err := f.QueryWithStats(Query{Bounds: &box}, func(geom.Vec3, []float64) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if ref.Treelets == 0 {
		t.Fatal("reference query touched no treelets")
	}
	baseline := rec.Snapshot().TreeletHits

	cfgs := []QueryConfig{{Workers: 1}, {Workers: 2}, {Workers: 4, Ordered: true}, {Workers: -1}}
	const perCfg = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(cfgs)*perCfg)
	for _, cfg := range cfgs {
		for r := 0; r < perCfg; r++ {
			wg.Add(1)
			go func(cfg QueryConfig) {
				defer wg.Done()
				st, err := f.QueryWithConfig(Query{Bounds: &box}, cfg, func(geom.Vec3, []float64) error { return nil })
				if err != nil {
					errs <- err
					return
				}
				if st.Treelets != ref.Treelets {
					errs <- fmt.Errorf("cfg %+v traversed %d treelets, want %d", cfg, st.Treelets, ref.Treelets)
				}
			}(cfg)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	snap := rec.Snapshot()
	want := baseline + int64(len(cfgs)*perCfg)*ref.Treelets
	if snap.TreeletHits != want {
		t.Errorf("recorded %d treelet hits, want %d", snap.TreeletHits, want)
	}
	var perTreelet, heat int64
	for _, ts := range snap.Treelets {
		perTreelet += ts.Hits
	}
	for _, h := range snap.Heatmap {
		heat += h.Count
	}
	if perTreelet != want || heat != want {
		t.Errorf("per-treelet sum %d / heatmap mass %d, want %d", perTreelet, heat, want)
	}
}
