package bat

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"libbat/internal/geom"
	"libbat/internal/leakcheck"
	"libbat/internal/pfs"
)

// openFaulty builds a BAT over store-backed I/O so reads can be stalled
// and delayed, returning the injector and a fresh (cold-cache) File.
func openFaulty(t *testing.T, n int, seed int64, cfg FaultyOpenConfig) (*pfs.Faulty, *File) {
	t.Helper()
	s, domain := randomSet(n, seed)
	b, err := Build(s, domain, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	mem := pfs.NewMem()
	if err := mem.WriteFile("f.bat", b.Buf); err != nil {
		t.Fatal(err)
	}
	fau := pfs.NewFaulty(mem, cfg.Fault)
	h, err := pfs.OpenContext(context.Background(), fau, "f.bat")
	if err != nil {
		t.Fatal(err)
	}
	f, err := DecodeCtx(context.Background(), h, h.Size())
	if err != nil {
		t.Fatal(err)
	}
	f.SetCloser(h)
	return fau, f
}

// FaultyOpenConfig parameterizes openFaulty.
type FaultyOpenConfig struct {
	Fault pfs.FaultConfig
}

// countCtx runs a full scan under ctx and cfg, returning the visit count.
func countCtx(ctx context.Context, f *File, cfg QueryConfig) (int64, error) {
	var n int64
	_, err := f.QueryWithConfigCtx(ctx, Query{}, cfg, func(geom.Vec3, []float64) error {
		n++
		return nil
	})
	return n, err
}

// TestCancelStalledRead is the acceptance-criterion test: a query against
// a file whose leaf reads stall indefinitely must return within the
// configured deadline (bounded wall time), leak no goroutines, and leave
// the treelet cache serving subsequent queries correctly.
func TestCancelStalledRead(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  QueryConfig
	}{
		{"serial", QueryConfig{}},
		{"parallel", QueryConfig{Workers: 4, Readahead: 2}},
		{"ordered", QueryConfig{Workers: 4, Ordered: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			leakcheck.Check(t)
			fau, f := openFaulty(t, 6000, 42, FaultyOpenConfig{})
			defer f.Close()
			want, err := countCtx(context.Background(), f, QueryConfig{})
			if err != nil || want == 0 {
				t.Fatalf("baseline scan: %d, %v", want, err)
			}

			// Cold cache again for the stall: a second File over the same
			// injector (the first one's cache would satisfy every load).
			fau2, f2 := openFaulty(t, 6000, 42, FaultyOpenConfig{})
			_ = fau
			defer f2.Close()
			fau2.StallReads("f.bat")
			ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err = countCtx(ctx, f2, tc.cfg)
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("stalled query = %v, want DeadlineExceeded", err)
			}
			if elapsed > 5*time.Second {
				t.Fatalf("stalled query returned after %v, want bounded by the 150ms deadline", elapsed)
			}

			// Release the "mount" and re-query the same File: the cache and
			// its singleflight slots must not be wedged or poisoned.
			fau2.ReleaseStalls()
			got, err := countCtx(context.Background(), f2, tc.cfg)
			if err != nil || got != want {
				t.Fatalf("post-release scan = %d, %v; want %d, nil", got, err, want)
			}
		})
	}
}

// TestCancelMidTraversal: cancellation while workers are traversing (not
// blocked on I/O) stops the query promptly with ctx.Err() and the same
// File keeps serving.
func TestCancelMidTraversal(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  QueryConfig
	}{
		{"serial", QueryConfig{}},
		{"parallel", QueryConfig{Workers: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			leakcheck.Check(t)
			s, domain := randomSet(8000, 7)
			f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
			defer f.Close()
			want, err := countCtx(context.Background(), f, QueryConfig{})
			if err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithCancel(context.Background())
			var n int64
			_, err = f.QueryWithConfigCtx(ctx, Query{}, tc.cfg, func(geom.Vec3, []float64) error {
				n++
				if n == want/10 {
					cancel() // cancel from inside the visitor, mid-stream
				}
				return nil
			})
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("canceled query = %v, want context.Canceled", err)
			}
			if n >= want {
				t.Fatalf("visited all %d particles despite cancellation", n)
			}

			got, err := countCtx(context.Background(), f, tc.cfg)
			if err != nil || got != want {
				t.Fatalf("scan after cancel = %d, %v; want %d, nil", got, err, want)
			}
		})
	}
}

// TestCancelSingleflightDetachLoader: when the goroutine running the
// singleflight load is canceled, waiters with live contexts must not
// inherit its context error — they retry the load themselves.
func TestCancelSingleflightDetachLoader(t *testing.T) {
	leakcheck.Check(t)
	c := newTreeletCache()
	enter := make(chan struct{})
	want := fakeTreelet(4)

	loaderCtx, cancelLoader := context.WithCancel(context.Background())
	defer cancelLoader()
	loaderErr := make(chan error, 1)
	go func() {
		_, err := c.get(loaderCtx, 5, func(ctx context.Context) (*parsedTreelet, error) {
			close(enter)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		loaderErr <- err
	}()
	<-enter

	waiterDone := make(chan error, 1)
	go func() {
		tl, err := c.get(context.Background(), 5, func(ctx context.Context) (*parsedTreelet, error) {
			return want, nil
		})
		if err == nil && tl != want {
			err = errors.New("waiter got a different treelet pointer")
		}
		waiterDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter block on the entry
	cancelLoader()

	if err := <-loaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("loader = %v, want context.Canceled", err)
	}
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("live waiter after loader cancel: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter wedged after loader cancellation")
	}
}

// TestCancelSingleflightDetachWaiter: a canceled waiter detaches promptly
// while the load keeps running, and the eventual result is shared with
// the remaining (patient) callers.
func TestCancelSingleflightDetachWaiter(t *testing.T) {
	leakcheck.Check(t)
	c := newTreeletCache()
	enter := make(chan struct{})
	release := make(chan struct{})
	want := fakeTreelet(4)

	loaderDone := make(chan error, 1)
	go func() {
		tl, err := c.get(context.Background(), 9, func(ctx context.Context) (*parsedTreelet, error) {
			close(enter)
			<-release
			return want, nil
		})
		if err == nil && tl != want {
			err = errors.New("loader got a different treelet pointer")
		}
		loaderDone <- err
	}()
	<-enter

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := c.get(ctx, 9, func(ctx context.Context) (*parsedTreelet, error) {
		return nil, errors.New("detached waiter must not load")
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("impatient waiter = %v, want context.Canceled", err)
	}

	close(release)
	if err := <-loaderDone; err != nil {
		t.Fatalf("loader after waiter detach: %v", err)
	}
	// The result was cached normally despite the detached waiter.
	tl, err := c.get(context.Background(), 9, func(ctx context.Context) (*parsedTreelet, error) {
		return nil, errors.New("must be served from cache")
	})
	if err != nil || tl != want {
		t.Fatalf("post-detach lookup = (%v, %v), want cached treelet", tl, err)
	}
}

// TestCancelStorm: concurrent queries with staggered short deadlines over
// latency-injected storage, followed by a clean full scan. Asserts the
// engine survives a burst of cancellations with no leaks and no wedged
// cache slots. This is the unit-level half of the batserve chaos harness.
func TestCancelStorm(t *testing.T) {
	leakcheck.Check(t)
	fau, f := openFaulty(t, 10000, 3, FaultyOpenConfig{
		Fault: pfs.FaultConfig{
			Seed:           11,
			ReadFailProb:   0.02,
			ReadDelayProb:  0.3,
			ReadDelay:      2 * time.Millisecond,
			MaxConsecutive: 1,
		},
	})
	defer f.Close()

	cfgs := []QueryConfig{
		{},
		{Workers: 4},
		{Workers: 4, Ordered: true},
		{Workers: 2, Readahead: 2},
	}
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Deadlines from 1ms to 24ms: some queries die instantly, some
			// mid-flight, a few may complete.
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i+1)*time.Millisecond)
			defer cancel()
			box := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, float64(i+1)/24))
			_, err := f.QueryWithConfigCtx(ctx, Query{Bounds: &box}, cfgs[i%len(cfgs)],
				func(geom.Vec3, []float64) error { return nil })
			if err != nil && !pfs.IsContextErr(err) && !errors.Is(err, pfs.ErrInjected) {
				t.Errorf("storm query %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// After the storm: a clean, uncanceled scan over the same File must
	// see every particle (MaxConsecutive=1 guarantees no persistent error
	// path; transient read failures surface at most once per treelet and
	// the next lookup retries).
	var got int64
	for attempt := 0; ; attempt++ {
		var err error
		got, err = countCtx(context.Background(), f, QueryConfig{Workers: 4})
		if err == nil {
			break
		}
		if !errors.Is(err, pfs.ErrInjected) || attempt > 8 {
			t.Fatalf("post-storm scan: %v (attempt %d)", err, attempt)
		}
	}
	if got != 10000 {
		t.Fatalf("post-storm scan visited %d, want 10000", got)
	}
	if fau.Delays() == 0 {
		t.Fatal("latency injection never fired during the storm")
	}
}
