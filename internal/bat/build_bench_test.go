package bat

import (
	"fmt"
	"math/rand"
	"testing"

	"libbat/internal/geom"
	"libbat/internal/particles"
)

// benchSet generates a clustered particle set: most of the write-phase cost
// profiles (coal boiler, dam break) are spatially clustered, so this is the
// representative shape for the build hot path.
func benchSet(n int, seed int64) (*particles.Set, geom.Box) {
	r := rand.New(rand.NewSource(seed))
	s := particles.NewSet(particles.NewSchema("energy", "mass"), n)
	nClusters := 32
	centers := make([]geom.Vec3, nClusters)
	for i := range centers {
		centers[i] = geom.V3(r.Float64(), r.Float64(), r.Float64())
	}
	for i := 0; i < n; i++ {
		c := centers[i%nClusters]
		p := geom.V3(
			c.X+r.NormFloat64()*0.02,
			c.Y+r.NormFloat64()*0.02,
			c.Z+r.NormFloat64()*0.02,
		)
		s.Append(p, []float64{r.Float64() * 100, r.Float64()})
	}
	domain := geom.NewBox(geom.V3(-0.5, -0.5, -0.5), geom.V3(1.5, 1.5, 1.5))
	return s, domain
}

// BenchmarkBATBuild times the full bat.Build pipeline at three scales,
// serial vs parallel. Run with -benchmem to see the allocation profile of
// the treelet stage.
func BenchmarkBATBuild(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		set, domain := benchSet(n, int64(n))
		for _, mode := range []string{"serial", "parallel"} {
			cfg := DefaultBuildConfig()
			cfg.Parallel = mode == "parallel"
			b.Run(fmt.Sprintf("n=%.0e/%s", float64(n), mode), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(set.Bytes())
				for i := 0; i < b.N; i++ {
					if _, err := Build(set, domain, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
