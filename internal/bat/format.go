// On-disk format of a BAT file (paper Figure 2). All integers are little
// endian.
//
//	Header:
//	  magic "BAT1", version u32, flags u32
//	  numParticles u64
//	  domain bounds: 6 x f64
//	  subprefixBits, lodPerNode, maxLeafSize, maxTreeletDepth u32
//	  numAttrs u32
//	  per attribute: nameLen u16, name bytes, type u8,
//	                 local range min f64, max f64
//	  numShallowInner u32, numTreelets u32
//	  shallow inner nodes: axis u8, pos f64, left i32, right i32,
//	                       bitmapID u16 per attribute
//	  shallow leaves:      treelet offset u64, byteLen u32,
//	                       numNodes u32, numPoints u32,
//	                       treelet bounds 6 x f64,
//	                       bitmapID u16 per attribute
//	  bitmap dictionary:   count u32, entries u32 each
//	Treelets, each aligned to a 4 KB page boundary:
//	  numNodes u32, numPoints u32
//	  nodes: axis u8 (3 = leaf), pos f64, left i32, right i32,
//	         start u32, count u32, bitmapID u16 per attribute
//	  particle data: X, Y, Z as f32 arrays (or u16 fixed point relative
//	                 to the treelet bounds when flagQuantized is set),
//	                 then one array per attribute. In version <= 2 each
//	                 attribute is a raw f64 or f32 column (per its schema
//	                 type); in version 3 each attribute is a framed codec
//	                 section: codec u8, encLen u32, then encLen payload
//	                 bytes (see codec.go for the codec streams)
//	Checksum footer (version >= 2), after the last treelet:
//	  headerCRC u32        CRC32C of the header bytes
//	  numTreelets u32
//	  treeletCRC u32 each  CRC32C of each treelet's byteLen bytes
//	  version 3 only:
//	    numAttrs u32
//	    per attribute: declared codec u8, absolute error bound f64
//	    lodErrorScale f64
//	    rawPayloadBytes u64  attribute payload before encoding
//	    encPayloadBytes u64  attribute payload after encoding
//	  footerCRC u32        CRC32C of the footer bytes above
//	  footerLen u32        total footer length, trailing magic included
//	  magic "BATF"
//
// The footer is located from the end of the file (magic + length), so the
// version-1 layout is unchanged and version-1 files still read; they just
// skip verification. Padding between treelets is not checksummed — it is
// never interpreted.
package bat

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"libbat/internal/bitmap"
	"libbat/internal/checksum"
	"libbat/internal/geom"
	"libbat/internal/particles"
)

const (
	magic = "BAT1"
	// version is the newest readable format; minVersion..version are
	// readable. Version 2 added the CRC32C checksum footer; version 3
	// added per-attribute compressed treelet sections (codec.go) and the
	// footer's codec declarations. Version 3 is written only when
	// BuildConfig.Compress is set — uncompressed builds keep producing
	// byte-identical version-2 files.
	version    = 3
	minVersion = 1
	// footerMagic terminates the version >= 2 checksum footer.
	footerMagic = "BATF"
	// footerFixedLen is the v2 footer size excluding the per-treelet CRCs.
	footerFixedLen = 4 + 4 + 4 + 4 + 4
	// PageSize is the alignment of treelets in the file (§III-C3).
	PageSize = 4096
	// flagQuantized marks 16-bit fixed-point position storage.
	flagQuantized = 1 << 0
)

// writer is a little-endian positional writer over a preallocated buffer.
// The file image is laid out size-first (every section offset is computed
// before a byte is written), so disjoint sections — the header and each
// page-aligned treelet — can be filled concurrently by workers holding
// independent writers over the same backing array.
type writer struct {
	buf []byte
	pos int
}

func (w *writer) u8(v uint8) {
	w.buf[w.pos] = v
	w.pos++
}
func (w *writer) u16(v uint16) {
	binary.LittleEndian.PutUint16(w.buf[w.pos:], v)
	w.pos += 2
}
func (w *writer) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[w.pos:], v)
	w.pos += 4
}
func (w *writer) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[w.pos:], v)
	w.pos += 8
}
func (w *writer) i32(v int32) { w.u32(uint32(v)) }
func (w *writer) f32(v float32) {
	w.u32(math.Float32bits(v))
}
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *writer) bytes(b []byte) {
	copy(w.buf[w.pos:], b)
	w.pos += len(b)
}
func (w *writer) box(b geom.Box) {
	w.f64(b.Lower.X)
	w.f64(b.Lower.Y)
	w.f64(b.Lower.Z)
	w.f64(b.Upper.X)
	w.f64(b.Upper.Y)
	w.f64(b.Upper.Z)
}

// treeletNodeBytes is the per-node record size excluding bitmap IDs.
const treeletNodeBytes = 1 + 8 + 4 + 4 + 4 + 4

// shallowInnerBytes is the per-shallow-inner record size excluding IDs.
const shallowInnerBytes = 1 + 8 + 4 + 4

// shallowLeafBytes is the per-shallow-leaf record size excluding IDs:
// offset, byteLen, node/point counts, and the treelet bounds.
const shallowLeafBytes = 8 + 4 + 4 + 4 + 48

// footerV3ExtraLen is the size of the version-3 footer extension for nA
// attributes, inserted between the per-treelet CRCs and the footer CRC:
// numAttrs u32; per attribute codec u8 + error bound f64; LOD error scale
// f64; raw and encoded attribute payload byte totals u64 each.
func footerV3ExtraLen(nA int) int { return 4 + nA*(1+8) + 8 + 8 + 8 }

// compact assembles the file image: header + shallow tree + dictionary up
// front, then page-aligned treelets (paper §III-C3). Bitmaps are interned
// into the dictionary serially (ID assignment is first-use order, a format
// invariant); the per-treelet bounds scans, payload copies, and section
// CRCs then run across the worker pool, largest treelet first. Every
// section's extent is precomputed, so workers write disjoint byte ranges
// and the image is identical for any worker count.
func compact(set *particles.Set, domain geom.Box, cfg BuildConfig,
	ranges []bitmap.Range, shallowNodes []builtShallowNode, treelets []*treelet,
	workers int) (*Built, error) {

	nA := set.Schema.NumAttrs()
	dict := bitmap.NewDictionary()
	interned := 0
	intern := func(bms []bitmap.Bitmap) ([]bitmap.ID, error) {
		ids := make([]bitmap.ID, len(bms))
		for i, b := range bms {
			id, err := dict.Intern(b)
			if err != nil {
				return nil, err
			}
			ids[i] = id
		}
		interned += len(bms)
		return ids, nil
	}

	// Intern every node bitmap first so the dictionary size is known
	// before the header is laid out.
	shallowIDs := make([][]bitmap.ID, len(shallowNodes))
	for i, n := range shallowNodes {
		ids, err := intern(n.bitmaps)
		if err != nil {
			return nil, err
		}
		shallowIDs[i] = ids
	}
	treeletIDs := make([][][]bitmap.ID, len(treelets))
	rootIDs := make([][]bitmap.ID, len(treelets))
	for ti, t := range treelets {
		treeletIDs[ti] = make([][]bitmap.ID, len(t.nodes))
		for ni := range t.nodes {
			ids, err := intern(t.nodes[ni].bitmaps)
			if err != nil {
				return nil, err
			}
			treeletIDs[ti][ni] = ids
		}
		if len(t.nodes) > 0 {
			rootIDs[ti] = treeletIDs[ti][0]
		} else {
			rootIDs[ti] = make([]bitmap.ID, nA)
		}
	}

	// Compute the header size to locate the first treelet.
	headerSize := 4 + 4 + 4 + 8 + 48 + 16 + 4
	for _, a := range set.Schema.Attrs {
		headerSize += 2 + len(a.Name) + 1 + 16
	}
	headerSize += 4 + 4
	headerSize += len(shallowNodes) * (shallowInnerBytes + 2*nA)
	headerSize += len(treelets) * (shallowLeafBytes + 2*nA)
	headerSize += 4 + 4*dict.Len()

	// Treelet byte sizes and offsets.
	posBytes := 12
	var flags uint32
	if cfg.QuantizePositions {
		posBytes = 6
		flags |= flagQuantized
	}

	// The file version is chosen per build: compressed builds write the
	// version-3 section framing; uncompressed builds stay byte-identical
	// version-2 files.
	fileVer := uint32(2)
	if cfg.Compress {
		fileVer = 3
	}

	offsets := make([]uint64, len(treelets))
	sizes := make([]uint32, len(treelets))
	off := int64(headerSize)
	var padding int64
	var rawPayload, encPayload int64
	maxDepth := 0
	numNodes := 0
	for ti, t := range treelets {
		if t.depth > maxDepth {
			maxDepth = t.depth
		}
		numNodes += len(t.nodes)
		if rem := off % PageSize; rem != 0 {
			padding += PageSize - rem
			off += PageSize - rem
		}
		offsets[ti] = uint64(off)
		sz := 8 + len(t.nodes)*(treeletNodeBytes+2*nA) + len(t.order)*posBytes
		if cfg.Compress {
			for a, desc := range set.Schema.Attrs {
				raw := len(t.order) * desc.Type.Size()
				enc := t.attrEnc[a].encodedLen(len(t.order), desc.Type)
				sz += 1 + 4 + enc
				rawPayload += int64(raw)
				encPayload += int64(enc)
			}
		} else {
			for _, desc := range set.Schema.Attrs {
				raw := len(t.order) * desc.Type.Size()
				sz += raw
				rawPayload += int64(raw)
				encPayload += int64(raw)
			}
		}
		sizes[ti] = uint32(sz)
		off += int64(sz)
	}

	// The whole image, padding pre-zeroed, with room for the footer.
	footerLen := footerFixedLen + 4*len(treelets)
	if cfg.Compress {
		footerLen += footerV3ExtraLen(nA)
	}
	buf := make([]byte, off+int64(footerLen))

	// Fill the treelet sections: bounds scan, node records, payload
	// gather, and the section CRC for the footer. Each task touches only
	// buf[offsets[ti]:offsets[ti]+sizes[ti]].
	tBounds := make([]geom.Box, len(treelets))
	crcs := make([]uint32, len(treelets))
	fillErrs := make([]error, len(treelets))
	fillTreelet := func(ti int) {
		t := treelets[ti]
		tBounds[ti] = tightBounds(set, t.order)
		sectionStart := int(offsets[ti])
		w := &writer{buf: buf, pos: sectionStart}
		w.u32(uint32(len(t.nodes)))
		w.u32(uint32(len(t.order)))
		for ni, n := range t.nodes {
			w.u8(uint8(n.axis))
			w.f64(n.pos)
			w.i32(n.left)
			w.i32(n.right)
			w.u32(n.start)
			w.u32(n.count)
			for _, id := range treeletIDs[ti][ni] {
				w.u16(uint16(id))
			}
		}
		if cfg.QuantizePositions {
			b := tBounds[ti]
			quant := func(v, lo, extent float64) uint16 {
				if extent <= 0 {
					return 0
				}
				q := int((v - lo) / extent * 65536)
				if q < 0 {
					q = 0
				}
				if q > 65535 {
					q = 65535
				}
				return uint16(q)
			}
			sz := b.Size()
			for _, p := range t.order {
				w.u16(quant(float64(set.X[p]), b.Lower.X, sz.X))
			}
			for _, p := range t.order {
				w.u16(quant(float64(set.Y[p]), b.Lower.Y, sz.Y))
			}
			for _, p := range t.order {
				w.u16(quant(float64(set.Z[p]), b.Lower.Z, sz.Z))
			}
		} else {
			for _, p := range t.order {
				w.f32(set.X[p])
			}
			for _, p := range t.order {
				w.f32(set.Y[p])
			}
			for _, p := range t.order {
				w.f32(set.Z[p])
			}
		}
		for a, desc := range set.Schema.Attrs {
			vals := set.Attrs[a]
			writeRawCol := func() {
				if desc.Type == particles.Float32 {
					for _, p := range t.order {
						w.f32(float32(vals[p]))
					}
				} else {
					for _, p := range t.order {
						w.f64(vals[p])
					}
				}
			}
			if cfg.Compress {
				// Version-3 section framing: codec id, encoded length,
				// payload. Raw sections stream the v2 column bytes
				// directly; encoded sections copy the arena-built stream.
				enc := t.attrEnc[a]
				w.u8(enc.codec)
				w.u32(uint32(enc.encodedLen(len(t.order), desc.Type)))
				if enc.codec == codecRaw {
					writeRawCol()
				} else {
					w.bytes(enc.data)
				}
			} else {
				writeRawCol()
			}
		}
		if w.pos != sectionStart+int(sizes[ti]) {
			fillErrs[ti] = fmt.Errorf("bat: treelet %d layout error: wrote %d bytes, computed %d",
				ti, w.pos-sectionStart, sizes[ti])
			return
		}
		crcs[ti] = checksum.CRC32C(buf[offsets[ti] : offsets[ti]+uint64(sizes[ti])])
	}
	if workers <= 1 || len(treelets) <= 1 {
		for ti := range treelets {
			fillTreelet(ti)
		}
	} else {
		// Largest section first, so one big payload copy scheduled late
		// cannot stretch the stage.
		sched := make([]int, len(treelets))
		for i := range sched {
			sched[i] = i
		}
		sort.Slice(sched, func(a, b int) bool {
			if sizes[sched[a]] != sizes[sched[b]] {
				return sizes[sched[a]] > sizes[sched[b]]
			}
			return sched[a] < sched[b]
		})
		nw := workers
		if nw > len(treelets) {
			nw = len(treelets)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < nw; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(sched) {
						return
					}
					fillTreelet(sched[i])
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range fillErrs {
		if err != nil {
			return nil, err
		}
	}

	// Header (depends on the treelet bounds, so written after the fill).
	w := &writer{buf: buf}
	w.bytes([]byte(magic))
	w.u32(fileVer)
	w.u32(flags)
	w.u64(uint64(set.Len()))
	w.box(domain)
	w.u32(uint32(cfg.SubprefixBits))
	w.u32(uint32(cfg.LODPerNode))
	w.u32(uint32(cfg.MaxLeafSize))
	w.u32(uint32(maxDepth))
	w.u32(uint32(nA))
	for a, desc := range set.Schema.Attrs {
		w.u16(uint16(len(desc.Name)))
		w.bytes([]byte(desc.Name))
		w.u8(uint8(desc.Type))
		r := ranges[a]
		w.f64(r.Min)
		w.f64(r.Max)
	}
	w.u32(uint32(len(shallowNodes)))
	w.u32(uint32(len(treelets)))
	for i, n := range shallowNodes {
		w.u8(uint8(n.axis))
		w.f64(n.pos)
		w.i32(n.left)
		w.i32(n.right)
		for _, id := range shallowIDs[i] {
			w.u16(uint16(id))
		}
	}
	for ti, t := range treelets {
		w.u64(offsets[ti])
		w.u32(sizes[ti])
		w.u32(uint32(len(t.nodes)))
		w.u32(uint32(len(t.order)))
		w.box(tBounds[ti])
		for _, id := range rootIDs[ti] {
			w.u16(uint16(id))
		}
	}
	w.u32(uint32(dict.Len()))
	for _, e := range dict.Entries() {
		w.u32(uint32(e))
	}
	if w.pos != headerSize {
		return nil, fmt.Errorf("bat: header layout error: wrote %d bytes, computed %d", w.pos, headerSize)
	}

	// Checksum footer: header CRC plus one CRC per treelet section, then
	// a CRC over the footer itself so its own corruption is detected.
	footerStart := int(off)
	w.pos = footerStart
	w.u32(checksum.CRC32C(buf[:headerSize]))
	w.u32(uint32(len(treelets)))
	for ti := range treelets {
		w.u32(crcs[ti])
	}
	if cfg.Compress {
		// Version-3 extension: the declared per-attribute codec class and
		// error bound (validated against every section at decode time),
		// the LOD error scale, and the payload byte totals so readers can
		// report the whole-file ratio without scanning sections.
		bounds := cfg.AttrBounds(nA)
		w.u32(uint32(nA))
		for _, b := range bounds {
			c := uint8(codecDelta)
			if b > 0 {
				c = codecQuant
			}
			w.u8(c)
			w.f64(b)
		}
		w.f64(cfg.EffectiveLODScale())
		w.u64(uint64(rawPayload))
		w.u64(uint64(encPayload))
	}
	w.u32(checksum.CRC32C(buf[footerStart:w.pos]))
	w.u32(uint32(w.pos - footerStart + 8))
	w.bytes([]byte(footerMagic))
	if w.pos != len(buf) {
		return nil, fmt.Errorf("bat: footer layout error: ended at %d of %d bytes", w.pos, len(buf))
	}

	stats := BuildStats{
		NumParticles:    set.Len(),
		NumTreelets:     len(treelets),
		NumTreeletNodes: numNodes,
		NumShallowNodes: len(shallowNodes),
		MaxTreeletDepth: maxDepth,
		DictEntries:     dict.Len(),
		BitmapsInterned: interned,
		FileBytes:       int64(len(buf)),
		RawDataBytes:    int64(set.Len()) * int64(set.Schema.BytesPerParticle()),
		PaddingBytes:    padding,

		AttrPayloadRawBytes: rawPayload,
		AttrPayloadEncBytes: encPayload,
	}
	return &Built{Buf: buf, Stats: stats}, nil
}
