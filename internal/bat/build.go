// Package bat implements the Binned Attribute Tree (BAT), the paper's
// multiresolution particle data layout (§III-C). A BAT is built by each
// aggregator over the particles it receives and supports:
//
//   - progressive multiresolution reads: treelet inner nodes hold a fixed
//     number of stratified-sampled LOD particles, taken from (not
//     duplicating) the input;
//   - spatial queries through its k-d structure: a shallow tree built
//     bottom-up with Karras's algorithm over merged Morton subprefixes,
//     with a median-split k-d treelet per shallow leaf;
//   - attribute-filtered queries via fixed 32-bit binned bitmap indices at
//     every node, deduplicated through a 16-bit-ID dictionary.
//
// The compacted byte-buffer form (see format.go) is what aggregators write
// to disk; treelets are 4 KB page aligned for memory-mapped access.
//
// The build runs as a parallel pipeline (chunked Morton encoding, a stable
// parallel radix sort, fused treelet+bitmap workers over per-worker scratch
// arenas, and a parallel payload compaction); every stage is deterministic,
// so the output bytes are identical for any worker count, including the
// fully serial path behind BuildConfig.Parallel=false.
package bat

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"libbat/internal/bitmap"
	"libbat/internal/geom"
	"libbat/internal/morton"
	"libbat/internal/obs"
	"libbat/internal/particles"
	"libbat/internal/radix"
)

// BuildConfig controls BAT construction. The zero value is not valid; use
// DefaultBuildConfig.
type BuildConfig struct {
	// SubprefixBits is the Morton subprefix width merged to form the
	// shallow tree's leaves (paper: 12 bits). Unless FixedSubprefix is
	// set, the width is reduced automatically for small particle counts
	// so each treelet holds enough particles to form an LOD hierarchy;
	// at the paper's scales (millions of particles per aggregator) the
	// full width is used.
	SubprefixBits int
	// FixedSubprefix disables the automatic subprefix reduction.
	FixedSubprefix bool
	// LODPerNode is the number of LOD particles set aside at each treelet
	// inner node (paper evaluation: 8).
	LODPerNode int
	// MaxLeafSize is the maximum number of particles in a treelet leaf
	// (paper evaluation: 128).
	MaxLeafSize int
	// Parallel enables the concurrent build pipeline. When false the
	// whole build runs serially on the calling goroutine (the in-transit
	// friendly mode); the output bytes are identical either way.
	Parallel bool
	// Workers caps the build's worker pool (Morton encoding, the radix
	// sort, treelet construction, payload compaction). 0 means
	// runtime.GOMAXPROCS(0); values below 0 are rejected. Ignored when
	// Parallel is false.
	Workers int
	// QuantizePositions stores positions as 16-bit fixed point relative
	// to each treelet's bounds (6 bytes per particle instead of 12),
	// implementing the quantization extension the paper leaves as future
	// work (§VII-A). The quantization error is bounded by the treelet
	// extent divided by 65536 per axis.
	QuantizePositions bool
	// Compress enables the version-3 per-attribute codec layer: each
	// treelet's attribute columns are stored through an error-bounded
	// codec (see codec.go) instead of raw float arrays. Uncompressed
	// builds keep writing byte-identical version-2 files.
	Compress bool
	// ErrorBound is the absolute error bound applied to every attribute
	// when Compress is set. 0 (the default) means lossless: columns are
	// stored raw or, when integral-valued, delta+varint coded. The bound
	// is measured against the value the attribute's schema type stores
	// (Float32 attributes round through float32 either way).
	ErrorBound float64
	// AttrErrorBounds overrides ErrorBound per attribute (indexed like
	// the schema). Nil applies ErrorBound uniformly; when set, its length
	// must equal the schema's attribute count.
	AttrErrorBounds []float64
	// LODErrorScale loosens the bound for values inside inner-node LOD
	// sample ranges: those values may err up to bound × LODErrorScale,
	// exploiting the multiresolution layout (progressive previews
	// tolerate coarser data than leaf-level reads). 0 or 1 keeps one
	// bound everywhere; values in (0, 1) are rejected.
	LODErrorScale float64
	// Obs, when set, receives build telemetry (treelet counts, dictionary
	// size, bitmap dedup hits, and the bat_build_* phase spans). Nil
	// disables it.
	Obs *obs.Collector
	// ObsRank labels the build's telemetry on multi-rank timelines (an
	// aggregator passes its rank); purely observational.
	ObsRank int
}

// DefaultBuildConfig returns the configuration used in the paper's
// evaluation: 12-bit subprefixes, 8 LOD particles per inner node, up to 128
// particles per leaf, built in parallel across all CPUs.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{
		SubprefixBits: 12,
		LODPerNode:    8,
		MaxLeafSize:   128,
		Parallel:      true,
		Workers:       runtime.GOMAXPROCS(0),
	}
}

func (c BuildConfig) validate() error {
	if c.SubprefixBits < 1 || c.SubprefixBits > morton.TotalBits {
		return fmt.Errorf("bat: subprefix bits %d out of range [1,%d]", c.SubprefixBits, morton.TotalBits)
	}
	if c.LODPerNode < 1 {
		return fmt.Errorf("bat: LOD per node must be >= 1, got %d", c.LODPerNode)
	}
	if c.MaxLeafSize < 1 {
		return fmt.Errorf("bat: max leaf size must be >= 1, got %d", c.MaxLeafSize)
	}
	if c.Workers < 0 {
		return fmt.Errorf("bat: workers must be >= 0 (0 = GOMAXPROCS), got %d", c.Workers)
	}
	if c.ErrorBound < 0 || math.IsNaN(c.ErrorBound) || math.IsInf(c.ErrorBound, 0) {
		return fmt.Errorf("bat: error bound must be finite and >= 0, got %g", c.ErrorBound)
	}
	for a, b := range c.AttrErrorBounds {
		if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("bat: attribute %d error bound must be finite and >= 0, got %g", a, b)
		}
	}
	if s := c.LODErrorScale; s != 0 && (s < 1 || math.IsNaN(s) || math.IsInf(s, 0)) {
		return fmt.Errorf("bat: LOD error scale must be 0 or >= 1, got %g", s)
	}
	return nil
}

// AttrBounds resolves the per-attribute error bounds for a schema of nA
// attributes: AttrErrorBounds verbatim when set, ErrorBound uniformly
// otherwise. Meaningful only when Compress is set.
func (c BuildConfig) AttrBounds(nA int) []float64 {
	out := make([]float64, nA)
	for a := range out {
		if c.AttrErrorBounds != nil {
			out[a] = c.AttrErrorBounds[a]
		} else {
			out[a] = c.ErrorBound
		}
	}
	return out
}

// EffectiveLODScale resolves LODErrorScale's 0-means-1 default.
func (c BuildConfig) EffectiveLODScale() float64 {
	if c.LODErrorScale <= 0 {
		return 1
	}
	return c.LODErrorScale
}

// effectiveWorkers resolves the worker-pool size: 1 when the build is
// serial, the configured cap otherwise, defaulting to GOMAXPROCS.
func (c BuildConfig) effectiveWorkers() int {
	if !c.Parallel {
		return 1
	}
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// treeletNode is an in-memory treelet node prior to compaction.
type treeletNode struct {
	axis        geom.Axis // leafAxis for leaves
	pos         float64
	left, right int32 // node indices within the treelet; unset for leaves
	// pts are indices into the aggregator's particle set: the LOD samples
	// for inner nodes, all contained particles for leaves. They alias the
	// build's sorted-order array, not arena memory.
	pts     []int
	bitmaps []bitmap.Bitmap // one per attribute
	start   uint32          // particle range within the treelet, set at flatten
	count   uint32
}

// leafAxis marks a treelet or shallow node as a leaf on disk.
const leafAxis geom.Axis = 3

// treelet is one built treelet: nodes in BFS order (root at 0) with
// particle ranges laid out in the same order.
type treelet struct {
	nodes  []treeletNode
	order  []int // particle indices (into the set) in file layout order
	depth  int   // max node depth, root = 0
	prefix morton.Code
	// attrEnc holds the compressed attribute sections (one per attribute)
	// for v3 builds; nil when the build is uncompressed. Filled by the
	// same fused worker that built the treelet, so encoding overlaps
	// across treelets exactly like node construction does.
	attrEnc []encodedAttr
}

// builtShallowNode is an in-memory shallow tree inner node.
type builtShallowNode struct {
	axis        geom.Axis
	pos         float64
	left, right int32 // >= 0: inner node; < 0: ^treeletIndex
	bitmaps     []bitmap.Bitmap
}

// Built is the in-memory result of a BAT build: the compacted file image
// plus build statistics. The buffer is directly writable to disk and
// directly queryable (see Reader), enabling the paper's in-transit use.
type Built struct {
	Buf   []byte
	Stats BuildStats
}

// BuildStats reports layout statistics.
type BuildStats struct {
	NumParticles    int
	NumTreelets     int
	NumTreeletNodes int
	NumShallowNodes int
	MaxTreeletDepth int
	DictEntries     int
	// BitmapsInterned counts every per-node per-attribute bitmap handed to
	// the dictionary; BitmapsInterned - DictEntries is the number of
	// deduplication hits (§III-C2's 16-bit-ID dictionary).
	BitmapsInterned int
	FileBytes       int64
	RawDataBytes    int64
	PaddingBytes    int64
	// AttrPayloadRawBytes / AttrPayloadEncBytes are the attribute payload
	// sizes before and after the v3 codec layer (codec.go); equal — and
	// excluding the 5-byte per-section codec framing — for uncompressed
	// builds. The ratio raw/enc is the attribute compression ratio.
	AttrPayloadRawBytes int64
	AttrPayloadEncBytes int64
}

// OverheadFraction returns the layout's storage overhead relative to the
// raw particle payload (paper §VI-B: ~0.9%).
func (s BuildStats) OverheadFraction() float64 {
	if s.RawDataBytes == 0 {
		return 0
	}
	return float64(s.FileBytes-s.RawDataBytes) / float64(s.RawDataBytes)
}

// group is one shallow-tree leaf: the particles sharing a Morton subprefix,
// as a contiguous range of the sorted order.
type group struct {
	code     morton.Code
	from, to int // range in the sorted order
}

// Build constructs the compacted BAT over the particle set. domain is the
// spatial region the Morton quantization is computed against (the
// aggregation-tree leaf bounds); it must contain all particles.
//
// The build is deterministic: for a given set, domain, and layout options
// the returned bytes are identical regardless of Parallel and Workers.
func Build(set *particles.Set, domain geom.Box, cfg BuildConfig) (*Built, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.AttrErrorBounds != nil && len(cfg.AttrErrorBounds) != set.Schema.NumAttrs() {
		return nil, fmt.Errorf("bat: %d per-attribute error bounds for %d attributes",
			len(cfg.AttrErrorBounds), set.Schema.NumAttrs())
	}
	n := set.Len()
	workers := cfg.effectiveWorkers()
	if !cfg.FixedSubprefix {
		// Shrink the subprefix until the average treelet holds a few
		// dozen leaves' worth of particles: deep enough for useful LOD
		// levels and large enough that the 4 KB page alignment padding
		// stays around 1% of the data (§VI-B's memory overhead).
		for cfg.SubprefixBits > 0 && n>>uint(cfg.SubprefixBits) < 32*cfg.MaxLeafSize {
			cfg.SubprefixBits--
		}
		if cfg.SubprefixBits == 0 {
			cfg.SubprefixBits = 1
		}
	}
	col := cfg.Obs

	// Attribute local value ranges (the bitmap reference ranges), one
	// independent scan per attribute.
	ranges := attrRanges(set, workers)

	// Step 1: Morton codes and the sorted particle order (stable, so the
	// order is worker-count independent).
	spSort := col.Start(cfg.ObsRank, "bat_build_sort")
	sortedCodes, order := sortByMorton(set, domain, workers)

	// Step 2: merge shared subprefixes into the shallow tree's leaf codes
	// and record each group's contiguous range in the sorted order.
	var groups []group
	for i := 0; i < n; {
		sp := sortedCodes[i].Subprefix(cfg.SubprefixBits)
		j := i + 1
		for j < n && sortedCodes[j].Subprefix(cfg.SubprefixBits) == sp {
			j++
		}
		groups = append(groups, group{code: sp, from: i, to: j})
		i = j
	}
	leafCodes := make([]morton.Code, len(groups))
	for i, g := range groups {
		leafCodes[i] = g.code
	}
	spSort.End()

	spShallow := col.Start(cfg.ObsRank, "bat_build_shallow")
	shallow := radix.Build(leafCodes)
	spShallow.End()

	// Steps 3+4 fused: each worker builds a treelet and computes its
	// bottom-up bitmaps in the same task, reusing its own scratch arena.
	spTreelets := col.Start(cfg.ObsRank, "bat_build_treelets")
	treelets := buildTreelets(set, order, groups, cfg, ranges, workers)
	spTreelets.End()

	// Step 5: flatten the shallow radix tree and propagate bitmaps up it.
	shallowNodes := flattenShallow(shallow, treelets, domain, cfg.SubprefixBits, set.Schema.NumAttrs())

	// Step 6: compact everything into the file image, copying treelet
	// payloads in parallel.
	spCompact := col.Start(cfg.ObsRank, "bat_build_compact")
	built, err := compact(set, domain, cfg, ranges, shallowNodes, treelets, workers)
	spCompact.End()
	if err != nil {
		return nil, err
	}
	if col != nil {
		st := built.Stats
		col.Add("bat_builds_total", 1)
		col.Add("bat_particles_total", int64(st.NumParticles))
		col.Add("bat_treelets_built_total", int64(st.NumTreelets))
		col.Add("bat_treelet_nodes_total", int64(st.NumTreeletNodes))
		col.Add("bat_dict_entries_total", int64(st.DictEntries))
		col.Add("bat_bitmaps_interned_total", int64(st.BitmapsInterned))
		col.Add("bat_bitmap_dedup_hits_total", int64(st.BitmapsInterned-st.DictEntries))
		col.Add("bat_file_bytes_total", st.FileBytes)
	}
	return built, nil
}

// attrRanges scans each attribute's value range, one attribute per task.
func attrRanges(set *particles.Set, workers int) []bitmap.Range {
	ranges := make([]bitmap.Range, set.Schema.NumAttrs())
	if workers <= 1 || len(ranges) <= 1 {
		for a := range ranges {
			ranges[a] = set.AttrRange(a)
		}
		return ranges
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for a := range ranges {
		wg.Add(1)
		sem <- struct{}{}
		go func(a int) {
			defer wg.Done()
			ranges[a] = set.AttrRange(a)
			<-sem
		}(a)
	}
	wg.Wait()
	return ranges
}

// buildTreelets runs the fused treelet+bitmap stage: one task per shallow
// leaf, scheduled largest-group-first across the worker pool so a huge
// treelet picked up last cannot become a straggler tail. Results land in
// input order, so the scheduling order never reaches the output.
func buildTreelets(set *particles.Set, order []int, groups []group,
	cfg BuildConfig, ranges []bitmap.Range, workers int) []*treelet {

	treelets := make([]*treelet, len(groups))
	var bounds []float64
	lodScale := cfg.EffectiveLODScale()
	if cfg.Compress {
		bounds = cfg.AttrBounds(set.Schema.NumAttrs())
	}
	task := func(gi int, a *buildArena) {
		g := groups[gi]
		t := buildTreelet(set, order[g.from:g.to], cfg, a)
		t.prefix = g.code
		computeTreeletBitmaps(set, t, ranges)
		if cfg.Compress {
			encodeTreeletAttrs(set, t, bounds, lodScale, a)
		}
		treelets[gi] = t
	}
	if workers <= 1 || len(groups) <= 1 {
		var a buildArena
		for gi := range groups {
			task(gi, &a)
		}
		return treelets
	}
	sched := make([]int, len(groups))
	for i := range sched {
		sched[i] = i
	}
	sort.Slice(sched, func(a, b int) bool {
		sa := groups[sched[a]].to - groups[sched[a]].from
		sb := groups[sched[b]].to - groups[sched[b]].from
		if sa != sb {
			return sa > sb
		}
		return sched[a] < sched[b]
	})
	if workers > len(groups) {
		workers = len(groups)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var a buildArena
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sched) {
					return
				}
				task(sched[i], &a)
			}
		}()
	}
	wg.Wait()
	return treelets
}

// buildTreelet constructs a median-split k-d treelet over the particles in
// idx (already sorted by Morton code, which stratified LOD sampling relies
// on). idx is consumed: the build partitions it in place, and the treelet's
// node particle lists alias it.
func buildTreelet(set *particles.Set, idx []int, cfg BuildConfig, a *buildArena) *treelet {
	t := &treelet{}
	if len(idx) == 0 {
		return t
	}
	a.ensure(len(idx), cfg.LODPerNode)
	t.nodes = make([]treeletNode, 0, 2*(len(idx)/cfg.MaxLeafSize)+1)
	// Build depth-first into the nodes slice, then reorder to BFS layout.
	var build func(pts []int, depth int) int32
	build = func(pts []int, depth int) int32 {
		if depth > t.depth {
			t.depth = depth
		}
		me := int32(len(t.nodes))
		if len(pts) <= cfg.MaxLeafSize {
			t.nodes = append(t.nodes, treeletNode{axis: leafAxis, pts: pts})
			return me
		}
		// Stratified LOD sampling over the Morton-sorted points: one
		// sample per stride keeps the subset spatially representative.
		lod, rest := stratifiedSampleInPlace(pts, cfg.LODPerNode, a)
		// Median split along the longest axis of the point bounds; a full
		// sort is unnecessary — quickselect the median coordinate and
		// three-way partition around it (O(n) per level).
		bounds := tightBounds(set, rest)
		axis := bounds.LongestAxis()
		mid, pos, ok := medianPartition(set, rest, axis, a)
		if !ok {
			// Degenerate distribution (all points coincident on the
			// axis): fall back to a leaf holding everything.
			t.nodes = append(t.nodes, treeletNode{axis: leafAxis, pts: pts})
			return me
		}
		t.nodes = append(t.nodes, treeletNode{axis: axis, pos: pos, pts: lod})
		l := build(rest[:mid], depth+1)
		r := build(rest[mid:], depth+1)
		t.nodes[me].left = l
		t.nodes[me].right = r
		return me
	}
	build(idx, 0)
	t.reorderBFS(len(idx))
	return t
}

// quickselect returns the k-th smallest element of a (0-based), mutating a.
// The median-of-three pivot keeps it deterministic and fast on the sorted
// and constant runs common in particle coordinates.
func quickselect(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		// Median-of-three pivot.
		m := (lo + hi) / 2
		if a[m] < a[lo] {
			a[m], a[lo] = a[lo], a[m]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[m] {
			a[hi], a[m] = a[m], a[hi]
		}
		pivot := a[m]
		// Three-way partition (Dutch national flag) handles duplicate-
		// heavy inputs without quadratic blowup.
		i, j, p := lo, lo, hi
		for j <= p {
			switch {
			case a[j] < pivot:
				a[i], a[j] = a[j], a[i]
				i++
				j++
			case a[j] > pivot:
				a[j], a[p] = a[p], a[j]
				p--
			default:
				j++
			}
		}
		switch {
		case k < i:
			hi = i - 1
		case k > p:
			lo = p + 1
		default:
			return pivot
		}
	}
	return a[lo]
}

// reorderBFS relays the treelet's nodes out in breadth-first order and
// assigns each node's particle range in that order, so a depth-limited
// progressive read touches a prefix of the treelet's particle data.
// numPts is the treelet's particle count, sizing the layout array exactly.
func (t *treelet) reorderBFS(numPts int) {
	if len(t.nodes) == 0 {
		return
	}
	bfs := make([]int32, 0, len(t.nodes))
	bfs = append(bfs, 0)
	for qi := 0; qi < len(bfs); qi++ {
		n := &t.nodes[bfs[qi]]
		if n.axis != leafAxis {
			bfs = append(bfs, n.left, n.right)
		}
	}
	remap := make([]int32, len(t.nodes))
	for newIdx, oldIdx := range bfs {
		remap[oldIdx] = int32(newIdx)
	}
	newNodes := make([]treeletNode, len(t.nodes))
	order := make([]int, 0, numPts)
	for newIdx, oldIdx := range bfs {
		n := t.nodes[oldIdx]
		if n.axis != leafAxis {
			n.left, n.right = remap[n.left], remap[n.right]
		}
		n.start = uint32(len(order))
		n.count = uint32(len(n.pts))
		order = append(order, n.pts...)
		newNodes[newIdx] = n
	}
	t.nodes = newNodes
	t.order = order
}

// computeTreeletBitmaps fills per-node per-attribute bitmaps bottom-up:
// leaves index their particles; inner nodes merge their children's bitmaps
// with those of their own LOD particles (§III-C2). All node bitmap slices
// share one backing array, a single allocation per treelet.
func computeTreeletBitmaps(set *particles.Set, t *treelet, ranges []bitmap.Range) {
	nA := set.Schema.NumAttrs()
	backing := make([]bitmap.Bitmap, len(t.nodes)*nA)
	// BFS order guarantees children follow parents; iterate in reverse.
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := &t.nodes[i]
		n.bitmaps = backing[i*nA : (i+1)*nA : (i+1)*nA]
		for a := 0; a < nA; a++ {
			var b bitmap.Bitmap
			vals := set.Attrs[a]
			for _, p := range n.pts {
				b |= bitmap.OfValue(vals[p], ranges[a])
			}
			if n.axis != leafAxis {
				b |= t.nodes[n.left].bitmaps[a] | t.nodes[n.right].bitmaps[a]
			}
			n.bitmaps[a] = b
		}
	}
}

// flattenShallow converts the radix tree over subprefix codes into the
// stored shallow k-d tree: each inner node's split plane is derived from
// the first bit on which its two subtrees differ, and node bitmaps are the
// merge of the covered treelets' root bitmaps.
func flattenShallow(rt *radix.Tree, treelets []*treelet, domain geom.Box, subprefixBits, nAttrs int) []builtShallowNode {
	if len(rt.Nodes) == 0 {
		return nil
	}
	nodes := make([]builtShallowNode, len(rt.Nodes))
	var rec func(ref int32) []bitmap.Bitmap
	rec = func(ref int32) []bitmap.Bitmap {
		if li, ok := radix.IsLeafRef(ref); ok {
			t := treelets[li]
			if len(t.nodes) == 0 {
				return make([]bitmap.Bitmap, nAttrs)
			}
			return t.nodes[0].bitmaps
		}
		prefix, plen := rt.SharedPrefix(int(ref), subprefixBits)
		cell := morton.CellBounds(prefix, plen, domain)
		axis := axisOfPrefixBit(plen)
		pos := cell.Center().Component(axis)
		n := &nodes[ref]
		n.axis, n.pos = axis, pos
		n.left, n.right = rt.Nodes[ref].Left, rt.Nodes[ref].Right
		lb := rec(n.left)
		rb := rec(n.right)
		n.bitmaps = make([]bitmap.Bitmap, nAttrs)
		for a := range n.bitmaps {
			n.bitmaps[a] = lb[a] | rb[a]
		}
		return n.bitmaps
	}
	rec(0)
	return nodes
}

// axisOfPrefixBit maps a 0-based bit index counted from the top of a Morton
// code to its split axis. The encoding interleaves x at bit 3i, y at 3i+1,
// z at 3i+2, so the topmost bit (index 0 from the top) belongs to z.
func axisOfPrefixBit(i int) geom.Axis {
	switch i % 3 {
	case 0:
		return geom.Z
	case 1:
		return geom.Y
	default:
		return geom.X
	}
}
