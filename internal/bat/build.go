// Package bat implements the Binned Attribute Tree (BAT), the paper's
// multiresolution particle data layout (§III-C). A BAT is built by each
// aggregator over the particles it receives and supports:
//
//   - progressive multiresolution reads: treelet inner nodes hold a fixed
//     number of stratified-sampled LOD particles, taken from (not
//     duplicating) the input;
//   - spatial queries through its k-d structure: a shallow tree built
//     bottom-up with Karras's algorithm over merged Morton subprefixes,
//     with a median-split k-d treelet per shallow leaf;
//   - attribute-filtered queries via fixed 32-bit binned bitmap indices at
//     every node, deduplicated through a 16-bit-ID dictionary.
//
// The compacted byte-buffer form (see format.go) is what aggregators write
// to disk; treelets are 4 KB page aligned for memory-mapped access.
package bat

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"libbat/internal/bitmap"
	"libbat/internal/geom"
	"libbat/internal/morton"
	"libbat/internal/obs"
	"libbat/internal/particles"
	"libbat/internal/radix"
)

// BuildConfig controls BAT construction. The zero value is not valid; use
// DefaultBuildConfig.
type BuildConfig struct {
	// SubprefixBits is the Morton subprefix width merged to form the
	// shallow tree's leaves (paper: 12 bits). Unless FixedSubprefix is
	// set, the width is reduced automatically for small particle counts
	// so each treelet holds enough particles to form an LOD hierarchy;
	// at the paper's scales (millions of particles per aggregator) the
	// full width is used.
	SubprefixBits int
	// FixedSubprefix disables the automatic subprefix reduction.
	FixedSubprefix bool
	// LODPerNode is the number of LOD particles set aside at each treelet
	// inner node (paper evaluation: 8).
	LODPerNode int
	// MaxLeafSize is the maximum number of particles in a treelet leaf
	// (paper evaluation: 128).
	MaxLeafSize int
	// Parallel enables concurrent treelet construction.
	Parallel bool
	// QuantizePositions stores positions as 16-bit fixed point relative
	// to each treelet's bounds (6 bytes per particle instead of 12),
	// implementing the quantization extension the paper leaves as future
	// work (§VII-A). The quantization error is bounded by the treelet
	// extent divided by 65536 per axis.
	QuantizePositions bool
	// Obs, when set, receives build telemetry (treelet counts, dictionary
	// size, bitmap dedup hits). Nil disables it.
	Obs *obs.Collector
}

// DefaultBuildConfig returns the configuration used in the paper's
// evaluation: 12-bit subprefixes, 8 LOD particles per inner node, up to 128
// particles per leaf.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{SubprefixBits: 12, LODPerNode: 8, MaxLeafSize: 128, Parallel: true}
}

func (c BuildConfig) validate() error {
	if c.SubprefixBits < 1 || c.SubprefixBits > morton.TotalBits {
		return fmt.Errorf("bat: subprefix bits %d out of range [1,%d]", c.SubprefixBits, morton.TotalBits)
	}
	if c.LODPerNode < 1 {
		return fmt.Errorf("bat: LOD per node must be >= 1, got %d", c.LODPerNode)
	}
	if c.MaxLeafSize < 1 {
		return fmt.Errorf("bat: max leaf size must be >= 1, got %d", c.MaxLeafSize)
	}
	return nil
}

// treeletNode is an in-memory treelet node prior to compaction.
type treeletNode struct {
	axis        geom.Axis // leafAxis for leaves
	pos         float64
	left, right int32 // node indices within the treelet; unset for leaves
	// pts are indices into the aggregator's particle set: the LOD samples
	// for inner nodes, all contained particles for leaves.
	pts     []int
	bitmaps []bitmap.Bitmap // one per attribute
	start   uint32          // particle range within the treelet, set at flatten
	count   uint32
}

// leafAxis marks a treelet or shallow node as a leaf on disk.
const leafAxis geom.Axis = 3

// treelet is one built treelet: nodes in BFS order (root at 0) with
// particle ranges laid out in the same order.
type treelet struct {
	nodes  []treeletNode
	order  []int // particle indices (into the set) in file layout order
	depth  int   // max node depth, root = 0
	prefix morton.Code
}

// builtShallowNode is an in-memory shallow tree inner node.
type builtShallowNode struct {
	axis        geom.Axis
	pos         float64
	left, right int32 // >= 0: inner node; < 0: ^treeletIndex
	bitmaps     []bitmap.Bitmap
}

// Built is the in-memory result of a BAT build: the compacted file image
// plus build statistics. The buffer is directly writable to disk and
// directly queryable (see Reader), enabling the paper's in-transit use.
type Built struct {
	Buf   []byte
	Stats BuildStats
}

// BuildStats reports layout statistics.
type BuildStats struct {
	NumParticles    int
	NumTreelets     int
	NumTreeletNodes int
	NumShallowNodes int
	MaxTreeletDepth int
	DictEntries     int
	// BitmapsInterned counts every per-node per-attribute bitmap handed to
	// the dictionary; BitmapsInterned - DictEntries is the number of
	// deduplication hits (§III-C2's 16-bit-ID dictionary).
	BitmapsInterned int
	FileBytes       int64
	RawDataBytes    int64
	PaddingBytes    int64
}

// OverheadFraction returns the layout's storage overhead relative to the
// raw particle payload (paper §VI-B: ~0.9%).
func (s BuildStats) OverheadFraction() float64 {
	if s.RawDataBytes == 0 {
		return 0
	}
	return float64(s.FileBytes-s.RawDataBytes) / float64(s.RawDataBytes)
}

// Build constructs the compacted BAT over the particle set. domain is the
// spatial region the Morton quantization is computed against (the
// aggregation-tree leaf bounds); it must contain all particles.
func Build(set *particles.Set, domain geom.Box, cfg BuildConfig) (*Built, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := set.Len()
	if !cfg.FixedSubprefix {
		// Shrink the subprefix until the average treelet holds a few
		// dozen leaves' worth of particles: deep enough for useful LOD
		// levels and large enough that the 4 KB page alignment padding
		// stays around 1% of the data (§VI-B's memory overhead).
		for cfg.SubprefixBits > 0 && n>>uint(cfg.SubprefixBits) < 32*cfg.MaxLeafSize {
			cfg.SubprefixBits--
		}
		if cfg.SubprefixBits == 0 {
			cfg.SubprefixBits = 1
		}
	}
	// Attribute local value ranges (the bitmap reference ranges).
	ranges := make([]bitmap.Range, set.Schema.NumAttrs())
	for a := range ranges {
		ranges[a] = set.AttrRange(a)
	}

	// Step 1: Morton codes, sorted particle order.
	codes := make([]morton.Code, n)
	for i := 0; i < n; i++ {
		codes[i] = morton.FromPoint(set.Position(i), domain)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return codes[order[a]] < codes[order[b]] })

	// Step 2: merge shared subprefixes into the shallow tree's leaf codes
	// and record each group's contiguous range in the sorted order.
	type group struct {
		code     morton.Code
		from, to int // range in `order`
	}
	var groups []group
	for i := 0; i < n; {
		sp := codes[order[i]].Subprefix(cfg.SubprefixBits)
		j := i + 1
		for j < n && codes[order[j]].Subprefix(cfg.SubprefixBits) == sp {
			j++
		}
		groups = append(groups, group{code: sp, from: i, to: j})
		i = j
	}
	leafCodes := make([]morton.Code, len(groups))
	for i, g := range groups {
		leafCodes[i] = g.code
	}
	shallow := radix.Build(leafCodes)

	// Step 3: independent treelet builds, one per shallow leaf.
	treelets := make([]*treelet, len(groups))
	buildOne := func(gi int) {
		g := groups[gi]
		t := buildTreelet(set, order[g.from:g.to], cfg)
		t.prefix = g.code
		treelets[gi] = t
	}
	if cfg.Parallel && len(groups) > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, 16)
		for gi := range groups {
			wg.Add(1)
			sem <- struct{}{}
			go func(gi int) {
				defer wg.Done()
				buildOne(gi)
				<-sem
			}(gi)
		}
		wg.Wait()
	} else {
		for gi := range groups {
			buildOne(gi)
		}
	}

	// Step 4: bitmaps bottom-up within each treelet.
	for _, t := range treelets {
		computeTreeletBitmaps(set, t, ranges)
	}

	// Step 5: flatten the shallow radix tree and propagate bitmaps up it.
	shallowNodes := flattenShallow(shallow, treelets, domain, cfg.SubprefixBits, set.Schema.NumAttrs())

	// Step 6: compact everything into the file image.
	built, err := compact(set, domain, cfg, ranges, shallowNodes, treelets)
	if err != nil {
		return nil, err
	}
	if col := cfg.Obs; col != nil {
		st := built.Stats
		col.Add("bat_builds_total", 1)
		col.Add("bat_particles_total", int64(st.NumParticles))
		col.Add("bat_treelets_built_total", int64(st.NumTreelets))
		col.Add("bat_treelet_nodes_total", int64(st.NumTreeletNodes))
		col.Add("bat_dict_entries_total", int64(st.DictEntries))
		col.Add("bat_bitmaps_interned_total", int64(st.BitmapsInterned))
		col.Add("bat_bitmap_dedup_hits_total", int64(st.BitmapsInterned-st.DictEntries))
		col.Add("bat_file_bytes_total", st.FileBytes)
	}
	return built, nil
}

// buildTreelet constructs a median-split k-d treelet over the particles in
// idx (already sorted by Morton code, which stratified LOD sampling relies
// on). idx is consumed.
func buildTreelet(set *particles.Set, idx []int, cfg BuildConfig) *treelet {
	t := &treelet{}
	// Build depth-first into the nodes slice, then reorder to BFS layout.
	var build func(pts []int, depth int) int32
	build = func(pts []int, depth int) int32 {
		if depth > t.depth {
			t.depth = depth
		}
		me := int32(len(t.nodes))
		if len(pts) <= cfg.MaxLeafSize {
			t.nodes = append(t.nodes, treeletNode{axis: leafAxis, pts: pts})
			return me
		}
		// Stratified LOD sampling over the Morton-sorted points: one
		// sample per stride keeps the subset spatially representative.
		lod, rest := stratifiedSample(pts, cfg.LODPerNode)
		// Median split along the longest axis of the point bounds; a full
		// sort is unnecessary — quickselect the median coordinate and
		// three-way partition around it (O(n) per level).
		bounds := geom.EmptyBox()
		for _, p := range rest {
			bounds = bounds.Extend(set.Position(p))
		}
		axis := bounds.LongestAxis()
		mid, pos, ok := medianPartition(set, rest, axis)
		if !ok {
			// Degenerate distribution (all points coincident on the
			// axis): fall back to a leaf holding everything.
			t.nodes = append(t.nodes, treeletNode{axis: leafAxis, pts: pts})
			return me
		}
		t.nodes = append(t.nodes, treeletNode{axis: axis, pos: pos, pts: lod})
		l := build(rest[:mid], depth+1)
		r := build(rest[mid:], depth+1)
		t.nodes[me].left = l
		t.nodes[me].right = r
		return me
	}
	if len(idx) > 0 {
		build(idx, 0)
		t.reorderBFS()
	}
	return t
}

// medianPartition rearranges rest so that rest[:mid] have coordinates
// strictly below pos and rest[mid:] have coordinates >= pos, with both
// sides nonempty, choosing pos at (or just above) the median coordinate
// along axis. It reports ok=false when every coordinate is identical (no
// split exists). The element order within each side follows the input
// order, keeping builds deterministic.
func medianPartition(set *particles.Set, rest []int, axis geom.Axis) (mid int, pos float64, ok bool) {
	n := len(rest)
	coords := make([]float64, n)
	for i, p := range rest {
		coords[i] = set.Position(p).Component(axis)
	}
	med := quickselect(append([]float64(nil), coords...), n/2)
	// Three-way partition by the median value, preserving input order.
	less := make([]int, 0, n/2+1)
	equal := make([]int, 0, 8)
	greater := make([]int, 0, n/2+1)
	minGreater := math.Inf(1)
	for i, p := range rest {
		switch c := coords[i]; {
		case c < med:
			less = append(less, p)
		case c > med:
			greater = append(greater, p)
			if c < minGreater {
				minGreater = c
			}
		default:
			equal = append(equal, p)
		}
	}
	switch {
	case len(less) > 0:
		// Split below the median value: less | equal+greater.
		pos, mid = med, len(less)
		copy(rest, less)
		copy(rest[mid:], equal)
		copy(rest[mid+len(equal):], greater)
		return mid, pos, true
	case len(greater) > 0:
		// Median is the minimum: split at the next distinct value.
		pos, mid = minGreater, len(equal)
		copy(rest, equal)
		copy(rest[mid:], greater)
		return mid, pos, true
	default:
		return 0, 0, false
	}
}

// quickselect returns the k-th smallest element of a (0-based), mutating a.
// The median-of-three pivot keeps it deterministic and fast on the sorted
// and constant runs common in particle coordinates.
func quickselect(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		// Median-of-three pivot.
		m := (lo + hi) / 2
		if a[m] < a[lo] {
			a[m], a[lo] = a[lo], a[m]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[m] {
			a[hi], a[m] = a[m], a[hi]
		}
		pivot := a[m]
		// Three-way partition (Dutch national flag) handles duplicate-
		// heavy inputs without quadratic blowup.
		i, j, p := lo, lo, hi
		for j <= p {
			switch {
			case a[j] < pivot:
				a[i], a[j] = a[j], a[i]
				i++
				j++
			case a[j] > pivot:
				a[j], a[p] = a[p], a[j]
				p--
			default:
				j++
			}
		}
		switch {
		case k < i:
			hi = i - 1
		case k > p:
			lo = p + 1
		default:
			return pivot
		}
	}
	return a[lo]
}

// stratifiedSample picks k evenly spaced elements (the stratum midpoints)
// from pts, returning the samples and the remainder.
func stratifiedSample(pts []int, k int) (lod, rest []int) {
	n := len(pts)
	if k >= n {
		return pts, nil
	}
	lod = make([]int, 0, k)
	rest = make([]int, 0, n-k)
	stride := float64(n) / float64(k)
	next := 0
	for s := 0; s < k; s++ {
		pick := int(stride*float64(s) + stride/2)
		if pick >= n {
			pick = n - 1
		}
		for i := next; i < pick; i++ {
			rest = append(rest, pts[i])
		}
		lod = append(lod, pts[pick])
		next = pick + 1
	}
	rest = append(rest, pts[next:]...)
	return lod, rest
}

// reorderBFS relays the treelet's nodes out in breadth-first order and
// assigns each node's particle range in that order, so a depth-limited
// progressive read touches a prefix of the treelet's particle data.
func (t *treelet) reorderBFS() {
	if len(t.nodes) == 0 {
		return
	}
	bfs := make([]int32, 0, len(t.nodes))
	bfs = append(bfs, 0)
	for qi := 0; qi < len(bfs); qi++ {
		n := &t.nodes[bfs[qi]]
		if n.axis != leafAxis {
			bfs = append(bfs, n.left, n.right)
		}
	}
	remap := make([]int32, len(t.nodes))
	for newIdx, oldIdx := range bfs {
		remap[oldIdx] = int32(newIdx)
	}
	newNodes := make([]treeletNode, len(t.nodes))
	var order []int
	for newIdx, oldIdx := range bfs {
		n := t.nodes[oldIdx]
		if n.axis != leafAxis {
			n.left, n.right = remap[n.left], remap[n.right]
		}
		n.start = uint32(len(order))
		n.count = uint32(len(n.pts))
		order = append(order, n.pts...)
		newNodes[newIdx] = n
	}
	t.nodes = newNodes
	t.order = order
}

// computeTreeletBitmaps fills per-node per-attribute bitmaps bottom-up:
// leaves index their particles; inner nodes merge their children's bitmaps
// with those of their own LOD particles (§III-C2).
func computeTreeletBitmaps(set *particles.Set, t *treelet, ranges []bitmap.Range) {
	nA := set.Schema.NumAttrs()
	// BFS order guarantees children follow parents; iterate in reverse.
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := &t.nodes[i]
		n.bitmaps = make([]bitmap.Bitmap, nA)
		for a := 0; a < nA; a++ {
			var b bitmap.Bitmap
			for _, p := range n.pts {
				b |= bitmap.OfValue(set.Attrs[a][p], ranges[a])
			}
			if n.axis != leafAxis {
				b |= t.nodes[n.left].bitmaps[a] | t.nodes[n.right].bitmaps[a]
			}
			n.bitmaps[a] = b
		}
	}
}

// flattenShallow converts the radix tree over subprefix codes into the
// stored shallow k-d tree: each inner node's split plane is derived from
// the first bit on which its two subtrees differ, and node bitmaps are the
// merge of the covered treelets' root bitmaps.
func flattenShallow(rt *radix.Tree, treelets []*treelet, domain geom.Box, subprefixBits, nAttrs int) []builtShallowNode {
	if len(rt.Nodes) == 0 {
		return nil
	}
	nodes := make([]builtShallowNode, len(rt.Nodes))
	var rec func(ref int32) []bitmap.Bitmap
	rec = func(ref int32) []bitmap.Bitmap {
		if li, ok := radix.IsLeafRef(ref); ok {
			t := treelets[li]
			if len(t.nodes) == 0 {
				return make([]bitmap.Bitmap, nAttrs)
			}
			return t.nodes[0].bitmaps
		}
		prefix, plen := rt.SharedPrefix(int(ref), subprefixBits)
		cell := morton.CellBounds(prefix, plen, domain)
		axis := axisOfPrefixBit(plen)
		pos := cell.Center().Component(axis)
		n := &nodes[ref]
		n.axis, n.pos = axis, pos
		n.left, n.right = rt.Nodes[ref].Left, rt.Nodes[ref].Right
		lb := rec(n.left)
		rb := rec(n.right)
		n.bitmaps = make([]bitmap.Bitmap, nAttrs)
		for a := range n.bitmaps {
			n.bitmaps[a] = lb[a] | rb[a]
		}
		return n.bitmaps
	}
	rec(0)
	return nodes
}

// axisOfPrefixBit maps a 0-based bit index counted from the top of a Morton
// code to its split axis. The encoding interleaves x at bit 3i, y at 3i+1,
// z at 3i+2, so the topmost bit (index 0 from the top) belongs to z.
func axisOfPrefixBit(i int) geom.Axis {
	switch i % 3 {
	case 0:
		return geom.Z
	case 1:
		return geom.Y
	default:
		return geom.X
	}
}
