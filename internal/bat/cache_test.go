package bat

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"libbat/internal/geom"
)

// fakeTreelet builds a parsedTreelet whose memBytes is exactly 4*n.
func fakeTreelet(n int) *parsedTreelet {
	return &parsedTreelet{x: make([]float32, n)}
}

// TestCacheSingleflight: many goroutines racing for the same cold treelet
// must run the loader exactly once and all observe the same pointer.
func TestCacheSingleflight(t *testing.T) {
	c := newTreeletCache()
	var loads atomic.Int64
	gate := make(chan struct{})
	want := fakeTreelet(8)

	const workers = 16
	var wg sync.WaitGroup
	got := make([]*parsedTreelet, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tl, err := c.get(context.Background(), 42, func(context.Context) (*parsedTreelet, error) {
				loads.Add(1)
				<-gate // hold every racer in the waiting path
				return want, nil
			})
			if err != nil {
				t.Error(err)
			}
			got[i] = tl
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times, want 1", n)
	}
	for i, tl := range got {
		if tl != want {
			t.Fatalf("goroutine %d got a different treelet pointer", i)
		}
	}
	st := c.stats()
	if st.Misses != 1 || st.Hits != workers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits", st, workers-1)
	}
}

// TestCacheErrorNotCached: a failed load is reported to every waiter but
// retried on the next lookup instead of poisoning the slot.
func TestCacheErrorNotCached(t *testing.T) {
	c := newTreeletCache()
	boom := errors.New("disk on fire")
	if _, err := c.get(context.Background(), 7, func(context.Context) (*parsedTreelet, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	want := fakeTreelet(4)
	tl, err := c.get(context.Background(), 7, func(context.Context) (*parsedTreelet, error) { return want, nil })
	if err != nil || tl != want {
		t.Fatalf("retry after error: got (%v, %v), want (%v, nil)", tl, err, want)
	}
	st := c.stats()
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (error loads count as misses)", st.Misses)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

// TestCacheEviction: with a byte budget set, the cache evicts
// least-recently-used treelets, stays within bounds, and reloads evicted
// treelets transparently.
func TestCacheEviction(t *testing.T) {
	c := newTreeletCache()
	// One shard holds all multiples of cacheShards... instead pick treelet
	// indices that land in one shard so the per-shard budget is exercised
	// deterministically.
	shard := c.shardOf(0)
	var sameShard []int
	for ti := 0; len(sameShard) < 6; ti++ {
		if c.shardOf(ti) == shard {
			sameShard = append(sameShard, ti)
		}
	}
	// Each fake treelet is 400 bytes; budget two per shard.
	c.limit.Store(800 * cacheShards)
	for _, ti := range sameShard {
		if _, err := c.get(context.Background(), ti, func(context.Context) (*parsedTreelet, error) { return fakeTreelet(100), nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions with %d same-shard inserts over a 2-treelet budget; stats %+v", len(sameShard), st)
	}
	if st.Bytes > 800 {
		t.Fatalf("resident bytes %d exceed the 800-byte shard budget", st.Bytes)
	}
	// The oldest same-shard treelet must have been evicted; re-getting it
	// is a miss that reloads.
	misses := st.Misses
	var reloaded atomic.Bool
	if _, err := c.get(context.Background(), sameShard[0], func(context.Context) (*parsedTreelet, error) {
		reloaded.Store(true)
		return fakeTreelet(100), nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reloaded.Load() {
		t.Fatal("evicted treelet was served from cache")
	}
	if got := c.stats().Misses; got != misses+1 {
		t.Fatalf("misses = %d, want %d", got, misses+1)
	}
}

// TestCacheLRUOrder: touching a resident treelet protects it from the next
// eviction round.
func TestCacheLRUOrder(t *testing.T) {
	c := newTreeletCache()
	shard := c.shardOf(0)
	var tis []int
	for ti := 0; len(tis) < 3; ti++ {
		if c.shardOf(ti) == shard {
			tis = append(tis, ti)
		}
	}
	c.limit.Store(800 * cacheShards) // two 400-byte treelets per shard
	load := func(context.Context) (*parsedTreelet, error) { return fakeTreelet(100), nil }
	mustGet := func(ti int) {
		t.Helper()
		if _, err := c.get(context.Background(), ti, load); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(tis[0])
	mustGet(tis[1])
	mustGet(tis[0]) // refresh 0: now 1 is least recently used
	mustGet(tis[2]) // evicts 1
	misses := c.stats().Misses
	mustGet(tis[0]) // still resident: no new miss
	if got := c.stats().Misses; got != misses {
		t.Fatalf("recently-used treelet was evicted (misses %d -> %d)", misses, got)
	}
	mustGet(tis[1]) // evicted: one new miss
	if got := c.stats().Misses; got != misses+1 {
		t.Fatalf("LRU victim not evicted (misses %d -> %d)", misses, got)
	}
}

// TestFileCacheEndToEnd: SetCacheLimit on a real file keeps queries
// correct while evicting, and CacheStats reflects warm rescans.
func TestFileCacheEndToEnd(t *testing.T) {
	s, domain := randomSet(8000, 77)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	defer f.Close()

	count := func() int64 {
		var n int64
		if err := f.Query(Query{}, func(geom.Vec3, []float64) error {
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	cold := count()
	st := f.CacheStats()
	if st.Misses == 0 || st.Hits != 0 {
		t.Fatalf("after cold scan: %+v", st)
	}
	if warm := count(); warm != cold {
		t.Fatalf("warm scan visited %d, cold %d", warm, cold)
	}
	st = f.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("warm scan hit nothing: %+v", st)
	}
	if hr := st.HitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("hit rate %v out of (0,1)", hr)
	}

	// Now squeeze the budget to nothing and rescan: evictions must occur
	// (pigeonhole: more treelets than shards, so some shard holds two) and
	// results must stay correct.
	if len(f.leaves) <= cacheShards {
		t.Skipf("only %d treelets; need > %d to force same-shard eviction", len(f.leaves), cacheShards)
	}
	f.SetCacheLimit(1)
	if n := count(); n != cold {
		t.Fatalf("budget-constrained scan visited %d, want %d", n, cold)
	}
	st = f.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 1-byte budget: %+v", st)
	}
}
