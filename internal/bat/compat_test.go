package bat

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"libbat/internal/geom"
	"libbat/internal/particles"
)

// goldenSet is the fixed dataset the checked-in golden files were built
// from. It must never change: the goldens pin the on-disk v1/v2 layouts,
// and this set is the decode oracle they are compared against.
func goldenSet() (*particles.Set, geom.Box) {
	s := particles.NewSet(particles.NewSchema("mass", "id"), 257)
	// A deterministic low-discrepancy-ish scatter plus a coincident clump,
	// no RNG involved (RNG streams are not pinned across Go releases).
	for i := 0; i < 250; i++ {
		x := float64(i%10) / 10
		y := float64((i/10)%10) / 10
		z := float64(i%7) / 7
		s.Append(geom.V3(x, y, z), []float64{x*10 + y, float64(i)})
	}
	for i := 250; i < 257; i++ {
		s.Append(geom.V3(0.5, 0.5, 0.5), []float64{3.25, float64(i)})
	}
	return s, geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
}

func goldenConfig() BuildConfig {
	cfg := DefaultBuildConfig()
	cfg.MaxLeafSize = 32
	cfg.LODPerNode = 4
	return cfg
}

// goldenRow is one particle as a comparable value (positions as the f32
// bits the layout stores).
type goldenRow struct {
	x, y, z  float32
	mass, id float64
}

func goldenRows(s *particles.Set) []goldenRow {
	rows := make([]goldenRow, s.Len())
	for i := range rows {
		p := s.Position(i)
		rows[i] = goldenRow{float32(p.X), float32(p.Y), float32(p.Z), s.Attrs[0][i], s.Attrs[1][i]}
	}
	sortRows(rows)
	return rows
}

func sortRows(rows []goldenRow) {
	sort.Slice(rows, func(a, b int) bool { return rows[a].id < rows[b].id })
}

func readRows(t *testing.T, f *File) []goldenRow {
	t.Helper()
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]goldenRow, got.Len())
	for i := range rows {
		p := got.Position(i)
		rows[i] = goldenRow{float32(p.X), float32(p.Y), float32(p.Z), got.Attrs[0][i], got.Attrs[1][i]}
	}
	sortRows(rows)
	return rows
}

// TestGoldenRegenerate rewrites the checked-in golden files from the
// current builder. Run manually with BAT_REGEN_GOLDEN=1 when the format
// legitimately changes (which for v1/v2 should be never).
func TestGoldenRegenerate(t *testing.T) {
	if os.Getenv("BAT_REGEN_GOLDEN") == "" {
		t.Skip("set BAT_REGEN_GOLDEN=1 to rewrite testdata golden files")
	}
	s, domain := goldenSet()
	b, err := Build(s, domain, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("testdata", "golden_v2.bat"), b.Buf, 0o644); err != nil {
		t.Fatal(err)
	}
	// The v1 golden is the v2 image with the footer removed and the
	// version field patched, exactly the layout version-1 writers
	// produced.
	if err := os.WriteFile(filepath.Join("testdata", "golden_v1.bat"), stripToV1(t, b.Buf), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenBackwardCompat opens the checked-in version-1 and version-2
// files and requires them to decode to the same particle multiset as the
// day they were written — the backward-compatibility contract the v3
// format changes must not disturb.
func TestGoldenBackwardCompat(t *testing.T) {
	s, _ := goldenSet()
	want := goldenRows(s)
	for _, tc := range []struct {
		file    string
		version int
	}{
		{"golden_v1.bat", 1},
		{"golden_v2.bat", 2},
	} {
		t.Run(tc.file, func(t *testing.T) {
			buf, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatalf("%v (regenerate with BAT_REGEN_GOLDEN=1 go test -run TestGoldenRegenerate)", err)
			}
			f, err := FromBuffer(buf)
			if err != nil {
				t.Fatal(err)
			}
			if f.Version != tc.version {
				t.Fatalf("Version = %d, want %d", f.Version, tc.version)
			}
			if err := f.Verify(); err != nil {
				t.Fatal(err)
			}
			got := readRows(t, f)
			if len(got) != len(want) {
				t.Fatalf("decoded %d particles, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("row %d: %+v != %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestGoldenV2ByteIdentity rebuilds the golden dataset with the current
// builder and requires the image to be byte-identical to the checked-in v2
// file: uncompressed builds must keep producing exactly the v2 bytes.
func TestGoldenV2ByteIdentity(t *testing.T) {
	buf, err := os.ReadFile(filepath.Join("testdata", "golden_v2.bat"))
	if err != nil {
		t.Fatalf("%v (regenerate with BAT_REGEN_GOLDEN=1 go test -run TestGoldenRegenerate)", err)
	}
	s, domain := goldenSet()
	b, err := Build(s, domain, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Buf) != len(buf) {
		t.Fatalf("rebuilt image is %d bytes, golden %d", len(b.Buf), len(buf))
	}
	for i := range buf {
		if b.Buf[i] != buf[i] {
			t.Fatalf("rebuilt image differs from golden at byte %d", i)
		}
	}
}
