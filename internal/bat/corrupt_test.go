package bat

import (
	"encoding/binary"
	"errors"
	"libbat/internal/geom"
	"testing"
)

// builtSample returns a deterministic multi-treelet file image.
func builtSample(t *testing.T) []byte {
	t.Helper()
	s, domain := randomSet(600, 2)
	b, err := Build(s, domain, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	return b.Buf
}

// collect runs a full unfiltered query and returns the visited particles
// as a flat float slice (positions then attributes, traversal order).
func collect(t *testing.T, f *File) []float64 {
	t.Helper()
	var out []float64
	err := f.Query(Query{}, func(p geom.Vec3, attrs []float64) error {
		out = append(out, p.X, p.Y, p.Z)
		out = append(out, attrs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDecodeTruncatedNeverPanics: every proper prefix of a v2 file must
// fail to open (the footer is gone or mangled), never panic.
func TestDecodeTruncatedNeverPanics(t *testing.T) {
	buf := builtSample(t)
	for l := 0; l < len(buf); l += 7 {
		if _, err := FromBuffer(buf[:l]); err == nil {
			t.Fatalf("truncation to %d of %d bytes opened", l, len(buf))
		}
	}
	if _, err := FromBuffer(buf[:len(buf)-1]); err == nil {
		t.Error("file short by one byte opened")
	}
}

// TestBitFlipNoSilentCorruption flips single bits across the file and
// requires each one to be caught at open, by Verify, or at query time —
// or, if it landed in inter-section padding, to leave the query results
// bit-identical to the original. A silently different result is the one
// outcome the checksums exist to prevent.
func TestBitFlipNoSilentCorruption(t *testing.T) {
	buf := builtSample(t)
	orig, err := FromBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := collect(t, orig)

	detected := 0
	offsets := []int{0, 4, 8, len(buf) / 2, len(buf) - 1, len(buf) - 6}
	for off := 13; off < len(buf); off += 97 {
		offsets = append(offsets, off)
	}
	for _, off := range offsets {
		mut := append([]byte(nil), buf...)
		mut[off] ^= 1 << (off % 8)
		f, err := FromBuffer(mut)
		if err != nil {
			detected++
			continue
		}
		if err := f.Verify(); err != nil {
			detected++
			continue
		}
		var got []float64
		qerr := f.Query(Query{}, func(p geom.Vec3, attrs []float64) error {
			got = append(got, p.X, p.Y, p.Z)
			got = append(got, attrs...)
			return nil
		})
		if qerr != nil {
			detected++
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("flip at %d silently changed result count: %d vs %d", off, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("flip at %d silently changed value %d", off, i)
			}
		}
	}
	if detected == 0 {
		t.Error("no flip was detected at all")
	}
}

// TestHeaderFlipIsChecksumError: damage inside the checksummed header must
// surface as ErrChecksum at open time.
func TestHeaderFlipIsChecksumError(t *testing.T) {
	buf := builtSample(t)
	mut := append([]byte(nil), buf...)
	mut[9] ^= 0x40 // inside the flags field, past magic+version
	if _, err := FromBuffer(mut); !errors.Is(err, ErrChecksum) {
		t.Errorf("header flip: want ErrChecksum, got %v", err)
	}
}

// stripToV1 converts a v2 image into its version-1 equivalent: footer
// removed, version field patched.
func stripToV1(t *testing.T, buf []byte) []byte {
	t.Helper()
	footerLen := binary.LittleEndian.Uint32(buf[len(buf)-8:])
	if int(footerLen) >= len(buf) {
		t.Fatalf("implausible footer length %d", footerLen)
	}
	v1 := append([]byte(nil), buf[:len(buf)-int(footerLen)]...)
	binary.LittleEndian.PutUint32(v1[4:], 1)
	return v1
}

// TestV1FileStillReads: pre-checksum files must parse and query as
// before; they report as un-checksummed and Verify is a no-op.
func TestV1FileStillReads(t *testing.T) {
	buf := builtSample(t)
	v2, err := FromBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := collect(t, v2)

	v1buf := stripToV1(t, buf)
	v1, err := FromBuffer(v1buf)
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	if v1.Version != 1 || v1.Checksummed() {
		t.Errorf("Version=%d Checksummed=%v, want 1/false", v1.Version, v1.Checksummed())
	}
	if err := v1.Verify(); err != nil {
		t.Errorf("Verify on v1: %v", err)
	}
	got := collect(t, v1)
	if len(got) != len(want) {
		t.Fatalf("v1 query returned %d values, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("v1 query differs at value %d", i)
		}
	}
	if !v2.Checksummed() || v2.Version != 2 {
		t.Errorf("v2 file reports Version=%d Checksummed=%v", v2.Version, v2.Checksummed())
	}
}

func TestZeroAndTinyInputs(t *testing.T) {
	for _, data := range [][]byte{nil, {}, []byte("B"), []byte("BAT1"), []byte("BAT1\x02\x00\x00\x00")} {
		if _, err := FromBuffer(data); err == nil {
			t.Errorf("%d-byte input opened", len(data))
		}
	}
}

var errStopFuzz = errors.New("fuzz visit cap")

// FuzzDecode feeds arbitrary bytes to the reader: errors are fine,
// panics are not. Inputs that open are also verified and queried.
func FuzzDecode(f *testing.F) {
	s, domain := randomSet(60, 1)
	if b, err := Build(s, domain, DefaultBuildConfig()); err == nil {
		f.Add(b.Buf)
		if len(b.Buf) > 16 {
			f.Add(b.Buf[:len(b.Buf)/2])
			footerLen := binary.LittleEndian.Uint32(b.Buf[len(b.Buf)-8:])
			if int(footerLen) < len(b.Buf) {
				v1 := append([]byte(nil), b.Buf[:len(b.Buf)-int(footerLen)]...)
				binary.LittleEndian.PutUint32(v1[4:], 1)
				f.Add(v1) // reaches the unchecksummed parse path
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte("BAT1\x01\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := FromBuffer(data)
		if err != nil {
			return
		}
		file.Verify()
		// Cap the visit count: garbage that passes the structural checks
		// may still describe a large (bounded) point soup, and unbounded
		// iteration would drown the fuzzer without exercising new paths.
		visits := 0
		file.Query(Query{}, func(p geom.Vec3, attrs []float64) error {
			if visits++; visits > 10000 {
				return errStopFuzz
			}
			return nil
		})
	})
}
