package bat

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"

	"libbat/internal/checksum"
	"libbat/internal/geom"
)

// builtSample returns a deterministic multi-treelet file image.
func builtSample(t *testing.T) []byte {
	t.Helper()
	s, domain := randomSet(600, 2)
	b, err := Build(s, domain, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	return b.Buf
}

// collect runs a full unfiltered query and returns the visited particles
// as a flat float slice (positions then attributes, traversal order).
func collect(t *testing.T, f *File) []float64 {
	t.Helper()
	var out []float64
	err := f.Query(Query{}, func(p geom.Vec3, attrs []float64) error {
		out = append(out, p.X, p.Y, p.Z)
		out = append(out, attrs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDecodeTruncatedNeverPanics: every proper prefix of a v2 file must
// fail to open (the footer is gone or mangled), never panic.
func TestDecodeTruncatedNeverPanics(t *testing.T) {
	buf := builtSample(t)
	for l := 0; l < len(buf); l += 7 {
		if _, err := FromBuffer(buf[:l]); err == nil {
			t.Fatalf("truncation to %d of %d bytes opened", l, len(buf))
		}
	}
	if _, err := FromBuffer(buf[:len(buf)-1]); err == nil {
		t.Error("file short by one byte opened")
	}
}

// TestBitFlipNoSilentCorruption flips single bits across the file and
// requires each one to be caught at open, by Verify, or at query time —
// or, if it landed in inter-section padding, to leave the query results
// bit-identical to the original. A silently different result is the one
// outcome the checksums exist to prevent.
func TestBitFlipNoSilentCorruption(t *testing.T) {
	bitFlipMatrix(t, builtSample(t))
}

// TestBitFlipNoSilentCorruptionV3 runs the same matrix over a compressed
// (version 3) image: the codec sections are checksummed like any other
// treelet bytes, so flips there must be detected too.
func TestBitFlipNoSilentCorruptionV3(t *testing.T) {
	bitFlipMatrix(t, compressedSample(t))
}

func bitFlipMatrix(t *testing.T, buf []byte) {
	t.Helper()
	orig, err := FromBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := collect(t, orig)

	detected := 0
	offsets := []int{0, 4, 8, len(buf) / 2, len(buf) - 1, len(buf) - 6}
	for off := 13; off < len(buf); off += 97 {
		offsets = append(offsets, off)
	}
	for _, off := range offsets {
		mut := append([]byte(nil), buf...)
		mut[off] ^= 1 << (off % 8)
		f, err := FromBuffer(mut)
		if err != nil {
			detected++
			continue
		}
		if err := f.Verify(); err != nil {
			detected++
			continue
		}
		var got []float64
		qerr := f.Query(Query{}, func(p geom.Vec3, attrs []float64) error {
			got = append(got, p.X, p.Y, p.Z)
			got = append(got, attrs...)
			return nil
		})
		if qerr != nil {
			detected++
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("flip at %d silently changed result count: %d vs %d", off, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("flip at %d silently changed value %d", off, i)
			}
		}
	}
	if detected == 0 {
		t.Error("no flip was detected at all")
	}
}

// TestHeaderFlipIsChecksumError: damage inside the checksummed header must
// surface as ErrChecksum at open time.
func TestHeaderFlipIsChecksumError(t *testing.T) {
	buf := builtSample(t)
	mut := append([]byte(nil), buf...)
	mut[9] ^= 0x40 // inside the flags field, past magic+version
	if _, err := FromBuffer(mut); !errors.Is(err, ErrChecksum) {
		t.Errorf("header flip: want ErrChecksum, got %v", err)
	}
}

// stripToV1 converts a v2 image into its version-1 equivalent: footer
// removed, version field patched.
func stripToV1(t *testing.T, buf []byte) []byte {
	t.Helper()
	footerLen := binary.LittleEndian.Uint32(buf[len(buf)-8:])
	if int(footerLen) >= len(buf) {
		t.Fatalf("implausible footer length %d", footerLen)
	}
	v1 := append([]byte(nil), buf[:len(buf)-int(footerLen)]...)
	binary.LittleEndian.PutUint32(v1[4:], 1)
	return v1
}

// TestV1FileStillReads: pre-checksum files must parse and query as
// before; they report as un-checksummed and Verify is a no-op.
func TestV1FileStillReads(t *testing.T) {
	buf := builtSample(t)
	v2, err := FromBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := collect(t, v2)

	v1buf := stripToV1(t, buf)
	v1, err := FromBuffer(v1buf)
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	if v1.Version != 1 || v1.Checksummed() {
		t.Errorf("Version=%d Checksummed=%v, want 1/false", v1.Version, v1.Checksummed())
	}
	if err := v1.Verify(); err != nil {
		t.Errorf("Verify on v1: %v", err)
	}
	got := collect(t, v1)
	if len(got) != len(want) {
		t.Fatalf("v1 query returned %d values, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("v1 query differs at value %d", i)
		}
	}
	if !v2.Checksummed() || v2.Version != 2 {
		t.Errorf("v2 file reports Version=%d Checksummed=%v", v2.Version, v2.Checksummed())
	}
}

// compressedSample returns a deterministic multi-treelet version-3 image
// with one lossy and one lossless attribute.
func compressedSample(t *testing.T) []byte {
	t.Helper()
	s, domain := cosmoSet(600, 2)
	b, err := Build(s, domain, compressedConfig([]float64{1e-3, 1e-1, 1e-3, 0}))
	if err != nil {
		t.Fatal(err)
	}
	return b.Buf
}

// mutateTreelet applies a targeted mutation to treelet ti's bytes and then
// re-fixes the treelet CRC and the footer CRC, so the corrupted bytes reach
// the codec-layer validation instead of being caught by the checksums.
func mutateTreelet(t *testing.T, buf []byte, ti int, mutate func(tre []byte)) []byte {
	t.Helper()
	orig, err := FromBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	ref := orig.leaves[ti]
	mut := append([]byte(nil), buf...)
	tre := mut[ref.offset : ref.offset+uint64(ref.byteLen)]
	mutate(tre)
	footerLen := binary.LittleEndian.Uint32(mut[len(mut)-8:])
	footerStart := len(mut) - int(footerLen)
	binary.LittleEndian.PutUint32(mut[footerStart+8+4*ti:], checksum.CRC32C(tre))
	binary.LittleEndian.PutUint32(mut[len(mut)-12:], checksum.CRC32C(mut[footerStart:len(mut)-12]))
	return mut
}

// mutateFooter applies a targeted mutation to the footer's v3 extension and
// re-fixes the footer CRC. The callback receives the footer bytes starting
// at headerCRC.
func mutateFooter(t *testing.T, buf []byte, mutate func(foot []byte)) []byte {
	t.Helper()
	mut := append([]byte(nil), buf...)
	footerLen := binary.LittleEndian.Uint32(mut[len(mut)-8:])
	footerStart := len(mut) - int(footerLen)
	mutate(mut[footerStart:])
	binary.LittleEndian.PutUint32(mut[len(mut)-12:], checksum.CRC32C(mut[footerStart:len(mut)-12]))
	return mut
}

// firstSectionOffset locates treelet ti's first attribute section within
// its byte range (after the node records and position columns).
func firstSectionOffset(t *testing.T, buf []byte, ti int) (treeletOff uint64, secOff int) {
	t.Helper()
	f, err := FromBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	ref := f.leaves[ti]
	nA := f.Schema.NumAttrs()
	posBytes := 12
	if f.Quantized {
		posBytes = 6
	}
	return ref.offset, 8 + int(ref.numNodes)*(treeletNodeBytes+2*nA) + int(ref.numPoints)*posBytes
}

// expectLoadError asserts that treelet 0 of the image fails to load with an
// error containing want — a clean error, never a panic or silent success.
func expectLoadError(t *testing.T, buf []byte, want string) {
	t.Helper()
	f, err := FromBuffer(buf)
	if err != nil {
		t.Fatalf("open failed before the codec layer was reached: %v", err)
	}
	if _, err := f.loadTreelet(context.Background(), 0); err == nil {
		t.Fatalf("corrupted section loaded cleanly, want error containing %q", want)
	} else if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

// TestV3BadCodecID: an unknown codec id in a section frame must produce a
// clean error at load time.
func TestV3BadCodecID(t *testing.T) {
	buf := compressedSample(t)
	_, secOff := firstSectionOffset(t, buf, 0)
	mut := mutateTreelet(t, buf, 0, func(tre []byte) {
		tre[secOff] = 7
	})
	expectLoadError(t, mut, "unknown attribute codec")
}

// TestV3TruncatedCodecStream: a section declaring more payload bytes than
// the treelet holds must error cleanly, as must one declaring fewer than
// its codec needs.
func TestV3TruncatedCodecStream(t *testing.T) {
	buf := compressedSample(t)
	_, secOff := firstSectionOffset(t, buf, 0)
	overrun := mutateTreelet(t, buf, 0, func(tre []byte) {
		binary.LittleEndian.PutUint32(tre[secOff+1:], uint32(len(tre)))
	})
	expectLoadError(t, overrun, "truncated codec stream")

	undersized := mutateTreelet(t, buf, 0, func(tre []byte) {
		binary.LittleEndian.PutUint32(tre[secOff+1:], 3)
	})
	f, err := FromBuffer(undersized)
	if err != nil {
		t.Fatalf("open failed before the codec layer: %v", err)
	}
	if _, err := f.loadTreelet(context.Background(), 0); err == nil {
		t.Fatal("undersized section loaded cleanly")
	}
}

// TestV3ErrorBoundMismatch: a quant section whose stored grid step exceeds
// the footer's declared bound is corrupt and must be rejected, as must a
// quant section inside a file whose footer claims the attribute lossless.
func TestV3ErrorBoundMismatch(t *testing.T) {
	buf := compressedSample(t)
	_, secOff := firstSectionOffset(t, buf, 0)
	f, err := FromBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	nT := f.NumTreelets()
	secs, err := f.TreeletSections(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if secs[0].Codec != codecQuant {
		t.Fatalf("attribute 0 section is %s, want quant; pick different sample data", CodecName(secs[0].Codec))
	}

	// Inflate the stored fine step 10x beyond the declared bound. The
	// fine step sits 8 bytes into the quant header, after the codec byte
	// and encLen frame.
	stepOff := secOff + 5 + 8
	inflated := mutateTreelet(t, buf, 0, func(tre []byte) {
		step := math.Float64frombits(binary.LittleEndian.Uint64(tre[stepOff:]))
		binary.LittleEndian.PutUint64(tre[stepOff:], math.Float64bits(step*10))
	})
	expectLoadError(t, inflated, "error-bound mismatch")

	// Rewrite the footer to declare attribute 0 lossless while its
	// sections are still quant-coded.
	declaredLossless := mutateFooter(t, buf, func(foot []byte) {
		p := 8 + 4*nT + 4 // numAttrs, then attr 0's codec byte
		foot[p] = codecDelta
		binary.LittleEndian.PutUint64(foot[p+1:], math.Float64bits(0))
	})
	expectLoadError(t, declaredLossless, "error-bound mismatch")
}

// TestV3FooterValidation: out-of-range declarations in the footer's v3
// extension are rejected at open even with a valid CRC.
func TestV3FooterValidation(t *testing.T) {
	buf := compressedSample(t)
	f, err := FromBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	nT := f.NumTreelets()
	nA := f.Schema.NumAttrs()
	cases := []struct {
		name   string
		mutate func(foot []byte)
	}{
		{"bad codec id", func(foot []byte) { foot[8+4*nT+4] = 9 }},
		{"negative bound", func(foot []byte) {
			binary.LittleEndian.PutUint64(foot[8+4*nT+4+1:], math.Float64bits(-1))
		}},
		{"NaN bound", func(foot []byte) {
			binary.LittleEndian.PutUint64(foot[8+4*nT+4+1:], math.Float64bits(math.NaN()))
		}},
		{"LOD scale below 1", func(foot []byte) {
			binary.LittleEndian.PutUint64(foot[8+4*nT+4+9*nA:], math.Float64bits(0.25))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromBuffer(mutateFooter(t, buf, tc.mutate)); err == nil {
				t.Fatal("invalid footer declaration accepted")
			}
		})
	}
}

// TestV3TruncatedNeverPanics is TestDecodeTruncatedNeverPanics over a
// compressed image.
func TestV3TruncatedNeverPanics(t *testing.T) {
	buf := compressedSample(t)
	for l := 0; l < len(buf); l += 13 {
		if _, err := FromBuffer(buf[:l]); err == nil {
			t.Fatalf("truncation to %d of %d bytes opened", l, len(buf))
		}
	}
}

func TestZeroAndTinyInputs(t *testing.T) {
	for _, data := range [][]byte{nil, {}, []byte("B"), []byte("BAT1"), []byte("BAT1\x02\x00\x00\x00")} {
		if _, err := FromBuffer(data); err == nil {
			t.Errorf("%d-byte input opened", len(data))
		}
	}
}

var errStopFuzz = errors.New("fuzz visit cap")

// FuzzDecode feeds arbitrary bytes to the reader: errors are fine,
// panics are not. Inputs that open are also verified and queried.
func FuzzDecode(f *testing.F) {
	s, domain := randomSet(60, 1)
	if b, err := Build(s, domain, DefaultBuildConfig()); err == nil {
		f.Add(b.Buf)
		if len(b.Buf) > 16 {
			f.Add(b.Buf[:len(b.Buf)/2])
			footerLen := binary.LittleEndian.Uint32(b.Buf[len(b.Buf)-8:])
			if int(footerLen) < len(b.Buf) {
				v1 := append([]byte(nil), b.Buf[:len(b.Buf)-int(footerLen)]...)
				binary.LittleEndian.PutUint32(v1[4:], 1)
				f.Add(v1) // reaches the unchecksummed parse path
			}
		}
	}
	// A compressed (version 3) seed so mutations reach the codec layer.
	cs, cdomain := cosmoSet(60, 3)
	ccfg := DefaultBuildConfig()
	ccfg.Compress = true
	ccfg.AttrErrorBounds = []float64{1e-3, 1e-1, 1e-3, 0}
	if b, err := Build(cs, cdomain, ccfg); err == nil {
		f.Add(b.Buf)
	}
	f.Add([]byte{})
	f.Add([]byte("BAT1\x01\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := FromBuffer(data)
		if err != nil {
			return
		}
		file.Verify()
		// Cap the visit count: garbage that passes the structural checks
		// may still describe a large (bounded) point soup, and unbounded
		// iteration would drown the fuzzer without exercising new paths.
		visits := 0
		file.Query(Query{}, func(p geom.Vec3, attrs []float64) error {
			if visits++; visits > 10000 {
				return errStopFuzz
			}
			return nil
		})
	})
}
