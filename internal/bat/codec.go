// Per-attribute compression codecs for version-3 treelet sections.
//
// A v3 treelet stores each attribute column as an independent section:
//
//	codec u8, encodedLen u32, payload [encodedLen]byte
//
// so random access stays section-granular — a reader decodes exactly the
// treelets a query touches, nothing else. Three codecs exist:
//
//	codecRaw   (0): the version-2 byte layout (f64 or f32 per the schema
//	               type). Always valid; the fallback when nothing smaller
//	               can honor the attribute's error bound.
//	codecQuant (1): error-bounded uniform quantization (the bit-adaptive
//	               scheme of Ren et al., arXiv:2404.02826). Values are
//	               snapped to a grid of step 2·bound anchored at the
//	               section minimum and bit-packed at the narrowest width
//	               that covers the section's value range, so smooth
//	               columns cost ~log2(range/step) bits per value instead
//	               of 64. Two grids per section exploit the
//	               multiresolution layout: indices inside inner-node (LOD
//	               sample) ranges may use a coarser step (bound ×
//	               LODErrorScale), since progressive previews tolerate
//	               more error than leaf-level reads.
//	codecDelta (2): lossless delta + zigzag + varint for integral-valued
//	               columns (particle IDs, type tags). Chosen only when
//	               every value is a small-magnitude integer and the
//	               stream actually shrinks.
//
// The encoder guarantees |decoded − stored| ≤ bound for every value, where
// "stored" is the value the lossless layout would keep (Float32 attributes
// are first rounded to float32, exactly as codecRaw stores them). The
// guarantee is enforced value-by-value at encode time — after rounding to
// the grid the reconstruction is checked and the grid index nudged by one
// when floating-point rounding pushed it over — so no combination of
// magnitudes and bounds can break it; sections where even that fails (e.g.
// bound far below one ulp) fall back to codecRaw. Every choice is a pure
// function of the input values, keeping builds byte-deterministic across
// worker counts.
package bat

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"libbat/internal/particles"
)

// Codec identifiers stored in v3 attribute section headers and the footer.
const (
	codecRaw   uint8 = 0
	codecQuant uint8 = 1
	codecDelta uint8 = 2
)

// CodecName returns the human-readable name of a codec id (batinspect).
func CodecName(c uint8) string {
	switch c {
	case codecRaw:
		return "raw"
	case codecQuant:
		return "quant"
	case codecDelta:
		return "delta"
	}
	return fmt.Sprintf("unknown(%d)", c)
}

// quantHeaderLen is the fixed prefix of a codecQuant payload: grid minimum
// f64, fine step f64, LOD step f64, fine bit width u8, LOD bit width u8.
const quantHeaderLen = 8 + 8 + 8 + 1 + 1

// maxQuantBits caps the packed bit width. Grid indices stay well inside
// float64's 53-bit integer range, and fine+LOD widths plus the packer's
// 7-bit carry stay inside a 64-bit accumulator.
const maxQuantBits = 48

// encodedAttr is one attribute's encoded section for a treelet being
// built. data is nil for codecRaw: the compactor streams the v2 byte
// layout directly from the particle set instead of materializing a copy.
type encodedAttr struct {
	codec uint8
	data  []byte
}

// encodedLen returns the section payload length in bytes.
func (e encodedAttr) encodedLen(nPoints int, typ particles.AttrType) int {
	if e.codec == codecRaw {
		return nPoints * typ.Size()
	}
	return len(e.data)
}

// --- bit packing ---

// bitWriter packs values LSB-first into a byte stream.
type bitWriter struct {
	buf []byte
	acc uint64
	n   uint
}

func (w *bitWriter) write(v uint64, nbits uint8) {
	w.acc |= v << w.n
	w.n += uint(nbits)
	for w.n >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.n -= 8
	}
}

func (w *bitWriter) flush() {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc, w.n = 0, 0
	}
}

// bitReader unpacks an LSB-first stream. ok=false reports exhaustion.
type bitReader struct {
	buf []byte
	pos int
	acc uint64
	n   uint
}

func (r *bitReader) read(nbits uint8) (uint64, bool) {
	for r.n < uint(nbits) {
		if r.pos >= len(r.buf) {
			return 0, false
		}
		r.acc |= uint64(r.buf[r.pos]) << r.n
		r.pos++
		r.n += 8
	}
	v := r.acc & (uint64(1)<<nbits - 1)
	r.acc >>= nbits
	r.n -= uint(nbits)
	return v, true
}

// --- LOD classification ---

// lodMask marks, for each layout index of a treelet, whether the particle
// belongs to an inner node's LOD sample range (true) or a leaf range
// (false). Node particle ranges partition [0, nPoints) in BFS layout, so
// the classification is derivable from the node table alone — encoder and
// decoder compute it identically from their respective node records.
func lodMaskFromBuilt(t *treelet, mask []bool) []bool {
	mask = mask[:0]
	for range t.order {
		mask = append(mask, false)
	}
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.axis == leafAxis {
			continue
		}
		for p := n.start; p < n.start+n.count; p++ {
			mask[p] = true
		}
	}
	return mask
}

// lodMaskFromDisk is lodMaskFromBuilt for a parsed treelet's node records;
// ranges were already bounds-checked against nPoints during the parse.
func lodMaskFromDisk(nodes []diskNode, nPoints int) []bool {
	mask := make([]bool, nPoints)
	for i := range nodes {
		n := &nodes[i]
		if n.axis == uint8(leafAxis) {
			continue
		}
		for p := n.start; p < n.start+n.count; p++ {
			mask[p] = true
		}
	}
	return mask
}

// encodeTreeletAttrs encodes every attribute column of a freshly built
// treelet, running inside the fused treelet worker so encoding parallelizes
// across treelets with the rest of construction.
func encodeTreeletAttrs(set *particles.Set, t *treelet, bounds []float64, lodScale float64, a *buildArena) {
	nA := set.Schema.NumAttrs()
	t.attrEnc = make([]encodedAttr, nA)
	a.lodBuf = lodMaskFromBuilt(t, a.lodBuf)
	for attr := 0; attr < nA; attr++ {
		t.attrEnc[attr] = encodeAttr(set.Attrs[attr], t.order,
			set.Schema.Attrs[attr].Type, bounds[attr], lodScale, a.lodBuf, a)
	}
}

// --- encoding ---

// typedValue returns the value the lossless layout stores for typ: Float32
// attributes round through float32 on disk, so the error bound is measured
// against that representable value, not the pre-rounding float64.
func typedValue(v float64, typ particles.AttrType) float64 {
	if typ == particles.Float32 {
		return float64(float32(v))
	}
	return v
}

// encodeAttr picks the cheapest codec honoring bound for one attribute
// column of one treelet and returns the encoded section. vals is the full
// attribute array; order maps layout index → particle index; lod flags
// layout indices holding LOD samples (which may use bound·lodScale).
// Scratch buffers come from the worker's arena; the returned payload is
// freshly allocated (it outlives the arena).
func encodeAttr(vals []float64, order []int, typ particles.AttrType,
	bound, lodScale float64, lod []bool, a *buildArena) encodedAttr {

	n := len(order)
	if n == 0 {
		return encodedAttr{codec: codecRaw}
	}
	rawLen := n * typ.Size()

	// Materialize the type-rounded reference values once.
	ref := a.refVals[:0]
	for _, p := range order {
		ref = append(ref, typedValue(vals[p], typ))
	}
	a.refVals = ref[:0] // keep the (possibly grown) backing array

	if bound > 0 {
		if data, ok := encodeQuant(ref, bound, bound*lodScale, lod, rawLen, a); ok {
			return encodedAttr{codec: codecQuant, data: data}
		}
		return encodedAttr{codec: codecRaw}
	}
	if data, ok := encodeDelta(ref, rawLen); ok {
		return encodedAttr{codec: codecDelta, data: data}
	}
	return encodedAttr{codec: codecRaw}
}

// encodeQuant quantizes ref onto the two-grid layout. ok=false means the
// section cannot be represented within the bounds (non-finite values, grid
// indices too wide, or rounding that one nudge cannot fix) or would not
// shrink below rawLen.
func encodeQuant(ref []float64, bound, lodBound float64, lod []bool,
	rawLen int, a *buildArena) ([]byte, bool) {

	vmin := math.Inf(1)
	for _, v := range ref {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, false
		}
		if v < vmin {
			vmin = v
		}
	}
	fineStep, lodStep := 2*bound, 2*lodBound

	qs := a.qbuf[:0]
	var maxFine, maxLOD uint64
	nFine, nLOD := 0, 0
	for i, v := range ref {
		step, b := fineStep, bound
		if lod[i] {
			step, b = lodStep, lodBound
		}
		q := math.Round((v - vmin) / step)
		if math.IsNaN(q) || q < 0 || q > float64(uint64(1)<<maxQuantBits) {
			return nil, false
		}
		qi := uint64(q)
		// One corrective nudge: floating-point rounding in either the
		// division above or the reconstruction below can push the error a
		// hair past the bound; moving one grid cell fixes it whenever the
		// grid can represent the value at all.
		rec := vmin + float64(qi)*step
		if rec-v > b && qi > 0 {
			qi--
			rec = vmin + float64(qi)*step
		} else if v-rec > b {
			qi++
			rec = vmin + float64(qi)*step
		}
		if diff := rec - v; diff > b || -diff > b {
			return nil, false
		}
		if lod[i] {
			nLOD++
			if qi > maxLOD {
				maxLOD = qi
			}
		} else {
			nFine++
			if qi > maxFine {
				maxFine = qi
			}
		}
		qs = append(qs, qi)
	}
	a.qbuf = qs[:0] // keep the (possibly grown) backing array

	fineBits := uint8(bits.Len64(maxFine))
	lodBits := uint8(bits.Len64(maxLOD))
	if fineBits > maxQuantBits || lodBits > maxQuantBits {
		return nil, false
	}
	packedBits := uint64(nFine)*uint64(fineBits) + uint64(nLOD)*uint64(lodBits)
	packedBytes := (packedBits + 7) / 8
	if rawLen <= quantHeaderLen || packedBytes >= uint64(rawLen-quantHeaderLen) {
		return nil, false // not smaller than raw (also bounds the narrowing below)
	}
	encLen := quantHeaderLen + int(packedBytes)

	out := make([]byte, quantHeaderLen, encLen)
	binary.LittleEndian.PutUint64(out[0:], math.Float64bits(vmin))
	binary.LittleEndian.PutUint64(out[8:], math.Float64bits(fineStep))
	binary.LittleEndian.PutUint64(out[16:], math.Float64bits(lodStep))
	out[24] = fineBits
	out[25] = lodBits
	bw := bitWriter{buf: out}
	for i, qi := range qs[:len(ref)] {
		if lod[i] {
			bw.write(qi, lodBits)
		} else {
			bw.write(qi, fineBits)
		}
	}
	bw.flush()
	if len(bw.buf) != encLen {
		// Defensive: the size formula and the packer must agree.
		return nil, false
	}
	return bw.buf, true
}

// integralMagnitude is the largest magnitude codecDelta accepts: integers
// up to 2^52 survive float64 round-trips and int64 deltas without loss.
const integralMagnitude = 1 << 52

// encodeDelta encodes ref as zigzag-varint first differences when every
// value is an exactly representable integer and the stream shrinks.
func encodeDelta(ref []float64, rawLen int) ([]byte, bool) {
	for _, v := range ref {
		if v != math.Trunc(v) || math.IsNaN(v) || v > integralMagnitude || v < -integralMagnitude {
			return nil, false
		}
	}
	out := make([]byte, 0, rawLen)
	prev := int64(0)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range ref {
		cur := int64(v)
		d := cur - prev
		prev = cur
		// Zigzag: interleave positives and negatives so small deltas of
		// either sign stay short.
		out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(d)<<1^uint64(d>>63))]...)
		if len(out) >= rawLen {
			return nil, false
		}
	}
	return out, true
}

// --- decoding ---

// decodeAttrSection decodes one v3 attribute section payload into a fresh
// []float64 column. declaredBound/lodScale come from the file footer; a
// quant section whose grid steps exceed what the footer declares is
// corrupt (error-bound mismatch) and rejected. lodMask is computed lazily
// by the caller — only quant sections need it.
func decodeAttrSection(codec uint8, payload []byte, nPoints int,
	typ particles.AttrType, declaredBound, lodScale float64,
	lodMask func() []bool) ([]float64, error) {

	switch codec {
	case codecRaw:
		return decodeRaw(payload, nPoints, typ)
	case codecQuant:
		return decodeQuant(payload, nPoints, declaredBound, lodScale, lodMask())
	case codecDelta:
		return decodeDelta(payload, nPoints)
	}
	return nil, fmt.Errorf("bat: unknown attribute codec id %d", codec)
}

func decodeRaw(payload []byte, nPoints int, typ particles.AttrType) ([]float64, error) {
	sz := typ.Size()
	if len(payload) != nPoints*sz {
		return nil, fmt.Errorf("bat: raw section holds %d bytes, want %d", len(payload), nPoints*sz)
	}
	out := make([]float64, nPoints)
	if typ == particles.Float32 {
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:])))
		}
	} else {
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
	}
	return out, nil
}

func decodeQuant(payload []byte, nPoints int, declaredBound, lodScale float64, lod []bool) ([]float64, error) {
	if len(payload) < quantHeaderLen {
		return nil, fmt.Errorf("bat: quant section truncated: %d bytes, header needs %d", len(payload), quantHeaderLen)
	}
	vmin := math.Float64frombits(binary.LittleEndian.Uint64(payload[0:]))
	fineStep := math.Float64frombits(binary.LittleEndian.Uint64(payload[8:]))
	lodStep := math.Float64frombits(binary.LittleEndian.Uint64(payload[16:]))
	fineBits := payload[24]
	lodBits := payload[25]
	if math.IsNaN(vmin) || math.IsInf(vmin, 0) ||
		!(fineStep > 0) || math.IsInf(fineStep, 0) ||
		!(lodStep > 0) || math.IsInf(lodStep, 0) {
		return nil, fmt.Errorf("bat: quant section has invalid grid (min %g, steps %g/%g)", vmin, fineStep, lodStep)
	}
	if fineBits > maxQuantBits || lodBits > maxQuantBits {
		return nil, fmt.Errorf("bat: quant section bit widths %d/%d exceed %d", fineBits, lodBits, maxQuantBits)
	}
	// The footer's declared bound is a format invariant: a section whose
	// grid is coarser than the declaration would silently exceed the error
	// the file promises. The 1e-9 slack only absorbs the f64 arithmetic
	// here; the encoder writes steps of exactly 2·bound.
	if declaredBound <= 0 {
		return nil, fmt.Errorf("bat: quant section in attribute declared lossless (error-bound mismatch)")
	}
	if fineStep > 2*declaredBound*(1+1e-9) {
		return nil, fmt.Errorf("bat: quant fine step %g exceeds declared error bound %g (error-bound mismatch)", fineStep, declaredBound)
	}
	if lodStep > 2*declaredBound*lodScale*(1+1e-9) {
		return nil, fmt.Errorf("bat: quant LOD step %g exceeds declared error bound %g x scale %g (error-bound mismatch)", lodStep, declaredBound, lodScale)
	}
	var totalBits uint64
	for i := 0; i < nPoints; i++ {
		if lod[i] {
			totalBits += uint64(lodBits)
		} else {
			totalBits += uint64(fineBits)
		}
	}
	if want := uint64(quantHeaderLen) + (totalBits+7)/8; uint64(len(payload)) != want {
		return nil, fmt.Errorf("bat: quant section holds %d bytes, bit widths require %d (truncated codec stream)", len(payload), want)
	}
	out := make([]float64, nPoints)
	br := bitReader{buf: payload[quantHeaderLen:]}
	for i := range out {
		step, nb := fineStep, fineBits
		if lod[i] {
			step, nb = lodStep, lodBits
		}
		q, ok := br.read(nb)
		if !ok {
			return nil, fmt.Errorf("bat: quant stream exhausted at value %d of %d", i, nPoints)
		}
		out[i] = vmin + float64(q)*step
	}
	return out, nil
}

func decodeDelta(payload []byte, nPoints int) ([]float64, error) {
	out := make([]float64, nPoints)
	prev := int64(0)
	pos := 0
	for i := range out {
		u, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("bat: delta section truncated at value %d of %d", i, nPoints)
		}
		pos += n
		// Undo zigzag. The shifted magnitude is below 1<<63, so the
		// narrowing cannot wrap.
		half := u >> 1
		if half > math.MaxInt64 {
			return nil, fmt.Errorf("bat: delta magnitude overflows")
		}
		d := int64(half)
		if u&1 == 1 {
			d = ^d
		}
		prev += d
		if prev > integralMagnitude || prev < -integralMagnitude {
			return nil, fmt.Errorf("bat: delta value %d exceeds integral range", prev)
		}
		out[i] = float64(prev)
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("bat: delta section has %d trailing bytes", len(payload)-pos)
	}
	return out, nil
}
