package bat

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"libbat/internal/geom"
	"libbat/internal/particles"
)

// randomSet builds a particle set with two attributes: "mass" correlated
// with x (spatially coherent, as the bitmaps assume) and "id" increasing.
func randomSet(n int, seed int64) (*particles.Set, geom.Box) {
	r := rand.New(rand.NewSource(seed))
	s := particles.NewSet(particles.NewSchema("mass", "id"), n)
	for i := 0; i < n; i++ {
		p := geom.V3(r.Float64(), r.Float64(), r.Float64())
		s.Append(p, []float64{p.X*100 + r.Float64(), float64(i)})
	}
	return s, geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
}

// clusteredSet builds a strongly nonuniform set: 80% of particles in a
// small corner cluster.
func clusteredSet(n int, seed int64) (*particles.Set, geom.Box) {
	r := rand.New(rand.NewSource(seed))
	s := particles.NewSet(particles.NewSchema("temp"), n)
	for i := 0; i < n; i++ {
		var p geom.Vec3
		if i%5 != 0 {
			p = geom.V3(r.Float64()*0.1, r.Float64()*0.1, r.Float64()*0.1)
		} else {
			p = geom.V3(r.Float64(), r.Float64(), r.Float64())
		}
		s.Append(p, []float64{p.Length() * 10})
	}
	return s, geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
}

func buildAndOpen(t *testing.T, s *particles.Set, domain geom.Box, cfg BuildConfig) (*File, *Built) {
	t.Helper()
	b, err := Build(s, domain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := FromBuffer(b.Buf)
	if err != nil {
		t.Fatal(err)
	}
	return f, b
}

func TestBuildValidatesConfig(t *testing.T) {
	s, domain := randomSet(10, 1)
	for _, cfg := range []BuildConfig{
		{SubprefixBits: 0, LODPerNode: 8, MaxLeafSize: 128},
		{SubprefixBits: 999, LODPerNode: 8, MaxLeafSize: 128},
		{SubprefixBits: 12, LODPerNode: 0, MaxLeafSize: 128},
		{SubprefixBits: 12, LODPerNode: 8, MaxLeafSize: 0},
	} {
		if _, err := Build(s, domain, cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestRoundTripAllParticles(t *testing.T) {
	s, domain := randomSet(5000, 2)
	f, b := buildAndOpen(t, s, domain, DefaultBuildConfig())
	if f.NumParticles != 5000 {
		t.Fatalf("NumParticles = %d", f.NumParticles)
	}
	if b.Stats.NumParticles != 5000 {
		t.Fatalf("stats particles = %d", b.Stats.NumParticles)
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5000 {
		t.Fatalf("ReadAll returned %d particles", got.Len())
	}
	// Every original particle must come back exactly once: match on the
	// unique "id" attribute.
	seen := make(map[float64]geom.Vec3, 5000)
	for i := 0; i < got.Len(); i++ {
		id := got.Attrs[1][i]
		if _, dup := seen[id]; dup {
			t.Fatalf("particle id %v returned twice", id)
		}
		seen[id] = got.Position(i)
	}
	for i := 0; i < s.Len(); i++ {
		p, ok := seen[s.Attrs[1][i]]
		if !ok {
			t.Fatalf("particle %d missing", i)
		}
		if p != s.Position(i) {
			t.Fatalf("particle %d position %v != %v", i, p, s.Position(i))
		}
	}
}

func TestSchemaAndRangesRoundTrip(t *testing.T) {
	s, domain := randomSet(500, 3)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	if !f.Schema.Equal(s.Schema) {
		t.Errorf("schema mismatch: %+v", f.Schema)
	}
	for a := 0; a < s.Schema.NumAttrs(); a++ {
		want := s.AttrRange(a)
		if f.Ranges[a] != want {
			t.Errorf("attr %d range %+v != %+v", a, f.Ranges[a], want)
		}
	}
	// Subprefix auto-reduces for small sets; the rest round-trips exactly.
	if f.SubprefixBits < 1 || f.SubprefixBits > 12 || f.LODPerNode != 8 || f.MaxLeafSize != 128 {
		t.Errorf("config fields wrong: subprefix=%d lod=%d leaf=%d",
			f.SubprefixBits, f.LODPerNode, f.MaxLeafSize)
	}
	// With FixedSubprefix the configured width is used verbatim.
	small, smallDomain := randomSet(500, 33)
	cfg := DefaultBuildConfig()
	cfg.FixedSubprefix = true
	bb, err := Build(small, smallDomain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := FromBuffer(bb.Buf)
	if err != nil {
		t.Fatal(err)
	}
	if bf.SubprefixBits != 12 {
		t.Errorf("fixed subprefix = %d, want 12", bf.SubprefixBits)
	}
}

func TestEmptyBuild(t *testing.T) {
	s := particles.NewSet(particles.NewSchema("a"), 0)
	domain := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	got, err := f.ReadAll()
	if err != nil || got.Len() != 0 {
		t.Errorf("empty file read: %v, %d particles", err, got.Len())
	}
}

func TestSingleParticle(t *testing.T) {
	s := particles.NewSet(particles.NewSchema("a"), 1)
	s.Append(geom.V3(0.5, 0.5, 0.5), []float64{42})
	domain := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	got, err := f.ReadAll()
	if err != nil || got.Len() != 1 || got.Attrs[0][0] != 42 {
		t.Errorf("single particle read failed: %v %d", err, got.Len())
	}
}

func TestSpatialQueryMatchesBruteForce(t *testing.T) {
	s, domain := clusteredSet(8000, 4)
	cfg := DefaultBuildConfig()
	cfg.MaxLeafSize = 32 // deeper trees exercise more traversal
	f, _ := buildAndOpen(t, s, domain, cfg)
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		lo := geom.V3(r.Float64(), r.Float64(), r.Float64())
		q := geom.NewBox(lo, lo.Add(geom.V3(r.Float64()*0.4, r.Float64()*0.4, r.Float64()*0.4)))
		var want int
		for i := 0; i < s.Len(); i++ {
			if q.Contains(s.Position(i)) {
				want++
			}
		}
		got, err := f.CountMatching(Query{Bounds: &q})
		if err != nil {
			t.Fatal(err)
		}
		if int(got) != want {
			t.Fatalf("trial %d: spatial query returned %d, brute force %d", trial, got, want)
		}
	}
}

func TestAttributeQueryMatchesBruteForce(t *testing.T) {
	s, domain := randomSet(6000, 5)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		lo := r.Float64() * 100
		hi := lo + r.Float64()*30
		var want int
		for i := 0; i < s.Len(); i++ {
			if v := s.Attrs[0][i]; v >= lo && v <= hi {
				want++
			}
		}
		got, err := f.CountMatching(Query{Filters: []AttrFilter{{Attr: 0, Min: lo, Max: hi}}})
		if err != nil {
			t.Fatal(err)
		}
		if int(got) != want {
			t.Fatalf("trial %d: attr query [%g,%g] returned %d, want %d", trial, lo, hi, got, want)
		}
	}
}

func TestCombinedQueryMatchesBruteForce(t *testing.T) {
	s, domain := randomSet(5000, 6)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	box := geom.NewBox(geom.V3(0.2, 0.2, 0.2), geom.V3(0.8, 0.8, 0.8))
	var want int
	for i := 0; i < s.Len(); i++ {
		v := s.Attrs[0][i]
		if box.Contains(s.Position(i)) && v >= 20 && v <= 60 {
			want++
		}
	}
	got, err := f.CountMatching(Query{
		Bounds:  &box,
		Filters: []AttrFilter{{Attr: 0, Min: 20, Max: 60}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(got) != want {
		t.Fatalf("combined query returned %d, want %d", got, want)
	}
}

func TestFilterOutsideLocalRange(t *testing.T) {
	s, domain := randomSet(1000, 8)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	got, err := f.CountMatching(Query{Filters: []AttrFilter{{Attr: 0, Min: 1e9, Max: 2e9}}})
	if err != nil || got != 0 {
		t.Errorf("out-of-range filter returned %d, err %v", got, err)
	}
	// Invalid attribute index matches nothing rather than panicking.
	got, err = f.CountMatching(Query{Filters: []AttrFilter{{Attr: 99, Min: 0, Max: 1}}})
	if err != nil || got != 0 {
		t.Errorf("bad attr filter returned %d, err %v", got, err)
	}
}

func TestProgressiveTilesExactly(t *testing.T) {
	// Reading in quality steps 0->0.1->...->1.0 must visit every particle
	// exactly once (the paper's Table I/II access pattern).
	s, domain := clusteredSet(4000, 9)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	counts := map[float64]int{}
	prev := 0.0
	for step := 1; step <= 10; step++ {
		qual := float64(step) / 10
		err := f.Query(Query{PrevQuality: prev, Quality: qual}, func(p geom.Vec3, attrs []float64) error {
			counts[attrs[0]]++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		prev = qual
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != s.Len() {
		t.Fatalf("progressive read visited %d points total, want %d", total, s.Len())
	}
	// No value should be visited more than its multiplicity in the data.
	valMult := map[float64]int{}
	for _, v := range s.Attrs[0] {
		valMult[v]++
	}
	for v, c := range counts {
		if c != valMult[v] {
			t.Fatalf("value %v visited %d times, multiplicity %d", v, c, valMult[v])
		}
	}
}

func TestProgressiveMonotonicCounts(t *testing.T) {
	s, domain := randomSet(4000, 10)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	prevCount := int64(0)
	for step := 1; step <= 10; step++ {
		qual := float64(step) / 10
		got, err := f.CountMatching(Query{Quality: qual})
		if err != nil {
			t.Fatal(err)
		}
		if got < prevCount {
			t.Fatalf("quality %.1f returned %d < previous %d", qual, got, prevCount)
		}
		prevCount = got
	}
	if prevCount != int64(s.Len()) {
		t.Fatalf("quality 1.0 returned %d, want %d", prevCount, s.Len())
	}
	// Coarse read returns a strict subset.
	coarse, err := f.CountMatching(Query{Quality: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if coarse == 0 || coarse >= int64(s.Len()) {
		t.Errorf("quality 0.1 returned %d of %d", coarse, s.Len())
	}
}

func TestQualityToDepth(t *testing.T) {
	d, frac := qualityToDepth(0, 10)
	if d != 0 || frac != 0 {
		t.Errorf("q=0 -> %d %g", d, frac)
	}
	d, frac = qualityToDepth(1, 10)
	if d != 10 || frac != 1 {
		t.Errorf("q=1 -> %d %g", d, frac)
	}
	// Monotone in q.
	lastD, lastF := 0, 0.0
	for q := 0.05; q <= 1.0; q += 0.05 {
		d, frac = qualityToDepth(q, 10)
		if d < lastD || (d == lastD && frac < lastF) {
			t.Fatalf("qualityToDepth not monotone at %g", q)
		}
		lastD, lastF = d, frac
	}
}

func TestVisitorErrorAborts(t *testing.T) {
	s, domain := randomSet(1000, 11)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	sentinel := os.ErrClosed
	n := 0
	err := f.Query(Query{}, func(geom.Vec3, []float64) error {
		n++
		if n == 10 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err = %v", err)
	}
	if n != 10 {
		t.Fatalf("visited %d after abort", n)
	}
}

func TestFileOnDisk(t *testing.T) {
	s, domain := randomSet(3000, 12)
	b, err := Build(s, domain, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "test.bat")
	if err := os.WriteFile(path, b.Buf, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.ReadAll()
	if err != nil || got.Len() != 3000 {
		t.Fatalf("disk read: %v, %d particles", err, got.Len())
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.bat")); err == nil {
		t.Error("missing file should error")
	}
	path := filepath.Join(t.TempDir(), "garbage.bat")
	os.WriteFile(path, []byte("not a bat file at all"), 0o644)
	if _, err := Open(path); err == nil {
		t.Error("garbage file should error")
	}
	// Truncated valid file.
	s, domain := randomSet(1000, 13)
	b, _ := Build(s, domain, DefaultBuildConfig())
	path = filepath.Join(t.TempDir(), "trunc.bat")
	os.WriteFile(path, b.Buf[:len(b.Buf)/2], 0o644)
	f, err := Open(path)
	if err == nil {
		// Header may parse; the treelet read must fail.
		_, err = f.ReadAll()
		f.Close()
	}
	if err == nil {
		t.Error("truncated file should error somewhere")
	}
}

func TestTreeletPageAlignment(t *testing.T) {
	s, domain := clusteredSet(20000, 14)
	f, b := buildAndOpen(t, s, domain, DefaultBuildConfig())
	if f.NumTreelets() < 2 {
		t.Skip("need multiple treelets")
	}
	for i, l := range f.leaves {
		if l.offset%PageSize != 0 {
			t.Errorf("treelet %d at offset %d not page aligned", i, l.offset)
		}
	}
	if b.Stats.PaddingBytes <= 0 {
		t.Error("expected nonzero padding")
	}
}

func TestStorageOverheadSmall(t *testing.T) {
	// Paper §VI-B: ~0.9% overhead. With a realistic schema (7 doubles)
	// and enough particles, ours should be a few percent at most.
	r := rand.New(rand.NewSource(15))
	s := particles.NewSet(particles.UniformSchema(7), 200000)
	for i := 0; i < 200000; i++ {
		p := geom.V3(r.Float64(), r.Float64(), r.Float64())
		s.Append(p, []float64{p.X, p.Y, p.Z, p.X * p.Y, r.Float64(), r.NormFloat64(), float64(i)})
	}
	domain := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	b, err := Build(s, domain, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	over := b.Stats.OverheadFraction()
	if over < 0 || over > 0.05 {
		t.Errorf("overhead = %.2f%%, want < 5%% (stats %+v)", over*100, b.Stats)
	}
}

func TestLODSubsetInvariant(t *testing.T) {
	// A coarse read's points must be a subset of the full data (no
	// representative/duplicated particles; paper §III-C2).
	s, domain := randomSet(3000, 16)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	all := map[float64]bool{}
	for _, v := range s.Attrs[1] {
		all[v] = true
	}
	err := f.Query(Query{Quality: 0.3}, func(p geom.Vec3, attrs []float64) error {
		if !all[attrs[1]] {
			t.Fatal("LOD read returned a particle not in the input")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLODSpatialCoverage(t *testing.T) {
	// Stratified sampling: a coarse read of a uniform distribution should
	// cover all octants of the domain.
	s, domain := randomSet(8000, 17)
	f, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	var octants [8]int
	err := f.Query(Query{Quality: 0.05}, func(p geom.Vec3, _ []float64) error {
		oct := 0
		if p.X > 0.5 {
			oct |= 1
		}
		if p.Y > 0.5 {
			oct |= 2
		}
		if p.Z > 0.5 {
			oct |= 4
		}
		octants[oct]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range octants {
		if c == 0 {
			t.Errorf("octant %d empty in coarse read: %v", i, octants)
		}
	}
}

func TestStratifiedSample(t *testing.T) {
	var a buildArena
	a.ensure(100, 8)
	pts := make([]int, 100)
	for i := range pts {
		pts[i] = i
	}
	lod, rest := stratifiedSampleInPlace(pts, 8, &a)
	if len(lod) != 8 || len(rest) != 92 {
		t.Fatalf("sample sizes %d/%d", len(lod), len(rest))
	}
	// Samples spread across strata.
	for i := 1; i < len(lod); i++ {
		if lod[i]-lod[i-1] < 6 {
			t.Errorf("samples bunched: %v", lod)
		}
	}
	// Union is the input.
	seen := map[int]bool{}
	for _, p := range append(append([]int{}, lod...), rest...) {
		if seen[p] {
			t.Fatalf("duplicated %d", p)
		}
		seen[p] = true
	}
	if len(seen) != 100 {
		t.Fatalf("lost points: %d", len(seen))
	}
	// k >= n returns everything as LOD.
	lod, rest = stratifiedSampleInPlace(pts[:5], 8, &a)
	if len(lod) != 5 || len(rest) != 0 {
		t.Errorf("small input sample %d/%d", len(lod), len(rest))
	}
}

func TestCoincidentParticles(t *testing.T) {
	// All particles at the same position: degenerate splits must not
	// recurse forever.
	s := particles.NewSet(particles.NewSchema("a"), 500)
	for i := 0; i < 500; i++ {
		s.Append(geom.V3(0.5, 0.5, 0.5), []float64{float64(i)})
	}
	domain := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	cfg := DefaultBuildConfig()
	cfg.MaxLeafSize = 16
	f, _ := buildAndOpen(t, s, domain, cfg)
	got, err := f.ReadAll()
	if err != nil || got.Len() != 500 {
		t.Fatalf("coincident read: %v, %d", err, got.Len())
	}
}

func TestParallelMatchesSerialBuild(t *testing.T) {
	s, domain := clusteredSet(10000, 18)
	cfgP := DefaultBuildConfig()
	cfgS := cfgP
	cfgS.Parallel = false
	bp, err := Build(s, domain, cfgP)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := Build(s, domain, cfgS)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Buf) != len(bs.Buf) {
		t.Fatalf("parallel build %d bytes != serial %d", len(bp.Buf), len(bs.Buf))
	}
	for i := range bp.Buf {
		if bp.Buf[i] != bs.Buf[i] {
			t.Fatalf("builds differ at byte %d", i)
		}
	}
}

func TestQueryQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 200 + int(seed%800)
		if n < 0 {
			n = 200
		}
		s, domain := randomSet(n, seed)
		cfg := DefaultBuildConfig()
		cfg.MaxLeafSize = 16
		cfg.LODPerNode = 4
		b, err := Build(s, domain, cfg)
		if err != nil {
			return false
		}
		fl, err := FromBuffer(b.Buf)
		if err != nil {
			return false
		}
		lo := geom.V3(r.Float64()*0.8, r.Float64()*0.8, r.Float64()*0.8)
		box := geom.NewBox(lo, lo.Add(geom.V3(0.3, 0.3, 0.3)))
		want := 0
		for i := 0; i < s.Len(); i++ {
			if box.Contains(s.Position(i)) {
				want++
			}
		}
		got, err := fl.CountMatching(Query{Bounds: &box})
		return err == nil && int(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDictionaryDeduplicates(t *testing.T) {
	s, domain := randomSet(50000, 19)
	_, b := buildAndOpen(t, s, domain, DefaultBuildConfig())
	// Many nodes share bitmaps; the dictionary must be far smaller than
	// the node count.
	if b.Stats.DictEntries >= b.Stats.NumTreeletNodes {
		t.Errorf("dictionary (%d) not smaller than node count (%d)",
			b.Stats.DictEntries, b.Stats.NumTreeletNodes)
	}
	if b.Stats.DictEntries > math.MaxUint16 {
		t.Errorf("dictionary exceeds 16-bit IDs: %d", b.Stats.DictEntries)
	}
}

func BenchmarkBuild100k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	s := particles.NewSet(particles.UniformSchema(7), 100000)
	for i := 0; i < 100000; i++ {
		s.Append(geom.V3(r.Float64(), r.Float64(), r.Float64()),
			[]float64{1, 2, 3, 4, 5, 6, 7})
	}
	domain := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	b.SetBytes(s.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(s, domain, DefaultBuildConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProgressiveRead(b *testing.B) {
	s, domain := clusteredSet(100000, 2)
	built, err := Build(s, domain, DefaultBuildConfig())
	if err != nil {
		b.Fatal(err)
	}
	f, err := FromBuffer(built.Buf)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prev := 0.0
		for step := 1; step <= 10; step++ {
			q := float64(step) / 10
			if _, err := f.CountMatching(Query{PrevQuality: prev, Quality: q}); err != nil {
				b.Fatal(err)
			}
			prev = q
		}
	}
}

func TestOpenMmap(t *testing.T) {
	s, domain := randomSet(3000, 21)
	b, err := Build(s, domain, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mmap.bat")
	if err := os.WriteFile(path, b.Buf, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.ReadAll()
	if err != nil || got.Len() != 3000 {
		t.Fatalf("mmap read: %v, %d particles", err, got.Len())
	}
	// Results identical to the pread path.
	f2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	box := geom.NewBox(geom.V3(0.2, 0.2, 0.2), geom.V3(0.7, 0.7, 0.7))
	n1, _ := f.CountMatching(Query{Bounds: &box})
	n2, _ := f2.CountMatching(Query{Bounds: &box})
	if n1 != n2 {
		t.Errorf("mmap query %d != pread query %d", n1, n2)
	}
	if _, err := OpenMmap(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should error")
	}
}

func TestQuantizedPositionsRoundTrip(t *testing.T) {
	s, domain := clusteredSet(8000, 23)
	cfg := DefaultBuildConfig()
	cfg.QuantizePositions = true
	f, b := buildAndOpen(t, s, domain, cfg)
	if !f.Quantized {
		t.Fatal("file not flagged quantized")
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("read %d of %d", got.Len(), s.Len())
	}
	// Quantized file is smaller than the float32 one.
	plain, err := Build(s, domain, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Buf) >= len(plain.Buf) {
		t.Errorf("quantized file %d B >= plain %d B", len(b.Buf), len(plain.Buf))
	}
	// Attributes are exact; positions within the per-treelet quantization
	// error. Match particles on the unique attribute and bound the error
	// by the domain extent (treelet extents are smaller).
	orig := make(map[float64]geom.Vec3, s.Len())
	for i := 0; i < s.Len(); i++ {
		orig[s.Attrs[0][i]] = s.Position(i)
	}
	maxErr := 0.0
	for i := 0; i < got.Len(); i++ {
		p0, ok := orig[got.Attrs[0][i]]
		if !ok {
			t.Fatal("attribute value not found (attrs must be lossless)")
		}
		d := got.Position(i).Sub(p0)
		for _, v := range []float64{d.X, d.Y, d.Z} {
			if math.Abs(v) > maxErr {
				maxErr = math.Abs(v)
			}
		}
	}
	// Error bound: largest treelet extent / 65536; the domain is 1 wide so
	// 1/65536 is a safe upper bound (with slack for float32 storage).
	if maxErr > 1.0/65536+1e-5 {
		t.Errorf("quantization error %g exceeds bound", maxErr)
	}
}

func TestQuantizedQueriesConsistent(t *testing.T) {
	// Spatial and progressive queries behave identically modulo the
	// quantization epsilon: counts over a box should be close to the
	// unquantized counts, and progressive tiling remains exact.
	s, domain := randomSet(6000, 24)
	cfg := DefaultBuildConfig()
	cfg.QuantizePositions = true
	f, _ := buildAndOpen(t, s, domain, cfg)
	plain, _ := buildAndOpen(t, s, domain, DefaultBuildConfig())
	box := geom.NewBox(geom.V3(0.25, 0.25, 0.25), geom.V3(0.75, 0.75, 0.75))
	nq, err := f.CountMatching(Query{Bounds: &box})
	if err != nil {
		t.Fatal(err)
	}
	np, err := plain.CountMatching(Query{Bounds: &box})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(float64(nq - np)); diff > float64(np)/100+10 {
		t.Errorf("quantized box count %d far from plain %d", nq, np)
	}
	// Progressive reads still tile exactly (ordering is unaffected).
	var total int64
	prev := 0.0
	for step := 1; step <= 5; step++ {
		q := float64(step) / 5
		n, err := f.CountMatching(Query{PrevQuality: prev, Quality: q})
		if err != nil {
			t.Fatal(err)
		}
		total += n
		prev = q
	}
	if total != int64(s.Len()) {
		t.Errorf("quantized progressive total %d != %d", total, s.Len())
	}
}

func TestQuantizedCompressionRatio(t *testing.T) {
	// With 1 attribute (8B) + positions, quantized storage should save
	// roughly 6 bytes of 20 per particle (~30%) at scale.
	s, domain := clusteredSet(100000, 25)
	cfg := DefaultBuildConfig()
	cfg.QuantizePositions = true
	b, err := Build(s, domain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(b.Stats.FileBytes) / float64(b.Stats.RawDataBytes)
	if ratio > 0.80 {
		t.Errorf("quantized file is %.0f%% of raw; expected <= 80%%", ratio*100)
	}
}

func TestFloat32AttributesRoundTrip(t *testing.T) {
	// Mixed-precision schema: the second attribute is stored as float32
	// on disk, so values round-trip through float32 precision.
	r := rand.New(rand.NewSource(26))
	schema := particles.Schema{Attrs: []particles.AttrDesc{
		{Name: "exact", Type: particles.Float64},
		{Name: "single", Type: particles.Float32},
	}}
	s := particles.NewSet(schema, 2000)
	for i := 0; i < 2000; i++ {
		s.Append(geom.V3(r.Float64(), r.Float64(), r.Float64()),
			[]float64{r.NormFloat64() * 1e6, r.NormFloat64() * 1e6})
	}
	domain := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	b, err := Build(s, domain, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	// File is smaller than the all-f64 equivalent.
	s64 := particles.NewSet(particles.NewSchema("exact", "single"), 2000)
	s64.X, s64.Y, s64.Z = s.X, s.Y, s.Z
	s64.Attrs = s.Attrs
	b64, err := Build(s64, domain, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Buf) >= len(b64.Buf) {
		t.Errorf("f32-attr file %d B >= f64 file %d B", len(b.Buf), len(b64.Buf))
	}
	f, err := FromBuffer(b.Buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema.Attrs[1].Type != particles.Float32 {
		t.Fatal("schema type lost")
	}
	got, err := f.ReadAll()
	if err != nil || got.Len() != 2000 {
		t.Fatalf("read: %v %d", err, got.Len())
	}
	// Match on the exact attribute; the single one is f32-rounded.
	byExact := map[float64]float64{}
	for i := 0; i < s.Len(); i++ {
		byExact[s.Attrs[0][i]] = s.Attrs[1][i]
	}
	for i := 0; i < got.Len(); i++ {
		orig, ok := byExact[got.Attrs[0][i]]
		if !ok {
			t.Fatal("f64 attribute not exact")
		}
		if got.Attrs[1][i] != float64(float32(orig)) {
			t.Fatalf("f32 attribute rounding wrong: %v vs %v", got.Attrs[1][i], orig)
		}
	}
}

func TestBitmapPruningEffective(t *testing.T) {
	// The paper's §V-A claim: attribute bitmaps prune subtrees before
	// their particles are touched. mass correlates with x, so a narrow
	// mass filter must prune spatially distant subtrees.
	s, domain := randomSet(20000, 27)
	cfg := DefaultBuildConfig()
	cfg.MaxLeafSize = 32
	f, _ := buildAndOpen(t, s, domain, cfg)
	st, err := f.QueryWithStats(
		Query{Filters: []AttrFilter{{Attr: 0, Min: 10, Max: 15}}},
		func(geom.Vec3, []float64) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.PrunedSubtrees == 0 {
		t.Error("selective filter pruned nothing")
	}
	if st.Visited == 0 {
		t.Error("selective filter matched nothing")
	}
	// The work actually done (visited + rejected) must be far below a
	// full scan.
	touched := st.Visited + st.FalsePositives
	if touched*2 > int64(s.Len()) {
		t.Errorf("filter touched %d of %d particles; bitmaps not pruning", touched, s.Len())
	}
	// An unfiltered query touches everything and prunes nothing by
	// attribute.
	full, err := f.QueryWithStats(Query{}, func(geom.Vec3, []float64) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if full.Visited != int64(s.Len()) || full.FalsePositives != 0 {
		t.Errorf("full scan stats %+v", full)
	}
}

func BenchmarkAttributeFilteredQuery(b *testing.B) {
	s, domain := randomSet(200000, 28)
	built, err := Build(s, domain, DefaultBuildConfig())
	if err != nil {
		b.Fatal(err)
	}
	f, err := FromBuffer(built.Buf)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.CountMatching(Query{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("narrow-filter", func(b *testing.B) {
		q := Query{Filters: []AttrFilter{{Attr: 0, Min: 40, Max: 45}}}
		for i := 0; i < b.N; i++ {
			if _, err := f.CountMatching(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestCorruptionRobustness(t *testing.T) {
	// Random single-byte mutations of a valid file must never panic:
	// either the file still parses (the flipped byte was payload) or a
	// clean error surfaces.
	s, domain := clusteredSet(4000, 29)
	b, err := Build(s, domain, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(123))
	run := func(buf []byte) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("panic on corrupted input: %v", p)
			}
		}()
		f, err := FromBuffer(buf)
		if err != nil {
			return
		}
		// Traversals must also be panic-free.
		f.CountMatching(Query{})
		box := geom.NewBox(geom.V3(0, 0, 0), geom.V3(0.5, 0.5, 0.5))
		f.CountMatching(Query{Bounds: &box, Filters: []AttrFilter{{Attr: 0, Min: 0, Max: 1}}})
	}
	for trial := 0; trial < 300; trial++ {
		buf := append([]byte(nil), b.Buf...)
		// Flip 1-4 random bytes.
		for k := 0; k <= r.Intn(4); k++ {
			buf[r.Intn(len(buf))] ^= byte(1 + r.Intn(255))
		}
		run(buf)
	}
	// Pure garbage of various sizes.
	for trial := 0; trial < 100; trial++ {
		buf := make([]byte, r.Intn(8192))
		r.Read(buf)
		run(buf)
	}
	// Truncations at every granularity.
	for cut := len(b.Buf); cut >= 0; cut -= 97 {
		run(b.Buf[:cut])
	}
}

func TestSpatialQueryDeepShallowTree(t *testing.T) {
	// Force the full 12-bit subprefix on a modest set so the shallow
	// radix tree is deep and its derived split planes (Morton cell
	// midplanes) do the spatial pruning. Any error in the plane
	// derivation loses particles versus brute force.
	s, domain := clusteredSet(30000, 31)
	cfg := DefaultBuildConfig()
	cfg.FixedSubprefix = true
	f, b := buildAndOpen(t, s, domain, cfg)
	if b.Stats.NumShallowNodes < 50 {
		t.Fatalf("want a deep shallow tree, got %d inner nodes", b.Stats.NumShallowNodes)
	}
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		lo := geom.V3(r.Float64(), r.Float64(), r.Float64())
		sz := 0.02 + r.Float64()*0.3
		q := geom.NewBox(lo, lo.Add(geom.V3(sz, sz, sz)))
		want := 0
		for i := 0; i < s.Len(); i++ {
			if q.Contains(s.Position(i)) {
				want++
			}
		}
		got, err := f.CountMatching(Query{Bounds: &q})
		if err != nil {
			t.Fatal(err)
		}
		if int(got) != want {
			t.Fatalf("trial %d: deep shallow tree query returned %d, brute force %d", trial, got, want)
		}
	}
	// Pruning must actually engage on a tight query.
	tiny := geom.NewBox(geom.V3(0.01, 0.01, 0.01), geom.V3(0.03, 0.03, 0.03))
	st, err := f.QueryWithStats(Query{Bounds: &tiny}, func(geom.Vec3, []float64) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.PrunedSubtrees == 0 {
		t.Error("tight spatial query pruned nothing in the deep shallow tree")
	}
}
