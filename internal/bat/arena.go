package bat

import (
	"math"

	"libbat/internal/geom"
	"libbat/internal/particles"
)

// buildArena is one treelet worker's reusable scratch memory. Every buffer
// is sized to the largest treelet the worker has seen and reused across
// treelets, so steady-state treelet construction allocates O(nodes) (node
// records, bitmap backing, the BFS layout) instead of the O(n log n)
// temporaries the per-node make() calls used to cost.
//
// An arena is owned by exactly one worker goroutine; nothing in it is
// shared, and its contents never outlive the treelet being built.
type buildArena struct {
	coords []float64 // split-axis coordinate per partition element
	sel    []float64 // quickselect scratch (mutated by the selection)
	parts  []int     // stable three-way partition staging
	lod    []int     // stratified-sample staging (LODPerNode picks)

	// Codec scratch (v3 compressed builds): type-rounded reference
	// values, grid indices, and the per-index LOD classification. Like
	// the buffers above, these grow to the largest treelet seen and are
	// reused; encoded payloads are allocated exactly (they outlive the
	// arena).
	refVals []float64
	qbuf    []uint64
	lodBuf  []bool
}

// ensure grows the arena to hold a treelet of n particles sampling k LOD
// picks per node.
func (a *buildArena) ensure(n, k int) {
	if cap(a.coords) < n {
		a.coords = make([]float64, n)
		a.sel = make([]float64, n)
		a.parts = make([]int, n)
	}
	if cap(a.lod) < k {
		a.lod = make([]int, k)
	}
}

// axisSlice returns the raw coordinate array of one axis, so partitioning
// reads a single float32 per particle instead of materializing a Vec3.
func axisSlice(set *particles.Set, axis geom.Axis) []float32 {
	switch axis {
	case geom.X:
		return set.X
	case geom.Y:
		return set.Y
	default:
		return set.Z
	}
}

// tightBounds returns the tight bounding box of the given particles,
// identical to folding geom.Box.Extend over their positions but touching
// each coordinate array directly.
func tightBounds(set *particles.Set, pts []int) geom.Box {
	if len(pts) == 0 {
		return geom.EmptyBox()
	}
	p0 := pts[0]
	minX, maxX := set.X[p0], set.X[p0]
	minY, maxY := set.Y[p0], set.Y[p0]
	minZ, maxZ := set.Z[p0], set.Z[p0]
	for _, p := range pts[1:] {
		if v := set.X[p]; v < minX {
			minX = v
		} else if v > maxX {
			maxX = v
		}
		if v := set.Y[p]; v < minY {
			minY = v
		} else if v > maxY {
			maxY = v
		}
		if v := set.Z[p]; v < minZ {
			minZ = v
		} else if v > maxZ {
			maxZ = v
		}
	}
	return geom.NewBox(
		geom.V3(float64(minX), float64(minY), float64(minZ)),
		geom.V3(float64(maxX), float64(maxY), float64(maxZ)))
}

// stratifiedSampleInPlace picks k evenly spaced elements (the stratum
// midpoints) from pts and rearranges pts in place so the remainder keeps
// its order at the front and the picks sit at the tail:
//
//	pts = [ rest (input order) | lod (pick order) ]
//
// The pick positions are exactly those of the allocating version this
// replaces; only the storage changed. Picks are strictly increasing (the
// stride exceeds 1 whenever k < n), so a single forward compaction never
// reads a slot it has already overwritten.
func stratifiedSampleInPlace(pts []int, k int, a *buildArena) (lod, rest []int) {
	n := len(pts)
	if k >= n {
		return pts, nil
	}
	lodBuf := a.lod[:k]
	stride := float64(n) / float64(k)
	w, next := 0, 0
	for s := 0; s < k; s++ {
		pick := int(stride*float64(s) + stride/2)
		if pick >= n {
			pick = n - 1
		}
		for i := next; i < pick; i++ {
			pts[w] = pts[i]
			w++
		}
		lodBuf[s] = pts[pick]
		next = pick + 1
	}
	for i := next; i < n; i++ {
		pts[w] = pts[i]
		w++
	}
	copy(pts[w:], lodBuf)
	return pts[w:], pts[:w]
}

// medianPartition rearranges rest so that rest[:mid] have coordinates
// strictly below pos and rest[mid:] have coordinates >= pos, with both
// sides nonempty, choosing pos at (or just above) the median coordinate
// along axis. It reports ok=false when every coordinate is identical (no
// split exists). The element order within each side follows the input
// order, keeping builds deterministic. All scratch comes from the arena;
// the call allocates nothing.
func medianPartition(set *particles.Set, rest []int, axis geom.Axis, a *buildArena) (mid int, pos float64, ok bool) {
	n := len(rest)
	coords := a.coords[:n]
	ax := axisSlice(set, axis)
	for i, p := range rest {
		coords[i] = float64(ax[p])
	}
	sel := a.sel[:n]
	copy(sel, coords)
	med := quickselect(sel, n/2)

	// Count the three classes (and the smallest above-median value) first,
	// then scatter stably into the staging buffer.
	nLess, nEq := 0, 0
	minGreater := math.Inf(1)
	for _, c := range coords {
		switch {
		case c < med:
			nLess++
		case c > med:
			if c < minGreater {
				minGreater = c
			}
		default:
			nEq++
		}
	}
	tmp := a.parts[:n]
	switch {
	case nLess > 0:
		// Split below the median value: less | equal+greater.
		pos, mid = med, nLess
		cl, ce, cg := 0, nLess, nLess+nEq
		for i, p := range rest {
			switch c := coords[i]; {
			case c < med:
				tmp[cl] = p
				cl++
			case c > med:
				tmp[cg] = p
				cg++
			default:
				tmp[ce] = p
				ce++
			}
		}
		copy(rest, tmp)
		return mid, pos, true
	case nLess+nEq < n:
		// Median is the minimum: split at the next distinct value.
		pos, mid = minGreater, nEq
		ce, cg := 0, nEq
		for i, p := range rest {
			if coords[i] > med {
				tmp[cg] = p
				cg++
			} else {
				tmp[ce] = p
				ce++
			}
		}
		copy(rest, tmp)
		return mid, pos, true
	default:
		return 0, 0, false
	}
}
