package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"libbat/internal/bat"
	"libbat/internal/fabric"
	"libbat/internal/geom"
	"libbat/internal/meta"
	"libbat/internal/pfs"
	"libbat/internal/workloads"
)

// runRanks runs body on a fabric of n ranks under a deadlock guard: a
// collective that fails to unwind every rank within the deadline fails the
// test instead of hanging the suite.
func runRanks(t *testing.T, n int, body func(c *fabric.Comm) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fabric.Run(n, body) }()
	select {
	case err := <-done:
		return err
	case <-time.After(90 * time.Second):
		t.Fatal("collective deadlocked: ranks did not unwind within 90s")
		return nil
	}
}

func fullDomain() geom.Box {
	return geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
}

// readAll pulls a whole file out of a store.
func readAll(t *testing.T, store pfs.Storage, name string) []byte {
	t.Helper()
	f, err := store.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return buf
}

// TestChaosTransientFaults runs the full 16-rank write→read pipeline over
// a storage layer that injects seeded transient faults (failed writes,
// torn writes, failed opens, failed reads) and requires the retry policy
// to mask every one of them: the write must succeed and a full-domain
// read on every rank must return the complete dataset. MaxConsecutive
// below MaxAttempts makes the outcome deterministic per seed.
func TestChaosTransientFaults(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w, err := workloads.NewUniform(16, 200, 2)
			if err != nil {
				t.Fatal(err)
			}
			osStore, err := pfs.NewOS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			faulty := pfs.NewFaulty(osStore, pfs.FaultConfig{
				Seed:           seed,
				WriteFailProb:  0.15,
				TornWriteProb:  0.05,
				OpenFailProb:   0.10,
				ReadFailProb:   0.10,
				MaxConsecutive: 2,
			})
			store := pfs.NewRetry(faulty, pfs.RetryConfig{
				MaxAttempts: 5,
				BaseDelay:   100 * time.Microsecond,
				Seed:        seed,
			})

			cfg := DefaultWriteConfig(16 * 1024)
			cfg.Timeout = 30 * time.Second
			err = runRanks(t, 16, func(c *fabric.Comm) error {
				local := w.Generate(0, c.Rank())
				_, werr := Write(c, store, "chaos", local, w.Decomp().RankBounds(c.Rank()), cfg)
				return werr
			})
			if err != nil {
				t.Fatalf("write under transient faults: %v", err)
			}

			total := 16 * 200
			err = runRanks(t, 16, func(c *fabric.Comm) error {
				got, _, rerr := Read(c, store, "chaos", fullDomain())
				if rerr != nil {
					return fmt.Errorf("rank %d: %w", c.Rank(), rerr)
				}
				if got.Len() != total {
					return fmt.Errorf("rank %d read %d particles, want %d", c.Rank(), got.Len(), total)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("read under transient faults: %v", err)
			}
			if faulty.Injected() == 0 {
				t.Error("fault injector fired zero faults; chaos test exercised nothing")
			}
			if store.Retries() == 0 {
				t.Error("retry layer recorded zero retries")
			}
			t.Logf("seed %d: %d faults injected, %d retries", seed, faulty.Injected(), store.Retries())
		})
	}
}

// TestChaosPermanentAggregatorFault makes one leaf file permanently
// unwritable. The error-agreement collective must unwind all 16 ranks —
// every rank returns an error naming the write, none deadlocks — and the
// rollback must leave no partial output behind.
func TestChaosPermanentAggregatorFault(t *testing.T) {
	w, err := workloads.NewUniform(16, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	osStore, err := pfs.NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	faulty := pfs.NewFaulty(osStore, pfs.FaultConfig{Seed: 7})
	faulty.FailWritesPermanently(LeafFileName("chaos", 0))

	cfg := DefaultWriteConfig(16 * 1024)
	cfg.Timeout = 10 * time.Second
	var mu sync.Mutex
	errs := make([]error, 16)
	runErr := runRanks(t, 16, func(c *fabric.Comm) error {
		local := w.Generate(0, c.Rank())
		_, werr := Write(c, faulty, "chaos", local, w.Decomp().RankBounds(c.Rank()), cfg)
		mu.Lock()
		errs[c.Rank()] = werr
		mu.Unlock()
		return nil
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	for r, werr := range errs {
		if werr == nil {
			t.Errorf("rank %d write returned nil, want the agreed failure", r)
		}
	}

	names, err := osStore.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("rollback left %d files behind: %v", len(names), names)
	}
}

// TestChaosBitFlipLeafPartial writes a clean dataset, flips one bit in a
// leaf file, and reads it back on 2 ranks. The flip must not kill the
// collective: every rank gets the surviving particles plus an error
// wrapping ErrPartial, with the damaged leaf identified in LeafErrors.
func TestChaosBitFlipLeafPartial(t *testing.T) {
	w, err := workloads.NewUniform(4, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	cfg := DefaultWriteConfig(8 * 1024)
	runWrite(t, w, 0, store, "chaos", cfg)

	m, err := meta.Decode(readAll(t, store, MetaFileName("chaos")))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Leaves) < 2 {
		t.Fatalf("want multiple leaves, got %d", len(m.Leaves))
	}
	victim := 0
	victimName := m.Leaves[victim].FileName
	victimCount := int(m.Leaves[victim].Count)
	total := 4 * 300

	// Flip a bit that the format checksums provably catch (open, Verify,
	// or query time); offsets that land in padding are skipped.
	buf := readAll(t, store, victimName)
	flipped := false
	for off := 16; off < len(buf); off += 101 {
		mut := append([]byte(nil), buf...)
		mut[off] ^= 1 << (off % 8)
		if detectsCorruption(mut) {
			if err := store.WriteFile(victimName, mut); err != nil {
				t.Fatal(err)
			}
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("no detectable bit flip found in the leaf file")
	}

	err = runRanks(t, 2, func(c *fabric.Comm) error {
		got, stats, rerr := Read(c, store, "chaos", fullDomain())
		if !errors.Is(rerr, ErrPartial) {
			return fmt.Errorf("rank %d: want ErrPartial, got %v", c.Rank(), rerr)
		}
		if got == nil || got.Len() != total-victimCount {
			n := -1
			if got != nil {
				n = got.Len()
			}
			return fmt.Errorf("rank %d: partial read returned %d particles, want %d",
				c.Rank(), n, total-victimCount)
		}
		if stats == nil || stats.LeafErrors[victim] == nil {
			return fmt.Errorf("rank %d: damaged leaf %d not reported in LeafErrors", c.Rank(), victim)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// detectsCorruption reports whether the BAT checksums catch the damage in
// buf at open, verify, or query time.
func detectsCorruption(buf []byte) bool {
	f, err := bat.FromBuffer(buf)
	if err != nil {
		return true
	}
	if f.Verify() != nil {
		return true
	}
	return f.Query(bat.Query{}, func(geom.Vec3, []float64) error { return nil }) != nil
}

// TestChaosMetaBitFlip damages the metadata file. Query routing needs the
// metadata on every rank, so this must fail the whole collective — every
// rank returns an error from the metadata agreement, none hangs waiting
// for queries that will never come.
func TestChaosMetaBitFlip(t *testing.T) {
	w, err := workloads.NewUniform(4, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	runWrite(t, w, 0, store, "chaos", DefaultWriteConfig(8*1024))

	buf := readAll(t, store, MetaFileName("chaos"))
	buf[len(buf)/3] ^= 0x08 // any bit: the v2 trailer checksums the whole buffer
	if err := store.WriteFile(MetaFileName("chaos"), buf); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	errs := make([]error, 4)
	runErr := runRanks(t, 4, func(c *fabric.Comm) error {
		_, _, rerr := Read(c, store, "chaos", fullDomain())
		mu.Lock()
		errs[c.Rank()] = rerr
		mu.Unlock()
		return nil
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	for r, rerr := range errs {
		if rerr == nil {
			t.Errorf("rank %d read damaged metadata without error", r)
		}
	}
}
