package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"libbat/internal/bat"
	"libbat/internal/fabric"
	"libbat/internal/geom"
	"libbat/internal/meta"
	"libbat/internal/particles"
	"libbat/internal/pfs"
	"libbat/internal/workloads"
)

// runWrite executes a collective write of a workload timestep and returns
// rank 0's stats.
func runWrite(t *testing.T, w workloads.Workload, step int, store pfs.Storage,
	base string, cfg WriteConfig) *WriteStats {
	t.Helper()
	n := w.Decomp().NumRanks()
	var mu sync.Mutex
	var rootStats *WriteStats
	err := fabric.Run(n, func(c *fabric.Comm) error {
		local := w.Generate(step, c.Rank())
		st, err := Write(c, store, base, local, w.Decomp().RankBounds(c.Rank()), cfg)
		if err != nil {
			return fmt.Errorf("rank %d: %w", c.Rank(), err)
		}
		if c.Rank() == 0 {
			mu.Lock()
			rootStats = st
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rootStats
}

func TestWriteReadRoundTripAdaptive(t *testing.T) {
	w, err := workloads.NewUniform(16, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	cfg := DefaultWriteConfig(20 * 1024) // small target -> several files
	stats := runWrite(t, w, 0, store, "step0", cfg)
	if stats.NumFiles < 2 {
		t.Fatalf("expected multiple files, got %d", stats.NumFiles)
	}
	if stats.TotalCount != 16*500 {
		t.Fatalf("TotalCount = %d", stats.TotalCount)
	}
	names, _ := store.List()
	// One file per leaf plus the metadata file.
	if len(names) != stats.NumFiles+1 {
		t.Fatalf("store has %d files, want %d", len(names), stats.NumFiles+1)
	}

	// Collective read on a different rank count (the paper supports
	// reading at different scales); verify against brute force.
	written := particles.NewSet(w.Schema(), 0)
	for r := 0; r < 16; r++ {
		written.AppendSet(w.Generate(0, r))
	}
	readers := 8
	var mu sync.Mutex
	total := 0
	err = fabric.Run(readers, func(c *fabric.Comm) error {
		// Give each reader a horizontal slab.
		lo := float64(c.Rank()) / float64(readers)
		hi := float64(c.Rank()+1) / float64(readers)
		box := geom.NewBox(geom.V3(0, 0, lo), geom.V3(1, 1, hi))
		got, _, err := Read(c, store, "step0", box)
		if err != nil {
			return fmt.Errorf("rank %d: %w", c.Rank(), err)
		}
		want := 0
		for i := 0; i < written.Len(); i++ {
			// float32 storage: compare in the same precision.
			p := written.Position(i)
			if box.Contains(geom.V3(float64(float32(p.X)), float64(float32(p.Y)), float64(float32(p.Z)))) {
				want++
			}
		}
		if got.Len() != want {
			return fmt.Errorf("rank %d: read %d particles, brute force %d", c.Rank(), got.Len(), want)
		}
		mu.Lock()
		total += got.Len()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total < written.Len() {
		t.Errorf("slab reads returned %d of %d particles", total, written.Len())
	}
}

func TestWriteReadRoundTripAUG(t *testing.T) {
	w, err := workloads.NewUniform(8, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	cfg := DefaultWriteConfig(30 * 1024)
	cfg.Strategy = AUG
	stats := runWrite(t, w, 0, store, "aug0", cfg)
	if stats.NumFiles < 2 {
		t.Fatalf("AUG produced %d files", stats.NumFiles)
	}
	// Read everything back on the same ranks.
	var mu sync.Mutex
	total := 0
	err = fabric.Run(8, func(c *fabric.Comm) error {
		got, _, err := Read(c, store, "aug0", w.Decomp().RankBounds(c.Rank()))
		if err != nil {
			return err
		}
		mu.Lock()
		total += got.Len()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank bounds share faces, so boundary particles may be returned to
	// two ranks; every particle must be seen at least once.
	if total < 8*400 {
		t.Errorf("read %d of %d particles", total, 8*400)
	}
}

func TestWriteNonuniform(t *testing.T) {
	cb, err := workloads.NewCoalBoiler(12)
	if err != nil {
		t.Fatal(err)
	}
	cb.SetGrowth(0, 10, 5000, 20000)
	store := pfs.NewMem()
	cfg := DefaultWriteConfig(50 * 1024)
	stats := runWrite(t, cb, 5, store, "cb5", cfg)
	if stats.TotalCount != workloads.TotalCount(cb, 5) {
		t.Fatalf("wrote %d particles, workload has %d", stats.TotalCount, workloads.TotalCount(cb, 5))
	}
	// Full-domain read returns everything.
	err = fabric.Run(4, func(c *fabric.Comm) error {
		if c.Rank() != 0 {
			_, _, err := Read(c, store, "cb5", geom.Box{})
			return err
		}
		got, _, err := Read(c, store, "cb5", cb.Decomp().Domain)
		if err != nil {
			return err
		}
		if int64(got.Len()) != stats.TotalCount {
			return fmt.Errorf("full read %d != written %d", got.Len(), stats.TotalCount)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteWithEmptyRanks(t *testing.T) {
	// Half the ranks own no particles; the pipeline must skip their
	// transfers and still complete.
	n := 8
	schema := particles.NewSchema("a")
	store := pfs.NewMem()
	err := fabric.Run(n, func(c *fabric.Comm) error {
		local := particles.NewSet(schema, 0)
		lo := geom.V3(float64(c.Rank()), 0, 0)
		bounds := geom.NewBox(lo, lo.Add(geom.V3(1, 1, 1)))
		if c.Rank()%2 == 0 {
			for i := 0; i < 100; i++ {
				local.Append(lo.Add(geom.V3(0.5, 0.3, 0.7)), []float64{float64(i)})
			}
		}
		_, err := Write(c, store, "sparse", local, bounds, DefaultWriteConfig(1<<20))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	m := openMeta(t, store, "sparse")
	if m.TotalCount() != 400 {
		t.Errorf("TotalCount = %d", m.TotalCount())
	}
}

func TestWriteAllEmpty(t *testing.T) {
	schema := particles.NewSchema("a")
	store := pfs.NewMem()
	err := fabric.Run(4, func(c *fabric.Comm) error {
		local := particles.NewSet(schema, 0)
		bounds := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
		_, err := Write(c, store, "empty", local, bounds, DefaultWriteConfig(1<<20))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reading an empty dataset works and returns nothing.
	err = fabric.Run(4, func(c *fabric.Comm) error {
		got, _, err := Read(c, store, "empty", geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1)))
		if err != nil {
			return err
		}
		if got.Len() != 0 {
			return fmt.Errorf("empty dataset returned %d particles", got.Len())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadFewerRanksThanFiles(t *testing.T) {
	w, err := workloads.NewUniform(16, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	cfg := DefaultWriteConfig(10 * 1024) // many small files
	stats := runWrite(t, w, 0, store, "many", cfg)
	if stats.NumFiles <= 2 {
		t.Fatalf("want many files, got %d", stats.NumFiles)
	}
	// Read with 2 ranks (fewer than files): round-robin assignment.
	var mu sync.Mutex
	total := 0
	err = fabric.Run(2, func(c *fabric.Comm) error {
		lo := float64(c.Rank()) * 0.5
		box := geom.NewBox(geom.V3(lo, 0, 0), geom.V3(lo+0.5, 1, 1))
		got, st, err := Read(c, store, "many", box)
		if err != nil {
			return err
		}
		if st.NumFiles == 0 {
			return fmt.Errorf("rank %d served no files", c.Rank())
		}
		mu.Lock()
		total += got.Len()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total < 16*300 {
		t.Errorf("read %d of %d", total, 16*300)
	}
}

func TestReadAggregatorAssignment(t *testing.T) {
	// More ranks than files: evenly spread, distinct.
	seen := map[int]bool{}
	for li := 0; li < 8; li++ {
		r := ReadAggregator(li, 8, 64)
		if seen[r] {
			t.Errorf("reader %d assigned twice", r)
		}
		seen[r] = true
		if r < 0 || r >= 64 {
			t.Errorf("reader %d out of range", r)
		}
	}
	// Fewer ranks than files: round robin covers all ranks.
	counts := map[int]int{}
	for li := 0; li < 64; li++ {
		counts[ReadAggregator(li, 64, 8)]++
	}
	for r := 0; r < 8; r++ {
		if counts[r] != 8 {
			t.Errorf("rank %d assigned %d files, want 8", r, counts[r])
		}
	}
}

func TestWriteStatsPopulated(t *testing.T) {
	w, err := workloads.NewUniform(8, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	stats := runWrite(t, w, 0, store, "stats", DefaultWriteConfig(40*1024))
	if stats.Total() <= 0 {
		t.Error("zero total time")
	}
	if stats.LeafSizes.NumFiles != stats.NumFiles {
		t.Errorf("leaf stats files %d != %d", stats.LeafSizes.NumFiles, stats.NumFiles)
	}
	if stats.LeafSizes.MaxB <= 0 {
		t.Error("leaf size stats empty")
	}
}

func TestLeafFilesAreValidBATs(t *testing.T) {
	w, err := workloads.NewUniform(8, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	runWrite(t, w, 0, store, "valid", DefaultWriteConfig(30*1024))
	m := openMeta(t, store, "valid")
	var total int64
	for _, l := range m.Leaves {
		fh, err := store.Open(l.FileName)
		if err != nil {
			t.Fatal(err)
		}
		f, err := bat.Decode(fh, fh.Size())
		if err != nil {
			t.Fatalf("leaf %s: %v", l.FileName, err)
		}
		if int64(f.NumParticles) != l.Count {
			t.Errorf("leaf %s: file has %d particles, metadata says %d", l.FileName, f.NumParticles, l.Count)
		}
		total += int64(f.NumParticles)
		fh.Close()
	}
	if total != 8*500 {
		t.Errorf("leaves hold %d particles, want %d", total, 8*500)
	}
}

func TestMetadataQueriesAfterWrite(t *testing.T) {
	cb, err := workloads.NewCoalBoiler(12)
	if err != nil {
		t.Fatal(err)
	}
	cb.SetGrowth(0, 10, 8000, 8000)
	store := pfs.NewMem()
	runWrite(t, cb, 0, store, "q", DefaultWriteConfig(20*1024))
	m := openMeta(t, store, "q")
	// Attribute filter on temperature: high temperatures live low in the
	// boiler, so a filter should prune some leaves if there are several.
	all := m.SelectLeaves(nil, nil)
	hot := m.SelectLeaves(nil, []meta.AttrFilter{{Attr: 0, Min: 1700, Max: 2000}})
	if len(all) == 0 {
		t.Fatal("no leaves")
	}
	if len(hot) > len(all) {
		t.Error("filter grew the selection")
	}
	t.Logf("leaves: %d total, %d after temp filter", len(all), len(hot))
}

func openMeta(t *testing.T, store pfs.Storage, base string) *meta.Meta {
	t.Helper()
	m, err := readMeta(context.Background(), store, MetaFileName(base))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStrategyString(t *testing.T) {
	if Adaptive.String() != "adaptive" || AUG.String() != "aug" {
		t.Error("strategy names wrong")
	}
}

func TestFileNames(t *testing.T) {
	if LeafFileName("base", 7) != "base.l00007.bat" {
		t.Errorf("leaf name = %q", LeafFileName("base", 7))
	}
	if MetaFileName("base") != "base.batm" {
		t.Errorf("meta name = %q", MetaFileName("base"))
	}
}

func TestWriteToOSStorage(t *testing.T) {
	w, err := workloads.NewUniform(4, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	store, err := pfs.NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stats := runWrite(t, w, 0, store, "disk", DefaultWriteConfig(1<<20))
	if stats.TotalCount != 1200 {
		t.Fatalf("wrote %d", stats.TotalCount)
	}
	err = fabric.Run(4, func(c *fabric.Comm) error {
		got, _, err := Read(c, store, "disk", w.Decomp().RankBounds(c.Rank()))
		if err != nil {
			return err
		}
		if got.Len() == 0 {
			return fmt.Errorf("rank %d read nothing", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCustomLayout(t *testing.T) {
	// The §VII extension point: plug a non-BAT layout into the adaptive
	// aggregation pipeline. The raw layout writes flat arrays; metadata
	// (counts, ranges, bitmaps) must still be correct.
	w, err := workloads.NewUniform(8, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	cfg := DefaultWriteConfig(30 * 1024)
	cfg.Layout = RawLayout{}
	stats := runWrite(t, w, 0, store, "raw", cfg)
	if stats.TotalCount != 8*400 {
		t.Fatalf("wrote %d", stats.TotalCount)
	}
	m := openMeta(t, store, "raw")
	if m.TotalCount() != 8*400 {
		t.Errorf("metadata count = %d", m.TotalCount())
	}
	// Leaf files are raw marshaled particle sets, readable with the raw
	// schema, and their sizes match the metadata counts.
	var total int
	for _, l := range m.Leaves {
		fh, err := store.Open(l.FileName)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, fh.Size())
		fh.ReadAt(buf, 0)
		fh.Close()
		set, err := particles.Unmarshal(buf, w.Schema())
		if err != nil {
			t.Fatalf("leaf %s not a raw set: %v", l.FileName, err)
		}
		if int64(set.Len()) != l.Count {
			t.Errorf("leaf %s: %d particles vs metadata %d", l.FileName, set.Len(), l.Count)
		}
		total += set.Len()
	}
	if total != 8*400 {
		t.Errorf("raw leaves hold %d", total)
	}
	// Metadata attribute pruning still works off the custom layout's
	// reported bitmaps.
	if got := m.SelectLeaves(nil, []meta.AttrFilter{{Attr: 0, Min: 1e9, Max: 2e9}}); len(got) != 0 {
		t.Errorf("out-of-range filter selected %v", got)
	}
}
