package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"libbat/internal/bat"
	"libbat/internal/fabric"
	"libbat/internal/geom"
	"libbat/internal/leakcheck"
	"libbat/internal/pfs"
	"libbat/internal/workloads"
)

// TestReadQueryCtxStalledLeaf: a collective read where one leaf file's
// reads stall indefinitely must complete the protocol on every rank within
// the ranks' deadlines, returning the healthy leaves' particles together
// with ErrPartial — and after the stall clears, the same store serves a
// clean, complete read.
func TestReadQueryCtxStalledLeaf(t *testing.T) {
	leakcheck.Check(t)
	w, err := workloads.NewUniform(4, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	mem := pfs.NewMem()
	stats := runWrite(t, w, 0, mem, "step0", DefaultWriteConfig(16*1024))
	if stats.NumFiles < 2 {
		t.Fatalf("need multiple leaf files for a partial read, got %d", stats.NumFiles)
	}
	total := int(stats.TotalCount)

	fau := pfs.NewFaulty(mem, pfs.FaultConfig{})
	fau.StallReads(LeafFileName("step0", 0))

	whole := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	var mu sync.Mutex
	var partial int
	start := time.Now()
	err = fabric.Run(2, func(c *fabric.Comm) error {
		ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
		defer cancel()
		got, st, err := ReadQueryCtx(ctx, c, fau, "step0", bat.Query{Bounds: &whole})
		if !errors.Is(err, ErrPartial) {
			return fmt.Errorf("rank %d: err = %v, want ErrPartial", c.Rank(), err)
		}
		if got == nil || got.Len() == 0 || got.Len() >= total {
			n := -1
			if got != nil {
				n = got.Len()
			}
			return fmt.Errorf("rank %d: partial read returned %d of %d particles", c.Rank(), n, total)
		}
		if len(st.LeafErrors) == 0 {
			return fmt.Errorf("rank %d: ErrPartial with no LeafErrors", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("stalled collective read took %v, want bounded by the 400ms deadlines", elapsed)
	}

	// The "mount" recovers: the stalled leaf was never cached in an error
	// state, so a fresh read sees every particle.
	fau.ReleaseStalls()
	err = fabric.Run(2, func(c *fabric.Comm) error {
		got, _, err := ReadQueryCtx(context.Background(), c, fau, "step0", bat.Query{Bounds: &whole})
		if err != nil {
			return fmt.Errorf("rank %d: post-release read: %w", c.Rank(), err)
		}
		mu.Lock()
		partial += got.Len()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both ranks queried the whole domain, so together they see 2x total.
	if partial != 2*total {
		t.Fatalf("post-release reads returned %d particles, want %d", partial, 2*total)
	}
}

// TestReadQueryCtxCanceledBeforeMeta: a context that is already dead when
// the collective starts fails the whole read (metadata agreement), not
// just one rank — and does so promptly.
func TestReadQueryCtxCanceledBeforeMeta(t *testing.T) {
	leakcheck.Check(t)
	w, err := workloads.NewUniform(2, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	mem := pfs.NewMem()
	runWrite(t, w, 0, mem, "step0", DefaultWriteConfig(64*1024))

	whole := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = fabric.Run(2, func(c *fabric.Comm) error {
		_, _, err := ReadQueryCtx(ctx, c, mem, "step0", bat.Query{Bounds: &whole})
		if err == nil {
			return fmt.Errorf("rank %d: read under dead context succeeded", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
