package core

import (
	"errors"
	"fmt"
	"time"

	"libbat/internal/aggtree"
	"libbat/internal/aug"
	"libbat/internal/bat"
	"libbat/internal/fabric"
	"libbat/internal/geom"
	"libbat/internal/meta"
	"libbat/internal/obs"
	"libbat/internal/particles"
	"libbat/internal/pfs"
)

// Strategy selects the aggregation algorithm.
type Strategy int

// Aggregation strategies: the paper's adaptive tree and the AUG baseline
// of Kumar et al. [27], implemented within the library for a direct
// algorithmic comparison (§VI-A.2).
const (
	Adaptive Strategy = iota
	AUG
)

func (s Strategy) String() string {
	if s == AUG {
		return "aug"
	}
	return "adaptive"
}

// PlanMode selects how phase (a) builds the aggregation plan.
type PlanMode int

const (
	// PlanAuto plans centrally below the threshold world size and
	// distributedly above it (adaptive strategy only; the AUG baseline
	// always plans centrally).
	PlanAuto PlanMode = iota
	// PlanCentralized is the paper's original design: gather all rank
	// infos on rank 0, build there, scatter assignments. Kept as the
	// small-world fast path and the oracle the distributed plan is tested
	// against.
	PlanCentralized
	// PlanDistributed builds the identical plan collectively via
	// aggtree.DistributedBuild; no rank materializes all P rank infos.
	PlanDistributed
)

func (m PlanMode) String() string {
	switch m {
	case PlanCentralized:
		return "centralized"
	case PlanDistributed:
		return "distributed"
	}
	return "auto"
}

// ParsePlanMode parses a -plan CLI value.
func ParsePlanMode(s string) (PlanMode, error) {
	switch s {
	case "auto", "":
		return PlanAuto, nil
	case "centralized":
		return PlanCentralized, nil
	case "distributed":
		return PlanDistributed, nil
	}
	return PlanAuto, fmt.Errorf("core: unknown plan mode %q (want auto, centralized, or distributed)", s)
}

// DefaultDistPlanThreshold is the world size at which PlanAuto switches to
// distributed planning: below it the centralized plan's O(P) costs are
// cheaper than the distributed protocol's collective rounds (see
// perf.ModelCentralizedPlan / ModelDistributedPlan for the crossover).
const DefaultDistPlanThreshold = 512

func (m PlanMode) resolve(s Strategy, size, threshold int) PlanMode {
	if m != PlanAuto {
		return m
	}
	if threshold <= 0 {
		threshold = DefaultDistPlanThreshold
	}
	if s == Adaptive && size >= threshold {
		return PlanDistributed
	}
	return PlanCentralized
}

// WriteConfig configures a collective write.
type WriteConfig struct {
	// TargetFileSize is the tunable aggregation granularity (bytes).
	TargetFileSize int64
	// Strategy picks adaptive (default) or AUG aggregation.
	Strategy Strategy
	// Plan selects centralized or distributed planning (default PlanAuto).
	Plan PlanMode
	// PlanThreshold overrides the PlanAuto world-size switchover
	// (0 = DefaultDistPlanThreshold).
	PlanThreshold int
	// Tree holds the adaptive tree options; TargetFileSize and
	// BytesPerParticle are filled in from this config and the schema.
	Tree aggtree.Config
	// BAT holds the layout build options.
	BAT bat.BuildConfig
	// Layout overrides the leaf file format (nil = the BAT). See the
	// Layout interface for the contract and caveats.
	Layout Layout
	// Timeout bounds every blocking wait on a peer message (an
	// aggregator waiting for a sender's particles, rank 0 waiting for a
	// leaf report), converting a vanished peer into a fabric.ErrTimeout
	// instead of a deadlock. Zero means wait forever.
	Timeout time.Duration
}

// DefaultWriteConfig returns the paper's evaluation configuration for the
// given target file size.
func DefaultWriteConfig(targetFileSize int64) WriteConfig {
	return WriteConfig{
		TargetFileSize: targetFileSize,
		Strategy:       Adaptive,
		Tree:           aggtree.DefaultConfig(targetFileSize, 1), // bpp fixed at write time
		BAT:            bat.DefaultBuildConfig(),
		Timeout:        30 * time.Second,
	}
}

// WriteStats reports what one rank observed during a collective write.
// Rank 0's copy includes the plan-wide fields (NumFiles, leaf stats).
type WriteStats struct {
	// Per-phase wall-clock time on this rank.
	TreeBuild     time.Duration
	GatherScatter time.Duration
	Transfer      time.Duration
	BATBuild      time.Duration
	FileWrite     time.Duration
	Metadata      time.Duration

	// Plan-wide information (valid on rank 0).
	NumFiles   int
	TotalCount int64
	LeafSizes  aggtree.SizeStats
	// PhaseMax holds the per-phase maximum across all ranks (valid on
	// rank 0) — the critical-path view the paper's breakdown figures
	// plot, since the slowest rank gates each phase.
	PhaseMax *PhaseTimes
}

// PhaseTimes is one rank's (or the critical-path) phase timing vector.
type PhaseTimes struct {
	TreeBuild     time.Duration
	GatherScatter time.Duration
	Transfer      time.Duration
	BATBuild      time.Duration
	FileWrite     time.Duration
	Metadata      time.Duration
}

// Total sums the phases.
func (p PhaseTimes) Total() time.Duration {
	return p.TreeBuild + p.GatherScatter + p.Transfer + p.BATBuild + p.FileWrite + p.Metadata
}

func (s *WriteStats) phases() PhaseTimes {
	return PhaseTimes{
		TreeBuild:     s.TreeBuild,
		GatherScatter: s.GatherScatter,
		Transfer:      s.Transfer,
		BATBuild:      s.BATBuild,
		FileWrite:     s.FileWrite,
		Metadata:      s.Metadata,
	}
}

// Total returns the rank's end-to-end write time.
func (s *WriteStats) Total() time.Duration {
	return s.TreeBuild + s.GatherScatter + s.Transfer + s.BATBuild + s.FileWrite + s.Metadata
}

// LeafFileName names the BAT file of one aggregation leaf.
func LeafFileName(base string, leaf int) string {
	return fmt.Sprintf("%s.l%05d.bat", base, leaf)
}

// MetaFileName names the top-level metadata file.
func MetaFileName(base string) string { return base + ".batm" }

// Write performs the paper's spatially aware adaptive two-phase write. It
// is collective: every rank of the fabric must call it with its local
// particles (which may be empty) and its spatial bounds. Files are written
// to store under base; rank 0 additionally writes the top-level metadata.
//
// Failures anywhere in the pipeline (a bad plan, a failed leaf build or
// file write, a vanished peer) complete the collective protocol before
// surfacing, so no rank is left deadlocked. The pipeline ends with an
// error-agreement collective: if any rank failed, every rank returns an
// error naming the failed ranks, and files written for the poisoned
// dataset (leaf files, metadata) are removed so no partial dataset stays
// visible. cfg.Timeout bounds each blocking peer wait.
func Write(c *fabric.Comm, store pfs.Storage, base string, local *particles.Set,
	bounds geom.Box, cfg WriteConfig) (*WriteStats, error) {

	stats := &WriteStats{}
	schema := local.Schema
	bpp := schema.BytesPerParticle()

	col := c.Observer()
	whole := col.Start(c.Rank(), "write")
	defer whole.End()

	// Phase a: build the aggregation plan (Figure 1a) — either centrally
	// on rank 0 (gather all infos, build, scatter assignments) or via the
	// distributed splitter-sampling protocol in which no rank ever holds
	// all P rank infos (DESIGN §15). Both modes produce the identical
	// plan; centralized remains the small-world fast path and the oracle.
	mode := cfg.Plan.resolve(cfg.Strategy, c.Size(), cfg.PlanThreshold)
	if mode == PlanDistributed && cfg.Strategy != Adaptive {
		// Every rank evaluates this identically before any message is
		// exchanged, so returning here keeps the collective aligned.
		return nil, fmt.Errorf("core: distributed planning supports only the adaptive strategy")
	}
	start := time.Now()
	var asg assignMsg
	var asgErr error // rank failed to obtain its assignment; skip the body
	var tree *aggtree.Tree
	var leaves []aggtree.Leaf
	var dplan *aggtree.DistPlan
	if mode == PlanDistributed {
		planSp := col.Start(c.Rank(), "write.dist-plan")
		tcfg := cfg.Tree
		tcfg.TargetFileSize = cfg.TargetFileSize
		tcfg.BytesPerParticle = bpp
		var err error
		dplan, err = aggtree.DistributedBuild(c,
			aggtree.RankInfo{Rank: c.Rank(), Bounds: bounds, Count: int64(local.Len())},
			aggtree.DistConfig{Config: tcfg})
		planSp.End()
		if err != nil {
			// DistributedBuild fails only on configuration validation,
			// which every rank evaluates identically before communicating:
			// all ranks return the same error and no abort scatter is
			// needed.
			return nil, err
		}
		stats.TreeBuild = time.Since(start)
		stats.NumFiles = dplan.NumLeaves
		stats.TotalCount = dplan.TotalCount
		asg.Aggregator = dplan.OwnAggregator
		for _, al := range dplan.AggLeaves {
			asg.Leaves = append(asg.Leaves, leafAssign{
				Leaf: al.Index, Bounds: al.Bounds,
				Senders: al.Senders, Counts: al.Counts,
			})
		}
	} else if c.Rank() == 0 {
		gatherSp := col.Start(c.Rank(), "write.gather")
		infos := c.Gather(0, encode(infoMsg{Count: int64(local.Len()), Bounds: bounds}))
		gatherSp.End()
		parts, planErr := func() ([][]byte, error) {
			ranks := make([]aggtree.RankInfo, c.Size())
			for r, raw := range infos {
				var im infoMsg
				if err := decode(raw, &im); err != nil {
					return nil, fmt.Errorf("core: decoding rank %d info: %w", r, err)
				}
				ranks[r] = aggtree.RankInfo{Rank: r, Bounds: im.Bounds, Count: im.Count}
			}
			treeStart := time.Now()
			buildSp := col.Start(c.Rank(), "write.tree-build")
			var err error
			switch cfg.Strategy {
			case AUG:
				leaves, err = aug.Build(ranks, aug.Config{
					TargetFileSize:   cfg.TargetFileSize,
					BytesPerParticle: bpp,
				})
			default:
				tcfg := cfg.Tree
				tcfg.TargetFileSize = cfg.TargetFileSize
				tcfg.BytesPerParticle = bpp
				tree, err = aggtree.Build(ranks, tcfg)
				if tree != nil {
					leaves = tree.Leaves
				}
			}
			buildSp.End()
			if err != nil {
				return nil, err
			}
			stats.TreeBuild = time.Since(treeStart)
			rankAgg := aggtree.AssignAggregators(leaves, c.Size())
			if tree != nil {
				tree.Leaves = leaves
			}
			stats.NumFiles = len(leaves)
			stats.LeafSizes = aggtree.LeafSizeStats(leaves, bpp)
			for _, l := range leaves {
				stats.TotalCount += l.Count
			}
			// Build per-rank assignment messages.
			msgs := make([]assignMsg, c.Size())
			for r := range msgs {
				msgs[r].Aggregator = rankAgg[r]
			}
			for li, l := range leaves {
				la := leafAssign{Leaf: li, Bounds: l.Bounds}
				for _, r := range l.Ranks {
					la.Senders = append(la.Senders, r)
					la.Counts = append(la.Counts, ranks[r].Count)
				}
				msgs[l.Aggregator].Leaves = append(msgs[l.Aggregator].Leaves, la)
			}
			parts := make([][]byte, c.Size())
			for r := range parts {
				parts[r] = encode(msgs[r])
			}
			return parts, nil
		}()
		if planErr != nil {
			// Planning failed before anything was scattered: tell every
			// rank to abort collectively. Every rank takes this barrier.
			abort := encode(assignMsg{Abort: planErr.Error()})
			parts = make([][]byte, c.Size())
			for r := range parts {
				parts[r] = abort
			}
			c.Scatterv(0, parts)
			c.Barrier()
			return nil, planErr
		}
		scatterSp := col.Start(c.Rank(), "write.scatter")
		err := decode(c.Scatterv(0, parts), &asg)
		scatterSp.End()
		if err != nil {
			asgErr = fmt.Errorf("core: decoding assignment: %w", err)
		}
	} else {
		gatherSp := col.Start(c.Rank(), "write.gather")
		c.Gather(0, encode(infoMsg{Count: int64(local.Len()), Bounds: bounds}))
		gatherSp.End()
		scatterSp := col.Start(c.Rank(), "write.scatter")
		err := decode(c.Scatterv(0, nil), &asg)
		scatterSp.End()
		if err != nil {
			// The assignment is unusable; this rank sits out the data
			// phases and lets the error agreement unwind everyone. Peers
			// waiting on its particles hit cfg.Timeout instead of hanging.
			asgErr = fmt.Errorf("core: rank %d decoding assignment: %w", c.Rank(), err)
		} else if asg.Abort != "" {
			c.Barrier()
			return nil, fmt.Errorf("core: write aborted by rank 0: %s", asg.Abort)
		}
	}
	stats.GatherScatter = time.Since(start) - stats.TreeBuild

	var written []string
	bodyErr := asgErr
	if asgErr == nil {
		written, bodyErr = writeBody(c, store, base, local, cfg, asg, schema, stats)
	}
	localErr := bodyErr

	if dplan != nil {
		// Distributed planning never materialized the full tree; the
		// metadata file is the first consumer that needs it, and rank 0
		// already pays O(files) in this phase, so the subtree fragments
		// are stitched together only now.
		asmStart := time.Now()
		asmSp := col.Start(c.Rank(), "write.assemble-tree")
		at, err := dplan.AssembleTree(c)
		asmSp.End()
		stats.Metadata += time.Since(asmStart)
		if c.Rank() == 0 {
			if err != nil {
				if localErr == nil {
					localErr = err
				}
			} else {
				tree = at
				leaves = at.Leaves
				stats.LeafSizes = aggtree.LeafSizeStats(leaves, bpp)
			}
		}
	}

	// Gather every rank's phase timings so rank 0 can report the
	// critical-path breakdown (the view Figures 6/10/12 plot).
	phaseGather := c.Gather(0, encode(stats.phases()))

	if c.Rank() == 0 {
		pm := &PhaseTimes{}
		for r, raw := range phaseGather {
			var pt PhaseTimes
			if err := decode(raw, &pt); err != nil {
				if localErr == nil {
					localErr = fmt.Errorf("core: decoding rank %d timings: %w", r, err)
				}
				continue
			}
			pm.TreeBuild = max(pm.TreeBuild, pt.TreeBuild)
			pm.GatherScatter = max(pm.GatherScatter, pt.GatherScatter)
			pm.Transfer = max(pm.Transfer, pt.Transfer)
			pm.BATBuild = max(pm.BATBuild, pt.BATBuild)
			pm.FileWrite = max(pm.FileWrite, pt.FileWrite)
			pm.Metadata = max(pm.Metadata, pt.Metadata)
		}
		stats.PhaseMax = pm

		// Phase d: gather the aggregators' reports and write the
		// top-level metadata (Figure 1d). Error-marked reports poison the
		// write but are still collected so the collective completes; a
		// report that never arrives (its aggregator died) surfaces as a
		// timeout rather than a hang.
		metaStart := time.Now()
		metaSp := col.Start(c.Rank(), "write.metadata")
		// The report count is known even if distributed tree assembly
		// failed, so the aggregators' buffered reports are always drained
		// and cannot leak into a later collective on the same fabric.
		numReports := len(leaves)
		if dplan != nil {
			numReports = dplan.NumLeaves
		}
		reports := make([]meta.LeafReport, 0, numReports)
		var leafErr error
		for received := 0; received < numReports; received++ {
			raw, _, err := c.RecvTimeout(fabric.AnySource, tagReport, cfg.Timeout)
			if err != nil {
				leafErr = fmt.Errorf("core: collecting leaf reports (%d of %d): %w",
					received, numReports, err)
				break
			}
			var rm reportMsg
			if err := decode(raw, &rm); err != nil {
				leafErr = fmt.Errorf("core: decoding report: %w", err)
				continue
			}
			if rm.Err != "" {
				if leafErr == nil {
					leafErr = fmt.Errorf("core: leaf %d failed: %s", rm.Leaf, rm.Err)
				}
				continue
			}
			reports = append(reports, rm.toMeta())
		}
		if leafErr == nil && localErr == nil {
			m, err := meta.Build(tree, leaves, schema, reports)
			if err == nil && cfg.BAT.Compress && cfg.Layout == nil {
				// Mirror the leaf files' codec declaration into the
				// top-level metadata so tools see the configuration
				// without opening a leaf.
				m.Compression = &meta.CompressionMeta{
					ErrorBounds: cfg.BAT.AttrBounds(schema.NumAttrs()),
					LODScale:    cfg.BAT.EffectiveLODScale(),
				}
			}
			if err == nil {
				err = store.WriteFile(MetaFileName(base), m.Encode())
			}
			leafErr = err
		}
		stats.Metadata += time.Since(metaStart)
		metaSp.End()
		pm.Metadata = max(pm.Metadata, stats.Metadata)
		if localErr == nil {
			localErr = leafErr
		}
	}

	// Error agreement in place of a completion barrier: every rank learns
	// whether the write succeeded everywhere. On failure, each rank removes
	// the leaf files it wrote (and rank 0 the metadata), so a poisoned
	// write leaves no partial dataset behind.
	if collErr := agreeOnError(c, "write", localErr); collErr != nil {
		// Cleanup failures don't change the outcome (the write already
		// failed) but they do mean stray files survive, so they ride
		// along on the returned error instead of vanishing.
		for _, name := range written {
			if err := store.Remove(name); err != nil {
				collErr = errors.Join(collErr, fmt.Errorf("core: removing %s: %w", name, err))
			}
		}
		if c.Rank() == 0 {
			if err := store.Remove(MetaFileName(base)); err != nil {
				collErr = errors.Join(collErr, fmt.Errorf("core: removing %s: %w", MetaFileName(base), err))
			}
		}
		return nil, collErr
	}
	return stats, nil
}

// writeBody runs phases b-c on every rank: send local data to the
// assigned aggregator, and, when aggregating, receive each leaf's data,
// build its BAT, write the file, and report to rank 0. It returns the
// names of the leaf files this rank wrote, so a failed collective can
// remove them.
func writeBody(c *fabric.Comm, store pfs.Storage, base string, local *particles.Set,
	cfg WriteConfig, asg assignMsg, schema particles.Schema, stats *WriteStats) ([]string, error) {

	// Phase b: nonblocking send of local data to the aggregator
	// (Figure 1b). Ranks without particles skip the transfer.
	xferStart := time.Now()
	if local.Len() > 0 {
		if asg.Aggregator < 0 {
			return nil, fmt.Errorf("core: rank %d has %d particles but no aggregator", c.Rank(), local.Len())
		}
		if asg.Aggregator != c.Rank() {
			c.Isend(asg.Aggregator, tagData, local.Marshal())
		}
	}

	layout := cfg.Layout
	if layout == nil {
		bcfg := cfg.BAT
		if bcfg.Obs == nil {
			bcfg.Obs = c.Observer()
		}
		// Label the build's bat_build_* spans with the aggregator's rank
		// so the per-rank trace shows which aggregator spent the time.
		bcfg.ObsRank = c.Rank()
		layout = batLayout{cfg: bcfg}
	}

	// Phase c: aggregate each assigned leaf (Figure 1c). No leaf
	// subcommunicators exist — an aggregator may serve a leaf it is not a
	// member of, so transfers are plain point-to-point (§III-B). A failed
	// leaf sends an error report so rank 0's collection (and the final
	// barrier) still complete.
	var firstErr error
	var written []string
	for _, la := range asg.Leaves {
		report, err := aggregateLeaf(c, store, base, local, layout, la, schema, stats,
			&xferStart, cfg.Timeout)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			report = reportMsg{Leaf: la.Leaf, Err: err.Error()}
		} else {
			written = append(written, report.FileName)
		}
		c.Isend(0, tagReport, encode(report))
	}
	if len(asg.Leaves) == 0 {
		stats.Transfer += time.Since(xferStart)
	}
	return written, firstErr
}

// aggregateLeaf receives one leaf's particles, builds its layout, and
// writes the file, returning the report for rank 0. Incoming transfers are
// always drained, even on failure, so no stray messages survive the call;
// a sender that never delivers (it died before the data phase) turns into
// a timeout error after cfg.Timeout instead of hanging the aggregator.
func aggregateLeaf(c *fabric.Comm, store pfs.Storage, base string, local *particles.Set,
	layout Layout, la leafAssign, schema particles.Schema, stats *WriteStats,
	xferStart *time.Time, timeout time.Duration) (reportMsg, error) {

	col := c.Observer()
	var total int64
	for _, n := range la.Counts {
		total += n
	}
	xferSp := col.Start(c.Rank(), "write.exchange")
	combined := particles.NewSet(schema, int(total))
	reqs := make([]*fabric.Request, 0, len(la.Senders))
	for _, s := range la.Senders {
		if s == c.Rank() {
			combined.AppendSet(local)
			continue
		}
		reqs = append(reqs, c.Irecv(s, tagData))
	}
	var recvErr error
	var aggBytes int64
	for _, r := range reqs {
		raw, _, err := r.WaitTimeout(timeout)
		if err != nil {
			recvErr = fmt.Errorf("core: leaf %d: %w", la.Leaf, err)
			continue
		}
		aggBytes += int64(len(raw))
		part, err := particles.Unmarshal(raw, schema)
		if err != nil {
			recvErr = fmt.Errorf("core: leaf %d: %w", la.Leaf, err)
			continue
		}
		combined.AppendSet(part)
	}
	xferSp.End()
	if recvErr != nil {
		return reportMsg{}, recvErr
	}
	if int64(combined.Len()) != total {
		return reportMsg{}, fmt.Errorf("core: leaf %d received %d particles, expected %d",
			la.Leaf, combined.Len(), total)
	}
	stats.Transfer += time.Since(*xferStart)
	if col != nil {
		r := obs.Rank(c.Rank())
		col.Add("core_aggregated_bytes_total", aggBytes, r)
		col.Add("core_aggregated_particles_total", int64(combined.Len()), r)
	}

	// Build the leaf layout (the BAT by default) and write the file.
	batStart := time.Now()
	buildSp := col.Start(c.Rank(), "write.bat-build")
	built, err := layout.Build(combined, la.Bounds)
	buildSp.End()
	if err != nil {
		return reportMsg{}, fmt.Errorf("core: leaf %d %s build: %w", la.Leaf, layout.Name(), err)
	}
	stats.BATBuild += time.Since(batStart)

	writeStart := time.Now()
	writeSp := col.Start(c.Rank(), "write.file-write")
	name := LeafFileName(base, la.Leaf)
	err = store.WriteFile(name, built.Buf)
	writeSp.End()
	if err != nil {
		return reportMsg{}, fmt.Errorf("core: writing %s: %w", name, err)
	}
	stats.FileWrite += time.Since(writeStart)
	if col != nil {
		col.Add("core_leaves_written_total", 1, obs.Rank(c.Rank()))
	}
	*xferStart = time.Now()

	return reportMsg{
		Leaf:        la.Leaf,
		FileName:    name,
		Count:       int64(combined.Len()),
		Bounds:      la.Bounds,
		LocalRanges: built.LocalRanges,
		RootBitmaps: built.RootBitmaps,
	}, nil
}
