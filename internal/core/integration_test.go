package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"libbat/internal/bat"
	"libbat/internal/fabric"
	"libbat/internal/geom"
	"libbat/internal/particles"
	"libbat/internal/pfs"
	"libbat/internal/workloads"
)

// TestTimeSeriesWriteRead exercises the paper's actual usage pattern: a
// simulation writing many timesteps into one store, each independently
// readable.
func TestTimeSeriesWriteRead(t *testing.T) {
	cb, err := workloads.NewCoalBoiler(8)
	if err != nil {
		t.Fatal(err)
	}
	cb.SetGrowth(0, 20, 4000, 16000)
	store := pfs.NewMem()
	steps := []int{0, 10, 20}
	for _, step := range steps {
		base := fmt.Sprintf("ts%04d", step)
		runWrite(t, cb, step, store, base, DefaultWriteConfig(40*1024))
	}
	// Each step remains readable with the right count; later writes must
	// not disturb earlier ones.
	for _, step := range steps {
		base := fmt.Sprintf("ts%04d", step)
		m := openMeta(t, store, base)
		if want := workloads.TotalCount(cb, step); m.TotalCount() != want {
			t.Errorf("step %d: metadata count %d != %d", step, m.TotalCount(), want)
		}
	}
	// Counts grew over the series.
	if openMeta(t, store, "ts0000").TotalCount() >= openMeta(t, store, "ts0020").TotalCount() {
		t.Error("time series did not grow")
	}
}

// TestCorruptLeafFile ensures a damaged leaf file surfaces as an error,
// never a panic or silent wrong data.
func TestCorruptLeafFile(t *testing.T) {
	w, err := workloads.NewUniform(4, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	runWrite(t, w, 0, store, "c", DefaultWriteConfig(20*1024))
	m := openMeta(t, store, "c")
	victim := m.Leaves[0].FileName

	corrupt := func(mutate func([]byte) []byte) error {
		f, err := store.Open(victim)
		if err != nil {
			return err
		}
		buf := make([]byte, f.Size())
		f.ReadAt(buf, 0)
		f.Close()
		if err := store.WriteFile(victim, mutate(buf)); err != nil {
			return err
		}
		// A full read must now fail.
		return fabric.Run(2, func(c *fabric.Comm) error {
			_, _, err := Read(c, store, "c", w.Decomp().Domain)
			if err == nil {
				return fmt.Errorf("read of corrupted dataset succeeded")
			}
			return nil
		})
	}
	// Truncation.
	if err := corrupt(func(b []byte) []byte { return b[:len(b)/3] }); err != nil {
		t.Errorf("truncated leaf: %v", err)
	}
	// Bad magic.
	if err := corrupt(func(b []byte) []byte {
		b = append([]byte(nil), b...)
		copy(b, "JUNK")
		return b
	}); err != nil {
		t.Errorf("bad magic: %v", err)
	}
	// Missing file entirely.
	if err := corrupt(func(b []byte) []byte { return nil }); err != nil {
		t.Errorf("emptied leaf: %v", err)
	}
}

// TestMissingMetadata ensures reads of nonexistent datasets error cleanly.
func TestMissingMetadata(t *testing.T) {
	store := pfs.NewMem()
	err := fabric.Run(2, func(c *fabric.Comm) error {
		_, _, err := Read(c, store, "nope", geom.Box{})
		if err == nil {
			return fmt.Errorf("read of missing dataset succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPipelinePropertyBased pushes random small workloads through the full
// write/read pipeline and cross-checks against brute force.
func TestPipelinePropertyBased(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ranks := 2 + rng.Intn(6)
		perRank := 50 + rng.Intn(300)
		target := int64(1024 * (4 + rng.Intn(60)))
		schema := particles.NewSchema("v")
		store := pfs.NewMem()

		written := particles.NewSet(schema, 0)
		var mu sync.Mutex
		err := fabric.Run(ranks, func(c *fabric.Comm) error {
			r := rand.New(rand.NewSource(seed*100 + int64(c.Rank())))
			lo := geom.V3(float64(c.Rank()), 0, 0)
			local := particles.NewSet(schema, perRank)
			for i := 0; i < perRank; i++ {
				p := lo.Add(geom.V3(r.Float64(), r.Float64(), r.Float64()))
				local.Append(p, []float64{p.X * 7})
			}
			mu.Lock()
			written.AppendSet(local)
			mu.Unlock()
			cfg := DefaultWriteConfig(target)
			if seed%2 == 0 {
				cfg.Strategy = AUG
			}
			_, err := Write(c, store, "prop", local,
				geom.NewBox(lo, lo.Add(geom.V3(1, 1, 1))), cfg)
			return err
		})
		if err != nil {
			t.Logf("seed %d write: %v", seed, err)
			return false
		}
		// Random box read on one rank vs brute force.
		ok := true
		err = fabric.Run(2, func(c *fabric.Comm) error {
			r := rand.New(rand.NewSource(seed + int64(c.Rank())))
			lo := geom.V3(r.Float64()*float64(ranks), r.Float64()*0.5, r.Float64()*0.5)
			box := geom.NewBox(lo, lo.Add(geom.V3(1.5, 0.8, 0.8)))
			got, _, err := Read(c, store, "prop", box)
			if err != nil {
				return err
			}
			want := 0
			for i := 0; i < written.Len(); i++ {
				if box.Contains(written.Position(i)) {
					want++
				}
			}
			if got.Len() != want {
				t.Logf("seed %d rank %d: got %d want %d", seed, c.Rank(), got.Len(), want)
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestLargeFabricWrite validates the goroutine fabric at a four-digit rank
// count (1024 ranks, tiny payloads).
func TestLargeFabricWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank run")
	}
	w, err := workloads.NewUniform(1024, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	stats := runWrite(t, w, 0, store, "big", DefaultWriteConfig(64*1024))
	if stats.TotalCount != 1024*32 {
		t.Fatalf("wrote %d", stats.TotalCount)
	}
	if stats.NumFiles < 4 {
		t.Errorf("files = %d", stats.NumFiles)
	}
	// Read back on far fewer ranks.
	var mu sync.Mutex
	var total int
	err = fabric.Run(16, func(c *fabric.Comm) error {
		lo := float64(c.Rank()) / 16
		box := geom.NewBox(geom.V3(lo, 0, 0), geom.V3(lo+1.0/16, 1, 1))
		got, _, err := Read(c, store, "big", box)
		if err != nil {
			return err
		}
		mu.Lock()
		total += got.Len()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total < 1024*32 {
		t.Errorf("read %d of %d", total, 1024*32)
	}
}

// TestQuantizedPipeline runs the full pipeline with quantized positions.
func TestQuantizedPipeline(t *testing.T) {
	w, err := workloads.NewUniform(8, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	cfg := DefaultWriteConfig(30 * 1024)
	cfg.BAT.QuantizePositions = true
	stats := runWrite(t, w, 0, store, "quant", cfg)
	if stats.TotalCount != 8*500 {
		t.Fatalf("wrote %d", stats.TotalCount)
	}
	err = fabric.Run(4, func(c *fabric.Comm) error {
		got, _, err := Read(c, store, "quant", w.Decomp().Domain)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && int64(got.Len()) != stats.TotalCount {
			return fmt.Errorf("full read %d != %d", got.Len(), stats.TotalCount)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The quantized store is smaller than an unquantized one.
	plain := pfs.NewMem()
	runWrite(t, w, 0, plain, "plain", DefaultWriteConfig(30*1024))
	if store.Stats().BytesWritten >= plain.Stats().BytesWritten {
		t.Errorf("quantized store %d B >= plain %d B",
			store.Stats().BytesWritten, plain.Stats().BytesWritten)
	}
}

// TestReadQueryFiltered exercises the distributed in situ analytics path:
// collective reads with attribute filters and LOD windows.
func TestReadQueryFiltered(t *testing.T) {
	w, err := workloads.NewUniform(8, 600, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	runWrite(t, w, 0, store, "rq", DefaultWriteConfig(25*1024))
	// Brute force reference.
	all := particles.NewSet(w.Schema(), 0)
	for r := 0; r < 8; r++ {
		all.AppendSet(w.Generate(0, r))
	}
	// Attribute 0 correlates with x (uniform workload); filter [2, 6].
	wantFiltered := 0
	for i := 0; i < all.Len(); i++ {
		if v := all.Attrs[0][i]; v >= 2 && v <= 6 {
			wantFiltered++
		}
	}
	err = fabric.Run(4, func(c *fabric.Comm) error {
		q := bat.Query{Filters: []bat.AttrFilter{{Attr: 0, Min: 2, Max: 6}}}
		if c.Rank() != 0 {
			// Other ranks ask for disjoint quality windows of the same
			// filter; here just run a tiny spatial query to vary traffic.
			box := geom.NewBox(geom.V3(0, 0, 0), geom.V3(0.1, 0.1, 0.1))
			q = bat.Query{Bounds: &box}
		}
		got, _, err := ReadQuery(c, store, "rq", q)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && got.Len() != wantFiltered {
			return fmt.Errorf("filtered read %d != brute force %d", got.Len(), wantFiltered)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A collective LOD read: quality windows tile to the full count on
	// one rank while others idle on an empty region.
	var sum int
	prev := 0.0
	for step := 1; step <= 4; step++ {
		qual := float64(step) / 4
		err = fabric.Run(2, func(c *fabric.Comm) error {
			var q bat.Query
			if c.Rank() == 0 {
				q = bat.Query{PrevQuality: prev, Quality: qual}
			} else {
				far := geom.NewBox(geom.V3(99, 99, 99), geom.V3(100, 100, 100))
				q = bat.Query{Bounds: &far}
			}
			got, _, err := ReadQuery(c, store, "rq", q)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				sum += got.Len()
			} else if got.Len() != 0 {
				return fmt.Errorf("far query returned %d", got.Len())
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		prev = qual
	}
	if sum != all.Len() {
		t.Errorf("LOD windows summed to %d of %d", sum, all.Len())
	}
}

func TestExchange(t *testing.T) {
	// Every rank sends particle i to rank i%size; totals are conserved
	// and each particle lands exactly where addressed.
	const size = 6
	schema := particles.NewSchema("src", "idx")
	err := fabric.Run(size, func(c *fabric.Comm) error {
		outgoing := make([]*particles.Set, size)
		for r := range outgoing {
			outgoing[r] = particles.NewSet(schema, 0)
		}
		for i := 0; i < 30; i++ {
			dst := i % size
			outgoing[dst].Append(geom.V3(float64(i), 0, 0),
				[]float64{float64(c.Rank()), float64(i)})
		}
		got, err := Exchange(c, schema, outgoing)
		if err != nil {
			return err
		}
		// Each rank receives 5 particles from each of size ranks.
		if got.Len() != 5*size {
			return fmt.Errorf("rank %d received %d particles", c.Rank(), got.Len())
		}
		for i := 0; i < got.Len(); i++ {
			if int(got.Attrs[1][i])%size != c.Rank() {
				return fmt.Errorf("rank %d received particle addressed to %d",
					c.Rank(), int(got.Attrs[1][i])%size)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeNilAndErrors(t *testing.T) {
	schema := particles.NewSchema("a")
	err := fabric.Run(3, func(c *fabric.Comm) error {
		// Nil destinations are empty sends.
		outgoing := make([]*particles.Set, 3)
		if c.Rank() == 0 {
			outgoing[1] = particles.NewSet(schema, 0)
			outgoing[1].Append(geom.V3(1, 2, 3), []float64{9})
		}
		got, err := Exchange(c, schema, outgoing)
		if err != nil {
			return err
		}
		want := 0
		if c.Rank() == 1 {
			want = 1
		}
		if got.Len() != want {
			return fmt.Errorf("rank %d got %d particles, want %d", c.Rank(), got.Len(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong number of destinations errors without communicating.
	f := fabric.New(1)
	if _, err := Exchange(f.Comm(0), schema, nil); err == nil {
		t.Error("short outgoing should error")
	}
}

// TestWriteFailureCompletes injects storage faults into leaf and metadata
// writes: the collective must fail with an error on the affected ranks and
// never deadlock.
func TestWriteFailureCompletes(t *testing.T) {
	w, err := workloads.NewUniform(8, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fail one leaf file's write.
	store := &pfs.Faulty{
		Storage:    pfs.NewMem(),
		FailWrites: map[string]bool{LeafFileName("fw", 1): true},
	}
	sawError := false
	var mu sync.Mutex
	err = fabric.Run(8, func(c *fabric.Comm) error {
		local := w.Generate(0, c.Rank())
		_, werr := Write(c, store, "fw", local, w.Decomp().RankBounds(c.Rank()),
			DefaultWriteConfig(20*1024))
		if werr != nil {
			mu.Lock()
			sawError = true
			mu.Unlock()
		}
		return nil // collective must complete on every rank
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawError {
		t.Error("no rank reported the injected leaf write failure")
	}
	// No metadata file may exist for the poisoned write.
	if _, err := store.Open(MetaFileName("fw")); err == nil {
		t.Error("metadata written despite leaf failure")
	}

	// Fail the metadata write itself: only rank 0 observes it.
	store2 := &pfs.Faulty{
		Storage:    pfs.NewMem(),
		FailWrites: map[string]bool{MetaFileName("fm"): true},
	}
	err = fabric.Run(8, func(c *fabric.Comm) error {
		local := w.Generate(0, c.Rank())
		_, werr := Write(c, store2, "fm", local, w.Decomp().RankBounds(c.Rank()),
			DefaultWriteConfig(20*1024))
		if c.Rank() == 0 && werr == nil {
			return fmt.Errorf("rank 0 missed the metadata write failure")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWritePlanAbort forces a planning failure on rank 0 (invalid target
// size); every rank must return an error without deadlocking.
func TestWritePlanAbort(t *testing.T) {
	w, err := workloads.NewUniform(4, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	errs := make([]error, 4)
	err = fabric.Run(4, func(c *fabric.Comm) error {
		local := w.Generate(0, c.Rank())
		cfg := DefaultWriteConfig(0) // invalid: triggers plan failure
		_, werr := Write(c, store, "abort", local, w.Decomp().RankBounds(c.Rank()), cfg)
		errs[c.Rank()] = werr
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, werr := range errs {
		if werr == nil {
			t.Errorf("rank %d did not observe the abort", r)
		}
	}
}

func TestPhaseMaxAggregation(t *testing.T) {
	w, err := workloads.NewUniform(8, 800, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	stats := runWrite(t, w, 0, store, "pm", DefaultWriteConfig(40*1024))
	if stats.PhaseMax == nil {
		t.Fatal("PhaseMax not populated on rank 0")
	}
	pm := stats.PhaseMax
	// The critical path includes real aggregation work.
	if pm.Transfer <= 0 && pm.BATBuild <= 0 {
		t.Errorf("PhaseMax lacks aggregation time: %+v", pm)
	}
	if pm.FileWrite <= 0 {
		t.Errorf("PhaseMax lacks file write time: %+v", pm)
	}
	if pm.Metadata <= 0 {
		t.Errorf("PhaseMax lacks metadata time: %+v", pm)
	}
	// Maxima dominate rank 0's own view.
	if pm.BATBuild < stats.BATBuild || pm.FileWrite < stats.FileWrite {
		t.Errorf("PhaseMax below rank 0's own timings: %+v vs rank0 %+v", pm, stats.phases())
	}
	if pm.Total() <= 0 {
		t.Error("zero total")
	}
}

// TestWriteDeterminism: two runs of the same write must produce
// byte-identical files — the aggregation plan, BAT builds, and metadata
// are all deterministic even with parallel construction.
func TestWriteDeterminism(t *testing.T) {
	cb, err := workloads.NewCoalBoiler(12)
	if err != nil {
		t.Fatal(err)
	}
	cb.SetGrowth(0, 10, 30000, 30000)
	stores := [2]*pfs.Mem{pfs.NewMem(), pfs.NewMem()}
	for _, store := range stores {
		runWrite(t, cb, 5, store, "det", DefaultWriteConfig(100*1024))
	}
	namesA, _ := stores[0].List()
	namesB, _ := stores[1].List()
	if len(namesA) != len(namesB) {
		t.Fatalf("file counts differ: %d vs %d", len(namesA), len(namesB))
	}
	for i, name := range namesA {
		if namesB[i] != name {
			t.Fatalf("file names differ: %s vs %s", name, namesB[i])
		}
		read := func(s *pfs.Mem) []byte {
			f, err := s.Open(name)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			buf := make([]byte, f.Size())
			f.ReadAt(buf, 0)
			return buf
		}
		a, b := read(stores[0]), read(stores[1])
		if len(a) != len(b) {
			t.Fatalf("%s: sizes differ %d vs %d", name, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%s differs at byte %d", name, j)
			}
		}
	}
}
