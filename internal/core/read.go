package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"libbat/internal/bat"
	"libbat/internal/fabric"
	"libbat/internal/geom"
	"libbat/internal/meta"
	"libbat/internal/obs"
	"libbat/internal/obs/access"
	"libbat/internal/particles"
	"libbat/internal/pfs"
)

// ReadStats reports what one rank observed during a collective read.
type ReadStats struct {
	Metadata  time.Duration // reading + parsing the aggregation tree file
	FileRead  time.Duration // opening and querying leaf files (aggregator side)
	Transfer  time.Duration // waiting for and receiving remote replies
	NumFiles  int           // leaf files this rank served as read aggregator
	Particles int           // particles returned to this rank

	// LeafErrors records, per selected leaf index, why that leaf's data
	// could not be returned to this rank (damaged file, failed checksum,
	// server-side error). A key of -1 marks a reply too mangled to name
	// its leaf. When non-empty, ReadQuery returns the surviving particles
	// together with an error wrapping ErrPartial.
	LeafErrors map[int]error
}

// Total returns the rank's end-to-end read time.
func (s *ReadStats) Total() time.Duration {
	return s.Metadata + s.FileRead + s.Transfer
}

// ReadAggregator returns the rank assigned to read leaf li of nLeaves in a
// world of size ranks: with more ranks than files, readers are spread
// evenly through the rank space as in the write phase; with fewer, files
// are dealt round-robin over the ranks (§IV-A).
func ReadAggregator(li, nLeaves, size int) int {
	if nLeaves <= size {
		return li * size / nLeaves
	}
	return li % size
}

// Read performs the two-phase parallel read (Figure 3). It is collective:
// every rank calls it with the spatial bounds it wants (a checkpoint
// restart read passes the rank's own domain bounds). It returns the
// particles inside bounds.
func Read(c *fabric.Comm, store pfs.Storage, base string, bounds geom.Box) (*particles.Set, *ReadStats, error) {
	return ReadQuery(c, store, base, bat.Query{Bounds: &bounds})
}

// ReadQuery is the general form of Read: each rank supplies a full
// visualization-style query (spatial bounds, attribute filters, and a
// progressive quality window), which the read aggregators evaluate against
// their leaf files. This is the distributed in situ analytics access path
// the paper's §IV-B describes. Ranks may pass different queries; a rank
// wanting nothing passes a query with empty bounds.
//
// Damaged leaf files degrade the read instead of killing it: the healthy
// leaves' particles are returned alongside an error wrapping ErrPartial,
// with per-leaf diagnostics in ReadStats.LeafErrors. A rank that cannot
// read the metadata fails the whole collective — via the same
// error-agreement collective the write pipeline ends with — since query
// routing needs every rank to share the leaf assignment.
func ReadQuery(c *fabric.Comm, store pfs.Storage, base string, q bat.Query) (*particles.Set, *ReadStats, error) {
	return ReadQueryCtx(context.Background(), c, store, base, q)
}

// ReadQueryCtx is ReadQuery honoring ctx. Cancellation never abandons the
// collective protocol — every rank still exchanges every message and exits
// the loop — but leaf serving aborts: a canceled rank answers its remaining
// leaf queries (its own and other ranks') with error replies instead of
// data. The requesters record those as per-leaf failures, so a rank whose
// deadline fires gets the particles already gathered plus an error wrapping
// ErrPartial, exactly like a damaged-leaf degraded read. A cancellation
// before the metadata is agreed on fails the whole collective, since query
// routing needs every rank to share the leaf assignment.
func ReadQueryCtx(ctx context.Context, c *fabric.Comm, store pfs.Storage, base string, q bat.Query) (*particles.Set, *ReadStats, error) {
	stats := &ReadStats{}

	col := c.Observer()
	whole := col.Start(c.Rank(), "read")
	defer whole.End()

	// Phase a: every rank reads the aggregation tree metadata.
	metaStart := time.Now()
	metaSp := col.Start(c.Rank(), "read.meta")
	m, err := readMeta(ctx, store, MetaFileName(base))
	metaSp.End()
	// Agree on the metadata status before any queries are routed: a rank
	// returning here while others proceed would leave their queries to it
	// unanswered forever.
	if aerr := agreeOnError(c, "read metadata", err); aerr != nil {
		return nil, nil, aerr
	}
	stats.Metadata = time.Since(metaStart)
	// Access telemetry (nil registry → nil recorder → no-ops throughout):
	// the aggregator side records which treelets and regions each served
	// leaf query touches, keyed by dataset base name.
	rec := c.AccessRegistry().Get(base, m.Domain)
	nLeaves := len(m.Leaves)
	if nLeaves == 0 {
		c.Barrier()
		return particles.NewSet(m.Schema, 0), stats, nil
	}

	// Phase b: determine which leaves this rank's query can touch and who
	// reads them; the assignment is computed locally on every rank
	// (§IV-A). The aggregation tree prunes spatially and by the global
	// attribute bitmaps before any file is contacted.
	var metaFilters []meta.AttrFilter
	for _, f := range q.Filters {
		metaFilters = append(metaFilters, meta.AttrFilter{Attr: f.Attr, Min: f.Min, Max: f.Max})
	}
	want := m.SelectLeaves(q.Bounds, metaFilters)

	// Phase c: client-server query loop with a nonblocking barrier
	// (§IV-B). Queries to leaves this rank reads itself are answered
	// locally after the remote queries are issued.
	xferStart := time.Now()
	out := particles.NewSet(m.Schema, 0)
	var selfLeaves []int
	pending := 0
	qm := queryMsg{Bounds: q.Bounds, Filters: q.Filters, PrevQ: q.PrevQuality, Quality: q.Quality}
	for _, li := range want {
		reader := ReadAggregator(li, nLeaves, c.Size())
		if reader == c.Rank() {
			selfLeaves = append(selfLeaves, li)
			continue
		}
		qm.Leaf = li
		c.Isend(reader, tagQuery, encode(qm))
		pending++
	}

	// Serve queries for the leaves assigned to this rank while collecting
	// replies. Leaf work — opening, decoding, and traversing files — runs on
	// a worker pool so one rank services many in-flight client queries and
	// many of its own files concurrently; opened files are cached across
	// queries with singleflight deduplication. The fabric communicator is
	// documented single-goroutine, so this main loop remains the only
	// goroutine touching c: it receives queries, feeds the pool, sends the
	// pool's finished replies, and collects this rank's own replies.
	//
	// Errors must not abandon the collective protocol — the rank keeps
	// serving and answering with error replies so every rank exits the
	// loop. A damaged leaf costs only that leaf (recorded per requester in
	// LeafErrors); protocol corruption (an undecodable query) fails the
	// rank outright.
	var firstErr error
	note := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	var firstLeafErr error
	noteLeaf := func(li int, err error) {
		if stats.LeafErrors == nil {
			stats.LeafErrors = map[int]error{}
		}
		if _, dup := stats.LeafErrors[li]; !dup {
			stats.LeafErrors[li] = err
		}
		if firstLeafErr == nil {
			firstLeafErr = err
		}
	}
	lf := newLeafFiles()
	defer lf.closeAll()
	served := c.Observer().Counter("core_queries_served_total", obs.Rank(c.Rank()))
	replyBytes := c.Observer().Counter("core_reply_bytes_total", obs.Rank(c.Rank()))

	nWorkers := runtime.GOMAXPROCS(0)
	if nWorkers < 1 {
		nWorkers = 1
	}
	jobs := make(chan serveJob, nWorkers)
	results := make(chan serveResult, 2*nWorkers)
	var workers sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for j := range jobs {
				results <- serveLeafJob(ctx, col, c.Rank(), store, m, lf, rec, j)
			}
		}()
	}

	// Queue this rank's own leaves up front (§IV-B: "if a rank requires
	// data from itself, it performs these queries locally") so local file
	// work overlaps the wait for remote replies.
	var jobQueue []serveJob
	selfPending := 0
	for _, li := range selfLeaves {
		jobQueue = append(jobQueue, serveJob{source: -1, leaf: li, q: q})
		selfPending++
		served.Inc()
	}

	applyResult := func(r serveResult) {
		stats.FileRead += r.fileRead
		if r.opened {
			stats.NumFiles++
		}
		if r.source < 0 {
			selfPending--
			if r.err != nil {
				noteLeaf(r.leaf, r.err)
			} else {
				out.AppendSet(r.sub)
			}
			return
		}
		replyBytes.Add(int64(len(r.reply)))
		c.Isend(r.source, tagReply, r.reply)
	}
	acceptOne := func() bool {
		st, ok := c.Probe(fabric.AnySource, tagQuery)
		if !ok {
			return false
		}
		raw, _ := c.Recv(st.Source, tagQuery)
		served.Inc()
		var rq queryMsg
		if err := decode(raw, &rq); err != nil {
			note(err)
			c.Isend(st.Source, tagReply, replyError(-1, err))
			return true
		}
		jobQueue = append(jobQueue, serveJob{source: st.Source, leaf: rq.Leaf, q: rq.toBAT()})
		return true
	}
	recvOne := func() bool {
		if pending == 0 {
			return false
		}
		st, ok := c.Probe(fabric.AnySource, tagReply)
		if !ok {
			return false
		}
		raw, _ := c.Recv(st.Source, tagReply)
		leaf, part, err := parseReply(raw, m.Schema)
		if err != nil {
			noteLeaf(leaf, fmt.Errorf("core: leaf %d via rank %d: %w", leaf, st.Source, err))
		} else {
			out.AppendSet(part)
		}
		pending--
		return true
	}

	var barrier *fabric.BarrierRequest
	for {
		progress := false
		for acceptOne() {
			progress = true
		}
		for len(jobQueue) > 0 {
			select {
			case jobs <- jobQueue[0]:
				jobQueue = jobQueue[1:]
				progress = true
				continue
			default:
			}
			break
		}
		for {
			select {
			case r := <-results:
				applyResult(r)
				progress = true
				continue
			default:
			}
			break
		}
		if recvOne() {
			progress = true
		}
		if barrier == nil && pending == 0 && selfPending == 0 {
			// All of this rank's data has arrived and its own leaves are
			// answered: enter the nonblocking barrier and keep serving
			// until everyone is done.
			barrier = c.Ibarrier()
		}
		if barrier != nil && barrier.Test() {
			break
		}
		if !progress {
			// The collective loop must keep polling through cancellation to
			// finish the protocol, so this brief backoff is deliberately not
			// interruptible.
			time.Sleep(20 * time.Microsecond) //batlint:ignore ctxsleep progress backoff inside the collective loop, must survive ctx cancellation
		}
	}
	// Barrier completion implies every rank received every reply, so no
	// remote job can still be queued or in flight; drain defensively all
	// the same so a protocol bug degrades to extra replies, never a hang.
	for len(jobQueue) > 0 {
		select {
		case jobs <- jobQueue[0]:
			jobQueue = jobQueue[1:]
		case r := <-results:
			applyResult(r)
		}
	}
	close(jobs)
	go func() {
		workers.Wait()
		close(results)
	}()
	for r := range results {
		applyResult(r)
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	stats.Transfer = time.Since(xferStart) - stats.FileRead
	if stats.Transfer < 0 {
		stats.Transfer = 0
	}
	stats.Particles = out.Len()
	if len(stats.LeafErrors) > 0 {
		return out, stats, fmt.Errorf("%w: %d of %d selected leaves failed (first: %v)",
			ErrPartial, len(stats.LeafErrors), len(want), firstLeafErr)
	}
	return out, stats, nil
}

// Reply framing: one status byte (0 = data, 1 = error), the leaf index as
// a little-endian u32 (so the requester can attribute failures per leaf;
// ^0 when the server could not decode the query), then either a marshaled
// particle set or an error string.
const (
	replyOK      = 0
	replyFail    = 1
	replyHdrSize = 5
)

func replyHeader(status byte, leaf int) []byte {
	hdr := make([]byte, replyHdrSize)
	hdr[0] = status
	binary.LittleEndian.PutUint32(hdr[1:], uint32(leaf))
	return hdr
}

func replyData(leaf int, s *particles.Set) []byte {
	return append(replyHeader(replyOK, leaf), s.Marshal()...)
}

func replyError(leaf int, err error) []byte {
	return append(replyHeader(replyFail, leaf), err.Error()...)
}

func parseReply(raw []byte, schema particles.Schema) (int, *particles.Set, error) {
	if len(raw) < replyHdrSize {
		return -1, nil, fmt.Errorf("short reply (%d bytes)", len(raw))
	}
	leaf := int(int32(binary.LittleEndian.Uint32(raw[1:])))
	if raw[0] == replyFail {
		return leaf, nil, fmt.Errorf("server error: %s", raw[replyHdrSize:])
	}
	s, err := particles.Unmarshal(raw[replyHdrSize:], schema)
	return leaf, s, err
}

// readMeta loads and parses the metadata file.
func readMeta(ctx context.Context, store pfs.Storage, name string) (m *meta.Meta, err error) {
	f, err := pfs.OpenContext(ctx, store, name)
	if err != nil {
		return nil, err
	}
	// The handle is read-only, but a failing Close can still be the first
	// sign of a flaky mount: surface it instead of dropping it.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			m, err = nil, fmt.Errorf("core: closing %s: %w", name, cerr)
		}
	}()
	buf := make([]byte, f.Size())
	if _, rerr := pfs.ReadAtContext(ctx, f, buf, 0); rerr != nil && rerr != io.EOF {
		return nil, rerr
	}
	return meta.Decode(buf)
}

// serveJob is one leaf query for the aggregator worker pool: a remote
// rank's request, or (source == -1) one of this rank's own leaves.
type serveJob struct {
	source int
	leaf   int
	q      bat.Query
}

// serveResult is a finished serveJob. Remote jobs carry the encoded wire
// reply for the main loop to Isend; self jobs carry the particle set (or
// error) directly.
type serveResult struct {
	source   int
	leaf     int
	reply    []byte
	sub      *particles.Set
	err      error
	opened   bool // this job opened the leaf file (counts toward NumFiles)
	fileRead time.Duration
}

// serveLeafJob runs on a pool worker: open/traverse the leaf and package
// the outcome. It never touches the communicator.
func serveLeafJob(ctx context.Context, col *obs.Collector, rank int, store pfs.Storage, m *meta.Meta, lf *leafFiles, rec *access.Recorder, j serveJob) serveResult {
	sp := col.Start(rank, "read.serve")
	defer sp.End()
	start := time.Now()
	sub, opened, err := queryLeaf(ctx, store, m, lf, rec, rank, j.leaf, j.q)
	res := serveResult{source: j.source, leaf: j.leaf, opened: opened, fileRead: time.Since(start)}
	if j.source < 0 {
		res.sub, res.err = sub, err
		return res
	}
	if err != nil {
		// The requester records the leaf failure; serving it must not
		// poison this rank's own read.
		res.reply = replyError(j.leaf, err)
	} else {
		res.reply = replyData(j.leaf, sub)
	}
	return res
}

// leafFiles is the aggregator's concurrent open-file cache: each leaf is
// opened exactly once (singleflight) and shared by every job that needs
// it. Open errors are not cached, so a flaky open is retried by the next
// query instead of poisoning the leaf for the rest of the read.
type leafFiles struct {
	mu sync.Mutex
	m  map[int]*leafFileSlot
}

type leafFileSlot struct {
	ready chan struct{}
	f     *bat.File
	err   error
}

func newLeafFiles() *leafFiles { return &leafFiles{m: map[int]*leafFileSlot{}} }

// get returns leaf li's open file, calling open at most once concurrently.
// opened reports whether this call performed the open.
func (lf *leafFiles) get(li int, open func() (*bat.File, error)) (f *bat.File, opened bool, err error) {
	lf.mu.Lock()
	if s, ok := lf.m[li]; ok {
		lf.mu.Unlock()
		<-s.ready
		return s.f, false, s.err
	}
	s := &leafFileSlot{ready: make(chan struct{})}
	lf.m[li] = s
	lf.mu.Unlock()
	s.f, s.err = open()
	if s.err != nil {
		lf.mu.Lock()
		if lf.m[li] == s {
			delete(lf.m, li)
		}
		lf.mu.Unlock()
	}
	close(s.ready)
	return s.f, s.err == nil, s.err
}

// closeAll closes every cached file, waiting out any still mid-open.
func (lf *leafFiles) closeAll() {
	lf.mu.Lock()
	slots := make([]*leafFileSlot, 0, len(lf.m))
	for _, s := range lf.m {
		slots = append(slots, s)
	}
	lf.m = map[int]*leafFileSlot{}
	lf.mu.Unlock()
	for _, s := range slots {
		<-s.ready
		if s.err == nil && s.f != nil {
			s.f.Close()
		}
	}
}

// queryLeaf answers one query against a leaf file, opening (and caching)
// it in lf on first use. With a recorder attached, the serve is logged in
// the recent-query ring and treelet touches are recorded under li. A ctx
// that ends before or during the serve yields ctx.Err(), which the caller
// turns into a per-leaf error reply — open errors (including context
// errors) are never cached, so a later read retries the leaf cleanly.
func queryLeaf(ctx context.Context, store pfs.Storage, m *meta.Meta, lf *leafFiles, rec *access.Recorder, rank, li int, q bat.Query) (*particles.Set, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("core: leaf %d abandoned: %w", li, err)
	}
	f, opened, err := lf.get(li, func() (*bat.File, error) {
		handle, err := pfs.OpenContext(ctx, store, m.Leaves[li].FileName)
		if err != nil {
			return nil, fmt.Errorf("core: opening leaf %d: %w", li, err)
		}
		bf, err := bat.DecodeCtx(ctx, handle, handle.Size())
		if err != nil {
			if cerr := handle.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return nil, fmt.Errorf("core: parsing leaf %d: %w", li, err)
		}
		bf.SetCloser(handle)
		bf.SetAccessRecorder(rec, li)
		return bf, nil
	})
	if err != nil {
		return nil, opened, err
	}
	start := time.Now()
	sub := particles.NewSet(f.Schema, 0)
	st, qerr := f.QueryWithStatsCtx(ctx, q, func(p geom.Vec3, attrs []float64) error {
		sub.Append(p, attrs)
		return nil
	})
	if rec != nil {
		rec.Record(access.QueryRecord{
			Source:         "core.read",
			Rank:           rank,
			Box:            access.BoxRecord(q.Bounds),
			Filters:        accessFilters(m.Schema, q.Filters),
			PrevQuality:    q.PrevQuality,
			Quality:        q.Quality,
			Treelets:       st.Treelets,
			Particles:      st.Visited,
			Pruned:         st.PrunedSubtrees,
			FalsePositives: st.FalsePositives,
			Seconds:        time.Since(start).Seconds(),
		})
	}
	return sub, opened, qerr
}

// accessFilters names a query's attribute filters for the access log.
func accessFilters(schema particles.Schema, fs []bat.AttrFilter) []access.FilterRange {
	if len(fs) == 0 {
		return nil
	}
	out := make([]access.FilterRange, len(fs))
	for i, f := range fs {
		name := fmt.Sprintf("attr%d", f.Attr)
		if f.Attr >= 0 && f.Attr < schema.NumAttrs() {
			name = schema.Attrs[f.Attr].Name
		}
		out[i] = access.FilterRange{Attr: name, Min: f.Min, Max: f.Max}
	}
	return out
}
