package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"libbat/internal/bat"
	"libbat/internal/fabric"
	"libbat/internal/geom"
	"libbat/internal/meta"
	"libbat/internal/obs"
	"libbat/internal/particles"
	"libbat/internal/pfs"
)

// ReadStats reports what one rank observed during a collective read.
type ReadStats struct {
	Metadata  time.Duration // reading + parsing the aggregation tree file
	FileRead  time.Duration // opening and querying leaf files (aggregator side)
	Transfer  time.Duration // waiting for and receiving remote replies
	NumFiles  int           // leaf files this rank served as read aggregator
	Particles int           // particles returned to this rank

	// LeafErrors records, per selected leaf index, why that leaf's data
	// could not be returned to this rank (damaged file, failed checksum,
	// server-side error). A key of -1 marks a reply too mangled to name
	// its leaf. When non-empty, ReadQuery returns the surviving particles
	// together with an error wrapping ErrPartial.
	LeafErrors map[int]error
}

// Total returns the rank's end-to-end read time.
func (s *ReadStats) Total() time.Duration {
	return s.Metadata + s.FileRead + s.Transfer
}

// ReadAggregator returns the rank assigned to read leaf li of nLeaves in a
// world of size ranks: with more ranks than files, readers are spread
// evenly through the rank space as in the write phase; with fewer, files
// are dealt round-robin over the ranks (§IV-A).
func ReadAggregator(li, nLeaves, size int) int {
	if nLeaves <= size {
		return li * size / nLeaves
	}
	return li % size
}

// Read performs the two-phase parallel read (Figure 3). It is collective:
// every rank calls it with the spatial bounds it wants (a checkpoint
// restart read passes the rank's own domain bounds). It returns the
// particles inside bounds.
func Read(c *fabric.Comm, store pfs.Storage, base string, bounds geom.Box) (*particles.Set, *ReadStats, error) {
	return ReadQuery(c, store, base, bat.Query{Bounds: &bounds})
}

// ReadQuery is the general form of Read: each rank supplies a full
// visualization-style query (spatial bounds, attribute filters, and a
// progressive quality window), which the read aggregators evaluate against
// their leaf files. This is the distributed in situ analytics access path
// the paper's §IV-B describes. Ranks may pass different queries; a rank
// wanting nothing passes a query with empty bounds.
//
// Damaged leaf files degrade the read instead of killing it: the healthy
// leaves' particles are returned alongside an error wrapping ErrPartial,
// with per-leaf diagnostics in ReadStats.LeafErrors. A rank that cannot
// read the metadata fails the whole collective — via the same
// error-agreement collective the write pipeline ends with — since query
// routing needs every rank to share the leaf assignment.
func ReadQuery(c *fabric.Comm, store pfs.Storage, base string, q bat.Query) (*particles.Set, *ReadStats, error) {
	stats := &ReadStats{}

	col := c.Observer()
	whole := col.Start(c.Rank(), "read")
	defer whole.End()

	// Phase a: every rank reads the aggregation tree metadata.
	metaStart := time.Now()
	metaSp := col.Start(c.Rank(), "read.meta")
	m, err := readMeta(store, MetaFileName(base))
	metaSp.End()
	// Agree on the metadata status before any queries are routed: a rank
	// returning here while others proceed would leave their queries to it
	// unanswered forever.
	if aerr := agreeOnError(c, "read metadata", err); aerr != nil {
		return nil, nil, aerr
	}
	stats.Metadata = time.Since(metaStart)
	nLeaves := len(m.Leaves)
	if nLeaves == 0 {
		c.Barrier()
		return particles.NewSet(m.Schema, 0), stats, nil
	}

	// Phase b: determine which leaves this rank's query can touch and who
	// reads them; the assignment is computed locally on every rank
	// (§IV-A). The aggregation tree prunes spatially and by the global
	// attribute bitmaps before any file is contacted.
	var metaFilters []meta.AttrFilter
	for _, f := range q.Filters {
		metaFilters = append(metaFilters, meta.AttrFilter{Attr: f.Attr, Min: f.Min, Max: f.Max})
	}
	want := m.SelectLeaves(q.Bounds, metaFilters)

	// Phase c: client-server query loop with a nonblocking barrier
	// (§IV-B). Queries to leaves this rank reads itself are answered
	// locally after the remote queries are issued.
	xferStart := time.Now()
	out := particles.NewSet(m.Schema, 0)
	var selfLeaves []int
	pending := 0
	qm := queryMsg{Bounds: q.Bounds, Filters: q.Filters, PrevQ: q.PrevQuality, Quality: q.Quality}
	for _, li := range want {
		reader := ReadAggregator(li, nLeaves, c.Size())
		if reader == c.Rank() {
			selfLeaves = append(selfLeaves, li)
			continue
		}
		qm.Leaf = li
		c.Isend(reader, tagQuery, encode(qm))
		pending++
	}

	// Serve queries for the leaves assigned to this rank while collecting
	// replies; cache opened files across queries. Errors must not abandon
	// the collective protocol — the rank keeps serving and answering with
	// error replies so every rank exits the loop. A damaged leaf costs
	// only that leaf (recorded per requester in LeafErrors); protocol
	// corruption (an undecodable query) fails the rank outright.
	var firstErr error
	note := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	var firstLeafErr error
	noteLeaf := func(li int, err error) {
		if stats.LeafErrors == nil {
			stats.LeafErrors = map[int]error{}
		}
		if _, dup := stats.LeafErrors[li]; !dup {
			stats.LeafErrors[li] = err
		}
		if firstLeafErr == nil {
			firstLeafErr = err
		}
	}
	files := map[int]*bat.File{}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	served := c.Observer().Counter("core_queries_served_total", obs.Rank(c.Rank()))
	replyBytes := c.Observer().Counter("core_reply_bytes_total", obs.Rank(c.Rank()))
	serveOne := func() bool {
		st, ok := c.Probe(fabric.AnySource, tagQuery)
		if !ok {
			return false
		}
		raw, _ := c.Recv(st.Source, tagQuery)
		sp := col.Start(c.Rank(), "read.serve")
		defer sp.End()
		served.Inc()
		var rq queryMsg
		if err := decode(raw, &rq); err != nil {
			note(err)
			c.Isend(st.Source, tagReply, replyError(-1, err))
			return true
		}
		sub, err := queryLeaf(store, m, files, rq.Leaf, rq.toBAT(), stats)
		if err != nil {
			// The requester records the leaf failure; serving it must not
			// poison this rank's own read.
			c.Isend(st.Source, tagReply, replyError(rq.Leaf, err))
			return true
		}
		reply := replyData(rq.Leaf, sub)
		replyBytes.Add(int64(len(reply)))
		c.Isend(st.Source, tagReply, reply)
		return true
	}
	recvOne := func() bool {
		if pending == 0 {
			return false
		}
		st, ok := c.Probe(fabric.AnySource, tagReply)
		if !ok {
			return false
		}
		raw, _ := c.Recv(st.Source, tagReply)
		leaf, part, err := parseReply(raw, m.Schema)
		if err != nil {
			noteLeaf(leaf, fmt.Errorf("core: leaf %d via rank %d: %w", leaf, st.Source, err))
		} else {
			out.AppendSet(part)
		}
		pending--
		return true
	}

	// Answer self-queries once, locally (§IV-B: "if a rank requires data
	// from itself, it performs these queries locally").
	for _, li := range selfLeaves {
		sp := col.Start(c.Rank(), "read.serve")
		sub, err := queryLeaf(store, m, files, li, q, stats)
		sp.End()
		served.Inc()
		if err != nil {
			noteLeaf(li, err)
			continue
		}
		out.AppendSet(sub)
	}

	var barrier *fabric.BarrierRequest
	for {
		served := serveOne()
		received := recvOne()
		if barrier == nil && pending == 0 {
			// All of this rank's data has arrived: enter the nonblocking
			// barrier and keep serving until everyone is done.
			barrier = c.Ibarrier()
		}
		if barrier != nil && barrier.Test() {
			break
		}
		if !served && !received {
			time.Sleep(20 * time.Microsecond)
		}
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	stats.Transfer = time.Since(xferStart) - stats.FileRead
	if stats.Transfer < 0 {
		stats.Transfer = 0
	}
	stats.Particles = out.Len()
	if len(stats.LeafErrors) > 0 {
		return out, stats, fmt.Errorf("%w: %d of %d selected leaves failed (first: %v)",
			ErrPartial, len(stats.LeafErrors), len(want), firstLeafErr)
	}
	return out, stats, nil
}

// Reply framing: one status byte (0 = data, 1 = error), the leaf index as
// a little-endian u32 (so the requester can attribute failures per leaf;
// ^0 when the server could not decode the query), then either a marshaled
// particle set or an error string.
const (
	replyOK      = 0
	replyFail    = 1
	replyHdrSize = 5
)

func replyHeader(status byte, leaf int) []byte {
	hdr := make([]byte, replyHdrSize)
	hdr[0] = status
	binary.LittleEndian.PutUint32(hdr[1:], uint32(leaf))
	return hdr
}

func replyData(leaf int, s *particles.Set) []byte {
	return append(replyHeader(replyOK, leaf), s.Marshal()...)
}

func replyError(leaf int, err error) []byte {
	return append(replyHeader(replyFail, leaf), err.Error()...)
}

func parseReply(raw []byte, schema particles.Schema) (int, *particles.Set, error) {
	if len(raw) < replyHdrSize {
		return -1, nil, fmt.Errorf("short reply (%d bytes)", len(raw))
	}
	leaf := int(int32(binary.LittleEndian.Uint32(raw[1:])))
	if raw[0] == replyFail {
		return leaf, nil, fmt.Errorf("server error: %s", raw[replyHdrSize:])
	}
	s, err := particles.Unmarshal(raw[replyHdrSize:], schema)
	return leaf, s, err
}

// readMeta loads and parses the metadata file.
func readMeta(store pfs.Storage, name string) (m *meta.Meta, err error) {
	f, err := store.Open(name)
	if err != nil {
		return nil, err
	}
	// The handle is read-only, but a failing Close can still be the first
	// sign of a flaky mount: surface it instead of dropping it.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			m, err = nil, fmt.Errorf("core: closing %s: %w", name, cerr)
		}
	}()
	buf := make([]byte, f.Size())
	if _, rerr := f.ReadAt(buf, 0); rerr != nil && rerr != io.EOF {
		return nil, rerr
	}
	return meta.Decode(buf)
}

// queryLeaf answers one query against a leaf file, opening (and caching)
// it on first use.
func queryLeaf(store pfs.Storage, m *meta.Meta, files map[int]*bat.File,
	li int, q bat.Query, stats *ReadStats) (*particles.Set, error) {

	start := time.Now()
	f, ok := files[li]
	if !ok {
		handle, err := store.Open(m.Leaves[li].FileName)
		if err != nil {
			return nil, fmt.Errorf("core: opening leaf %d: %w", li, err)
		}
		f, err = bat.Decode(handle, handle.Size())
		if err != nil {
			if cerr := handle.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return nil, fmt.Errorf("core: parsing leaf %d: %w", li, err)
		}
		f.SetCloser(handle)
		files[li] = f
		stats.NumFiles++
	}
	sub := particles.NewSet(f.Schema, 0)
	err := f.Query(q, func(p geom.Vec3, attrs []float64) error {
		sub.Append(p, attrs)
		return nil
	})
	stats.FileRead += time.Since(start)
	return sub, err
}
