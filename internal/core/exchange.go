package core

import (
	"fmt"

	"libbat/internal/fabric"
	"libbat/internal/obs"
	"libbat/internal/particles"
)

// tagExchange is reserved for Exchange's payloads.
const tagExchange = 1 << 20

// Exchange performs an all-to-all particle migration: outgoing[r] is the
// set this rank sends to rank r (outgoing[self] is kept locally), and the
// result is everything destined for this rank. Simulations use it to
// rebalance particles onto their owning ranks before a collective Write,
// restoring the invariant that a rank's particles lie inside its declared
// bounds. All sets must share one schema; outgoing may contain nils for
// empty destinations.
func Exchange(c *fabric.Comm, schema particles.Schema, outgoing []*particles.Set) (*particles.Set, error) {
	if len(outgoing) != c.Size() {
		return nil, fmt.Errorf("core: Exchange needs one destination set per rank (%d != %d)",
			len(outgoing), c.Size())
	}
	col := c.Observer()
	sp := col.Start(c.Rank(), "exchange")
	defer sp.End()
	empty := particles.NewSet(schema, 0)
	for r, s := range outgoing {
		if r == c.Rank() {
			continue
		}
		if s == nil {
			s = empty
		}
		if !s.Schema.Equal(schema) {
			return nil, fmt.Errorf("core: Exchange destination %d has a different schema", r)
		}
		c.Isend(r, tagExchange, s.Marshal())
	}
	mine := particles.NewSet(schema, 0)
	if own := outgoing[c.Rank()]; own != nil {
		mine.AppendSet(own)
	}
	var inBytes int64
	for n := 0; n < c.Size()-1; n++ {
		raw, st := c.Recv(fabric.AnySource, tagExchange)
		inBytes += int64(len(raw))
		part, err := particles.Unmarshal(raw, schema)
		if err != nil {
			return nil, fmt.Errorf("core: Exchange payload from rank %d: %w", st.Source, err)
		}
		mine.AppendSet(part)
	}
	if col != nil {
		r := obs.Rank(c.Rank())
		col.Add("core_exchange_recv_bytes_total", inBytes, r)
		col.Add("core_exchange_recv_particles_total", int64(mine.Len()), r)
	}
	return mine, nil
}
