package core

import (
	"bytes"
	"fmt"
	"testing"

	"libbat/internal/fabric"
	"libbat/internal/geom"
	"libbat/internal/pfs"
	"libbat/internal/workloads"
)

// storeContents snapshots every file in a memory store.
func storeContents(t *testing.T, store *pfs.Mem) map[string][]byte {
	t.Helper()
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(names))
	for _, name := range names {
		f, err := store.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, f.Size())
		if _, err := f.ReadAt(data, 0); err != nil && f.Size() > 0 {
			t.Fatalf("reading %s: %v", name, err)
		}
		f.Close()
		out[name] = data
	}
	return out
}

// TestPlanModesProduceIdenticalDatasets is the end-to-end counterpart of the
// aggtree equivalence property test: a full collective write planned
// centrally and one planned distributedly must leave byte-identical leaf
// files and metadata in the store.
func TestPlanModesProduceIdenticalDatasets(t *testing.T) {
	for _, tc := range []struct {
		name  string
		ranks int
		ppr   int
	}{
		{"uniform-16", 16, 400},
		{"uniform-24", 24, 300},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w, err := workloads.NewUniform(tc.ranks, int64(tc.ppr), 3)
			if err != nil {
				t.Fatal(err)
			}
			stores := map[PlanMode]*pfs.Mem{
				PlanCentralized: pfs.NewMem(),
				PlanDistributed: pfs.NewMem(),
			}
			for mode, store := range stores {
				cfg := DefaultWriteConfig(16 * 1024)
				cfg.Plan = mode
				stats := runWrite(t, w, 0, store, "step0", cfg)
				if stats.NumFiles < 2 {
					t.Fatalf("%v: expected multiple files, got %d", mode, stats.NumFiles)
				}
				if stats.TotalCount != int64(tc.ranks*tc.ppr) {
					t.Fatalf("%v: TotalCount = %d", mode, stats.TotalCount)
				}
				if stats.LeafSizes.NumFiles != stats.NumFiles {
					t.Fatalf("%v: LeafSizes.NumFiles = %d, NumFiles = %d", mode, stats.LeafSizes.NumFiles, stats.NumFiles)
				}
			}
			cen := storeContents(t, stores[PlanCentralized])
			dist := storeContents(t, stores[PlanDistributed])
			if len(cen) != len(dist) {
				t.Fatalf("centralized wrote %d files, distributed %d", len(cen), len(dist))
			}
			for name, want := range cen {
				got, ok := dist[name]
				if !ok {
					t.Fatalf("distributed store missing %s", name)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s differs between plan modes (%d vs %d bytes)", name, len(want), len(got))
				}
			}
		})
	}
}

// TestPlanModeResolve pins the PlanAuto switchover policy.
func TestPlanModeResolve(t *testing.T) {
	for _, tc := range []struct {
		mode      PlanMode
		strategy  Strategy
		size, thr int
		want      PlanMode
	}{
		{PlanAuto, Adaptive, 16, 0, PlanCentralized},
		{PlanAuto, Adaptive, DefaultDistPlanThreshold, 0, PlanDistributed},
		{PlanAuto, Adaptive, 64, 64, PlanDistributed},
		{PlanAuto, AUG, 1 << 20, 0, PlanCentralized},
		{PlanCentralized, Adaptive, 1 << 20, 0, PlanCentralized},
		{PlanDistributed, Adaptive, 2, 0, PlanDistributed},
	} {
		if got := tc.mode.resolve(tc.strategy, tc.size, tc.thr); got != tc.want {
			t.Errorf("resolve(%v, %v, %d, %d) = %v, want %v",
				tc.mode, tc.strategy, tc.size, tc.thr, got, tc.want)
		}
	}
}

// TestPlanModeParseAndString round-trips the CLI values.
func TestPlanModeParseAndString(t *testing.T) {
	for _, s := range []string{"auto", "centralized", "distributed"} {
		m, err := ParsePlanMode(s)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != s {
			t.Errorf("ParsePlanMode(%q).String() = %q", s, m.String())
		}
	}
	if _, err := ParsePlanMode("bogus"); err == nil {
		t.Error("bogus plan mode should error")
	}
}

// TestPlanDistributedRejectsAUG: the AUG baseline has no distributed
// builder; requesting one must fail identically on every rank.
func TestPlanDistributedRejectsAUG(t *testing.T) {
	w, err := workloads.NewUniform(4, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	store := pfs.NewMem()
	runErr := fabric.Run(4, func(c *fabric.Comm) error {
		cfg := DefaultWriteConfig(1 << 20)
		cfg.Strategy = AUG
		cfg.Plan = PlanDistributed
		_, err := Write(c, store, "x", w.Generate(0, c.Rank()), w.Decomp().RankBounds(c.Rank()), cfg)
		if err == nil {
			return fmt.Errorf("rank %d: AUG + distributed plan should error", c.Rank())
		}
		return nil
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
}

// TestPlanDistributedEmptyWrite: an all-empty world through the distributed
// planner still yields a valid (empty) dataset readable afterwards.
func TestPlanDistributedEmptyWrite(t *testing.T) {
	const ranks = 8
	store := pfs.NewMem()
	w, err := workloads.NewUniform(ranks, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	runErr := fabric.Run(ranks, func(c *fabric.Comm) error {
		local := w.Generate(0, c.Rank()).Slice(0, 0)
		cfg := DefaultWriteConfig(1 << 20)
		cfg.Plan = PlanDistributed
		st, err := Write(c, store, "empty", local, w.Decomp().RankBounds(c.Rank()), cfg)
		if err != nil {
			return fmt.Errorf("rank %d: %w", c.Rank(), err)
		}
		if c.Rank() == 0 && st.NumFiles != 0 {
			return fmt.Errorf("empty world wrote %d files", st.NumFiles)
		}
		return nil
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	var total int
	err = fabric.Run(2, func(c *fabric.Comm) error {
		got, _, err := Read(c, store, "empty", geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1)))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			total = got.Len()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Fatalf("empty dataset returned %d particles", total)
	}
}
