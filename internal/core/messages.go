// Package core implements the paper's two-phase I/O pipelines over the
// simulated MPI fabric: spatially aware adaptive aggregation writes
// (§III, Figure 1) and client/server two-phase reads (§IV, Figure 3). All
// ranks call Write/Read collectively, exactly as a simulation would call
// the paper's C API from every MPI rank.
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"libbat/internal/bat"
	"libbat/internal/bitmap"
	"libbat/internal/geom"
	"libbat/internal/meta"
)

// Message tags used by the pipelines.
const (
	tagInfo = iota + 1
	tagAssign
	tagData
	tagReport
	tagQuery
	tagReply
)

// infoMsg is each rank's contribution to the aggregation plan (Figure 1a).
type infoMsg struct {
	Count  int64
	Bounds geom.Box
}

// leafAssign tells an aggregator about one leaf it must receive and write.
type leafAssign struct {
	Leaf    int
	Bounds  geom.Box
	Senders []int // member ranks holding particles (may include the aggregator)
	Counts  []int64
}

// assignMsg is rank 0's scatter payload (Figure 1a, end).
type assignMsg struct {
	// Abort, when set, tells every rank that planning failed on rank 0;
	// ranks skip the data phases and fail collectively instead of
	// deadlocking.
	Abort string
	// Aggregator is the rank this rank must send its particles to, or -1
	// if it holds none.
	Aggregator int
	// Leaves are the leaves this rank aggregates (usually zero or one).
	Leaves []leafAssign
}

// reportMsg carries an aggregator's per-leaf report to rank 0 (Figure 1d).
// Err marks a leaf whose build or write failed; rank 0 then skips the
// metadata and the whole collective returns an error without hanging.
type reportMsg struct {
	Leaf        int
	Err         string
	FileName    string
	Count       int64
	Bounds      geom.Box
	LocalRanges []bitmap.Range
	RootBitmaps []bitmap.Bitmap
}

// queryMsg asks a read aggregator for the particles of one leaf matching
// the requester's query (Figure 3c). Checkpoint-restart reads use a plain
// bounds query; in situ analytics may add attribute filters and a
// progressive quality window (§IV-B: "this query mechanism can also be
// leveraged to enable distributed data access for in situ analytics").
type queryMsg struct {
	Leaf    int
	Bounds  *geom.Box
	Filters []bat.AttrFilter
	PrevQ   float64
	Quality float64
}

func (q queryMsg) toBAT() bat.Query {
	return bat.Query{
		Bounds:      q.Bounds,
		Filters:     q.Filters,
		PrevQuality: q.PrevQ,
		Quality:     q.Quality,
	}
}

func (r reportMsg) toMeta() meta.LeafReport {
	return meta.LeafReport{
		Leaf:        r.Leaf,
		FileName:    r.FileName,
		Count:       r.Count,
		Bounds:      r.Bounds,
		LocalRanges: r.LocalRanges,
		RootBitmaps: r.RootBitmaps,
	}
}

// encode gob-serializes a control message.
func encode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		// Control messages are library-defined types; failure to encode
		// them is a programming error.
		panic(fmt.Sprintf("core: encoding %T: %v", v, err))
	}
	return buf.Bytes()
}

// decode gob-deserializes a control message.
func decode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
