package core

import (
	"errors"
	"fmt"

	"libbat/internal/fabric"
)

// ErrPartial marks a collective read that returned usable particles for
// some leaves while others failed (damaged or missing files). Callers get
// the surviving data plus per-leaf diagnostics in ReadStats.LeafErrors.
var ErrPartial = errors.New("core: partial result")

// agreeOnError is the pipelines' error-agreement collective: every rank
// contributes its local error (nil for success) via an allgather, so all
// ranks learn whether the operation succeeded everywhere. It returns nil
// only when every rank passed nil; otherwise every rank gets an error
// naming the failed ranks — ranks that failed locally keep their own error
// wrapped, ranks that succeeded see the first remote message. Replacing a
// plain completion barrier with this call is what lets one rank's failure
// unwind the whole collective instead of deadlocking it (DESIGN.md §7).
func agreeOnError(c *fabric.Comm, op string, local error) error {
	var payload []byte
	if local != nil {
		payload = []byte(local.Error())
		if len(payload) == 0 {
			payload = []byte("unspecified error")
		}
	}
	parts := c.Allgather(payload)
	var failed []int
	first := ""
	for r, p := range parts {
		if len(p) > 0 {
			failed = append(failed, r)
			if first == "" {
				first = string(p)
			}
		}
	}
	if len(failed) == 0 {
		return nil
	}
	if local != nil {
		return fmt.Errorf("core: %s failed on rank(s) %v: %w", op, failed, local)
	}
	return fmt.Errorf("core: %s failed on rank(s) %v: %s", op, failed, first)
}
