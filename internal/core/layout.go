package core

import (
	"libbat/internal/bat"
	"libbat/internal/bitmap"
	"libbat/internal/geom"
	"libbat/internal/particles"
)

// Layout builds an aggregation leaf's on-disk image. The paper's §VII
// outlook proposes letting users plug their own layout into the adaptive
// aggregation pipeline — e.g. a format an existing analysis stack already
// consumes — while keeping the load balancing and the top-level metadata;
// this interface is that extension point. The default layout is the BAT.
//
// A custom layout's files are written and indexed exactly like BAT leaves
// (bounds, counts, value ranges, root bitmaps in the metadata), but the
// collective Read pipeline and Dataset queries only understand the BAT
// format; consumers of a custom layout bring their own reader.
type Layout interface {
	// Name identifies the layout in diagnostics.
	Name() string
	// Build produces the leaf file image for the particles received by an
	// aggregator. bounds is the leaf's spatial region.
	Build(set *particles.Set, bounds geom.Box) (LayoutResult, error)
}

// LayoutResult is a built leaf image plus the summary rank 0 needs for the
// top-level metadata (§III-D).
type LayoutResult struct {
	Buf         []byte
	LocalRanges []bitmap.Range
	RootBitmaps []bitmap.Bitmap
}

// batLayout is the default Layout: the paper's Binned Attribute Tree.
type batLayout struct {
	cfg bat.BuildConfig
}

func (l batLayout) Name() string { return "bat" }

func (l batLayout) Build(set *particles.Set, bounds geom.Box) (LayoutResult, error) {
	built, err := bat.Build(set, bounds, l.cfg)
	if err != nil {
		return LayoutResult{}, err
	}
	f, err := bat.FromBuffer(built.Buf)
	if err != nil {
		return LayoutResult{}, err
	}
	return LayoutResult{
		Buf:         built.Buf,
		LocalRanges: f.Ranges,
		RootBitmaps: f.RootBitmaps(),
	}, nil
}

// RawLayout is a minimal example Layout: particles serialized as flat
// arrays (the conventional simulation dump format the paper's
// introduction contrasts against). It exists for tests and as a template
// for integrating external formats.
type RawLayout struct{}

// Name implements Layout.
func (RawLayout) Name() string { return "raw" }

// Build implements Layout.
func (RawLayout) Build(set *particles.Set, _ geom.Box) (LayoutResult, error) {
	nA := set.Schema.NumAttrs()
	res := LayoutResult{
		Buf:         set.Marshal(),
		LocalRanges: make([]bitmap.Range, nA),
		RootBitmaps: make([]bitmap.Bitmap, nA),
	}
	for a := 0; a < nA; a++ {
		r := set.AttrRange(a)
		res.LocalRanges[a] = r
		res.RootBitmaps[a] = bitmap.OfValues(set.Attrs[a], r)
	}
	return res, nil
}
