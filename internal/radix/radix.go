// Package radix implements Karras's parallel bottom-up radix tree
// construction over sorted Morton codes (paper §III-C1, [40]). Every
// internal node of the tree is computed independently from the code array,
// which lets the whole construction run in parallel. The resulting radix
// tree is directly interpretable as a k-d tree: an internal node's common
// bit prefix identifies the split axis and position.
//
// The BAT layout feeds this builder the deduplicated 12-bit subprefixes of
// the particles' Morton codes to obtain its shallow tree.
package radix

import (
	"math/bits"
	"runtime"
	"sync"

	"libbat/internal/morton"
)

// Node is an internal radix tree node. Child references >= 0 index internal
// nodes; negative references encode ^leafIndex. First and Last delimit the
// (inclusive) range of leaves the node covers.
type Node struct {
	Left, Right int32
	First, Last int32
}

// LeafRef encodes leaf index i as a child reference.
func LeafRef(i int) int32 { return int32(^i) }

// IsLeafRef decodes a child reference, reporting whether it names a leaf.
func IsLeafRef(c int32) (int, bool) {
	if c < 0 {
		return int(^c), true
	}
	return 0, false
}

// Tree is a radix tree over n sorted, unique codes: leaves are the codes in
// order and the n-1 internal nodes are stored with the root at index 0.
// For n < 2 there are no internal nodes.
type Tree struct {
	Codes []morton.Code
	Nodes []Node
}

// delta returns the length of the common bit prefix (counted over the full
// 64-bit words) of codes i and j, or -1 if j is out of range. Codes must be
// unique, so delta(i,j) < 64 for i != j.
func delta(codes []morton.Code, i, j int) int {
	if j < 0 || j >= len(codes) {
		return -1
	}
	x := uint64(codes[i]) ^ uint64(codes[j])
	return bits.LeadingZeros64(x)
}

// Build constructs the radix tree over codes, which must be sorted
// ascending and unique. The construction runs one task per internal node,
// parallelized across CPUs for large inputs.
func Build(codes []morton.Code) *Tree {
	t := &Tree{Codes: codes}
	n := len(codes)
	if n < 2 {
		return t
	}
	t.Nodes = make([]Node, n-1)

	buildRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.buildNode(i)
		}
	}
	const parallelThreshold = 4096
	if n-1 < parallelThreshold {
		buildRange(0, n-1)
		return t
	}
	workers := runtime.GOMAXPROCS(0)
	chunk := (n - 1 + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n-1 {
			hi = n - 1
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			buildRange(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return t
}

// buildNode computes internal node i following Karras's algorithm: find the
// direction and extent of the leaf range sharing a longer prefix with leaf
// i than with its other neighbor, then binary-search the split position.
func (t *Tree) buildNode(i int) {
	codes := t.Codes
	// Direction of the range: towards the neighbor with the longer common
	// prefix.
	d := 1
	if delta(codes, i, i+1) < delta(codes, i, i-1) {
		d = -1
	}
	deltaMin := delta(codes, i, i-d)
	// Exponential search for an upper bound on the range length.
	lmax := 2
	for delta(codes, i, i+lmax*d) > deltaMin {
		lmax *= 2
	}
	// Binary search the exact other end of the range.
	l := 0
	for tt := lmax / 2; tt >= 1; tt /= 2 {
		if delta(codes, i, i+(l+tt)*d) > deltaMin {
			l += tt
		}
	}
	j := i + l*d
	// Binary search the split position: the last leaf (in direction d)
	// sharing more than deltaNode bits with leaf i.
	deltaNode := delta(codes, i, j)
	s := 0
	for tt := (l + 1) / 2; ; tt = (tt + 1) / 2 {
		if delta(codes, i, i+(s+tt)*d) > deltaNode {
			s += tt
		}
		if tt <= 1 {
			break
		}
	}
	gamma := i + s*d
	if d < 0 {
		gamma--
	}
	first, last := i, j
	if d < 0 {
		first, last = j, i
	}
	node := Node{First: int32(first), Last: int32(last)}
	if first == gamma {
		node.Left = LeafRef(gamma)
	} else {
		node.Left = int32(gamma)
	}
	if last == gamma+1 {
		node.Right = LeafRef(gamma + 1)
	} else {
		node.Right = int32(gamma + 1)
	}
	t.Nodes[i] = node
}

// NumLeaves returns the number of leaves (codes).
func (t *Tree) NumLeaves() int { return len(t.Codes) }

// SharedPrefix returns the bits shared by every code covered by internal
// node n, right-aligned, together with their count. codeBits states how
// many low bits of the word each code occupies (morton.TotalBits for full
// codes, or the subprefix width for the shallow tree's merged codes).
func (t *Tree) SharedPrefix(n, codeBits int) (prefix morton.Code, length int) {
	nd := t.Nodes[n]
	d := delta(t.Codes, int(nd.First), int(nd.Last))
	// delta counts from bit 63 of the word; the code's top bit is
	// codeBits-1.
	length = d - (64 - codeBits)
	if length < 0 {
		length = 0
	}
	if length > codeBits {
		length = codeBits
	}
	prefix = t.Codes[nd.First] >> uint(codeBits-length)
	return prefix, length
}
