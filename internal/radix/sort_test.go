package radix

import (
	"math/rand"
	"sort"
	"testing"
)

// refSortPairs is the reference: a stable comparison sort by key.
func refSortPairs(keys []uint64, vals []int) {
	type pair struct {
		k uint64
		v int
	}
	ps := make([]pair, len(keys))
	for i := range keys {
		ps[i] = pair{keys[i], vals[i]}
	}
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].k < ps[b].k })
	for i, p := range ps {
		keys[i] = p.k
		vals[i] = p.v
	}
}

func genKeys(r *rand.Rand, n int, shape string) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		switch shape {
		case "uniform63":
			keys[i] = r.Uint64() >> 1
		case "dup-heavy":
			keys[i] = uint64(r.Intn(7))
		case "low-bits":
			// High bytes constant: exercises the skipped-pass path.
			keys[i] = 0xabcd<<32 | uint64(r.Intn(1<<16))
		case "sorted":
			keys[i] = uint64(i)
		case "reversed":
			keys[i] = uint64(n - i)
		}
	}
	return keys
}

func TestSortPairsMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	shapes := []string{"uniform63", "dup-heavy", "low-bits", "sorted", "reversed"}
	sizes := []int{0, 1, 2, 3, 100, 1000, sortSerialCutoff + 500}
	for _, shape := range shapes {
		for _, n := range sizes {
			for _, workers := range []int{1, 2, 3, 8} {
				keys := genKeys(r, n, shape)
				vals := make([]int, n)
				for i := range vals {
					vals[i] = i
				}
				wantK := append([]uint64(nil), keys...)
				wantV := append([]int(nil), vals...)
				refSortPairs(wantK, wantV)

				SortPairs(keys, vals, workers)
				for i := range keys {
					if keys[i] != wantK[i] || vals[i] != wantV[i] {
						t.Fatalf("%s n=%d workers=%d: mismatch at %d: got (%d,%d) want (%d,%d)",
							shape, n, workers, i, keys[i], vals[i], wantK[i], wantV[i])
					}
				}
			}
		}
	}
}

func TestSortPairsWorkerCountInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := sortSerialCutoff * 2
	keys := genKeys(r, n, "uniform63")
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	var refK []uint64
	var refV []int
	for _, workers := range []int{1, 2, 5, 16} {
		k := append([]uint64(nil), keys...)
		v := append([]int(nil), vals...)
		SortPairs(k, v, workers)
		if refK == nil {
			refK, refV = k, v
			continue
		}
		for i := range k {
			if k[i] != refK[i] || v[i] != refV[i] {
				t.Fatalf("workers=%d diverges at %d", workers, i)
			}
		}
	}
}

func TestChunkRangeCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 5, 17, 100} {
		for workers := 1; workers <= 8; workers++ {
			covered := 0
			prevHi := 0
			for w := 0; w < workers; w++ {
				lo, hi := chunkRange(n, workers, w)
				if lo < prevHi {
					t.Fatalf("n=%d w=%d/%d: overlap lo=%d prevHi=%d", n, w, workers, lo, prevHi)
				}
				if lo != prevHi && lo < n {
					t.Fatalf("n=%d w=%d/%d: gap before %d", n, w, workers, lo)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n {
				t.Fatalf("n=%d workers=%d: covered %d", n, workers, covered)
			}
		}
	}
}

func BenchmarkSortPairs(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	n := 1_000_000
	keys := genKeys(r, n, "uniform63")
	vals := make([]int, n)
	k := make([]uint64, n)
	v := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(k, keys)
		copy(v, vals)
		SortPairs(k, v, 0)
	}
}
