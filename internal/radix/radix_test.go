package radix

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"libbat/internal/morton"
)

// uniqueSortedCodes generates n unique sorted codes bounded by maxCode.
func uniqueSortedCodes(r *rand.Rand, n int, maxCode uint64) []morton.Code {
	seen := map[morton.Code]bool{}
	out := make([]morton.Code, 0, n)
	for len(out) < n {
		c := morton.Code(r.Uint64() % maxCode)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// validate checks the structural invariants of a radix tree: an in-order
// traversal from the root visits every leaf exactly once in order, node
// ranges match their subtrees, and all codes in a left subtree share a
// strictly longer prefix boundary (are strictly less) than the right.
func validate(t *testing.T, tr *Tree) {
	t.Helper()
	n := tr.NumLeaves()
	if n < 2 {
		if len(tr.Nodes) != 0 {
			t.Fatalf("tree over %d leaves has %d internal nodes", n, len(tr.Nodes))
		}
		return
	}
	if len(tr.Nodes) != n-1 {
		t.Fatalf("want %d internal nodes, got %d", n-1, len(tr.Nodes))
	}
	var order []int
	var rec func(ref int32) (first, last int)
	rec = func(ref int32) (int, int) {
		if li, ok := IsLeafRef(ref); ok {
			order = append(order, li)
			return li, li
		}
		nd := tr.Nodes[ref]
		lf, ll := rec(nd.Left)
		rf, rl := rec(nd.Right)
		if ll+1 != rf {
			t.Fatalf("node %d children not contiguous: left [%d,%d] right [%d,%d]", ref, lf, ll, rf, rl)
		}
		if int(nd.First) != lf || int(nd.Last) != rl {
			t.Fatalf("node %d range [%d,%d] != subtree [%d,%d]", ref, nd.First, nd.Last, lf, rl)
		}
		// Left codes strictly less than right codes (sorted input).
		if tr.Codes[ll] >= tr.Codes[rf] {
			t.Fatalf("node %d split violates order", ref)
		}
		return lf, rl
	}
	f, l := rec(0)
	if f != 0 || l != n-1 {
		t.Fatalf("root covers [%d,%d], want [0,%d]", f, l, n-1)
	}
	for i, li := range order {
		if li != i {
			t.Fatalf("in-order traversal out of order at %d: %v", i, order[:i+1])
		}
	}
}

func TestBuildTiny(t *testing.T) {
	if tr := Build(nil); tr.NumLeaves() != 0 || len(tr.Nodes) != 0 {
		t.Error("empty build wrong")
	}
	if tr := Build([]morton.Code{5}); tr.NumLeaves() != 1 || len(tr.Nodes) != 0 {
		t.Error("single leaf build wrong")
	}
	tr := Build([]morton.Code{2, 9})
	validate(t, tr)
}

func TestBuildSmallKnown(t *testing.T) {
	// The example-style input: codes with clear prefix structure.
	codes := []morton.Code{0b00001, 0b00010, 0b00100, 0b00101, 0b10011, 0b11000, 0b11001, 0b11110}
	tr := Build(codes)
	validate(t, tr)
	// Root splits between 0b00101 (index 3) and 0b10011 (index 4): the
	// top differing bit.
	root := tr.Nodes[0]
	if root.First != 0 || root.Last != 7 {
		t.Fatalf("root range [%d,%d]", root.First, root.Last)
	}
	lf, _ := IsLeafRef(root.Left)
	if root.Left >= 0 {
		lf = int(tr.Nodes[root.Left].Last)
	}
	if lf != 3 {
		t.Errorf("root left subtree should end at leaf 3, got %d", lf)
	}
}

func TestBuildRandomized(t *testing.T) {
	f := func(seed int64, sizeRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(sizeRaw)%300
		codes := uniqueSortedCodes(r, n, 1<<20)
		tr := Build(codes)
		// Inline validation (return false instead of Fatal).
		ok := true
		var rec func(ref int32) (int, int)
		rec = func(ref int32) (int, int) {
			if li, isLeaf := IsLeafRef(ref); isLeaf {
				return li, li
			}
			nd := tr.Nodes[ref]
			lf, ll := rec(nd.Left)
			rf, rl := rec(nd.Right)
			if ll+1 != rf || int(nd.First) != lf || int(nd.Last) != rl {
				ok = false
			}
			return lf, rl
		}
		f0, l0 := rec(0)
		return ok && f0 == 0 && l0 == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBuildDense(t *testing.T) {
	// Consecutive codes 0..n-1 give a balanced-ish binary radix tree.
	n := 1024
	codes := make([]morton.Code, n)
	for i := range codes {
		codes[i] = morton.Code(i)
	}
	tr := Build(codes)
	validate(t, tr)
}

func TestBuildParallelLarge(t *testing.T) {
	// Above the parallel threshold; validates the concurrent path.
	r := rand.New(rand.NewSource(11))
	codes := uniqueSortedCodes(r, 10000, 1<<40)
	tr := Build(codes)
	validate(t, tr)
}

func TestSharedPrefix(t *testing.T) {
	// 4-bit codes: 0b0000, 0b0011, 0b1100, 0b1111.
	codes := []morton.Code{0b0000, 0b0011, 0b1100, 0b1111}
	tr := Build(codes)
	validate(t, tr)
	// Root shares no bits.
	if _, l := tr.SharedPrefix(0, 4); l != 0 {
		t.Errorf("root shared prefix length = %d", l)
	}
	// Find the internal node covering leaves 0-1: shares prefix 0b00.
	for i, nd := range tr.Nodes {
		if nd.First == 0 && nd.Last == 1 {
			p, l := tr.SharedPrefix(i, 4)
			if l != 2 || p != 0b00 {
				t.Errorf("node[0,1] prefix = %b len %d", p, l)
			}
		}
		if nd.First == 2 && nd.Last == 3 {
			p, l := tr.SharedPrefix(i, 4)
			if l != 2 || p != 0b11 {
				t.Errorf("node[2,3] prefix = %b len %d", p, l)
			}
		}
	}
}

func TestSharedPrefixConsistency(t *testing.T) {
	// Every code under a node must actually share the node's prefix.
	r := rand.New(rand.NewSource(3))
	const codeBits = 24
	codes := uniqueSortedCodes(r, 500, 1<<codeBits)
	tr := Build(codes)
	for i := range tr.Nodes {
		p, l := tr.SharedPrefix(i, codeBits)
		for j := tr.Nodes[i].First; j <= tr.Nodes[i].Last; j++ {
			if tr.Codes[j]>>uint(codeBits-l) != p {
				t.Fatalf("node %d: code %d does not share prefix", i, j)
			}
		}
	}
}

func BenchmarkBuild64k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	codes := uniqueSortedCodes(r, 65536, 1<<45)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(codes)
	}
}
