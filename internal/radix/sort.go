// Parallel LSD radix sort over 64-bit keys with satellite values — the
// comparison-free replacement for sort.Slice in the BAT build's Morton
// ordering (Cornerstone makes the same move for its octree build: the sort
// is bandwidth-bound, so count/scatter passes beat a comparator).
//
// The sort is stable, so ties keep their input order and the result is a
// pure function of (keys, vals): the output is byte-identical no matter how
// many workers run it.
package radix

import (
	"runtime"
	"sync"
)

const (
	sortDigitBits = 8
	sortBuckets   = 1 << sortDigitBits
	sortPasses    = 64 / sortDigitBits
	// sortSerialCutoff is the input size below which the per-pass goroutine
	// fan-out costs more than it saves.
	sortSerialCutoff = 1 << 14
)

// SortPairs stably sorts keys ascending, permuting vals alongside, using an
// LSD radix sort on 8-bit digits. Digit positions on which every key agrees
// are skipped (Morton codes share their high bytes whenever the domain is
// much larger than the data extent), so the typical build pays for five or
// six passes, not eight. workers <= 1 runs serially; the sorted result is
// identical either way. The key type is any uint64-shaped integer so
// morton.Code sorts without a copy.
func SortPairs[K ~uint64](keys []K, vals []int, workers int) {
	n := len(keys)
	if n < 2 {
		return
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < sortSerialCutoff {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	// One parallel sweep counts all digit histograms up front; a pass whose
	// histogram is a single bucket would be the identity permutation.
	var hist [sortPasses][sortBuckets]int64
	countAll(keys, workers, &hist)

	tmpK := make([]K, n)
	tmpV := make([]int, n)
	src, dst := keys, tmpK
	srcV, dstV := vals, tmpV
	for pass := 0; pass < sortPasses; pass++ {
		if isSingleBucket(&hist[pass], int64(n)) {
			continue
		}
		scatterPass(src, srcV, dst, dstV, uint(pass*sortDigitBits), workers)
		src, dst = dst, src
		srcV, dstV = dstV, srcV
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
		copy(vals, srcV)
	}
}

// countAll fills hist with the digit histogram of every pass in one sweep
// over keys, fanned out across workers.
func countAll[K ~uint64](keys []K, workers int, hist *[sortPasses][sortBuckets]int64) {
	if workers <= 1 {
		for _, k := range keys {
			for p := 0; p < sortPasses; p++ {
				hist[p][(uint64(k)>>(uint(p)*sortDigitBits))&(sortBuckets-1)]++
			}
		}
		return
	}
	part := make([][sortPasses][sortBuckets]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := chunkRange(len(keys), workers, w)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := &part[w]
			for _, k := range keys[lo:hi] {
				for p := 0; p < sortPasses; p++ {
					h[p][(uint64(k)>>(uint(p)*sortDigitBits))&(sortBuckets-1)]++
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range part {
		for p := 0; p < sortPasses; p++ {
			for b := 0; b < sortBuckets; b++ {
				hist[p][b] += part[w][p][b]
			}
		}
	}
}

func isSingleBucket(h *[sortBuckets]int64, n int64) bool {
	for _, c := range h {
		if c == n {
			return true
		}
		if c != 0 {
			return false
		}
	}
	return false
}

// scatterPass performs one stable counting-sort pass on the digit at bit
// offset shift. Each worker counts its chunk, a digit-major prefix sum
// assigns every (digit, worker) pair a disjoint output region, and the
// workers scatter concurrently. Chunk-major offsets within a digit keep the
// pass stable, so the output does not depend on the worker count.
func scatterPass[K ~uint64](src []K, srcV []int, dst []K, dstV []int, shift uint, workers int) {
	n := len(src)
	if workers <= 1 {
		var count [sortBuckets]int
		for _, k := range src {
			count[(uint64(k)>>shift)&(sortBuckets-1)]++
		}
		sum := 0
		for b := 0; b < sortBuckets; b++ {
			count[b], sum = sum, sum+count[b]
		}
		for i, k := range src {
			d := (k >> shift) & (sortBuckets - 1)
			dst[count[d]] = k
			dstV[count[d]] = srcV[i]
			count[d]++
		}
		return
	}

	counts := make([][sortBuckets]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := chunkRange(n, workers, w)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			c := &counts[w]
			for _, k := range src[lo:hi] {
				c[(uint64(k)>>shift)&(sortBuckets-1)]++
			}
		}(w, lo, hi)
	}
	wg.Wait()

	// Digit-major, then chunk-major: worker w's run of digit d starts after
	// every earlier digit and after digit-d runs of earlier workers.
	sum := 0
	for b := 0; b < sortBuckets; b++ {
		for w := 0; w < workers; w++ {
			counts[w][b], sum = sum, sum+counts[w][b]
		}
	}

	for w := 0; w < workers; w++ {
		lo, hi := chunkRange(n, workers, w)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			c := &counts[w]
			for i := lo; i < hi; i++ {
				k := src[i]
				d := (k >> shift) & (sortBuckets - 1)
				dst[c[d]] = k
				dstV[c[d]] = srcV[i]
				c[d]++
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// chunkRange splits [0, n) into workers near-equal chunks and returns the
// w-th one. The split depends only on n and workers, never on scheduling.
func chunkRange(n, workers, w int) (lo, hi int) {
	chunk := (n + workers - 1) / workers
	lo = w * chunk
	hi = lo + chunk
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
