// Snapshot export and the persisted sidecar format.
//
// A Snapshot is the consistent, mergeable copy of a Recorder's state. It
// serializes two ways: as plain JSON (the /debug/access endpoint) and as a
// sidecar file — a small binary envelope around the JSON payload carrying a
// magic, a format version, and a CRC32C over the whole image, following the
// same versioning/checksum discipline as the v2 BAT and metadata formats.
// The envelope is what lets a batcompact run trust telemetry written by an
// earlier batserve generation (or reject a torn write) before merging it.
package access

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"libbat/internal/checksum"
	"libbat/internal/geom"
	"libbat/internal/morton"
)

// Sidecar envelope constants.
const (
	sidecarMagic = "BATA"
	// SidecarVersion is the current sidecar format version. Readers accept
	// exactly the versions in [1, SidecarVersion].
	SidecarVersion = 1
	// sidecar layout: magic(4) version(4) payloadLen(4) payload crc(4)
	sidecarOverhead = 16
)

// ErrChecksum marks a sidecar whose CRC32C does not match its contents —
// on-disk corruption or a torn write rather than a format mismatch.
var ErrChecksum = errors.New("access: sidecar checksum mismatch")

// SidecarName returns the conventional sidecar file name for a dataset
// base name (stored next to the dataset's .batm metadata).
func SidecarName(base string) string { return base + ".bata" }

// TreeletStat is one treelet's access counters at snapshot time.
type TreeletStat struct {
	Leaf    int   `json:"leaf"`
	Treelet int   `json:"treelet"`
	Hits    int64 `json:"hits"`
	Bytes   int64 `json:"bytes"`
	Loads   int64 `json:"loads,omitempty"`
}

// HeatCell is one non-empty heatmap cell. Cell is the Morton prefix of the
// cell (3*GridBits bits); CellBox recovers its spatial bounds.
type HeatCell struct {
	Cell  uint32 `json:"cell"`
	Count int64  `json:"count"`
}

// AttrStat is one attribute's touch count.
type AttrStat struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
}

// Snapshot is a Recorder's exported state: every slice is sorted so equal
// states marshal to identical bytes (the sidecar golden-file property).
type Snapshot struct {
	Dataset  string     `json:"dataset"`
	Bounds   [6]float64 `json:"bounds"` // x0,y0,z0,x1,y1,z1 heatmap frame
	GridBits int        `json:"grid_bits"`
	WallUnix int64      `json:"wall_unix,omitempty"` // snapshot time (0 in golden fixtures)

	Queries      int64 `json:"queries_total"`
	TreeletHits  int64 `json:"treelet_hits_total"`
	TreeletBytes int64 `json:"treelet_bytes_total"`
	TreeletLoads int64 `json:"treelet_loads_total"`

	Treelets []TreeletStat `json:"treelets,omitempty"` // sorted by (leaf, treelet)
	Heatmap  []HeatCell    `json:"heatmap,omitempty"`  // non-empty cells, sorted by cell
	Attrs    []AttrStat    `json:"attrs,omitempty"`    // sorted by name
	Recent   []QueryRecord `json:"recent_queries,omitempty"`
}

// Snapshot captures the recorder's current state. A nil recorder yields
// the zero Snapshot.
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	b := r.bounds
	s = Snapshot{
		Dataset:      r.name,
		Bounds:       [6]float64{b.Lower.X, b.Lower.Y, b.Lower.Z, b.Upper.X, b.Upper.Y, b.Upper.Z},
		GridBits:     r.gridBits,
		WallUnix:     time.Now().Unix(),
		Queries:      r.queries.Load(),
		TreeletHits:  r.treeletHits.Load(),
		TreeletBytes: r.treeletBytes.Load(),
		TreeletLoads: r.treeletLoads.Load(),
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for key, c := range sh.m {
			s.Treelets = append(s.Treelets, TreeletStat{
				Leaf:    int(int32(key >> 32)),
				Treelet: int(int32(key)),
				Hits:    c.hits.Load(),
				Bytes:   c.bytes.Load(),
				Loads:   c.loads.Load(),
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(s.Treelets, func(i, j int) bool {
		if s.Treelets[i].Leaf != s.Treelets[j].Leaf {
			return s.Treelets[i].Leaf < s.Treelets[j].Leaf
		}
		return s.Treelets[i].Treelet < s.Treelets[j].Treelet
	})
	for cell := range r.cells {
		if n := r.cells[cell].Load(); n != 0 {
			s.Heatmap = append(s.Heatmap, HeatCell{Cell: uint32(cell), Count: n})
		}
	}
	r.attrMu.Lock()
	for name, c := range r.attrs {
		if n := c.Load(); n != 0 {
			s.Attrs = append(s.Attrs, AttrStat{Name: name, Count: n})
		}
	}
	r.attrMu.Unlock()
	sort.Slice(s.Attrs, func(i, j int) bool { return s.Attrs[i].Name < s.Attrs[j].Name })
	s.Recent = r.RecentQueries()
	return s
}

// MergeSnapshot folds a previously persisted snapshot into the live
// recorder — how batserve resumes telemetry across restarts. The snapshot
// must describe the same heatmap frame (grid depth); counts are summed and
// the persisted recent queries are replayed into the ring (oldest first)
// without recounting them in Queries beyond their recorded total.
func (r *Recorder) MergeSnapshot(s Snapshot) error {
	if r == nil {
		return nil
	}
	if s.GridBits != r.gridBits {
		return fmt.Errorf("access: cannot merge grid depth %d into %d", s.GridBits, r.gridBits)
	}
	for _, t := range s.Treelets {
		c := r.counts(t.Leaf, t.Treelet)
		c.hits.Add(t.Hits)
		c.bytes.Add(t.Bytes)
		c.loads.Add(t.Loads)
	}
	r.treeletHits.Add(s.TreeletHits)
	r.treeletBytes.Add(s.TreeletBytes)
	r.treeletLoads.Add(s.TreeletLoads)
	for _, h := range s.Heatmap {
		if int(h.Cell) < len(r.cells) {
			r.cells[h.Cell].Add(h.Count)
		}
	}
	for _, a := range s.Attrs {
		r.TouchAttr(a.Name, a.Count)
	}
	// Replay the ring, then correct the query total: Record counted each
	// replayed entry once, but the snapshot's Queries already includes
	// them (plus any that aged out of its ring).
	for _, q := range s.Recent {
		if q.UnixNano == 0 {
			q.UnixNano = -1 // keep persisted zero-stamps from being re-stamped
		}
		r.Record(q)
	}
	r.queries.Add(s.Queries - int64(len(s.Recent)))
	return nil
}

// Merge folds other into s (summing counters, concatenating recent queries
// in time order). Both snapshots must share a grid depth. This is the
// cross-replica combine a batcompact run applies before ranking datasets.
func (s *Snapshot) Merge(other Snapshot) error {
	if s.GridBits != other.GridBits {
		return fmt.Errorf("access: cannot merge grid depth %d into %d", other.GridBits, s.GridBits)
	}
	if s.Dataset == "" {
		s.Dataset = other.Dataset
		s.Bounds = other.Bounds
	}
	if other.WallUnix > s.WallUnix {
		s.WallUnix = other.WallUnix
	}
	s.Queries += other.Queries
	s.TreeletHits += other.TreeletHits
	s.TreeletBytes += other.TreeletBytes
	s.TreeletLoads += other.TreeletLoads

	byTreelet := map[uint64]int{}
	for i, t := range s.Treelets {
		byTreelet[treeletKey(t.Leaf, t.Treelet)] = i
	}
	for _, t := range other.Treelets {
		if i, ok := byTreelet[treeletKey(t.Leaf, t.Treelet)]; ok {
			s.Treelets[i].Hits += t.Hits
			s.Treelets[i].Bytes += t.Bytes
			s.Treelets[i].Loads += t.Loads
		} else {
			s.Treelets = append(s.Treelets, t)
		}
	}
	sort.Slice(s.Treelets, func(i, j int) bool {
		if s.Treelets[i].Leaf != s.Treelets[j].Leaf {
			return s.Treelets[i].Leaf < s.Treelets[j].Leaf
		}
		return s.Treelets[i].Treelet < s.Treelets[j].Treelet
	})

	byCell := map[uint32]int{}
	for i, h := range s.Heatmap {
		byCell[h.Cell] = i
	}
	for _, h := range other.Heatmap {
		if i, ok := byCell[h.Cell]; ok {
			s.Heatmap[i].Count += h.Count
		} else {
			s.Heatmap = append(s.Heatmap, h)
		}
	}
	sort.Slice(s.Heatmap, func(i, j int) bool { return s.Heatmap[i].Cell < s.Heatmap[j].Cell })

	byAttr := map[string]int{}
	for i, a := range s.Attrs {
		byAttr[a.Name] = i
	}
	for _, a := range other.Attrs {
		if i, ok := byAttr[a.Name]; ok {
			s.Attrs[i].Count += a.Count
		} else {
			s.Attrs = append(s.Attrs, a)
		}
	}
	sort.Slice(s.Attrs, func(i, j int) bool { return s.Attrs[i].Name < s.Attrs[j].Name })

	s.Recent = append(s.Recent, other.Recent...)
	sort.SliceStable(s.Recent, func(i, j int) bool { return s.Recent[i].UnixNano < s.Recent[j].UnixNano })
	return nil
}

// Box returns the heatmap frame as a geom.Box.
func (s Snapshot) Box() geom.Box {
	return geom.NewBox(geom.V3(s.Bounds[0], s.Bounds[1], s.Bounds[2]),
		geom.V3(s.Bounds[3], s.Bounds[4], s.Bounds[5]))
}

// CellBox returns the spatial bounds of a heatmap cell index under the
// snapshot's grid.
func (s Snapshot) CellBox(cell uint32) geom.Box {
	return morton.CellBounds(morton.Code(cell), 3*s.GridBits, s.Box())
}

// HotCells returns the n highest-count heatmap cells, hottest first (ties
// broken by cell index for determinism).
func (s Snapshot) HotCells(n int) []HeatCell {
	out := append([]HeatCell(nil), s.Heatmap...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Cell < out[j].Cell
	})
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// HotTreelets returns the n most-hit treelets, hottest first.
func (s Snapshot) HotTreelets(n int) []TreeletStat {
	out := append([]TreeletStat(nil), s.Treelets...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		if out[i].Leaf != out[j].Leaf {
			return out[i].Leaf < out[j].Leaf
		}
		return out[i].Treelet < out[j].Treelet
	})
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Marshal serializes the snapshot as a sidecar image: magic, format
// version, payload length, JSON payload, and a trailing CRC32C over
// everything before it. Equal snapshots marshal to identical bytes.
func (s Snapshot) Marshal() ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	if int64(len(payload)) > math.MaxUint32 {
		return nil, fmt.Errorf("access: snapshot payload %d bytes exceeds sidecar limit", len(payload))
	}
	buf := make([]byte, 0, sidecarOverhead+len(payload))
	buf = append(buf, sidecarMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, SidecarVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, checksum.CRC32C(buf))
	return buf, nil
}

// Unmarshal parses and verifies a sidecar image: the magic and version
// must be recognized and the trailing CRC32C must match (ErrChecksum
// otherwise).
func Unmarshal(buf []byte) (Snapshot, error) {
	var s Snapshot
	if len(buf) < sidecarOverhead {
		return s, fmt.Errorf("access: sidecar too short (%d bytes)", len(buf))
	}
	if string(buf[:4]) != sidecarMagic {
		return s, fmt.Errorf("access: bad sidecar magic %q", buf[:4])
	}
	ver := binary.LittleEndian.Uint32(buf[4:])
	if ver < 1 || ver > SidecarVersion {
		return s, fmt.Errorf("access: unsupported sidecar version %d (supported: 1-%d)", ver, SidecarVersion)
	}
	payloadLen := binary.LittleEndian.Uint32(buf[8:])
	if int64(payloadLen) != int64(len(buf)-sidecarOverhead) {
		return s, fmt.Errorf("access: sidecar payload length %d does not match file size %d", payloadLen, len(buf))
	}
	want := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := checksum.CRC32C(buf[:len(buf)-4]); got != want {
		return s, fmt.Errorf("%w: %08x != %08x", ErrChecksum, got, want)
	}
	if err := json.Unmarshal(buf[12:len(buf)-4], &s); err != nil {
		return s, fmt.Errorf("access: sidecar payload: %w", err)
	}
	return s, nil
}

// WritePrometheus renders the snapshot's series in the Prometheus text
// exposition format, labeled by dataset. Treelet series are per (leaf,
// treelet) — debug-endpoint cardinality, intended for /debug/access rather
// than a fleet-wide scrape.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	ds := s.Dataset
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("# TYPE access_queries_total counter\n")
	pf("access_queries_total{dataset=%q} %d\n", ds, s.Queries)
	pf("# TYPE access_treelet_hits_total counter\n")
	pf("access_treelet_hits_total{dataset=%q} %d\n", ds, s.TreeletHits)
	pf("# TYPE access_treelet_bytes_total counter\n")
	pf("access_treelet_bytes_total{dataset=%q} %d\n", ds, s.TreeletBytes)
	pf("# TYPE access_treelet_loads_total counter\n")
	pf("access_treelet_loads_total{dataset=%q} %d\n", ds, s.TreeletLoads)
	if len(s.Treelets) > 0 {
		pf("# TYPE access_treelet_hits counter\n")
		for _, t := range s.Treelets {
			pf("access_treelet_hits{dataset=%q,leaf=\"%d\",treelet=\"%d\"} %d\n", ds, t.Leaf, t.Treelet, t.Hits)
		}
	}
	if len(s.Heatmap) > 0 {
		pf("# TYPE access_heatmap_count counter\n")
		for _, h := range s.Heatmap {
			pf("access_heatmap_count{dataset=%q,cell=\"%d\"} %d\n", ds, h.Cell, h.Count)
		}
	}
	if len(s.Attrs) > 0 {
		pf("# TYPE access_attr_touches_total counter\n")
		for _, a := range s.Attrs {
			pf("access_attr_touches_total{attr=%q,dataset=%q} %d\n", a.Name, ds, a.Count)
		}
	}
	return err
}
