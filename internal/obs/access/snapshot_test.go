package access

import (
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"

	"libbat/internal/geom"
)

// goldenSnapshot is a fully populated snapshot with deterministic fields
// (WallUnix 0, fixed timestamps). Changing the sidecar format or the JSON
// field set/order will break TestSidecarGolden — bump SidecarVersion and
// regenerate the golden when that is intentional.
func goldenSnapshot() Snapshot {
	return Snapshot{
		Dataset:      "golden-ds",
		Bounds:       [6]float64{0, 0, 0, 2, 1, 1},
		GridBits:     4,
		Queries:      3,
		TreeletHits:  4,
		TreeletBytes: 4096,
		TreeletLoads: 2,
		Treelets: []TreeletStat{
			{Leaf: 0, Treelet: 1, Hits: 3, Bytes: 3072, Loads: 1},
			{Leaf: 1, Treelet: 0, Hits: 1, Bytes: 1024, Loads: 1},
		},
		Heatmap: []HeatCell{{Cell: 0, Count: 3}, {Cell: 3584, Count: 1}},
		Attrs:   []AttrStat{{Name: "mass", Count: 2}},
		Recent: []QueryRecord{
			{UnixNano: 1700000000000000001, Source: "test", Box: &[6]float64{0, 0, 0, 1, 1, 1},
				Filters: []FilterRange{{Attr: "mass", Min: 0, Max: 10}}, Quality: 1,
				Workers: 4, Treelets: 2, Particles: 100, Seconds: 0.25, CacheHitRatio: 0.5},
		},
	}
}

// goldenSidecar is the exact sidecar image of goldenSnapshot() under
// format version 1: "BATA", version, payload length, JSON payload, CRC32C.
const goldenSidecar = "BATA\x01\x00\x00\x00\x50\x02\x00\x00" +
	`{"dataset":"golden-ds","bounds":[0,0,0,2,1,1],"grid_bits":4,` +
	`"queries_total":3,"treelet_hits_total":4,"treelet_bytes_total":4096,` +
	`"treelet_loads_total":2,"treelets":[{"leaf":0,"treelet":1,"hits":3,` +
	`"bytes":3072,"loads":1},{"leaf":1,"treelet":0,"hits":1,"bytes":1024,` +
	`"loads":1}],"heatmap":[{"cell":0,"count":3},{"cell":3584,"count":1}],` +
	`"attrs":[{"name":"mass","count":2}],"recent_queries":[{"unix_nano":` +
	`1700000000000000001,"source":"test","box":[0,0,0,1,1,1],"filters":` +
	`[{"attr":"mass","min":0,"max":10}],"quality":1,"workers":4,` +
	`"treelets":2,"particles":100,"seconds":0.25,"cache_hit_ratio":0.5}]}` +
	"\x5f\x3f\xab\x89"

func TestSidecarGolden(t *testing.T) {
	buf, err := goldenSnapshot().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != goldenSidecar {
		t.Fatalf("sidecar image changed:\n got %q\nwant %q", buf, goldenSidecar)
	}
	// And it round-trips through the CRC-verifying loader.
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, goldenSnapshot()) {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestSidecarCorruption(t *testing.T) {
	buf, err := goldenSnapshot().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Any single flipped payload byte must fail the CRC.
	for _, off := range []int{12, len(buf) / 2, len(buf) - 5} {
		bad := append([]byte(nil), buf...)
		bad[off] ^= 0x40
		if _, err := Unmarshal(bad); !errors.Is(err, ErrChecksum) {
			t.Errorf("flip at %d: err = %v, want ErrChecksum", off, err)
		}
	}
	// Truncation, bad magic, and a future version fail with plain errors.
	if _, err := Unmarshal(buf[:10]); err == nil || errors.Is(err, ErrChecksum) {
		t.Errorf("truncated: err = %v", err)
	}
	bad := append([]byte(nil), buf...)
	copy(bad, "NOPE")
	if _, err := Unmarshal(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v", err)
	}
	bad = append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(bad[4:], SidecarVersion+1)
	if _, err := Unmarshal(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version: err = %v", err)
	}
	// A length field inconsistent with the file size is rejected before
	// the payload is parsed.
	bad = append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(bad[8:], 7)
	if _, err := Unmarshal(bad); err == nil || !strings.Contains(err.Error(), "length") {
		t.Errorf("bad length: err = %v", err)
	}
}

// TestSidecarRoundTripMerge is the write -> CRC-verify -> load -> merge
// path a batcompact run would take over telemetry from two replicas.
func TestSidecarRoundTripMerge(t *testing.T) {
	bounds := geom.NewBox(geom.V3(0, 0, 0), geom.V3(2, 1, 1))
	replica := func(tag string, leaf int) Snapshot {
		r := New("ds", bounds, Options{RingSize: 4})
		r.Treelet(leaf, 0, 100, geom.V3(0.25, 0.5, 0.5))
		r.Treelet(0, 1, 200, geom.V3(1.75, 0.5, 0.5))
		r.TreeletLoad(leaf, 0)
		r.TouchAttr("mass", 1)
		r.Record(QueryRecord{UnixNano: int64(leaf + 1), Source: tag, Particles: 5})
		s := r.Snapshot()
		s.WallUnix = 0
		return s
	}
	a, b := replica("ra", 0), replica("rb", 1)

	// Persist replica A and load it back through the checksum.
	buf, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, a) {
		t.Fatalf("loaded = %+v\nwant %+v", loaded, a)
	}

	// Merge replica B into it and check the combined counters.
	if err := loaded.Merge(b); err != nil {
		t.Fatal(err)
	}
	if loaded.Queries != 2 || loaded.TreeletHits != 4 || loaded.TreeletBytes != 600 {
		t.Fatalf("merged totals = %+v", loaded)
	}
	wantTreelets := []TreeletStat{
		{Leaf: 0, Treelet: 0, Hits: 1, Bytes: 100, Loads: 1},
		{Leaf: 0, Treelet: 1, Hits: 2, Bytes: 400},
		{Leaf: 1, Treelet: 0, Hits: 1, Bytes: 100, Loads: 1},
	}
	if !reflect.DeepEqual(loaded.Treelets, wantTreelets) {
		t.Fatalf("merged treelets = %+v", loaded.Treelets)
	}
	var heat int64
	for _, h := range loaded.Heatmap {
		heat += h.Count
	}
	if heat != 4 {
		t.Fatalf("merged heatmap mass = %d", heat)
	}
	if len(loaded.Attrs) != 1 || loaded.Attrs[0].Count != 2 {
		t.Fatalf("merged attrs = %+v", loaded.Attrs)
	}
	if len(loaded.Recent) != 2 || loaded.Recent[0].Source != "ra" || loaded.Recent[1].Source != "rb" {
		t.Fatalf("merged recent = %+v", loaded.Recent)
	}
	// Mismatched grids must refuse to merge.
	other := Snapshot{GridBits: loaded.GridBits + 1}
	if err := loaded.Merge(other); err == nil {
		t.Fatal("merged mismatched grids")
	}

	// And the merged snapshot also seeds a live recorder (restart path).
	r2 := New("ds", bounds, Options{})
	if err := r2.MergeSnapshot(loaded); err != nil {
		t.Fatal(err)
	}
	s2 := r2.Snapshot()
	if s2.Queries != 2 || s2.TreeletHits != 4 || !reflect.DeepEqual(s2.Treelets, wantTreelets) {
		t.Fatalf("recorder-merged = %+v", s2)
	}
	if err := r2.MergeSnapshot(other); err == nil {
		t.Fatal("recorder merged mismatched grids")
	}
}

func TestSnapshotPrometheus(t *testing.T) {
	var sb strings.Builder
	if err := goldenSnapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`access_queries_total{dataset="golden-ds"} 3`,
		`access_treelet_hits_total{dataset="golden-ds"} 4`,
		`access_treelet_hits{dataset="golden-ds",leaf="0",treelet="1"} 3`,
		`access_heatmap_count{dataset="golden-ds",cell="3584"} 1`,
		`access_attr_touches_total{attr="mass",dataset="golden-ds"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
