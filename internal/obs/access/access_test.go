package access

import (
	"fmt"
	"sync"
	"testing"

	"libbat/internal/geom"
)

func unitBox() geom.Box { return geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1)) }

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Treelet(0, 1, 100, geom.V3(0.5, 0.5, 0.5))
	r.TreeletLoad(0, 1)
	r.TouchAttr("mass", 1)
	r.Record(QueryRecord{})
	if got := r.RecentQueries(); got != nil {
		t.Errorf("nil recorder RecentQueries = %v", got)
	}
	s := r.Snapshot()
	if s.Queries != 0 || len(s.Treelets) != 0 {
		t.Errorf("nil recorder snapshot = %+v", s)
	}
	if err := r.MergeSnapshot(Snapshot{GridBits: 9}); err != nil {
		t.Errorf("nil recorder MergeSnapshot = %v", err)
	}
	if r.Name() != "" {
		t.Errorf("nil recorder Name = %q", r.Name())
	}

	var g *Registry
	if g.Get("x", unitBox()) != nil || g.Lookup("x") != nil {
		t.Error("nil registry returned a recorder")
	}
	if g.Recorders() != nil || g.Snapshots() != nil {
		t.Error("nil registry returned recorders")
	}
}

func TestRecorderCounts(t *testing.T) {
	r := New("ds", unitBox(), Options{})
	r.Treelet(0, 3, 100, geom.V3(0.1, 0.1, 0.1))
	r.Treelet(0, 3, 100, geom.V3(0.1, 0.1, 0.1))
	r.Treelet(1, 0, 50, geom.V3(0.9, 0.9, 0.9))
	r.TreeletLoad(0, 3)
	r.TouchAttr("mass", 2)
	r.Record(QueryRecord{Particles: 10, Treelets: 2, Seconds: 0.5})

	s := r.Snapshot()
	if s.Dataset != "ds" || s.GridBits != DefGridBits {
		t.Fatalf("snapshot header = %+v", s)
	}
	if s.Queries != 1 || s.TreeletHits != 3 || s.TreeletBytes != 250 || s.TreeletLoads != 1 {
		t.Fatalf("totals = %d/%d/%d/%d", s.Queries, s.TreeletHits, s.TreeletBytes, s.TreeletLoads)
	}
	want := []TreeletStat{
		{Leaf: 0, Treelet: 3, Hits: 2, Bytes: 200, Loads: 1},
		{Leaf: 1, Treelet: 0, Hits: 1, Bytes: 50},
	}
	if len(s.Treelets) != len(want) {
		t.Fatalf("treelets = %+v", s.Treelets)
	}
	for i, w := range want {
		if s.Treelets[i] != w {
			t.Errorf("treelet[%d] = %+v, want %+v", i, s.Treelets[i], w)
		}
	}
	if len(s.Heatmap) != 2 {
		t.Fatalf("heatmap = %+v", s.Heatmap)
	}
	// The two touched corners must land in different cells, and each
	// cell's recovered box must contain the touch point.
	lowCell, hiCell := s.Heatmap[0], s.Heatmap[1]
	if !s.CellBox(lowCell.Cell).Contains(geom.V3(0.1, 0.1, 0.1)) {
		t.Errorf("cell %d box %v does not contain the low corner", lowCell.Cell, s.CellBox(lowCell.Cell))
	}
	if !s.CellBox(hiCell.Cell).Contains(geom.V3(0.9, 0.9, 0.9)) {
		t.Errorf("cell %d box %v does not contain the high corner", hiCell.Cell, s.CellBox(hiCell.Cell))
	}
	if hot := s.HotCells(1); len(hot) != 1 || hot[0].Count != 2 {
		t.Errorf("HotCells = %+v", hot)
	}
	if hot := s.HotTreelets(1); len(hot) != 1 || (hot[0].Leaf != 0 || hot[0].Treelet != 3) {
		t.Errorf("HotTreelets = %+v", hot)
	}
	if len(s.Attrs) != 1 || s.Attrs[0] != (AttrStat{Name: "mass", Count: 2}) {
		t.Errorf("attrs = %+v", s.Attrs)
	}
	if len(s.Recent) != 1 || s.Recent[0].Particles != 10 || s.Recent[0].UnixNano == 0 {
		t.Errorf("recent = %+v", s.Recent)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := New("ds", unitBox(), Options{RingSize: 3})
	for i := 1; i <= 5; i++ {
		r.Record(QueryRecord{UnixNano: int64(i), Particles: int64(i)})
	}
	got := r.RecentQueries()
	if len(got) != 3 {
		t.Fatalf("ring length %d", len(got))
	}
	for i, want := range []int64{3, 4, 5} {
		if got[i].Particles != want {
			t.Errorf("ring[%d] = %+v, want particles %d", i, got[i], want)
		}
	}
	if s := r.Snapshot(); s.Queries != 5 {
		t.Errorf("queries_total = %d, want 5", s.Queries)
	}
}

func TestGridBitsClamped(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, DefGridBits}, {-3, 1}, {2, 2}, {99, maxGridBits}} {
		r := New("ds", unitBox(), Options{GridBits: tc.in})
		if r.gridBits != tc.want {
			t.Errorf("GridBits %d -> %d, want %d", tc.in, r.gridBits, tc.want)
		}
		if len(r.cells) != 1<<(3*tc.want) {
			t.Errorf("GridBits %d -> %d cells", tc.in, len(r.cells))
		}
	}
}

func TestDegenerateBounds(t *testing.T) {
	// A flat (2D) domain must not produce NaN cells.
	flat := geom.NewBox(geom.V3(0, 0, 5), geom.V3(1, 1, 5))
	r := New("flat", flat, Options{})
	r.Treelet(0, 0, 1, geom.V3(0.5, 0.5, 5))
	s := r.Snapshot()
	if len(s.Heatmap) != 1 {
		t.Fatalf("heatmap = %+v", s.Heatmap)
	}
	if int(s.Heatmap[0].Cell) >= len(r.cells) {
		t.Fatalf("cell %d out of range", s.Heatmap[0].Cell)
	}
}

func TestRegistry(t *testing.T) {
	g := NewRegistry(Options{GridBits: 3})
	a := g.Get("b-ds", unitBox())
	if a == nil || g.Get("b-ds", unitBox()) != a {
		t.Fatal("Get is not idempotent")
	}
	g.Get("a-ds", unitBox())
	recs := g.Recorders()
	if len(recs) != 2 || recs[0].Name() != "a-ds" || recs[1].Name() != "b-ds" {
		t.Fatalf("recorders = %v", recs)
	}
	if g.Lookup("missing") != nil {
		t.Error("Lookup invented a recorder")
	}
	snaps := g.Snapshots()
	if len(snaps) != 2 || snaps[0].Dataset != "a-ds" || snaps[0].GridBits != 3 {
		t.Fatalf("snapshots = %+v", snaps)
	}
}

// TestConcurrentRecorder hammers one recorder from many goroutines; run
// under -race it is the recorder's thread-safety proof, and the final
// totals check that no increment was lost.
func TestConcurrentRecorder(t *testing.T) {
	r := New("ds", unitBox(), Options{RingSize: 8})
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ti := (w*perWorker + i) % 37
				r.Treelet(w%3, ti, 10, geom.V3(float64(ti)/37, 0.5, 0.5))
				if i%5 == 0 {
					r.TreeletLoad(w%3, ti)
				}
				r.TouchAttr(fmt.Sprintf("attr%d", w%2), 1)
				r.Record(QueryRecord{UnixNano: int64(w*perWorker + i + 1), Treelets: 1})
				r.Snapshot() // concurrent readers must be safe too
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	const total = workers * perWorker
	if s.TreeletHits != total || s.TreeletBytes != total*10 || s.Queries != total {
		t.Fatalf("totals = hits %d bytes %d queries %d, want %d/%d/%d",
			s.TreeletHits, s.TreeletBytes, s.Queries, total, total*10, total)
	}
	var attrs int64
	for _, a := range s.Attrs {
		attrs += a.Count
	}
	if attrs != total {
		t.Fatalf("attr touches = %d, want %d", attrs, total)
	}
	var perTreelet int64
	for _, ts := range s.Treelets {
		perTreelet += ts.Hits
	}
	if perTreelet != total {
		t.Fatalf("per-treelet hits = %d, want %d", perTreelet, total)
	}
	var heat int64
	for _, h := range s.Heatmap {
		heat += h.Count
	}
	if heat != total {
		t.Fatalf("heatmap mass = %d, want %d", heat, total)
	}
	if len(s.Recent) != 8 {
		t.Fatalf("ring = %d entries, want 8", len(s.Recent))
	}
}
