// Package access is the read-path access-telemetry layer: it observes
// *which* data queries touch, not just how long they take. A per-dataset
// Recorder captures per-treelet hit/byte/load counts, a coarse spatial
// heatmap binned on a fixed-depth Morton grid of the dataset bounds,
// per-attribute touch counts, and a bounded ring of recent structured query
// records. Snapshots are exportable as JSON or Prometheus series and
// persistable to a versioned, CRC32C-checksummed sidecar file, so a future
// batcompact daemon can merge observed access patterns across batserve
// restarts and replicas and rewrite hot datasets with read-optimized
// parameters (the query-driven reorganization of Wan et al.,
// arXiv:2107.07108).
//
// Like internal/obs, the package is nil-safe when disabled: every method on
// a nil *Recorder (or nil *Registry) is a no-op, so instrumented hot paths
// pay only a nil check. All methods are safe for concurrent use.
package access

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"libbat/internal/geom"
	"libbat/internal/morton"
)

// Default telemetry shape. GridBits is bits per axis of the heatmap grid:
// 4 bits gives a 16x16x16 grid (4096 cells, 32 KiB of counters), coarse
// enough to be cheap and fine enough to localize a hot region.
const (
	DefGridBits = 4
	DefRingSize = 256
	maxGridBits = 6 // 64^3 cells = 2 MiB of counters; beyond that is not "coarse"
)

// accessShards spreads the treelet-count map over independently locked
// shards so parallel traversal workers do not contend on one mutex.
const accessShards = 16

// Options shapes a Recorder. The zero value selects the defaults.
type Options struct {
	// GridBits is the heatmap resolution in bits per axis (grid is
	// 2^GridBits cells per axis). 0 selects DefGridBits; values are
	// clamped to [1, 6].
	GridBits int
	// RingSize bounds the recent-query ring. 0 selects DefRingSize.
	RingSize int
}

func (o Options) gridBits() int {
	b := o.GridBits
	if b == 0 {
		b = DefGridBits
	}
	if b < 1 {
		b = 1
	}
	if b > maxGridBits {
		b = maxGridBits
	}
	return b
}

func (o Options) ringSize() int {
	if o.RingSize <= 0 {
		return DefRingSize
	}
	return o.RingSize
}

// FilterRange is one attribute filter of a recorded query, by attribute
// name so records stay meaningful across schema reorderings.
type FilterRange struct {
	Attr string  `json:"attr"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// QueryRecord is one structured entry of the recent-query ring: what the
// query asked for and what answering it cost.
type QueryRecord struct {
	UnixNano int64  `json:"unix_nano"`
	Source   string `json:"source,omitempty"` // e.g. "dataset", "batserve:/points", "core.read"
	Rank     int    `json:"rank,omitempty"`   // collective reads: the serving rank

	// Box is the query bounds as [x0,y0,z0,x1,y1,z1]; nil for full-domain.
	Box         *[6]float64   `json:"box,omitempty"`
	Filters     []FilterRange `json:"filters,omitempty"`
	PrevQuality float64       `json:"prev_quality,omitempty"`
	Quality     float64       `json:"quality,omitempty"`
	Workers     int           `json:"workers,omitempty"`

	Treelets       int64   `json:"treelets"`
	Particles      int64   `json:"particles"`
	Pruned         int64   `json:"pruned,omitempty"`
	FalsePositives int64   `json:"false_positives,omitempty"`
	Seconds        float64 `json:"seconds"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
}

// BoxRecord flattens a geom.Box into the QueryRecord wire form.
func BoxRecord(b *geom.Box) *[6]float64 {
	if b == nil {
		return nil
	}
	return &[6]float64{b.Lower.X, b.Lower.Y, b.Lower.Z, b.Upper.X, b.Upper.Y, b.Upper.Z}
}

// treeletCounts accumulates one treelet's access counters. The fields are
// atomic so only the shard map lookup needs the shard lock.
type treeletCounts struct {
	hits  atomic.Int64 // query traversals that touched the treelet
	bytes atomic.Int64 // on-disk bytes those traversals covered
	loads atomic.Int64 // cache misses: times the treelet was parsed from storage
}

type treeletShard struct {
	mu sync.Mutex
	m  map[uint64]*treeletCounts
}

// Recorder captures the observed access pattern of one dataset. Create
// with New; a nil *Recorder is the disabled state and every method no-ops.
type Recorder struct {
	name     string
	bounds   geom.Box
	gridBits int
	ringCap  int

	cells []atomic.Int64 // heatmap, 1 << (3*gridBits) Morton-ordered cells

	queries      atomic.Int64
	treeletHits  atomic.Int64
	treeletBytes atomic.Int64
	treeletLoads atomic.Int64

	shards [accessShards]treeletShard

	attrMu sync.Mutex
	attrs  map[string]*atomic.Int64

	ringMu   sync.Mutex
	ring     []QueryRecord // capacity ringCap, oldest overwritten first
	ringPos  int           // next write position
	ringFull bool
}

// New creates an enabled Recorder for the named dataset. bounds is the
// dataset's spatial domain — the reference frame of the heatmap grid.
func New(name string, bounds geom.Box, opts Options) *Recorder {
	// A degenerate domain (zero extent on an axis) would make Morton
	// quantization divide by zero; inflate such axes so every point lands
	// in cell 0 along them instead.
	sz := bounds.Size()
	if sz.X <= 0 {
		bounds.Upper.X = bounds.Lower.X + 1
	}
	if sz.Y <= 0 {
		bounds.Upper.Y = bounds.Lower.Y + 1
	}
	if sz.Z <= 0 {
		bounds.Upper.Z = bounds.Lower.Z + 1
	}
	r := &Recorder{
		name:     name,
		bounds:   bounds,
		gridBits: opts.gridBits(),
		ringCap:  opts.ringSize(),
		attrs:    map[string]*atomic.Int64{},
	}
	r.cells = make([]atomic.Int64, 1<<(3*r.gridBits))
	r.ring = make([]QueryRecord, r.ringCap)
	for i := range r.shards {
		r.shards[i].m = map[uint64]*treeletCounts{}
	}
	return r
}

// Name returns the dataset name the recorder observes ("" on nil).
func (r *Recorder) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Bounds returns the heatmap's spatial reference frame.
func (r *Recorder) Bounds() geom.Box {
	if r == nil {
		return geom.Box{}
	}
	return r.bounds
}

// treeletKey packs a (leaf file, treelet) pair into one map key.
func treeletKey(leaf, treelet int) uint64 {
	return uint64(uint32(leaf))<<32 | uint64(uint32(treelet))
}

func (r *Recorder) counts(leaf, treelet int) *treeletCounts {
	key := treeletKey(leaf, treelet)
	// Fibonacci hash of the key picks the shard (same spreading trick as
	// the treelet cache).
	sh := &r.shards[(uint32(key)^uint32(key>>32))*2654435761>>28]
	sh.mu.Lock()
	c, ok := sh.m[key]
	if !ok {
		c = &treeletCounts{}
		sh.m[key] = c
	}
	sh.mu.Unlock()
	return c
}

// cellOf maps a point to its heatmap cell: the top 3*gridBits bits of the
// point's Morton code relative to the dataset bounds, so cell indices are
// Morton prefixes and morton.CellBounds recovers each cell's box.
func (r *Recorder) cellOf(p geom.Vec3) uint32 {
	return uint32(morton.FromPoint(p, r.bounds).Subprefix(3 * r.gridBits))
}

// Treelet records one query traversal touching a treelet: hit and byte
// counts for the (leaf, treelet) pair, and a heatmap increment at center
// (the treelet's spatial bounds center).
func (r *Recorder) Treelet(leaf, treelet int, bytes int64, center geom.Vec3) {
	if r == nil {
		return
	}
	c := r.counts(leaf, treelet)
	c.hits.Add(1)
	c.bytes.Add(bytes)
	r.treeletHits.Add(1)
	r.treeletBytes.Add(bytes)
	r.cells[r.cellOf(center)].Add(1)
}

// TreeletLoad records a treelet cache miss: the treelet was parsed from
// storage (rather than served from memory). The hits-to-loads ratio per
// treelet is the cache-thrash signal a reorganizer watches.
func (r *Recorder) TreeletLoad(leaf, treelet int) {
	if r == nil {
		return
	}
	r.counts(leaf, treelet).loads.Add(1)
	r.treeletLoads.Add(1)
}

// TouchAttr records n accesses of the named attribute (filter evaluation
// or attribute streaming).
func (r *Recorder) TouchAttr(name string, n int64) {
	if r == nil {
		return
	}
	r.attrMu.Lock()
	c, ok := r.attrs[name]
	if !ok {
		c = &atomic.Int64{}
		r.attrs[name] = c
	}
	r.attrMu.Unlock()
	c.Add(n)
}

// Record appends one query record to the ring (overwriting the oldest when
// full) and counts it. A zero UnixNano is stamped with the current time.
func (r *Recorder) Record(q QueryRecord) {
	if r == nil {
		return
	}
	if q.UnixNano == 0 {
		q.UnixNano = time.Now().UnixNano()
	}
	r.queries.Add(1)
	r.ringMu.Lock()
	r.ring[r.ringPos] = q
	r.ringPos++
	if r.ringPos == r.ringCap {
		r.ringPos, r.ringFull = 0, true
	}
	r.ringMu.Unlock()
}

// RecentQueries returns the ring's records, oldest first.
func (r *Recorder) RecentQueries() []QueryRecord {
	if r == nil {
		return nil
	}
	r.ringMu.Lock()
	defer r.ringMu.Unlock()
	if !r.ringFull {
		return append([]QueryRecord(nil), r.ring[:r.ringPos]...)
	}
	out := make([]QueryRecord, 0, r.ringCap)
	out = append(out, r.ring[r.ringPos:]...)
	out = append(out, r.ring[:r.ringPos]...)
	return out
}

// Registry holds one Recorder per dataset, for processes (batserve, the
// collective read path) that serve many datasets. Nil-safe: a nil
// *Registry returns nil Recorders, keeping telemetry fully disabled.
type Registry struct {
	opts Options
	mu   sync.Mutex
	m    map[string]*Recorder
}

// NewRegistry creates a registry whose Recorders share opts.
func NewRegistry(opts Options) *Registry {
	return &Registry{opts: opts, m: map[string]*Recorder{}}
}

// Get returns the recorder for the named dataset, creating it (with the
// given domain bounds) on first use. Returns nil on a nil registry.
func (g *Registry) Get(name string, bounds geom.Box) *Recorder {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if r, ok := g.m[name]; ok {
		return r
	}
	r := New(name, bounds, g.opts)
	g.m[name] = r
	return r
}

// Lookup returns the recorder for the named dataset, or nil if none was
// created yet.
func (g *Registry) Lookup(name string) *Recorder {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.m[name]
}

// Recorders returns every recorder, sorted by dataset name.
func (g *Registry) Recorders() []*Recorder {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	names := make([]string, 0, len(g.m))
	for n := range g.m {
		names = append(names, n)
	}
	g.mu.Unlock()
	sort.Strings(names)
	out := make([]*Recorder, len(names))
	for i, n := range names {
		out[i] = g.Lookup(n)
	}
	return out
}

// Snapshots captures every recorder's state, sorted by dataset name.
func (g *Registry) Snapshots() []Snapshot {
	if g == nil {
		return nil
	}
	recs := g.Recorders()
	out := make([]Snapshot, len(recs))
	for i, r := range recs {
		out[i] = r.Snapshot()
	}
	return out
}
