// Package obs is the pipeline's telemetry layer: named counters and
// histograms (atomic, goroutine-safe, label-addressed) plus per-rank span
// tracing, with three exporters — a JSON stats dump, Prometheus text
// format, and Chrome trace_event JSON (loadable in chrome://tracing or
// Perfetto, rendering a write/read run as a per-rank phase timeline).
//
// The package is zero-dependency (stdlib only) and cheap when disabled:
// every method is nil-safe, so instrumented code holds a possibly-nil
// *Collector (or handle) and hot paths pay only a nil check. Handles
// (Counter, Histogram) should be resolved once and reused on hot paths;
// the string-keyed Add/Observe conveniences are for cold paths.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension (e.g. rank="3").
type Label struct {
	Key, Value string
}

// L constructs a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Rank labels a metric with the emitting rank.
func Rank(r int) Label { return Label{Key: "rank", Value: strconv.Itoa(r)} }

// seriesKey builds the canonical identity of one (name, labels) series.
// Labels are sorted by key so call sites need not agree on ordering.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Key < sorted[b].Key })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(l.Value)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter is a monotonically increasing integer series. The zero of a nil
// *Counter is a no-op sink, so disabled telemetry costs one nil check.
type Counter struct {
	name   string
	labels []Label
	v      atomic.Int64
}

// Add increments the counter. Safe on a nil receiver and for concurrent use.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram accumulates value observations into fixed buckets (cumulative
// on export, Prometheus-style) plus count/sum/min/max. Nil-safe.
type Histogram struct {
	name   string
	labels []Label
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit

	mu       sync.Mutex
	buckets  []int64 // one per bound, plus the +Inf overflow at the end
	count    int64
	sum      float64
	min, max float64
}

// Observe records one value. Safe on a nil receiver and for concurrent use.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// DefLatencyBuckets covers 10µs to ~42s in powers of 4 — wide enough for
// both in-memory query latencies and cold parallel-filesystem reads.
func DefLatencyBuckets() []float64 {
	return ExpBuckets(10e-6, 4, 12)
}

// DefSizeBuckets covers 256 B to ~1 GB in powers of 4 (I/O sizes).
func DefSizeBuckets() []float64 {
	return ExpBuckets(256, 4, 12)
}

// ExpBuckets returns n exponentially spaced upper bounds starting at start
// and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// SpanEvent is one completed span: a named phase on one rank's timeline.
type SpanEvent struct {
	Name  string        `json:"name"`
	Rank  int           `json:"rank"`
	Start time.Duration `json:"start_ns"` // offset from the collector epoch
	Dur   time.Duration `json:"dur_ns"`
}

// Span is an open span; End completes and records it. Nil-safe.
type Span struct {
	c     *Collector
	name  string
	rank  int
	start time.Time
}

// End records the span's duration on the collector's timeline.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.c.record(SpanEvent{
		Name:  s.name,
		Rank:  s.rank,
		Start: s.start.Sub(s.c.epoch),
		Dur:   time.Since(s.start),
	})
}

// Collector owns a process's metric series and span timeline. The zero
// value of a nil *Collector is the disabled state: every method no-ops
// (returning nil handles whose methods also no-op).
type Collector struct {
	epoch time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram

	spanMu sync.Mutex
	spans  []SpanEvent
}

// New creates an enabled collector. Its epoch (the zero of the trace
// timeline) is the creation time.
func New() *Collector {
	return &Collector{
		epoch:    time.Now(),
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the handle for the (name, labels) series, creating it on
// first use. Returns nil (a no-op handle) on a nil collector.
func (c *Collector) Counter(name string, labels ...Label) *Counter {
	if c == nil {
		return nil
	}
	key := seriesKey(name, labels)
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr, ok := c.counters[key]; ok {
		return ctr
	}
	ctr := &Counter{name: name, labels: append([]Label(nil), labels...)}
	c.counters[key] = ctr
	return ctr
}

// Histogram returns the handle for the (name, labels) series with the given
// bucket upper bounds, creating it on first use. Bounds are fixed at
// creation; later calls may pass nil bounds to reuse the series.
func (c *Collector) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if c == nil {
		return nil
	}
	key := seriesKey(name, labels)
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.hists[key]; ok {
		return h
	}
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets()
	}
	bs := append([]float64(nil), bounds...)
	if !sort.Float64sAreSorted(bs) {
		panic(fmt.Sprintf("obs: histogram %s bounds not ascending", name))
	}
	h := &Histogram{
		name:    name,
		labels:  append([]Label(nil), labels...),
		bounds:  bs,
		buckets: make([]int64, len(bs)+1),
	}
	c.hists[key] = h
	return h
}

// Add is the cold-path counter convenience (resolves the handle each call).
func (c *Collector) Add(name string, n int64, labels ...Label) {
	if c == nil {
		return
	}
	c.Counter(name, labels...).Add(n)
}

// Observe is the cold-path histogram convenience with default buckets.
func (c *Collector) Observe(name string, v float64, labels ...Label) {
	if c == nil {
		return
	}
	c.Histogram(name, nil, labels...).Observe(v)
}

// Start opens a span named name on rank's timeline. Returns nil (whose End
// is a no-op) on a nil collector.
func (c *Collector) Start(rank int, name string) *Span {
	if c == nil {
		return nil
	}
	return &Span{c: c, name: name, rank: rank, start: time.Now()}
}

func (c *Collector) record(ev SpanEvent) {
	c.spanMu.Lock()
	c.spans = append(c.spans, ev)
	c.spanMu.Unlock()
}

// Spans returns a copy of the recorded span events in completion order.
func (c *Collector) Spans() []SpanEvent {
	if c == nil {
		return nil
	}
	c.spanMu.Lock()
	defer c.spanMu.Unlock()
	return append([]SpanEvent(nil), c.spans...)
}
