package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// goldenCollector builds a collector with fully deterministic content (no
// spans: span values are wall-clock dependent).
func goldenCollector() *Collector {
	c := New()
	c.Counter("requests_total", L("path", "/points"), L("code", "200")).Add(3)
	c.Counter("requests_total", L("path", "/info"), L("code", "200")).Add(1)
	c.Counter("bytes_total").Add(4096)
	h := c.Histogram("latency_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)
	return c
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenCollector().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/prometheus.golden")
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("Prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestPrometheusSpanExport(t *testing.T) {
	c := New()
	for i := 0; i < 3; i++ {
		sp := c.Start(2, "write.tree-build")
		time.Sleep(time.Microsecond)
		sp.End()
	}
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Span names are sanitized onto the metric alphabet and labeled by rank.
	if !strings.Contains(out, `span_write_tree_build_count{rank="2"} 3`) {
		t.Errorf("missing span count series:\n%s", out)
	}
	if !strings.Contains(out, `span_write_tree_build_seconds_total{rank="2"} `) {
		t.Errorf("missing span seconds series:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE span_write_tree_build_count counter") {
		t.Errorf("missing TYPE header for span series:\n%s", out)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	c := New()
	ranks := []int{0, 1, 3}
	for _, r := range ranks {
		sp := c.Start(r, "phase-a")
		time.Sleep(time.Microsecond)
		sp.End()
	}
	nested := c.Start(1, "outer")
	inner := c.Start(1, "inner")
	inner.End()
	nested.End()

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	if len(tr.TraceEvents) != len(ranks)+2 {
		t.Fatalf("got %d events, want %d", len(tr.TraceEvents), len(ranks)+2)
	}
	byName := map[string][]int{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 0 {
			t.Errorf("event %q: ph=%q pid=%d, want complete event on pid 0", ev.Name, ev.Ph, ev.Pid)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %q: negative ts/dur (%g, %g)", ev.Name, ev.Ts, ev.Dur)
		}
		byName[ev.Name] = append(byName[ev.Name], ev.Tid)
	}
	if got := byName["phase-a"]; len(got) != len(ranks) {
		t.Errorf("phase-a on tids %v, want one per rank %v", got, ranks)
	}
	// Nested spans on the same rank both survive, on that rank's lane.
	for _, name := range []string{"outer", "inner"} {
		if got := byName[name]; len(got) != 1 || got[0] != 1 {
			t.Errorf("%s on tids %v, want [1]", name, got)
		}
	}
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	c := goldenCollector()
	sp := c.Start(0, "whole")
	sp.End()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("stats JSON does not parse: %v", err)
	}
	if len(snap.Counters) != 3 || len(snap.Histograms) != 1 || len(snap.Spans) != 1 {
		t.Errorf("snapshot sizes: %d counters, %d histograms, %d spans",
			len(snap.Counters), len(snap.Histograms), len(snap.Spans))
	}
	if snap.Spans[0].Name != "whole" || snap.Spans[0].Count != 1 {
		t.Errorf("span summary = %+v", snap.Spans[0])
	}
}

// TestHistogramQuantiles pins the bucket-interpolation estimator against
// hand-computed values on a small, fully-known histogram.
func TestHistogramQuantiles(t *testing.T) {
	// Observations 0.0005, 0.05, 3 over bounds [0.001, 0.01, 0.1]:
	// buckets [1, 0, 1] + overflow 1.
	s := goldenCollector().Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(s.Histograms))
	}
	h := s.Histograms[0]
	for _, tc := range []struct {
		q, want float64
	}{
		{0, 0.0005}, // clamped to Min
		{1, 3},      // clamped to Max
		// target rank 1.5 falls in bucket (0.01, 0.1], halfway in.
		{0.50, 0.055},
		// target rank 2.7 falls in the overflow bucket (0.1, Max].
		{0.90, 0.1 + 2.9*0.7},
		{0.99, 0.1 + 2.9*0.97},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	// Snapshot precomputes the standard three.
	if h.P50 != h.Quantile(0.50) || h.P90 != h.Quantile(0.90) || h.P99 != h.Quantile(0.99) {
		t.Errorf("snapshot quantiles (%g, %g, %g) disagree with Quantile", h.P50, h.P90, h.P99)
	}
	if empty := (HistogramSnapshot{}); empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
	// The quantile gauges appear in the Prometheus exposition.
	var buf bytes.Buffer
	if err := goldenCollector().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE latency_seconds_p50 gauge\nlatency_seconds_p50 " + promNum(h.P50) + "\n",
		"latency_seconds_p90 " + promNum(h.P90) + "\n",
		"latency_seconds_p99 " + promNum(h.P99) + "\n",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestWriteRuntimeMetrics sanity-checks the Go health series: present,
// typed, and plausibly valued.
func TestWriteRuntimeMetrics(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRuntimeMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"go_goroutines", "go_heap_alloc_bytes", "go_heap_sys_bytes",
		"go_heap_objects", "go_gc_pause_seconds_total", "go_gc_runs_total",
		"go_gomaxprocs",
	} {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("missing TYPE header for %s", name)
		}
		if !strings.Contains(out, "\n"+name+" ") && !strings.HasPrefix(out, name+" ") {
			t.Errorf("missing sample for %s", name)
		}
	}
	var goroutines, maxprocs int
	for _, line := range strings.Split(out, "\n") {
		fmt.Sscanf(line, "go_goroutines %d", &goroutines)
		fmt.Sscanf(line, "go_gomaxprocs %d", &maxprocs)
	}
	if goroutines < 1 {
		t.Errorf("go_goroutines = %d", goroutines)
	}
	if maxprocs != runtime.GOMAXPROCS(0) {
		t.Errorf("go_gomaxprocs = %d, want %d", maxprocs, runtime.GOMAXPROCS(0))
	}
}

// TestNilCollectorSafe pins the disabled-telemetry contract: every method on
// a nil collector (and the handles it returns) must be a no-op.
func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.Counter("x").Add(1)
	c.Counter("x").Inc()
	c.Histogram("h", nil).Observe(1)
	c.Add("x", 1)
	c.Observe("h", 1)
	sp := c.Start(0, "s")
	sp.End()
	if s := c.Snapshot(); len(s.Counters)+len(s.Histograms)+len(s.Spans) != 0 {
		t.Errorf("nil collector snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}
