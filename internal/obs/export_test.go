package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

// goldenCollector builds a collector with fully deterministic content (no
// spans: span values are wall-clock dependent).
func goldenCollector() *Collector {
	c := New()
	c.Counter("requests_total", L("path", "/points"), L("code", "200")).Add(3)
	c.Counter("requests_total", L("path", "/info"), L("code", "200")).Add(1)
	c.Counter("bytes_total").Add(4096)
	h := c.Histogram("latency_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)
	return c
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenCollector().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/prometheus.golden")
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("Prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestPrometheusSpanExport(t *testing.T) {
	c := New()
	for i := 0; i < 3; i++ {
		sp := c.Start(2, "write.tree-build")
		time.Sleep(time.Microsecond)
		sp.End()
	}
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Span names are sanitized onto the metric alphabet and labeled by rank.
	if !strings.Contains(out, `span_write_tree_build_count{rank="2"} 3`) {
		t.Errorf("missing span count series:\n%s", out)
	}
	if !strings.Contains(out, `span_write_tree_build_seconds_total{rank="2"} `) {
		t.Errorf("missing span seconds series:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE span_write_tree_build_count counter") {
		t.Errorf("missing TYPE header for span series:\n%s", out)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	c := New()
	ranks := []int{0, 1, 3}
	for _, r := range ranks {
		sp := c.Start(r, "phase-a")
		time.Sleep(time.Microsecond)
		sp.End()
	}
	nested := c.Start(1, "outer")
	inner := c.Start(1, "inner")
	inner.End()
	nested.End()

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	if len(tr.TraceEvents) != len(ranks)+2 {
		t.Fatalf("got %d events, want %d", len(tr.TraceEvents), len(ranks)+2)
	}
	byName := map[string][]int{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 0 {
			t.Errorf("event %q: ph=%q pid=%d, want complete event on pid 0", ev.Name, ev.Ph, ev.Pid)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %q: negative ts/dur (%g, %g)", ev.Name, ev.Ts, ev.Dur)
		}
		byName[ev.Name] = append(byName[ev.Name], ev.Tid)
	}
	if got := byName["phase-a"]; len(got) != len(ranks) {
		t.Errorf("phase-a on tids %v, want one per rank %v", got, ranks)
	}
	// Nested spans on the same rank both survive, on that rank's lane.
	for _, name := range []string{"outer", "inner"} {
		if got := byName[name]; len(got) != 1 || got[0] != 1 {
			t.Errorf("%s on tids %v, want [1]", name, got)
		}
	}
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	c := goldenCollector()
	sp := c.Start(0, "whole")
	sp.End()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("stats JSON does not parse: %v", err)
	}
	if len(snap.Counters) != 3 || len(snap.Histograms) != 1 || len(snap.Spans) != 1 {
		t.Errorf("snapshot sizes: %d counters, %d histograms, %d spans",
			len(snap.Counters), len(snap.Histograms), len(snap.Spans))
	}
	if snap.Spans[0].Name != "whole" || snap.Spans[0].Count != 1 {
		t.Errorf("span summary = %+v", snap.Spans[0])
	}
}

// TestNilCollectorSafe pins the disabled-telemetry contract: every method on
// a nil collector (and the handles it returns) must be a no-op.
func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.Counter("x").Add(1)
	c.Counter("x").Inc()
	c.Histogram("h", nil).Observe(1)
	c.Add("x", 1)
	c.Observe("h", 1)
	sp := c.Start(0, "s")
	sp.End()
	if s := c.Snapshot(); len(s.Counters)+len(s.Histograms)+len(s.Spans) != 0 {
		t.Errorf("nil collector snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}
