package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"
)

// CounterSnapshot is one counter series at export time.
type CounterSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// HistogramSnapshot is one histogram series at export time. Buckets are
// non-cumulative per-bound counts; the last entry counts observations above
// every bound (+Inf).
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Bounds  []float64         `json:"bounds"`
	Buckets []int64           `json:"buckets"`
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
}

// Quantile estimates the q-th quantile (0..1) by locating the bucket holding
// the target rank and interpolating linearly inside it. The first bucket's
// lower edge is the observed Min and the overflow bucket's upper edge is the
// observed Max, so estimates never leave the observed range. With no
// observations it returns 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	target := q * float64(h.Count)
	cum := 0.0
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum < target {
			continue
		}
		lo, hi := h.Min, h.Max
		if i > 0 {
			lo = math.Max(lo, h.Bounds[i-1])
		}
		if i < len(h.Bounds) {
			hi = math.Min(hi, h.Bounds[i])
		}
		if hi < lo {
			hi = lo
		}
		return lo + (hi-lo)*(target-prev)/float64(n)
	}
	return h.Max
}

// SpanSummary aggregates the completed spans of one (name, rank) pair.
type SpanSummary struct {
	Name    string        `json:"name"`
	Rank    int           `json:"rank"`
	Count   int64         `json:"count"`
	TotalNs time.Duration `json:"total_ns"`
	MinNs   time.Duration `json:"min_ns"`
	MaxNs   time.Duration `json:"max_ns"`
}

// Snapshot is a consistent, export-ready copy of a collector's state, with
// every slice sorted for deterministic output.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Histograms []HistogramSnapshot `json:"histograms"`
	Spans      []SpanSummary       `json:"spans"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot captures the collector's current state. Nil collectors yield an
// empty snapshot.
func (c *Collector) Snapshot() Snapshot {
	var s Snapshot
	if c == nil {
		return s
	}
	c.mu.Lock()
	for _, ctr := range c.counters {
		s.Counters = append(s.Counters, CounterSnapshot{
			Name:   ctr.name,
			Labels: labelMap(ctr.labels),
			Value:  ctr.v.Load(),
		})
	}
	for _, h := range c.hists {
		h.mu.Lock()
		hs := HistogramSnapshot{
			Name:    h.name,
			Labels:  labelMap(h.labels),
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: append([]int64(nil), h.buckets...),
			Count:   h.count,
			Sum:     h.sum,
			Min:     h.min,
			Max:     h.max,
		}
		h.mu.Unlock()
		hs.P50, hs.P90, hs.P99 = hs.Quantile(0.50), hs.Quantile(0.90), hs.Quantile(0.99)
		s.Histograms = append(s.Histograms, hs)
	}
	c.mu.Unlock()

	type spanKey struct {
		name string
		rank int
	}
	agg := map[spanKey]*SpanSummary{}
	for _, ev := range c.Spans() {
		k := spanKey{ev.Name, ev.Rank}
		sum, ok := agg[k]
		if !ok {
			sum = &SpanSummary{Name: ev.Name, Rank: ev.Rank, MinNs: ev.Dur, MaxNs: ev.Dur}
			agg[k] = sum
		}
		sum.Count++
		sum.TotalNs += ev.Dur
		if ev.Dur < sum.MinNs {
			sum.MinNs = ev.Dur
		}
		if ev.Dur > sum.MaxNs {
			sum.MaxNs = ev.Dur
		}
	}
	for _, sum := range agg {
		s.Spans = append(s.Spans, *sum)
	}

	sortSeries := func(ni, nj string, li, lj map[string]string) bool {
		if ni != nj {
			return ni < nj
		}
		return fmt.Sprint(li) < fmt.Sprint(lj)
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		return sortSeries(s.Counters[i].Name, s.Counters[j].Name, s.Counters[i].Labels, s.Counters[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return sortSeries(s.Histograms[i].Name, s.Histograms[j].Name, s.Histograms[i].Labels, s.Histograms[j].Labels)
	})
	sort.Slice(s.Spans, func(i, j int) bool {
		if s.Spans[i].Name != s.Spans[j].Name {
			return s.Spans[i].Name < s.Spans[j].Name
		}
		return s.Spans[i].Rank < s.Spans[j].Rank
	})
	return s
}

// WriteJSON dumps the full snapshot as indented JSON — the batwrite/batread
// -stats output.
func (c *Collector) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Snapshot())
}

// promLabels renders a label set (plus an optional extra pair) in
// Prometheus text form, keys sorted.
func promLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels)+1)
	for k := range labels {
		keys = append(keys, k)
	}
	if extraKey != "" {
		keys = append(keys, extraKey)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		v := labels[k]
		if k == extraKey {
			v = extraVal
		}
		fmt.Fprintf(&sb, "%s=%q", k, v)
	}
	sb.WriteByte('}')
	return sb.String()
}

func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return promNum(v)
}

// promNum renders a float compactly and round-trippably (%g).
func promNum(v float64) string { return fmt.Sprintf("%g", v) }

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as-is, histograms with cumulative
// le-labeled buckets plus _sum/_count, and span summaries as the derived
// <span>_seconds_total / <span>_count counters.
func (c *Collector) WritePrometheus(w io.Writer) error {
	s := c.Snapshot()
	var sb strings.Builder

	lastType := ""
	emitHeader := func(name, typ string) {
		if name == lastType {
			return
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, typ)
		lastType = name
	}

	for _, ctr := range s.Counters {
		emitHeader(ctr.Name, "counter")
		fmt.Fprintf(&sb, "%s%s %d\n", ctr.Name, promLabels(ctr.Labels, "", ""), ctr.Value)
	}
	for _, h := range s.Histograms {
		emitHeader(h.Name, "histogram")
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(&sb, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, "le", promFloat(b)), cum)
		}
		cum += h.Buckets[len(h.Bounds)]
		fmt.Fprintf(&sb, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, "le", "+Inf"), cum)
		fmt.Fprintf(&sb, "%s_sum%s %s\n", h.Name, promLabels(h.Labels, "", ""), promNum(h.Sum))
		fmt.Fprintf(&sb, "%s_count%s %d\n", h.Name, promLabels(h.Labels, "", ""), h.Count)
		for _, p := range []struct {
			suffix string
			v      float64
		}{{"_p50", h.P50}, {"_p90", h.P90}, {"_p99", h.P99}} {
			emitHeader(h.Name+p.suffix, "gauge")
			fmt.Fprintf(&sb, "%s%s%s %s\n", h.Name, p.suffix, promLabels(h.Labels, "", ""), promNum(p.v))
		}
	}
	for _, sp := range s.Spans {
		name := "span_" + sanitizeMetricName(sp.Name)
		labels := map[string]string{"rank": fmt.Sprint(sp.Rank)}
		emitHeader(name+"_seconds_total", "counter")
		fmt.Fprintf(&sb, "%s_seconds_total%s %s\n", name, promLabels(labels, "", ""),
			promNum(sp.TotalNs.Seconds()))
		emitHeader(name+"_count", "counter")
		fmt.Fprintf(&sb, "%s_count%s %d\n", name, promLabels(labels, "", ""), sp.Count)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteRuntimeMetrics writes Go runtime health series — goroutine count,
// heap usage, and GC activity — in the Prometheus text format. batserve
// appends these to /metrics so an operator can correlate query latency with
// collector pressure.
func WriteRuntimeMetrics(w io.Writer) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	var sb strings.Builder
	fmt.Fprintf(&sb, "# TYPE go_goroutines gauge\ngo_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(&sb, "# TYPE go_heap_alloc_bytes gauge\ngo_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(&sb, "# TYPE go_heap_sys_bytes gauge\ngo_heap_sys_bytes %d\n", ms.HeapSys)
	fmt.Fprintf(&sb, "# TYPE go_heap_objects gauge\ngo_heap_objects %d\n", ms.HeapObjects)
	fmt.Fprintf(&sb, "# TYPE go_gc_pause_seconds_total counter\ngo_gc_pause_seconds_total %s\n",
		promNum(float64(ms.PauseTotalNs)/1e9))
	fmt.Fprintf(&sb, "# TYPE go_gc_runs_total counter\ngo_gc_runs_total %d\n", ms.NumGC)
	fmt.Fprintf(&sb, "# TYPE go_gomaxprocs gauge\ngo_gomaxprocs %d\n", runtime.GOMAXPROCS(0))
	_, err := io.WriteString(w, sb.String())
	return err
}

// sanitizeMetricName maps span names (which may contain '.' or '-') onto
// the Prometheus metric name alphabet.
func sanitizeMetricName(s string) string {
	out := []byte(s)
	for i, b := range out {
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_':
		case b >= '0' && b <= '9' && i > 0:
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// traceEvent is one Chrome trace_event entry ("X" = complete event).
// Timestamps and durations are microseconds.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// chromeTrace is the JSON object form of the trace file, which Perfetto and
// chrome://tracing both accept.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace dumps every completed span as a Chrome trace_event
// complete event: pid 0, tid = rank, so the trace renders as one timeline
// lane per rank.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	spans := c.Spans()
	tr := chromeTrace{TraceEvents: make([]traceEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, ev := range spans {
		tr.TraceEvents = append(tr.TraceEvents, traceEvent{
			Name: ev.Name,
			Cat:  "phase",
			Ph:   "X",
			Ts:   float64(ev.Start) / float64(time.Microsecond),
			Dur:  float64(ev.Dur) / float64(time.Microsecond),
			Pid:  0,
			Tid:  ev.Rank,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
