package bench

import (
	"fmt"
	"time"

	"libbat/internal/core"
	"libbat/internal/ior"
	"libbat/internal/perf"
	"libbat/internal/workloads"
)

// CosmoCompare is an extension experiment beyond the paper's evaluation:
// adaptive vs AUG aggregation on a cosmology (halo-clustering) workload,
// the other domain the paper's introduction motivates. As structure forms
// the distribution concentrates into halos, and the adaptive tree's
// advantage grows.
func CosmoCompare(cfg CompareConfig, totalParticles int64, nHalos int) (*Table, error) {
	cosmo, err := workloads.NewCosmo(cfg.Ranks, totalParticles, nHalos)
	if err != nil {
		return nil, err
	}
	return compareTable(
		fmt.Sprintf("Extension: cosmology (%d halos) adaptive vs AUG write bandwidth [MB/s]", nHalos),
		cosmo, cfg, false)
}

// RecommendCheck validates the automatic target-size policy
// (libbat.RecommendTargetSize, paper §VII-A future work) against a sweep:
// at each scale it reports the modeled write bandwidth of the recommended
// target and of the best target in the sweep.
func RecommendCheck(p perf.Profile, rankCounts []int, perRank int64, numAttrs int,
	recommend func(ranks int, bytesPerRank int64) int64) (*Table, error) {

	t := &Table{
		Title: fmt.Sprintf("Extension: RecommendTargetSize vs sweep (%s)", p.Name),
		Header: []string{"ranks", "recommended", "rec GB/s", "best target", "best GB/s",
			"rec/best"},
	}
	sweep := []int64{2 << 20, 8 << 20, 32 << 20, 64 << 20, 128 << 20, 256 << 20, 512 << 20}
	for _, n := range rankCounts {
		w, err := workloads.NewUniform(n, perRank, numAttrs)
		if err != nil {
			return nil, err
		}
		bpp := w.Schema().BytesPerParticle()
		bytesPerRank := perRank * int64(bpp)
		total := int64(n) * bytesPerRank
		infos := workloads.RankInfos(w, 0)
		bw := func(target int64) (float64, error) {
			loads, _, err := planLeafLoads(infos, n, target, bpp, true)
			if err != nil {
				return 0, err
			}
			var d time.Duration = p.ModelTwoPhaseWrite(n, loads, metaBytesPerLeaf(numAttrs)).Total()
			return ior.Bandwidth(total, d), nil
		}
		rec := recommend(n, bytesPerRank)
		recBW, err := bw(rec)
		if err != nil {
			return nil, err
		}
		bestBW, bestTarget := 0.0, int64(0)
		for _, target := range sweep {
			v, err := bw(target)
			if err != nil {
				return nil, err
			}
			if v > bestBW {
				bestBW, bestTarget = v, target
			}
		}
		t.AddRow(fmt.Sprintf("%d", n), sizeMB(rec), gbs(recBW), sizeMB(bestTarget),
			gbs(bestBW), fmt.Sprintf("%.2f", recBW/bestBW))
	}
	t.Notes = append(t.Notes, "rec/best is the recommended target's bandwidth as a fraction of the sweep optimum")
	return t, nil
}

// MeasuredBreakdown is the full-fidelity counterpart of the modeled
// Figure 10: it runs the real pipeline (goroutine ranks, real particles,
// real BAT files in memory) on a scaled-down coal boiler and reports the
// measured critical-path time of each phase for adaptive vs AUG
// aggregation. The modeled and measured views should agree on which
// strategy is cheaper and on which phases dominate.
func MeasuredBreakdown(ranks int, particles int64, target int64) (*Table, error) {
	cb, err := workloads.NewCoalBoiler(ranks)
	if err != nil {
		return nil, err
	}
	cb.SetGrowth(0, 1, particles, particles)
	t := &Table{
		Title: fmt.Sprintf("Measured pipeline breakdown (full fidelity, %d ranks, %d particles, %s target) [ms]",
			ranks, particles, sizeMB(target)),
		Header: []string{"strategy", "files", "tree", "gather/scatter", "transfer",
			"bat-build", "file-write", "metadata", "total"},
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond)) }
	for _, strategy := range []core.Strategy{core.Adaptive, core.AUG} {
		store, err := makeStore("")
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultWriteConfig(target)
		cfg.Strategy = strategy
		stats, err := WriteDataset(cb, 0, store, "measured-"+strategy.String(), cfg)
		if err != nil {
			return nil, err
		}
		pm := stats.PhaseMax
		t.AddRow(strategy.String(), fmt.Sprintf("%d", stats.NumFiles),
			ms(pm.TreeBuild), ms(pm.GatherScatter), ms(pm.Transfer),
			ms(pm.BATBuild), ms(pm.FileWrite), ms(pm.Metadata), ms(pm.Total()))
	}
	t.Notes = append(t.Notes,
		"wall-clock maxima across ranks; compare the shape against the modeled Fig 10",
		"gather/scatter includes waiting for the slowest rank to enter the collective (generation imbalance)")
	return t, nil
}
