package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"libbat/internal/perf"
)

// parseCell reads a numeric table cell.
func parseCell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(tb.Rows[row][col], "%"), "x"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

// colIndex finds a header column.
func colIndex(t *testing.T, tb *Table, name string) int {
	t.Helper()
	for i, h := range tb.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("no column %q in %v", name, tb.Header)
	return -1
}

// smallScaling keeps the modeled scaling tests fast.
func smallScaling(p perf.Profile) WeakScalingConfig {
	cfg := DefaultWeakScaling(p)
	cfg.RankCounts = []int{96, 1536, 6144}
	cfg.TargetSizes = []int64{8 << 20, 64 << 20}
	return cfg
}

func TestFig5ShapesMatchPaper(t *testing.T) {
	for _, p := range []perf.Profile{perf.Stampede2(), perf.Summit()} {
		cfg := smallScaling(p)
		tb, err := Fig5WriteScaling(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) != len(cfg.RankCounts) {
			t.Fatalf("rows = %d", len(tb.Rows))
		}
		// Headline: at the largest scale, ours (64MB) beats every baseline.
		last := len(tb.Rows) - 1
		ours := parseCell(t, tb, last, colIndex(t, tb, "ours-64MB"))
		for _, c := range []string{"fpp", "shared", "hdf5"} {
			if base := parseCell(t, tb, last, colIndex(t, tb, c)); base >= ours {
				t.Errorf("%s: %s (%.1f) >= ours-64MB (%.1f) at scale", p.Name, c, base, ours)
			}
		}
		// FPP leads at the smallest scale.
		fpp := parseCell(t, tb, 0, colIndex(t, tb, "fpp"))
		if ours0 := parseCell(t, tb, 0, colIndex(t, tb, "ours-64MB")); ours0 >= fpp {
			t.Errorf("%s: at small scale FPP (%.1f) should lead ours-64MB (%.1f)", p.Name, fpp, ours0)
		}
		var buf bytes.Buffer
		tb.Fprint(&buf)
		t.Log("\n" + buf.String())
	}
}

func TestFig7ReadShapes(t *testing.T) {
	cfg := smallScaling(perf.Stampede2())
	tb, err := Fig7ReadScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := len(tb.Rows) - 1
	ours := parseCell(t, tb, last, colIndex(t, tb, "ours-64MB"))
	for _, c := range []string{"fpp", "shared", "hdf5"} {
		if base := parseCell(t, tb, last, colIndex(t, tb, c)); base >= ours {
			t.Errorf("read: %s (%.1f) >= ours (%.1f) at scale", c, base, ours)
		}
	}
}

func TestFig6BreakdownSums(t *testing.T) {
	cfg := smallScaling(perf.Stampede2())
	cfg.RankCounts = []int{384}
	tb, err := Fig6Breakdown(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tb.Rows {
		var sum float64
		for c := 2; c < 8; c++ {
			sum += parseCell(t, tb, r, c)
		}
		total := parseCell(t, tb, r, 8)
		if sum < total*0.99 || sum > total*1.01 {
			t.Errorf("row %d: components %.2f != total %.2f", r, sum, total)
		}
	}
}

func TestFig9AdaptiveBeatsAUG(t *testing.T) {
	cfg := DefaultCoalBoilerCompare()
	cfg.Steps = []int{501, 4501}
	cfg.TargetSizes = []int64{8 << 20}
	write, read, err := Fig9CoalBoiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []*Table{write, read} {
		for r := range tb.Rows {
			ad := parseCell(t, tb, r, colIndex(t, tb, "adaptive-8MB"))
			ag := parseCell(t, tb, r, colIndex(t, tb, "aug-8MB"))
			if ad <= ag {
				t.Errorf("%s row %d: adaptive %.1f <= aug %.1f", tb.Title, r, ad, ag)
			}
		}
	}
	var buf bytes.Buffer
	write.Fprint(&buf)
	t.Log("\n" + buf.String())
}

func TestFig11DamBreakAdaptiveWins(t *testing.T) {
	cfg, total := DefaultDamBreakCompare(false)
	cfg.Steps = []int{0, 2001}
	cfg.TargetSizes = []int64{3 << 20}
	write, read, err := Fig11DamBreak(cfg, total)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []*Table{write, read} {
		for r := range tb.Rows {
			ad := parseCell(t, tb, r, colIndex(t, tb, "adaptive-3MB"))
			ag := parseCell(t, tb, r, colIndex(t, tb, "aug-3MB"))
			if ad < ag*0.95 {
				t.Errorf("%s row %d: adaptive %.1f well below aug %.1f", tb.Title, r, ad, ag)
			}
		}
	}
}

func TestFig12AdaptiveNearConstant(t *testing.T) {
	// Paper: adaptive write times stay nearly constant over the Dam Break
	// series while AUG varies with the particle distribution.
	cfg, total := DefaultDamBreakCompare(false)
	cfg.Steps = []int{0, 1001, 2001, 3001, 4001}
	tb, err := Fig12Breakdown(cfg, total)
	if err != nil {
		t.Fatal(err)
	}
	variation := func(strategy string) float64 {
		min, max := 1e18, 0.0
		for r := range tb.Rows {
			if tb.Rows[r][1] != strategy {
				continue
			}
			v := parseCell(t, tb, r, colIndex(t, tb, "total"))
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return max / min
	}
	adVar, augVar := variation("adaptive"), variation("aug")
	if adVar > augVar {
		t.Errorf("adaptive variation %.2fx should not exceed AUG %.2fx", adVar, augVar)
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	t.Log("\n" + buf.String())
}

func TestFileStatsShape(t *testing.T) {
	// Adaptive must produce a tighter file-size distribution (lower
	// stddev and max) than AUG at the same target, as in §VI-A.2.
	tb, err := FileStats(1536, 4501, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	adStd := parseCell(t, tb, 0, colIndex(t, tb, "stddev MB"))
	augStd := parseCell(t, tb, 1, colIndex(t, tb, "stddev MB"))
	adMax := parseCell(t, tb, 0, colIndex(t, tb, "max MB"))
	augMax := parseCell(t, tb, 1, colIndex(t, tb, "max MB"))
	if adStd >= augStd {
		t.Errorf("adaptive stddev %.1f >= aug %.1f", adStd, augStd)
	}
	if adMax >= augMax {
		t.Errorf("adaptive max %.1f >= aug %.1f", adMax, augMax)
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	t.Log("\n" + buf.String())
}

func TestTable1RealReads(t *testing.T) {
	if testing.Short() {
		t.Skip("materialized benchmark")
	}
	cfg := VisReadConfig{
		Ranks:       16,
		Steps:       []int{0, 10},
		TargetSizes: []int64{512 << 10, 1 << 20},
	}
	tb, err := Table1CoalBoiler(cfg, 40_000, 80_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for r := range tb.Rows {
		if ms := parseCell(t, tb, r, 1); ms <= 0 {
			t.Errorf("row %d: nonpositive read time", r)
		}
		if tp := parseCell(t, tb, r, 2); tp <= 0 {
			t.Errorf("row %d: nonpositive throughput", r)
		}
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	t.Log("\n" + buf.String())
}

func TestTable2RealReads(t *testing.T) {
	if testing.Short() {
		t.Skip("materialized benchmark")
	}
	cfg := VisReadConfig{
		Ranks:       16,
		Steps:       []int{0, 1000},
		TargetSizes: []int64{512 << 10},
	}
	tb, err := Table2DamBreak(cfg, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if parseCell(t, tb, 0, 2) <= 0 {
		t.Error("zero throughput")
	}
}

func TestFig13QualityProgression(t *testing.T) {
	if testing.Short() {
		t.Skip("materialized benchmark")
	}
	tb, err := Fig13Quality(VisReadConfig{Ranks: 8, TargetSizes: []int64{512 << 10}}, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	// Fractions increase with quality and reach 1.0.
	var prev float64
	for r := range tb.Rows {
		f := parseCell(t, tb, r, 2)
		if f < prev {
			t.Errorf("fraction decreased at row %d", r)
		}
		prev = f
	}
	if prev < 0.999 {
		t.Errorf("quality 1.0 fraction = %.3f", prev)
	}
}

func TestOverheadNearPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("materialized benchmark")
	}
	tb, err := Overhead(VisReadConfig{Ranks: 8}, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	over := parseCell(t, tb, 0, 3)
	if over < 0 || over > 5 {
		t.Errorf("overhead %.2f%%, paper reports ~0.9%%", over)
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	t.Log("\n" + buf.String())
}

func TestFig8Stats(t *testing.T) {
	tb, err := Fig8DatasetStats(96)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "b"}, Notes: []string{"n"}}
	tb.AddRow("1", "hello,world")
	var text, csv bytes.Buffer
	tb.Fprint(&text)
	tb.CSV(&csv)
	if !strings.Contains(text.String(), "== T ==") || !strings.Contains(text.String(), "note: n") {
		t.Errorf("text render:\n%s", text.String())
	}
	if !strings.Contains(csv.String(), `"hello,world"`) {
		t.Errorf("csv render:\n%s", csv.String())
	}
}
