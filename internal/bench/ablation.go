package bench

import (
	"fmt"
	"time"

	"libbat/internal/aggtree"
	"libbat/internal/bat"
	"libbat/internal/core"
	"libbat/internal/ior"
	"libbat/internal/perf"
	"libbat/internal/workloads"
)

// AblateOverfull isolates the overfull-leaf rule (§III-A): the coal boiler
// plan is built with and without it and the resulting file distribution
// and modeled write time are compared. Without the rule the tree must keep
// splitting badly imbalanced nodes, producing many tiny files.
func AblateOverfull(ranks, step int, target int64) (*Table, error) {
	cb, err := workloads.NewCoalBoiler(ranks)
	if err != nil {
		return nil, err
	}
	bpp := cb.Schema().BytesPerParticle()
	infos := workloads.RankInfos(cb, step)
	p := perf.Stampede2()
	t := &Table{
		Title:  fmt.Sprintf("Ablation: overfull leaves (coal boiler step %d, %s target)", step, sizeMB(target)),
		Header: []string{"overfull", "files", "avg MB", "stddev MB", "max MB", "write ms"},
	}
	var total int64
	for _, ri := range infos {
		total += ri.Count
	}
	for _, allow := range []bool{true, false} {
		cfg := aggtree.DefaultConfig(target, bpp)
		cfg.AllowOverfull = allow
		tr, err := aggtree.Build(infos, cfg)
		if err != nil {
			return nil, err
		}
		aggtree.AssignAggregators(tr.Leaves, ranks)
		loads := toLoads(tr.Leaves, infos, bpp)
		bd := p.ModelTwoPhaseWrite(ranks, loads, metaBytesPerLeaf(cb.Schema().NumAttrs()))
		st := aggtree.LeafSizeStats(tr.Leaves, bpp)
		t.AddRow(fmt.Sprintf("%v", allow), fmt.Sprintf("%d", st.NumFiles),
			fmt.Sprintf("%.1f", st.MeanB/(1<<20)),
			fmt.Sprintf("%.1f", st.StddevB/(1<<20)),
			fmt.Sprintf("%.1f", float64(st.MaxB)/(1<<20)),
			fmt.Sprintf("%.2f", float64(bd.Total())/float64(time.Millisecond)))
	}
	return t, nil
}

// AblateSplitAxes compares longest-axis-only splitting against the
// optional best-split-across-all-axes mode (§III-A option).
func AblateSplitAxes(ranks, step int, target int64) (*Table, error) {
	db, err := workloads.NewDamBreak(ranks, 2_000_000)
	if err != nil {
		return nil, err
	}
	bpp := db.Schema().BytesPerParticle()
	infos := workloads.RankInfos(db, step)
	t := &Table{
		Title:  fmt.Sprintf("Ablation: split axis search (dam break step %d, %s target)", step, sizeMB(target)),
		Header: []string{"all-axes", "files", "stddev MB", "max MB", "build us"},
	}
	for _, all := range []bool{false, true} {
		cfg := aggtree.DefaultConfig(target, bpp)
		cfg.BestSplitAllAxes = all
		start := time.Now()
		tr, err := aggtree.Build(infos, cfg)
		if err != nil {
			return nil, err
		}
		build := time.Since(start)
		st := aggtree.LeafSizeStats(tr.Leaves, bpp)
		t.AddRow(fmt.Sprintf("%v", all), fmt.Sprintf("%d", st.NumFiles),
			fmt.Sprintf("%.2f", st.StddevB/(1<<20)),
			fmt.Sprintf("%.2f", float64(st.MaxB)/(1<<20)),
			fmt.Sprintf("%d", build.Microseconds()))
	}
	return t, nil
}

// AblateLOD sweeps the LOD-particles-per-node and max-leaf-size parameters
// of the BAT (§III-C2; the paper uses 8 and 128) and measures real
// progressive read latency and layout overhead on a materialized dataset.
func AblateLOD(ranks int, particles int64) (*Table, error) {
	cb, err := workloads.NewCoalBoiler(ranks)
	if err != nil {
		return nil, err
	}
	cb.SetGrowth(0, 1, particles, particles)
	t := &Table{
		Title:  "Ablation: BAT LOD particles per node / leaf size (real reads)",
		Header: []string{"lod/node", "leaf size", "avg read ms", "pts/ms", "overhead"},
	}
	for _, cfg := range []struct{ lod, leaf int }{
		{4, 128}, {8, 128}, {16, 128}, {8, 64}, {8, 256},
	} {
		store, err := makeStore("")
		if err != nil {
			return nil, err
		}
		wc := core.DefaultWriteConfig(2 << 20)
		wc.BAT.LODPerNode = cfg.lod
		wc.BAT.MaxLeafSize = cfg.leaf
		base := fmt.Sprintf("ablate-%d-%d", cfg.lod, cfg.leaf)
		if _, err := WriteDataset(cb, 0, store, base, wc); err != nil {
			return nil, err
		}
		res, err := ProgressiveRead(store, base)
		if err != nil {
			return nil, err
		}
		// Overhead from the written bytes.
		names, err := store.List()
		if err != nil {
			return nil, err
		}
		var fileBytes int64
		for _, n := range names {
			f, err := store.Open(n)
			if err != nil {
				return nil, err
			}
			fileBytes += f.Size()
			f.Close()
		}
		raw := particles * int64(cb.Schema().BytesPerParticle())
		t.AddRow(fmt.Sprintf("%d", cfg.lod), fmt.Sprintf("%d", cfg.leaf),
			fmt.Sprintf("%.2f", res.AvgReadMs), fmt.Sprintf("%.0f", res.PtsPerMs),
			fmt.Sprintf("%.2f%%", 100*float64(fileBytes-raw)/float64(raw)))
	}
	t.Notes = append(t.Notes, "paper defaults: 8 LOD particles per inner node, 128 particles per leaf")
	return t, nil
}

// AblateBitmapDictionary measures what the 16-bit-ID dictionary saves over
// storing raw 32-bit bitmaps at every node (§III-C3).
func AblateBitmapDictionary(particles int) (*Table, error) {
	cb, err := workloads.NewCoalBoiler(8)
	if err != nil {
		return nil, err
	}
	cb.SetGrowth(0, 1, int64(particles), int64(particles))
	set := cb.Generate(0, heaviestRank(cb, 0))
	bcfg := bat.DefaultBuildConfig()
	if BuildWorkers != 0 {
		bcfg.Workers = BuildWorkers
	}
	built, err := bat.Build(set, cb.Decomp().Domain, bcfg)
	if err != nil {
		return nil, err
	}
	s := built.Stats
	nA := cb.Schema().NumAttrs()
	nodes := s.NumTreeletNodes + s.NumShallowNodes
	withDict := int64(nodes*2*nA) + int64(4*s.DictEntries)
	withoutDict := int64(nodes * 4 * nA)
	t := &Table{
		Title:  "Ablation: bitmap dictionary (16-bit IDs + dictionary vs raw 32-bit bitmaps)",
		Header: []string{"nodes", "unique bitmaps", "dict bytes", "raw bytes", "saving"},
	}
	t.AddRow(fmt.Sprintf("%d", nodes), fmt.Sprintf("%d", s.DictEntries),
		fmt.Sprintf("%d", withDict), fmt.Sprintf("%d", withoutDict),
		fmt.Sprintf("%.0f%%", 100*(1-float64(withDict)/float64(withoutDict))))
	return t, nil
}

// AblateAggregatorSpread compares the paper's even aggregator spread
// through the rank space [39] against naively assigning leaf i to rank i,
// which piles aggregators onto the first nodes.
func AblateAggregatorSpread(ranks, step int, target int64) (*Table, error) {
	cb, err := workloads.NewCoalBoiler(ranks)
	if err != nil {
		return nil, err
	}
	bpp := cb.Schema().BytesPerParticle()
	infos := workloads.RankInfos(cb, step)
	p := perf.Stampede2()
	var total int64
	for _, ri := range infos {
		total += ri.Count
	}
	tr, err := aggtree.Build(infos, aggtree.DefaultConfig(target, bpp))
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation: aggregator placement (coal boiler step %d, %s target)", step, sizeMB(target)),
		Header: []string{"placement", "write ms", "bandwidth MB/s"},
	}
	for _, spread := range []bool{true, false} {
		leaves := append([]aggtree.Leaf(nil), tr.Leaves...)
		if spread {
			aggtree.AssignAggregators(leaves, ranks)
		} else {
			for i := range leaves {
				leaves[i].Aggregator = i % ranks
			}
		}
		loads := toLoads(leaves, infos, bpp)
		bd := p.ModelTwoPhaseWrite(ranks, loads, metaBytesPerLeaf(cb.Schema().NumAttrs()))
		name := "even spread [39]"
		if !spread {
			name = "first-fit"
		}
		t.AddRow(name, fmt.Sprintf("%.2f", float64(bd.Total())/float64(time.Millisecond)),
			mbs(ior.Bandwidth(total*int64(bpp), bd.Total())))
	}
	return t, nil
}

// toLoads converts leaves to cost-model loads.
func toLoads(leaves []aggtree.Leaf, infos []aggtree.RankInfo, bpp int) []perf.LeafLoad {
	loads := make([]perf.LeafLoad, len(leaves))
	for i, l := range leaves {
		ld := perf.LeafLoad{
			Bytes:      l.Bytes(bpp),
			Count:      l.Count,
			Aggregator: l.Aggregator,
			Ranks:      l.Ranks,
		}
		ld.MemberBytes = make([]int64, len(l.Ranks))
		for j, r := range l.Ranks {
			ld.MemberBytes[j] = infos[r].Count * int64(bpp)
		}
		loads[i] = ld
	}
	return loads
}

// heaviestRank returns the rank with the most particles at a step.
func heaviestRank(w workloads.Workload, step int) int {
	counts := w.Counts(step)
	best := 0
	for r, c := range counts {
		if c > counts[best] {
			best = r
		}
	}
	return best
}
