// Package bench regenerates every table and figure of the paper's
// evaluation (§VI). The weak-scaling and strategy-comparison figures run
// the real aggregation algorithms on real per-rank particle counts and
// charge data movement to the perf cost models at the paper's full rank
// counts; the visualization-read tables build real BAT files on local disk
// and time real progressive queries.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable result table (one per paper figure or table).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// gbs formats a bytes/second value as GB/s.
func gbs(v float64) string { return fmt.Sprintf("%.2f", v/1e9) }

// mbs formats a bytes/second value as MB/s.
func mbs(v float64) string { return fmt.Sprintf("%.1f", v/1e6) }

// sizeMB formats a target size in MB.
func sizeMB(b int64) string {
	if b%(1<<20) == 0 {
		return fmt.Sprintf("%dMB", b>>20)
	}
	return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
}
