package bench

import (
	"bytes"
	"testing"
)

func TestAblateOverfull(t *testing.T) {
	tb, err := AblateOverfull(384, 2501, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Disabling the overfull rule should not reduce the file count: the
	// tree is forced to keep splitting.
	withFiles := parseCell(t, tb, 0, 1)
	withoutFiles := parseCell(t, tb, 1, 1)
	if withoutFiles < withFiles {
		t.Errorf("disabling overfull reduced files: %v -> %v", withFiles, withoutFiles)
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	t.Log("\n" + buf.String())
}

func TestAblateSplitAxes(t *testing.T) {
	tb, err := AblateSplitAxes(384, 1001, 3<<20)
	if err != nil {
		t.Fatal(err)
	}
	// All-axes search must not produce a worse (larger) max file.
	onlyLongest := parseCell(t, tb, 0, 3)
	allAxes := parseCell(t, tb, 1, 3)
	if allAxes > onlyLongest*1.2 {
		t.Errorf("all-axes max %.2f much worse than longest-axis %.2f", allAxes, onlyLongest)
	}
}

func TestAblateLOD(t *testing.T) {
	if testing.Short() {
		t.Skip("materialized benchmark")
	}
	tb, err := AblateLOD(8, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for r := range tb.Rows {
		if parseCell(t, tb, r, 3) <= 0 {
			t.Errorf("row %d: no throughput", r)
		}
		if over := parseCell(t, tb, r, 4); over < 0 || over > 25 {
			t.Errorf("row %d: overhead %.2f%% out of range", r, over)
		}
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	t.Log("\n" + buf.String())
}

func TestAblateBitmapDictionary(t *testing.T) {
	tb, err := AblateBitmapDictionary(100_000)
	if err != nil {
		t.Fatal(err)
	}
	saving := parseCell(t, tb, 0, 4)
	if saving <= 0 {
		t.Errorf("dictionary should save space, got %.0f%%", saving)
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	t.Log("\n" + buf.String())
}

func TestAblateAggregatorSpread(t *testing.T) {
	tb, err := AblateAggregatorSpread(384, 2501, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	spread := parseCell(t, tb, 0, 1)
	naive := parseCell(t, tb, 1, 1)
	if spread > naive {
		t.Errorf("even spread (%.2f ms) should not be slower than first-fit (%.2f ms)", spread, naive)
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	t.Log("\n" + buf.String())
}
