package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"libbat/internal/bat"
	"libbat/internal/core"
	"libbat/internal/fabric"
	"libbat/internal/geom"
	"libbat/internal/meta"
	"libbat/internal/obs"
	"libbat/internal/pfs"
	"libbat/internal/workloads"
)

// Observer, when set before benchmarks run, attaches telemetry to every
// materialized (full-fidelity) pipeline run: fabrics and stores are
// instrumented, so batbench's -stats/-trace flags capture the per-phase
// and per-rank breakdown alongside the tables. Nil (default) disables it.
var Observer *obs.Collector

// BuildWorkers, when nonzero, overrides the BAT build worker-pool size of
// every materialized pipeline run (batbench's -build-workers flag).
var BuildWorkers int

// WriteDataset writes one workload timestep through the full two-phase
// pipeline (real goroutine ranks, real BAT files) into store, attaching
// the package Observer if one is set.
func WriteDataset(w workloads.Workload, step int, store pfs.Storage, base string,
	cfg core.WriteConfig) (*core.WriteStats, error) {
	return WriteDatasetObserved(w, step, store, base, cfg, Observer)
}

// WriteDatasetObserved is WriteDataset with an explicit telemetry
// collector (nil disables) wired into the fabric and the store.
func WriteDatasetObserved(w workloads.Workload, step int, store pfs.Storage, base string,
	cfg core.WriteConfig, col *obs.Collector) (*core.WriteStats, error) {

	if BuildWorkers != 0 {
		cfg.BAT.Workers = BuildWorkers
	}
	n := w.Decomp().NumRanks()
	store = pfs.Observe(store, col)
	f := fabric.New(n)
	f.SetObserver(col)
	var mu sync.Mutex
	var rootStats *core.WriteStats
	err := f.Run(func(c *fabric.Comm) error {
		local := w.Generate(step, c.Rank())
		st, err := core.Write(c, store, base, local, w.Decomp().RankBounds(c.Rank()), cfg)
		if err != nil {
			return fmt.Errorf("rank %d: %w", c.Rank(), err)
		}
		if c.Rank() == 0 {
			mu.Lock()
			rootStats = st
			mu.Unlock()
		}
		return nil
	})
	return rootStats, err
}

// ProgressiveResult is one measured progressive read sequence.
type ProgressiveResult struct {
	AvgReadMs  float64 // mean time per 0.1-quality increment
	PtsPerMs   float64 // aggregate throughput
	TotalReads int
	TotalPts   int64
}

// ProgressiveRead runs the paper's Table I/II access pattern on a written
// dataset: single-threaded, quality 0.1 to 1.0 in increments of 0.1,
// progressive (each read processes only the increment), over every leaf
// file.
func ProgressiveRead(store pfs.Storage, base string) (ProgressiveResult, error) {
	var res ProgressiveResult
	store = pfs.Observe(store, Observer)
	m, err := openMetaFile(store, base)
	if err != nil {
		return res, err
	}
	files := make([]*bat.File, len(m.Leaves))
	for i, l := range m.Leaves {
		fh, err := store.Open(l.FileName)
		if err != nil {
			return res, err
		}
		f, err := bat.Decode(fh, fh.Size())
		if err != nil {
			fh.Close()
			return res, err
		}
		f.SetCloser(fh)
		files[i] = f
	}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	var totalTime time.Duration
	prev := 0.0
	for stepQ := 1; stepQ <= 10; stepQ++ {
		q := float64(stepQ) / 10
		start := time.Now()
		var pts int64
		for _, f := range files {
			err := f.Query(bat.Query{PrevQuality: prev, Quality: q},
				func(geom.Vec3, []float64) error {
					pts++
					return nil
				})
			if err != nil {
				return res, err
			}
		}
		totalTime += time.Since(start)
		res.TotalPts += pts
		res.TotalReads++
		prev = q
	}
	res.AvgReadMs = float64(totalTime) / float64(time.Millisecond) / float64(res.TotalReads)
	res.PtsPerMs = float64(res.TotalPts) / (float64(totalTime) / float64(time.Millisecond))
	return res, nil
}

// VisReadConfig parameterizes the Table I/II benchmarks. The defaults are
// scaled-down versions of the paper's runs (which used 41.5M and 2M/8M
// particles); the access pattern and reporting are identical.
type VisReadConfig struct {
	Ranks       int
	Steps       []int
	TargetSizes []int64
	Dir         string // on-disk dataset directory ("" = in-memory store)
}

// Table1CoalBoiler regenerates Table I: average progressive read times and
// throughput on the Coal Boiler time series per target size.
func Table1CoalBoiler(cfg VisReadConfig, startCount, endCount int64) (*Table, error) {
	t := &Table{
		Title:  "Table I: progressive single-thread reads, Coal Boiler time series",
		Header: []string{"target", "avg read (ms)", "throughput (pts/ms)"},
	}
	cb, err := workloads.NewCoalBoiler(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	if len(cfg.Steps) == 0 {
		return nil, fmt.Errorf("bench: no steps")
	}
	cb.SetGrowth(cfg.Steps[0], cfg.Steps[len(cfg.Steps)-1], startCount, endCount)
	return visReadTable(t, cb, cfg)
}

// Table2DamBreak regenerates Table II for one Dam Break scale.
func Table2DamBreak(cfg VisReadConfig, total int64) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Table II: progressive single-thread reads, Dam Break (%d particles, %d ranks)", total, cfg.Ranks),
		Header: []string{"target", "avg read (ms)", "throughput (pts/ms)"},
	}
	db, err := workloads.NewDamBreak(cfg.Ranks, total)
	if err != nil {
		return nil, err
	}
	return visReadTable(t, db, cfg)
}

func visReadTable(t *Table, w workloads.Workload, cfg VisReadConfig) (*Table, error) {
	for _, target := range cfg.TargetSizes {
		var sumMs, sumPts float64
		var n int
		for _, step := range cfg.Steps {
			store, err := makeStore(cfg.Dir)
			if err != nil {
				return nil, err
			}
			base := fmt.Sprintf("%s-s%d-t%d", w.Name(), step, target)
			if _, err := WriteDataset(w, step, store, base, core.DefaultWriteConfig(target)); err != nil {
				return nil, err
			}
			res, err := ProgressiveRead(store, base)
			if err != nil {
				return nil, err
			}
			sumMs += res.AvgReadMs
			sumPts += res.PtsPerMs
			n++
		}
		t.AddRow(sizeMB(target),
			fmt.Sprintf("%.2f", sumMs/float64(n)),
			fmt.Sprintf("%.0f", sumPts/float64(n)))
	}
	t.Notes = append(t.Notes, "real single-threaded reads of real BAT files (quality 0.1 to 1.0 in 0.1 steps)")
	return t, nil
}

func makeStore(dir string) (pfs.Storage, error) {
	if dir == "" {
		return pfs.NewMem(), nil
	}
	return pfs.NewOS(dir)
}

// Fig13Quality regenerates Figure 13's quality progression as point
// counts: the fraction of the Coal Boiler returned at qualities 0.2, 0.4,
// and 0.8.
func Fig13Quality(cfg VisReadConfig, particles int64) (*Table, error) {
	t := &Table{
		Title:  "Fig 13: visual quality progression (points returned per quality level)",
		Header: []string{"quality", "points", "fraction"},
	}
	cb, err := workloads.NewCoalBoiler(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	cb.SetGrowth(0, 1, particles, particles)
	store, err := makeStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	target := int64(4 << 20)
	if len(cfg.TargetSizes) > 0 {
		target = cfg.TargetSizes[0]
	}
	if _, err := WriteDataset(cb, 0, store, "fig13", core.DefaultWriteConfig(target)); err != nil {
		return nil, err
	}
	m, err := openMetaFile(store, "fig13")
	if err != nil {
		return nil, err
	}
	total := m.TotalCount()
	for _, q := range []float64{0.2, 0.4, 0.8, 1.0} {
		var pts int64
		for _, l := range m.Leaves {
			f, err := openLeaf(store, l.FileName)
			if err != nil {
				return nil, err
			}
			n, err := f.CountMatching(bat.Query{Quality: q})
			f.Close()
			if err != nil {
				return nil, err
			}
			pts += n
		}
		t.AddRow(fmt.Sprintf("%.1f", q), fmt.Sprintf("%d", pts),
			fmt.Sprintf("%.2f", float64(pts)/float64(total)))
	}
	return t, nil
}

// openMetaFile reads and parses a dataset's top-level metadata.
func openMetaFile(store pfs.Storage, base string) (*meta.Meta, error) {
	mf, err := store.Open(core.MetaFileName(base))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	buf := make([]byte, mf.Size())
	if _, err := mf.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return meta.Decode(buf)
}

func openLeaf(store pfs.Storage, name string) (*bat.File, error) {
	fh, err := store.Open(name)
	if err != nil {
		return nil, err
	}
	f, err := bat.Decode(fh, fh.Size())
	if err != nil {
		fh.Close()
		return nil, err
	}
	f.SetCloser(fh)
	return f, nil
}

// Overhead regenerates the §VI-B memory overhead measurement: the BAT
// layout's storage cost over the raw particle payload.
func Overhead(cfg VisReadConfig, particles int64) (*Table, error) {
	t := &Table{
		Title:  "Layout memory overhead (§VI-B)",
		Header: []string{"dataset", "raw MB", "file MB", "overhead"},
	}
	cb, err := workloads.NewCoalBoiler(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	cb.SetGrowth(0, 1, particles, particles)
	store, err := makeStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	target := int64(8 << 20)
	if _, err := WriteDataset(cb, 0, store, "overhead", core.DefaultWriteConfig(target)); err != nil {
		return nil, err
	}
	names, err := store.List()
	if err != nil {
		return nil, err
	}
	var fileBytes int64
	for _, n := range names {
		f, err := store.Open(n)
		if err != nil {
			return nil, err
		}
		fileBytes += f.Size()
		f.Close()
	}
	raw := particles * int64(cb.Schema().BytesPerParticle())
	t.AddRow("coal-boiler",
		fmt.Sprintf("%.1f", float64(raw)/(1<<20)),
		fmt.Sprintf("%.1f", float64(fileBytes)/(1<<20)),
		fmt.Sprintf("%.2f%%", 100*float64(fileBytes-raw)/float64(raw)))
	t.Notes = append(t.Notes, "paper reports 0.9% additional memory for the BAT layout")
	return t, nil
}

// Fig8DatasetStats summarizes the nonuniform datasets (the paper's Figure
// 8 shows renders; this reports the distribution statistics driving the
// I/O behaviour).
func Fig8DatasetStats(ranks int) (*Table, error) {
	t := &Table{
		Title:  "Fig 8: time-varying dataset statistics",
		Header: []string{"dataset", "step", "particles", "occupied ranks", "max/mean imbalance"},
	}
	cb, err := workloads.NewCoalBoiler(ranks)
	if err != nil {
		return nil, err
	}
	db, err := workloads.NewDamBreak(ranks, 2_000_000)
	if err != nil {
		return nil, err
	}
	add := func(w workloads.Workload, steps []int) {
		for _, step := range steps {
			counts := w.Counts(step)
			var total, max int64
			occupied := 0
			for _, c := range counts {
				total += c
				if c > max {
					max = c
				}
				if c > 0 {
					occupied++
				}
			}
			mean := float64(total) / float64(occupied)
			t.AddRow(w.Name(), fmt.Sprintf("%d", step),
				fmt.Sprintf("%.2fM", float64(total)/1e6),
				fmt.Sprintf("%d/%d", occupied, len(counts)),
				fmt.Sprintf("%.1fx", float64(max)/mean))
		}
	}
	add(cb, []int{501, 2501, 4501})
	add(db, []int{0, 1001, 4001})
	return t, nil
}
