package bench

import (
	"bytes"
	"testing"

	"libbat/internal/perf"
)

func TestCosmoCompare(t *testing.T) {
	cfg := CompareConfig{
		Profile:     perf.Stampede2(),
		Ranks:       384,
		Steps:       []int{0, 500, 1000},
		TargetSizes: []int64{8 << 20},
	}
	tb, err := CosmoCompare(cfg, 5_000_000, 12)
	if err != nil {
		t.Fatal(err)
	}
	// At full clustering (the last step), adaptive should beat AUG.
	last := len(tb.Rows) - 1
	ad := parseCell(t, tb, last, colIndex(t, tb, "adaptive-8MB"))
	ag := parseCell(t, tb, last, colIndex(t, tb, "aug-8MB"))
	if ad <= ag {
		t.Errorf("clustered cosmo: adaptive %.1f <= aug %.1f", ad, ag)
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	t.Log("\n" + buf.String())
}

func TestRecommendCheck(t *testing.T) {
	// A simple local copy of the public policy (bench cannot import the
	// root package).
	recommend := func(ranks int, bytesPerRank int64) int64 {
		factor := int64(1)
		switch {
		case ranks >= 16384:
			factor = 32
		case ranks >= 4096:
			factor = 16
		case ranks >= 1024:
			factor = 8
		case ranks >= 256:
			factor = 4
		case ranks >= 64:
			factor = 2
		}
		target := factor * bytesPerRank
		if target < 1<<20 {
			return 1 << 20
		}
		return target
	}
	tb, err := RecommendCheck(perf.Stampede2(), []int{96, 1536, 6144, 24576},
		UniformPerRank, UniformAttrs, recommend)
	if err != nil {
		t.Fatal(err)
	}
	// The recommendation should land within 2.5x of the sweep optimum at
	// every scale (the policy trades a little peak bandwidth for a
	// bounded file count).
	for r := range tb.Rows {
		frac := parseCell(t, tb, r, colIndex(t, tb, "rec/best"))
		if frac < 0.4 {
			t.Errorf("row %d: recommendation at %.0f%% of optimum", r, frac*100)
		}
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	t.Log("\n" + buf.String())
}

func TestMeasuredBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("materialized benchmark")
	}
	tb, err := MeasuredBreakdown(16, 150_000, 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Every phase column parses; totals positive.
	for r := range tb.Rows {
		if total := parseCell(t, tb, r, 8); total <= 0 {
			t.Errorf("row %d total %v", r, total)
		}
	}
	// No wall-clock strategy comparison here: the suite runs on an
	// oversubscribed shared machine where scheduling noise dwarfs the
	// strategies' difference. The modeled figures (deterministic) carry
	// the adaptive-vs-AUG comparison; this test checks the measured
	// pipeline produces a complete, positive breakdown for both.
	var buf bytes.Buffer
	tb.Fprint(&buf)
	t.Log("\n" + buf.String())
}
