package bench

import (
	"fmt"
	"time"

	"libbat/internal/aggtree"
	"libbat/internal/ior"
	"libbat/internal/perf"
	"libbat/internal/workloads"
)

// UniformPerRank is the paper's weak-scaling payload: 32k particles per
// rank, each 3 x float32 + 14 x float64 (4.06 MB per rank).
const UniformPerRank = 32768

// UniformAttrs is the attribute count of the weak-scaling payload.
const UniformAttrs = 14

// metaBytesPerLeaf approximates the per-leaf metadata payload (ranges +
// bitmaps per attribute plus bounds and the file reference).
func metaBytesPerLeaf(numAttrs int) int { return 64 + 20*numAttrs }

// planLeafLoads runs the requested aggregation strategy for real on the
// per-rank infos and converts the result to cost-model leaf loads.
func planLeafLoads(infos []aggtree.RankInfo, worldSize int, target int64,
	bpp int, adaptive bool) ([]perf.LeafLoad, []aggtree.Leaf, error) {

	var leaves []aggtree.Leaf
	if adaptive {
		tr, err := aggtree.Build(infos, aggtree.DefaultConfig(target, bpp))
		if err != nil {
			return nil, nil, err
		}
		leaves = tr.Leaves
	} else {
		var err error
		leaves, err = augBuild(infos, target, bpp)
		if err != nil {
			return nil, nil, err
		}
	}
	aggtree.AssignAggregators(leaves, worldSize)
	loads := make([]perf.LeafLoad, len(leaves))
	for i, l := range leaves {
		ld := perf.LeafLoad{
			Bytes:      l.Bytes(bpp),
			Count:      l.Count,
			Aggregator: l.Aggregator,
			Ranks:      l.Ranks,
		}
		ld.MemberBytes = make([]int64, len(l.Ranks))
		for j, r := range l.Ranks {
			ld.MemberBytes[j] = infos[r].Count * int64(bpp)
		}
		loads[i] = ld
	}
	return loads, leaves, nil
}

// WeakScalingConfig parameterizes Figures 5 and 7.
type WeakScalingConfig struct {
	Profile     perf.Profile
	RankCounts  []int
	TargetSizes []int64
	PerRank     int64 // particles per rank
	NumAttrs    int
}

// DefaultWeakScaling returns the paper's configuration for a system:
// Stampede2 scales to ~24k ranks, Summit to ~43k (Figure 5a/5b).
func DefaultWeakScaling(p perf.Profile) WeakScalingConfig {
	ranks := []int{96, 384, 1536, 6144, 24576}
	if p.Name == "summit" {
		ranks = []int{84, 336, 1344, 5376, 21504, 43008}
	}
	return WeakScalingConfig{
		Profile:     p,
		RankCounts:  ranks,
		TargetSizes: []int64{8 << 20, 32 << 20, 64 << 20, 256 << 20},
		PerRank:     UniformPerRank,
		NumAttrs:    UniformAttrs,
	}
}

// scalingTable shares the machinery of Figures 5 (writes) and 7 (reads).
func scalingTable(cfg WeakScalingConfig, reads bool) (*Table, error) {
	kind, figure := "write", "Fig 5"
	if reads {
		kind, figure = "read", "Fig 7"
	}
	t := &Table{
		Title: fmt.Sprintf("%s (%s): %s bandwidth weak scaling, uniform %dk particles/rank [GB/s]",
			figure, cfg.Profile.Name, kind, cfg.PerRank/1024),
	}
	t.Header = []string{"ranks", "fpp", "shared", "hdf5"}
	for _, ts := range cfg.TargetSizes {
		t.Header = append(t.Header, "ours-"+sizeMB(ts))
	}
	for _, n := range cfg.RankCounts {
		w, err := workloads.NewUniform(n, cfg.PerRank, cfg.NumAttrs)
		if err != nil {
			return nil, err
		}
		bpp := w.Schema().BytesPerParticle()
		bytesPerRank := cfg.PerRank * int64(bpp)
		total := int64(n) * bytesPerRank
		row := []string{fmt.Sprintf("%d", n)}
		for _, m := range []ior.Mode{ior.FilePerProcess, ior.SharedFile, ior.HDF5Shared} {
			var d time.Duration
			if reads {
				d = ior.ReadTime(cfg.Profile, m, n, bytesPerRank)
			} else {
				d = ior.WriteTime(cfg.Profile, m, n, bytesPerRank)
			}
			row = append(row, gbs(ior.Bandwidth(total, d)))
		}
		infos := workloads.RankInfos(w, 0)
		for _, ts := range cfg.TargetSizes {
			loads, _, err := planLeafLoads(infos, n, ts, bpp, true)
			if err != nil {
				return nil, err
			}
			var d time.Duration
			if reads {
				d = cfg.Profile.ModelTwoPhaseRead(n, loads, metaBytesPerLeaf(cfg.NumAttrs)).Total()
			} else {
				d = cfg.Profile.ModelTwoPhaseWrite(n, loads, metaBytesPerLeaf(cfg.NumAttrs)).Total()
			}
			row = append(row, gbs(ior.Bandwidth(total, d)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"aggregation plans computed by the real adaptive tree; byte movement charged to the "+cfg.Profile.Name+" cost model")
	return t, nil
}

// Fig5WriteScaling regenerates Figure 5 (write bandwidth weak scaling vs
// IOR baselines) for one system profile.
func Fig5WriteScaling(cfg WeakScalingConfig) (*Table, error) {
	return scalingTable(cfg, false)
}

// Fig7ReadScaling regenerates Figure 7 (read bandwidth weak scaling).
func Fig7ReadScaling(cfg WeakScalingConfig) (*Table, error) {
	return scalingTable(cfg, true)
}

// Fig6Breakdown regenerates Figure 6: the time spent in each component of
// the write pipeline at 8 MB and 64 MB target sizes across scales.
func Fig6Breakdown(cfg WeakScalingConfig) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Fig 6 (%s): write timing breakdown [ms]", cfg.Profile.Name),
		Header: []string{"ranks", "target", "tree", "gather/scatter", "transfer",
			"bat-build", "file-write", "metadata", "total"},
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond)) }
	for _, n := range cfg.RankCounts {
		w, err := workloads.NewUniform(n, cfg.PerRank, cfg.NumAttrs)
		if err != nil {
			return nil, err
		}
		bpp := w.Schema().BytesPerParticle()
		infos := workloads.RankInfos(w, 0)
		for _, ts := range []int64{8 << 20, 64 << 20} {
			loads, _, err := planLeafLoads(infos, n, ts, bpp, true)
			if err != nil {
				return nil, err
			}
			bd := cfg.Profile.ModelTwoPhaseWrite(n, loads, metaBytesPerLeaf(cfg.NumAttrs))
			t.AddRow(fmt.Sprintf("%d", n), sizeMB(ts), ms(bd.TreeBuild), ms(bd.GatherScatter),
				ms(bd.Transfer), ms(bd.BATBuild), ms(bd.FileWrite), ms(bd.Metadata), ms(bd.Total()))
		}
	}
	return t, nil
}
