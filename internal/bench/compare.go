package bench

import (
	"fmt"
	"time"

	"libbat/internal/aggtree"
	"libbat/internal/aug"
	"libbat/internal/ior"
	"libbat/internal/perf"
	"libbat/internal/workloads"
)

// augBuild runs the AUG baseline grouping.
func augBuild(infos []aggtree.RankInfo, target int64, bpp int) ([]aggtree.Leaf, error) {
	return aug.Build(infos, aug.Config{TargetFileSize: target, BytesPerParticle: bpp})
}

// CompareConfig parameterizes the adaptive-vs-AUG comparisons of Figures
// 9-12, run on the Stampede2 profile as in the paper.
type CompareConfig struct {
	Profile     perf.Profile
	Ranks       int
	Steps       []int
	TargetSizes []int64
}

// DefaultCoalBoilerCompare matches §VI-A.2: 1536 ranks, timesteps 501 to
// 4501, on Stampede2 SKX nodes.
func DefaultCoalBoilerCompare() CompareConfig {
	return CompareConfig{
		Profile:     perf.Stampede2(),
		Ranks:       1536,
		Steps:       []int{501, 1501, 2501, 3501, 4501},
		TargetSizes: []int64{8 << 20, 16 << 20, 32 << 20, 64 << 20},
	}
}

// DefaultDamBreakCompare matches §VI-A.2 for the given scale: the 2M
// particle run on 1536 ranks or the 8M run on 6144 ranks.
func DefaultDamBreakCompare(big bool) (CompareConfig, int64) {
	cfg := CompareConfig{
		Profile:     perf.Stampede2(),
		Ranks:       1536,
		Steps:       []int{0, 1001, 2001, 3001, 4001},
		TargetSizes: []int64{1 << 20, 3 << 20, 8 << 20},
	}
	total := int64(2_000_000)
	if big {
		cfg.Ranks = 6144
		total = 8_000_000
	}
	return cfg, total
}

// compareTable shares the machinery of Figures 9 and 11: bandwidth of
// adaptive vs AUG aggregation over a time series, per target size.
func compareTable(title string, w workloads.Workload, cfg CompareConfig, reads bool) (*Table, error) {
	t := &Table{Title: title}
	t.Header = []string{"step", "particles"}
	for _, ts := range cfg.TargetSizes {
		t.Header = append(t.Header, "adaptive-"+sizeMB(ts), "aug-"+sizeMB(ts))
	}
	bpp := w.Schema().BytesPerParticle()
	nA := w.Schema().NumAttrs()
	for _, step := range cfg.Steps {
		infos := workloads.RankInfos(w, step)
		var total int64
		for _, ri := range infos {
			total += ri.Count
		}
		row := []string{fmt.Sprintf("%d", step), fmt.Sprintf("%.1fM", float64(total)/1e6)}
		for _, ts := range cfg.TargetSizes {
			for _, adaptive := range []bool{true, false} {
				loads, _, err := planLeafLoads(infos, cfg.Ranks, ts, bpp, adaptive)
				if err != nil {
					return nil, err
				}
				var d time.Duration
				if reads {
					d = cfg.Profile.ModelTwoPhaseRead(cfg.Ranks, loads, metaBytesPerLeaf(nA)).Total()
				} else {
					d = cfg.Profile.ModelTwoPhaseWrite(cfg.Ranks, loads, metaBytesPerLeaf(nA)).Total()
				}
				row = append(row, mbs(ior.Bandwidth(total*int64(bpp), d)))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "bandwidth in MB/s; dashed-line AUG columns use the adjustable uniform grid of Kumar et al. [27]")
	return t, nil
}

// Fig9CoalBoiler regenerates Figure 9: adaptive vs AUG write (a) and read
// (b) bandwidth on the Coal Boiler time series.
func Fig9CoalBoiler(cfg CompareConfig) (write, read *Table, err error) {
	cb, err := workloads.NewCoalBoiler(cfg.Ranks)
	if err != nil {
		return nil, nil, err
	}
	write, err = compareTable("Fig 9a: Coal Boiler adaptive vs AUG write bandwidth [MB/s]", cb, cfg, false)
	if err != nil {
		return nil, nil, err
	}
	read, err = compareTable("Fig 9b: Coal Boiler adaptive vs AUG read bandwidth [MB/s]", cb, cfg, true)
	return write, read, err
}

// Fig11DamBreak regenerates Figure 11 for one scale of the Dam Break.
func Fig11DamBreak(cfg CompareConfig, totalParticles int64) (write, read *Table, err error) {
	db, err := workloads.NewDamBreak(cfg.Ranks, totalParticles)
	if err != nil {
		return nil, nil, err
	}
	label := fmt.Sprintf("%dM Dam Break (%d ranks)", totalParticles/1_000_000, cfg.Ranks)
	write, err = compareTable("Fig 11 "+label+" write bandwidth [MB/s]", db, cfg, false)
	if err != nil {
		return nil, nil, err
	}
	read, err = compareTable("Fig 11 "+label+" read bandwidth [MB/s]", db, cfg, true)
	return write, read, err
}

// breakdownTable shares Figures 10 and 12: component times of adaptive vs
// AUG at one target size over a time series.
func breakdownTable(title string, w workloads.Workload, cfg CompareConfig, target int64) (*Table, error) {
	t := &Table{
		Title: title,
		Header: []string{"step", "strategy", "files", "tree", "gather/scatter",
			"transfer", "bat-build", "file-write", "metadata", "total"},
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond)) }
	bpp := w.Schema().BytesPerParticle()
	nA := w.Schema().NumAttrs()
	for _, step := range cfg.Steps {
		infos := workloads.RankInfos(w, step)
		for _, adaptive := range []bool{true, false} {
			loads, leaves, err := planLeafLoads(infos, cfg.Ranks, target, bpp, adaptive)
			if err != nil {
				return nil, err
			}
			bd := cfg.Profile.ModelTwoPhaseWrite(cfg.Ranks, loads, metaBytesPerLeaf(nA))
			name := "adaptive"
			if !adaptive {
				name = "aug"
			}
			t.AddRow(fmt.Sprintf("%d", step), name, fmt.Sprintf("%d", len(leaves)),
				ms(bd.TreeBuild), ms(bd.GatherScatter), ms(bd.Transfer),
				ms(bd.BATBuild), ms(bd.FileWrite), ms(bd.Metadata), ms(bd.Total()))
		}
	}
	return t, nil
}

// Fig10Breakdown regenerates Figure 10: Coal Boiler component breakdown at
// the 8 MB target size.
func Fig10Breakdown(cfg CompareConfig) (*Table, error) {
	cb, err := workloads.NewCoalBoiler(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	return breakdownTable("Fig 10: Coal Boiler breakdown, 8MB target [ms]", cb, cfg, 8<<20)
}

// Fig12Breakdown regenerates Figure 12: 8M Dam Break component breakdown
// at the 3 MB target size.
func Fig12Breakdown(cfg CompareConfig, totalParticles int64) (*Table, error) {
	db, err := workloads.NewDamBreak(cfg.Ranks, totalParticles)
	if err != nil {
		return nil, err
	}
	return breakdownTable(fmt.Sprintf("Fig 12: %dM Dam Break breakdown, 3MB target [ms]",
		totalParticles/1_000_000), db, cfg, 3<<20)
}

// FileStats regenerates the §VI-A.2 output-file statistics: the file count
// and size distribution written by adaptive vs AUG aggregation on the Coal
// Boiler at timestep 4501 with an 8 MB target.
func FileStats(ranks, step int, target int64) (*Table, error) {
	cb, err := workloads.NewCoalBoiler(ranks)
	if err != nil {
		return nil, err
	}
	bpp := cb.Schema().BytesPerParticle()
	infos := workloads.RankInfos(cb, step)
	t := &Table{
		Title:  fmt.Sprintf("File statistics (§VI-A.2): Coal Boiler step %d, %s target", step, sizeMB(target)),
		Header: []string{"strategy", "files", "avg MB", "stddev MB", "max MB"},
	}
	for _, adaptive := range []bool{true, false} {
		_, leaves, err := planLeafLoads(infos, ranks, target, bpp, adaptive)
		if err != nil {
			return nil, err
		}
		st := aggtree.LeafSizeStats(leaves, bpp)
		name := "adaptive"
		if !adaptive {
			name = "aug"
		}
		t.AddRow(name, fmt.Sprintf("%d", st.NumFiles),
			fmt.Sprintf("%.1f", st.MeanB/(1<<20)),
			fmt.Sprintf("%.1f", st.StddevB/(1<<20)),
			fmt.Sprintf("%.1f", float64(st.MaxB)/(1<<20)))
	}
	t.Notes = append(t.Notes,
		"paper: AUG 296 files avg 10.2 +/- 13.9 MB max 72.9; adaptive 327 files avg 9.2 +/- 8.4 MB max 36.6")
	return t, nil
}
