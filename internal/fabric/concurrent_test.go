package fabric

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestIbarrierUnderTraffic drives the nonblocking barrier the way the read
// pipeline does: every rank keeps serving point-to-point messages while
// polling the barrier, and the barrier must not complete until every rank
// has entered it — even with payloads still in flight.
func TestIbarrierUnderTraffic(t *testing.T) {
	const n = 16
	const tag = 9
	var entered atomic.Int32
	err := Run(n, func(c *Comm) error {
		// Stagger entry so early ranks spin on Test() for a while.
		time.Sleep(time.Duration(c.Rank()) * time.Millisecond)
		for dst := 0; dst < n; dst++ {
			if dst != c.Rank() {
				c.Isend(dst, tag, []byte{byte(c.Rank())})
			}
		}
		entered.Add(1)
		br := c.Ibarrier()
		got := 0
		for !br.Test() {
			if _, ok := c.Probe(AnySource, tag); ok {
				d, st := c.Recv(AnySource, tag)
				if len(d) != 1 || int(d[0]) != st.Source {
					return fmt.Errorf("rank %d: payload %v from %d", c.Rank(), d, st.Source)
				}
				got++
			}
		}
		if e := entered.Load(); e != n {
			return fmt.Errorf("rank %d: Ibarrier completed with only %d/%d ranks entered", c.Rank(), e, n)
		}
		// The barrier can complete while this rank still has queued
		// messages; drain the rest after it.
		for got < n-1 {
			c.Recv(AnySource, tag)
			got++
		}
		if _, ok := c.Probe(AnySource, tag); ok {
			return fmt.Errorf("rank %d: unexpected extra message", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIbarrierRepeatedGenerations runs several Ibarrier epochs back to back
// to check the generation counter does not let a fast rank slip through a
// later barrier on the strength of an earlier one.
func TestIbarrierRepeatedGenerations(t *testing.T) {
	const n, rounds = 8, 5
	counters := make([]atomic.Int32, rounds)
	err := Run(n, func(c *Comm) error {
		for round := 0; round < rounds; round++ {
			counters[round].Add(1)
			br := c.Ibarrier()
			for !br.Test() {
				time.Sleep(50 * time.Microsecond)
			}
			if got := counters[round].Load(); got != n {
				return fmt.Errorf("round %d released rank %d with %d/%d entered", round, c.Rank(), got, n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAnySourceAnyTagConcurrentSenders floods one receiver from every other
// rank at once, over several tags, and checks wildcard receives see every
// message exactly once, with a status that matches the payload and
// non-overtaking (FIFO) order per sender.
func TestAnySourceAnyTagConcurrentSenders(t *testing.T) {
	const n = 12
	const perSender = 50
	err := Run(n, func(c *Comm) error {
		if c.Rank() != 0 {
			for seq := 0; seq < perSender; seq++ {
				buf := make([]byte, 8)
				binary.LittleEndian.PutUint32(buf[0:], uint32(c.Rank()))
				binary.LittleEndian.PutUint32(buf[4:], uint32(seq))
				c.Send(0, 100+seq%3, buf)
			}
			return nil
		}
		nextSeq := make([]int, n)
		for i := 0; i < (n-1)*perSender; i++ {
			d, st := c.Recv(AnySource, AnyTag)
			src := int(binary.LittleEndian.Uint32(d[0:]))
			seq := int(binary.LittleEndian.Uint32(d[4:]))
			if src != st.Source {
				return fmt.Errorf("payload says source %d, status says %d", src, st.Source)
			}
			if st.Tag != 100+seq%3 {
				return fmt.Errorf("seq %d from %d arrived with tag %d", seq, src, st.Tag)
			}
			if seq != nextSeq[src] {
				return fmt.Errorf("from rank %d: got seq %d, want %d (overtaking)", src, seq, nextSeq[src])
			}
			nextSeq[src]++
		}
		for r := 1; r < n; r++ {
			if nextSeq[r] != perSender {
				return fmt.Errorf("rank %d delivered %d/%d messages", r, nextSeq[r], perSender)
			}
		}
		if _, ok := c.Probe(AnySource, AnyTag); ok {
			return fmt.Errorf("message left over after all were received")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWildcardProbeRecvRace mixes Probe+Recv consumers with concurrent
// senders on distinct tags: a probe's status must still be claimable by a
// targeted Recv even while other messages keep arriving.
func TestWildcardProbeRecvRace(t *testing.T) {
	const n = 8
	const msgs = 40
	err := Run(n, func(c *Comm) error {
		if c.Rank() != 0 {
			for i := 0; i < msgs; i++ {
				c.Send(0, c.Rank(), []byte{byte(c.Rank()), byte(i)})
			}
			return nil
		}
		seen := make([]int, n)
		for got := 0; got < (n-1)*msgs; {
			st, ok := c.Probe(AnySource, AnyTag)
			if !ok {
				time.Sleep(20 * time.Microsecond)
				continue
			}
			// Claim exactly the probed message.
			d, rst := c.Recv(st.Source, st.Tag)
			if rst.Source != st.Source || rst.Tag != st.Tag {
				return fmt.Errorf("probe/recv mismatch: %+v vs %+v", st, rst)
			}
			if int(d[0]) != st.Source || int(d[1]) != seen[st.Source] {
				return fmt.Errorf("from %d: payload %v, want seq %d", st.Source, d, seen[st.Source])
			}
			seen[st.Source]++
			got++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
