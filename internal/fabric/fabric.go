// Package fabric provides a simulated MPI-like message-passing layer. Ranks
// run as goroutines and communicate through matched point-to-point messages
// (blocking and nonblocking), collectives (gather, scatterv, broadcast,
// barrier), and a nonblocking barrier, mirroring the MPI feature set the
// paper's pipeline depends on: nonblocking sends/receives for aggregation
// (§III-B) and MPI_Ibarrier for the client-server read loop (§IV-B).
//
// Semantics follow MPI's: messages between a (source, destination, tag)
// triple are delivered in order, receives match on source and tag with
// AnySource/AnyTag wildcards, and sends are buffered (they complete without
// a matching receive).
package fabric

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"libbat/internal/obs"
	"libbat/internal/obs/access"
)

// ErrTimeout is returned (wrapped) by deadline-aware receives when no
// matching message arrives in time. Pipelines use it to turn a hung peer
// into a diagnosable error instead of a deadlock.
var ErrTimeout = errors.New("fabric: timeout")

// Wildcards accepted by receive operations.
const (
	AnySource = -1
	AnyTag    = -1
)

// message is one in-flight point-to-point message.
type message struct {
	src, tag int
	data     []byte
	seq      uint64 // arrival order, for FIFO matching
}

// inbox holds a rank's unmatched incoming messages.
type inbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []message
	seq  uint64
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) deposit(m message) {
	ib.mu.Lock()
	m.seq = ib.seq
	ib.seq++
	ib.msgs = append(ib.msgs, m)
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// match removes and returns the earliest message matching (src, tag), or
// false if none is queued.
func (ib *inbox) match(src, tag int) (message, bool) {
	for i, m := range ib.msgs {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			ib.msgs = append(ib.msgs[:i], ib.msgs[i+1:]...)
			return m, true
		}
	}
	return message{}, false
}

// Fabric connects a fixed number of ranks.
type Fabric struct {
	size    int
	inboxes []*inbox

	// Simple traffic statistics for benchmarking/validation.
	bytesSent atomic.Int64
	msgsSent  atomic.Int64

	// col, when set, receives per-rank traffic counters and is handed to
	// the pipelines through Comm.Observer. Nil (the default) disables
	// telemetry; hot paths then pay only nil checks.
	col *obs.Collector

	// accessReg, when set, hands per-dataset access recorders to the
	// collective read pipelines through Comm.AccessRegistry. Nil disables
	// access telemetry the same way.
	accessReg *access.Registry

	barrierMu   sync.Mutex
	barrierCond *sync.Cond
	barrierGen  uint64
	barrierCnt  int
}

// New creates a fabric connecting size ranks.
func New(size int) *Fabric {
	if size <= 0 {
		panic("fabric: size must be positive")
	}
	f := &Fabric{size: size, inboxes: make([]*inbox, size)}
	for i := range f.inboxes {
		f.inboxes[i] = newInbox()
	}
	f.barrierCond = sync.NewCond(&f.barrierMu)
	return f
}

// Size returns the number of ranks.
func (f *Fabric) Size() int { return f.size }

// SetObserver attaches a telemetry collector to the fabric. It must be
// called before communicators are created (i.e. before Run or Comm);
// communicators resolve their counter handles at creation time.
func (f *Fabric) SetObserver(c *obs.Collector) { f.col = c }

// Observer returns the attached collector (nil when telemetry is off).
func (f *Fabric) Observer() *obs.Collector { return f.col }

// SetAccessRegistry attaches per-dataset access-telemetry recorders to the
// fabric. Like SetObserver, call it before ranks start reading.
func (f *Fabric) SetAccessRegistry(r *access.Registry) { f.accessReg = r }

// AccessRegistry returns the attached registry (nil when disabled).
func (f *Fabric) AccessRegistry() *access.Registry { return f.accessReg }

// BytesSent returns the total bytes moved through the fabric so far.
func (f *Fabric) BytesSent() int64 { return f.bytesSent.Load() }

// MessagesSent returns the total number of point-to-point messages sent.
func (f *Fabric) MessagesSent() int64 { return f.msgsSent.Load() }

// Comm is one rank's handle onto the fabric. A Comm must only be used from
// the goroutine running that rank.
type Comm struct {
	f    *Fabric
	rank int

	// Telemetry handles, resolved once at Comm creation; all nil (no-op)
	// when the fabric has no collector attached.
	sentBytes, sentMsgs *obs.Counter
	recvBytes, recvMsgs *obs.Counter
}

// Comm returns the communicator handle for the given rank.
func (f *Fabric) Comm(rank int) *Comm {
	if rank < 0 || rank >= f.size {
		panic(fmt.Sprintf("fabric: rank %d out of range [0,%d)", rank, f.size))
	}
	c := &Comm{f: f, rank: rank}
	if f.col != nil {
		r := obs.Rank(rank)
		c.sentBytes = f.col.Counter("fabric_sent_bytes_total", r)
		c.sentMsgs = f.col.Counter("fabric_sent_msgs_total", r)
		c.recvBytes = f.col.Counter("fabric_recv_bytes_total", r)
		c.recvMsgs = f.col.Counter("fabric_recv_msgs_total", r)
	}
	return c
}

// Observer returns the fabric's telemetry collector (nil when disabled),
// letting collective pipelines record spans on this rank's timeline.
func (c *Comm) Observer() *obs.Collector { return c.f.col }

// AccessRegistry returns the fabric's access-telemetry registry (nil when
// disabled), letting collective read pipelines record per-dataset access.
func (c *Comm) AccessRegistry() *access.Registry { return c.f.accessReg }

// noteRecv counts one completed receive.
func (c *Comm) noteRecv(n int) {
	c.recvBytes.Add(int64(n))
	c.recvMsgs.Add(1)
}

// noteCollective counts this rank's participation in one collective
// operation. Collectives are rare relative to point-to-point traffic, so
// the label-resolving cold path is fine here.
func (c *Comm) noteCollective(op string) {
	c.noteOp(op, 0)
}

// noteOp counts one collective call plus the payload bytes this rank sent
// inside it (each byte is charged once, at its sender, so summing the
// per-rank series gives the collective's total wire volume). The
// per-operation series make planning-phase comm volume measurable:
// bat_fabric_<op>_bytes / bat_fabric_<op>_calls.
func (c *Comm) noteOp(op string, bytes int) {
	if c.f.col == nil {
		return
	}
	r := obs.Rank(c.rank)
	c.f.col.Add("fabric_collectives_total", 1, r, obs.L("op", op))
	c.f.col.Add("bat_fabric_"+op+"_calls", 1, r)
	if bytes > 0 {
		c.f.col.Add("bat_fabric_"+op+"_bytes", int64(bytes), r)
	}
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the fabric.
func (c *Comm) Size() int { return c.f.size }

// Send delivers data to dst with the given tag. Sends are buffered and
// complete immediately; the data slice is not copied, so callers must not
// modify it afterwards.
func (c *Comm) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.f.size {
		panic(fmt.Sprintf("fabric: send to invalid rank %d", dst))
	}
	c.f.bytesSent.Add(int64(len(data)))
	c.f.msgsSent.Add(1)
	c.sentBytes.Add(int64(len(data)))
	c.sentMsgs.Add(1)
	c.f.inboxes[dst].deposit(message{src: c.rank, tag: tag, data: data})
}

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload. src may be AnySource and tag may be AnyTag.
func (c *Comm) Recv(src, tag int) ([]byte, Status) {
	ib := c.f.inboxes[c.rank]
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		if m, ok := ib.match(src, tag); ok {
			c.noteRecv(len(m.data))
			return m.data, Status{Source: m.src, Tag: m.tag}
		}
		ib.cond.Wait()
	}
}

// RecvTimeout is Recv with a deadline: it blocks until a matching message
// arrives or timeout elapses, in which case it returns an error wrapping
// ErrTimeout. A timeout <= 0 means wait forever.
func (c *Comm) RecvTimeout(src, tag int, timeout time.Duration) ([]byte, Status, error) {
	if timeout <= 0 {
		d, st := c.Recv(src, tag)
		return d, st, nil
	}
	ib := c.f.inboxes[c.rank]
	deadline := time.Now().Add(timeout)
	expired := false
	// The timer takes the inbox lock before broadcasting so the wakeup
	// cannot slip between a waiter's deadline check and its cond.Wait.
	t := time.AfterFunc(timeout, func() {
		ib.mu.Lock()
		expired = true
		ib.mu.Unlock()
		ib.cond.Broadcast()
	})
	defer t.Stop()
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		if m, ok := ib.match(src, tag); ok {
			c.noteRecv(len(m.data))
			return m.data, Status{Source: m.src, Tag: m.tag}, nil
		}
		if expired || !time.Now().Before(deadline) {
			return nil, Status{}, fmt.Errorf(
				"%w: rank %d: no message matching src=%d tag=%d within %v",
				ErrTimeout, c.rank, src, tag, timeout)
		}
		ib.cond.Wait()
	}
}

// Probe reports whether a message matching (src, tag) is available without
// receiving it. It never blocks (MPI_Iprobe).
func (c *Comm) Probe(src, tag int) (Status, bool) {
	ib := c.f.inboxes[c.rank]
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for _, m := range ib.msgs {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			return Status{Source: m.src, Tag: m.tag}, true
		}
	}
	return Status{}, false
}

// Request is a handle on a nonblocking operation.
type Request struct {
	c        *Comm
	src, tag int
	done     bool
	data     []byte
	status   Status
}

// Isend initiates a nonblocking send. Since sends are buffered the request
// completes immediately; it exists so pipeline code reads like its MPI
// counterpart.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	c.Send(dst, tag, data)
	return &Request{c: c, done: true}
}

// Irecv initiates a nonblocking receive matching (src, tag).
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{c: c, src: src, tag: tag}
}

// Test attempts to complete the request without blocking, returning true if
// it has completed.
func (r *Request) Test() bool {
	if r.done {
		return true
	}
	ib := r.c.f.inboxes[r.c.rank]
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if m, ok := ib.match(r.src, r.tag); ok {
		r.c.noteRecv(len(m.data))
		r.data, r.status = m.data, Status{Source: m.src, Tag: m.tag}
		r.done = true
	}
	return r.done
}

// Wait blocks until the request completes and returns the received payload
// (nil for sends).
func (r *Request) Wait() ([]byte, Status) {
	if r.done {
		return r.data, r.status
	}
	r.data, r.status = r.c.Recv(r.src, r.tag)
	r.done = true
	return r.data, r.status
}

// WaitTimeout blocks until the request completes or timeout elapses,
// returning an error wrapping ErrTimeout in the latter case. The request
// stays valid after a timeout and may be waited on again. A timeout <= 0
// means wait forever.
func (r *Request) WaitTimeout(timeout time.Duration) ([]byte, Status, error) {
	if r.done {
		return r.data, r.status, nil
	}
	d, st, err := r.c.RecvTimeout(r.src, r.tag, timeout)
	if err != nil {
		return nil, Status{}, err
	}
	r.data, r.status = d, st
	r.done = true
	return d, st, nil
}

// WaitAll completes every request.
func WaitAll(reqs []*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	c.noteCollective("barrier")
	f := c.f
	f.barrierMu.Lock()
	gen := f.barrierGen
	f.barrierCnt++
	if f.barrierCnt == f.size {
		f.barrierCnt = 0
		f.barrierGen++
		f.barrierMu.Unlock()
		f.barrierCond.Broadcast()
		return
	}
	for f.barrierGen == gen {
		f.barrierCond.Wait()
	}
	f.barrierMu.Unlock()
}

// BarrierRequest is a handle on a nonblocking barrier (MPI_Ibarrier).
type BarrierRequest struct {
	f   *Fabric
	gen uint64
}

// Ibarrier enters the barrier without blocking. The returned request's Test
// reports true once every rank has entered. Each rank must call Ibarrier
// exactly once per barrier epoch; concurrent distinct Ibarrier epochs are
// not supported (matching the pipeline's single outstanding barrier).
func (c *Comm) Ibarrier() *BarrierRequest {
	c.noteCollective("ibarrier")
	f := c.f
	f.barrierMu.Lock()
	gen := f.barrierGen
	f.barrierCnt++
	if f.barrierCnt == f.size {
		f.barrierCnt = 0
		f.barrierGen++
		f.barrierMu.Unlock()
		f.barrierCond.Broadcast()
		return &BarrierRequest{f: f, gen: gen}
	}
	f.barrierMu.Unlock()
	return &BarrierRequest{f: f, gen: gen}
}

// Test reports whether every rank has entered the barrier.
func (b *BarrierRequest) Test() bool {
	b.f.barrierMu.Lock()
	defer b.f.barrierMu.Unlock()
	return b.f.barrierGen > b.gen
}

// Wait blocks until the barrier completes.
func (b *BarrierRequest) Wait() {
	b.f.barrierMu.Lock()
	for b.f.barrierGen <= b.gen {
		b.f.barrierCond.Wait()
	}
	b.f.barrierMu.Unlock()
}

// Collective tags live in a reserved space above any user tag.
const (
	tagGather = 1<<30 + iota
	tagScatter
	tagBcast
	tagAllgather
	tagReduce
	tagAlltoall
)

// The rooted collectives route along a binomial tree over virtual ranks
// vr = (rank - root + size) mod size. A rank's parent is vr with its lowest
// set bit cleared; its children are vr + 2^k for every 2^k below that bit
// (all of them for vr = 0). The subtree rooted at the child joined through
// bit m covers the contiguous virtual-rank range [vr+m, vr+2m), which is
// what lets gathers and scatters split payloads cleanly and lets reductions
// fold contributions in ascending rank order regardless of arrival timing.
// Depth is ceil(log2 P) instead of the O(P) serial loops the root paid
// before.

// treeLowBit returns the lowest set bit of vr, or size for the tree root
// (vr = 0), bounding the child masks 1, 2, 4, ... below it.
func treeLowBit(vr, size int) int {
	if vr == 0 {
		return size
	}
	return vr & -vr
}

// gatherEntry is one rank's contribution riding up or down the tree.
type gatherEntry struct {
	rank int
	data []byte
}

// packEntries serializes entries as (u32 rank, u32 len, bytes) records with
// a u32 count prefix. Subtrees are non-contiguous in actual-rank space, so
// each record carries its rank explicitly.
func packEntries(entries []gatherEntry) []byte {
	n := 4
	for _, e := range entries {
		n += 8 + len(e.data)
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.rank))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.data)))
		buf = append(buf, e.data...)
	}
	return buf
}

// unpackEntries reverses packEntries. Packs travel only rank-to-rank inside
// one collective, so malformed input is a programming error and panics.
func unpackEntries(buf []byte) []gatherEntry {
	count := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	entries := make([]gatherEntry, count)
	for i := range entries {
		r := binary.LittleEndian.Uint32(buf)
		l := binary.LittleEndian.Uint32(buf[4:])
		entries[i] = gatherEntry{rank: int(r), data: buf[8 : 8+l]}
		buf = buf[8+l:]
	}
	return entries
}

// gatherTree runs one binomial-tree gather: every rank receives its
// children's subtree packs, appends its own contribution, and forwards the
// merged pack to its parent. Returns the per-rank payloads on root (nil
// elsewhere) plus the bytes this rank sent.
func (c *Comm) gatherTree(root, tag int, data []byte) ([][]byte, int) {
	size := c.f.size
	vr := (c.rank - root + size) % size
	entries := []gatherEntry{{rank: c.rank, data: data}}
	low := treeLowBit(vr, size)
	for mask := 1; mask < low && vr+mask < size; mask <<= 1 {
		pack, _ := c.Recv((vr+mask+root)%size, tag)
		entries = append(entries, unpackEntries(pack)...)
	}
	if vr == 0 {
		out := make([][]byte, size)
		for _, e := range entries {
			out[e.rank] = e.data
		}
		return out, 0
	}
	pack := packEntries(entries)
	c.Send((vr-low+root)%size, tag, pack)
	return nil, len(pack)
}

// bcastTree runs one binomial-tree broadcast from root and returns the
// payload plus the bytes this rank sent.
func (c *Comm) bcastTree(root, tag int, data []byte) ([]byte, int) {
	size := c.f.size
	vr := (c.rank - root + size) % size
	if vr != 0 {
		data, _ = c.Recv((vr-(vr&-vr)+root)%size, tag)
	}
	sent := 0
	low := treeLowBit(vr, size)
	for mask := 1; mask < low && vr+mask < size; mask <<= 1 {
		c.Send((vr+mask+root)%size, tag, data)
		sent += len(data)
	}
	return data, sent
}

// Gather collects data from every rank on root along a binomial tree. On
// root the result has one entry per rank (the root's own contribution
// included, at its rank index); on other ranks it returns nil.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	out, sent := c.gatherTree(root, tagGather, data)
	c.noteOp("gather", sent)
	return out
}

// Scatterv distributes parts[i] from root to rank i along a binomial tree
// and returns this rank's part. On root, parts must have Size entries; on
// other ranks it is ignored. Each internal rank receives the pack covering
// its subtree, keeps its own part, and forwards each child's sub-pack.
func (c *Comm) Scatterv(root int, parts [][]byte) []byte {
	size := c.f.size
	vr := (c.rank - root + size) % size
	var entries []gatherEntry
	if vr == 0 {
		if len(parts) != size {
			panic("fabric: Scatterv needs one part per rank")
		}
		entries = make([]gatherEntry, size)
		for i, p := range parts {
			entries[i] = gatherEntry{rank: i, data: p}
		}
	} else {
		pack, _ := c.Recv((vr-(vr&-vr)+root)%size, tagScatter)
		entries = unpackEntries(pack)
	}
	var own []byte
	sent := 0
	low := treeLowBit(vr, size)
	for mask := 1; mask < low && vr+mask < size; mask <<= 1 {
		var sub []gatherEntry
		for _, e := range entries {
			evr := (e.rank - root + size) % size
			if evr >= vr+mask && evr < vr+2*mask {
				sub = append(sub, e)
			}
		}
		pack := packEntries(sub)
		c.Send((vr+mask+root)%size, tagScatter, pack)
		sent += len(pack)
	}
	for _, e := range entries {
		if e.rank == c.rank {
			own = e.data
		}
	}
	c.noteOp("scatterv", sent)
	return own
}

// Bcast broadcasts data from root to every rank along a binomial tree and
// returns the payload.
func (c *Comm) Bcast(root int, data []byte) []byte {
	out, sent := c.bcastTree(root, tagBcast, data)
	c.noteOp("bcast", sent)
	return out
}

// Allgather collects each rank's contribution and returns all of them on
// every rank, indexed by rank (MPI_Allgather). Implemented as a tree gather
// to rank 0 followed by a tree broadcast of the length-prefixed pack; like
// the other collectives it must be entered by every rank.
func (c *Comm) Allgather(data []byte) [][]byte {
	parts, sent := c.gatherTree(0, tagAllgather, data)
	var pack []byte
	if c.rank == 0 {
		pack = packParts(parts)
	}
	pack, bsent := c.bcastTree(0, tagAllgather, pack)
	c.noteOp("allgather", sent+bsent)
	if c.rank == 0 {
		return parts
	}
	return unpackParts(pack, c.f.size)
}

// Allreduce folds every rank's contribution with combine and returns the
// result on all ranks. The reduction runs up the binomial tree rooted at
// rank 0 and the result is broadcast back down. combine is always applied
// as combine(accumulated, next) in ascending rank order — the fold shape is
// fixed by the tree, not by arrival timing — so any associative combine
// (commutative or not) yields a deterministic, rank-order result. combine
// may modify and return its first argument; it must not retain the second.
func (c *Comm) Allreduce(data []byte, combine func(acc, next []byte) []byte) []byte {
	size := c.f.size
	sent := 0
	acc := data
	for mask := 1; mask < size; mask <<= 1 {
		if c.rank&mask != 0 {
			c.Send(c.rank^mask, tagReduce, acc)
			sent += len(acc)
			break
		}
		if c.rank+mask < size {
			d, _ := c.Recv(c.rank+mask, tagReduce)
			acc = combine(acc, d)
		}
	}
	out, bsent := c.bcastTree(0, tagReduce, acc)
	c.noteOp("allreduce", sent+bsent)
	return out
}

// Alltoallv sends parts[i] to rank i and returns the payloads received from
// every rank, indexed by source (MPI_Alltoallv). parts must have Size
// entries; the rank's own part is passed through untouched. Receives match
// explicit sources, so back-to-back Alltoallv calls stay correctly paired
// under the fabric's per-(src,dst,tag) FIFO ordering.
func (c *Comm) Alltoallv(parts [][]byte) [][]byte {
	size := c.f.size
	if len(parts) != size {
		panic("fabric: Alltoallv needs one part per rank")
	}
	sent := 0
	for dst, p := range parts {
		if dst != c.rank {
			c.Send(dst, tagAlltoall, p)
			sent += len(p)
		}
	}
	out := make([][]byte, size)
	out[c.rank] = parts[c.rank]
	for src := 0; src < size; src++ {
		if src != c.rank {
			out[src], _ = c.Recv(src, tagAlltoall)
		}
	}
	c.noteOp("alltoallv", sent)
	return out
}

// packParts serializes a slice of byte slices with u32 length prefixes.
func packParts(parts [][]byte) []byte {
	n := 0
	for _, p := range parts {
		n += 4 + len(p)
	}
	buf := make([]byte, 0, n)
	for _, p := range parts {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// unpackParts reverses packParts. The pack comes from rank 0 over the
// fabric, so malformed input is a programming error and panics.
func unpackParts(buf []byte, n int) [][]byte {
	parts := make([][]byte, n)
	for i := 0; i < n; i++ {
		l := binary.LittleEndian.Uint32(buf)
		parts[i] = buf[4 : 4+l]
		buf = buf[4+l:]
	}
	return parts
}

// Run spawns size ranks, invoking body with each rank's communicator, and
// waits for all of them. The first non-nil error is returned.
func Run(size int, body func(c *Comm) error) error {
	f := New(size)
	return f.Run(body)
}

// Run invokes body on every rank of an existing fabric and waits for all.
func (f *Fabric) Run(body func(c *Comm) error) error {
	errs := make([]error, f.size)
	var wg sync.WaitGroup
	for r := 0; r < f.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = body(f.Comm(rank))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
