package fabric

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"libbat/internal/obs"
)

// Tree-structured collectives must behave identically to the old linear
// ones for every root and for awkward (non-power-of-two, prime, tiny)
// world sizes, since the binomial routing is the only thing that changed.

func TestGatherTreeAllRootsAndSizes(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 17} {
		for root := 0; root < size; root++ {
			err := Run(size, func(c *Comm) error {
				data := []byte(fmt.Sprintf("rank-%d", c.Rank()))
				out := c.Gather(root, data)
				if c.Rank() != root {
					if out != nil {
						return fmt.Errorf("non-root got data")
					}
					return nil
				}
				if len(out) != size {
					return fmt.Errorf("got %d entries", len(out))
				}
				for i, d := range out {
					want := fmt.Sprintf("rank-%d", i)
					if string(d) != want {
						return fmt.Errorf("gather[%d] = %q, want %q", i, d, want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("size=%d root=%d: %v", size, root, err)
			}
		}
	}
}

func TestScattervTreeAllRootsAndSizes(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 6, 8, 11, 16} {
		for root := 0; root < size; root++ {
			err := Run(size, func(c *Comm) error {
				var parts [][]byte
				if c.Rank() == root {
					for i := 0; i < size; i++ {
						// Variable-length parts so sub-pack routing is
						// actually exercised.
						p := bytes.Repeat([]byte{byte(i)}, i%4+1)
						parts = append(parts, p)
					}
				}
				got := c.Scatterv(root, parts)
				want := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()%4+1)
				if !bytes.Equal(got, want) {
					return fmt.Errorf("rank %d got %v, want %v", c.Rank(), got, want)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("size=%d root=%d: %v", size, root, err)
			}
		}
	}
}

func TestBcastTreeAllRootsAndSizes(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 9, 16, 17} {
		for root := 0; root < size; root++ {
			err := Run(size, func(c *Comm) error {
				var data []byte
				if c.Rank() == root {
					data = []byte(fmt.Sprintf("from-%d", root))
				}
				got := c.Bcast(root, data)
				if string(got) != fmt.Sprintf("from-%d", root) {
					return fmt.Errorf("rank %d got %q", c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("size=%d root=%d: %v", size, root, err)
			}
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 13, 16} {
		err := Run(size, func(c *Comm) error {
			buf := binary.LittleEndian.AppendUint64(nil, uint64(c.Rank()+1))
			out := c.Allreduce(buf, func(acc, next []byte) []byte {
				s := binary.LittleEndian.Uint64(acc) + binary.LittleEndian.Uint64(next)
				binary.LittleEndian.PutUint64(acc, s)
				return acc
			})
			want := uint64(size * (size + 1) / 2)
			if got := binary.LittleEndian.Uint64(out); got != want {
				return fmt.Errorf("rank %d: sum = %d, want %d", c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size=%d: %v", size, err)
		}
	}
}

// TestAllreduceFoldOrder proves the documented guarantee: combine folds
// contributions in ascending rank order, so even a non-commutative combine
// (here: byte-slice concatenation) gives the same answer on every rank and
// on every run.
func TestAllreduceFoldOrder(t *testing.T) {
	for _, size := range []int{2, 3, 5, 8, 12, 16} {
		err := Run(size, func(c *Comm) error {
			out := c.Allreduce([]byte{byte(c.Rank())}, func(acc, next []byte) []byte {
				return append(acc, next...)
			})
			if len(out) != size {
				return fmt.Errorf("rank %d: len %d", c.Rank(), len(out))
			}
			for i, b := range out {
				if b != byte(i) {
					return fmt.Errorf("rank %d: out = %v, fold not in rank order", c.Rank(), out)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size=%d: %v", size, err)
		}
	}
}

func TestAlltoallv(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 13} {
		err := Run(size, func(c *Comm) error {
			parts := make([][]byte, size)
			for d := range parts {
				// Distinct (src, dst)-dependent payloads of varying length.
				parts[d] = bytes.Repeat([]byte{byte(c.Rank()*31 + d)}, d+1)
			}
			got := c.Alltoallv(parts)
			if len(got) != size {
				return fmt.Errorf("got %d parts", len(got))
			}
			for src, p := range got {
				want := bytes.Repeat([]byte{byte(src*31 + c.Rank())}, c.Rank()+1)
				if !bytes.Equal(p, want) {
					return fmt.Errorf("rank %d from %d: got %v want %v", c.Rank(), src, p, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size=%d: %v", size, err)
		}
	}
}

// TestAlltoallvBackToBack checks that consecutive Alltoallv calls stay
// correctly paired under per-(src,dst,tag) FIFO ordering.
func TestAlltoallvBackToBack(t *testing.T) {
	const rounds = 4
	err := Run(6, func(c *Comm) error {
		for round := 0; round < rounds; round++ {
			parts := make([][]byte, c.Size())
			for d := range parts {
				parts[d] = []byte{byte(round), byte(c.Rank()), byte(d)}
			}
			got := c.Alltoallv(parts)
			for src, p := range got {
				want := []byte{byte(round), byte(src), byte(c.Rank())}
				if !bytes.Equal(p, want) {
					return fmt.Errorf("round %d rank %d from %d: got %v", round, c.Rank(), src, p)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherNonPowerOfTwo(t *testing.T) {
	for _, size := range []int{1, 3, 6, 11, 16} {
		err := Run(size, func(c *Comm) error {
			out := c.Allgather([]byte{byte(c.Rank() * 7)})
			if len(out) != size {
				return fmt.Errorf("got %d parts", len(out))
			}
			for i, p := range out {
				if len(p) != 1 || p[0] != byte(i*7) {
					return fmt.Errorf("rank %d: allgather[%d] = %v", c.Rank(), i, p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size=%d: %v", size, err)
		}
	}
}

// TestPerOpCounters checks the bat_fabric_<op>_bytes/calls series: every
// rank records one call per collective entered, and the summed byte series
// matches each payload byte being charged exactly once at its sender.
func TestPerOpCounters(t *testing.T) {
	col := obs.New()
	f := New(4)
	f.SetObserver(col)
	err := f.Run(func(c *Comm) error {
		c.Gather(0, make([]byte, 10))
		c.Bcast(0, make([]byte, 8))
		c.Allreduce([]byte{1}, func(acc, next []byte) []byte { return acc })
		parts := make([][]byte, 4)
		for i := range parts {
			parts[i] = make([]byte, 2)
		}
		c.Alltoallv(parts)
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	calls := map[string]int64{}
	bytesBy := map[string]int64{}
	for _, ctr := range snap.Counters {
		if n, ok := cutPrefixSuffix(ctr.Name, "bat_fabric_", "_calls"); ok {
			calls[n] += ctr.Value
		}
		if n, ok := cutPrefixSuffix(ctr.Name, "bat_fabric_", "_bytes"); ok {
			bytesBy[n] += ctr.Value
		}
	}
	for _, op := range []string{"gather", "bcast", "allreduce", "alltoallv", "barrier"} {
		if calls[op] != 4 {
			t.Errorf("bat_fabric_%s_calls = %d, want 4", op, calls[op])
		}
	}
	// Alltoallv wire volume is exact: each rank sends 3 remote parts x 2B.
	if bytesBy["alltoallv"] != 4*3*2 {
		t.Errorf("bat_fabric_alltoallv_bytes = %d, want 24", bytesBy["alltoallv"])
	}
	// Tree collectives forward framed packs, so check a floor, not equality:
	// at least every non-root contribution crossed a link once.
	if bytesBy["gather"] < 3*10 {
		t.Errorf("bat_fabric_gather_bytes = %d, want >= 30", bytesBy["gather"])
	}
	if bytesBy["bcast"] < 3*8 {
		t.Errorf("bat_fabric_bcast_bytes = %d, want >= 24", bytesBy["bcast"])
	}
	if bytesBy["barrier"] != 0 {
		t.Errorf("bat_fabric_barrier_bytes = %d, want 0", bytesBy["barrier"])
	}
}

func cutPrefixSuffix(s, prefix, suffix string) (string, bool) {
	if len(s) <= len(prefix)+len(suffix) {
		return "", false
	}
	if s[:len(prefix)] != prefix || s[len(s)-len(suffix):] != suffix {
		return "", false
	}
	return s[len(prefix) : len(s)-len(suffix)], true
}
