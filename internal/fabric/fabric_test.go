package fabric

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("hello"))
			return nil
		}
		d, st := c.Recv(0, 7)
		if string(d) != "hello" || st.Source != 0 || st.Tag != 7 {
			return fmt.Errorf("got %q %+v", d, st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvWildcards(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			c.Send(2, 1, []byte("a"))
		case 1:
			c.Send(2, 2, []byte("b"))
		case 2:
			got := map[string]bool{}
			for i := 0; i < 2; i++ {
				d, st := c.Recv(AnySource, AnyTag)
				got[string(d)] = true
				if st.Source != 0 && st.Source != 1 {
					return fmt.Errorf("bad source %d", st.Source)
				}
			}
			if !got["a"] || !got["b"] {
				return fmt.Errorf("missing messages: %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	// A receive for tag 2 must skip an earlier tag-1 message.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("one"))
			c.Send(1, 2, []byte("two"))
			return nil
		}
		d2, _ := c.Recv(0, 2)
		d1, _ := c.Recv(0, 1)
		if string(d2) != "two" || string(d1) != "one" {
			return fmt.Errorf("tag matching wrong: %q %q", d2, d1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerPair(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 0, []byte{byte(i)})
			}
			return nil
		}
		for i := 0; i < n; i++ {
			d, _ := c.Recv(0, 0)
			if d[0] != byte(i) {
				return fmt.Errorf("out of order: got %d want %d", d[0], i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 5, []byte("x"))
			if !req.Test() {
				return fmt.Errorf("isend should complete immediately")
			}
			req.Wait()
			return nil
		}
		req := c.Irecv(0, 5)
		d, st := req.Wait()
		if string(d) != "x" || st.Tag != 5 {
			return fmt.Errorf("irecv got %q %+v", d, st)
		}
		// Wait is idempotent.
		d2, _ := req.Wait()
		if string(d2) != "x" {
			return fmt.Errorf("second Wait returned %q", d2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvTest(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			req := c.Irecv(0, 3)
			if req.Test() {
				return fmt.Errorf("Test true before send")
			}
			c.Send(0, 9, nil) // signal rank 0 to send
			for !req.Test() {
				time.Sleep(time.Millisecond)
			}
			d, _ := req.Wait()
			if string(d) != "later" {
				return fmt.Errorf("got %q", d)
			}
			return nil
		}
		c.Recv(1, 9)
		c.Send(1, 3, []byte("later"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 4, []byte("p"))
			return nil
		}
		for {
			if st, ok := c.Probe(AnySource, 4); ok {
				if st.Source != 0 {
					return fmt.Errorf("probe source %d", st.Source)
				}
				break
			}
			time.Sleep(time.Millisecond)
		}
		// Probe must not consume the message.
		d, _ := c.Recv(0, 4)
		if string(d) != "p" {
			return fmt.Errorf("probe consumed message")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	var counter atomic.Int32
	err := Run(8, func(c *Comm) error {
		counter.Add(1)
		c.Barrier()
		if got := counter.Load(); got != 8 {
			return fmt.Errorf("barrier released with counter=%d", got)
		}
		c.Barrier() // a second epoch must also work
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIbarrier(t *testing.T) {
	var entered atomic.Int32
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 3 {
			// Last rank delays so others see Test() == false first.
			for entered.Load() != 3 {
				time.Sleep(time.Millisecond)
			}
			br := c.Ibarrier()
			br.Wait()
			return nil
		}
		br := c.Ibarrier()
		entered.Add(1)
		if c.Rank() == 0 && br.Test() {
			// Rank 3 can't have entered yet (it waits for entered==3).
			return fmt.Errorf("Ibarrier complete too early")
		}
		for !br.Test() {
			time.Sleep(time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		data := []byte{byte(c.Rank() * 10)}
		out := c.Gather(2, data)
		if c.Rank() != 2 {
			if out != nil {
				return fmt.Errorf("non-root got data")
			}
			return nil
		}
		for i, d := range out {
			if len(d) != 1 || d[0] != byte(i*10) {
				return fmt.Errorf("gather[%d] = %v", i, d)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterv(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == 0 {
			for i := 0; i < 4; i++ {
				parts = append(parts, []byte{byte(i * 3)})
			}
		}
		got := c.Scatterv(0, parts)
		if len(got) != 1 || got[0] != byte(c.Rank()*3) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		var data []byte
		if c.Rank() == 1 {
			data = []byte("broadcast")
		}
		got := c.Bcast(1, data)
		if !bytes.Equal(got, []byte("broadcast")) {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := fmt.Errorf("boom")
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("got %v", err)
	}
}

func TestStats(t *testing.T) {
	f := New(2)
	err := f.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]byte, 100))
		} else {
			c.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.BytesSent() != 100 || f.MessagesSent() != 1 {
		t.Errorf("stats: %d bytes, %d msgs", f.BytesSent(), f.MessagesSent())
	}
}

func TestManyRanksAllToOne(t *testing.T) {
	// Stress: 128 ranks all send to rank 0 concurrently.
	const n = 128
	err := Run(n, func(c *Comm) error {
		if c.Rank() == 0 {
			seen := make([]bool, n)
			for i := 0; i < n-1; i++ {
				d, st := c.Recv(AnySource, 0)
				if int(d[0]) != st.Source%256 {
					return fmt.Errorf("payload mismatch from %d", st.Source)
				}
				seen[st.Source] = true
			}
			for i := 1; i < n; i++ {
				if !seen[i] {
					return fmt.Errorf("missing message from %d", i)
				}
			}
			return nil
		}
		c.Send(0, 0, []byte{byte(c.Rank() % 256)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSendRecvPingPong(b *testing.B) {
	f := New(2)
	done := make(chan struct{})
	go func() {
		c := f.Comm(1)
		for {
			d, _ := c.Recv(0, 0)
			if d == nil {
				close(done)
				return
			}
			c.Send(0, 1, d)
		}
	}()
	c := f.Comm(0)
	payload := make([]byte, 1024)
	b.SetBytes(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Send(1, 0, payload)
		c.Recv(1, 1)
	}
	b.StopTimer()
	c.Send(1, 0, nil)
	<-done
}

func TestPanicsOnMisuse(t *testing.T) {
	f := New(2)
	c := f.Comm(0)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	expectPanic("send to invalid rank", func() { c.Send(5, 0, nil) })
	expectPanic("negative rank comm", func() { f.Comm(-1) })
	expectPanic("out of range comm", func() { f.Comm(2) })
	expectPanic("zero fabric", func() { New(0) })
	// Root-side Scatterv validates the part count before communicating.
	expectPanic("scatterv wrong parts", func() {
		c.Scatterv(0, [][]byte{nil}) // 1 part for 2 ranks
	})
}

func TestSingleRankFabric(t *testing.T) {
	// Collectives degenerate gracefully at size 1.
	err := Run(1, func(c *Comm) error {
		out := c.Gather(0, []byte("x"))
		if len(out) != 1 || string(out[0]) != "x" {
			return fmt.Errorf("gather = %v", out)
		}
		if got := c.Scatterv(0, [][]byte{[]byte("y")}); string(got) != "y" {
			return fmt.Errorf("scatterv = %q", got)
		}
		if got := c.Bcast(0, []byte("z")); string(got) != "z" {
			return fmt.Errorf("bcast = %q", got)
		}
		c.Barrier()
		br := c.Ibarrier()
		if !br.Test() {
			return fmt.Errorf("single-rank Ibarrier incomplete")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeout(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			// Nothing was sent with tag 9: the receive must time out.
			_, _, err := c.RecvTimeout(1, 9, 20*time.Millisecond)
			if !errors.Is(err, ErrTimeout) {
				return fmt.Errorf("want ErrTimeout, got %v", err)
			}
			// A message already queued is returned immediately.
			d, st, err := c.RecvTimeout(1, 7, time.Second)
			if err != nil || string(d) != "hi" || st.Source != 1 {
				return fmt.Errorf("queued recv: %q %v %v", d, st, err)
			}
		} else {
			c.Send(0, 7, []byte("hi"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeoutLateArrival(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			d, _, err := c.RecvTimeout(1, 3, 5*time.Second)
			if err != nil || string(d) != "late" {
				return fmt.Errorf("late recv: %q %v", d, err)
			}
		} else {
			time.Sleep(10 * time.Millisecond)
			c.Send(0, 3, []byte("late"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitTimeout(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Irecv(1, 5)
			if _, _, err := req.WaitTimeout(10 * time.Millisecond); !errors.Is(err, ErrTimeout) {
				return fmt.Errorf("want ErrTimeout, got %v", err)
			}
			// The request stays usable after a timeout.
			c.Barrier()
			d, _, err := req.WaitTimeout(5 * time.Second)
			if err != nil || string(d) != "ok" {
				return fmt.Errorf("second wait: %q %v", d, err)
			}
		} else {
			c.Barrier()
			c.Send(0, 5, []byte("ok"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	const n = 5
	err := Run(n, func(c *Comm) error {
		mine := []byte(fmt.Sprintf("rank-%d", c.Rank()))
		all := c.Allgather(mine)
		if len(all) != n {
			return fmt.Errorf("got %d parts", len(all))
		}
		for i, p := range all {
			if want := fmt.Sprintf("rank-%d", i); string(p) != want {
				return fmt.Errorf("part %d = %q, want %q", i, p, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherEmptyParts(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		var mine []byte
		if c.Rank() == 1 {
			mine = []byte("x")
		}
		all := c.Allgather(mine)
		if len(all[0]) != 0 || string(all[1]) != "x" || len(all[2]) != 0 {
			return fmt.Errorf("allgather = %q", all)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
