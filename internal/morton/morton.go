// Package morton implements 3D Morton (Z-order) codes used to build the
// bottom-up shallow k-d tree of the BAT layout. Codes interleave 21 bits per
// axis into a 63-bit key; the high bits of the key form the "subprefix" that
// the shallow tree construction merges to group nearby particles.
package morton

import "libbat/internal/geom"

// Bits is the number of bits encoded per axis.
const Bits = 21

// TotalBits is the total number of bits in a Morton code (3 axes
// interleaved).
const TotalBits = 3 * Bits

// MaxCoord is the largest quantized coordinate representable per axis.
const MaxCoord = (1 << Bits) - 1

// Code is a 63-bit 3D Morton code stored in the low bits of a uint64.
type Code uint64

// spread3 inserts two zero bits between each of the low 21 bits of x.
func spread3(x uint64) uint64 {
	x &= 0x1fffff // keep 21 bits
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// compact3 is the inverse of spread3: it gathers every third bit of x into
// the low 21 bits of the result.
func compact3(x uint64) uint64 {
	x &= 0x1249249249249249
	x = (x ^ x>>2) & 0x10c30c30c30c30c3
	x = (x ^ x>>4) & 0x100f00f00f00f00f
	x = (x ^ x>>8) & 0x1f0000ff0000ff
	x = (x ^ x>>16) & 0x1f00000000ffff
	x = (x ^ x>>32) & 0x1fffff
	return x
}

// Encode interleaves the quantized coordinates (x, y, z), each in
// [0, MaxCoord], into a Morton code. Bit i of x lands at bit 3i of the code,
// y at 3i+1, z at 3i+2.
func Encode(x, y, z uint32) Code {
	return Code(spread3(uint64(x)) | spread3(uint64(y))<<1 | spread3(uint64(z))<<2)
}

// Decode recovers the quantized coordinates from a Morton code.
func Decode(c Code) (x, y, z uint32) {
	return uint32(compact3(uint64(c))),
		uint32(compact3(uint64(c) >> 1)),
		uint32(compact3(uint64(c) >> 2))
}

// Quantize maps a point inside bounds to integer grid coordinates in
// [0, MaxCoord]^3. Points on the upper boundary map to MaxCoord.
func Quantize(p geom.Vec3, bounds geom.Box) (x, y, z uint32) {
	n := bounds.Normalize(p)
	q := func(v float64) uint32 {
		if v <= 0 {
			return 0
		}
		if v >= 1 {
			return MaxCoord
		}
		return uint32(v * (MaxCoord + 1))
	}
	return q(n.X), q(n.Y), q(n.Z)
}

// FromPoint computes the Morton code of a point relative to bounds.
func FromPoint(p geom.Vec3, bounds geom.Box) Code {
	x, y, z := Quantize(p, bounds)
	return Encode(x, y, z)
}

// FromPoints encodes the points given as parallel single-precision
// coordinate arrays (the particle container's native layout) into dst,
// which must be at least as long as the coordinate slices. It produces
// exactly the codes FromPoint would, without constructing a Vec3 per
// particle, and is safe to call concurrently on disjoint sub-ranges:
//
//	FromPoints(dst[lo:hi], xs[lo:hi], ys[lo:hi], zs[lo:hi], bounds)
func FromPoints(dst []Code, xs, ys, zs []float32, bounds geom.Box) {
	lower, size := bounds.Lower, bounds.Size()
	q := func(v float64, lo, extent float64) uint64 {
		if extent <= 0 {
			return 0
		}
		// Same normalize-then-scale arithmetic as Quantize, so the
		// rounding (and therefore the code) is bit-identical.
		n := (v - lo) / extent
		if n <= 0 {
			return 0
		}
		if n >= 1 {
			return MaxCoord
		}
		return uint64(n * (MaxCoord + 1))
	}
	for i := range xs {
		x := q(float64(xs[i]), lower.X, size.X)
		y := q(float64(ys[i]), lower.Y, size.Y)
		z := q(float64(zs[i]), lower.Z, size.Z)
		dst[i] = Code(spread3(x) | spread3(y)<<1 | spread3(z)<<2)
	}
}

// Subprefix returns the top `bits` bits of the code, right-aligned. This is
// the key merged by the shallow-tree construction: particles sharing a
// subprefix fall in the same coarse spatial cell.
func (c Code) Subprefix(bits int) Code {
	if bits <= 0 {
		return 0
	}
	if bits >= TotalBits {
		return c
	}
	return c >> uint(TotalBits-bits)
}

// CellBounds returns the spatial region covered by a subprefix of the given
// bit length, relative to the domain bounds. Every point whose Morton code
// starts with the subprefix lies inside the returned box.
func CellBounds(prefix Code, bits int, domain geom.Box) geom.Box {
	if bits <= 0 {
		return domain
	}
	if bits > TotalBits {
		bits = TotalBits
	}
	// Shift the prefix back into position then decode the cell origin.
	c := uint64(prefix) << uint(TotalBits-bits)
	x := compact3(c)
	y := compact3(c >> 1)
	z := compact3(c >> 2)
	// Bits per axis consumed by the prefix. Interleave order within each
	// 3-bit group is x (bit 3i), y, z, and prefixes take the HIGH bits, so
	// the highest axis bits are consumed first: z gets a bit when bits%3>=1
	// counted from the top. The top bit of the code (bit 62) is z's bit 20.
	zb := (bits + 2) / 3
	yb := (bits + 1) / 3
	xb := bits / 3
	size := domain.Size()
	cell := geom.Vec3{
		X: size.X / float64(uint64(1)<<uint(xb)),
		Y: size.Y / float64(uint64(1)<<uint(yb)),
		Z: size.Z / float64(uint64(1)<<uint(zb)),
	}
	// The decoded coordinates have the consumed bits in their high
	// positions; shift down to get the cell index.
	xi := x >> uint(Bits-xb)
	yi := y >> uint(Bits-yb)
	zi := z >> uint(Bits-zb)
	lower := geom.Vec3{
		X: domain.Lower.X + float64(xi)*cell.X,
		Y: domain.Lower.Y + float64(yi)*cell.Y,
		Z: domain.Lower.Z + float64(zi)*cell.Z,
	}
	return geom.NewBox(lower, lower.Add(cell))
}
