package morton

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"libbat/internal/geom"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := [][3]uint32{
		{0, 0, 0},
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
		{MaxCoord, MaxCoord, MaxCoord},
		{12345, 67890, 54321},
	}
	for _, c := range cases {
		code := Encode(c[0], c[1], c[2])
		x, y, z := Decode(code)
		if x != c[0] || y != c[1] || z != c[2] {
			t.Errorf("round trip (%d,%d,%d) -> %d -> (%d,%d,%d)", c[0], c[1], c[2], code, x, y, z)
		}
	}
}

func TestEncodeBitPositions(t *testing.T) {
	// x bit i should land at code bit 3i, y at 3i+1, z at 3i+2.
	if Encode(1, 0, 0) != 1 {
		t.Errorf("Encode(1,0,0) = %b", Encode(1, 0, 0))
	}
	if Encode(0, 1, 0) != 2 {
		t.Errorf("Encode(0,1,0) = %b", Encode(0, 1, 0))
	}
	if Encode(0, 0, 1) != 4 {
		t.Errorf("Encode(0,0,1) = %b", Encode(0, 0, 1))
	}
	if Encode(2, 0, 0) != 8 {
		t.Errorf("Encode(2,0,0) = %b", Encode(2, 0, 0))
	}
	// Top bit: z bit 20 is code bit 62.
	if Encode(0, 0, 1<<20) != 1<<62 {
		t.Errorf("Encode(0,0,2^20) = %b", Encode(0, 0, 1<<20))
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= MaxCoord
		y &= MaxCoord
		z &= MaxCoord
		dx, dy, dz := Decode(Encode(x, y, z))
		return dx == x && dy == y && dz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMortonOrderIsMonotoneOnDiagonal(t *testing.T) {
	// Codes along the main diagonal must be strictly increasing.
	prev := Code(0)
	for i := uint32(1); i < 1000; i++ {
		c := Encode(i, i, i)
		if c <= prev {
			t.Fatalf("diagonal not monotone at %d", i)
		}
		prev = c
	}
}

func TestQuantize(t *testing.T) {
	b := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	x, y, z := Quantize(geom.V3(0, 0, 0), b)
	if x != 0 || y != 0 || z != 0 {
		t.Errorf("lower corner = (%d,%d,%d)", x, y, z)
	}
	x, y, z = Quantize(geom.V3(1, 1, 1), b)
	if x != MaxCoord || y != MaxCoord || z != MaxCoord {
		t.Errorf("upper corner = (%d,%d,%d)", x, y, z)
	}
	// Out-of-bounds points clamp.
	x, _, _ = Quantize(geom.V3(2, 0.5, 0.5), b)
	if x != MaxCoord {
		t.Errorf("clamp high = %d", x)
	}
	x, _, _ = Quantize(geom.V3(-1, 0.5, 0.5), b)
	if x != 0 {
		t.Errorf("clamp low = %d", x)
	}
}

func TestSubprefix(t *testing.T) {
	c := Code(0x7fffffffffffffff) // all 63 bits set
	if got := c.Subprefix(12); got != 0xfff {
		t.Errorf("Subprefix(12) = %x", got)
	}
	if got := c.Subprefix(0); got != 0 {
		t.Errorf("Subprefix(0) = %x", got)
	}
	if got := c.Subprefix(63); got != c {
		t.Errorf("Subprefix(63) = %x", got)
	}
	if got := c.Subprefix(100); got != c {
		t.Errorf("Subprefix(>63) = %x", got)
	}
}

func TestSubprefixPreservesOrder(t *testing.T) {
	// Sorting by subprefix must be consistent with sorting by full code.
	r := rand.New(rand.NewSource(42))
	codes := make([]Code, 500)
	for i := range codes {
		codes[i] = Encode(r.Uint32()&MaxCoord, r.Uint32()&MaxCoord, r.Uint32()&MaxCoord)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	for i := 1; i < len(codes); i++ {
		if codes[i-1].Subprefix(12) > codes[i].Subprefix(12) {
			t.Fatal("subprefix order inconsistent with code order")
		}
	}
}

func TestCellBoundsContainsPoints(t *testing.T) {
	// Every point whose code has a given subprefix must fall inside the
	// subprefix's cell bounds.
	domain := geom.NewBox(geom.V3(-3, 1, 0), geom.V3(5, 9, 4))
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := geom.Vec3{
			X: domain.Lower.X + r.Float64()*domain.Size().X,
			Y: domain.Lower.Y + r.Float64()*domain.Size().Y,
			Z: domain.Lower.Z + r.Float64()*domain.Size().Z,
		}
		code := FromPoint(p, domain)
		for _, bits := range []int{1, 2, 3, 6, 12, 18} {
			cell := CellBounds(code.Subprefix(bits), bits, domain)
			// Allow tiny epsilon for float arithmetic at cell faces.
			eps := 1e-9
			grown := geom.NewBox(
				cell.Lower.Sub(geom.V3(eps, eps, eps)),
				cell.Upper.Add(geom.V3(eps, eps, eps)))
			if !grown.Contains(p) {
				t.Fatalf("bits=%d point %v outside cell %v (domain %v)", bits, p, cell, domain)
			}
		}
	}
}

func TestCellBoundsZeroBits(t *testing.T) {
	domain := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 2, 3))
	if got := CellBounds(0, 0, domain); got != domain {
		t.Errorf("CellBounds(0 bits) = %v", got)
	}
}

func TestCellBoundsDisjoint(t *testing.T) {
	// Different subprefixes at the same bit depth give non-overlapping
	// interiors.
	domain := geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	a := CellBounds(0, 3, domain)
	b := CellBounds(7, 3, domain)
	inter := a.Intersect(b)
	if !inter.IsEmpty() && inter.Volume() > 1e-12 {
		t.Errorf("cells overlap: %v and %v", a, b)
	}
}

func BenchmarkEncode(b *testing.B) {
	var sink Code
	for i := 0; i < b.N; i++ {
		sink ^= Encode(uint32(i)&MaxCoord, uint32(i*7)&MaxCoord, uint32(i*13)&MaxCoord)
	}
	_ = sink
}

func BenchmarkDecode(b *testing.B) {
	var sx uint32
	for i := 0; i < b.N; i++ {
		x, y, z := Decode(Code(i) & 0x7fffffffffffffff)
		sx ^= x ^ y ^ z
	}
	_ = sx
}

func TestFromPointsMatchesFromPoint(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	boxes := []geom.Box{
		geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1)),
		geom.NewBox(geom.V3(-3, 2, 0.5), geom.V3(9, 2.5, 100)),
		// Degenerate Y axis.
		geom.NewBox(geom.V3(0, 5, 0), geom.V3(1, 5, 1)),
	}
	for _, bounds := range boxes {
		n := 2000
		xs := make([]float32, n)
		ys := make([]float32, n)
		zs := make([]float32, n)
		sz := bounds.Size()
		for i := 0; i < n; i++ {
			// Include out-of-bounds and boundary points.
			xs[i] = float32(bounds.Lower.X + (r.Float64()*1.4-0.2)*sz.X)
			ys[i] = float32(bounds.Lower.Y + (r.Float64()*1.4-0.2)*(sz.Y+1))
			zs[i] = float32(bounds.Lower.Z + (r.Float64()*1.4-0.2)*sz.Z)
		}
		xs[0], ys[0], zs[0] = float32(bounds.Lower.X), float32(bounds.Lower.Y), float32(bounds.Lower.Z)
		xs[1], ys[1], zs[1] = float32(bounds.Upper.X), float32(bounds.Upper.Y), float32(bounds.Upper.Z)
		got := make([]Code, n)
		FromPoints(got, xs, ys, zs, bounds)
		for i := 0; i < n; i++ {
			want := FromPoint(geom.V3(float64(xs[i]), float64(ys[i]), float64(zs[i])), bounds)
			if got[i] != want {
				t.Fatalf("bounds %v point %d: FromPoints %x != FromPoint %x", bounds, i, got[i], want)
			}
		}
	}
}
