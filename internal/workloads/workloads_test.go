package workloads

import (
	"math"
	"testing"
	"testing/quick"

	"libbat/internal/geom"
)

func TestFactor3D(t *testing.T) {
	cases := map[int][3]int{}
	for _, n := range []int{1, 2, 6, 8, 64, 100, 1536, 6144, 43008} {
		nx, ny, nz := Factor3D(n)
		if nx*ny*nz != n {
			t.Errorf("Factor3D(%d) = %dx%dx%d, product %d", n, nx, ny, nz, nx*ny*nz)
		}
		if nx < ny || ny < nz {
			t.Errorf("Factor3D(%d) not ordered: %d %d %d", n, nx, ny, nz)
		}
		cases[n] = [3]int{nx, ny, nz}
	}
	// 64 should be a perfect cube.
	if cases[64] != [3]int{4, 4, 4} {
		t.Errorf("Factor3D(64) = %v", cases[64])
	}
}

func TestDecompBounds(t *testing.T) {
	domain := geom.NewBox(geom.V3(0, 0, 0), geom.V3(4, 2, 1))
	d, err := NewDecomp(domain, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRanks() != 8 {
		t.Fatalf("NumRanks = %d", d.NumRanks())
	}
	// Bounds tile the domain exactly: union of all == domain; total
	// volume matches.
	union := geom.EmptyBox()
	var vol float64
	for r := 0; r < 8; r++ {
		b := d.RankBounds(r)
		union = union.Union(b)
		vol += b.Volume()
	}
	if union != domain {
		t.Errorf("union %v != domain %v", union, domain)
	}
	if math.Abs(vol-domain.Volume()) > 1e-9 {
		t.Errorf("volumes: %v vs %v", vol, domain.Volume())
	}
	// Coords round trip.
	for r := 0; r < 8; r++ {
		ix, iy, iz := d.Coords(r)
		if ix < 0 || ix >= 4 || iy < 0 || iy >= 2 || iz != 0 {
			t.Errorf("Coords(%d) = %d,%d,%d", r, ix, iy, iz)
		}
	}
	if _, err := NewDecomp(domain, 0, 1, 1); err == nil {
		t.Error("invalid decomp should error")
	}
}

func TestApportion(t *testing.T) {
	got := apportion(10, []float64{1, 1, 1, 1})
	var sum int64
	for _, v := range got {
		sum += v
	}
	if sum != 10 {
		t.Errorf("apportion sum = %d", sum)
	}
	// Zero weights get nothing.
	got = apportion(100, []float64{0, 1, 0, 3})
	if got[0] != 0 || got[2] != 0 || got[1]+got[3] != 100 || got[3] != 75 {
		t.Errorf("apportion weights = %v", got)
	}
	// Degenerate inputs.
	if r := apportion(0, []float64{1}); r[0] != 0 {
		t.Error("zero total wrong")
	}
	if r := apportion(5, []float64{0, 0}); r[0] != 0 || r[1] != 0 {
		t.Error("zero weights wrong")
	}
}

func TestApportionQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rng(int(seed%1000), 0, 0)
		n := 1 + r.Intn(50)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = r.Float64()
		}
		total := int64(r.Intn(100000))
		out := apportion(total, weights)
		var sum int64
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// checkWorkload runs the shared Workload contract checks.
func checkWorkload(t *testing.T, w Workload, step int) {
	t.Helper()
	counts := w.Counts(step)
	if len(counts) != w.Decomp().NumRanks() {
		t.Fatalf("Counts len %d != ranks %d", len(counts), w.Decomp().NumRanks())
	}
	// Generate agrees with Counts and stays in bounds; spot-check a few
	// ranks including the largest.
	maxRank := 0
	for r, c := range counts {
		if c > counts[maxRank] {
			maxRank = r
		}
	}
	for _, r := range []int{0, maxRank, len(counts) - 1} {
		s := w.Generate(step, r)
		if int64(s.Len()) != counts[r] {
			t.Fatalf("rank %d: Generate %d particles, Counts %d", r, s.Len(), counts[r])
		}
		b := w.Decomp().RankBounds(r)
		// Allow float32 rounding slack at the boundary.
		eps := 1e-5
		grown := geom.NewBox(b.Lower.Sub(geom.V3(eps, eps, eps)), b.Upper.Add(geom.V3(eps, eps, eps)))
		for i := 0; i < s.Len(); i++ {
			if !grown.Contains(s.Position(i)) {
				t.Fatalf("rank %d particle %d at %v outside bounds %v", r, i, s.Position(i), b)
			}
		}
		// Deterministic.
		s2 := w.Generate(step, r)
		if s2.Len() != s.Len() || (s.Len() > 0 && (s.X[0] != s2.X[0] || s.Attrs[0][0] != s2.Attrs[0][0])) {
			t.Fatalf("rank %d: Generate not deterministic", r)
		}
	}
}

func TestUniformWorkload(t *testing.T) {
	u, err := NewUniform(64, 1000, 14)
	if err != nil {
		t.Fatal(err)
	}
	checkWorkload(t, u, 0)
	if TotalCount(u, 0) != 64000 {
		t.Errorf("total = %d", TotalCount(u, 0))
	}
	if u.Schema().NumAttrs() != 14 {
		t.Errorf("attrs = %d", u.Schema().NumAttrs())
	}
	infos := RankInfos(u, 0)
	if len(infos) != 64 || infos[5].Count != 1000 || infos[5].Rank != 5 {
		t.Errorf("RankInfos wrong: %+v", infos[5])
	}
}

func TestCoalBoilerGrowth(t *testing.T) {
	cb, err := NewCoalBoiler(96)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Total(501) != 4_600_000 {
		t.Errorf("Total(501) = %d", cb.Total(501))
	}
	if cb.Total(4501) != 41_500_000 {
		t.Errorf("Total(4501) = %d", cb.Total(4501))
	}
	if cb.Total(100) != 4_600_000 || cb.Total(9999) != 41_500_000 {
		t.Error("growth clamps wrong")
	}
	mid := cb.Total(2501)
	if mid <= cb.Total(501) || mid >= cb.Total(4501) {
		t.Errorf("mid total %d not between endpoints", mid)
	}
	// Counts sum to the total at several steps.
	for _, step := range []int{501, 1501, 4501} {
		if got := TotalCount(cb, step); got != cb.Total(step) {
			t.Errorf("step %d: counts sum %d != total %d", step, got, cb.Total(step))
		}
	}
}

func TestCoalBoilerImbalance(t *testing.T) {
	cb, err := NewCoalBoiler(96)
	if err != nil {
		t.Fatal(err)
	}
	cb.SetGrowth(0, 100, 50_000, 200_000)
	counts := cb.Counts(50)
	var max, sum int64
	nonzero := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += c
		if c > 0 {
			nonzero++
		}
	}
	mean := float64(sum) / float64(len(counts))
	// The distribution must be strongly imbalanced (that is its purpose).
	if float64(max) < 4*mean {
		t.Errorf("coal boiler too uniform: max %d vs mean %.0f", max, mean)
	}
	if nonzero == len(counts) {
		t.Log("note: all ranks have particles (plumes cover domain)")
	}
}

func TestCoalBoilerGenerate(t *testing.T) {
	cb, err := NewCoalBoiler(24)
	if err != nil {
		t.Fatal(err)
	}
	cb.SetGrowth(0, 100, 20_000, 50_000)
	checkWorkload(t, cb, 50)
}

func TestDamBreakFixedTotal(t *testing.T) {
	db, err := NewDamBreak(64, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []int{0, 500, 1001, 2500, 4001} {
		if got := TotalCount(db, step); got != 100_000 {
			t.Errorf("step %d: total %d, want fixed 100000", step, got)
		}
	}
}

func TestDamBreakFrontMoves(t *testing.T) {
	db, err := NewDamBreak(64, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	// Center of mass along x must advance over time.
	com := func(step int) float64 {
		counts := db.Counts(step)
		var m, mx float64
		for r, c := range counts {
			b := db.Decomp().RankBounds(r)
			m += float64(c)
			mx += float64(c) * b.Center().X
		}
		return mx / m
	}
	c0, c1, c2 := com(0), com(1000), com(3000)
	if !(c0 < c1 && c1 < c2) {
		t.Errorf("front not advancing: %.3f %.3f %.3f", c0, c1, c2)
	}
	// At t=0 everything is in the column (x <= x0): ranks beyond the
	// column hold (nearly) nothing.
	counts := db.Counts(0)
	var inColumn, beyond int64
	for r, c := range counts {
		b := db.Decomp().RankBounds(r)
		if b.Lower.X >= db.x0 {
			beyond += c
		} else {
			inColumn += c
		}
	}
	if beyond*50 > inColumn {
		t.Errorf("t=0: %d particles beyond the column vs %d inside", beyond, inColumn)
	}
}

func TestDamBreakGenerate(t *testing.T) {
	db, err := NewDamBreak(16, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	checkWorkload(t, db, 1000)
	// 2D decomposition: all ranks span full z.
	for r := 0; r < 16; r++ {
		b := db.Decomp().RankBounds(r)
		if b.Lower.Z != 0 || b.Upper.Z != db.Decomp().Domain.Upper.Z {
			t.Fatalf("rank %d not full-z: %v", r, b)
		}
	}
}

func TestDamBreakImbalanceEvolves(t *testing.T) {
	// The max/mean imbalance should change substantially across the time
	// series (this is what makes AUG slow and adaptive fast).
	db, err := NewDamBreak(64, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	imbalance := func(step int) float64 {
		counts := db.Counts(step)
		var max, sum int64
		for _, c := range counts {
			if c > max {
				max = c
			}
			sum += c
		}
		return float64(max) * float64(len(counts)) / float64(sum)
	}
	early := imbalance(0)
	late := imbalance(4000)
	if early < 1.5 {
		t.Errorf("t=0 should be strongly imbalanced, got %.2f", early)
	}
	if late >= early {
		t.Errorf("imbalance should relax as water spreads: early %.2f late %.2f", early, late)
	}
}

func TestCosmoConservesTotal(t *testing.T) {
	c, err := NewCosmo(64, 100_000, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []int{0, 500, 1000, 2000} {
		if got := TotalCount(c, step); got != 100_000 {
			t.Errorf("step %d total = %d", step, got)
		}
	}
}

func TestCosmoClusteringGrows(t *testing.T) {
	c, err := NewCosmo(64, 200_000, 12)
	if err != nil {
		t.Fatal(err)
	}
	imb := func(step int) float64 {
		counts := c.Counts(step)
		var max, sum int64
		for _, n := range counts {
			if n > max {
				max = n
			}
			sum += n
		}
		return float64(max) * float64(len(counts)) / float64(sum)
	}
	early, late := imb(0), imb(1000)
	if early > 1.5 {
		t.Errorf("t=0 should be near uniform, imbalance %.2f", early)
	}
	if late < 3*early {
		t.Errorf("structure formation should add imbalance: %.2f -> %.2f", early, late)
	}
}

func TestCosmoGenerate(t *testing.T) {
	c, err := NewCosmo(8, 20_000, 6)
	if err != nil {
		t.Fatal(err)
	}
	checkWorkload(t, c, 800)
	// Halo particles carry much larger velocities; the heaviest rank at a
	// clustered step is halo-dominated, while step 0 is pure background
	// (vel ~ 50 +/- 20).
	maxVel := func(step int) float64 {
		counts := c.Counts(step)
		heavy := 0
		for r, n := range counts {
			if n > counts[heavy] {
				heavy = r
			}
		}
		return c.Generate(step, heavy).AttrRange(1).Max
	}
	if v := maxVel(0); v > 250 {
		t.Errorf("step 0 max velocity %.0f looks like a halo", v)
	}
	if v := maxVel(1000); v < 250 {
		t.Errorf("clustered step max velocity %.0f lacks halo particles", v)
	}
}
