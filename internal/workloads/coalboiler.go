package workloads

import (
	"math"

	"libbat/internal/geom"
	"libbat/internal/particles"
)

// CoalBoiler is a synthetic reproduction of the Uintah coal boiler
// simulation used in §VI-A.2: coal particles are injected through inlets on
// one boiler wall and carried upward, forming a strongly clustered,
// time-growing population (4.6M particles at timestep 501 growing to 41.5M
// at timestep 4501 in the paper, on 1536 ranks).
//
// The density model is a sum of Gaussian plumes anchored at inlets on the
// low-x wall. Over time each plume's centroid rises (z) and drifts into the
// domain (x) while spreading, so both the total count and the spatial
// imbalance evolve — the signature that defeats uniform-grid aggregation.
type CoalBoiler struct {
	decomp *Decomp
	schema particles.Schema
	seed   int

	// StartStep/EndStep and StartCount/EndCount define the linear growth
	// of the particle population.
	StartStep, EndStep   int
	StartCount, EndCount int64

	plumes []plume
}

type plume struct {
	inlet  geom.Vec3 // anchor on the low-x wall
	weight float64
}

// CoalBoilerSchema matches the paper: three float coordinates plus seven
// double-precision attributes.
func CoalBoilerSchema() particles.Schema {
	return particles.NewSchema("temp", "mass", "vx", "vy", "vz", "char", "moisture")
}

// NewCoalBoiler builds the workload over nranks arranged as a 3D grid on a
// boiler-shaped (tall) domain. Counts follow the paper's time series by
// default: use SetGrowth to override.
func NewCoalBoiler(nranks int) (*CoalBoiler, error) {
	// Boiler: wider than deep, tall (x depth, y width, z height).
	domain := geom.NewBox(geom.V3(0, 0, 0), geom.V3(4, 4, 8))
	nx, ny, nz := Factor3D(nranks)
	// Put the largest factor on z to mirror the tall domain.
	d, err := NewDecomp(domain, ny, nz, nx)
	if err != nil {
		return nil, err
	}
	cb := &CoalBoiler{
		decomp:     d,
		schema:     CoalBoilerSchema(),
		seed:       2,
		StartStep:  501,
		EndStep:    4501,
		StartCount: 4_600_000,
		EndCount:   41_500_000,
	}
	// Inlets: a 2x3 bank on the low-x wall near the bottom.
	for iy := 0; iy < 3; iy++ {
		for iz := 0; iz < 2; iz++ {
			cb.plumes = append(cb.plumes, plume{
				inlet:  geom.V3(0, 0.8+1.2*float64(iy), 1.0+1.5*float64(iz)),
				weight: 1 + 0.3*float64(iy) + 0.2*float64(iz),
			})
		}
	}
	return cb, nil
}

// SetGrowth overrides the population growth schedule (used to scale the
// workload down for materialized runs).
func (c *CoalBoiler) SetGrowth(startStep, endStep int, startCount, endCount int64) {
	c.StartStep, c.EndStep = startStep, endStep
	c.StartCount, c.EndCount = startCount, endCount
}

// Name implements Workload.
func (c *CoalBoiler) Name() string { return "coal-boiler" }

// Schema implements Workload.
func (c *CoalBoiler) Schema() particles.Schema { return c.schema }

// Decomp implements Workload.
func (c *CoalBoiler) Decomp() *Decomp { return c.decomp }

// Total returns the particle population at a timestep (linear in step,
// clamped to the schedule).
func (c *CoalBoiler) Total(step int) int64 {
	if step <= c.StartStep {
		return c.StartCount
	}
	if step >= c.EndStep {
		return c.EndCount
	}
	f := float64(step-c.StartStep) / float64(c.EndStep-c.StartStep)
	return c.StartCount + int64(f*float64(c.EndCount-c.StartCount))
}

// progress maps a step to [0,1] through the schedule.
func (c *CoalBoiler) progress(step int) float64 {
	f := float64(step-c.StartStep) / float64(c.EndStep-c.StartStep)
	return math.Max(0, math.Min(1, f))
}

// plumeAt returns plume p's center and spread at schedule progress f.
func (c *CoalBoiler) plumeAt(p plume, f float64) (center geom.Vec3, sigma geom.Vec3) {
	size := c.decomp.Domain.Size()
	center = geom.Vec3{
		X: p.inlet.X + (0.15+0.55*f)*size.X,           // drifts into the boiler
		Y: p.inlet.Y,                                  //
		Z: p.inlet.Z + (0.1+0.6*f)*(size.Z-p.inlet.Z), // rises
	}
	sigma = geom.Vec3{
		X: 0.25 + 1.1*f,
		Y: 0.2 + 0.9*f,
		Z: 0.35 + 2.2*f,
	}
	return center, sigma
}

// density evaluates the (unnormalized) particle density at a point.
func (c *CoalBoiler) density(pt geom.Vec3, f float64) float64 {
	var d float64
	for _, p := range c.plumes {
		ctr, sg := c.plumeAt(p, f)
		dx := (pt.X - ctr.X) / sg.X
		dy := (pt.Y - ctr.Y) / sg.Y
		dz := (pt.Z - ctr.Z) / sg.Z
		d += p.weight * math.Exp(-0.5*(dx*dx+dy*dy+dz*dz))
	}
	return d
}

// Counts implements Workload: each rank's share of the step's population is
// proportional to the plume density integrated (midpoint rule over a 2^3
// grid) over its bounds.
func (c *CoalBoiler) Counts(step int) []int64 {
	f := c.progress(step)
	n := c.decomp.NumRanks()
	weights := make([]float64, n)
	for r := 0; r < n; r++ {
		b := c.decomp.RankBounds(r)
		sz := b.Size()
		var sum float64
		for ix := 0; ix < 2; ix++ {
			for iy := 0; iy < 2; iy++ {
				for iz := 0; iz < 2; iz++ {
					pt := geom.Vec3{
						X: b.Lower.X + sz.X*(0.25+0.5*float64(ix)),
						Y: b.Lower.Y + sz.Y*(0.25+0.5*float64(iy)),
						Z: b.Lower.Z + sz.Z*(0.25+0.5*float64(iz)),
					}
					sum += c.density(pt, f)
				}
			}
		}
		weights[r] = sum * b.Volume()
	}
	return apportion(c.Total(step), weights)
}

// Generate implements Workload: positions are rejection-sampled from the
// plume density restricted to the rank's bounds; attributes are spatially
// correlated (temperature falls with height, velocity follows the plume
// drift).
func (c *CoalBoiler) Generate(step, rank int) *particles.Set {
	counts := c.Counts(step)
	want := counts[rank]
	r := rng(c.seed, step, rank)
	f := c.progress(step)
	b := c.decomp.RankBounds(rank)
	sz := b.Size()
	// Estimate the local density maximum for rejection sampling.
	var dmax float64
	for i := 0; i < 32; i++ {
		pt := geom.Vec3{
			X: b.Lower.X + r.Float64()*sz.X,
			Y: b.Lower.Y + r.Float64()*sz.Y,
			Z: b.Lower.Z + r.Float64()*sz.Z,
		}
		if d := c.density(pt, f); d > dmax {
			dmax = d
		}
	}
	dmax *= 1.5
	s := particles.NewSet(c.schema, int(want))
	attrs := make([]float64, c.schema.NumAttrs())
	for int64(s.Len()) < want {
		pt := geom.Vec3{
			X: b.Lower.X + r.Float64()*sz.X,
			Y: b.Lower.Y + r.Float64()*sz.Y,
			Z: b.Lower.Z + r.Float64()*sz.Z,
		}
		if dmax > 0 && r.Float64()*dmax > c.density(pt, f) {
			// Cap rejection work: accept uniformly after enough tries by
			// decaying the threshold.
			dmax *= 0.999
			continue
		}
		h := pt.Z / c.decomp.Domain.Size().Z
		attrs[0] = 1800 - 900*h + 30*r.NormFloat64() // temp
		attrs[1] = 1e-6 * (1 + 0.2*r.NormFloat64())  // mass
		attrs[2] = 2 + r.NormFloat64()*0.3           // vx
		attrs[3] = r.NormFloat64() * 0.3             // vy
		attrs[4] = 4 + 2*h + r.NormFloat64()*0.5     // vz
		attrs[5] = math.Max(0, 1-f-0.1*r.Float64())  // char
		attrs[6] = math.Max(0, 0.3-0.3*h)            // moisture
		s.Append(pt, attrs)
	}
	return s
}
