package workloads

import (
	"libbat/internal/geom"
	"libbat/internal/particles"
)

// Uniform is the fixed uniform distribution of the weak-scaling study
// (§VI-A.1): every rank holds the same number of particles, each with three
// single-precision coordinates and NumAttrs double-precision attributes
// (the paper uses 32k particles and 14 attributes, 4.06 MB per rank).
type Uniform struct {
	decomp  *Decomp
	perRank int64
	schema  particles.Schema
	seed    int
}

// NewUniform builds a uniform workload over nranks arranged in a near-cubic
// grid over the unit cube.
func NewUniform(nranks int, perRank int64, numAttrs int) (*Uniform, error) {
	nx, ny, nz := Factor3D(nranks)
	d, err := NewDecomp(geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1)), nx, ny, nz)
	if err != nil {
		return nil, err
	}
	return &Uniform{
		decomp:  d,
		perRank: perRank,
		schema:  particles.UniformSchema(numAttrs),
		seed:    1,
	}, nil
}

// Name implements Workload.
func (u *Uniform) Name() string { return "uniform" }

// Schema implements Workload.
func (u *Uniform) Schema() particles.Schema { return u.schema }

// Decomp implements Workload.
func (u *Uniform) Decomp() *Decomp { return u.decomp }

// Counts implements Workload: every rank holds the same count at every
// step.
func (u *Uniform) Counts(step int) []int64 {
	out := make([]int64, u.decomp.NumRanks())
	for i := range out {
		out[i] = u.perRank
	}
	return out
}

// Generate implements Workload: particles uniformly distributed in the
// rank's bounds with spatially correlated attributes (attribute i varies
// smoothly with position, so the BAT's binned bitmaps are representative).
func (u *Uniform) Generate(step, rank int) *particles.Set {
	r := rng(u.seed, step, rank)
	bounds := u.decomp.RankBounds(rank)
	size := bounds.Size()
	s := particles.NewSet(u.schema, int(u.perRank))
	attrs := make([]float64, u.schema.NumAttrs())
	for i := int64(0); i < u.perRank; i++ {
		p := geom.Vec3{
			X: bounds.Lower.X + r.Float64()*size.X,
			Y: bounds.Lower.Y + r.Float64()*size.Y,
			Z: bounds.Lower.Z + r.Float64()*size.Z,
		}
		for a := range attrs {
			switch a % 4 {
			case 0:
				attrs[a] = p.X*10 + r.Float64()
			case 1:
				attrs[a] = p.Y*10 + r.Float64()
			case 2:
				attrs[a] = p.Z*10 + r.Float64()
			default:
				attrs[a] = r.NormFloat64()
			}
		}
		s.Append(p, attrs)
	}
	return s
}
