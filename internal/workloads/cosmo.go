package workloads

import (
	"math"
	"math/rand"

	"libbat/internal/geom"
	"libbat/internal/particles"
)

// Cosmo is an N-body-style cosmology workload, the other domain the
// paper's introduction motivates (HACC/Dark Sky-like): particles cluster
// into halos whose concentration grows over time as structure forms. The
// distribution is static-in-count but becomes progressively more
// imbalanced, stressing the adaptive aggregation differently from the
// coal boiler (growth) and dam break (advection).
type Cosmo struct {
	decomp *Decomp
	schema particles.Schema
	seed   int
	total  int64
	halos  []halo
	// ClusteredFraction(step) of the particles live in halos; the rest
	// stay in a uniform background that thins as structure forms.
	MaxClustered float64
	FormSteps    int
}

type halo struct {
	center geom.Vec3
	mass   float64
	radius float64
}

// CosmoSchema: three float coordinates plus mass, velocity magnitude, and
// local density attributes.
func CosmoSchema() particles.Schema {
	return particles.NewSchema("mass", "vel", "density")
}

// NewCosmo builds the workload with nHalos halos at deterministic random
// positions in a unit box.
func NewCosmo(nranks int, total int64, nHalos int) (*Cosmo, error) {
	nx, ny, nz := Factor3D(nranks)
	d, err := NewDecomp(geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1)), nx, ny, nz)
	if err != nil {
		return nil, err
	}
	c := &Cosmo{
		decomp:       d,
		schema:       CosmoSchema(),
		seed:         4,
		total:        total,
		MaxClustered: 0.85,
		FormSteps:    1000,
	}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < nHalos; i++ {
		c.halos = append(c.halos, halo{
			center: geom.V3(r.Float64(), r.Float64(), r.Float64()),
			mass:   0.2 + r.Float64(),
			radius: 0.02 + 0.05*r.Float64(),
		})
	}
	return c, nil
}

// Name implements Workload.
func (c *Cosmo) Name() string { return "cosmo" }

// Schema implements Workload.
func (c *Cosmo) Schema() particles.Schema { return c.schema }

// Decomp implements Workload.
func (c *Cosmo) Decomp() *Decomp { return c.decomp }

// clustered returns the halo mass fraction at a step.
func (c *Cosmo) clustered(step int) float64 {
	f := float64(step) / float64(c.FormSteps)
	if f > 1 {
		f = 1
	}
	return c.MaxClustered * f
}

// density evaluates the mixture density (background + halos) at a point.
func (c *Cosmo) density(pt geom.Vec3, step int) float64 {
	cl := c.clustered(step)
	d := 1 - cl // uniform background
	var hmass float64
	for _, h := range c.halos {
		hmass += h.mass
	}
	for _, h := range c.halos {
		dist := pt.Sub(h.center).Length()
		s := h.radius
		d += cl * (h.mass / hmass) * math.Exp(-0.5*dist*dist/(s*s)) / (s * s * s)
	}
	return d
}

// Counts implements Workload.
func (c *Cosmo) Counts(step int) []int64 {
	n := c.decomp.NumRanks()
	weights := make([]float64, n)
	for r := 0; r < n; r++ {
		b := c.decomp.RankBounds(r)
		sz := b.Size()
		var sum float64
		for ix := 0; ix < 2; ix++ {
			for iy := 0; iy < 2; iy++ {
				for iz := 0; iz < 2; iz++ {
					pt := geom.Vec3{
						X: b.Lower.X + sz.X*(0.25+0.5*float64(ix)),
						Y: b.Lower.Y + sz.Y*(0.25+0.5*float64(iy)),
						Z: b.Lower.Z + sz.Z*(0.25+0.5*float64(iz)),
					}
					sum += c.density(pt, step)
				}
			}
		}
		weights[r] = sum * b.Volume()
	}
	return apportion(c.total, weights)
}

// Generate implements Workload: the clustered fraction samples Gaussian
// offsets around a halo (rejecting positions outside the rank bounds); the
// rest are uniform in the rank bounds.
func (c *Cosmo) Generate(step, rank int) *particles.Set {
	want := c.Counts(step)[rank]
	r := rng(c.seed, step, rank)
	b := c.decomp.RankBounds(rank)
	sz := b.Size()
	cl := c.clustered(step)
	// Halos overlapping this rank, weighted by their density contribution
	// at the rank center.
	type cand struct {
		h halo
		w float64
	}
	var cands []cand
	var wsum float64
	for _, h := range c.halos {
		dist := b.Center().Sub(h.center).Length()
		w := h.mass * math.Exp(-0.5*dist*dist/(h.radius*h.radius*4))
		if w > 1e-9 {
			cands = append(cands, cand{h: h, w: w})
			wsum += w
		}
	}
	s := particles.NewSet(c.schema, int(want))
	attrs := make([]float64, 3)
	uniform := func() geom.Vec3 {
		return geom.Vec3{
			X: b.Lower.X + r.Float64()*sz.X,
			Y: b.Lower.Y + r.Float64()*sz.Y,
			Z: b.Lower.Z + r.Float64()*sz.Z,
		}
	}
	for int64(s.Len()) < want {
		var pt geom.Vec3
		inHalo := false
		if len(cands) > 0 && r.Float64() < cl {
			// Pick a halo by weight and sample a Gaussian offset.
			u := r.Float64() * wsum
			var h halo
			for _, cd := range cands {
				if u -= cd.w; u <= 0 {
					h = cd.h
					break
				}
				h = cands[len(cands)-1].h
			}
			pt = geom.Vec3{
				X: h.center.X + r.NormFloat64()*h.radius,
				Y: h.center.Y + r.NormFloat64()*h.radius,
				Z: h.center.Z + r.NormFloat64()*h.radius,
			}
			if !b.Contains(pt) {
				continue // rejected; try again
			}
			inHalo = true
		} else {
			pt = uniform()
		}
		den := c.density(pt, step)
		attrs[0] = 1 + 0.1*r.NormFloat64() // mass
		if inHalo {
			attrs[1] = 300 + 100*r.NormFloat64() // velocity dispersion in halos
		} else {
			attrs[1] = 50 + 20*r.NormFloat64()
		}
		attrs[2] = den
		s.Append(pt, attrs)
	}
	return s
}
