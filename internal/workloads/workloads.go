// Package workloads generates the particle distributions used in the
// paper's evaluation (§VI): a fixed uniform distribution (the IOR-style
// weak scaling baseline), a synthetic Coal Boiler (Uintah-like particle
// injection with a time-growing, strongly clustered population), and a
// synthetic Dam Break (ExaMPM/Cabana-like fixed population moving through
// the domain over time).
//
// Each workload exposes two fidelities:
//
//   - Counts/RankInfos: cheap per-rank particle counts and bounds at a
//     timestep, enough to drive the aggregation algorithms and the modeled
//     scaling benchmarks at tens of thousands of ranks;
//   - Generate: fully materialized, deterministic per-rank particle sets
//     for end-to-end writes, reads, and the visualization benchmarks.
package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"libbat/internal/aggtree"
	"libbat/internal/geom"
	"libbat/internal/particles"
)

// Decomp is a regular grid domain decomposition across ranks, the layout
// used by Uintah (3D grid) and ExaMPM (2D grid along x/y).
type Decomp struct {
	Domain geom.Box
	Dims   [3]int
}

// NewDecomp builds a decomposition with the given per-axis rank counts.
func NewDecomp(domain geom.Box, nx, ny, nz int) (*Decomp, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("workloads: invalid decomposition %dx%dx%d", nx, ny, nz)
	}
	return &Decomp{Domain: domain, Dims: [3]int{nx, ny, nz}}, nil
}

// Factor3D chooses a near-cubic factorization of n ranks, preferring
// factors proportional to the domain extents.
func Factor3D(n int) (nx, ny, nz int) {
	best := [3]int{n, 1, 1}
	bestCost := math.Inf(1)
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		m := n / a
		for b := a; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			c := m / b
			// Cost: surface-to-volume (prefer cubes).
			cost := float64(a*b + b*c + a*c)
			if cost < bestCost {
				bestCost = cost
				best = [3]int{c, b, a}
			}
		}
	}
	return best[0], best[1], best[2]
}

// NumRanks returns the total rank count.
func (d *Decomp) NumRanks() int { return d.Dims[0] * d.Dims[1] * d.Dims[2] }

// Coords returns the grid coordinates of a rank (x-major ordering).
func (d *Decomp) Coords(rank int) (ix, iy, iz int) {
	ix = rank % d.Dims[0]
	iy = (rank / d.Dims[0]) % d.Dims[1]
	iz = rank / (d.Dims[0] * d.Dims[1])
	return ix, iy, iz
}

// RankBounds returns the spatial region owned by a rank.
func (d *Decomp) RankBounds(rank int) geom.Box {
	ix, iy, iz := d.Coords(rank)
	size := d.Domain.Size()
	lo := geom.Vec3{
		X: d.Domain.Lower.X + size.X*float64(ix)/float64(d.Dims[0]),
		Y: d.Domain.Lower.Y + size.Y*float64(iy)/float64(d.Dims[1]),
		Z: d.Domain.Lower.Z + size.Z*float64(iz)/float64(d.Dims[2]),
	}
	hi := geom.Vec3{
		X: d.Domain.Lower.X + size.X*float64(ix+1)/float64(d.Dims[0]),
		Y: d.Domain.Lower.Y + size.Y*float64(iy+1)/float64(d.Dims[1]),
		Z: d.Domain.Lower.Z + size.Z*float64(iz+1)/float64(d.Dims[2]),
	}
	return geom.NewBox(lo, hi)
}

// Workload is a time-varying particle distribution over a decomposition.
type Workload interface {
	// Name identifies the workload in benchmark output.
	Name() string
	// Schema describes the particle attributes.
	Schema() particles.Schema
	// Decomp returns the rank decomposition.
	Decomp() *Decomp
	// Counts returns the per-rank particle counts at a timestep.
	Counts(step int) []int64
	// Generate materializes rank's particles at a timestep. The result is
	// deterministic in (step, rank) and has exactly Counts(step)[rank]
	// particles.
	Generate(step, rank int) *particles.Set
}

// RankInfos assembles the aggregation-tree input for a workload timestep.
func RankInfos(w Workload, step int) []aggtree.RankInfo {
	d := w.Decomp()
	counts := w.Counts(step)
	infos := make([]aggtree.RankInfo, d.NumRanks())
	for r := range infos {
		infos[r] = aggtree.RankInfo{Rank: r, Bounds: d.RankBounds(r), Count: counts[r]}
	}
	return infos
}

// TotalCount sums a workload's particles at a timestep.
func TotalCount(w Workload, step int) int64 {
	var n int64
	for _, c := range w.Counts(step) {
		n += c
	}
	return n
}

// rng returns a deterministic generator for (name, step, rank).
func rng(seed, step, rank int) *rand.Rand {
	return rand.New(rand.NewSource(int64(seed)*1e9 + int64(step)*1e6 + int64(rank)))
}

// apportion distributes total particles over weights using the largest
// remainder method, so counts are deterministic and sum exactly to total.
func apportion(total int64, weights []float64) []int64 {
	var wsum float64
	for _, w := range weights {
		if w > 0 {
			wsum += w
		}
	}
	out := make([]int64, len(weights))
	if wsum == 0 || total == 0 {
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	var assigned int64
	rems := make([]rem, 0, len(weights))
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		exact := float64(total) * w / wsum
		fl := int64(exact)
		out[i] = fl
		assigned += fl
		rems = append(rems, rem{idx: i, frac: exact - float64(fl)})
	}
	// Hand out the remaining particles to the largest fractional parts;
	// stable tie-break on index keeps it deterministic.
	left := total - assigned
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for k := int64(0); k < left && int(k) < len(rems); k++ {
		out[rems[k].idx]++
	}
	return out
}
