package workloads

import (
	"math"

	"libbat/internal/geom"
	"libbat/internal/particles"
)

// DamBreak is a synthetic reproduction of the ExaMPM/Cabana dam break of
// §VI-A.2: a water column against the low-x wall collapses and a fixed
// population of particles surges along the floor. The domain is
// decomposed among ranks with a 2D grid along x and y (the floor), as in
// the paper, so the advancing front concentrates particles in a moving
// band of ranks — a fixed-size but strongly time-varying I/O workload.
//
// The height profile follows Ritter's classical dam-break solution: for a
// column of initial height h0 released at x0, at scaled time t the free
// surface between the backward rarefaction and the front is
//
//	h(x,t) = h0                                  x < x0 - t*c0
//	h(x,t) = (2*c0 - (x-x0)/t)^2 / (9*g)         otherwise, down to 0
//
// with c0 = sqrt(g*h0) and the front at x0 + 2*c0*t.
type DamBreak struct {
	decomp *Decomp
	schema particles.Schema
	seed   int
	total  int64

	// Column geometry.
	x0 float64 // initial column extent along x
	h0 float64 // initial column height (z)
	// TimeScale converts a timestep index to solution time.
	TimeScale float64
}

// DamBreakSchema matches the paper: three float coordinates plus four
// double-precision attributes.
func DamBreakSchema() particles.Schema {
	return particles.NewSchema("pressure", "vx", "vz", "density")
}

// NewDamBreak builds the workload with a fixed population of total
// particles over nranks arranged in a 2D grid along x and y.
func NewDamBreak(nranks int, total int64) (*DamBreak, error) {
	domain := geom.NewBox(geom.V3(0, 0, 0), geom.V3(8, 2, 2))
	// 2D decomposition: all of z on every rank, as in the paper.
	nx, ny, _ := Factor3D(nranks)
	if nx*ny != nranks {
		// Fall back to an exact 2D factorization.
		nx, ny = factor2D(nranks)
	}
	d, err := NewDecomp(domain, nx, ny, 1)
	if err != nil {
		return nil, err
	}
	return &DamBreak{
		decomp:    d,
		schema:    DamBreakSchema(),
		seed:      3,
		total:     total,
		x0:        1.5,
		h0:        1.5,
		TimeScale: 1.0 / 2000.0,
	}, nil
}

// factor2D returns the most square 2D factorization of n.
func factor2D(n int) (nx, ny int) {
	ny = int(math.Sqrt(float64(n)))
	for n%ny != 0 {
		ny--
	}
	return n / ny, ny
}

// Name implements Workload.
func (w *DamBreak) Name() string { return "dam-break" }

// Schema implements Workload.
func (w *DamBreak) Schema() particles.Schema { return w.schema }

// Decomp implements Workload.
func (w *DamBreak) Decomp() *Decomp { return w.decomp }

const gravity = 9.81

// height returns the water column height at position x for timestep step.
func (w *DamBreak) height(x float64, step int) float64 {
	t := float64(step) * w.TimeScale
	if t <= 0 {
		if x <= w.x0 {
			return w.h0
		}
		return 0
	}
	c0 := math.Sqrt(gravity * w.h0)
	xr := w.x0 - c0*t   // rarefaction tail
	xf := w.x0 + 2*c0*t // front
	domainX := w.decomp.Domain.Upper.X
	if xf > domainX {
		// After the front reaches the far wall the flow levels out; relax
		// the profile toward a flat pool of equal volume.
		level := w.h0 * w.x0 / domainX
		over := math.Min(1, (xf-domainX)/domainX)
		h := w.ritter(x, t, c0, xr)
		return h*(1-over) + level*over
	}
	return w.ritter(x, t, c0, xr)
}

func (w *DamBreak) ritter(x, t, c0, xr float64) float64 {
	if x <= xr {
		return w.h0
	}
	u := 2*c0 - (x-w.x0)/t
	if u <= 0 {
		return 0
	}
	return u * u / (9 * gravity) * 4 // scaled to conserve the column better
}

// Counts implements Workload: rank weights integrate the height profile
// over the rank's x-range (uniform in y).
func (w *DamBreak) Counts(step int) []int64 {
	n := w.decomp.NumRanks()
	weights := make([]float64, n)
	for r := 0; r < n; r++ {
		b := w.decomp.RankBounds(r)
		// Midpoint rule over 4 x-samples.
		var sum float64
		for i := 0; i < 4; i++ {
			x := b.Lower.X + b.Size().X*(0.125+0.25*float64(i))
			sum += w.height(x, step)
		}
		weights[r] = sum * b.Size().X * b.Size().Y
	}
	return apportion(w.total, weights)
}

// Generate implements Workload: x positions are sampled from the height
// profile restricted to the rank's x-range by inverse-CDF over a fine
// table; z uniform within the local height; y uniform.
func (w *DamBreak) Generate(step, rank int) *particles.Set {
	counts := w.Counts(step)
	want := counts[rank]
	r := rng(w.seed, step, rank)
	b := w.decomp.RankBounds(rank)
	// Build a small inverse-CDF table of the height profile across the
	// rank's x-range.
	const tableN = 64
	cdf := make([]float64, tableN+1)
	for i := 1; i <= tableN; i++ {
		x := b.Lower.X + b.Size().X*(float64(i)-0.5)/tableN
		cdf[i] = cdf[i-1] + math.Max(w.height(x, step), 1e-9)
	}
	total := cdf[tableN]
	s := particles.NewSet(w.schema, int(want))
	attrs := make([]float64, w.schema.NumAttrs())
	c0 := math.Sqrt(gravity * w.h0)
	t := float64(step) * w.TimeScale
	for i := int64(0); i < want; i++ {
		// Inverse CDF sample of x.
		u := r.Float64() * total
		lo, hi := 0, tableN
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid+1] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		fx := (float64(lo) + r.Float64()) / tableN
		x := b.Lower.X + b.Size().X*fx
		h := math.Max(w.height(x, step), 1e-6)
		pt := geom.Vec3{
			X: x,
			Y: b.Lower.Y + r.Float64()*b.Size().Y,
			Z: r.Float64() * math.Min(h, w.decomp.Domain.Upper.Z),
		}
		// Shallow-water velocity field: u(x) = 2/3*(c0 + (x-x0)/t).
		vx := 0.0
		if t > 0 && x > w.x0-c0*t {
			vx = 2.0 / 3.0 * (c0 + (x-w.x0)/t)
		}
		attrs[0] = 1000 * gravity * (h - pt.Z) // hydrostatic pressure
		attrs[1] = vx + 0.05*r.NormFloat64()
		attrs[2] = -0.1*pt.Z + 0.05*r.NormFloat64()
		attrs[3] = 1000 + 5*r.NormFloat64()
		s.Append(pt, attrs)
	}
	return s
}
